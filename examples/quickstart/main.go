// Quickstart: boot an M3 system, create a VPE on a second core, and
// exchange messages with it through DTU gates — the paper's basic
// programming model (§4.5.5's VPE::run example, extended with a real
// message channel instead of Serial output).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/kif"
	"repro/internal/m3"
	"repro/internal/sim"
	"repro/internal/tile"
)

func main() {
	eng := sim.NewEngine()
	// Four processing elements: kernel, parent, child, and one spare.
	plat := tile.NewPlatform(eng, tile.Homogeneous(4))
	kern := core.Boot(plat, 0)

	_, err := kern.StartInit("parent", tile.CoreXtensa, func(ctx *tile.Ctx) {
		env := m3.NewEnv(ctx, kern)
		parent(env)
		env.Exit(0)
	})
	if err != nil {
		log.Fatal(err)
	}

	end := eng.Run()
	fmt.Printf("simulation finished after %d cycles\n", end)
}

func parent(env *m3.Env) {
	// A receive gate for answers from the child, with a send gate the
	// child will use (label 7 identifies the child; credits bound the
	// in-flight messages).
	rg, err := env.NewRecvGate(128, 4)
	check(err)
	sg, err := rg.NewSendGate(7, 2)
	check(err)

	// Ask the kernel for an unused PE of the same type.
	a, b := 4, 5
	vpe, err := env.NewVPE("child", tile.CoreXtensa)
	check(err)
	fmt.Printf("child VPE on PE %d\n", vpe.PEID)

	// Hand the child the send gate at an agreed selector, then clone
	// ourselves onto the PE and run the lambda there.
	const childSGate = 100
	check(vpe.Delegate(sg, childSGate, 1))
	check(vpe.Run(func(child *m3.Env) {
		// This code runs on the child PE. Captured values were copied
		// with the clone image; results travel back as a message.
		sum := a + b
		var o kif.OStream
		o.Str(fmt.Sprintf("sum: %d", sum))
		csg := child.SendGateAt(childSGate)
		if err := csg.Send(o.Bytes()); err != nil {
			child.SetExit(1)
		}
	}))

	// Receive the child's message and wait for its exit.
	//m3vet:nodeadline example code waits for its own child, which cannot be shed
	msg := rg.Recv()
	is := kif.NewIStream(msg.Data)
	fmt.Printf("message from child (label %d): %q\n", msg.Label, is.Str())
	rg.Ack(msg)

	code, err := vpe.Wait()
	check(err)
	fmt.Printf("child exited with code %d at cycle %d\n", code, env.Ctx.Now())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
