// Persistence: m3fs's organization is "suitable for persistent storage
// as well" (§4.5.8). This example writes files on one system boot,
// syncs the filesystem to an image (the stand-in for a storage
// device), boots a completely fresh system from that image, and reads
// the files back. Check any image with cmd/m3fsck.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/m3"
	"repro/internal/m3fs"
	"repro/internal/sim"
	"repro/internal/tile"
)

func main() {
	image := firstBoot()
	fmt.Printf("synced image: %d bytes\n\n", len(image))
	secondBoot(image)
}

// firstBoot writes a small tree and syncs it.
func firstBoot() []byte {
	eng := sim.NewEngine()
	plat := tile.NewPlatform(eng, tile.Homogeneous(3))
	kern := core.Boot(plat, 0)
	var svc *m3fs.Service
	must(kern.StartInit("m3fs", tile.CoreXtensa,
		m3fs.Program(kern, m3fs.Config{}, func(s *m3fs.Service) { svc = s })))
	must(kern.StartInit("writer", tile.CoreXtensa, func(ctx *tile.Ctx) {
		env := m3.NewEnv(ctx, kern)
		client, err := m3fs.MountAt(env, "/", "")
		check(err)
		check(env.VFS.Mkdir("/notes"))
		check(env.VFS.WriteFile("/notes/first.txt", []byte("written before the reboot")))
		check(env.VFS.WriteFile("/motd", []byte("m3fs persists")))
		check(client.Sync())
		fmt.Printf("first boot: wrote /notes/first.txt and /motd, synced at cycle %d\n", ctx.Now())
		env.Exit(0)
	}))
	eng.Run()
	if svc == nil || svc.SyncedImage == nil {
		log.Fatal("no image was synced")
	}
	return svc.SyncedImage
}

// secondBoot mounts the image on a brand-new platform.
func secondBoot(image []byte) {
	eng := sim.NewEngine()
	plat := tile.NewPlatform(eng, tile.Homogeneous(3))
	kern := core.Boot(plat, 0)
	must(kern.StartInit("m3fs", tile.CoreXtensa,
		m3fs.Program(kern, m3fs.Config{Image: image}, nil)))
	must(kern.StartInit("reader", tile.CoreXtensa, func(ctx *tile.Ctx) {
		env := m3.NewEnv(ctx, kern)
		_, err := m3fs.MountAt(env, "/", "")
		check(err)
		note, err := env.VFS.ReadFile("/notes/first.txt")
		check(err)
		motd, err := env.VFS.ReadFile("/motd")
		check(err)
		fmt.Printf("second boot: /notes/first.txt = %q\n", note)
		fmt.Printf("second boot: /motd = %q\n", motd)
		ents, err := env.VFS.ReadDir("/")
		check(err)
		fmt.Printf("second boot: root entries:")
		for _, e := range ents {
			fmt.Printf(" %s", e.Name)
		}
		fmt.Println()
		env.Exit(0)
	}))
	eng.Run()
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func must(_ *core.VPE, err error) {
	if err != nil {
		log.Fatal(err)
	}
}
