// Persistence: m3fs's organization is "suitable for persistent storage
// as well" (§4.5.8). This example writes files on one system boot,
// syncs the filesystem to an image (the stand-in for a storage
// device), boots a completely fresh system from that image, and reads
// the files back. Check any image with cmd/m3fsck.
//
// The third boot turns persistence into availability: m3fs runs
// journaled and supervised, its PE is crashed mid-run by an injected
// fault, and the client keeps working — the supervisor respawns the
// service on a spare PE, the journal replays the metadata it had
// already acknowledged, and the client re-establishes its session
// against the new incarnation (docs/RECOVERY.md).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/m3"
	"repro/internal/m3fs"
	"repro/internal/sim"
	"repro/internal/tile"
)

func main() {
	image := firstBoot()
	fmt.Printf("synced image: %d bytes\n\n", len(image))
	secondBoot(image)
	fmt.Println()
	final := crashBoot(image)
	fsck(final)
}

// firstBoot writes a small tree and syncs it.
func firstBoot() []byte {
	eng := sim.NewEngine()
	plat := tile.NewPlatform(eng, tile.Homogeneous(3))
	kern := core.Boot(plat, 0)
	var svc *m3fs.Service
	must(kern.StartInit("m3fs", tile.CoreXtensa,
		m3fs.Program(kern, m3fs.Config{}, func(s *m3fs.Service) { svc = s })))
	must(kern.StartInit("writer", tile.CoreXtensa, func(ctx *tile.Ctx) {
		env := m3.NewEnv(ctx, kern)
		client, err := m3fs.MountAt(env, "/", "")
		check(err)
		check(env.VFS.Mkdir("/notes"))
		check(env.VFS.WriteFile("/notes/first.txt", []byte("written before the reboot")))
		check(env.VFS.WriteFile("/motd", []byte("m3fs persists")))
		check(client.Sync())
		fmt.Printf("first boot: wrote /notes/first.txt and /motd, synced at cycle %d\n", ctx.Now())
		env.Exit(0)
	}))
	eng.Run()
	if svc == nil || svc.SyncedImage == nil {
		log.Fatal("no image was synced")
	}
	return svc.SyncedImage
}

// secondBoot mounts the image on a brand-new platform.
func secondBoot(image []byte) {
	eng := sim.NewEngine()
	plat := tile.NewPlatform(eng, tile.Homogeneous(3))
	kern := core.Boot(plat, 0)
	must(kern.StartInit("m3fs", tile.CoreXtensa,
		m3fs.Program(kern, m3fs.Config{Image: image}, nil)))
	must(kern.StartInit("reader", tile.CoreXtensa, func(ctx *tile.Ctx) {
		env := m3.NewEnv(ctx, kern)
		_, err := m3fs.MountAt(env, "/", "")
		check(err)
		note, err := env.VFS.ReadFile("/notes/first.txt")
		check(err)
		motd, err := env.VFS.ReadFile("/motd")
		check(err)
		fmt.Printf("second boot: /notes/first.txt = %q\n", note)
		fmt.Printf("second boot: /motd = %q\n", motd)
		ents, err := env.VFS.ReadDir("/")
		check(err)
		fmt.Printf("second boot: root entries:")
		for _, e := range ents {
			fmt.Printf(" %s", e.Name)
		}
		fmt.Println()
		env.Exit(0)
	}))
	eng.Run()
}

// crashBoot boots from the image with the journal and the supervisor
// armed, kills the m3fs PE mid-run, and lets the writer carry on across
// the crash. It returns the image synced from the *restarted* service.
func crashBoot(image []byte) []byte {
	const crashAt = sim.Time(50000)
	eng := sim.NewEngine()
	plat := tile.NewPlatform(eng, tile.Homogeneous(4)) // PE 3 is the spare
	kern := core.Boot(plat, 0)
	var svc *m3fs.Service
	var readyAt []sim.Time
	must(kern.StartInitSupervised("m3fs", tile.CoreXtensa,
		// The journal is carved from the region tail, so the region must
		// grow by the journal size for the image geometry to still fit.
		m3fs.Program(kern, m3fs.Config{Image: image, Journal: true,
			RegionSize: 32<<20 + m3fs.DefaultJournalSize}, func(s *m3fs.Service) {
			svc = s
			readyAt = append(readyAt, eng.Now())
		}),
		core.RestartPolicy{MaxRestarts: 1, Backoff: 5000}))
	must(kern.StartInit("writer", tile.CoreXtensa, func(ctx *tile.Ctx) {
		env := m3.NewEnv(ctx, kern)
		client, err := m3fs.MountAt(env, "/", "")
		check(err)
		check(env.VFS.WriteFile("/notes/pre-crash.txt", []byte("acknowledged before the crash")))
		fmt.Printf("third boot: wrote /notes/pre-crash.txt at cycle %d\n", ctx.Now())
		// Idle through the crash window; the service dies, is reaped,
		// and restarts while the writer isn't looking.
		env.P().Sleep(crashAt + 70000 - ctx.Now())
		check(env.VFS.WriteFile("/notes/post-crash.txt", []byte("written after the restart")))
		note, err := env.VFS.ReadFile("/notes/pre-crash.txt")
		check(err)
		old, err := env.VFS.ReadFile("/notes/first.txt")
		check(err)
		fmt.Printf("third boot: after the crash, /notes/pre-crash.txt = %q\n", note)
		fmt.Printf("third boot: after the crash, /notes/first.txt = %q\n", old)
		check(client.Sync())
		env.Exit(0)
	}))
	fault.Attach(kern, fault.Plan{
		Seed:            1,
		Crashes:         []fault.Crash{{PE: 1, At: crashAt}},
		HeartbeatPeriod: 10000,
		MaxMissedBeats:  2,
	})
	eng.Run()
	if svc == nil || svc.SyncedImage == nil {
		log.Fatal("no image was synced after the crash")
	}
	fmt.Printf("third boot: m3fs restarts=%d epoch=%d, journal replayed %d records (ready at %v)\n",
		kern.Stats.ServiceRestarts, kern.ServiceEpoch(m3fs.ServiceName), svc.ReplayedRecords, readyAt)
	return svc.SyncedImage
}

// fsck verifies the recovered image the way cmd/m3fsck would.
func fsck(image []byte) {
	fs, err := m3fs.UnmarshalImage(image, nil)
	check(err)
	check(fs.CheckInvariants())
	fmt.Printf("recovered image: fsck-clean, %d bytes, %d used blocks\n", len(image), fs.UsedBlocks())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func must(_ *core.VPE, err error) {
	if err != nil {
		log.Fatal(err)
	}
}
