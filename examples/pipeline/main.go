// Pipeline: the paper's accelerator scenario (§5.8). A parent
// generates data and writes it into a pipe; a child reads the pipe,
// performs an FFT, and writes the result into a file. The parent code
// is identical for the software and the accelerator variant — only the
// requested PE type differs, which is the point: M3's abstractions
// make accelerators ordinary first-class citizens.
package main

import (
	"fmt"
	"log"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/m3"
	"repro/internal/m3fs"
	"repro/internal/sim"
	"repro/internal/tile"
	"repro/internal/workload"
)

func main() {
	soft := run(false)
	fast := run(true)
	fmt.Printf("\nsoftware FFT:    %8d cycles\n", soft)
	fmt.Printf("FFT accelerator: %8d cycles (%.1fx speedup)\n",
		fast, float64(soft)/float64(fast))
}

func run(useAccel bool) sim.Time {
	eng := sim.NewEngine()
	// Kernel, m3fs, parent, one spare Xtensa, and one FFT core.
	plat := tile.NewPlatform(eng, tile.Config{PEs: []tile.CoreType{
		tile.CoreXtensa, tile.CoreXtensa, tile.CoreXtensa, tile.CoreXtensa, tile.CoreFFT,
	}})
	kern := core.Boot(plat, 0)
	if _, err := kern.StartInit("m3fs", tile.CoreXtensa, m3fs.Program(kern, m3fs.Config{}, nil)); err != nil {
		log.Fatal(err)
	}

	variant := "software"
	if useAccel {
		variant = "accelerator"
	}
	var took sim.Time
	_, err := kern.StartInit("parent", tile.CoreXtensa, func(ctx *tile.Ctx) {
		env := m3.NewEnv(ctx, kern)
		os, err := workload.NewM3OS(env)
		if err != nil {
			log.Fatal(err)
		}
		chain := accel.FFTChain(useAccel)
		start := ctx.Now()
		if err := chain.Run(os); err != nil {
			log.Fatal(err)
		}
		took = ctx.Now() - start
		st, err := os.Stat("/fft.out")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s: %d bytes transformed in %d cycles\n", variant, st.Size, took)
		env.Exit(0)
	})
	if err != nil {
		log.Fatal(err)
	}
	eng.Run()
	return took
}
