// Fileio: use m3fs through libm3's POSIX-like API — files, directories,
// seeking — and show how file fragmentation (blocks per extent) affects
// read time, the effect behind Figure 4.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/m3"
	"repro/internal/m3fs"
	"repro/internal/sim"
	"repro/internal/tile"
)

func main() {
	eng := sim.NewEngine()
	plat := tile.NewPlatform(eng, tile.Homogeneous(3))
	kern := core.Boot(plat, 0)
	if _, err := kern.StartInit("m3fs", tile.CoreXtensa, m3fs.Program(kern, m3fs.Config{}, nil)); err != nil {
		log.Fatal(err)
	}
	if _, err := kern.StartInit("app", tile.CoreXtensa, func(ctx *tile.Ctx) {
		env := m3.NewEnv(ctx, kern)
		app(env)
		env.Exit(0)
	}); err != nil {
		log.Fatal(err)
	}
	eng.Run()
}

func app(env *m3.Env) {
	client, err := m3fs.MountAt(env, "/", "")
	check(err)

	// Directories and small files.
	check(env.VFS.Mkdir("/docs"))
	check(env.VFS.WriteFile("/docs/hello.txt", []byte("hello m3fs")))
	data, err := env.VFS.ReadFile("/docs/hello.txt")
	check(err)
	fmt.Printf("read back: %q\n", data)

	st, err := env.VFS.Stat("/docs/hello.txt")
	check(err)
	fmt.Printf("stat: size=%d extents=%d\n", st.Size, st.Extents)

	// Seek within an already-obtained extent: purely local in libm3.
	f, err := env.VFS.Open("/docs/hello.txt", m3.OpenRead)
	check(err)
	_, err = f.Seek(6, m3.SeekStart)
	check(err)
	buf := make([]byte, 4)
	_, err = f.Read(buf)
	check(err)
	fmt.Printf("after seek(6): %q\n", buf)
	check(f.Close())

	// Fragmentation: the same 256 KiB file with large vs. small
	// extents. More extents mean more m3fs round trips to obtain
	// memory capabilities (Figure 4).
	payload := make([]byte, 256<<10)
	for i := range payload {
		payload[i] = byte(i)
	}

	measure := func(path string, appendBlocks int, noMerge bool) sim.Time {
		client.AppendBlocks = appendBlocks
		client.NoMerge = noMerge
		check(env.VFS.WriteFile(path, payload))
		start := env.Ctx.Now()
		got, err := env.VFS.ReadFile(path)
		check(err)
		if len(got) != len(payload) {
			log.Fatalf("%s: read %d bytes", path, len(got))
		}
		return env.Ctx.Now() - start
	}

	fast := measure("/big-one-extent.bin", 256, false)
	slow := measure("/big-fragmented.bin", 16, true)
	stFast, _ := env.VFS.Stat("/big-one-extent.bin")
	stSlow, _ := env.VFS.Stat("/big-fragmented.bin")
	fmt.Printf("read 256 KiB, %d extent(s):  %d cycles\n", stFast.Extents, fast)
	fmt.Printf("read 256 KiB, %d extent(s): %d cycles (%.2fx)\n",
		stSlow.Extents, slow, float64(slow)/float64(fast))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
