// Interrupts: the paper proposes delivering device interrupts as DTU
// messages (§4.4.2), so software can wait for them like for any other
// message, interpose them, and route them to any PE. This example runs
// a timer device on its own PE, a handler waiting for ticks, and then
// slots a monitoring proxy between the two — without the device or the
// handler changing.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/m3"
	"repro/internal/sim"
	"repro/internal/tile"
)

func main() {
	direct()
	interposed()
}

// direct wires timer -> handler.
func direct() {
	eng := sim.NewEngine()
	plat := tile.NewPlatform(eng, tile.Homogeneous(4))
	kern := core.Boot(plat, 0)
	_, err := kern.StartInit("handler", tile.CoreXtensa, func(ctx *tile.Ctx) {
		env := m3.NewEnv(ctx, kern)
		ig, devSG, err := m3.NewInterruptGate(env, 4)
		check(err)
		dev, err := env.NewVPE("timer", tile.CoreXtensa)
		check(err)
		check(dev.Delegate(devSG, 400, 1))
		check(dev.Run(m3.TimerDevice(400, 25000, 4)))
		for i := 0; i < 4; i++ {
			tick, err := ig.Wait()
			check(err)
			fmt.Printf("interrupt %d received at cycle %d (raised at %d)\n",
				tick.Seq, env.Ctx.Now(), tick.At)
		}
		_, _ = dev.Wait()
		env.Exit(0)
	})
	check(err)
	eng.Run()
}

// interposed wires timer -> proxy -> handler; the proxy observes every
// interrupt in flight.
func interposed() {
	fmt.Println("\nwith an interposing monitor:")
	eng := sim.NewEngine()
	plat := tile.NewPlatform(eng, tile.Homogeneous(5))
	kern := core.Boot(plat, 0)
	_, err := kern.StartInit("handler", tile.CoreXtensa, func(ctx *tile.Ctx) {
		env := m3.NewEnv(ctx, kern)
		ig, proxySG, err := m3.NewInterruptGate(env, 4)
		check(err)
		proxy, err := env.NewVPE("monitor", tile.CoreXtensa)
		check(err)
		check(proxy.Delegate(proxySG, 401, 1))
		check(proxy.Run(func(penv *m3.Env) {
			pig, _, err := m3.NewInterruptGate(penv, 4)
			if err != nil {
				penv.SetExit(1)
				return
			}
			if err := m3.InterruptProxy(penv, pig, 401, 3, func(t m3.TimerTick) {
				fmt.Printf("  [monitor] saw interrupt %d\n", t.Seq)
			}); err != nil {
				penv.SetExit(1)
			}
		}))
		// Obtain the proxy's device-facing send gate (its deterministic
		// selector 2) and hand it to the device.
		devSG := env.AllocSel()
		for {
			if err := proxy.Obtain(devSG, 2, 1); err == nil {
				break
			}
			env.P().Sleep(500)
		}
		dev, err := env.NewVPE("timer", tile.CoreXtensa)
		check(err)
		check(dev.Delegate(devSG, 400, 1))
		check(dev.Run(m3.TimerDevice(400, 25000, 3)))
		for i := 0; i < 3; i++ {
			tick, err := ig.Wait()
			check(err)
			fmt.Printf("interrupt %d reached the handler\n", tick.Seq)
		}
		_, _ = dev.Wait()
		_, _ = proxy.Wait()
		env.Exit(0)
	})
	check(err)
	eng.Run()
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
