# Convenience targets; `make ci` is the tier-1 gate (see ci.sh).

.PHONY: ci build test vet bench

ci:
	./ci.sh

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...
	go run ./cmd/m3vet ./...

bench:
	go test -bench=. -benchmem
