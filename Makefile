# Convenience targets; `make ci` is the tier-1 gate (see ci.sh).

.PHONY: ci build test vet bench chaos fuzz

ci:
	./ci.sh

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...
	go run ./cmd/m3vet ./...

bench:
	go test -bench=. -benchmem

# The chaos tier: determinism under fault injection plus the workload
# matrix that proves isolation survives packet loss, PE crashes, and —
# with the supervisor armed — service crashes that must recover
# (docs/FAULTS.md, docs/RECOVERY.md). Race-enabled — fault events must
# not break the engine's strict hand-off.
chaos:
	go test -race -run 'TestFaultDeterminism|TestChaosMatrix|TestObsChaosStreamDeterministic|TestFlightDump' ./internal/bench

# Short fuzz smoke over the two crash-facing decoders: the fault-plan
# parser and the m3fs metadata journal (the full fuzzers run for as
# long as you let them: go test -fuzz FuzzFaultPlan ./internal/fault,
# go test -fuzz FuzzJournal ./internal/m3fs).
fuzz:
	go test -run '^$$' -fuzz FuzzFaultPlan -fuzztime 10s ./internal/fault
	go test -run '^$$' -fuzz FuzzJournal -fuzztime 10s ./internal/m3fs
