# Convenience targets; `make ci` is the tier-1 gate (see ci.sh).

.PHONY: ci build test vet vet-fast vet-baseline bench bench-smoke bench-baseline diff-smoke slo-smoke slo-baseline chaos fuzz

ci:
	./ci.sh

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...
	go run ./cmd/m3vet ./...

# Syntactic rules only — skips the interprocedural fixpoint (call
# graph, effect summaries, taint) for quick local iteration.
vet-fast:
	go run ./cmd/m3vet -fast ./...

# Regenerate the committed suppression set from the current tree. The
# sharedstate keys in vet-baseline.json double as the parallel-DES
# synchronization work-list (ROADMAP item 2); review the diff before
# committing — a new key is a new shared-state obligation.
vet-baseline:
	go run ./cmd/m3vet -write-baseline vet-baseline.json

bench:
	go test -bench=. -benchmem

# The bench regression gate: rerun the fast experiment subset with run
# captures bundled, keep the JSON artifact for inspection, and fail if
# any gated metric regressed past its tolerance against the committed
# baseline (BENCH_4.json, refresh with `make bench-baseline` when a
# change legitimately moves the numbers — see docs/EXPERIMENTS.md).
# When the gate is red, the diff attributes every regression via the
# two files' captures (layer/path cycle deltas, histogram shift, blame
# drift — docs/OBSERVABILITY.md) and the machine-readable attribution
# is retained as artifacts/diff-report.json. BENCH_0.json through
# BENCH_3.json are previous generations' baselines, kept for
# historical comparison.
bench-smoke:
	mkdir -p artifacts
	go run ./cmd/m3bench -e smoke -capture -json artifacts/bench-smoke.json >artifacts/bench-smoke.log
	go run ./cmd/m3bench -diff -report artifacts/diff-report.json BENCH_4.json artifacts/bench-smoke.json

bench-baseline:
	go run ./cmd/m3bench -e smoke -capture -json BENCH_4.json

# The attribution self-test: capture the tier-1 workload under the
# serial-heap, serial-calendar, and parallel-4 engines (captures must
# be byte-identical), re-capture with the kernel's syscall dispatch
# cost perturbed +10%, and require m3diff to attribute the regression
# to the kernel — top blame-drift category and a growing kernel
# profile layer — with byte-stable reports.
diff-smoke:
	go run ./cmd/m3diff -selftest

# The SLO regression gate: run the critical-path attribution + SLO
# report (cmd/m3slo) over the tier-1 workload and require the JSON
# report — every blame cell, exemplar span tree, and burn rate — to be
# byte-identical to the committed SLO_0.json golden. The report is
# deterministic by construction (docs/OBSERVABILITY.md), so any diff
# is a real behavior change; refresh with `make slo-baseline` when a
# change legitimately moves the attribution.
slo-smoke:
	mkdir -p artifacts
	go run ./cmd/m3slo -w tar -json artifacts/slo-smoke.json >artifacts/slo-smoke.log
	diff -u SLO_0.json artifacts/slo-smoke.json

slo-baseline:
	go run ./cmd/m3slo -w tar -json SLO_0.json

# The chaos tier: determinism under fault injection plus the workload
# matrix that proves isolation survives packet loss, PE crashes, and —
# with the supervisor armed — service crashes that must recover
# (docs/FAULTS.md, docs/RECOVERY.md), plus the chaos-overload tier:
# graceful degradation, kernel shedding, deadline expiry, and the
# zero-overhead-when-off bit-identity proof (docs/OVERLOAD.md).
# Race-enabled — fault events must not break the engine's strict
# hand-off.
chaos:
	go test -race -run 'TestFaultDeterminism|TestChaosMatrix|TestObsChaosStreamDeterministic|TestFlightDump|TestOverload' ./internal/bench

# Short fuzz smoke over the crash-facing decoders — the fault-plan
# parser and the m3fs metadata journal — plus the event-queue
# cross-check (calendar vs reference heap pop order). The full fuzzers
# run for as long as you let them: go test -fuzz FuzzFaultPlan
# ./internal/fault, go test -fuzz FuzzJournal ./internal/m3fs,
# go test -fuzz FuzzEventQueue ./internal/sim.
fuzz:
	go test -run '^$$' -fuzz FuzzFaultPlan -fuzztime 10s ./internal/fault
	go test -run '^$$' -fuzz FuzzJournal -fuzztime 10s ./internal/m3fs
	go test -run '^$$' -fuzz FuzzEventQueue -fuzztime 10s ./internal/sim
