# Convenience targets; `make ci` is the tier-1 gate (see ci.sh).

.PHONY: ci build test vet bench chaos fuzz

ci:
	./ci.sh

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...
	go run ./cmd/m3vet ./...

bench:
	go test -bench=. -benchmem

# The chaos tier: determinism under fault injection plus the workload
# matrix that proves isolation survives packet loss and PE crashes
# (docs/FAULTS.md). Race-enabled — fault events must not break the
# engine's strict hand-off.
chaos:
	go test -race -run 'TestFaultDeterminism|TestChaosMatrix' ./internal/bench

# Short fuzz smoke over the fault-plan decoder (the full fuzzer runs
# for as long as you let it: go test -fuzz FuzzFaultPlan ./internal/fault).
fuzz:
	go test -run '^$$' -fuzz FuzzFaultPlan -fuzztime 10s ./internal/fault
