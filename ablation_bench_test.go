package repro

import (
	"testing"

	"repro/internal/bench"
)

// Ablation benchmarks quantify the design choices DESIGN.md calls out,
// beyond the paper's own figures.

// BenchmarkAblationCredits compares a correctly credited channel
// (total credits <= ringbuffer slots: nothing lost) with an
// overcommitted one (the DTU drops messages, §4.4.3).
func BenchmarkAblationCredits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		honest, err := bench.RunCreditAblation(8, 16, 2, 4)
		if err != nil {
			b.Fatal(err)
		}
		over, err := bench.RunCreditAblation(8, 4, 4, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(honest.Dropped), "honest-drops")
		b.ReportMetric(float64(over.Dropped), "overcommit-drops")
	}
}

// BenchmarkAblationEPMux measures endpoint-multiplexing pressure:
// touching more gates than the DTU has endpoints forces re-activation
// system calls.
func BenchmarkAblationEPMux(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fits, err := bench.RunEPMuxAblation(4, 16)
		if err != nil {
			b.Fatal(err)
		}
		thrash, err := bench.RunEPMuxAblation(12, 16)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(fits.Cycles), "fits-cycles")
		b.ReportMetric(float64(thrash.Cycles), "thrash-cycles")
		b.ReportMetric(float64(thrash.Activates), "thrash-activations")
	}
}

// BenchmarkAblationExtentBatch compares single-block appends with the
// default 256-block batching when writing a file.
func BenchmarkAblationExtentBatch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		single, err := bench.RunExtentBatchAblation(1)
		if err != nil {
			b.Fatal(err)
		}
		batched, err := bench.RunExtentBatchAblation(256)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(single.WriteCycles), "batch1-cycles")
		b.ReportMetric(float64(batched.WriteCycles), "batch256-cycles")
		b.ReportMetric(float64(single.WriteCycles)/float64(batched.WriteCycles), "batch-penalty")
	}
}

// BenchmarkAblationContention re-runs 8 tar instances with real
// NoC/DRAM contention vs. the perfectly-scaling variant of Figure 6.
func BenchmarkAblationContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunContentionAblation(8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Unlimited), "perfect-cycles")
		b.ReportMetric(float64(r.Contended), "contended-cycles")
		b.ReportMetric(float64(r.Contended)/float64(r.Unlimited), "contention-penalty")
	}
}

// BenchmarkAblationMmapCopy reproduces why the paper excluded the mmap
// copy numbers (§5.4): cache thrashing between kernel fault handling
// and the application's memcpy.
func BenchmarkAblationMmapCopy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rw, mm := bench.RunMmapComparison(512 << 10)
		b.ReportMetric(float64(rw), "readwrite-cycles")
		b.ReportMetric(float64(mm), "mmap-cycles")
		b.ReportMetric(float64(mm)/float64(rw), "mmap-penalty")
	}
}

// BenchmarkAblationTopology compares 8 contended tar instances on the
// 2D mesh against a torus with wrap-around links.
func BenchmarkAblationTopology(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunTopologyAblation(8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Mesh), "mesh-cycles")
		b.ReportMetric(float64(r.Torus), "torus-cycles")
		b.ReportMetric(float64(r.Mesh)/float64(r.Torus), "torus-gain")
	}
}
