// Command m3diff is the differential-observability CLI: it aligns two
// run captures — standalone capture JSON files or the captures bundled
// into bench JSON by `m3bench -capture` — and attributes their cycle
// delta: per-(PE, layer, kind) profile deltas with the top span-path
// contributors, per-bucket histogram shift with quantile deltas,
// blame-category drift, and metric-by-metric changes.
//
// All reports are byte-deterministic: diffing the same two files always
// produces the same bytes, and captures themselves are byte-identical
// across serial and parallel simulation engines, so a nonempty diff is
// a real behavior change, never engine noise.
//
// Usage:
//
//	m3diff old.json new.json              # text report
//	m3diff -w tar old.json new.json       # pick a workload from bench JSON
//	m3diff -json d.json old.json new.json # machine-readable report
//	m3diff -folded d.folded old.json new.json  # flamegraph difffolded
//	m3diff -selftest                      # seeded-regression self-test
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
)

func main() {
	wl := flag.String("w", "", "workload to select when an input is a bench JSON with several captures")
	top := flag.Int("top", 10, "cap the (PE, layer, kind) group table in the text report (0 = all)")
	jsonOut := flag.String("json", "", "write the machine-readable diff to this file ('-' for stdout)")
	folded := flag.String("folded", "", "write the flamegraph difffolded profile ('path old new' lines) to this file")
	selftest := flag.Bool("selftest", false, "run the attribution self-test: seed a +10% kernel dispatch-cost regression and require the kernel layer to rank first")
	flag.Parse()

	if *selftest {
		if err := runSelftest(); err != nil {
			fmt.Fprintf(os.Stderr, "m3diff: selftest: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "m3diff: need exactly two arguments: old.json new.json (or -selftest)")
		os.Exit(2)
	}
	oldCap, err := loadCapture(flag.Arg(0), *wl)
	if err != nil {
		fmt.Fprintf(os.Stderr, "m3diff: %v\n", err)
		os.Exit(1)
	}
	newCap, err := loadCapture(flag.Arg(1), *wl)
	if err != nil {
		fmt.Fprintf(os.Stderr, "m3diff: %v\n", err)
		os.Exit(1)
	}
	d, err := obs.DiffCaptures(oldCap, newCap)
	if err != nil {
		fmt.Fprintf(os.Stderr, "m3diff: %v\n", err)
		os.Exit(1)
	}
	if err := d.WriteText(os.Stdout, *top); err != nil {
		fmt.Fprintf(os.Stderr, "m3diff: %v\n", err)
		os.Exit(1)
	}
	if *jsonOut != "" {
		if err := writeTo(*jsonOut, func(w *os.File) error { return d.WriteJSON(w) }); err != nil {
			fmt.Fprintf(os.Stderr, "m3diff: %v\n", err)
			os.Exit(1)
		}
	}
	if *folded != "" {
		if err := writeTo(*folded, func(w *os.File) error {
			return obs.WriteFoldedDiff(w, oldCap, newCap)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "m3diff: %v\n", err)
			os.Exit(1)
		}
	}
}

// loadCapture reads path as a standalone capture or as a bench JSON
// carrying captures; wl selects among several bundled captures.
func loadCapture(path, wl string) (*obs.RunCapture, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if c, err := obs.ReadCaptureJSON(data); err == nil {
		if wl != "" && c.Workload != wl {
			return nil, fmt.Errorf("%s: capture is of workload %q, not %q", path, c.Workload, wl)
		}
		return c, nil
	}
	f, err := bench.ReadBenchJSON(data)
	if err != nil {
		return nil, fmt.Errorf("%s: neither a run capture nor a bench JSON: %w", path, err)
	}
	if len(f.Captures) == 0 {
		return nil, fmt.Errorf("%s: bench JSON carries no captures (rerun with m3bench -capture)", path)
	}
	if wl == "" {
		if len(f.Captures) == 1 {
			return f.Captures[0], nil
		}
		var names []string
		for _, c := range f.Captures {
			names = append(names, c.Workload)
		}
		return nil, fmt.Errorf("%s: %d captures (%v); pick one with -w", path, len(f.Captures), names)
	}
	if c := bench.FindCapture(f, wl); c != nil {
		return c, nil
	}
	return nil, fmt.Errorf("%s: no capture of workload %q", path, wl)
}

// writeTo writes via fn to path, or stdout for "-".
func writeTo(path string, fn func(*os.File) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// selftestWorkload is the workload the self-test captures.
const selftestWorkload = "tar"

// runSelftest is `make diff-smoke`: prove the attribution pipeline
// end to end on a seeded regression.
//
//  1. Capture the baseline workload under all three engine variants
//     (serial-heap, serial-calendar, parallel) and require the capture
//     JSON to be byte-identical — the differential contract.
//  2. Re-capture with the kernel's syscall dispatch cost perturbed
//     +10% (core.CostDispatch/10 extra cycles per syscall).
//  3. Diff base vs perturbed and require the kernel to rank first:
//     top blame-drift category "kernel" and a positive kernel
//     profile-layer delta.
//  4. Render the report twice and require byte-identical output.
func runSelftest() error {
	variants := []bench.EngineVariant{
		{Name: "serial-heap", Cfg: sim.Config{Queue: sim.QueueHeap}},
		{Name: "serial-calendar", Cfg: sim.Config{}},
		{Name: "parallel-4", Cfg: sim.Config{Workers: 4}},
	}
	fmt.Printf("selftest: capturing %s under %d engine variants\n", selftestWorkload, len(variants))
	var base *obs.RunCapture
	var baseJSON string
	for _, v := range variants {
		c, err := bench.RunWorkloadCapture(selftestWorkload, bench.CaptureRunOptions{Engine: v.Cfg})
		if err != nil {
			return fmt.Errorf("capturing under %s: %w", v.Name, err)
		}
		js, err := captureString(c)
		if err != nil {
			return err
		}
		if base == nil {
			base, baseJSON = c, js
			continue
		}
		if js != baseJSON {
			return fmt.Errorf("capture under %s differs from %s: the differential contract is broken", v.Name, variants[0].Name)
		}
	}
	fmt.Printf("selftest: captures byte-identical across %d engines\n", len(variants))

	delta := sim.Time(core.CostDispatch) / 10
	perturbed, err := bench.RunWorkloadCapture(selftestWorkload, bench.CaptureRunOptions{DispatchCostDelta: delta})
	if err != nil {
		return fmt.Errorf("capturing perturbed run: %w", err)
	}
	d, err := obs.DiffCaptures(base, perturbed)
	if err != nil {
		return err
	}
	if d.Empty() {
		return fmt.Errorf("+%d cycles/syscall perturbation produced an empty diff", delta)
	}
	if err := d.WriteText(os.Stdout, 5); err != nil {
		return err
	}

	blame, ok := d.TopBlame()
	if !ok || blame.Category != "kernel" {
		return fmt.Errorf("top blame drift = %+v (ok=%v), want category kernel", blame, ok)
	}
	kernelGrew := false
	for _, l := range d.Layers {
		if l.Layer == "kernel" && l.Delta() > 0 {
			kernelGrew = true
		}
	}
	if !kernelGrew {
		return fmt.Errorf("kernel profile layer did not grow: %+v", d.Layers)
	}

	r1, err := diffString(d, base, perturbed)
	if err != nil {
		return err
	}
	d2, err := obs.DiffCaptures(base, perturbed)
	if err != nil {
		return err
	}
	r2, err := diffString(d2, base, perturbed)
	if err != nil {
		return err
	}
	if r1 != r2 {
		return fmt.Errorf("diff report not byte-deterministic")
	}
	fmt.Printf("selftest: +%d cycles/syscall attributed to kernel (blame %s, share %.1f%% -> %.1f%%); reports byte-stable\n",
		delta, blame.Category, 100*blame.OldShare, 100*blame.NewShare)
	return nil
}

// captureString renders a capture's JSON into a string.
func captureString(c *obs.RunCapture) (string, error) {
	var sb writerBuf
	if err := c.WriteJSON(&sb); err != nil {
		return "", err
	}
	return string(sb), nil
}

// diffString renders every diff format into one string.
func diffString(d *obs.CaptureDiff, old, new *obs.RunCapture) (string, error) {
	var sb writerBuf
	if err := d.WriteText(&sb, 0); err != nil {
		return "", err
	}
	if err := d.WriteJSON(&sb); err != nil {
		return "", err
	}
	if err := obs.WriteFoldedDiff(&sb, old, new); err != nil {
		return "", err
	}
	return string(sb), nil
}

// writerBuf is a minimal io.Writer over a byte slice.
type writerBuf []byte

func (b *writerBuf) Write(p []byte) (int, error) {
	*b = append(*b, p...)
	return len(p), nil
}
