package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/workload"
)

// csvExporter is implemented by every experiment result.
type csvExporter interface {
	CSV() []*bench.CSVTable
}

// csvDir is set from the -csv flag.
var csvDir string

func writeCSV(dir string, r csvExporter) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, t := range r.CSV() {
		f, err := os.Create(filepath.Join(dir, t.Name+".csv"))
		if err != nil {
			return err
		}
		if _, err := t.WriteTo(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", filepath.Join(dir, t.Name+".csv"))
	}
	return nil
}

// printer is implemented by every experiment result.
type printer interface {
	Print(w io.Writer)
}

// runCSVExperiment is the shared runner body: print the human report,
// write CSVs when asked, and flatten the tables into JSON metrics.
func runCSVExperiment(name string, r interface {
	csvExporter
	printer
}) (bench.BenchExperiment, error) {
	r.Print(os.Stdout)
	if err := writeCSV(csvDir, r); err != nil {
		return bench.BenchExperiment{}, err
	}
	return bench.ExperimentFromTables(name, r.CSV()), nil
}

// runUtil reports the §3.4 utilization trade-off for every workload.
func runUtil() (bench.BenchExperiment, error) {
	exp := bench.BenchExperiment{Name: "util"}
	fmt.Println("System utilization on M3 (§3.4: traded for heterogeneity support)")
	for _, b := range workload.All() {
		r, err := bench.RunUtilization(b)
		if err != nil {
			return exp, err
		}
		fmt.Printf("  %s\n", r)
		exp.Metrics = append(exp.Metrics, bench.BenchMetric{
			Name: "util/" + r.Benchmark + "/elapsed_cycles", Value: float64(r.Elapsed), Unit: "cycles",
		})
		for _, u := range r.PEs {
			exp.Metrics = append(exp.Metrics, bench.BenchMetric{
				// Busy fractions are higher-is-better; gate on idle
				// fraction instead so the shared lower-is-better rule
				// applies.
				Name:  fmt.Sprintf("util/%s/pe%d_%s_idle", r.Benchmark, u.PE, u.Role),
				Value: 1 - u.Busy,
				Unit:  "ratio",
				// Utilization is a coarse trade-off measurement; allow
				// more drift than cycle counts before failing CI.
				Tol: 0.25,
			})
		}
	}
	return exp, nil
}

// runWitness records the determinism witness (run statistics and
// observability stream hashes) as info metrics.
func runWitness() (bench.BenchExperiment, error) {
	exp, err := bench.RunWitness()
	if err != nil {
		return exp, err
	}
	fmt.Println("Determinism witness (info metrics, not diff-gated):")
	for _, m := range exp.Metrics {
		if m.Info != "" {
			fmt.Printf("  %s = %s\n", m.Name, m.Info)
		} else {
			fmt.Printf("  %s = %.0f\n", m.Name, m.Value)
		}
	}
	return exp, nil
}

func runFig3() (bench.BenchExperiment, error) {
	r, err := bench.Fig3()
	if err != nil {
		return bench.BenchExperiment{}, err
	}
	return runCSVExperiment("fig3", r)
}

func runSec52() (bench.BenchExperiment, error) {
	r, err := bench.Sec52()
	if err != nil {
		return bench.BenchExperiment{}, err
	}
	return runCSVExperiment("sec52", r)
}

func runFig4() (bench.BenchExperiment, error) {
	r, err := bench.Fig4()
	if err != nil {
		return bench.BenchExperiment{}, err
	}
	return runCSVExperiment("fig4", r)
}

func runFig5() (bench.BenchExperiment, error) {
	r, err := bench.Fig5()
	if err != nil {
		return bench.BenchExperiment{}, err
	}
	return runCSVExperiment("fig5", r)
}

func runFig6() (bench.BenchExperiment, error) {
	r, err := bench.Fig6()
	if err != nil {
		return bench.BenchExperiment{}, err
	}
	return runCSVExperiment("fig6", r)
}

func runFig7() (bench.BenchExperiment, error) {
	r, err := bench.Fig7()
	if err != nil {
		return bench.BenchExperiment{}, err
	}
	return runCSVExperiment("fig7", r)
}

// runEFault reports the fault-injection degradation sweep (E-fault in
// EXPERIMENTS.md): untar completion time under rising per-link packet
// loss with the DTU retransmission layer armed.
func runEFault() (bench.BenchExperiment, error) {
	r, err := bench.EFault()
	if err != nil {
		return bench.BenchExperiment{}, err
	}
	return runCSVExperiment("efault", r)
}

// runERecover reports the service-crash availability sweep (E-recover
// in EXPERIMENTS.md): untar completion and time-to-recover while the
// m3fs PE is crashed repeatedly and the supervisor restarts it.
func runERecover() (bench.BenchExperiment, error) {
	r, err := bench.ERecover()
	if err != nil {
		return bench.BenchExperiment{}, err
	}
	return runCSVExperiment("erecover", r)
}

// runELat reports the latency-percentile experiment (E-lat in
// EXPERIMENTS.md): per-operation latency distributions on M3 vs the
// Linux model, plus M3's hardware-level histograms from the structured
// tracer.
func runELat() (bench.BenchExperiment, error) {
	r, err := bench.ELat()
	if err != nil {
		return bench.BenchExperiment{}, err
	}
	return runCSVExperiment("elat", r)
}

// runETail reports the critical-path blame decomposition of the p50
// and p99 requests under burst arrivals (E-tail in EXPERIMENTS.md),
// M3 vs the Linux model, per workload.
func runETail() (bench.BenchExperiment, error) {
	r, err := bench.ETail()
	if err != nil {
		return bench.BenchExperiment{}, err
	}
	return runCSVExperiment("etail", r)
}

// runELoad reports graceful degradation under open-loop overload
// (docs/OVERLOAD.md): capacity probe, then 0.5x/1x/2x offered load
// with the full overload stack armed.
func runELoad() (bench.BenchExperiment, error) {
	r, err := bench.ELoad()
	if err != nil {
		return bench.BenchExperiment{}, err
	}
	return runCSVExperiment("eload", r)
}
