package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/workload"
)

// csvExporter is implemented by every experiment result.
type csvExporter interface {
	CSV() []*bench.CSVTable
}

// csvDir is set from the -csv flag.
var csvDir string

func writeCSV(dir string, r csvExporter) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, t := range r.CSV() {
		f, err := os.Create(filepath.Join(dir, t.Name+".csv"))
		if err != nil {
			return err
		}
		if _, err := t.WriteTo(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", filepath.Join(dir, t.Name+".csv"))
	}
	return nil
}

// runUtil reports the §3.4 utilization trade-off for every workload.
func runUtil() error {
	fmt.Println("System utilization on M3 (§3.4: traded for heterogeneity support)")
	for _, b := range workload.All() {
		r, err := bench.RunUtilization(b)
		if err != nil {
			return err
		}
		fmt.Printf("  %s\n", r)
	}
	return nil
}

func runFig3() error {
	r, err := bench.Fig3()
	if err != nil {
		return err
	}
	r.Print(os.Stdout)
	return writeCSV(csvDir, r)
}

func runSec52() error {
	r, err := bench.Sec52()
	if err != nil {
		return err
	}
	r.Print(os.Stdout)
	return writeCSV(csvDir, r)
}

func runFig4() error {
	r, err := bench.Fig4()
	if err != nil {
		return err
	}
	r.Print(os.Stdout)
	return writeCSV(csvDir, r)
}

func runFig5() error {
	r, err := bench.Fig5()
	if err != nil {
		return err
	}
	r.Print(os.Stdout)
	return writeCSV(csvDir, r)
}

func runFig6() error {
	r, err := bench.Fig6()
	if err != nil {
		return err
	}
	r.Print(os.Stdout)
	return writeCSV(csvDir, r)
}

// runEFault reports the fault-injection degradation sweep (E-fault in
// EXPERIMENTS.md): untar completion time under rising per-link packet
// loss with the DTU retransmission layer armed.
func runEFault() error {
	r, err := bench.EFault()
	if err != nil {
		return err
	}
	r.Print(os.Stdout)
	return writeCSV(csvDir, r)
}

// runERecover reports the service-crash availability sweep (E-recover
// in EXPERIMENTS.md): untar completion and time-to-recover while the
// m3fs PE is crashed repeatedly and the supervisor restarts it.
func runERecover() error {
	r, err := bench.ERecover()
	if err != nil {
		return err
	}
	r.Print(os.Stdout)
	return writeCSV(csvDir, r)
}

// runELat reports the latency-percentile experiment (E-lat in
// EXPERIMENTS.md): per-operation latency distributions on M3 vs the
// Linux model, plus M3's hardware-level histograms from the
// structured tracer.
func runELat() error {
	r, err := bench.ELat()
	if err != nil {
		return err
	}
	r.Print(os.Stdout)
	return writeCSV(csvDir, r)
}

func runFig7() error {
	r, err := bench.Fig7()
	if err != nil {
		return err
	}
	r.Print(os.Stdout)
	return writeCSV(csvDir, r)
}
