// Command m3bench regenerates the paper's evaluation: every table and
// figure from §5. Run it with -e all (default) or a comma-separated
// subset of fig3, sec52, fig4, fig5, fig6, fig7.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"
)

func main() {
	exps := flag.String("e", "all", "experiments to run: all or comma-separated of fig3,sec52,fig4,fig5,fig6,fig7,util,efault,erecover,elat")
	csv := flag.String("csv", "", "directory to additionally write CSV tables into")
	flag.Parse()
	csvDir = *csv

	want := map[string]bool{}
	if *exps == "all" {
		for _, e := range []string{"fig3", "sec52", "fig4", "fig5", "fig6", "fig7", "util", "efault", "erecover", "elat"} {
			want[e] = true
		}
	} else {
		for _, e := range strings.Split(*exps, ",") {
			want[strings.TrimSpace(e)] = true
		}
	}

	runners := []struct {
		name string
		run  func() error
	}{
		{"fig3", runFig3},
		{"sec52", runSec52},
		{"fig4", runFig4},
		{"fig5", runFig5},
		{"fig6", runFig6},
		{"fig7", runFig7},
		{"util", runUtil},
		{"efault", runEFault},
		{"erecover", runERecover},
		{"elat", runELat},
	}
	for _, r := range runners {
		if !want[r.name] {
			continue
		}
		start := time.Now()
		if err := r.run(); err != nil {
			fmt.Fprintf(os.Stderr, "m3bench: %s failed: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Printf("  [%s took %.1fs wall clock]\n\n", r.name, time.Since(start).Seconds())
	}
}
