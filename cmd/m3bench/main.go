// Command m3bench regenerates the paper's evaluation: every table and
// figure from §5, plus this repository's own experiments. Run it with
// -e all (default), -e smoke (the fast CI subset), or a comma-separated
// experiment list; -json writes the machine-readable result file and
// -diff compares two such files under the regression tolerances.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/sim"
)

// experiment is one entry of the registry: the single source of truth
// for the -e help text, the dispatch order, and the smoke subset.
type experiment struct {
	name string
	desc string
	// smoke marks the experiment as part of the fast CI subset
	// (`-e smoke`, wired into make bench-smoke).
	smoke bool
	// run executes the experiment, prints its human-readable report,
	// and returns the metric set for the JSON file.
	run func() (bench.BenchExperiment, error)
}

// experiments is the registry. Order is execution and JSON order.
var experiments = []experiment{
	{"fig3", "syscall + file-op microbenchmarks vs Linux", true, runFig3},
	{"sec52", "§5.2 OS-primitive cost table (Xtensa vs ARM)", false, runSec52},
	{"fig4", "extent-size sweep of read/write throughput", false, runFig4},
	{"fig5", "application benchmarks vs Linux", false, runFig5},
	{"fig6", "parallel instance scaling", false, runFig6},
	{"fig7", "FFT accelerator offload", false, runFig7},
	{"util", "§3.4 per-PE utilization trade-off", true, runUtil},
	{"efault", "completion time under packet loss", false, runEFault},
	{"erecover", "m3fs crash/restart availability sweep", false, runERecover},
	{"elat", "latency percentile tables", true, runELat},
	{"eload", "graceful degradation under open-loop overload", true, runELoad},
	{"etail", "critical-path blame at p50/p99 vs Linux", true, runETail},
	{"witness", "determinism witness: run stats + stream hashes", true, runWitness},
}

// expHelp renders the -e flag help from the registry.
func expHelp() string {
	var names []string
	for _, e := range experiments {
		names = append(names, e.name)
	}
	return "experiments to run: all, smoke, or comma-separated of " + strings.Join(names, ",")
}

func main() {
	exps := flag.String("e", "all", expHelp())
	csv := flag.String("csv", "", "directory to additionally write CSV tables into")
	jsonOut := flag.String("json", "", "file to write the schema-versioned bench JSON into")
	capture := flag.Bool("capture", false, "bundle run captures (profile, metrics, histograms, blame) per experiment workload into the bench JSON, for -diff attribution")
	diff := flag.Bool("diff", false, "compare two bench JSON files: m3bench -diff old.json new.json; exits 1 on regression")
	report := flag.String("report", "", "with -diff: write the machine-readable attribution report (diff-report JSON) to this file")
	flag.Parse()
	csvDir = *csv

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "m3bench: -diff needs exactly two arguments: old.json new.json")
			os.Exit(2)
		}
		if err := runDiff(flag.Arg(0), flag.Arg(1), *report); err != nil {
			fmt.Fprintf(os.Stderr, "m3bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	want := map[string]bool{}
	switch *exps {
	case "all":
		for _, e := range experiments {
			want[e.name] = true
		}
	case "smoke":
		for _, e := range experiments {
			if e.smoke {
				want[e.name] = true
			}
		}
	default:
		for _, name := range strings.Split(*exps, ",") {
			name = strings.TrimSpace(name)
			if !knownExperiment(name) {
				fmt.Fprintf(os.Stderr, "m3bench: unknown experiment %q (%s)\n", name, expHelp())
				os.Exit(2)
			}
			want[name] = true
		}
	}

	out := &bench.BenchFile{Schema: bench.BenchSchema}
	for _, e := range experiments {
		if !want[e.name] {
			continue
		}
		start := time.Now()
		ev0 := sim.TotalExecutedEvents()
		exp, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "m3bench: %s failed: %v\n", e.name, err)
			os.Exit(1)
		}
		wall := time.Since(start)
		// Simulator wall-speed per experiment (ROADMAP item 2): an info
		// metric, so -diff reports it without ever gating on host speed.
		//m3vet:allow timetaint wall-clock speed is host-side reporting, never simulation state
		if dev := sim.TotalExecutedEvents() - ev0; dev > 0 && wall > 0 {
			exp.Metrics = append(exp.Metrics, bench.BenchMetric{
				Name:  e.name + "/events_per_sec_wall",
				Value: float64(dev) / wall.Seconds(),
				Unit:  "info",
			})
		}
		out.Experiments = append(out.Experiments, exp)
		fmt.Printf("  [%s took %.1fs wall clock]\n\n", e.name, wall.Seconds())
	}

	if *capture {
		var names []string
		for _, e := range experiments {
			if want[e.name] {
				names = append(names, e.name)
			}
		}
		caps, err := bench.CaptureAll(names, bench.CaptureRunOptions{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "m3bench: capture failed: %v\n", err)
			os.Exit(1)
		}
		out.Captures = caps
		for _, c := range caps {
			fmt.Printf("captured workload %s (%d profile paths, %d metrics, %d histograms)\n",
				c.Workload, len(c.Profile), len(c.Metrics), len(c.Hists))
		}
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "m3bench: %v\n", err)
			os.Exit(1)
		}
		if err := out.WriteJSON(f); err == nil {
			err = f.Close()
		} else {
			_ = f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "m3bench: writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
}

func knownExperiment(name string) bool {
	for _, e := range experiments {
		if e.name == name {
			return true
		}
	}
	return false
}

// runDiff loads both files, gates on the comparison, and — when the
// gate is red — attributes every regression via the files' run
// captures (docs/OBSERVABILITY.md, "reading a red gate").
func runDiff(oldPath, newPath, reportPath string) error {
	load := func(path string) (*bench.BenchFile, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return bench.ReadBenchJSON(data)
	}
	oldFile, err := load(oldPath)
	if err != nil {
		return err
	}
	newFile, err := load(newPath)
	if err != nil {
		return err
	}
	d := bench.DiffBench(oldFile, newFile)
	if err := d.Write(os.Stdout); err != nil {
		return err
	}
	rep, err := bench.Attribute(d, oldFile, newFile)
	if err != nil {
		return err
	}
	if d.Failed() {
		if err := rep.WriteText(os.Stdout); err != nil {
			return err
		}
	}
	if reportPath != "" {
		f, err := os.Create(reportPath)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err == nil {
			err = f.Close()
		} else {
			_ = f.Close()
		}
		if err != nil {
			return fmt.Errorf("writing %s: %w", reportPath, err)
		}
		fmt.Printf("wrote %s\n", reportPath)
	}
	if d.Failed() {
		return fmt.Errorf("regressed past tolerance: %s", d.Headline(8))
	}
	return nil
}
