// Command m3slo is the critical-path attribution and SLO reporter: it
// runs a named workload with the structured tracer wired into the
// streaming critical-path engine (internal/obs/critpath.go), registers
// the standard end-to-end objectives, and reports where each request's
// latency went — app compute, DTU queueing/credit stalls, NoC wire
// time, kernel service, retransmit/backoff, overload shed — at p50,
// p99 and p99.9, with worst-N exemplar span trees and the SLO
// burn-rate table.
//
// The report is deterministic: identical (workload, flags) runs
// produce byte-identical output, including -json, across serial and
// parallel engines. Exemplar SpanIDs pair with `m3trace -span` to
// drill into the exact p99 request.
//
// Usage:
//
//	m3slo -w tar
//	m3slo -w find -json find-slo.json
//	m3slo -w tar -folded tar-blame.folded
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/m3"
	"repro/internal/m3fs"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/tile"
	"repro/internal/workload"
)

// Standard objective names (package constants: m3vet sloname).
const (
	// sloTail: the p99-style latency objective over completed requests.
	sloTail = "e2e_latency"
	// sloAvail: the availability objective over completed requests.
	sloAvail = "e2e_availability"
)

// reportSchema versions the -json layout.
const reportSchema = 1

type blameJSON struct {
	Category string `json:"category"`
	Cycles   uint64 `json:"cycles"`
}

type quantileJSON struct {
	Q       float64     `json:"q"`
	Span    uint64      `json:"span"`
	Kind    string      `json:"kind"`
	Latency uint64      `json:"latency_cycles"`
	Fail    bool        `json:"fail"`
	Blame   []blameJSON `json:"blame"`
}

type exemplarJSON struct {
	Span      uint64   `json:"span"`
	Kind      string   `json:"kind"`
	Latency   uint64   `json:"latency_cycles"`
	Fail      bool     `json:"fail"`
	Truncated bool     `json:"truncated"`
	Tree      []string `json:"tree"`
}

type sloJSON struct {
	Name        string  `json:"name"`
	Objective   float64 `json:"objective"`
	Good        uint64  `json:"good"`
	Total       uint64  `json:"total"`
	BurnLong    float64 `json:"burn_long"`
	BurnShort   float64 `json:"burn_short"`
	Transitions uint64  `json:"transitions"`
	State       string  `json:"state"`
}

type reportJSON struct {
	Schema    int            `json:"schema"`
	Workload  string         `json:"workload"`
	Completed uint64         `json:"completed"`
	Failed    uint64         `json:"failed"`
	Evicted   uint64         `json:"evicted"`
	Truncated uint64         `json:"truncated"`
	Total     []blameJSON    `json:"total_blame"`
	Quantiles []quantileJSON `json:"quantiles"`
	Exemplars []exemplarJSON `json:"exemplars"`
	SLOs      []sloJSON      `json:"slos"`
}

func blameList(v obs.BlameVec) []blameJSON {
	out := make([]blameJSON, 0, obs.NumBlame)
	for cat := obs.BlameCat(0); cat < obs.NumBlame; cat++ {
		out = append(out, blameJSON{Category: cat.String(), Cycles: v[cat]})
	}
	return out
}

func main() {
	name := flag.String("w", "tar", "workload: cat+tr, tar, untar, find, sqlite")
	pes := flag.Int("pes", 0, "extra application PEs beyond what the workload needs")
	exemplars := flag.Int("exemplars", 4, "worst-N exemplar span trees to capture")
	bound := flag.Uint64("bound", 1<<17, "latency objective bound in cycles")
	parallel := flag.Int("parallel", 0, "parallel engine workers (0/1 = serial)")
	jsonOut := flag.String("json", "", "write the machine-readable report to this file ('-' for stdout)")
	folded := flag.String("folded", "", "write folded blame stacks (flamegraph.pl format, m3prof-compatible) to this file")
	flag.Parse()

	b, err := workload.ByName(*name)
	if err != nil {
		log.Fatal(err)
	}

	eng := sim.NewEngineWith(sim.Config{Workers: *parallel})
	cfg := tile.Homogeneous(2 + b.PEs + *pes)
	slos := obs.NewSLOSet()
	slos.Objective(sloTail, obs.SLOConfig{
		Objective: 0.99, LatencyBound: sim.Time(*bound), Window: 1 << 20})
	slos.Objective(sloAvail, obs.SLOConfig{Objective: 0.999, Window: 1 << 20})
	cp := obs.NewCritPath(obs.CritPathOptions{Exemplars: *exemplars, SLO: slos})
	cfg.Obs = obs.New(obs.Options{Sink: cp.Consume})

	plat := tile.NewPlatform(eng, cfg)
	kern := core.Boot(plat, 0)
	if _, err := kern.StartInit("m3fs", tile.CoreXtensa, m3fs.Program(kern, m3fs.Config{}, nil)); err != nil {
		log.Fatal(err)
	}
	_, err = kern.StartInit("app", tile.CoreXtensa, func(ctx *tile.Ctx) {
		env := m3.NewEnv(ctx, kern)
		mos, err := workload.NewM3OS(env)
		if err != nil {
			log.Fatal(err)
		}
		if err := b.Setup(mos); err != nil {
			log.Fatal(err)
		}
		if err := b.Run(mos); err != nil {
			log.Fatal(err)
		}
		env.Exit(0)
	})
	if err != nil {
		log.Fatal(err)
	}
	end := eng.Run()

	qs := []float64{0.5, 0.99, 0.999}
	rep := cp.ReportAt(qs)

	out := reportJSON{
		Schema: reportSchema, Workload: b.Name,
		Completed: rep.Completed, Failed: rep.Failed,
		Evicted: rep.Evicted, Truncated: rep.Truncated,
		Total: blameList(rep.Total),
	}
	for _, q := range rep.Quantiles {
		out.Quantiles = append(out.Quantiles, quantileJSON{
			Q: q.Q, Span: uint64(q.Span), Kind: q.Kind,
			Latency: q.Latency, Fail: q.Fail, Blame: blameList(q.Blame),
		})
	}
	for _, ex := range rep.Exemplars {
		ej := exemplarJSON{
			Span: uint64(ex.Span), Kind: ex.Kind.String(),
			Latency: uint64(ex.Latency()), Fail: ex.Fail, Truncated: ex.Truncated,
		}
		for _, ev := range ex.Events {
			ej.Tree = append(ej.Tree, ev.String())
		}
		out.Exemplars = append(out.Exemplars, ej)
	}
	for _, o := range slos.All() {
		long, short := o.BurnRates()
		good, total := o.Counts()
		out.SLOs = append(out.SLOs, sloJSON{
			Name: o.Name(), Objective: o.Config().Objective,
			Good: good, Total: total, BurnLong: long, BurnShort: short,
			Transitions: o.Transitions(), State: o.State().String(),
		})
	}

	printText(os.Stdout, b.Name, end, rep, out)

	if *folded != "" {
		f, err := os.Create(*folded)
		if err != nil {
			log.Fatal(err)
		}
		if err := cp.WriteFolded(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  wrote folded blame stacks -> %s\n", *folded)
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(out, "", " ")
		if err != nil {
			log.Fatal(err)
		}
		data = append(data, '\n')
		if *jsonOut == "-" {
			if _, err := os.Stdout.Write(data); err != nil {
				log.Fatal(err)
			}
		} else {
			if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  wrote %s\n", *jsonOut)
		}
	}
}

func printText(w *os.File, name string, end sim.Time, rep obs.Report, out reportJSON) {
	fmt.Fprintf(w, "workload %s: %d cycles simulated, %d requests (%d failed, %d evicted, %d truncated)\n",
		name, end, rep.Completed, rep.Failed, rep.Evicted, rep.Truncated)

	fmt.Fprintln(w, "  aggregate blame (all completed requests):")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	total := rep.Total.Total()
	fmt.Fprintln(tw, "  category\tcycles\tshare")
	for cat := obs.BlameCat(0); cat < obs.NumBlame; cat++ {
		share := 0.0
		if total > 0 {
			share = 100 * float64(rep.Total[cat]) / float64(total)
		}
		fmt.Fprintf(tw, "  %s\t%d\t%.1f%%\n", cat, rep.Total[cat], share)
	}
	tw.Flush()

	fmt.Fprintln(w, "  per-quantile blame (the request at each quantile):")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  q\tspan\tkind\tlatency\tapp\tqueue\tnoc\tkernel\tretry\tshed")
	for _, q := range rep.Quantiles {
		fmt.Fprintf(tw, "  p%g\t%d\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			q.Q*100, q.Span, q.Kind, q.Latency,
			q.Blame[obs.BlameApp], q.Blame[obs.BlameQueue], q.Blame[obs.BlameNoC],
			q.Blame[obs.BlameKernel], q.Blame[obs.BlameRetry], q.Blame[obs.BlameShed])
	}
	tw.Flush()

	fmt.Fprintln(w, "  worst exemplars (drill in with m3trace export -span <id> -text):")
	for _, ex := range out.Exemplars {
		fmt.Fprintf(w, "    span %d: %s, %d cycles, %d events (fail=%v)\n",
			ex.Span, ex.Kind, ex.Latency, len(ex.Tree), ex.Fail)
	}

	fmt.Fprintln(w, "  objectives:")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  slo\tobjective\tgood/total\tburn(long)\tburn(short)\tstate")
	for _, o := range out.SLOs {
		fmt.Fprintf(tw, "  %s\t%g\t%d/%d\t%.3f\t%.3f\t%s\n",
			o.Name, o.Objective, o.Good, o.Total, o.BurnLong, o.BurnShort, o.State)
	}
	tw.Flush()
}
