// Command m3prof is the cycle-attribution profiler: it runs a named
// workload with the structured tracer wired into the streaming
// profiler and reports where the simulated cycles went, per (PE,
// layer, span-kind) call path. The folded-stack output (-o) feeds
// directly into flamegraph.pl, inferno, or speedscope; the default
// report prints the hottest paths and the per-PE attribution totals.
//
// Usage:
//
//	m3prof -w tar -top 20
//	m3prof -w find -o find.folded && flamegraph.pl find.folded > find.svg
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/m3"
	"repro/internal/m3fs"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/tile"
	"repro/internal/workload"
)

func main() {
	name := flag.String("w", "tar", "workload: cat+tr, tar, untar, find, sqlite")
	pes := flag.Int("pes", 0, "extra application PEs beyond what the workload needs")
	top := flag.Int("top", 15, "number of hottest call paths to print")
	out := flag.String("o", "", "write folded stacks (flamegraph.pl format) to this file")
	flag.Parse()

	b, err := workload.ByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	prof := obs.NewProfiler()
	eng := sim.NewEngine()
	cfg := tile.Homogeneous(2 + b.PEs + *pes)
	cfg.Obs = obs.New(obs.Options{Sink: prof.Consume})
	plat := tile.NewPlatform(eng, cfg)
	kern := core.Boot(plat, 0)
	if _, err := kern.StartInit("m3fs", tile.CoreXtensa, m3fs.Program(kern, m3fs.Config{}, nil)); err != nil {
		log.Fatal(err)
	}
	_, err = kern.StartInit("app", tile.CoreXtensa, func(ctx *tile.Ctx) {
		env := m3.NewEnv(ctx, kern)
		os, err := workload.NewM3OS(env)
		if err != nil {
			log.Fatal(err)
		}
		if err := b.Setup(os); err != nil {
			log.Fatal(err)
		}
		if err := b.Run(os); err != nil {
			log.Fatal(err)
		}
		env.Exit(0)
	})
	if err != nil {
		log.Fatal(err)
	}
	end := eng.Run()

	fmt.Printf("workload %s: %d cycles simulated on %d PEs + memory tile\n",
		b.Name, end, len(cfg.PEs))

	fmt.Printf("  top %d call paths by self-cycles:\n", *top)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  self-cycles\tshare\tpath")
	for _, pc := range prof.Top(*top) {
		fmt.Fprintf(w, "  %d\t%.1f%%\t%s\n", pc.Cycles, 100*float64(pc.Cycles)/float64(end), pc.Path)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("  attributed cycles per PE:")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  PE\tattributed\tshare of run")
	for _, pc := range prof.TotalByPE() {
		fmt.Fprintf(w, "  %s\t%d\t%.1f%%\n", pc.Path, pc.Cycles, 100*float64(pc.Cycles)/float64(end))
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := prof.WriteFolded(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  wrote %d folded stacks -> %s\n", len(prof.Folded()), *out)
	}
}
