// Command m3vet runs the repository's determinism and isolation
// analyzers (internal/analysis) over every package of the module and
// prints one "file:line:col: rule: message" diagnostic per finding.
// It exits non-zero if anything is flagged, so CI can gate on it:
//
//	go run ./cmd/m3vet ./...
//
// Flags:
//
//	-fast                 skip the interprocedural passes (sharedstate,
//	                      timetaint, capflow): syntactic rules only, no
//	                      call-graph fixpoint — quick local iteration
//	-json FILE            write the structured report (findings with
//	                      witness chains + the shared-state inventory)
//	                      to FILE ("-" for stdout)
//	-baseline FILE        suppress findings whose stable keys appear in
//	                      FILE (default vet-baseline.json at the module
//	                      root if present)
//	-write-baseline FILE  write the current keyed findings to FILE and
//	                      exit 0 (used by `make vet-baseline`)
//
// Arguments are accepted for `go vet`-style muscle memory but the tool
// always analyzes the whole module containing the working directory;
// the invariants it checks are module-global (import-graph rules have
// no meaning for a single package). Suppress a syntactic finding with a
// `//m3vet:allow <rule> <reason>` comment on or above the flagged
// line; interprocedural findings are suppressed by key through the
// baseline file. See docs/ANALYSIS.md for the rule catalogue.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	fast := flag.Bool("fast", false, "skip interprocedural passes (no call-graph fixpoint)")
	jsonOut := flag.String("json", "", "write structured JSON report to this file (- for stdout)")
	baselinePath := flag.String("baseline", "", "baseline suppression file (default: vet-baseline.json at module root)")
	writeBaseline := flag.String("write-baseline", "", "write current keyed findings as the new baseline and exit")
	flag.Parse()

	root, err := moduleRoot()
	if err != nil {
		fatal(err)
	}

	mods := analysis.AllModule()
	if *fast {
		mods = nil
	}
	res, err := analysis.CheckModule(root, analysis.All(), mods)
	if err != nil {
		fatal(err)
	}

	if *writeBaseline != "" {
		if err := analysis.WriteBaseline(*writeBaseline, res.Diagnostics); err != nil {
			fatal(err)
		}
		keyed := 0
		for _, d := range res.Diagnostics {
			if d.Key != "" {
				keyed++
			}
		}
		fmt.Printf("m3vet: wrote %d accepted finding key(s) to %s\n", keyed, *writeBaseline)
		return
	}

	bp := *baselinePath
	if bp == "" {
		bp = filepath.Join(root, "vet-baseline.json")
	}
	baseline, err := analysis.LoadBaseline(bp)
	if err != nil {
		fatal(err)
	}
	diags, suppressed := baseline.Filter(res.Diagnostics)

	if *jsonOut != "" {
		rep := analysis.BuildReport(root, diags, res.Inventory, suppressed)
		if err := rep.WriteJSON(*jsonOut); err != nil {
			fatal(err)
		}
	}

	for _, d := range diags {
		name := d.Pos.Filename
		if rel, err := filepath.Rel(root, name); err == nil {
			name = rel
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", name, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
		for _, step := range d.Chain {
			sname := step.Pos.Filename
			if rel, err := filepath.Rel(root, sname); err == nil {
				sname = rel
			}
			fmt.Printf("\t%s:%d: %s\n", sname, step.Pos.Line, step.Note)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "m3vet: %d finding(s)", len(diags))
		if suppressed > 0 {
			fmt.Fprintf(os.Stderr, " (+%d baseline-suppressed)", suppressed)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "m3vet:", err)
	os.Exit(2)
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
