// Command m3vet runs the repository's determinism and isolation
// analyzers (internal/analysis) over every package of the module and
// prints one "file:line:col: rule: message" diagnostic per finding.
// It exits non-zero if anything is flagged, so CI can gate on it:
//
//	go run ./cmd/m3vet ./...
//
// Arguments are accepted for `go vet`-style muscle memory but the tool
// always analyzes the whole module containing the working directory;
// the invariants it checks are module-global (import-graph rules have
// no meaning for a single package). Suppress a finding with a
// `//m3vet:allow <rule> <reason>` comment on or above the flagged
// line. See docs/ANALYSIS.md for the rule catalogue.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "m3vet:", err)
		os.Exit(2)
	}
	diags, err := analysis.Check(root, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "m3vet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		name := d.Pos.Filename
		if rel, err := filepath.Rel(root, name); err == nil {
			name = rel
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", name, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "m3vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
