// Command m3trace records and replays workload traces, the paper's
// benchmark methodology (§5.6): record a benchmark's syscall sequence
// on one OS model, store it, and replay it on the other. The export
// subcommand runs a workload on M3 with the structured tracer armed
// and writes the event stream as Chrome-trace/Perfetto JSON.
//
// Usage:
//
//	m3trace record -w tar -os linux -o tar.trace
//	m3trace replay -i tar.trace -os m3
//	m3trace show   -i tar.trace
//	m3trace export -w tar -o tar.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/linuxos"
	"repro/internal/m3"
	"repro/internal/m3fs"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/tile"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		cmdRecord(os.Args[2:])
	case "replay":
		cmdReplay(os.Args[2:])
	case "show":
		cmdShow(os.Args[2:])
	case "export":
		cmdExport(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: m3trace record|replay|show|export [flags]")
	os.Exit(2)
}

func cmdRecord(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	wl := fs.String("w", "tar", "workload to record")
	osName := fs.String("os", "linux", "system to record on: linux or m3")
	out := fs.String("o", "", "output trace file (default <workload>.trace)")
	_ = fs.Parse(args)
	b, err := workload.ByName(*wl)
	if err != nil {
		log.Fatal(err)
	}
	var tr *trace.Trace
	cycles := runOn(*osName, b, func(os workload.OS) error {
		rec := trace.NewRecorder(os)
		if err := b.Run(rec); err != nil {
			return err
		}
		tr = rec.T
		return nil
	})
	path := *out
	if path == "" {
		path = *wl + ".trace"
	}
	if err := os.WriteFile(path, tr.Marshal(), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d operations (%d simulated cycles) to %s\n", tr.Len(), cycles, path)
}

func cmdReplay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("i", "", "trace file")
	osName := fs.String("os", "m3", "system to replay on: linux or m3")
	wl := fs.String("w", "tar", "workload whose Setup prepares the filesystem")
	_ = fs.Parse(args)
	if *in == "" {
		log.Fatal("m3trace: -i required")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := trace.Unmarshal(data)
	if err != nil {
		log.Fatal(err)
	}
	b, err := workload.ByName(*wl)
	if err != nil {
		log.Fatal(err)
	}
	cycles := runOn(*osName, b, func(os workload.OS) error {
		return trace.Replay(os, tr)
	})
	fmt.Printf("replayed %d operations on %s in %d simulated cycles\n", tr.Len(), *osName, cycles)
}

func cmdShow(args []string) {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	in := fs.String("i", "", "trace file")
	limit := fs.Int("n", 30, "records to print (0 = all)")
	since := fs.Uint64("since", 0, "skip records before this cumulative compute-cycle offset")
	until := fs.Uint64("until", 0, "skip records at/after this cumulative compute-cycle offset (0 = end)")
	_ = fs.Parse(args)
	if *in == "" {
		log.Fatal("m3trace: -i required")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := trace.Unmarshal(data)
	if err != nil {
		log.Fatal(err)
	}
	// Trace records carry no timestamps; the cumulative compute-cycle
	// offset before each record is the deterministic window proxy a
	// diff-flagged cycle range maps onto. I/O records ride at the
	// offset their predecessors accumulated.
	if *since > 0 || *until > 0 {
		var at uint64
		kept := make([]trace.Record, 0, len(tr.Records))
		for _, r := range tr.Records {
			inWindow := at >= *since && (*until == 0 || at < *until)
			if r.Kind == trace.KCompute {
				at += r.Cycles
			}
			if inWindow {
				kept = append(kept, r)
			}
		}
		fmt.Printf("%d of %d records in compute-cycle window [%d, %s)\n",
			len(kept), tr.Len(), *since, untilLabel(*until))
		tr = &trace.Trace{Records: kept}
	} else {
		fmt.Printf("%d records\n", tr.Len())
	}
	for i, r := range tr.Records {
		if *limit > 0 && i >= *limit {
			fmt.Printf("... %d more\n", tr.Len()-i)
			break
		}
		switch r.Kind {
		case trace.KCompute:
			fmt.Printf("%5d  compute %d cycles\n", i, r.Cycles)
		case trace.KRead, trace.KWrite:
			fmt.Printf("%5d  %-8s fd=%d size=%d\n", i, r.Kind, r.FD, r.Size)
		case trace.KCopyRange:
			fmt.Printf("%5d  copyrange fd=%d<-fd=%d size=%d\n", i, r.FD, r.SrcFD, r.Size)
		case trace.KSeek:
			fmt.Printf("%5d  seek fd=%d off=%d whence=%d\n", i, r.FD, r.Off, r.Whence)
		case trace.KClose:
			fmt.Printf("%5d  close fd=%d\n", i, r.FD)
		default:
			fmt.Printf("%5d  %-8s %s\n", i, r.Kind, r.Path)
		}
	}
	showSummary(tr)
}

// untilLabel renders the window's right edge ("end" for 0).
func untilLabel(until uint64) string {
	if until == 0 {
		return "end"
	}
	return fmt.Sprintf("%d", until)
}

// showSummary prints the per-kind footer: record counts in kind-name
// order plus the trace's aggregate compute cycles and I/O volume.
func showSummary(tr *trace.Trace) {
	counts := make(map[trace.Kind]int)
	var compute, read, written uint64
	for _, r := range tr.Records {
		counts[r.Kind]++
		switch r.Kind {
		case trace.KCompute:
			compute += r.Cycles
		case trace.KRead:
			read += uint64(r.Size)
		case trace.KWrite:
			written += uint64(r.Size)
		case trace.KCopyRange:
			read += uint64(r.Size)
			written += uint64(r.Size)
		}
	}
	kinds := make([]trace.Kind, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i].String() < kinds[j].String() })
	fmt.Println("summary:")
	for _, k := range kinds {
		fmt.Printf("  %-10s %6d\n", k, counts[k])
	}
	fmt.Printf("  compute cycles: %d\n", compute)
	fmt.Printf("  bytes read: %d, bytes written: %d\n", read, written)
}

// cmdExport runs a workload on M3 with the structured tracer armed and
// writes the event stream as Chrome-trace/Perfetto JSON (open in
// chrome://tracing or ui.perfetto.dev). With -span it exports a single
// request's span tree — the flag pairs with the exemplar SpanIDs that
// `m3slo` prints, so the exact p99 request can be drilled into.
// -since/-until keep only events within a simulated-cycle window — the
// flags pair with the cycle figures a capture diff (`m3diff`) flags,
// so a regressed window can be drilled into directly. -text prints the
// (filtered) events as human-readable lines instead.
func cmdExport(args []string) {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	wl := fs.String("w", "tar", "workload to export")
	out := fs.String("o", "", "output JSON file (default <workload>.json)")
	span := fs.Uint64("span", 0, "export only this request's span tree (0 = all)")
	since := fs.Uint64("since", 0, "keep only events at/after this simulated cycle")
	until := fs.Uint64("until", 0, "keep only events before this simulated cycle (0 = end)")
	text := fs.Bool("text", false, "print events as text lines instead of writing Perfetto JSON")
	_ = fs.Parse(args)
	b, err := workload.ByName(*wl)
	if err != nil {
		log.Fatal(err)
	}
	var events []obs.Event
	tracer := obs.New(obs.Options{Sink: func(ev obs.Event) { events = append(events, ev) }})
	cycles := runM3(b, tracer, func(os workload.OS) error { return b.Run(os) })
	if *span != 0 {
		kept := events[:0]
		for _, ev := range events {
			if ev.Span == obs.SpanID(*span) {
				kept = append(kept, ev)
			}
		}
		events = kept
		if len(events) == 0 {
			log.Fatalf("m3trace: no events carry span %d", *span)
		}
	}
	if *since > 0 || *until > 0 {
		kept := events[:0]
		for _, ev := range events {
			at := uint64(ev.At)
			if at >= *since && (*until == 0 || at < *until) {
				kept = append(kept, ev)
			}
		}
		events = kept
		if len(events) == 0 {
			log.Fatalf("m3trace: no events in cycle window [%d, %s)", *since, untilLabel(*until))
		}
	}
	if *text {
		for _, ev := range events {
			fmt.Println(ev)
		}
		fmt.Printf("%d structured events (%d simulated cycles)\n", len(events), cycles)
		return
	}
	path := *out
	if path == "" {
		path = *wl + ".json"
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := obs.WritePerfetto(f, events); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exported %d structured events (%d simulated cycles) to %s\n", len(events), cycles, path)
}

// runOn executes setup + fn on the named OS model and returns the
// simulated cycles fn took.
func runOn(osName string, b workload.Benchmark, fn func(workload.OS) error) sim.Time {
	var took sim.Time
	switch osName {
	case "linux":
		eng := sim.NewEngine()
		sys := linuxos.New(eng, linuxos.ProfileXtensa, false)
		sys.Spawn("app", func(pr *linuxos.Proc) {
			os := workload.NewLxOS(sys, pr)
			if err := b.Setup(os); err != nil {
				log.Fatal(err)
			}
			start := pr.P().Now()
			if err := fn(os); err != nil {
				log.Fatal(err)
			}
			took = pr.P().Now() - start
		})
		eng.Run()
	case "m3":
		took = runM3(b, nil, fn)
	default:
		log.Fatalf("m3trace: unknown os %q (want linux or m3)", osName)
	}
	return took
}

// runM3 boots an M3 system (with the structured tracer wired when
// non-nil), runs setup + fn, and returns the simulated cycles fn took.
func runM3(b workload.Benchmark, tracer *obs.Tracer, fn func(workload.OS) error) sim.Time {
	var took sim.Time
	eng := sim.NewEngine()
	cfg := tile.Homogeneous(2 + b.PEs)
	cfg.Obs = tracer
	plat := tile.NewPlatform(eng, cfg)
	kern := core.Boot(plat, 0)
	if _, err := kern.StartInit("m3fs", tile.CoreXtensa, m3fs.Program(kern, m3fs.Config{}, nil)); err != nil {
		log.Fatal(err)
	}
	if _, err := kern.StartInit("app", tile.CoreXtensa, func(ctx *tile.Ctx) {
		env := m3.NewEnv(ctx, kern)
		os, err := workload.NewM3OS(env)
		if err != nil {
			log.Fatal(err)
		}
		if err := b.Setup(os); err != nil {
			log.Fatal(err)
		}
		start := ctx.Now()
		if err := fn(os); err != nil {
			log.Fatal(err)
		}
		took = ctx.Now() - start
		env.Exit(0)
	}); err != nil {
		log.Fatal(err)
	}
	eng.Run()
	return took
}
