// Command m3fsck checks an m3fs image: it decodes the superblock,
// inode table, directory table, and data blocks, verifies the block
// accounting invariants (no sharing, bitmap consistency), and prints a
// summary. Images come from the m3fs sync operation (see
// internal/m3fs/image.go) or from m3trace-style tooling.
//
// With -journal, it additionally verifies a raw metadata-journal area
// (the tail of a crashed service's DRAM region, see
// internal/m3fs/journal.go and docs/RECOVERY.md): the committed records
// are decoded, listed, and replayed onto the image, and the invariants
// are re-checked on the recovered filesystem — the same path the
// supervisor-restarted service takes at boot.
//
// Usage:
//
//	m3fsck image.m3fs
//	m3fsck -journal journal.bin image.m3fs
//	some-tool | m3fsck -        # read the image from stdin
//	m3fsck -selftest            # self-check, including journal replay
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"

	"repro/internal/m3fs"
)

func main() {
	journalPath := flag.String("journal", "", "raw journal area to verify and replay onto the image")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: m3fsck [-journal <file>] <image-file | - | -selftest>")
		flag.PrintDefaults()
	}
	// -selftest predates the flag syntax; recognize it before flag
	// parsing would reject it as an unknown flag.
	selftest := len(os.Args) == 2 && os.Args[1] == "-selftest"
	if !selftest {
		flag.Parse()
		if flag.NArg() != 1 {
			flag.Usage()
			os.Exit(2)
		}
	}

	var data, jdata []byte
	var err error
	switch {
	case selftest:
		data, jdata = sampleImage()
	case flag.Arg(0) == "-":
		data, err = io.ReadAll(os.Stdin)
	default:
		data, err = os.ReadFile(flag.Arg(0))
	}
	if err != nil {
		log.Fatalf("m3fsck: %v", err)
	}
	if *journalPath != "" {
		if jdata, err = os.ReadFile(*journalPath); err != nil {
			log.Fatalf("m3fsck: %v", err)
		}
	}

	blocks := 0
	fs, err := m3fs.UnmarshalImage(data, func(block int, content []byte) error {
		blocks++
		return nil
	})
	if err != nil {
		log.Fatalf("m3fsck: image is corrupt: %v", err)
	}
	if err := fs.CheckInvariants(); err != nil {
		log.Fatalf("m3fsck: inconsistent filesystem: %v", err)
	}
	if jdata != nil {
		replayJournal(fs, jdata)
	}
	fmt.Printf("m3fs image: clean\n")
	fmt.Printf("  block size:   %d bytes\n", fs.BlockSize)
	fmt.Printf("  total blocks: %d\n", fs.TotalBlocks)
	fmt.Printf("  used blocks:  %d (%d with content in image)\n", fs.UsedBlocks(), blocks)
	fmt.Printf("  tree:\n")
	printTree(fs, "/", "  ")
}

// replayJournal verifies a journal area against the image and applies
// its committed records, dying on any structural or replay error.
func replayJournal(fs *m3fs.FsCore, area []byte) {
	recs, err := m3fs.DecodeJournal(area)
	if err != nil {
		log.Fatalf("m3fsck: journal is corrupt: %v", err)
	}
	kinds := make(map[string]int)
	for _, r := range recs {
		kinds[r.KindName()]++
	}
	if _, err := m3fs.ReplayJournal(fs, recs); err != nil {
		log.Fatalf("m3fsck: journal does not replay onto this image: %v", err)
	}
	if err := fs.CheckInvariants(); err != nil {
		log.Fatalf("m3fsck: filesystem inconsistent after journal replay: %v", err)
	}
	fmt.Printf("m3fs journal: clean, %d committed records replayed\n", len(recs))
	names := make([]string, 0, len(kinds))
	for name := range kinds {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-7s %d\n", name, kinds[name])
	}
}

func printTree(fs *m3fs.FsCore, path, indent string) {
	names, dir, err := fs.ReadDir(path)
	if err != nil {
		return
	}
	sort.Strings(names)
	for _, name := range names {
		child := fs.Child(dir, name)
		if child == nil {
			continue
		}
		if child.Dir {
			fmt.Printf("%s  %s/\n", indent, name)
			sub := path + name + "/"
			if path == "/" {
				sub = "/" + name + "/"
			}
			printTree(fs, sub, indent+"  ")
		} else {
			fmt.Printf("%s  %s (%d bytes, %d extents)\n", indent, name, child.Size, len(child.Extents))
		}
	}
}

// sampleImage builds a small in-memory filesystem image plus a journal
// of post-snapshot mutations for -selftest, exercising the same
// crash-recovery replay path a restarted m3fs runs.
func sampleImage() (image, journal []byte) {
	fs := m3fs.NewFsCore(1<<20, 1024)
	mustOK := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	if _, err := fs.Mkdir("/etc"); err != nil {
		log.Fatal(err)
	}
	if _, err := fs.Mkdir("/home"); err != nil {
		log.Fatal(err)
	}
	ino, _, err := fs.Create("/etc/motd")
	mustOK(err)
	_, err = fs.Append(ino, 2, false)
	mustOK(err)
	fs.Truncate(ino, 1500)
	image = fs.MarshalImage(func(block int) []byte { return make([]byte, 1024) })

	// Mutations a crashed service would have journaled after the boot
	// image was taken: the selftest replays them onto the image above.
	journal = m3fs.EncodeJournal([]m3fs.JRecord{
		{Kind: m3fs.JMkdir, Key: 2, Seq: 1, Path: "/home/user"},
		{Kind: m3fs.JCreate, Key: 2, Seq: 2, Path: "/home/user/notes"},
		{Kind: m3fs.JAppend, Key: 2, Seq: 3, Ino: ino.Ino, Blocks: 1},
		{Kind: m3fs.JRename, Key: 2, Seq: 4, Path: "/home/user/notes", Path2: "/home/user/todo"},
	})
	return image, journal
}
