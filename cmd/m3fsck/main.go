// Command m3fsck checks an m3fs image: it decodes the superblock,
// inode table, directory table, and data blocks, verifies the block
// accounting invariants (no sharing, bitmap consistency), and prints a
// summary. Images come from the m3fs sync operation (see
// internal/m3fs/image.go) or from m3trace-style tooling.
//
// Usage:
//
//	m3fsck image.m3fs
//	some-tool | m3fsck -        # read the image from stdin
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"sort"

	"repro/internal/m3fs"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: m3fsck <image-file | - | -selftest>")
		os.Exit(2)
	}
	var data []byte
	var err error
	switch os.Args[1] {
	case "-":
		data, err = io.ReadAll(os.Stdin)
	case "-selftest":
		data = sampleImage()
	default:
		data, err = os.ReadFile(os.Args[1])
	}
	if err != nil {
		log.Fatalf("m3fsck: %v", err)
	}
	blocks := 0
	fs, err := m3fs.UnmarshalImage(data, func(block int, content []byte) error {
		blocks++
		return nil
	})
	if err != nil {
		log.Fatalf("m3fsck: image is corrupt: %v", err)
	}
	if err := fs.CheckInvariants(); err != nil {
		log.Fatalf("m3fsck: inconsistent filesystem: %v", err)
	}
	fmt.Printf("m3fs image: clean\n")
	fmt.Printf("  block size:   %d bytes\n", fs.BlockSize)
	fmt.Printf("  total blocks: %d\n", fs.TotalBlocks)
	fmt.Printf("  used blocks:  %d (%d with content in image)\n", fs.UsedBlocks(), blocks)
	fmt.Printf("  tree:\n")
	printTree(fs, "/", "  ")
}

func printTree(fs *m3fs.FsCore, path, indent string) {
	names, dir, err := fs.ReadDir(path)
	if err != nil {
		return
	}
	sort.Strings(names)
	for _, name := range names {
		child := fs.Child(dir, name)
		if child == nil {
			continue
		}
		if child.Dir {
			fmt.Printf("%s  %s/\n", indent, name)
			sub := path + name + "/"
			if path == "/" {
				sub = "/" + name + "/"
			}
			printTree(fs, sub, indent+"  ")
		} else {
			fmt.Printf("%s  %s (%d bytes, %d extents)\n", indent, name, child.Size, len(child.Extents))
		}
	}
}

// sampleImage builds a small in-memory filesystem image for -selftest.
func sampleImage() []byte {
	fs := m3fs.NewFsCore(1<<20, 1024)
	mustOK := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	if _, err := fs.Mkdir("/etc"); err != nil {
		log.Fatal(err)
	}
	if _, err := fs.Mkdir("/home"); err != nil {
		log.Fatal(err)
	}
	ino, _, err := fs.Create("/etc/motd")
	mustOK(err)
	_, err = fs.Append(ino, 2, false)
	mustOK(err)
	fs.Truncate(ino, 1500)
	return fs.MarshalImage(func(block int) []byte { return make([]byte, 1024) })
}
