// Command m3sim boots an M3 system, runs a named workload on it, and
// reports platform statistics: cycles, per-DTU traffic, kernel load,
// and NoC totals. It is the exploration tool next to m3bench's fixed
// experiments.
//
// Usage:
//
//	m3sim -w tar -pes 4 -instances 2 -v
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dtu"
	"repro/internal/m3"
	"repro/internal/m3fs"
	//m3vet:allow crosslayer host-side -stats reporting reads link metric names after the run; no PE-side NoC access
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/tile"
	"repro/internal/workload"
	"text/tabwriter"
)

func main() {
	name := flag.String("w", "tar", "workload: cat+tr, tar, untar, find, sqlite")
	pes := flag.Int("pes", 0, "extra application PEs beyond what the workload needs")
	instances := flag.Int("n", 1, "parallel instances (one kernel, one m3fs)")
	verbose := flag.Bool("v", false, "per-PE DTU statistics")
	traceN := flag.Int("trace", 0, "print the first N trace events (DTU sends/receives, syscalls)")
	traceOut := flag.String("trace-out", "", "write the run's structured event stream as Chrome-trace/Perfetto JSON to this file")
	stats := flag.Bool("stats", false, "collect the metrics registry and print the per-PE/per-link utilization table after the run")
	sample := flag.Int("sample", 4096, "metrics sampling interval in cycles for -stats (0 = no time series)")
	engine := flag.String("engine", "calendar", "event queue: calendar (O(1) wheel) or heap (reference binary heap)")
	parallel := flag.Int("parallel", 0, "worker goroutines for the conservative parallel engine (0 or 1 = serial)")
	flag.Parse()

	var engCfg sim.Config
	switch *engine {
	case "calendar":
		engCfg.Queue = sim.QueueCalendar
	case "heap":
		engCfg.Queue = sim.QueueHeap
	default:
		log.Fatalf("m3sim: unknown -engine %q (want calendar or heap)", *engine)
	}
	engCfg.Workers = *parallel

	b, err := workload.ByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	if *instances > 1 {
		runInstances(b, *instances, engCfg)
		return
	}

	eng := sim.NewEngineWith(engCfg)
	if *traceN > 0 {
		remaining := *traceN
		eng.SetTracer(func(at sim.Time, source, event string) {
			if remaining <= 0 {
				return
			}
			remaining--
			fmt.Printf("[%10d] %-8s %s\n", at, source, event)
		})
	}
	var events []obs.Event
	cfg := tile.Homogeneous(2 + b.PEs + *pes)
	if *traceOut != "" || *stats {
		var sink func(obs.Event)
		if *traceOut != "" {
			sink = func(ev obs.Event) { events = append(events, ev) }
		}
		cfg.Obs = obs.New(obs.Options{Sink: sink})
	}
	n := len(cfg.PEs)
	plat := tile.NewPlatform(eng, cfg)
	kern := core.Boot(plat, 0)
	if *stats && *sample > 0 {
		cfg.Obs.Metrics().StartSampler(eng, sim.Time(*sample))
	}
	if _, err := kern.StartInit("m3fs", tile.CoreXtensa, m3fs.Program(kern, m3fs.Config{}, nil)); err != nil {
		log.Fatal(err)
	}
	var setup, run sim.Time
	_, err = kern.StartInit("app", tile.CoreXtensa, func(ctx *tile.Ctx) {
		env := m3.NewEnv(ctx, kern)
		os, err := workload.NewM3OS(env)
		if err != nil {
			log.Fatal(err)
		}
		s0 := ctx.Now()
		if err := b.Setup(os); err != nil {
			log.Fatal(err)
		}
		s1 := ctx.Now()
		if err := b.Run(os); err != nil {
			log.Fatal(err)
		}
		setup, run = s1-s0, ctx.Now()-s1
		env.Exit(0)
	})
	if err != nil {
		log.Fatal(err)
	}
	end := eng.Run()

	fmt.Printf("workload %s on %d PEs + memory tile (mesh %dx%d)\n",
		b.Name, n, plat.Net.Config().Width, plat.Net.Config().Height)
	fmt.Printf("  setup: %12d cycles\n", setup)
	fmt.Printf("  run:   %12d cycles\n", run)
	fmt.Printf("  total: %12d cycles simulated, %d events\n", end, eng.ExecutedEvents())
	fmt.Printf("  NoC:   %d packets, %d bytes\n", plat.Net.PacketsSent, plat.Net.BytesSent)
	fmt.Printf("  kernel CPU utilization: %.1f%%, syscalls:", kern.CPU().Utilization()*100)
	for _, sc := range kern.Stats.SortedSyscalls() {
		fmt.Printf(" %s=%d", sc.Op, sc.Count)
	}
	fmt.Println()
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := obs.WritePerfetto(f, events); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  trace: %d structured events -> %s\n", len(events), *traceOut)
	}
	if *stats {
		printStats(plat, cfg.Obs, end)
	}
	if *verbose {
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "  PE\ttype\tmsgs-sent\tmsgs-recv\treplies\tmem-reads\tmem-writes\tbytes-read\tbytes-written\tbusy")
		for _, pe := range plat.PEs {
			st := pe.DTU.Stats
			busy := 100.0
			if end > 0 {
				busy = 100 * (1 - float64(pe.DTU.IdleCyclesAt(end))/float64(end))
			}
			fmt.Fprintf(w, "  %d\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.0f%%\n",
				pe.ID, pe.Type, st.MsgsSent, st.MsgsReceived, st.Replies,
				st.MemReads, st.MemWrites, st.BytesRead, st.BytesWritten, busy)
		}
		if err := w.Flush(); err != nil {
			log.Fatal(err)
		}
	}
}

func runInstances(b workload.Benchmark, n int, engCfg sim.Config) {
	avg, err := bench.RunM3InstancesEngine(b, n, engCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s, %d instances, single kernel + single m3fs\n", b.Name, n)
	fmt.Printf("  mean run time per instance: %d cycles\n", avg)
}

// printStats renders the end-of-run utilization tables: per-PE busy
// fractions with the DTU's metric counters, and per-link busy cycles
// from the NoC's registry entries.
func printStats(plat *tile.Platform, tr *obs.Tracer, end sim.Time) {
	m := tr.Metrics()
	fmt.Println("  per-PE utilization:")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  PE\ttype\tbusy\tcredit-stalls\tretransmits\tnacks\trx-queued")
	for _, pe := range plat.PEs {
		busy := 100.0
		if end > 0 {
			busy = 100 * (1 - float64(pe.DTU.IdleCyclesAt(end))/float64(end))
		}
		node := int(pe.Node)
		fmt.Fprintf(w, "  %d\t%s\t%.0f%%\t%d\t%d\t%d\t%d\n",
			pe.ID, pe.Type,
			busy,
			m.Counter(dtu.MCreditStalls, node).Value(),
			m.Counter(dtu.MRetransmits, node).Value(),
			m.Counter(dtu.MNacks, node).Value(),
			m.Series(dtu.MRxQueued, node, nil).Last())
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  per-link utilization (links with traffic):")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  link\tbusy-cycles\tbusy\tqueued")
	links := 0
	for _, e := range m.Entries() {
		if e.Name != noc.MLinkBusy || e.Value() == 0 {
			continue
		}
		links++
		from, to := plat.Net.LinkByIndex(e.Idx)
		busy := 0.0
		if end > 0 {
			busy = 100 * float64(e.Value()) / float64(end)
		}
		fmt.Fprintf(w, "  %d->%d\t%d\t%.1f%%\t%d\n",
			from, to, e.Value(), busy,
			m.Series(noc.MLinkQueued, e.Idx, nil).Last())
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if links == 0 {
		fmt.Println("    (none: NoC in unlimited mode or no contention metrics)")
	}
	fmt.Println("  kernel counters:")
	for _, e := range m.Entries() {
		if e.Idx == -1 && e.Kind != obs.KindSeries {
			fmt.Printf("    %s = %d\n", e.Name, e.Value())
		}
	}
}
