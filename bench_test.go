// Package repro's top-level benchmarks regenerate every table and
// figure of the paper's evaluation (§5). Each benchmark runs the full
// simulation for its experiment and reports the simulated cycle counts
// as custom metrics, so `go test -bench=. -benchmem` reproduces the
// paper's numbers. The same experiments are available interactively
// via `go run ./cmd/m3bench`.
package repro

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/bench"
	"repro/internal/linuxos"
	"repro/internal/workload"
)

// BenchmarkFig3Syscall reproduces Figure 3 (left): the null system
// call on M3 (~200 cycles) vs. Linux (~410 cycles).
func BenchmarkFig3Syscall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m3Total, m3Xfer := bench.NullSyscallM3()
		lx := bench.NullSyscallLx(linuxos.ProfileXtensa)
		b.ReportMetric(float64(m3Total), "m3-cycles")
		b.ReportMetric(float64(m3Xfer), "m3-xfer-cycles")
		b.ReportMetric(float64(lx), "lx-cycles")
	}
}

// BenchmarkFig3FileOps reproduces Figure 3 (right): 2 MiB read, write,
// and pipe with 4 KiB buffers on M3, Lx-$ (warm), and Lx (cold).
func BenchmarkFig3FileOps(b *testing.B) {
	for _, wl := range []workload.Benchmark{bench.ReadBench(), bench.WriteBench(), bench.PipeBench()} {
		wl := wl
		b.Run(wl.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m3, err := bench.RunM3(wl, bench.M3Options{})
				if err != nil {
					b.Fatal(err)
				}
				warm, err := bench.RunLx(wl, linuxos.ProfileXtensa, false)
				if err != nil {
					b.Fatal(err)
				}
				cold, err := bench.RunLx(wl, linuxos.ProfileXtensa, true)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(m3.Total), "m3-cycles")
				b.ReportMetric(float64(warm.Total), "lxwarm-cycles")
				b.ReportMetric(float64(cold.Total), "lxcold-cycles")
			}
		})
	}
}

// BenchmarkSec52ArmXtensa reproduces the §5.2 cross-check: Linux costs
// on Xtensa vs. ARM profiles.
func BenchmarkSec52ArmXtensa(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Sec52()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			b.ReportMetric(float64(row.ARM)/float64(row.Xtensa), "arm/xtensa:"+row.Metric[:4])
		}
	}
}

// BenchmarkFig4Fragmentation reproduces Figure 4: read/write time vs.
// blocks per extent; the sweet spot is 256.
func BenchmarkFig4Fragmentation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		first, last := r.ReadCycles[0], r.ReadCycles[len(r.ReadCycles)-1]
		b.ReportMetric(float64(first), "read16-cycles")
		b.ReportMetric(float64(last), "read2048-cycles")
		b.ReportMetric(float64(first)/float64(last), "frag-penalty")
	}
}

// BenchmarkFig5Apps reproduces Figure 5: the five application-level
// benchmarks on M3 vs. Linux (cold), reporting M3's relative time.
func BenchmarkFig5Apps(b *testing.B) {
	for _, wl := range workload.All() {
		wl := wl
		b.Run(wl.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m3, err := bench.RunM3(wl, bench.M3Options{})
				if err != nil {
					b.Fatal(err)
				}
				lx, err := bench.RunLx(wl, linuxos.ProfileXtensa, true)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(m3.Total), "m3-cycles")
				b.ReportMetric(float64(lx.Total), "lx-cycles")
				b.ReportMetric(float64(m3.Total)/float64(lx.Total), "m3/lx")
			}
		})
	}
}

// BenchmarkFig6Scalability reproduces Figure 6: per-instance time with
// 1 and 16 parallel instances on a single kernel and m3fs instance.
func BenchmarkFig6Scalability(b *testing.B) {
	for _, wl := range workload.All() {
		wl := wl
		b.Run(wl.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				baseN := 1
				if wl.Name == "cat+tr" {
					baseN = 2 // needs two PEs per instance (§5.7)
				}
				base, err := bench.RunM3Instances(wl, baseN)
				if err != nil {
					b.Fatal(err)
				}
				t16, err := bench.RunM3Instances(wl, 16)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(base), "base-cycles")
				b.ReportMetric(float64(t16)/float64(base), "slowdown@16")
			}
		})
	}
}

// BenchmarkFig7Accelerator reproduces Figure 7: the FFT filter chain
// on Linux, M3 with the software FFT, and M3 with the accelerator.
func BenchmarkFig7Accelerator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lx, err := bench.RunLx(accel.FFTChain(false), linuxos.ProfileXtensa, true)
		if err != nil {
			b.Fatal(err)
		}
		soft, err := bench.RunM3(accel.FFTChain(false), bench.M3Options{})
		if err != nil {
			b.Fatal(err)
		}
		acc, err := bench.RunM3(accel.FFTChain(true), bench.M3Options{FFTPEs: 1, ExtraPEs: -1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(lx.Total), "linux-cycles")
		b.ReportMetric(float64(soft.Total), "m3soft-cycles")
		b.ReportMetric(float64(acc.Total), "m3accel-cycles")
		b.ReportMetric(float64(soft.Total)/float64(acc.Total), "accel-speedup")
	}
}
