#!/bin/sh
# ci.sh — the tier-1 gate. Every PR must pass this script unchanged.
#
#   build      the whole module compiles
#   go vet     the stock Go checks
#   m3vet      the repo's own determinism & isolation linter, including
#              the interprocedural passes (sharedstate, timetaint,
#              capflow); known-accepted findings are suppressed by
#              vet-baseline.json and the shared-state inventory is kept
#              as artifacts/sharedstate.json — the parallel-DES
#              work-list (see docs/ANALYSIS.md)
#   tests      the full suite under the race detector — any data race
#              would mean the sim's strict goroutine hand-off (or the
#              parallel engine's barrier discipline) is broken — with
#              shuffled test order, so no test can silently depend on
#              a sibling running first
#   chaos      the fault-injection tier: determinism under faults, the
#              isolation-survives-failure matrix, service crash
#              recovery, and the chaos-overload tier — graceful
#              degradation under open-loop overload (docs/FAULTS.md,
#              docs/RECOVERY.md, docs/OVERLOAD.md)
#   fuzz       a short smoke over the fault-plan and journal decoders
#   bench      the bench regression gate: the smoke experiment subset
#              (with run captures bundled) diffed against the committed
#              BENCH_4.json baseline; the JSON artifact and the
#              machine-readable regression attribution are kept under
#              artifacts/ — bench-smoke.json and diff-report.json —
#              for inspection (docs/EXPERIMENTS.md)
#   diff       the attribution self-test: a seeded +10% kernel
#              dispatch-cost perturbation must be attributed to the
#              kernel layer by m3diff, with captures byte-identical
#              across serial and parallel engines
#              (docs/OBSERVABILITY.md)
#   slo        the SLO regression gate: the m3slo attribution report
#              over the tier-1 workload, byte-compared against the
#              committed SLO_0.json golden (docs/OBSERVABILITY.md)
set -eux

go build ./...
go vet ./...
go run ./cmd/m3vet -json artifacts/sharedstate.json ./...
go test -race -shuffle=on ./...
make chaos
make fuzz
make bench-smoke
make diff-smoke
make slo-smoke
