package fault

import (
	"reflect"
	"testing"

	"repro/internal/dtu"
)

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		ok   bool
	}{
		{"zero", Plan{}, true},
		{"typical", Plan{Seed: 1, DropRate: 0.01, CorruptRate: 0.005,
			StallRate: 0.1, StallCycles: 100,
			Brownouts: []Window{{Start: 10, End: 20, ExtraLatency: 5}},
			Crashes:   []Crash{{PE: 2, At: 1000}}}, true},
		{"drop rate negative", Plan{DropRate: -0.1}, false},
		{"drop rate above one", Plan{DropRate: 1.5}, false},
		{"corrupt rate above one", Plan{CorruptRate: 1.5}, false},
		{"rates sum above one", Plan{DropRate: 0.6, CorruptRate: 0.6}, false},
		{"stall rate above one", Plan{StallRate: 2}, false},
		{"inverted brownout", Plan{Brownouts: []Window{{Start: 20, End: 10}}}, false},
		{"crash on kernel PE", Plan{Crashes: []Crash{{PE: 0, At: 100}}}, false},
		{"negative retries", Plan{MaxRetries: -1}, false},
		{"negative missed beats", Plan{MaxMissedBeats: -1}, false},
	}
	for _, tc := range cases {
		err := tc.plan.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: invalid plan accepted", tc.name)
		}
	}
}

// Identical bytes must decode to the identical plan — the fuzzing
// front end is itself part of the deterministic pipeline.
func TestDecodePlanDeterministic(t *testing.T) {
	data := []byte{
		0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04, // seed
		0x00, 0x40, 0x00, 0x20, 0x10, 0x00, 0x00, 0x80, // rates, stall
		0x00, 0x64, 0x03, // timeout, retries
		0x00, 0x10, // heartbeat
		0x02,                               // two brownouts
		0x00, 0x08, 0x00, 0x10, 0x00, 0x05, // window 1
		0x00, 0x20, 0x00, 0x08, 0x00, 0x09, // window 2
		0x01,             // one crash
		0x03, 0x00, 0x10, // PE 3 at 16*64
	}
	p1, err := DecodePlan(data)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := DecodePlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Fatalf("decode differs: %+v vs %+v", p1, p2)
	}
	if len(p1.Crashes) != 1 || p1.Crashes[0].PE != 3 {
		t.Fatalf("unexpected crashes: %+v", p1.Crashes)
	}
	if p1.MaxRetries < dtu.DefaultMaxRetries {
		t.Fatalf("retry budget %d below default", p1.MaxRetries)
	}
	if p1.Timeout < dtu.DefaultTimeout {
		t.Fatalf("timeout %d below default", p1.Timeout)
	}
}

// A decoded crash targeting PE 0 must be rejected by Validate, and the
// caps must keep every accepted plan inside the survivable envelope.
func TestDecodePlanRejectsKernelCrash(t *testing.T) {
	data := make([]byte, 64)
	// Walk a crash count of 1 and PE 0 into the crash fields: bytes
	// 0..7 seed, 8..18 rates/timeout/retries, 19..20 heartbeat, 21
	// brownout count (0), 22 crash count, 23 crash PE.
	data[22] = 0x01
	data[23] = 0x00
	if _, err := DecodePlan(data); err == nil {
		t.Fatal("crash on PE 0 decoded without error")
	}
}

// Exhausted input yields zeros: a short buffer still decodes.
func TestDecodePlanShortInput(t *testing.T) {
	p, err := DecodePlan([]byte{0x01})
	if err != nil {
		t.Fatal(err)
	}
	if p.DropRate != 0 || len(p.Brownouts) != 0 || len(p.Crashes) != 0 {
		t.Fatalf("short input decoded to non-zero faults: %+v", p)
	}
	if p.MaxRetries < dtu.DefaultMaxRetries || p.Timeout < dtu.DefaultTimeout {
		t.Fatalf("short input weakened reliability floor: %+v", p)
	}
}

// The injector must own its plan: normalized() reheads the Brownouts
// and Crashes slices onto private arrays, so mutating the caller's
// slices after Attach cannot rewrite an armed schedule. (Regression
// test for an aliasing bug found by m3vet's sharedstate triage: the
// injector used to retain the caller's backing arrays.)
func TestNormalizedCopiesSlices(t *testing.T) {
	orig := Plan{
		Seed:      1,
		Brownouts: []Window{{Start: 10, End: 20, ExtraLatency: 5}},
		Crashes:   []Crash{{PE: 2, At: 1000}},
	}
	norm, err := orig.normalized()
	if err != nil {
		t.Fatal(err)
	}
	orig.Brownouts[0] = Window{Start: 999, End: 9999, ExtraLatency: 1}
	orig.Crashes[0] = Crash{PE: 3, At: 1}
	if norm.Brownouts[0] != (Window{Start: 10, End: 20, ExtraLatency: 5}) {
		t.Fatalf("brownout window aliased: %+v", norm.Brownouts[0])
	}
	if norm.Crashes[0] != (Crash{PE: 2, At: 1000}) {
		t.Fatalf("crash aliased: %+v", norm.Crashes[0])
	}
}

// normalized must fill every zero-valued knob with its package default
// and reject invalid plans outright.
func TestNormalizedDefaults(t *testing.T) {
	norm, err := Plan{Seed: 1}.normalized()
	if err != nil {
		t.Fatal(err)
	}
	if norm.StallCycles != DefaultStallCycles ||
		norm.HeartbeatPeriod != DefaultHeartbeatPeriod ||
		norm.MaxMissedBeats != DefaultMaxMissedBeats ||
		norm.CallDeadline != DefaultCallDeadline {
		t.Fatalf("defaults not filled: %+v", norm)
	}
	if _, err := (Plan{DropRate: 2}).normalized(); err == nil {
		t.Fatal("invalid plan normalized without error")
	}
}
