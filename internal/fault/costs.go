package fault

import "repro/internal/sim"

// Tunable defaults of the fault layer. The heartbeat is two orders of
// magnitude above the null-syscall cost, so death detection stays a
// background trickle; two missed beats tolerate one probe lost to the
// very packet faults the watchdog runs under.
const (
	// DefaultHeartbeatPeriod is the death-watchdog probe interval.
	DefaultHeartbeatPeriod sim.Time = 20000
	// DefaultMaxMissedBeats is how many consecutive unanswered probes
	// declare a VPE dead (each probe already retries at DTU level).
	DefaultMaxMissedBeats = 2
	// DefaultStallCycles is the extra latency of one injected
	// transfer-engine stall.
	DefaultStallCycles sim.Time = 150
	// DefaultCallDeadline is the service-call cycle budget armed (on
	// the kernel and on every client DTU) when a plan contains a usable
	// crash. It sits far above any service response time reachable at
	// survivable loss rates, so only genuinely dead or wedged services
	// trip it.
	DefaultCallDeadline sim.Time = 120000
)
