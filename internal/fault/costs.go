package fault

import "repro/internal/sim"

// Tunable defaults of the fault layer. The heartbeat is two orders of
// magnitude above the null-syscall cost, so death detection stays a
// background trickle; two missed beats tolerate one probe lost to the
// very packet faults the watchdog runs under.
const (
	// DefaultHeartbeatPeriod is the death-watchdog probe interval.
	DefaultHeartbeatPeriod sim.Time = 20000
	// DefaultMaxMissedBeats is how many consecutive unanswered probes
	// declare a VPE dead (each probe already retries at DTU level).
	DefaultMaxMissedBeats = 2
	// DefaultStallCycles is the extra latency of one injected
	// transfer-engine stall.
	DefaultStallCycles sim.Time = 150
)
