// Package fault is the deterministic fault-injection layer: it turns a
// declarative Plan into hooks threaded through the NoC (packet drops
// and header corruption per hop), the DTUs (transfer-engine stalls and
// the reliability parameters), the DRAM module (brownout windows), and
// the tile layer (whole-PE crashes), plus the kernel's death watchdog
// that detects and reaps crashed VPEs.
//
// Every random decision is drawn from private splitmix64 streams
// seeded from Plan.Seed, so a (configuration, seed) pair replays the
// exact same fault schedule — faults are part of the deterministic
// event schedule, not noise on top of it. This package is the only one
// allowed to arm the fault hooks of the lower layers (enforced by
// m3vet's faultsite rule).
package fault

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dtu"
	"repro/internal/noc"
	"repro/internal/sim"
)

// Window is a DRAM brownout: between Start and End (cycles) every
// memory access pays ExtraLatency additional cycles while holding its
// port, so the slowdown also propagates as queueing delay.
type Window struct {
	Start, End   sim.Time
	ExtraLatency sim.Time
}

// Crash kills the core of one PE at a chosen cycle. The DTU survives
// (it is a separate hardware block), which is what lets the kernel
// detect the death and deconfigure the dead PE's endpoints.
type Crash struct {
	PE int
	At sim.Time
}

// Plan is a declarative, replayable fault schedule. The zero value is
// a valid plan that injects nothing (but still switches the DTUs into
// reliable operation, so a zero Plan is NOT bit-identical to a run
// without Attach).
type Plan struct {
	// Seed derives every random stream of the plan.
	Seed uint64

	// DropRate and CorruptRate are per-hop packet fault probabilities;
	// their sum must not exceed 1.
	DropRate    float64
	CorruptRate float64

	// StallRate is the probability that a DTU transfer pays StallCycles
	// extra cycles before entering the NoC (a busy transfer engine).
	StallRate   float64
	StallCycles sim.Time

	// Brownouts lists DRAM slowdown windows.
	Brownouts []Window

	// Crashes lists whole-PE core failures.
	Crashes []Crash

	// Timeout and MaxRetries override the DTU reliability defaults
	// (zero keeps dtu.DefaultTimeout / dtu.DefaultMaxRetries).
	Timeout    sim.Time
	MaxRetries int

	// HeartbeatPeriod and MaxMissedBeats parameterize the kernel death
	// watchdog, armed only when the plan contains a usable crash (zero
	// values keep the package defaults).
	HeartbeatPeriod sim.Time
	MaxMissedBeats  int

	// CallDeadline is the cycle budget for calls into services, armed —
	// like the watchdog — only when the plan contains a usable crash:
	// the kernel's callService helpers and (via the DTU fault
	// configuration) libm3's service calls then time out with clean
	// errors instead of waiting on a dead service forever, and clients
	// switch on session re-establishment (docs/RECOVERY.md). Zero keeps
	// DefaultCallDeadline.
	CallDeadline sim.Time
}

// Validate checks the plan's invariants: probabilities in [0,1] with
// drop+corrupt at most 1, well-formed brownout windows, crashes on
// application PEs (PE 0 hosts the kernel, which must not die), and a
// non-negative retry budget. Time-valued fields are unsigned by type.
func (pl *Plan) Validate() error {
	if pl.DropRate < 0 || pl.DropRate > 1 {
		return fmt.Errorf("fault: drop rate %v outside [0,1]", pl.DropRate)
	}
	if pl.CorruptRate < 0 || pl.CorruptRate > 1 {
		return fmt.Errorf("fault: corrupt rate %v outside [0,1]", pl.CorruptRate)
	}
	if pl.DropRate+pl.CorruptRate > 1 {
		return fmt.Errorf("fault: drop+corrupt rate %v exceeds 1", pl.DropRate+pl.CorruptRate)
	}
	if pl.StallRate < 0 || pl.StallRate > 1 {
		return fmt.Errorf("fault: stall rate %v outside [0,1]", pl.StallRate)
	}
	for i, w := range pl.Brownouts {
		if w.End < w.Start {
			return fmt.Errorf("fault: brownout %d window [%d,%d) is inverted", i, w.Start, w.End)
		}
	}
	for i, c := range pl.Crashes {
		if c.PE < 1 {
			return fmt.Errorf("fault: crash %d targets PE %d (the kernel PE cannot crash)", i, c.PE)
		}
	}
	if pl.MaxRetries < 0 {
		return fmt.Errorf("fault: negative retry budget %d", pl.MaxRetries)
	}
	if pl.MaxMissedBeats < 0 {
		return fmt.Errorf("fault: negative missed-beat budget %d", pl.MaxMissedBeats)
	}
	return nil
}

// normalized validates the plan and returns the copy the injector will
// own: defaults filled in, and the Brownouts/Crashes slices reheaded
// onto private arrays. The copy matters — an armed schedule must not
// alias the caller's slices, or mutating a Plan value after Attach
// (or writing through Injector.Plan()'s result) would silently rewrite
// the injected faults mid-run.
func (pl Plan) normalized() (Plan, error) {
	if err := pl.Validate(); err != nil {
		return Plan{}, err
	}
	if pl.StallCycles == 0 {
		pl.StallCycles = DefaultStallCycles
	}
	if pl.HeartbeatPeriod == 0 {
		pl.HeartbeatPeriod = DefaultHeartbeatPeriod
	}
	if pl.MaxMissedBeats == 0 {
		pl.MaxMissedBeats = DefaultMaxMissedBeats
	}
	if pl.CallDeadline == 0 {
		pl.CallDeadline = DefaultCallDeadline
	}
	pl.Brownouts = append([]Window(nil), pl.Brownouts...)
	pl.Crashes = append([]Crash(nil), pl.Crashes...)
	return pl, nil
}

// crashState tracks one scheduled crash through the run.
type crashState struct {
	crash   Crash
	skipped bool // PE out of range or the kernel's own: never fires
	//m3vet:resolve sharedstate owner crash events fire in serial engine callbacks
	fired bool
	//m3vet:resolve sharedstate owner crash events fire in serial engine callbacks
	victim *core.VPE // the VPE on the PE at crash time, if any
}

// Injector is an attached fault plan: the hooks are armed and the
// crashes scheduled. It exposes the plan's runtime effects for tests
// and reports.
type Injector struct {
	plan    Plan
	kern    *core.Kernel
	crashes []*crashState
}

// Distinct salts decorrelate the plan's random streams: the link
// stream and the stall stream advance independently, so adding stalls
// does not reshuffle which packets drop.
const (
	saltLink  uint64 = 0x6c696e6b00000001
	saltStall uint64 = 0x7374616c00000002
)

// Attach validates the plan and arms it on the kernel's platform: the
// NoC fault hook, the shared DTU reliability configuration on every
// PE (the kernel's included — its replies ride the same wires), the
// DRAM brownout hook, the scheduled crashes, and — when the plan
// contains a usable crash — the kernel's death watchdog. Attach must
// run before the engine does (crash times are absolute cycles).
func Attach(kern *core.Kernel, plan Plan) (*Injector, error) {
	plan, err := plan.normalized()
	if err != nil {
		return nil, err
	}
	inj := &Injector{plan: plan, kern: kern}
	plat := kern.Plat

	if plan.DropRate > 0 || plan.CorruptRate > 0 {
		// One draw per hop decides both fault kinds. The draw is
		// stateless — a hash of the hop's own identity (link, sequence
		// number, cycle) rather than the next value of a stream shared
		// by every PE's send path — so a hop's verdict never depends on
		// which other PEs transmitted before it. That keeps the fault
		// schedule well-defined under the planned parallel scheduler
		// (the old shared stream is exactly what m3vet's sharedstate
		// pass flags) and gives retransmissions of the same sequence
		// number fresh draws (they traverse at a later cycle).
		drop, corrupt := plan.DropRate, plan.CorruptRate
		seed := plan.Seed ^ saltLink
		eng := plat.Eng
		plat.Net.SetFaultHook(func(from, to noc.NodeID, pkt *noc.Packet) noc.LinkFault {
			v := sim.Unit(sim.Hash(seed, uint64(from), uint64(to), pkt.Seq, uint64(eng.Now())))
			if v < drop {
				return noc.LinkDrop
			}
			if v < drop+corrupt {
				return noc.LinkCorrupt
			}
			return noc.LinkOK
		})
	}

	// Each PE gets its own fault configuration with its own stall
	// stream, salted by node id: transfer-engine stalls are per-PE
	// hardware behavior, and a stream shared across PEs would couple
	// one PE's stall schedule to every other PE's send count.
	base := dtu.FaultConfig{Timeout: plan.Timeout, MaxRetries: plan.MaxRetries}
	if len(plan.Brownouts) > 0 {
		windows := plan.Brownouts
		plat.DRAM.SetFaultDelay(func(now sim.Time) sim.Time {
			var extra sim.Time
			for _, w := range windows {
				if now >= w.Start && now < w.End {
					extra += w.ExtraLatency
				}
			}
			return extra
		})
	}

	armed := false
	for _, c := range plan.Crashes {
		cs := &crashState{crash: c}
		inj.crashes = append(inj.crashes, cs)
		if c.PE >= len(plat.PEs) || plat.PEs[c.PE] == kern.PE {
			cs.skipped = true
			continue
		}
		armed = true
		pe := plat.PEs[c.PE]
		plat.Eng.Schedule(c.At, func() {
			cs.fired = true
			cs.victim = kern.VPEOnPE(pe.ID)
			pe.Crash()
		})
	}
	if armed {
		// With a crash in the schedule, services can die: bound every
		// call into them. Without one nothing can wedge, and arming a
		// deadline would schedule timer events a fault-free-equivalent
		// run does not have.
		base.CallDeadline = plan.CallDeadline
		kern.SetServiceCallDeadline(plan.CallDeadline)
		kern.EnableDeathWatch(plan.HeartbeatPeriod, plan.MaxMissedBeats, inj.watchActive)
	}
	for _, pe := range plat.PEs {
		fc := base
		if plan.StallRate > 0 {
			rng := sim.NewRand(sim.Hash(plan.Seed^saltStall, uint64(pe.ID)))
			rate, stall := plan.StallRate, plan.StallCycles
			fc.PreSend = func(p *sim.Process) {
				if rng.Float64() < rate {
					p.Sleep(stall)
				}
			}
		}
		pe.DTU.EnableFaults(&fc)
	}
	return inj, nil
}

// watchActive keeps the death watchdog alive while there is still a
// crash to happen or a crashed VPE to reap; once every victim is
// detected and torn down the watchdog returns and the simulation can
// drain normally.
func (inj *Injector) watchActive() bool {
	for _, cs := range inj.crashes {
		if cs.skipped {
			continue
		}
		if !cs.fired {
			return true
		}
		if v := cs.victim; v != nil && !v.Exited() {
			return true
		}
	}
	return false
}

// Plan returns the attached plan with defaults filled in.
func (inj *Injector) Plan() Plan { return inj.plan }

// Victims returns the VPEs that were running on a crashed PE at crash
// time, in crash order (nil entries for crashes that hit an idle or
// skipped PE are omitted).
func (inj *Injector) Victims() []*core.VPE {
	var vs []*core.VPE
	for _, cs := range inj.crashes {
		if cs.victim != nil {
			vs = append(vs, cs.victim)
		}
	}
	return vs
}

// CrashesFired counts crashes that actually happened.
func (inj *Injector) CrashesFired() int {
	n := 0
	for _, cs := range inj.crashes {
		if cs.fired {
			n++
		}
	}
	return n
}

// Retransmits sums the reliability-layer retransmissions across every
// DTU of the platform.
func (inj *Injector) Retransmits() uint64 {
	var n uint64
	for _, pe := range inj.kern.Plat.PEs {
		n += pe.DTU.Stats.Retransmits
	}
	return n
}

// Aborts sums the transfers that exhausted their retry budget.
func (inj *Injector) Aborts() uint64 {
	var n uint64
	for _, pe := range inj.kern.Plat.PEs {
		n += pe.DTU.Stats.SendsAborted
	}
	return n
}
