package fault

import (
	"repro/internal/dtu"
	"repro/internal/sim"
)

// byteReader consumes a byte slice and yields zeros once exhausted, so
// any input — fuzzer-generated included — decodes to a complete plan.
type byteReader struct {
	data []byte
	pos  int
}

func (r *byteReader) u8() uint8 {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func (r *byteReader) u16() uint16 {
	return uint16(r.u8())<<8 | uint16(r.u8())
}

func (r *byteReader) u64() uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(r.u8())
	}
	return v
}

// DecodePlan derives a fault plan from raw bytes: the fuzzing front
// end. Most knobs are range-reduced so that arbitrary input yields a
// plan a small workload survives — loss and corruption stay below
// ~0.8% per hop, the retry budget never drops below the default, and
// the timeout never shrinks below a mesh round trip (an aborted boot
// transfer would panic the kernel by design, which is a property of
// the kernel, not a parser bug for the fuzzer to find). The crash PE
// is taken raw so invalid targets exercise Validate's reject path.
// Identical bytes decode to the identical plan.
func DecodePlan(data []byte) (Plan, error) {
	r := &byteReader{data: data}
	p := Plan{
		Seed:        r.u64(),
		DropRate:    float64(r.u16()%512) / 65536,
		CorruptRate: float64(r.u16()%512) / 65536,
		StallRate:   float64(r.u16()%16384) / 65536,
		StallCycles: sim.Time(r.u16() % 1024),
		Timeout:     dtu.DefaultTimeout + sim.Time(r.u16()),
		MaxRetries:  dtu.DefaultMaxRetries + int(r.u8()%10),
	}
	if hb := sim.Time(r.u16()) * 16; hb > 0 {
		p.HeartbeatPeriod = hb
	}
	nb := int(r.u8() % 4)
	for i := 0; i < nb; i++ {
		start := sim.Time(r.u16())
		p.Brownouts = append(p.Brownouts, Window{
			Start:        start,
			End:          start + sim.Time(r.u16()),
			ExtraLatency: sim.Time(r.u16() % 256),
		})
	}
	nc := int(r.u8() % 3)
	for i := 0; i < nc; i++ {
		p.Crashes = append(p.Crashes, Crash{
			PE: int(r.u8()),
			At: sim.Time(r.u16()) * 64,
		})
	}
	// Like the retry budget, the call deadline never shrinks below its
	// default: a fuzzer-chosen deadline shorter than a service response
	// would fail healthy calls, which is policy, not a parser bug. It
	// sits at the end of the stream so pre-existing encodings keep
	// their byte layout (exhausted input yields the default).
	p.CallDeadline = DefaultCallDeadline + sim.Time(r.u16())*16
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}
