package fault_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/fault"
	"repro/internal/workload"
)

// FuzzFaultPlan feeds arbitrary bytes through DecodePlan and runs every
// accepted plan against a small real workload. The property under test:
// any byte string either fails validation or produces a plan the
// simulator survives — no panic, whatever combination of losses,
// stalls, brownouts, and crashes the bytes encode. (A deadlock is a
// legal outcome: crashing the PE a service runs on parks its clients
// forever, and the engine reports that instead of hanging.)
func FuzzFaultPlan(f *testing.F) {
	// The zero plan, the determinism test's vector, and a crash-bearing
	// input seed the corpus.
	f.Add(make([]byte, 38))
	f.Add([]byte{
		0xde, 0xad, 0xbe, 0xef, 0x00, 0xc0, 0xff, 0xee, // seed
		0x01, 0x00, // drop
		0x00, 0x80, // corrupt
		0x20, 0x00, // stall rate
		0x00, 0x40, // stall cycles
		0x00, 0x10, // timeout
		0x03,       // retries
		0x00, 0x08, // heartbeat
		0x01,                               // one brownout
		0x10, 0x00, 0x20, 0x00, 0x30, 0x00, // brownout window
		0x01,             // one crash
		0x03, 0x00, 0x40, // crash PE 3 at 0x40*64
	})
	f.Add([]byte{
		0, 0, 0, 0, 0, 0, 0, 7, // seed
		0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, // lossless
		0x00,             // no brownouts
		0x01,             // one crash
		0x02, 0x00, 0xff, // PE 2 at 0xff*64
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		plan, err := fault.DecodePlan(data)
		if err != nil {
			t.Skip()
		}
		cr, err := bench.RunM3Chaos(workload.Find(), 1, plan, bench.M3Options{})
		if err != nil {
			t.Fatalf("chaos boot failed: %v", err)
		}
		if cr.Stats.ExecutedEvents == 0 {
			t.Fatal("simulation executed no events")
		}
	})
}
