package bench

import (
	"strings"
	"testing"

	"repro/internal/linuxos"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestNullSyscallMatchesPaper(t *testing.T) {
	total, xfer := NullSyscallM3()
	// The paper: ~200 cycles total, ~30 of message transfers (§5.3);
	// our app PE sits one hop from the kernel, so the wire share is
	// smaller but must be positive and minor.
	if total < 150 || total > 260 {
		t.Fatalf("M3 null syscall = %d cycles, want ~200", total)
	}
	if xfer == 0 || xfer > total/2 {
		t.Fatalf("xfer share = %d of %d", xfer, total)
	}
	if lx := NullSyscallLx(linuxos.ProfileXtensa); lx != 410 {
		t.Fatalf("Lx syscall = %d, want 410", lx)
	}
	if lx := NullSyscallLx(linuxos.ProfileARM); lx != 320 {
		t.Fatalf("ARM syscall = %d, want 320", lx)
	}
}

func TestFig3ReadShape(t *testing.T) {
	m3bd, err := RunM3(ReadBench(), M3Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunLx(ReadBench(), linuxos.ProfileXtensa, false)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := RunLx(ReadBench(), linuxos.ProfileXtensa, true)
	if err != nil {
		t.Fatal(err)
	}
	// Paper's Figure 3 ordering: M3 << Lx-$ < Lx.
	if !(m3bd.Total < warm.Total && warm.Total < cold.Total) {
		t.Fatalf("ordering broken: m3=%d warm=%d cold=%d", m3bd.Total, warm.Total, cold.Total)
	}
	// M3 wins by a large factor (the paper's bars show ~an order of
	// magnitude).
	if ratio := float64(cold.Total) / float64(m3bd.Total); ratio < 5 {
		t.Fatalf("Lx/M3 read ratio = %.1f, want > 5", ratio)
	}
	// The M3 transfer itself approaches 8 B/cycle: 2 MiB in ~262K
	// cycles plus protocol overhead.
	if m3bd.Total < 262144 {
		t.Fatalf("M3 read faster than the DTU bandwidth allows: %d", m3bd.Total)
	}
	if m3bd.Total > 600000 {
		t.Fatalf("M3 read = %d cycles, too much overhead", m3bd.Total)
	}
}

func TestFig3WriteZeroFillAsymmetry(t *testing.T) {
	read, err := RunLx(ReadBench(), linuxos.ProfileXtensa, false)
	if err != nil {
		t.Fatal(err)
	}
	write, err := RunLx(WriteBench(), linuxos.ProfileXtensa, false)
	if err != nil {
		t.Fatal(err)
	}
	// Linux overwrites each block with zeros before handing it out
	// (§5.4): writing must cost more than reading.
	if write.Total <= read.Total {
		t.Fatalf("write (%d) should exceed read (%d) on Linux", write.Total, read.Total)
	}
}

func TestFig4SweetSpot(t *testing.T) {
	r, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.BlocksPerExtent) != 8 || r.BlocksPerExtent[0] != 16 || r.BlocksPerExtent[7] != 2048 {
		t.Fatalf("sweep = %v", r.BlocksPerExtent)
	}
	// Monotonically non-increasing read times.
	for i := 1; i < len(r.ReadCycles); i++ {
		if r.ReadCycles[i] > r.ReadCycles[i-1] {
			t.Fatalf("read time increased at %d blocks/extent", r.BlocksPerExtent[i])
		}
	}
	// The paper's sweet spot: beyond 256 blocks the gain is marginal
	// (<5%), while 16 blocks is substantially slower.
	i256 := 4
	gainAfter := float64(r.ReadCycles[i256]-r.ReadCycles[7]) / float64(r.ReadCycles[i256])
	if gainAfter > 0.05 {
		t.Fatalf("gain beyond 256 blocks = %.1f%%, want < 5%%", gainAfter*100)
	}
	penalty := float64(r.ReadCycles[0]) / float64(r.ReadCycles[7])
	if penalty < 1.2 {
		t.Fatalf("fragmentation penalty at 16 blocks = %.2fx, want > 1.2x", penalty)
	}
}

func TestFig5Directions(t *testing.T) {
	if testing.Short() {
		t.Skip("full application sweep")
	}
	r, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	rel := func(name string) float64 {
		return float64(r.Apps[name]["M3"].Total) / float64(r.Apps[name]["Lx"].Total)
	}
	// The paper's qualitative results (§5.6).
	if v := rel("cat+tr"); v > 0.6 {
		t.Errorf("cat+tr: M3/Lx = %.2f, want well below 1 (paper ~0.5)", v)
	}
	if v := rel("tar"); v < 0.10 || v > 0.35 {
		t.Errorf("tar: M3/Lx = %.2f, want ~0.20", v)
	}
	if v := rel("untar"); v < 0.10 || v > 0.35 {
		t.Errorf("untar: M3/Lx = %.2f, want ~0.16", v)
	}
	if v := rel("find"); v < 1.0 {
		t.Errorf("find: M3/Lx = %.2f, want slightly above 1 (Linux wins)", v)
	}
	if v := rel("sqlite"); v < 0.85 || v >= 1.0 {
		t.Errorf("sqlite: M3/Lx = %.2f, want slightly below 1", v)
	}
}

func TestSec52Shape(t *testing.T) {
	r, err := Sec52()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	sys := r.Rows[0]
	if sys.Xtensa != 410 || sys.ARM != 320 {
		t.Fatalf("syscall row = %+v", sys)
	}
	// "Comparable results": overheads within ~25% of each other, in
	// the millions of cycles, with ARM slightly higher on create.
	create := r.Rows[1]
	if create.ARM <= create.Xtensa {
		t.Errorf("create overhead: ARM (%d) should slightly exceed Xtensa (%d)", create.ARM, create.Xtensa)
	}
	if ratio := float64(create.ARM) / float64(create.Xtensa); ratio > 1.25 {
		t.Errorf("create overhead ratio = %.2f, want comparable", ratio)
	}
	cp := r.Rows[2]
	if ratio := float64(cp.ARM) / float64(cp.Xtensa); ratio < 0.8 || ratio > 1.25 {
		t.Errorf("copy overhead ratio = %.2f, want ~1.0", ratio)
	}
}

func TestFig7AcceleratorShape(t *testing.T) {
	r, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: the accelerator wins by a huge margin; M3 with the
	// software FFT still beats Linux because exec, pipe, and file
	// writes have less overhead.
	if r.M3Soft.Total >= r.Linux.Total {
		t.Errorf("M3 soft (%d) should beat Linux (%d)", r.M3Soft.Total, r.Linux.Total)
	}
	speedup := float64(r.M3Soft.Total) / float64(r.M3Accel.Total)
	if speedup < 8 {
		t.Errorf("accelerator end-to-end speedup = %.1fx, want >= 8x", speedup)
	}
	if r.M3Accel.Total >= r.Linux.Total/5 {
		t.Errorf("accelerated chain (%d) should be far below Linux (%d)", r.M3Accel.Total, r.Linux.Total)
	}
}

func TestFig6ShapeSmall(t *testing.T) {
	// Small version of the scalability experiment: 1 vs 8 instances of
	// find (the most service-bound benchmark) and sqlite (the most
	// compute-bound).
	find, _ := workload.ByName("find")
	sqlite, _ := workload.ByName("sqlite")
	f1, err := RunM3Instances(find, 1)
	if err != nil {
		t.Fatal(err)
	}
	f8, err := RunM3Instances(find, 8)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := RunM3Instances(sqlite, 1)
	if err != nil {
		t.Fatal(err)
	}
	s8, err := RunM3Instances(sqlite, 8)
	if err != nil {
		t.Fatal(err)
	}
	findSlow := float64(f8) / float64(f1)
	sqliteSlow := float64(s8) / float64(s1)
	if sqliteSlow > 1.1 {
		t.Errorf("sqlite slowdown at 8 = %.2f, want ~1.0 (compute-bound)", sqliteSlow)
	}
	if findSlow <= sqliteSlow {
		t.Errorf("find (%.2f) must degrade more than sqlite (%.2f)", findSlow, sqliteSlow)
	}
}

func TestReportTables(t *testing.T) {
	r, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	r.Print(&sb)
	out := sb.String()
	for _, want := range []string{"Figure 3", "M3", "Lx", "read", "write", "pipe"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestBreakdownConsistency(t *testing.T) {
	bd, err := RunM3(ReadBench(), M3Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bd.App+bd.Xfer+bd.OS != bd.Total {
		t.Fatalf("breakdown does not sum: %+v", bd)
	}
	lx, err := RunLx(ReadBench(), linuxos.ProfileXtensa, true)
	if err != nil {
		t.Fatal(err)
	}
	sum := lx.App + lx.Xfer + lx.OS
	// Linux stats may differ slightly from wall time due to waiting,
	// but must be close.
	diff := float64(sum) - float64(lx.Total)
	if diff < 0 {
		diff = -diff
	}
	if diff/float64(lx.Total) > 0.05 {
		t.Fatalf("Lx breakdown sum %d vs wall %d", sum, lx.Total)
	}
}

func TestCSVExport(t *testing.T) {
	r, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	tables := r.CSV()
	if len(tables) != 2 {
		t.Fatalf("fig3 CSV tables = %d", len(tables))
	}
	var sb strings.Builder
	if _, err := tables[1].WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 10 { // header + 3 ops x 3 systems
		t.Fatalf("fig3 fileops CSV has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "op,system,total_cycles") {
		t.Fatalf("header = %q", lines[0])
	}
	s52, err := Sec52()
	if err != nil {
		t.Fatal(err)
	}
	if got := s52.CSV(); len(got) != 1 || len(got[0].Rows) != 4 {
		t.Fatalf("sec52 CSV shape wrong")
	}
}

func TestAllPrinters(t *testing.T) {
	// Render every result type once; printers must not panic and must
	// contain the key labels.
	var sb strings.Builder

	s52 := &Sec52Result{Rows: []Sec52Row{{Metric: "x", Xtensa: 1, ARM: 2}}}
	s52.Print(&sb)

	f4 := &Fig4Result{BlocksPerExtent: []int{16, 32}, ReadCycles: []sim.Time{100, 90}, WriteCycles: []sim.Time{110, 95}}
	f4.Print(&sb)

	f5 := &Fig5Result{Apps: map[string]map[string]Breakdown{
		"cat+tr": {"M3": {Total: 1}, "Lx-$": {Total: 2}, "Lx": {Total: 3}},
		"tar":    {"M3": {Total: 1}, "Lx-$": {Total: 2}, "Lx": {Total: 3}},
		"untar":  {"M3": {Total: 1}, "Lx-$": {Total: 2}, "Lx": {Total: 3}},
		"find":   {"M3": {Total: 1}, "Lx-$": {Total: 2}, "Lx": {Total: 3}},
		"sqlite": {"M3": {Total: 1}, "Lx-$": {Total: 2}, "Lx": {Total: 3}},
	}}
	f5.Print(&sb)

	f6 := &Fig6Result{Instances: []int{1, 2}, Normalized: map[string][]float64{
		"cat+tr": {0, 1}, "tar": {1, 1.1}, "untar": {1, 1.2}, "find": {1, 2}, "sqlite": {1, 1},
	}}
	f6.Print(&sb)

	f7 := &Fig7Result{Linux: Breakdown{Total: 3}, M3Soft: Breakdown{Total: 2}, M3Accel: Breakdown{Total: 1}}
	f7.Print(&sb)

	out := sb.String()
	for _, want := range []string{"Section 5.2", "Figure 4", "Figure 5", "Figure 6", "Figure 7", "sqlite", "M3+accelerator"} {
		if !strings.Contains(out, want) {
			t.Fatalf("printers missing %q", want)
		}
	}
	// CSV variants of the same results.
	for _, c := range [][]*CSVTable{s52.CSV(), f4.CSV(), f5.CSV(), f6.CSV(), f7.CSV()} {
		for _, tab := range c {
			var b strings.Builder
			if _, err := tab.WriteTo(&b); err != nil {
				t.Fatal(err)
			}
			if b.Len() == 0 {
				t.Fatalf("empty CSV for %s", tab.Name)
			}
		}
	}
}

func TestUtilizationTradeoff(t *testing.T) {
	// §3.4: M3 trades system utilization for heterogeneity support.
	// During tar, the kernel and service PEs idle most of the time and
	// even the app PE waits on DTU transfers; mean utilization is far
	// below the ~100% a time-shared single core achieves.
	r, err := RunUtilization(workload.Tar())
	if err != nil {
		t.Fatal(err)
	}
	if r.Mean >= 0.7 {
		t.Fatalf("mean utilization = %.2f; expected well below 1 (the paper's trade-off)", r.Mean)
	}
	var kernel, app PEUtilization
	for _, u := range r.PEs {
		switch u.Role {
		case "kernel":
			kernel = u
		case "app":
			app = u
		}
	}
	if kernel.Busy >= app.Busy {
		t.Fatalf("kernel PE (%.2f) should idle more than the app PE (%.2f)", kernel.Busy, app.Busy)
	}
	if app.Busy <= 0 || app.Busy > 1 {
		t.Fatalf("app busy fraction = %.2f", app.Busy)
	}
	t.Log(r.String())
}
