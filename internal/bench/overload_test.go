package bench

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/dtu"
	"repro/internal/kif"
	"repro/internal/m3"
	"repro/internal/overload"
	"repro/internal/sim"
	"repro/internal/tile"
	"repro/internal/workload"
)

// The chaos-overload tier (ISSUE: PR 8): the full overload stack —
// deadline propagation, admission control, kernel shedding, client
// retry budgets and breakers — driven end to end under open-loop
// overload, with graceful-degradation acceptance gates, a determinism
// sweep across engine configurations, and the zero-overhead-when-off
// bit-identity proof.

// TestOverloadGracefulDegradation runs the E-load sweep and enforces
// the acceptance gates: at 2x the measured capacity the system keeps
// goodput at >= 70% of capacity, refuses the excess with fast-fail
// NACKs costing < 10% of the mean admitted round trip, and bounds the
// admitted p99 (the admission watermark caps queueing, so p99 may not
// grow past 2x its 1x value).
func TestOverloadGracefulDegradation(t *testing.T) {
	r, err := ELoad()
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]*ELoadPoint{}
	for _, row := range r.Rows {
		rows[row.Label] = row.Point
	}
	half, full, double := rows["x0.5"], rows["x1"], rows["x2"]
	if half == nil || full == nil || double == nil {
		t.Fatalf("missing sweep rows: %v", rows)
	}
	for label, p := range rows {
		if p.Errors > 0 {
			t.Errorf("%s: %d operations failed with unexpected errors", label, p.Errors)
		}
		if p.Expired > 0 {
			t.Errorf("%s: %d operations expired; the steady-state deadline is sized not to", label, p.Expired)
		}
		if p.Shed != p.AdmitRefusals {
			t.Errorf("%s: clients saw %d sheds but the m3fs DTU refused %d", label, p.Shed, p.AdmitRefusals)
		}
	}
	// Light load passes nearly untouched.
	if half.Admitted*100 < half.Offered*95 {
		t.Errorf("x0.5: only %d/%d admitted; light load should not be shed", half.Admitted, half.Offered)
	}
	// Overload: goodput holds, the excess is refused rather than queued.
	if double.GoodputMcyc < 0.7*r.Capacity.GoodputMcyc {
		t.Errorf("x2: goodput %.1f/Mcyc fell below 70%% of capacity %.1f/Mcyc — congestion collapse",
			double.GoodputMcyc, r.Capacity.GoodputMcyc)
	}
	if double.Shed == 0 {
		t.Error("x2: no requests shed at twice the measured capacity; admission control inert")
	}
	// Shed requests fail fast: one NACK round trip, not a burned deadline.
	if 10*double.MeanShedLat >= double.MeanRTT {
		t.Errorf("x2: shed latency %d cycles is not < 10%% of admitted mean rtt %d cycles",
			double.MeanShedLat, double.MeanRTT)
	}
	// Bounded tail: the watermark caps queueing, so doubling offered
	// load past saturation may not double the admitted p99.
	if double.P99RTT > 2*full.P99RTT {
		t.Errorf("x2: admitted p99 %d cycles more than doubled vs x1 p99 %d cycles — queues unbounded",
			double.P99RTT, full.P99RTT)
	}
}

// TestOverloadDeterminism: the sweep is bit-reproducible — three runs
// on the serial engine and three on the 4-worker parallel engine must
// produce identical witnesses at every load point.
func TestOverloadDeterminism(t *testing.T) {
	var ref *ELoadResult
	check := func(name string, cfg sim.Config) {
		r, err := ELoadEngine(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ref == nil {
			ref = r
			return
		}
		if r.Capacity.Witness != ref.Capacity.Witness || r.Capacity.Stats != ref.Capacity.Stats {
			t.Errorf("%s: capacity witness diverged: %x/%+v vs %x/%+v", name,
				r.Capacity.Witness, r.Capacity.Stats, ref.Capacity.Witness, ref.Capacity.Stats)
		}
		for i, row := range r.Rows {
			want := ref.Rows[i].Point
			if row.Point.Witness != want.Witness || row.Point.Stats != want.Stats {
				t.Errorf("%s %s: witness diverged: %x/%+v vs %x/%+v", name, row.Label,
					row.Point.Witness, row.Point.Stats, want.Witness, want.Stats)
			}
		}
	}
	for i := 0; i < 3; i++ {
		check(fmt.Sprintf("serial#%d", i), sim.Config{})
	}
	for i := 0; i < 3; i++ {
		check(fmt.Sprintf("parallel-4#%d", i), sim.Config{Workers: 4})
	}
}

// TestOverloadIdleBitIdentical is the zero-overhead-when-off proof:
// arming the overload stack with an idle policy (no deadline, no
// watermarks, nothing to shed) must leave every observable byte of a
// chaos run — events, traces, metrics, outcomes — bit-identical to a
// run with the stack absent.
func TestOverloadIdleBitIdentical(t *testing.T) {
	b, err := workload.ByName("tar")
	if err != nil {
		t.Fatal(err)
	}
	idle := &OverloadSpec{} // armed, but every knob at its off default
	for _, cfg := range []struct {
		name string
		cfg  sim.Config
	}{{"serial", sim.Config{}}, {"parallel-4", sim.Config{Workers: 4}}} {
		off, err := RunDifferential(b, 2, differentialPlan(), cfg.cfg)
		if err != nil {
			t.Fatalf("%s off: %v", cfg.name, err)
		}
		on, err := RunDifferentialOverload(b, 2, differentialPlan(), cfg.cfg, idle)
		if err != nil {
			t.Fatalf("%s idle: %v", cfg.name, err)
		}
		if off != on {
			t.Errorf("%s: idle overload stack perturbed the run:\n  off: %v\n  on:  %v", cfg.name, off, on)
		}
	}
}

// TestOverloadKernelShed drives the kernel's shed controller: with an
// aggressive low watermark, a thundering herd of concurrent mounts has
// its session opens (PriorityLow) refused by the kernel, and every
// client still mounts via its bounded retry budget — load shedding
// slows the herd down without losing anyone.
func TestOverloadKernelShed(t *testing.T) {
	const clients = 6
	s := bootM3(M3Options{Overload: &OverloadSpec{
		Shed: overload.ShedConfig{LowWatermark: 1},
	}}, clients)
	mounted := 0
	var runErr error
	for i := 0; i < clients; i++ {
		ci := i
		_, err := s.kern.StartInit(fmt.Sprintf("herd%d", ci), tile.CoreXtensa, func(ctx *tile.Ctx) {
			env := m3.NewEnv(ctx, s.kern)
			os, err := workload.NewM3OS(env)
			if err != nil {
				runErr = fmt.Errorf("client %d: %w", ci, err)
				return
			}
			if err := os.Mkdir(fmt.Sprintf("/h%d", ci)); err != nil {
				runErr = fmt.Errorf("client %d mkdir: %w", ci, err)
				return
			}
			mounted++
			env.Exit(0)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	s.eng.Run()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if mounted != clients {
		t.Fatalf("only %d/%d clients mounted", mounted, clients)
	}
	if s.kern.Stats.CallsShed == 0 {
		t.Error("kernel shed controller never fired under a concurrent mount herd at watermark 1")
	}
	if s.kern.Stats.CallsShed != s.kern.Stats.CallsRefused {
		// Every kernel-side shed surfaces to exactly one caller as a
		// refusal (the fast-fail refusals counted at callService's reply
		// collection are the DTU-level ones, counted separately).
		t.Logf("note: CallsShed=%d CallsRefused=%d (DTU-level refusals ride the same counter)",
			s.kern.Stats.CallsShed, s.kern.Stats.CallsRefused)
	}
}

// TestOverloadDeadlineExpiry is the end-to-end deadline propagation
// check: a client arming a deadline far below the service round trip
// has its requests dropped at the m3fs DTU before the service ever
// sees them, and the client observes a timeout — not a hang.
func TestOverloadDeadlineExpiry(t *testing.T) {
	s := bootM3(M3Options{Overload: &OverloadSpec{RxWatermark: 64}}, 1)
	var statErrs []error
	var runErr error
	_, err := s.kern.StartInit("deadline", tile.CoreXtensa, func(ctx *tile.Ctx) {
		env := m3.NewEnv(ctx, s.kern)
		os, err := workload.NewM3OS(env)
		if err != nil {
			runErr = err
			return
		}
		f, err := os.Open("/probe", workload.Write|workload.Create|workload.Trunc)
		if err != nil {
			runErr = err
			return
		}
		if err := f.Close(); err != nil {
			runErr = err
			return
		}
		os.FS.ShedRetryAttempts = -1
		// Arm an impossible budget on this PE only: every stat now stamps
		// a 1-cycle deadline that expires in flight.
		ctx.PE.DTU.EnableOverload(&dtu.OverloadConfig{CallDeadline: 1})
		for i := 0; i < 4; i++ {
			if _, serr := os.FS.Stat("/probe"); serr != nil {
				statErrs = append(statErrs, serr)
			}
			ctx.P.Sleep(2048) // let fast-fail credit restoration settle
		}
		// Disarm before teardown so exit-path traffic is unbounded again.
		ctx.PE.DTU.EnableOverload(nil)
		if _, serr := os.FS.Stat("/probe"); serr != nil {
			runErr = fmt.Errorf("post-disarm stat: %w", serr)
			return
		}
		env.Exit(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	s.eng.Run()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if len(statErrs) != 4 {
		t.Fatalf("expected all 4 deadline-armed stats to fail, got %d errors: %v", len(statErrs), statErrs)
	}
	// The first three misses surface as timeouts and feed the client
	// breaker (FailThreshold 3); the fourth is failed fast by the open
	// breaker without touching the wire.
	for _, serr := range statErrs[:3] {
		if !errors.Is(serr, kif.ErrTimeout) && !errors.Is(serr, dtu.ErrTimeout) {
			t.Errorf("deadline miss surfaced as %v, want a timeout", serr)
		}
	}
	if !errors.Is(statErrs[3], kif.ErrOverload) {
		t.Errorf("fourth stat surfaced as %v, want the open breaker's overload fast-fail", statErrs[3])
	}
	if s.plat.PEs[1].DTU.Stats.DeadlineDrops == 0 {
		t.Error("m3fs DTU recorded no deadline drops; expired requests reached the service")
	}
}
