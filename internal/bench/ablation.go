package bench

import (
	"fmt"

	"repro/internal/dtu"
	"repro/internal/kif"
	"repro/internal/linuxos"
	"repro/internal/m3"
	"repro/internal/m3fs"
	"repro/internal/sim"
	"repro/internal/tile"
	"repro/internal/workload"
)

// Ablations quantify the design choices DESIGN.md calls out. Each
// returns measurements for the design as built vs. the ablated
// variant.

// CreditAblation sends a burst from many senders into one receive
// gate. With honest credits (total credits <= ringbuffer slots) no
// message is lost; overcommitting the buffer — the configuration the
// paper warns about in §4.4.3 — silently drops messages.
type CreditAblation struct {
	Senders   int
	Delivered uint64
	Dropped   uint64
}

// RunCreditAblation configures one receive endpoint with `slots`
// ringbuffer slots and `senders` send endpoints with `creditsEach`
// credits, fires one burst from every sender, and reports delivery.
func RunCreditAblation(senders, slots, creditsEach, burst int) (CreditAblation, error) {
	eng := sim.NewEngine()
	plat := tile.NewPlatform(eng, tile.Homogeneous(senders+1))
	recv := plat.PEs[0]
	if err := recv.DTU.Configure(0, dtu.Endpoint{
		Type: dtu.EpReceive, BufAddr: 0, SlotSize: 64 + dtu.HeaderSize, SlotCount: slots,
	}); err != nil {
		return CreditAblation{}, err
	}
	for i := 1; i <= senders; i++ {
		pe := plat.PEs[i]
		if err := pe.DTU.Configure(1, dtu.Endpoint{
			Type: dtu.EpSend, Target: recv.Node, TargetEP: 0,
			Label: uint64(i), Credits: creditsEach, MsgSize: 64,
		}); err != nil {
			return CreditAblation{}, err
		}
		pe.Start("sender", func(c *tile.Ctx) {
			for n := 0; n < burst; n++ {
				// Fire-and-forget: the ablated variant has no reply
				// path to restore credits, mirroring a misconfigured
				// channel.
				_ = c.PE.DTU.Send(c.P, 1, []byte{byte(n)}, -1, 0)
				c.Compute(10)
			}
		})
	}
	// A slow receiver drains the buffer with a fixed service time.
	recv.Start("receiver", func(c *tile.Ctx) {
		for i := 0; i < senders*burst; i++ {
			msg := c.PE.DTU.Fetch(0)
			if msg == nil {
				if !anySenderAlive(plat, senders) && !c.PE.DTU.HasMsg(0) {
					return
				}
				c.Compute(50)
				continue
			}
			c.Compute(200)
			c.PE.DTU.Ack(0, msg)
		}
	})
	eng.Run()
	return CreditAblation{
		Senders:   senders,
		Delivered: recv.DTU.Stats.MsgsReceived,
		Dropped:   recv.DTU.Stats.MsgsDropped,
	}, nil
}

func anySenderAlive(plat *tile.Platform, senders int) bool {
	for i := 1; i <= senders; i++ {
		if plat.PEs[i].Running() {
			return true
		}
	}
	return false
}

// EPMuxAblation measures the cost of endpoint multiplexing: accessing
// more memory gates than the DTU has endpoints forces libm3 to
// re-activate gates via system calls (§4.5.4).
type EPMuxAblation struct {
	Gates     int
	Cycles    sim.Time
	Activates uint64
}

// RunEPMuxAblation touches `gates` memory gates round-robin for
// `rounds` rounds and reports total cycles plus activation syscalls.
func RunEPMuxAblation(gates, rounds int) (EPMuxAblation, error) {
	s := bootM3(M3Options{}, 1)
	var res EPMuxAblation
	var ferr error
	_, err := s.kern.StartInit("app", tile.CoreXtensa, func(ctx *tile.Ctx) {
		env := m3.NewEnv(ctx, s.kern)
		var mgs []*m3.MemGate
		for i := 0; i < gates; i++ {
			mg, err := env.ReqMem(1024, dtu.PermRW)
			if err != nil {
				ferr = err
				return
			}
			mgs = append(mgs, mg)
		}
		buf := make([]byte, 64)
		// Warm every gate once so the measured loop sees only
		// multiplexing-induced re-activations.
		for _, mg := range mgs {
			if err := mg.Write(buf, 0); err != nil {
				ferr = err
				return
			}
		}
		activatesBefore := s.kern.Stats.Syscalls[kif.SysActivate]
		start := ctx.Now()
		for r := 0; r < rounds; r++ {
			for _, mg := range mgs {
				if err := mg.Write(buf, 0); err != nil {
					ferr = err
					return
				}
			}
		}
		res.Cycles = ctx.Now() - start
		res.Activates = s.kern.Stats.Syscalls[kif.SysActivate] - activatesBefore
		res.Gates = gates
		env.Exit(0)
	})
	if err != nil {
		return res, err
	}
	s.eng.Run()
	return res, ferr
}

// ExtentBatchAblation compares writing a file with single-block
// appends against the 256-block batching m3fs uses by default.
type ExtentBatchAblation struct {
	AppendBlocks int
	WriteCycles  sim.Time
	Extents      int
}

// RunExtentBatchAblation writes a 512 KiB file with the given append
// granularity.
func RunExtentBatchAblation(appendBlocks int) (ExtentBatchAblation, error) {
	res := ExtentBatchAblation{AppendBlocks: appendBlocks}
	b := workload.Benchmark{
		Name:  "extent-batch",
		PEs:   1,
		Setup: func(os workload.OS) error { return nil },
		Run: func(os workload.OS) error {
			f, err := os.Open("/batch.bin", workload.Write|workload.Create|workload.Trunc)
			if err != nil {
				return err
			}
			buf := make([]byte, 4096)
			for written := 0; written < 512<<10; written += len(buf) {
				if _, err := f.Write(buf); err != nil {
					return err
				}
			}
			return f.Close()
		},
	}
	bd, err := RunM3(b, M3Options{AppendBlocks: appendBlocks, NoMerge: true})
	if err != nil {
		return res, err
	}
	res.WriteCycles = bd.Total
	res.Extents = (512 << 10) / (appendBlocks * 1024)
	return res, nil
}

// ContentionAblation runs n tar instances with realistic NoC/DRAM
// contention vs. the perfectly-scaling variant of Figure 6.
type ContentionAblation struct {
	Instances            int
	Contended, Unlimited sim.Time
}

// RunContentionAblation measures both variants.
func RunContentionAblation(n int) (ContentionAblation, error) {
	res := ContentionAblation{Instances: n}
	b, err := workload.ByName("tar")
	if err != nil {
		return res, err
	}
	unlimited, err := RunM3Instances(b, n)
	if err != nil {
		return res, err
	}
	contended, err := runM3InstancesContended(b, n)
	if err != nil {
		return res, err
	}
	res.Unlimited = unlimited
	res.Contended = contended
	return res, nil
}

// TopologyAblation compares contended multi-instance runs on the 2D
// mesh against a torus with wrap-around links.
type TopologyAblation struct {
	Instances   int
	Mesh, Torus sim.Time
}

// RunTopologyAblation measures both topologies under real contention.
func RunTopologyAblation(n int) (TopologyAblation, error) {
	res := TopologyAblation{Instances: n}
	b, err := workload.ByName("tar")
	if err != nil {
		return res, err
	}
	if res.Mesh, err = runM3InstancesOpt(b, n, M3Options{
		DRAMPorts: 1, DRAMSize: 512 << 20, FS: m3fs.Config{RegionSize: 384 << 20},
	}); err != nil {
		return res, err
	}
	if res.Torus, err = runM3InstancesOpt(b, n, M3Options{
		DRAMPorts: 1, DRAMSize: 512 << 20, NoCTorus: true,
		FS: m3fs.Config{RegionSize: 384 << 20},
	}); err != nil {
		return res, err
	}
	return res, nil
}

// runM3InstancesContended is RunM3Instances with real link and memory
// port contention.
func runM3InstancesContended(b workload.Benchmark, n int) (sim.Time, error) {
	opt := M3Options{
		DRAMPorts: 1,
		DRAMSize:  512 << 20,
		FS:        m3fs.Config{RegionSize: 384 << 20},
	}
	return runM3InstancesOpt(b, n, opt)
}

// runM3InstancesOpt runs n instances under the given platform options.
func runM3InstancesOpt(b workload.Benchmark, n int, opt M3Options) (sim.Time, error) {
	s := bootM3(opt, n*b.PEs)
	times := make([]sim.Time, 0, n)
	var runErr error
	ready := 0
	startSig := sim.NewSignal(s.eng)
	for i := 0; i < n; i++ {
		prefix := fmt.Sprintf("/i%d", i)
		_, err := s.kern.StartInit(fmt.Sprintf("app%d", i), tile.CoreXtensa, func(ctx *tile.Ctx) {
			env := m3.NewEnv(ctx, s.kern)
			os, err := workload.NewM3OS(env)
			if err != nil {
				runErr = err
				return
			}
			os.Prefix = prefix
			if err := os.Mkdir(""); err != nil {
				runErr = err
				return
			}
			if err := b.Setup(os); err != nil {
				runErr = err
				return
			}
			ready++
			if ready == n {
				startSig.Broadcast()
			} else {
				startSig.Wait(ctx.P)
			}
			start := ctx.Now()
			if err := b.Run(os); err != nil {
				runErr = err
				return
			}
			times = append(times, ctx.Now()-start)
			env.Exit(0)
		})
		if err != nil {
			return 0, err
		}
	}
	s.eng.Run()
	if runErr != nil {
		return 0, runErr
	}
	var sum sim.Time
	for _, t := range times {
		sum += t
	}
	if len(times) == 0 {
		return 0, fmt.Errorf("bench: no instance finished")
	}
	return sum / sim.Time(len(times)), nil
}

// RunMmapComparison copies a file of the given size on warm-cache
// Linux via read/write and via mmap, returning both durations. The
// paper measured the mmap variant and excluded it for its cache
// thrashing (§5.4).
func RunMmapComparison(size int) (readwrite, mmap sim.Time) {
	copyVia := func(useMmap bool) sim.Time {
		eng := sim.NewEngine()
		sys := linuxos.New(eng, linuxos.ProfileXtensa, false)
		var took sim.Time
		sys.Spawn("copy", func(pr *linuxos.Proc) {
			fd, _ := pr.Open("/src", linuxos.OWrite|linuxos.OCreate)
			_, _ = pr.Write(fd, make([]byte, size))
			_ = pr.Close(fd)
			fd, _ = pr.Open("/dst", linuxos.OWrite|linuxos.OCreate)
			_ = pr.Close(fd)
			start := pr.P().Now()
			if useMmap {
				src, _ := pr.Mmap("/src")
				dst, _ := pr.Mmap("/dst")
				_, _ = src.CopyTo(dst)
				src.Unmap()
				dst.Unmap()
			} else {
				src, _ := pr.Open("/src", linuxos.ORead)
				dst, _ := pr.Open("/dst", linuxos.OWrite)
				buf := make([]byte, 4096)
				for {
					n, err := pr.Read(src, buf)
					if n > 0 {
						_, _ = pr.Write(dst, buf[:n])
					}
					if err != nil {
						break
					}
				}
				_ = pr.Close(src)
				_ = pr.Close(dst)
			}
			took = pr.P().Now() - start
		})
		eng.Run()
		return took
	}
	return copyVia(false), copyVia(true)
}
