package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/m3"
	"repro/internal/m3fs"
	"repro/internal/sim"
	"repro/internal/tile"
	"repro/internal/workload"
)

// ChaosOutcome is the per-instance result of a chaos run. A crashed
// instance simply stops writing: Finished stays false and EndAt marks
// how far it got (zero if it never left the start barrier).
type ChaosOutcome struct {
	Name     string
	VPE      *core.VPE
	Finished bool
	StartAt  sim.Time
	EndAt    sim.Time
	RunTime  sim.Time
	Err      error
}

// ChaosRun exposes the full system state after a fault-injected run,
// so tests can assert isolation properties (no live capabilities of
// dead VPEs, deconfigured endpoints, closed sessions) rather than just
// completion.
type ChaosRun struct {
	Eng      *sim.Engine
	Plat     *tile.Platform
	Kern     *core.Kernel
	FS       *m3fs.Service
	Inj      *fault.Injector
	Stats    RunStats
	Outcomes []ChaosOutcome
	// FSReadyAt records when each m3fs incarnation finished starting
	// (entry 0 is boot; later entries are supervisor restarts). The
	// recovery sweep derives time-to-recover from it.
	FSReadyAt []sim.Time
	// FlightDump is the flight-recorder post-mortem, captured
	// automatically when a structured tracer with an armed recorder is
	// installed and the run failed (deadlock or any instance error).
	FlightDump string
}

// RunM3Chaos runs n parallel instances of b on one M3 system under the
// given fault plan: the chaos-tier harness. Instances report failures
// through their outcome instead of panicking — under fault injection a
// refused syscall or a vanished service is a result, not a harness
// bug. The start barrier mirrors RunM3Instances; the plan is attached
// after boot is queued and before the engine runs, so crash times are
// absolute simulation cycles.
func RunM3Chaos(b workload.Benchmark, n int, plan fault.Plan, opt M3Options) (*ChaosRun, error) {
	s := bootM3NoFS(opt, n*b.PEs)
	cr := &ChaosRun{Eng: s.eng, Plat: s.plat, Kern: s.kern}
	fsProg := m3fs.Program(s.kern, opt.FS, func(svc *m3fs.Service) {
		cr.FS = svc
		cr.FSReadyAt = append(cr.FSReadyAt, s.eng.Now())
	})
	if opt.FSPolicy.MaxRestarts > 0 {
		if _, err := s.kern.StartInitSupervised("m3fs", tile.CoreXtensa, fsProg, opt.FSPolicy); err != nil {
			return nil, err
		}
	} else if _, err := s.kern.StartInit("m3fs", tile.CoreXtensa, fsProg); err != nil {
		return nil, err
	}
	cr.Outcomes = make([]ChaosOutcome, n)
	ready := 0
	startSig := sim.NewSignal(s.eng)
	for i := 0; i < n; i++ {
		out := &cr.Outcomes[i]
		out.Name = fmt.Sprintf("chaos%d", i)
		prefix := fmt.Sprintf("/i%d", i)
		vpe, err := s.kern.StartInit(out.Name, tile.CoreXtensa, func(ctx *tile.Ctx) {
			env := m3.NewEnv(ctx, s.kern)
			os, err := workload.NewM3OS(env)
			if err != nil {
				out.Err = err
				env.Exit(1)
				return
			}
			os.Prefix = prefix
			if err := os.Mkdir(""); err != nil {
				out.Err = err
				env.Exit(1)
				return
			}
			if err := b.Setup(os); err != nil {
				out.Err = err
				env.Exit(1)
				return
			}
			// Barrier: all instances enter their run phase together.
			ready++
			if ready == n {
				startSig.Broadcast()
			} else {
				startSig.Wait(ctx.P)
			}
			out.StartAt = ctx.Now()
			err = b.Run(os)
			out.EndAt = ctx.Now()
			if err != nil {
				out.Err = err
				env.Exit(1)
				return
			}
			out.RunTime = out.EndAt - out.StartAt
			out.Finished = true
			env.Exit(0)
		})
		if err != nil {
			return nil, err
		}
		out.VPE = vpe
	}
	inj, err := fault.Attach(s.kern, plan)
	if err != nil {
		return nil, err
	}
	cr.Inj = inj
	s.eng.Run()
	cr.Stats = RunStats{ExecutedEvents: s.eng.ExecutedEvents(), FinalTime: s.eng.Now()}
	if opt.Obs.FlightRecording() {
		// An unfinished instance covers both error exits and crash kills
		// (a crashed instance stops writing with Err == nil).
		failed := s.eng.Deadlocked()
		for i := range cr.Outcomes {
			if !cr.Outcomes[i].Finished {
				failed = true
			}
		}
		if failed {
			cr.FlightDump = opt.Obs.FlightDump()
		}
	}
	return cr, nil
}
