package bench

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"repro/internal/linuxos"
	"repro/internal/m3"
	"repro/internal/obs"
	"repro/internal/overload"
	"repro/internal/sim"
	"repro/internal/tile"
	"repro/internal/workload"
)

// Experiment E-tail: where does the tail come from? A client fleet
// fires file operations on the open-loop burst generator (the E-load
// arrival machinery with a mid-run spike), the structured tracer
// streams every span into the critical-path engine
// (internal/obs/critpath.go), and the table reports the full blame
// decomposition — app compute, DTU queueing/credit stalls, NoC wire
// time, kernel/service handling, retransmit, shed — of the exact
// request sitting at p50 and p99, per workload, M3 vs the Linux
// model. On Linux the analog categories come from the per-operation
// linuxos.Stats deltas (app/xfer/os mapped to app/queue/kernel; a
// monolithic kernel has no NoC, retry or shed component to blame).
// Everything is deterministic: the rows are exact-match gated in the
// bench baseline, and the per-workload witness digests the entire
// request population so the differential tests can compare engines.

const (
	// etailSeed pins the arrival schedules.
	etailSeed uint64 = 0xE7A11
	// etailClients is the M3 client-fleet size.
	etailClients = 4
	// etailOps is the per-client operation count.
	etailOps = 48
	// etailInterval is the per-client steady arrival interval.
	etailInterval sim.Time = 3000
	// etailSpikeLen arrivals fire back-to-back mid-run (ShapeSpike):
	// the burst that manufactures the queueing tail.
	etailSpikeLen = 8
	// etailJitter decorrelates the per-client schedules.
	etailJitter = 0.15
	// etailFileSize/etailBufSize size the read workload's file and
	// per-operation read.
	etailFileSize = 32 << 10
	etailBufSize  = 4 << 10
)

// E-tail SLO names (package constants: m3vet sloname) and the latency
// bound fed to the tail objective.
const (
	etailSLOLatency = "etail_tail_latency"
	etailSLOAvail   = "etail_availability"

	etailSLOBound sim.Time = 1 << 13
)

// ETailQuantiles are the reported latency quantiles.
var ETailQuantiles = []float64{0.5, 0.99}

// etailOpKind selects the per-arrival operation.
type etailOpKind uint8

const (
	etailStat etailOpKind = iota // metadata round-trip (Stat)
	etailRead                    // 4 KiB data read from an open file
)

// ETailWorkload is one workload of the sweep.
type ETailWorkload struct {
	Name string
	op   etailOpKind
}

// ETailWorkloads is the workload set (the acceptance gate wants at
// least two).
var ETailWorkloads = []ETailWorkload{
	{Name: "stat", op: etailStat},
	{Name: "read", op: etailRead},
}

// ETailQ is the blame decomposition at one quantile.
type ETailQ struct {
	Q       float64
	Latency uint64
	Blame   obs.BlameVec
}

// ETailSystem is one system's view of one workload.
type ETailSystem struct {
	System    string // "m3" or "lx"
	Requests  uint64
	Quantiles []ETailQ
}

// ETailWorkloadResult is one workload row group.
type ETailWorkloadResult struct {
	Workload string
	M3, Lx   ETailSystem

	// SLO outcome of the M3 run (the Linux model has no SLO engine).
	SLOGood, SLOTotal uint64
	SLOTransitions    uint64
	SLOState          string

	// Witness digests the entire M3 request population (span, latency,
	// blame vector) plus the run statistics; the differential tests
	// compare it across engine configurations.
	Witness uint64
	Stats   RunStats
}

// ETailResult is the E-tail experiment output.
type ETailResult struct {
	Workloads []ETailWorkloadResult
}

// etailGen builds one client's arrival schedule: constant interval
// with jitter plus one mid-run spike of back-to-back arrivals.
func etailGen(stream uint64) *overload.Gen {
	return overload.NewGen(overload.BurstConfig{
		Seed:     etailSeed,
		Shape:    overload.ShapeSpike,
		Interval: etailInterval,
		Count:    etailOps,
		Jitter:   etailJitter,
		SpikeAt:  etailInterval * etailOps / 2,
		SpikeLen: etailSpikeLen,
	}, stream)
}

// etailClientSetup prepares one client's namespace: a private
// directory, the stat probe, and the read file.
func etailClientSetup(os *workload.M3OS, prefix string) error {
	os.Prefix = prefix
	if err := os.Mkdir(""); err != nil {
		return err
	}
	if err := writeFilePattern(os, "/probe", 64); err != nil {
		return err
	}
	return writeFilePattern(os, "/data", etailFileSize)
}

// etailOp fires one client operation (both systems drive the same
// workload.OS surface). The read op is a full open/seek-read/close
// round so every arrival crosses the OS — on M3 each call is its own
// root span; a long-lived handle would serve most reads from the
// client-side extent cache without ever leaving the PE.
func etailOp(w ETailWorkload, os workload.OS, i int, buf []byte) error {
	switch w.op {
	case etailStat:
		_, err := os.Stat("/probe")
		return err
	default:
		f, err := os.Open("/data", workload.Read)
		if err != nil {
			return err
		}
		if sf, ok := f.(workload.SeekableFile); ok {
			off := int64(i%(etailFileSize/etailBufSize)) * etailBufSize
			if _, err := sf.Seek(off, 0); err != nil {
				return err
			}
		}
		if _, err := f.Read(buf); err != nil {
			return err
		}
		return f.Close()
	}
}

// runETailM3 drives one workload on M3 with the critical-path engine
// armed after setup (the measured population is the steady-state
// fleet traffic, not the scaffolding).
func runETailM3(w ETailWorkload, engCfg sim.Config) (*ETailWorkloadResult, error) {
	slos := obs.NewSLOSet()
	tail := slos.Objective(etailSLOLatency, obs.SLOConfig{
		Objective: 0.99, LatencyBound: etailSLOBound, Window: 1 << 18})
	slos.Objective(etailSLOAvail, obs.SLOConfig{Objective: 0.999, Window: 1 << 18})
	cp := obs.NewCritPath(obs.CritPathOptions{Exemplars: 2, SLO: slos})
	armed := false
	tracer := obs.New(obs.Options{Sink: func(ev obs.Event) {
		if armed {
			cp.Consume(ev)
		}
	}})
	s := bootM3(M3Options{Obs: tracer, Engine: engCfg}, etailClients)

	ready := 0
	startSig := sim.NewSignal(s.eng)
	setupTurn := 0
	turnSig := sim.NewSignal(s.eng)
	var runErr error
	for i := 0; i < etailClients; i++ {
		ci := i
		prefix := fmt.Sprintf("/t%d", ci)
		_, err := s.kern.StartInit(fmt.Sprintf("tail%d", ci), tile.CoreXtensa, func(ctx *tile.Ctx) {
			for setupTurn != ci {
				turnSig.Wait(ctx.P)
			}
			env := m3.NewEnv(ctx, s.kern)
			os, err := workload.NewM3OS(env)
			if err != nil {
				runErr = err
				return
			}
			if err := etailClientSetup(os, prefix); err != nil {
				runErr = err
				return
			}
			setupTurn++
			turnSig.Broadcast()
			ready++
			if ready == etailClients {
				// Last client through setup: arm the attribution engine
				// before releasing the fleet, so every measured span
				// belongs to steady-state traffic.
				armed = true
				startSig.Broadcast()
			} else {
				startSig.Wait(ctx.P)
			}
			base := ctx.Now()
			gen := etailGen(uint64(ci))
			buf := make([]byte, etailBufSize)
			for i := 0; ; i++ {
				at, ok := gen.Next()
				if !ok {
					break
				}
				// Open loop: arrivals are absolute; a client running
				// behind fires immediately.
				if target := base + at; ctx.Now() < target {
					ctx.P.Sleep(target - ctx.Now())
				}
				if err := etailOp(w, os, i, buf); err != nil {
					runErr = err
					return
				}
			}
			env.Exit(0)
		})
		if err != nil {
			return nil, err
		}
	}
	s.eng.Run()
	if runErr != nil {
		return nil, runErr
	}

	res := &ETailWorkloadResult{
		Workload: w.Name,
		M3:       ETailSystem{System: "m3", Requests: cp.Completed()},
		SLOState: tail.State().String(),
		Stats:    RunStats{ExecutedEvents: s.eng.ExecutedEvents(), FinalTime: s.eng.Now()},
	}
	res.SLOGood, res.SLOTotal = tail.Counts()
	res.SLOTransitions = tail.Transitions()
	for _, q := range ETailQuantiles {
		req, ok := cp.RequestAt(q)
		if !ok {
			return nil, fmt.Errorf("etail %s: no completed requests on M3", w.Name)
		}
		res.M3.Quantiles = append(res.M3.Quantiles, ETailQ{
			Q: q, Latency: uint64(req.Latency()), Blame: req.Blame})
	}
	h := fnv.New64a()
	for _, req := range cp.Requests() {
		fmt.Fprintf(h, "%d %d %v\n", req.Span, req.Latency(), req.Blame)
	}
	fmt.Fprintf(h, "ev=%d ft=%d\n", res.Stats.ExecutedEvents, res.Stats.FinalTime)
	res.Witness = h.Sum64()
	return res, nil
}

// lxReq is one timed Linux operation with its Stats-delta blame.
type lxReq struct {
	lat   sim.Time
	blame obs.BlameVec
}

// lxTimedOS wraps the Linux workload.OS so that every individual call
// — the same granularity as M3's root spans — lands in the request
// population via rec.
type lxTimedOS struct {
	workload.OS
	rec func(func() error) error
}

func (t *lxTimedOS) Open(path string, flags workload.OpenFlags) (workload.File, error) {
	var f workload.File
	err := t.rec(func() error {
		var e error
		f, e = t.OS.Open(path, flags)
		return e
	})
	if err != nil {
		return nil, err
	}
	return &lxTimedFile{f: f, rec: t.rec}, nil
}

func (t *lxTimedOS) Stat(path string) (workload.Stat, error) {
	var st workload.Stat
	err := t.rec(func() error {
		var e error
		st, e = t.OS.Stat(path)
		return e
	})
	return st, err
}

// lxTimedFile times the read/write/close calls; Seek passes through
// untimed (on M3 it is client-local bookkeeping, never a request).
type lxTimedFile struct {
	f   workload.File
	rec func(func() error) error
}

func (f *lxTimedFile) Read(buf []byte) (int, error) {
	var n int
	err := f.rec(func() error {
		var e error
		n, e = f.f.Read(buf)
		return e
	})
	return n, err
}

func (f *lxTimedFile) Write(buf []byte) (int, error) {
	var n int
	err := f.rec(func() error {
		var e error
		n, e = f.f.Write(buf)
		return e
	})
	return n, err
}

func (f *lxTimedFile) Close() error {
	return f.rec(func() error { return f.f.Close() })
}

func (f *lxTimedFile) Seek(off int64, whence int) (int64, error) {
	if sf, ok := f.f.(workload.SeekableFile); ok {
		return sf.Seek(off, whence)
	}
	return 0, fmt.Errorf("etail: underlying file not seekable")
}

// runETailLx drives the same offered schedule on the Linux model (one
// process — the monolithic-kernel baseline has no per-PE fleet) and
// derives per-operation blame from the linuxos.Stats deltas.
func runETailLx(w ETailWorkload) (ETailSystem, error) {
	eng := sim.NewEngine()
	sys := linuxos.New(eng, linuxos.ProfileXtensa, false)
	var reqs []lxReq
	var runErr error
	sys.Spawn("tail", func(pr *linuxos.Proc) {
		os := workload.NewLxOS(sys, pr)
		if err := writeFilePattern(os, "/probe", 64); err != nil {
			runErr = err
			return
		}
		if err := writeFilePattern(os, "/data", etailFileSize); err != nil {
			runErr = err
			return
		}
		record := func(op func() error) error {
			pre := sys.Stats
			t0 := pr.P().Now()
			err := op()
			if err != nil {
				return err
			}
			lat := pr.P().Now() - t0
			var blame obs.BlameVec
			blame[obs.BlameKernel] = uint64(sys.Stats.OS - pre.OS)
			blame[obs.BlameQueue] = uint64(sys.Stats.Xfer - pre.Xfer)
			if attributed := blame[obs.BlameKernel] + blame[obs.BlameQueue]; uint64(lat) > attributed {
				blame[obs.BlameApp] = uint64(lat) - attributed
			}
			reqs = append(reqs, lxReq{lat: lat, blame: blame})
			return nil
		}
		tos := &lxTimedOS{OS: os, rec: record}
		buf := make([]byte, etailBufSize)
		base := pr.P().Now()
		// One process serves the whole fleet's schedule: merge the
		// per-client generators by next-arrival order, so the offered
		// sequence matches the M3 run's.
		gens := make([]*overload.Gen, etailClients)
		next := make([]sim.Time, etailClients)
		live := make([]bool, etailClients)
		for ci := range gens {
			gens[ci] = etailGen(uint64(ci))
			next[ci], live[ci] = gens[ci].Next()
		}
		count := make([]int, etailClients)
		for {
			best := -1
			for ci := range gens {
				if live[ci] && (best < 0 || next[ci] < next[best]) {
					best = ci
				}
			}
			if best < 0 {
				break
			}
			at := next[best]
			i := count[best]
			count[best]++
			next[best], live[best] = gens[best].Next()
			if target := base + at; pr.P().Now() < target {
				pr.P().Sleep(target - pr.P().Now())
			}
			if err := etailOp(w, tos, i, buf); err != nil {
				runErr = err
				return
			}
		}
	})
	eng.Run()
	if runErr != nil {
		return ETailSystem{}, runErr
	}
	res := ETailSystem{System: "lx", Requests: uint64(len(reqs))}
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].lat < reqs[j].lat })
	for _, q := range ETailQuantiles {
		if len(reqs) == 0 {
			return ETailSystem{}, fmt.Errorf("etail %s: no operations on lx", w.Name)
		}
		// Nearest rank, the same selection rule CritPath.RequestAt uses.
		idx := int(q*float64(len(reqs))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(reqs) {
			idx = len(reqs) - 1
		}
		res.Quantiles = append(res.Quantiles, ETailQ{
			Q: q, Latency: uint64(reqs[idx].lat), Blame: reqs[idx].blame})
	}
	return res, nil
}

// ETail runs the blame-at-the-tail sweep on both systems.
func ETail() (*ETailResult, error) {
	return ETailEngine(sim.Config{})
}

// ETailEngine is ETail on an explicit engine configuration (the
// differential tests sweep it; every configuration must produce the
// identical witness).
func ETailEngine(engCfg sim.Config) (*ETailResult, error) {
	res := &ETailResult{}
	for _, w := range ETailWorkloads {
		m3r, err := runETailM3(w, engCfg)
		if err != nil {
			return nil, fmt.Errorf("etail %s on M3: %w", w.Name, err)
		}
		lx, err := runETailLx(w)
		if err != nil {
			return nil, fmt.Errorf("etail %s on Linux: %w", w.Name, err)
		}
		m3r.Lx = lx
		res.Workloads = append(res.Workloads, *m3r)
	}
	return res, nil
}

// qLabel renders a quantile as a stable row label (p50, p99).
func qLabel(q float64) string {
	return fmt.Sprintf("p%g", q*100)
}

// Print writes the blame tables.
func (r *ETailResult) Print(w io.Writer) {
	fmt.Fprintf(w, "E-tail: critical-path blame at the tail, %d clients x %d ops, spike of %d (seed %#x)\n",
		etailClients, etailOps, etailSpikeLen, etailSeed)
	tw := newTable(w, "workload", "system", "q", "latency", "app", "queue", "noc", "kernel", "retry", "shed")
	for _, wr := range r.Workloads {
		for _, s := range []*ETailSystem{&wr.M3, &wr.Lx} {
			for _, q := range s.Quantiles {
				tw.row(wr.Workload, s.System, qLabel(q.Q), cyc(sim.Time(q.Latency)),
					fmt.Sprint(q.Blame[obs.BlameApp]), fmt.Sprint(q.Blame[obs.BlameQueue]),
					fmt.Sprint(q.Blame[obs.BlameNoC]), fmt.Sprint(q.Blame[obs.BlameKernel]),
					fmt.Sprint(q.Blame[obs.BlameRetry]), fmt.Sprint(q.Blame[obs.BlameShed]))
			}
		}
	}
	tw.flush()
	fmt.Fprintf(w, "E-tail: M3 %s objective (bound %d cycles)\n", etailSLOLatency, etailSLOBound)
	tw = newTable(w, "workload", "requests", "good/total", "transitions", "state")
	for _, wr := range r.Workloads {
		tw.row(wr.Workload, fmt.Sprint(wr.M3.Requests),
			fmt.Sprintf("%d/%d", wr.SLOGood, wr.SLOTotal),
			fmt.Sprint(wr.SLOTransitions), wr.SLOState)
	}
	tw.flush()
}

// CSV renders the E-tail tables. Every cell is deterministic, so the
// default exact-match tolerance gates them.
func (r *ETailResult) CSV() []*CSVTable {
	blame := &CSVTable{Name: "etail_blame", Rows: [][]string{
		{"workload", "system", "q", "latency_cycles",
			"app", "queue", "noc", "kernel", "retry", "shed"},
	}}
	for _, wr := range r.Workloads {
		for _, s := range []*ETailSystem{&wr.M3, &wr.Lx} {
			for _, q := range s.Quantiles {
				blame.Rows = append(blame.Rows, []string{
					wr.Workload, s.System, qLabel(q.Q), fmt.Sprint(q.Latency),
					fmt.Sprint(q.Blame[obs.BlameApp]), fmt.Sprint(q.Blame[obs.BlameQueue]),
					fmt.Sprint(q.Blame[obs.BlameNoC]), fmt.Sprint(q.Blame[obs.BlameKernel]),
					fmt.Sprint(q.Blame[obs.BlameRetry]), fmt.Sprint(q.Blame[obs.BlameShed]),
				})
			}
		}
	}
	slo := &CSVTable{Name: "etail_slo", Rows: [][]string{
		{"workload", "requests", "slo_good", "slo_total", "transitions", "state"},
	}}
	for _, wr := range r.Workloads {
		slo.Rows = append(slo.Rows, []string{
			wr.Workload, fmt.Sprint(wr.M3.Requests),
			fmt.Sprint(wr.SLOGood), fmt.Sprint(wr.SLOTotal),
			fmt.Sprint(wr.SLOTransitions), wr.SLOState,
		})
	}
	return []*CSVTable{blame, slo}
}
