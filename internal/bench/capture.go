package bench

import (
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Run captures for the bench gate (docs/OBSERVABILITY.md): `m3bench
// -capture` runs each experiment's representative workload once more
// with the profiler and the critical-path engine armed and bundles the
// resulting obs.RunCapture values into the bench JSON. When a later
// `-diff` finds a regression, the two files' captures are aligned
// (obs.DiffCaptures) to attribute the delta — see diffreport.go.
//
// Captures ride in the same schema-versioned file but are pure sink
// output: arming them never schedules an event, so the measured
// experiments and the determinism witness are bit-identical with and
// without -capture.

// CaptureWorkloads maps each experiment to the workload its capture
// runs. Several experiments share a workload; -capture runs each
// distinct workload once.
var CaptureWorkloads = map[string]string{
	"fig3":     "tar",
	"sec52":    "tar",
	"fig4":     "tar",
	"fig5":     "tar",
	"fig6":     "tar",
	"fig7":     "tar",
	"util":     "find",
	"efault":   "tar",
	"erecover": "tar",
	"elat":     "tar",
	"eload":    "tar",
	"etail":    "tar",
	"witness":  witnessWorkload,
}

// CaptureRunOptions parameterizes one capture run.
type CaptureRunOptions struct {
	// Engine selects the simulation engine; captures are byte-identical
	// across every variant (the differential contract).
	Engine sim.Config
	// DispatchCostDelta seeds a kernel-side cost regression (the m3diff
	// self-test); zero captures the unperturbed tree.
	DispatchCostDelta sim.Time
}

// RunWorkloadCapture runs one workload with the folded profiler and
// the critical-path engine fanned out from the structured tracer and
// returns the bundled capture. Identical (workload, options) runs
// return byte-identical captures.
func RunWorkloadCapture(name string, opt CaptureRunOptions) (*obs.RunCapture, error) {
	b, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	prof := obs.NewProfiler()
	cp := obs.NewCritPath(obs.CritPathOptions{})
	tr := obs.New(obs.Options{Sink: func(ev obs.Event) {
		prof.Consume(ev)
		cp.Consume(ev)
	}})
	mopt := M3Options{
		Obs:               tr,
		SampleEvery:       witnessSampleEvery,
		Engine:            opt.Engine,
		DispatchCostDelta: opt.DispatchCostDelta,
	}
	if _, _, err := RunM3Stats(b, mopt); err != nil {
		return nil, fmt.Errorf("bench: capture run %s: %w", name, err)
	}
	hists := append(tr.Histograms(), cp.Hist())
	return obs.NewRunCapture(name, prof, cp, tr.Metrics(), hists), nil
}

// CaptureAll captures the distinct workloads behind the named
// experiments, in workload-name order.
func CaptureAll(experiments []string, opt CaptureRunOptions) ([]*obs.RunCapture, error) {
	seen := map[string]bool{}
	var names []string
	for _, e := range experiments {
		w, ok := CaptureWorkloads[e]
		if !ok || seen[w] {
			continue
		}
		seen[w] = true
		names = append(names, w)
	}
	sort.Strings(names)
	caps := make([]*obs.RunCapture, 0, len(names))
	for _, w := range names {
		c, err := RunWorkloadCapture(w, opt)
		if err != nil {
			return nil, err
		}
		caps = append(caps, c)
	}
	return caps, nil
}

// FindCapture returns the file's capture of the given workload, or nil.
func FindCapture(f *BenchFile, workload string) *obs.RunCapture {
	for _, c := range f.Captures {
		if c != nil && c.Workload == workload {
			return c
		}
	}
	return nil
}
