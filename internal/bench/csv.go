package bench

import (
	"fmt"
	"io"
	"strings"
)

// CSV export: each experiment result renders as header + rows, so
// plotting scripts can regenerate the paper's figures from files.

// CSVTable is a rendered experiment result.
type CSVTable struct {
	Name string
	Rows [][]string
}

// WriteTo writes the table as CSV.
func (t *CSVTable) WriteTo(w io.Writer) (int64, error) {
	var n int64
	for _, row := range t.Rows {
		for i, c := range row {
			if strings.ContainsAny(c, ",\"\n") {
				row[i] = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
		}
		m, err := fmt.Fprintln(w, strings.Join(row, ","))
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// CSV renders Figure 3.
func (r *Fig3Result) CSV() []*CSVTable {
	sys := &CSVTable{Name: "fig3_syscall", Rows: [][]string{
		{"system", "total_cycles", "xfer_cycles", "other_cycles"},
		{"m3", cyc(r.SyscallM3), cyc(r.SyscallM3Xfer), cyc(r.SyscallM3 - r.SyscallM3Xfer)},
		{"lx", cyc(r.SyscallLx), "0", cyc(r.SyscallLx)},
	}}
	ops := &CSVTable{Name: "fig3_fileops", Rows: [][]string{
		{"op", "system", "total_cycles", "xfer_cycles", "os_cycles"},
	}}
	for _, op := range []string{"read", "write", "pipe"} {
		for _, s := range []string{"M3", "Lx-$", "Lx"} {
			b := r.FileOps[op][s]
			ops.Rows = append(ops.Rows, []string{op, s, cyc(b.Total), cyc(b.Xfer), cyc(b.OS + b.App)})
		}
	}
	return []*CSVTable{sys, ops}
}

// CSV renders the §5.2 table.
func (r *Sec52Result) CSV() []*CSVTable {
	t := &CSVTable{Name: "sec52", Rows: [][]string{{"metric", "xtensa_cycles", "arm_cycles"}}}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{row.Metric, cyc(row.Xtensa), cyc(row.ARM)})
	}
	return []*CSVTable{t}
}

// CSV renders Figure 4.
func (r *Fig4Result) CSV() []*CSVTable {
	t := &CSVTable{Name: "fig4", Rows: [][]string{{"blocks_per_extent", "read_cycles", "write_cycles"}}}
	for i, bpe := range r.BlocksPerExtent {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(bpe), cyc(r.ReadCycles[i]), cyc(r.WriteCycles[i]),
		})
	}
	return []*CSVTable{t}
}

// CSV renders Figure 5.
func (r *Fig5Result) CSV() []*CSVTable {
	t := &CSVTable{Name: "fig5", Rows: [][]string{
		{"benchmark", "system", "total_cycles", "app_cycles", "xfer_cycles", "os_cycles"},
	}}
	for _, name := range []string{"cat+tr", "tar", "untar", "find", "sqlite"} {
		for _, s := range []string{"M3", "Lx-$", "Lx"} {
			b := r.Apps[name][s]
			t.Rows = append(t.Rows, []string{
				name, s, cyc(b.Total), cyc(b.App), cyc(b.Xfer), cyc(b.OS),
			})
		}
	}
	return []*CSVTable{t}
}

// CSV renders Figure 6.
func (r *Fig6Result) CSV() []*CSVTable {
	header := []string{"benchmark"}
	for _, n := range r.Instances {
		header = append(header, fmt.Sprintf("n%d", n))
	}
	t := &CSVTable{Name: "fig6", Rows: [][]string{header}}
	for _, name := range []string{"cat+tr", "tar", "untar", "find", "sqlite"} {
		row := []string{name}
		for _, v := range r.Normalized[name] {
			if v == 0 {
				row = append(row, "")
			} else {
				row = append(row, fmt.Sprintf("%.4f", v))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return []*CSVTable{t}
}

// CSV renders Figure 7.
func (r *Fig7Result) CSV() []*CSVTable {
	t := &CSVTable{Name: "fig7", Rows: [][]string{
		{"system", "total_cycles", "app_cycles", "xfer_cycles", "os_cycles"},
	}}
	for _, e := range []struct {
		name string
		b    Breakdown
	}{{"linux", r.Linux}, {"m3_soft", r.M3Soft}, {"m3_accel", r.M3Accel}} {
		t.Rows = append(t.Rows, []string{
			e.name, cyc(e.b.Total), cyc(e.b.App), cyc(e.b.Xfer), cyc(e.b.OS),
		})
	}
	return []*CSVTable{t}
}
