package bench

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/workload"
)

// differentialPlan is the fault plan every differential run uses: a
// lossy, corrupting NoC. It exercises retransmission, NACKs, and the
// asynchronous control traffic that rides the parallel engine's
// sharded delivery path — the lossless model never sends an async
// packet.
func differentialPlan() fault.Plan {
	return fault.Plan{Seed: chaosSeed, DropRate: 0.01, CorruptRate: 0.002}
}

// TestEngineEquivalence is the headline differential test: every
// tier-1 workload runs under the heap queue, the calendar queue, and
// the parallel engine at 2, 4, and 8 workers, and every observable
// byte — engine statistics, legacy trace, structured event stream,
// metrics snapshot, per-instance outcomes — must be identical across
// the whole matrix.
func TestEngineEquivalence(t *testing.T) {
	for _, b := range workload.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			variants := EngineVariants()
			ref, err := RunDifferential(b, 2, differentialPlan(), variants[0].Cfg)
			if err != nil {
				t.Fatalf("%s: %v", variants[0].Name, err)
			}
			if ref.Stats.ExecutedEvents == 0 || ref.ObsEvents == 0 || ref.LegacyHash == 0 {
				t.Fatalf("%s: empty witness, harness broken: %v", variants[0].Name, ref)
			}
			for _, v := range variants[1:] {
				w, err := RunDifferential(b, 2, differentialPlan(), v.Cfg)
				if err != nil {
					t.Fatalf("%s: %v", v.Name, err)
				}
				if w != ref {
					t.Errorf("%s diverges from %s:\n  ref: %v\n  got: %v",
						v.Name, variants[0].Name, ref, w)
				}
			}
		})
	}
}

// TestEngineEquivalenceNoFault: the matrix must also agree on a
// lossless run (no async control traffic at all), catching a parallel
// engine that only works when the fault layer perturbs timing.
func TestEngineEquivalenceNoFault(t *testing.T) {
	b, err := workload.ByName("tar")
	if err != nil {
		t.Fatal(err)
	}
	variants := EngineVariants()
	ref, err := RunDifferential(b, 2, fault.Plan{Seed: chaosSeed}, variants[0].Cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range variants[1:] {
		w, err := RunDifferential(b, 2, fault.Plan{Seed: chaosSeed}, v.Cfg)
		if err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		if w != ref {
			t.Errorf("%s diverges from %s:\n  ref: %v\n  got: %v", v.Name, variants[0].Name, ref, w)
		}
	}
}

// TestDifferentialRunIsDeterministic: one configuration, run twice,
// must witness-match itself — the precondition for cross-engine
// comparison to mean anything.
func TestDifferentialRunIsDeterministic(t *testing.T) {
	b, err := workload.ByName("cat+tr")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{Workers: 4}
	a, err := RunDifferential(b, 2, differentialPlan(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := RunDifferential(b, 2, differentialPlan(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != c {
		t.Fatalf("parallel-4 not self-deterministic:\n  1st: %v\n  2nd: %v", a, c)
	}
}
