package bench

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"repro/internal/kif"
	"repro/internal/m3"
	"repro/internal/overload"
	"repro/internal/sim"
	"repro/internal/tile"
	"repro/internal/workload"
)

// Experiment E-load: graceful degradation under open-loop overload.
// A fleet of clients fires m3fs metadata operations (stat) on
// generator-scheduled arrival times — open loop, so offered load does
// not slow down when the service does — at 0.5x, 1x, and 2x of the
// measured closed-loop capacity, with the full overload stack armed
// (deadline propagation, admission watermark, kernel shed controller,
// client retry budgets; docs/OVERLOAD.md). The gates: goodput at 2x
// stays above 70% of capacity, shed requests fast-fail in under 10% of
// the mean admitted RTT, and the admitted p99 stays bounded by the
// admission watermark instead of growing with offered load.

const (
	// eloadSeed pins the arrival schedules (per-client jitter streams).
	eloadSeed uint64 = 0xE10AD
	// eloadClients is the size of the client fleet.
	eloadClients = 8
	// eloadOps is the per-client operation count at every load point.
	eloadOps = 64
	// eloadWatermark is the admission watermark on the m3fs PE: requests
	// arriving with this many messages already queued are refused.
	eloadWatermark = 4
	// eloadDeadline is the per-call cycle budget stamped into headers.
	// Generous on purpose: the steady-state sweep demonstrates admission
	// control and shedding; tight-deadline expiry is the chaos tier's
	// job (TestOverloadDeadline* in overload_test.go).
	eloadDeadline sim.Time = 1 << 17
	// eloadJitter decorrelates the per-client arrival schedules.
	eloadJitter = 0.2
)

// ELoadSpec is the harness overload policy of the sweep (exported so
// the chaos tests run the same configuration).
func ELoadSpec() *OverloadSpec {
	return &OverloadSpec{
		CallDeadline: eloadDeadline,
		RxWatermark:  eloadWatermark,
		Shed: overload.ShedConfig{
			LowWatermark:  eloadWatermark + 2,
			HighWatermark: eloadWatermark + 6,
		},
		Breaker: overload.BreakerConfig{},
	}
}

// eloadRec is one client-observed operation outcome.
type eloadRec struct {
	lat     sim.Time
	outcome uint8 // 0 admitted, 1 shed (refused), 2 expired/timeout, 3 other error
}

// ELoadPoint is the aggregated result of one load point.
type ELoadPoint struct {
	Offered  uint64
	Admitted uint64
	Shed     uint64
	Expired  uint64
	Errors   uint64

	// Window is the measurement window: first client start to last
	// client end. GoodputMcyc is admitted operations per million cycles
	// of that window.
	Window      sim.Time
	GoodputMcyc float64

	MeanRTT     sim.Time // admitted operations
	P99RTT      sim.Time
	MeanShedLat sim.Time // shed operations (raw fast-fail, no retries)

	// Service/kernel-side counters after the run.
	AdmitRefusals uint64
	DeadlineDrops uint64
	KernelShed    uint64
	BreakerOpens  uint64

	// Witness digests every per-operation outcome plus the engine run
	// statistics; the determinism gate compares it across repetitions
	// and engine configurations.
	Witness uint64
	Stats   RunStats
}

// runELoadPoint boots a fresh armed system and drives one load point.
// interval 0 is the closed-loop capacity probe (clients fire
// back-to-back); armed false runs the same fleet with every overload
// knob off (the capacity baseline measures the unarmed system).
func runELoadPoint(interval sim.Time, armed bool, engCfg sim.Config) (*ELoadPoint, error) {
	opt := M3Options{Engine: engCfg}
	if armed {
		opt.Overload = ELoadSpec()
	}
	s := bootM3(opt, eloadClients)
	recs := make([][]eloadRec, eloadClients)
	starts := make([]sim.Time, eloadClients)
	ends := make([]sim.Time, eloadClients)
	ready := 0
	startSig := sim.NewSignal(s.eng)
	// Setup (mount, mkdir, file create) runs one client at a time: the
	// experiment measures overload behavior of the steady-state stat
	// traffic, not of a thundering-herd boot, and serial setup keeps the
	// armed runs from shedding their own scaffolding.
	setupTurn := 0
	turnSig := sim.NewSignal(s.eng)
	var runErr error
	for i := 0; i < eloadClients; i++ {
		ci := i
		prefix := fmt.Sprintf("/c%d", ci)
		_, err := s.kern.StartInit(fmt.Sprintf("load%d", ci), tile.CoreXtensa, func(ctx *tile.Ctx) {
			for setupTurn != ci {
				turnSig.Wait(ctx.P)
			}
			env := m3.NewEnv(ctx, s.kern)
			os, err := workload.NewM3OS(env)
			if err != nil {
				runErr = err
				return
			}
			os.Prefix = prefix
			if err := os.Mkdir(""); err != nil {
				runErr = err
				return
			}
			f, err := os.Open("/probe", workload.Write|workload.Create|workload.Trunc)
			if err != nil {
				runErr = err
				return
			}
			if _, err := f.Write(make([]byte, 64)); err != nil {
				runErr = err
				return
			}
			if err := f.Close(); err != nil {
				runErr = err
				return
			}
			// The driver measures raw fast-fail latency and counts every
			// arrival exactly once: client-internal retries off.
			os.FS.ShedRetryAttempts = -1
			path := prefix + "/probe"
			setupTurn++
			turnSig.Broadcast()
			ready++
			if ready == eloadClients {
				startSig.Broadcast()
			} else {
				startSig.Wait(ctx.P)
			}
			base := ctx.Now()
			starts[ci] = base
			gen := overload.NewGen(overload.BurstConfig{
				Seed:     eloadSeed,
				Shape:    overload.ShapeConstant,
				Interval: interval,
				Count:    eloadOps,
				Jitter:   eloadJitter,
			}, uint64(ci))
			for {
				at, ok := gen.Next()
				if !ok {
					break
				}
				if interval > 0 {
					// Open loop: arrivals are absolute. A client running
					// behind fires immediately — offered load never slows
					// down to match the service.
					if target := base + at; ctx.Now() < target {
						ctx.P.Sleep(target - ctx.Now())
					}
				}
				t0 := ctx.Now()
				_, serr := os.FS.Stat(path)
				rec := eloadRec{lat: ctx.Now() - t0}
				switch {
				case serr == nil:
				case errors.Is(serr, kif.ErrOverload):
					rec.outcome = 1
				case errors.Is(serr, kif.ErrTimeout):
					rec.outcome = 2
				default:
					rec.outcome = 3
				}
				recs[ci] = append(recs[ci], rec)
			}
			ends[ci] = ctx.Now()
			env.Exit(0)
		})
		if err != nil {
			return nil, err
		}
	}
	s.eng.Run()
	if runErr != nil {
		return nil, runErr
	}
	res := &ELoadPoint{
		Stats: RunStats{ExecutedEvents: s.eng.ExecutedEvents(), FinalTime: s.eng.Now()},
	}
	h := fnv.New64a()
	var sumRTT, sumShed sim.Time
	var admittedLats []sim.Time
	var minStart, maxEnd sim.Time
	for ci := range recs {
		if ci == 0 || starts[ci] < minStart {
			minStart = starts[ci]
		}
		if ends[ci] > maxEnd {
			maxEnd = ends[ci]
		}
		for i, r := range recs[ci] {
			fmt.Fprintf(h, "%d %d %d %d\n", ci, i, r.outcome, r.lat)
			res.Offered++
			switch r.outcome {
			case 0:
				res.Admitted++
				sumRTT += r.lat
				admittedLats = append(admittedLats, r.lat)
			case 1:
				res.Shed++
				sumShed += r.lat
			case 2:
				res.Expired++
			default:
				res.Errors++
			}
		}
	}
	res.Window = maxEnd - minStart
	if res.Window > 0 {
		res.GoodputMcyc = float64(res.Admitted) / float64(res.Window) * 1e6
	}
	if res.Admitted > 0 {
		res.MeanRTT = sumRTT / sim.Time(res.Admitted)
		sort.Slice(admittedLats, func(i, j int) bool { return admittedLats[i] < admittedLats[j] })
		res.P99RTT = admittedLats[(len(admittedLats)-1)*99/100]
	}
	if res.Shed > 0 {
		res.MeanShedLat = sumShed / sim.Time(res.Shed)
	}
	fsDTU := s.plat.PEs[1].DTU
	res.AdmitRefusals = fsDTU.Stats.OverloadRefused
	res.DeadlineDrops = fsDTU.Stats.DeadlineDrops
	res.KernelShed = s.kern.Stats.CallsShed
	res.BreakerOpens = s.kern.Stats.BreakerRejects
	fmt.Fprintf(h, "ev=%d ft=%d ref=%d dd=%d ks=%d br=%d\n",
		res.Stats.ExecutedEvents, res.Stats.FinalTime,
		res.AdmitRefusals, res.DeadlineDrops, res.KernelShed, res.BreakerOpens)
	res.Witness = h.Sum64()
	return res, nil
}

// ELoadCapacity measures the closed-loop, unarmed capacity baseline.
func ELoadCapacity(engCfg sim.Config) (*ELoadPoint, error) {
	return runELoadPoint(0, false, engCfg)
}

// ELoadIntervalFor converts a capacity measurement and an offered-load
// multiplier into the per-client arrival interval: the fleet together
// offers mult times the measured capacity.
func ELoadIntervalFor(capacity *ELoadPoint, mult float64) sim.Time {
	opsPerCycle := float64(capacity.Admitted) / float64(capacity.Window)
	return sim.Time(float64(eloadClients) / (mult * opsPerCycle))
}

// ELoadRow is one offered-load point of the sweep table.
type ELoadRow struct {
	Label string
	Mult  float64
	Point *ELoadPoint
}

// ELoadResult is the E-load experiment output.
type ELoadResult struct {
	Capacity *ELoadPoint
	Rows     []ELoadRow
}

// ELoadMults are the offered-load multipliers of the sweep.
var ELoadMults = []float64{0.5, 1, 2}

// ELoad runs the sweep: capacity probe, then the armed open-loop
// points.
func ELoad() (*ELoadResult, error) {
	return ELoadEngine(sim.Config{})
}

// ELoadEngine is ELoad on an explicit engine configuration (the
// determinism gate sweeps it; every configuration must produce the
// identical witness).
func ELoadEngine(engCfg sim.Config) (*ELoadResult, error) {
	capacity, err := ELoadCapacity(engCfg)
	if err != nil {
		return nil, fmt.Errorf("eload capacity: %w", err)
	}
	if capacity.Admitted != uint64(eloadClients*eloadOps) {
		return nil, fmt.Errorf("eload capacity: only %d/%d ops admitted in the unarmed baseline", capacity.Admitted, eloadClients*eloadOps)
	}
	res := &ELoadResult{Capacity: capacity}
	for _, mult := range ELoadMults {
		interval := ELoadIntervalFor(capacity, mult)
		p, err := runELoadPoint(interval, true, engCfg)
		if err != nil {
			return nil, fmt.Errorf("eload x%g: %w", mult, err)
		}
		res.Rows = append(res.Rows, ELoadRow{Label: fmt.Sprintf("x%g", mult), Mult: mult, Point: p})
	}
	return res, nil
}

// Print writes the sweep table.
func (r *ELoadResult) Print(w io.Writer) {
	fmt.Fprintf(w, "E-load: open-loop overload sweep, %d clients x %d stat ops (seed %#x)\n",
		eloadClients, eloadOps, eloadSeed)
	fmt.Fprintf(w, "  capacity (closed loop, overload off): %.1f ops/Mcyc, mean rtt %d cycles\n",
		r.Capacity.GoodputMcyc, r.Capacity.MeanRTT)
	tw := newTable(w, "offered", "admitted", "shed", "expired", "goodput/Mcyc", "vs capacity",
		"mean rtt", "p99 rtt", "shed latency")
	for _, row := range r.Rows {
		p := row.Point
		tw.row(row.Label, fmt.Sprintf("%d/%d", p.Admitted, p.Offered),
			fmt.Sprintf("%d", p.Shed), fmt.Sprintf("%d", p.Expired),
			fmt.Sprintf("%.1f", p.GoodputMcyc),
			fmt.Sprintf("%.0f%%", 100*p.GoodputMcyc/r.Capacity.GoodputMcyc),
			cyc(p.MeanRTT), cyc(p.P99RTT), cyc(p.MeanShedLat))
	}
	tw.flush()
}

// CSV renders the sweep. Counts and latencies are deterministic, so
// the default diff tolerance holds them steady; the goodput gate rides
// as goodput_loss (lower is better, like every other bench metric).
func (r *ELoadResult) CSV() []*CSVTable {
	t := &CSVTable{Name: "eload_degradation", Rows: [][]string{
		{"load", "offered", "admitted", "shed", "expired", "goodput_loss",
			"mean_rtt_cycles", "p99_rtt_cycles", "shed_lat_cycles",
			"refusals", "deadline_drops", "kernel_shed"},
	}}
	for _, row := range r.Rows {
		p := row.Point
		loss := 1 - p.GoodputMcyc/r.Capacity.GoodputMcyc
		if loss < 0 {
			loss = 0
		}
		t.Rows = append(t.Rows, []string{
			row.Label,
			fmt.Sprintf("%d", p.Offered), fmt.Sprintf("%d", p.Admitted),
			fmt.Sprintf("%d", p.Shed), fmt.Sprintf("%d", p.Expired),
			fmt.Sprintf("%.4f", loss),
			cyc(p.MeanRTT), cyc(p.P99RTT), cyc(p.MeanShedLat),
			fmt.Sprintf("%d", p.AdmitRefusals),
			fmt.Sprintf("%d", p.DeadlineDrops),
			fmt.Sprintf("%d", p.KernelShed),
		})
	}
	c := &CSVTable{Name: "eload_capacity", Rows: [][]string{
		{"metric", "mean_rtt_cycles", "p99_rtt_cycles"},
		{"capacity", cyc(r.Capacity.MeanRTT), cyc(r.Capacity.P99RTT)},
	}}
	return []*CSVTable{t, c}
}
