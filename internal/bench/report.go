package bench

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/sim"
)

// table is a minimal column-aligned text table writer.
type table struct {
	w      io.Writer
	header []string
	rows   [][]string
}

func newTable(w io.Writer, header ...string) *table {
	return &table{w: w, header: header}
}

func (t *table) row(cells ...string) {
	for len(cells) < len(t.header) {
		cells = append(cells, "")
	}
	t.rows = append(t.rows, cells)
}

func (t *table) flush() {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(t.w, "  "+strings.Join(parts, "  "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// cyc formats plain cycles.
func cyc(t sim.Time) string { return fmt.Sprintf("%d", t) }

// kcyc formats thousands of cycles.
func kcyc(t sim.Time) string { return fmt.Sprintf("%.1f", float64(t)/1e3) }

// mcyc formats millions of cycles.
func mcyc(t sim.Time) string { return fmt.Sprintf("%.3f", float64(t)/1e6) }
