package bench

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// End-to-end tests for the critical-path attribution and SLO layer:
// byte-identical reports across repetitions and engine configurations
// (the m3slo determinism acceptance gate), report stability under
// chaos-tier fault injection with service recovery, the engine
// equivalence of the E-tail experiment, and the zero-overhead-when-off
// proof for the attribution/SLO sink.

// The bench-suite SLO names (package constants: m3vet sloname).
const (
	benchSLOTail  = "bench_critpath_tail"
	benchSLOAvail = "bench_critpath_avail"
)

// benchSLOSet builds the standard objective pair the report tests use.
func benchSLOSet() *obs.SLOSet {
	s := obs.NewSLOSet()
	s.Objective(benchSLOTail, obs.SLOConfig{
		Objective: 0.99, LatencyBound: 1 << 14, Window: 1 << 18})
	s.Objective(benchSLOAvail, obs.SLOConfig{Objective: 0.999, Window: 1 << 18})
	return s
}

// writeCritPathReport serializes everything m3slo reports — counters,
// quantile blame, exemplar trees event by event, folded stacks, and
// the SLO snapshot — into one deterministic byte blob.
func writeCritPathReport(t *testing.T, cp *obs.CritPath, slos *obs.SLOSet) []byte {
	t.Helper()
	var buf bytes.Buffer
	rep := cp.ReportAt([]float64{0.5, 0.99, 0.999})
	fmt.Fprintf(&buf, "completed=%d failed=%d evicted=%d truncated=%d dropped=%d total=%v\n",
		rep.Completed, rep.Failed, rep.Evicted, rep.Truncated, rep.Dropped, rep.Total)
	for _, q := range rep.Quantiles {
		fmt.Fprintf(&buf, "q%g span=%d kind=%s lat=%d fail=%v blame=%v\n",
			q.Q, q.Span, q.Kind, q.Latency, q.Fail, q.Blame)
	}
	for _, ex := range rep.Exemplars {
		fmt.Fprintf(&buf, "ex span=%d lat=%d fail=%v trunc=%v blame=%v\n",
			ex.Span, ex.Latency(), ex.Fail, ex.Truncated, ex.Blame)
		for _, ev := range ex.Events {
			fmt.Fprintf(&buf, "  %s\n", ev)
		}
	}
	if err := cp.WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	if err := slos.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// critPathRun executes one workload with the attribution engine and
// SLO set wired as the tracer sink and returns the run statistics plus
// the serialized report.
func critPathRun(t *testing.T, b workload.Benchmark, cfg sim.Config) (RunStats, []byte) {
	t.Helper()
	slos := benchSLOSet()
	cp := obs.NewCritPath(obs.CritPathOptions{Exemplars: 4, SLO: slos})
	tr := obs.New(obs.Options{Sink: cp.Consume})
	_, st, err := RunM3Stats(b, M3Options{Obs: tr, Engine: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if cp.Completed() == 0 {
		t.Fatal("critpath run completed no requests")
	}
	return st, writeCritPathReport(t, cp, slos)
}

// TestCritPathReportDeterministic: three serial runs plus a parallel-4
// run of the same workload must produce byte-identical attribution
// reports — counters, quantile blame, exemplar span trees, folded
// stacks, and SLO snapshot (the m3slo acceptance gate).
func TestCritPathReportDeterministic(t *testing.T) {
	b, err := workload.ByName("tar")
	if err != nil {
		t.Fatal(err)
	}
	st1, rep1 := critPathRun(t, b, sim.Config{})
	for i := 0; i < 2; i++ {
		st2, rep2 := critPathRun(t, b, sim.Config{})
		if st1 != st2 {
			t.Fatalf("serial rerun %d: run stats differ: %+v vs %+v", i+2, st2, st1)
		}
		if !bytes.Equal(rep1, rep2) {
			t.Fatalf("serial rerun %d: report differs:\n%s\n---\n%s", i+2, rep2, rep1)
		}
	}
	stP, repP := critPathRun(t, b, sim.Config{Workers: 4})
	if st1 != stP {
		t.Fatalf("parallel-4 run stats differ: %+v vs %+v", stP, st1)
	}
	if !bytes.Equal(rep1, repP) {
		t.Fatalf("parallel-4 report differs from serial:\n%s\n---\n%s", repP, rep1)
	}
}

// critPathChaosRun is critPathRun over the chaos-tier recovery
// configuration: two instances, journaled supervised m3fs, a mid-run
// service crash and restart.
func critPathChaosRun(t *testing.T, b workload.Benchmark, plan fault.Plan) (RunStats, []byte) {
	t.Helper()
	slos := benchSLOSet()
	cp := obs.NewCritPath(obs.CritPathOptions{Exemplars: 4, SLO: slos})
	opt := recoverOpts()
	opt.Obs = obs.New(obs.Options{Sink: cp.Consume})
	cr, err := RunM3Chaos(b, 2, plan, opt)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Completed() == 0 {
		t.Fatal("chaos critpath run completed no requests")
	}
	return cr.Stats, writeCritPathReport(t, cp, slos)
}

// TestCritPathChaosDeterministic: the attribution report stays
// byte-identical under fault injection and service recovery.
func TestCritPathChaosDeterministic(t *testing.T) {
	b, err := workload.ByName("untar")
	if err != nil {
		t.Fatal(err)
	}
	opts := recoverOpts()
	fsCrashAt := midRunCrashAtOpt(t, b, 2, fault.Plan{Seed: chaosSeed}, opts)
	plan := fault.Plan{Seed: chaosSeed, Crashes: []fault.Crash{{PE: 1, At: fsCrashAt}}}
	st1, rep1 := critPathChaosRun(t, b, plan)
	st2, rep2 := critPathChaosRun(t, b, plan)
	if st1 != st2 {
		t.Fatalf("chaos rerun stats differ: %+v vs %+v", st2, st1)
	}
	if !bytes.Equal(rep1, rep2) {
		t.Fatalf("chaos rerun report differs:\n%s\n---\n%s", rep2, rep1)
	}
}

// TestCritPathSLOZeroOverhead: wiring the attribution engine and SLO
// set as the tracer sink must not change the simulation at all — the
// engine-level run statistics and the legacy trace stream stay
// bit-identical to a run with no tracer installed. The SLO layer
// schedules no events; it only observes completions.
func TestCritPathSLOZeroOverhead(t *testing.T) {
	for _, name := range []string{"tar", "find"} {
		b, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		_, base, err := RunM3Stats(b, M3Options{})
		if err != nil {
			t.Fatal(err)
		}
		slos := benchSLOSet()
		cp := obs.NewCritPath(obs.CritPathOptions{SLO: slos})
		tr := obs.New(obs.Options{Sink: cp.Consume})
		_, with, err := RunM3Stats(b, M3Options{Obs: tr})
		if err != nil {
			t.Fatal(err)
		}
		if with != base {
			t.Fatalf("%s: critpath+SLO sink changed the run: %+v vs baseline %+v", name, with, base)
		}
		if cp.Completed() == 0 {
			t.Fatalf("%s: attribution engine saw no requests", name)
		}
		slosB := benchSLOSet()
		cpB := obs.NewCritPath(obs.CritPathOptions{SLO: slosB})
		lh1 := legacyHash(t, b, nil)
		lh2 := legacyHash(t, b, obs.New(obs.Options{Sink: cpB.Consume}))
		if lh1 != lh2 {
			t.Fatalf("%s: critpath+SLO sink perturbed the legacy trace: %#x vs %#x", name, lh2, lh1)
		}
	}
}

// TestETailEngineEquivalence: the E-tail experiment must produce the
// identical result — every blame cell, SLO count, and the per-workload
// population witness — on the serial reference, the calendar queue,
// and the parallel engine.
func TestETailEngineEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("engine sweep in -short mode")
	}
	variants := []EngineVariant{
		{"serial-heap", sim.Config{Queue: sim.QueueHeap}},
		{"serial-calendar", sim.Config{}},
		{"parallel-4", sim.Config{Workers: 4}},
	}
	ref, err := ETailEngine(variants[0].Cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, wr := range ref.Workloads {
		if wr.M3.Requests == 0 || wr.Lx.Requests == 0 {
			t.Fatalf("%s: empty request population: %+v", wr.Workload, wr)
		}
	}
	for _, v := range variants[1:] {
		got, err := ETailEngine(v.Cfg)
		if err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("%s: E-tail result differs from %s:\n%+v\n---\n%+v",
				v.Name, variants[0].Name, got, ref)
		}
	}
}
