package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// captureJSON renders a capture to a string.
func captureJSON(t *testing.T, c *obs.RunCapture) string {
	t.Helper()
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestCaptureEngineEquivalence is the differential contract for
// captures: the serial reference heap, the calendar queue, and the
// parallel engine must produce byte-identical capture JSON — so an
// m3diff report can never be engine noise.
func TestCaptureEngineEquivalence(t *testing.T) {
	variants := []EngineVariant{
		{Name: "serial-heap", Cfg: sim.Config{Queue: sim.QueueHeap}},
		{Name: "serial-calendar", Cfg: sim.Config{}},
		{Name: "parallel-4", Cfg: sim.Config{Workers: 4}},
	}
	var ref string
	for _, v := range variants {
		c, err := RunWorkloadCapture(witnessWorkload, CaptureRunOptions{Engine: v.Cfg})
		if err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		js := captureJSON(t, c)
		if ref == "" {
			ref = js
			continue
		}
		if js != ref {
			t.Fatalf("capture under %s differs from %s", v.Name, variants[0].Name)
		}
	}
	if ref == "" || !strings.Contains(ref, "\"workload\": \""+witnessWorkload+"\"") {
		t.Fatalf("capture JSON malformed:\n%.400s", ref)
	}
}

// TestCapturePerturbationAttribution seeds a +10% kernel dispatch-cost
// regression and requires the capture diff to attribute it to the
// kernel: top blame-drift category "kernel" and a growing kernel
// profile layer. This is the in-process twin of `make diff-smoke`.
func TestCapturePerturbationAttribution(t *testing.T) {
	base, err := RunWorkloadCapture(witnessWorkload, CaptureRunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	delta := sim.Time(core.CostDispatch) / 10
	perturbed, err := RunWorkloadCapture(witnessWorkload, CaptureRunOptions{DispatchCostDelta: delta})
	if err != nil {
		t.Fatal(err)
	}
	d, err := obs.DiffCaptures(base, perturbed)
	if err != nil {
		t.Fatal(err)
	}
	if d.Empty() {
		t.Fatalf("+%d cycles/syscall produced an empty diff", delta)
	}
	blame, ok := d.TopBlame()
	if !ok || blame.Category != "kernel" {
		t.Fatalf("top blame = %+v (ok=%v), want kernel", blame, ok)
	}
	kernelGrew := false
	for _, l := range d.Layers {
		if l.Layer == "kernel" && l.Delta() > 0 {
			kernelGrew = true
		}
	}
	if !kernelGrew {
		t.Fatalf("kernel profile layer did not grow: %+v", d.Layers)
	}

	// The report renders byte-identically across repeated diffs.
	render := func() string {
		d2, err := obs.DiffCaptures(base, perturbed)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := d2.WriteText(&buf, 0); err != nil {
			t.Fatal(err)
		}
		if err := d2.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if err := obs.WriteFoldedDiff(&buf, base, perturbed); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if render() != render() {
		t.Fatal("diff report not byte-deterministic")
	}
}

// TestCaptureSinksZeroOverhead: arming the capture sinks (profiler +
// critical path) must not change the simulation — they are pure
// consumers of the event stream. A run with the sinks fanned out and a
// run with a null sink execute the identical event schedule.
func TestCaptureSinksZeroOverhead(t *testing.T) {
	b, err := workload.ByName(witnessWorkload)
	if err != nil {
		t.Fatal(err)
	}
	run := func(sink func(obs.Event)) RunStats {
		tr := obs.New(obs.Options{Sink: sink})
		_, st, err := RunM3Stats(b, M3Options{Obs: tr, SampleEvery: witnessSampleEvery})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	null := run(func(obs.Event) {})
	prof := obs.NewProfiler()
	cp := obs.NewCritPath(obs.CritPathOptions{})
	armed := run(func(ev obs.Event) {
		prof.Consume(ev)
		cp.Consume(ev)
	})
	if null != armed {
		t.Fatalf("capture sinks perturbed the run: %+v vs %+v", armed, null)
	}

	// And a zero cost delta is exactly no perturbation.
	plain, err := RunM3(b, M3Options{})
	if err != nil {
		t.Fatal(err)
	}
	zeroDelta, err := RunM3(b, M3Options{DispatchCostDelta: 0})
	if err != nil {
		t.Fatal(err)
	}
	if plain != zeroDelta {
		t.Fatalf("zero DispatchCostDelta perturbed the run: %+v vs %+v", zeroDelta, plain)
	}
}

// TestBenchFileCapturesRoundTrip: captures ride in the bench JSON and
// survive a write/read cycle byte-identically; files without captures
// stay valid.
func TestBenchFileCapturesRoundTrip(t *testing.T) {
	c, err := RunWorkloadCapture(witnessWorkload, CaptureRunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f := sampleFile()
	f.Captures = []*obs.RunCapture{c}
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchJSON(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Captures) != 1 || got.Captures[0].Workload != witnessWorkload {
		t.Fatalf("captures lost in round trip: %+v", got.Captures)
	}
	if FindCapture(got, witnessWorkload) == nil {
		t.Fatal("FindCapture missed the round-tripped capture")
	}
	var buf2 bytes.Buffer
	if err := got.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("bench JSON with captures not byte-stable across a round trip")
	}
}

// TestAttributeReport drives the red-gate pipeline end to end on
// synthetic bench files: a regressed metric must come back attributed
// to its workload's capture diff, and files without captures must
// degrade to a named missing-capture note instead of failing.
func TestAttributeReport(t *testing.T) {
	base, err := RunWorkloadCapture(witnessWorkload, CaptureRunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	perturbed, err := RunWorkloadCapture(witnessWorkload,
		CaptureRunOptions{DispatchCostDelta: sim.Time(core.CostDispatch) / 10})
	if err != nil {
		t.Fatal(err)
	}

	old := sampleFile() // fig5 + witness experiments
	old.Captures = []*obs.RunCapture{base}
	reg := sampleFile()
	reg.Experiments[0].Metrics[0].Value = 1100 // fig5: +10% past the 5% gate
	reg.Captures = []*obs.RunCapture{perturbed}

	d := DiffBench(old, reg)
	if !d.Failed() {
		t.Fatal("seeded regression passed the gate")
	}
	rep, err := Attribute(d, old, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Attributions) != 1 || rep.Attributions[0].Workload != witnessWorkload {
		t.Fatalf("attributions = %+v", rep.Attributions)
	}
	a := rep.Attributions[0]
	if len(a.Metrics) != 1 || a.Metrics[0] != "fig5:fig5/tar+M3/total_cycles" {
		t.Fatalf("attributed metrics = %v", a.Metrics)
	}
	if top, ok := a.Diff.TopBlame(); !ok || top.Category != "kernel" {
		t.Fatalf("attribution blame = %+v ok=%v", top, ok)
	}

	var text bytes.Buffer
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig5:fig5/tar+M3/total_cycles", "workload " + witnessWorkload, "blame drift"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("attribution text missing %q:\n%s", want, text.String())
		}
	}
	var js1, js2 bytes.Buffer
	if err := rep.WriteJSON(&js1); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteJSON(&js2); err != nil {
		t.Fatal(err)
	}
	if js1.String() != js2.String() {
		t.Fatal("diff-report JSON not byte-stable")
	}

	// No captures on one side: regression still reported, workload named
	// as missing.
	bare := sampleFile()
	bare.Experiments[0].Metrics[0].Value = 1100
	d2 := DiffBench(old, bare)
	rep2, err := Attribute(d2, old, bare)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Attributions) != 0 {
		t.Fatalf("attributions without captures: %+v", rep2.Attributions)
	}
	if len(rep2.MissingCaptures) != 1 || rep2.MissingCaptures[0] != witnessWorkload {
		t.Fatalf("missing captures = %v", rep2.MissingCaptures)
	}
	var text2 bytes.Buffer
	if err := rep2.WriteText(&text2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text2.String(), "no capture of workload "+witnessWorkload) {
		t.Fatalf("missing-capture text:\n%s", text2.String())
	}
}
