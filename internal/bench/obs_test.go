package bench

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// End-to-end tests for the structured observability layer: stream
// determinism (the acceptance witness for the tentpole), zero overhead
// when off, causal span reconstruction, and the flight-recorder
// post-mortem.

// obsStreamHash runs one workload with the structured tracer installed
// and returns the run statistics plus an FNV hash over the canonical
// binary encoding of every emitted event.
func obsStreamHash(t *testing.T, b workload.Benchmark) (RunStats, uint64, int) {
	t.Helper()
	h := fnv.New64a()
	n := 0
	var buf [obs.EncodedSize]byte
	tr := obs.New(obs.Options{Sink: func(ev obs.Event) {
		h.Write(ev.AppendBinary(buf[:0]))
		n++
	}})
	_, st, err := RunM3Stats(b, M3Options{Obs: tr})
	if err != nil {
		t.Fatal(err)
	}
	return st, h.Sum64(), n
}

// TestObsStreamDeterministic: three runs of the same (configuration,
// seed) pair must produce byte-identical structured event streams —
// same count, same hash, same engine statistics.
func TestObsStreamDeterministic(t *testing.T) {
	b, err := workload.ByName("tar")
	if err != nil {
		t.Fatal(err)
	}
	st1, h1, n1 := obsStreamHash(t, b)
	if n1 == 0 {
		t.Fatal("run emitted no structured events")
	}
	for i := 0; i < 2; i++ {
		st2, h2, n2 := obsStreamHash(t, b)
		if st1 != st2 || n1 != n2 {
			t.Fatalf("run %d differs: %+v/%d events vs %+v/%d", i+2, st2, n2, st1, n1)
		}
		if h1 != h2 {
			t.Fatalf("run %d stream hash differs: %#x vs %#x", i+2, h2, h1)
		}
	}
}

// obsChaosStreamHash is obsStreamHash for a chaos-tier run: the
// recovery configuration (journaled, supervised m3fs) with a mid-run
// service crash.
func obsChaosStreamHash(t *testing.T, b workload.Benchmark, plan fault.Plan) (RunStats, uint64, int) {
	t.Helper()
	h := fnv.New64a()
	n := 0
	var buf [obs.EncodedSize]byte
	opt := recoverOpts()
	opt.Obs = obs.New(obs.Options{Sink: func(ev obs.Event) {
		h.Write(ev.AppendBinary(buf[:0]))
		n++
	}})
	cr, err := RunM3Chaos(b, 2, plan, opt)
	if err != nil {
		t.Fatal(err)
	}
	return cr.Stats, h.Sum64(), n
}

// TestObsChaosStreamDeterministic: the stream stays byte-identical
// under fault injection and service recovery — a crashed and restarted
// m3fs replays the same event schedule on every run.
func TestObsChaosStreamDeterministic(t *testing.T) {
	b, err := workload.ByName("untar")
	if err != nil {
		t.Fatal(err)
	}
	opts := recoverOpts()
	fsCrashAt := midRunCrashAtOpt(t, b, 2, fault.Plan{Seed: chaosSeed}, opts)
	plan := fault.Plan{Seed: chaosSeed, Crashes: []fault.Crash{{PE: 1, At: fsCrashAt}}}
	st1, h1, n1 := obsChaosStreamHash(t, b, plan)
	if n1 == 0 {
		t.Fatal("chaos run emitted no structured events")
	}
	for i := 0; i < 2; i++ {
		st2, h2, n2 := obsChaosStreamHash(t, b, plan)
		if st1 != st2 || n1 != n2 || h1 != h2 {
			t.Fatalf("chaos run %d differs: %+v/%d/%#x vs %+v/%d/%#x",
				i+2, st2, n2, h2, st1, n1, h1)
		}
	}
}

// TestObsZeroOverhead: installing the structured tracer — enabled or
// disabled — must not change the simulation: same executed-event count
// and final time as a run with no tracer at all. The tracer observes
// the schedule; it never becomes part of it.
func TestObsZeroOverhead(t *testing.T) {
	for _, name := range []string{"tar", "find"} {
		b, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		_, base, err := RunM3Stats(b, M3Options{})
		if err != nil {
			t.Fatal(err)
		}
		if base.ExecutedEvents == 0 {
			t.Fatalf("%s: baseline executed no events", name)
		}
		on := obs.New(obs.Options{Sink: func(obs.Event) {}, FlightRecorder: obs.DefaultFlightRecorder})
		_, withOn, err := RunM3Stats(b, M3Options{Obs: on})
		if err != nil {
			t.Fatal(err)
		}
		off := obs.New(obs.Options{Sink: func(obs.Event) {}})
		off.SetEnabled(false)
		_, withOff, err := RunM3Stats(b, M3Options{Obs: off})
		if err != nil {
			t.Fatal(err)
		}
		if withOn != base {
			t.Fatalf("%s: enabled tracer changed the run: %+v vs baseline %+v", name, withOn, base)
		}
		if withOff != base {
			t.Fatalf("%s: disabled tracer changed the run: %+v vs baseline %+v", name, withOff, base)
		}
		// The legacy string-trace stream must be bit-identical too: the
		// structured layer observes the same schedule, it does not
		// perturb it.
		lh1, lh2 := legacyHash(t, b, nil), legacyHash(t, b,
			obs.New(obs.Options{Sink: func(obs.Event) {}, FlightRecorder: obs.DefaultFlightRecorder}))
		if lh1 != lh2 {
			t.Fatalf("%s: structured tracer perturbed the legacy trace: %#x vs %#x", name, lh2, lh1)
		}
	}
}

// legacyHash hashes the legacy string-trace stream of one run, with or
// without the structured tracer installed alongside.
func legacyHash(t *testing.T, b workload.Benchmark, tr *obs.Tracer) uint64 {
	t.Helper()
	h := fnv.New64a()
	opt := M3Options{Obs: tr, Tracer: func(at sim.Time, source, event string) {
		fmt.Fprintf(h, "%d %s %s\n", at, source, event)
	}}
	if _, _, err := RunM3Stats(b, opt); err != nil {
		t.Fatal(err)
	}
	return h.Sum64()
}

// TestSyscallNestedSpanChain: at least one syscall must reconstruct as
// the full nested chain the tentpole promises — the application-side
// interval containing the DTU message flight to the kernel, the
// kernel-side handling interval, and the reply flight back, all on one
// span.
func TestSyscallNestedSpanChain(t *testing.T) {
	b, err := workload.ByName("cat+tr")
	if err != nil {
		t.Fatal(err)
	}
	var events []obs.Event
	tr := obs.New(obs.Options{Sink: func(ev obs.Event) { events = append(events, ev) }})
	if _, _, err := RunM3Stats(b, M3Options{Obs: tr}); err != nil {
		t.Fatal(err)
	}
	intervals, _ := obs.Intervals(events)
	bySpan := make(map[obs.SpanID][]obs.Interval)
	for _, iv := range intervals {
		bySpan[iv.Span] = append(bySpan[iv.Span], iv)
	}
	// Walk spans in sorted order: iterating the map directly made this
	// test a coin flip, because the one-slot span register can alias two
	// back-to-back syscalls onto one span ID, and whether such an
	// aliased (incoherent) chain or a clean one came up first depended
	// on map iteration order. Aliased chains are a known reconstruction
	// artifact, not an ordering violation; the acceptance bar is that at
	// least one span reconstructs as the full coherent nested chain.
	spans := make([]obs.SpanID, 0, len(bySpan))
	for span := range bySpan {
		spans = append(spans, span)
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i] < spans[j] })
	for _, span := range spans {
		ivs := bySpan[span]
		var app, kern, msg, reply *obs.Interval
		for i := range ivs {
			iv := &ivs[i]
			switch iv.Kind {
			case obs.EvSyscallStart:
				app = iv
			case obs.EvKSyscallStart:
				kern = iv
			case obs.EvMsgSend:
				msg = iv
			case obs.EvReplySend:
				reply = iv
			}
		}
		if app == nil || kern == nil || msg == nil || reply == nil {
			continue
		}
		if !(msg.Start <= kern.Start && kern.End <= reply.End) {
			continue // aliased chain: intervals from two syscalls share the span
		}
		// The chain crosses PEs and nests inside the app interval.
		if app.PE == kern.PE {
			t.Fatalf("span %d: app and kernel interval on the same PE %d", app.Span, app.PE)
		}
		for _, inner := range []*obs.Interval{msg, kern, reply} {
			if inner.Start < app.Start || inner.End > app.End {
				t.Fatalf("span %d: %s interval [%d,%d] escapes syscall [%d,%d]",
					app.Span, inner.Kind, inner.Start, inner.End, app.Start, app.End)
			}
		}
		return // one coherent fully reconstructed chain is the acceptance bar
	}
	t.Fatalf("no syscall reconstructed as a full nested span chain (%d intervals)", len(intervals))
}

// TestFlightDumpOnFailure: the chaos harness must attach the flight
// recorder's post-mortem exactly when a run fails — here an m3fs crash
// without supervision, which strands the instances mid-workload.
func TestFlightDumpOnFailure(t *testing.T) {
	b, err := workload.ByName("untar")
	if err != nil {
		t.Fatal(err)
	}
	fsCrashAt := midRunCrashAt(t, b, 2, fault.Plan{Seed: chaosSeed})
	plan := fault.Plan{Seed: chaosSeed, Crashes: []fault.Crash{{PE: 1, At: fsCrashAt}}}
	opt := M3Options{Obs: obs.New(obs.Options{FlightRecorder: obs.DefaultFlightRecorder})}
	cr, err := RunM3Chaos(b, 2, plan, opt)
	if err != nil {
		t.Fatal(err)
	}
	failed := false
	for _, o := range cr.Outcomes {
		if !o.Finished {
			failed = true
		}
	}
	if !failed {
		t.Fatal("m3fs crash did not fail any instance; the dump test needs a failing run")
	}
	if cr.FlightDump == "" {
		t.Fatal("failing run produced no flight dump")
	}
	if !strings.Contains(cr.FlightDump, "flight recorder: last 64 events per PE") ||
		!strings.Contains(cr.FlightDump, "pe 0 ") {
		t.Fatalf("unexpected dump:\n%s", cr.FlightDump)
	}
}

// TestFlightDumpOnlyOnFailure: a clean run keeps the post-mortem empty
// even with the recorder armed, and a failing run without a recorder
// produces none.
func TestFlightDumpOnlyOnFailure(t *testing.T) {
	b, err := workload.ByName("untar")
	if err != nil {
		t.Fatal(err)
	}
	opt := M3Options{Obs: obs.New(obs.Options{FlightRecorder: obs.DefaultFlightRecorder})}
	cr, err := RunM3Chaos(b, 2, fault.Plan{Seed: chaosSeed}, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range cr.Outcomes {
		if !o.Finished {
			t.Fatalf("clean run failed: %+v", o)
		}
	}
	if cr.FlightDump != "" {
		t.Fatalf("clean run attached a flight dump:\n%s", cr.FlightDump)
	}

	fsCrashAt := midRunCrashAt(t, b, 2, fault.Plan{Seed: chaosSeed})
	plan := fault.Plan{Seed: chaosSeed, Crashes: []fault.Crash{{PE: 1, At: fsCrashAt}}}
	cr, err = RunM3Chaos(b, 2, plan, M3Options{Obs: obs.New(obs.Options{})})
	if err != nil {
		t.Fatal(err)
	}
	if cr.FlightDump != "" {
		t.Fatalf("unarmed recorder attached a dump:\n%s", cr.FlightDump)
	}
}

// TestFlightDumpOnDeadlock: the dump must also fire on the other
// failure mode — a simulation deadlock with no crash at all. A client
// that parks forever leaves the engine deadlocked; the armed recorder
// must attach its post-mortem, and the dump must be byte-stable so a
// wedged run is as reproducible as a completed one.
func TestFlightDumpOnDeadlock(t *testing.T) {
	wedge := workload.Benchmark{
		Name:  "wedge",
		PEs:   1,
		Setup: func(workload.OS) error { return nil },
		Run: func(o workload.OS) error {
			// Park the app process on a signal nobody broadcasts: the
			// run can never finish and the engine drains into deadlock.
			p := o.(*workload.M3OS).Env.Ctx.P
			sim.NewSignal(p.Engine()).Wait(p)
			return nil
		},
	}
	run := func() string {
		opt := M3Options{Obs: obs.New(obs.Options{FlightRecorder: obs.DefaultFlightRecorder})}
		cr, err := RunM3Chaos(wedge, 1, fault.Plan{Seed: chaosSeed}, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !cr.Eng.Deadlocked() {
			t.Fatal("wedge workload did not deadlock the engine")
		}
		if cr.FlightDump == "" {
			t.Fatal("deadlocked run produced no flight dump")
		}
		return cr.FlightDump
	}
	d1 := run()
	if !strings.Contains(d1, "flight recorder: last 64 events per PE") {
		t.Fatalf("unexpected dump:\n%s", d1)
	}
	if d2 := run(); d2 != d1 {
		t.Fatalf("deadlock dump not byte-stable:\n%s\nvs\n%s", d2, d1)
	}
}
