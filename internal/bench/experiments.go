package bench

import (
	"fmt"
	"io"

	"repro/internal/accel"
	"repro/internal/linuxos"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Fig3Result reproduces Figure 3: null system calls (left) and 2 MiB
// read/write/pipe (right), each on M3, Lx-$ (warm), and Lx (cold).
type Fig3Result struct {
	SyscallM3     sim.Time
	SyscallM3Xfer sim.Time
	SyscallLx     sim.Time

	FileOps map[string]map[string]Breakdown // op -> system -> breakdown
}

// Fig3 runs experiment E1+E2.
func Fig3() (*Fig3Result, error) {
	r := &Fig3Result{FileOps: map[string]map[string]Breakdown{}}
	r.SyscallM3, r.SyscallM3Xfer = NullSyscallM3()
	r.SyscallLx = NullSyscallLx(linuxos.ProfileXtensa)
	for _, b := range []workload.Benchmark{ReadBench(), WriteBench(), PipeBench()} {
		row := map[string]Breakdown{}
		var err error
		if row["M3"], err = RunM3(b, M3Options{}); err != nil {
			return nil, fmt.Errorf("fig3 %s on M3: %w", b.Name, err)
		}
		if row["Lx-$"], err = RunLx(b, linuxos.ProfileXtensa, false); err != nil {
			return nil, fmt.Errorf("fig3 %s on Lx-$: %w", b.Name, err)
		}
		if row["Lx"], err = RunLx(b, linuxos.ProfileXtensa, true); err != nil {
			return nil, fmt.Errorf("fig3 %s on Lx: %w", b.Name, err)
		}
		r.FileOps[b.Name] = row
	}
	return r, nil
}

// Print writes the figure's rows.
func (r *Fig3Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 3 (left): null system call\n")
	tw := newTable(w, "system", "total (cycles)", "xfers", "other")
	tw.row("M3", cyc(r.SyscallM3), cyc(r.SyscallM3Xfer), cyc(r.SyscallM3-r.SyscallM3Xfer))
	tw.row("Lx", cyc(r.SyscallLx), "0", cyc(r.SyscallLx))
	tw.flush()
	fmt.Fprintf(w, "\nFigure 3 (right): 2 MiB file operations, 4 KiB buffers (M cycles)\n")
	tw = newTable(w, "op", "system", "total", "xfers", "other(OS)")
	for _, op := range []string{"read", "write", "pipe"} {
		for _, sys := range []string{"M3", "Lx-$", "Lx"} {
			b := r.FileOps[op][sys]
			tw.row(op, sys, mcyc(b.Total), mcyc(b.Xfer), mcyc(b.OS+b.App))
		}
	}
	tw.flush()
}

// Sec52Result reproduces the §5.2 Xtensa/ARM cross-check.
type Sec52Result struct {
	Rows []Sec52Row
}

// Sec52Row is one metric on both Linux profiles.
type Sec52Row struct {
	Metric      string
	Xtensa, ARM sim.Time
}

// Sec52 runs experiment E3: Linux syscall, 2 MiB file creation
// overhead, and 2 MiB copy overhead on both CPU profiles.
func Sec52() (*Sec52Result, error) {
	res := &Sec52Result{}
	res.Rows = append(res.Rows, Sec52Row{
		Metric: "null syscall (cycles)",
		Xtensa: NullSyscallLx(linuxos.ProfileXtensa),
		ARM:    NullSyscallLx(linuxos.ProfileARM),
	})
	// "Overhead" is everything beyond the raw memcpy of the data:
	// syscalls, fd lookups, page-cache work, and the zero-filling of
	// fresh blocks (warm caches, as the paper's numbers imply).
	memcpyTime := func(p linuxos.Profile, bytes int) sim.Time {
		return sim.Time(float64(bytes) / p.MemcpyBytesPerCycle)
	}
	create := func(p linuxos.Profile) (sim.Time, error) {
		bd, err := RunLx(WriteBench(), p, false)
		return bd.Total - memcpyTime(p, microFileSize), err
	}
	copyOp := func(p linuxos.Profile) (sim.Time, error) {
		bd, err := RunLx(copyBench(), p, false)
		return bd.Total - memcpyTime(p, 2*microFileSize), err
	}
	xt, err := create(linuxos.ProfileXtensa)
	if err != nil {
		return nil, err
	}
	arm, err := create(linuxos.ProfileARM)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Sec52Row{Metric: "create 2 MiB file overhead", Xtensa: xt, ARM: arm})
	xt, err = copyOp(linuxos.ProfileXtensa)
	if err != nil {
		return nil, err
	}
	arm, err = copyOp(linuxos.ProfileARM)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Sec52Row{Metric: "copy 2 MiB file overhead", Xtensa: xt, ARM: arm})
	return res, nil
}

// copyBench reads a 2 MiB file and writes it to a new one.
func copyBench() workload.Benchmark {
	rb := ReadBench()
	return workload.Benchmark{
		Name:  "copy",
		PEs:   1,
		Setup: rb.Setup,
		Run: func(os workload.OS) error {
			src, err := os.Open("/bench.dat", workload.Read)
			if err != nil {
				return err
			}
			dst, err := os.Open("/bench.copy", workload.Write|workload.Create|workload.Trunc)
			if err != nil {
				return err
			}
			// Plain read+write loop (cp does not use sendfile).
			buf := make([]byte, microBufSize)
			for {
				n, rerr := src.Read(buf)
				if n > 0 {
					if _, werr := dst.Write(buf[:n]); werr != nil {
						return werr
					}
				}
				if rerr != nil {
					break
				}
			}
			if err := src.Close(); err != nil {
				return err
			}
			return dst.Close()
		},
	}
}

// Print writes the section's table.
func (r *Sec52Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Section 5.2: Linux on Xtensa vs. Linux on ARM\n")
	tw := newTable(w, "metric", "Xtensa", "ARM")
	for _, row := range r.Rows {
		tw.row(row.Metric, cyc(row.Xtensa), cyc(row.ARM))
	}
	tw.flush()
}

// Fig4Result reproduces Figure 4: read/write time of a 2 MiB file
// depending on blocks per extent.
type Fig4Result struct {
	BlocksPerExtent []int
	ReadCycles      []sim.Time
	WriteCycles     []sim.Time
}

// Fig4 runs experiment E4, sweeping 16..2048 blocks per extent.
func Fig4() (*Fig4Result, error) {
	r := &Fig4Result{}
	for bpe := 16; bpe <= 2048; bpe *= 2 {
		opts := M3Options{AppendBlocks: bpe, NoMerge: true}
		wbd, err := RunM3(WriteBench(), opts)
		if err != nil {
			return nil, fmt.Errorf("fig4 write bpe=%d: %w", bpe, err)
		}
		rbd, err := RunM3(ReadBench(), opts)
		if err != nil {
			return nil, fmt.Errorf("fig4 read bpe=%d: %w", bpe, err)
		}
		r.BlocksPerExtent = append(r.BlocksPerExtent, bpe)
		r.ReadCycles = append(r.ReadCycles, rbd.Total)
		r.WriteCycles = append(r.WriteCycles, wbd.Total)
	}
	return r, nil
}

// Print writes the figure's series.
func (r *Fig4Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 4: read/write 2 MiB vs. file fragmentation (K cycles)\n")
	tw := newTable(w, "blocks/extent", "read", "write")
	for i, bpe := range r.BlocksPerExtent {
		tw.row(fmt.Sprint(bpe), kcyc(r.ReadCycles[i]), kcyc(r.WriteCycles[i]))
	}
	tw.flush()
}

// Fig5Result reproduces Figure 5: the five application benchmarks on
// M3, Lx-$, and Lx with App/Xfers/OS breakdown.
type Fig5Result struct {
	Apps map[string]map[string]Breakdown // benchmark -> system -> breakdown
}

// Fig5 runs experiment E5.
func Fig5() (*Fig5Result, error) {
	r := &Fig5Result{Apps: map[string]map[string]Breakdown{}}
	for _, b := range workload.All() {
		row := map[string]Breakdown{}
		var err error
		if row["M3"], err = RunM3(b, M3Options{}); err != nil {
			return nil, fmt.Errorf("fig5 %s on M3: %w", b.Name, err)
		}
		if row["Lx-$"], err = RunLx(b, linuxos.ProfileXtensa, false); err != nil {
			return nil, fmt.Errorf("fig5 %s on Lx-$: %w", b.Name, err)
		}
		if row["Lx"], err = RunLx(b, linuxos.ProfileXtensa, true); err != nil {
			return nil, fmt.Errorf("fig5 %s on Lx: %w", b.Name, err)
		}
		r.Apps[b.Name] = row
	}
	return r, nil
}

// Print writes the figure's rows.
func (r *Fig5Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 5: application-level benchmarks (K cycles)\n")
	tw := newTable(w, "benchmark", "system", "total", "app", "xfers", "OS", "vs Lx")
	for _, name := range []string{"cat+tr", "tar", "untar", "find", "sqlite"} {
		lx := r.Apps[name]["Lx"].Total
		for _, sys := range []string{"M3", "Lx-$", "Lx"} {
			b := r.Apps[name][sys]
			rel := "1.00x"
			if lx > 0 {
				rel = fmt.Sprintf("%.2fx", float64(b.Total)/float64(lx))
			}
			tw.row(name, sys, kcyc(b.Total), kcyc(b.App), kcyc(b.Xfer), kcyc(b.OS), rel)
		}
	}
	tw.flush()
}

// Fig6Result reproduces Figure 6: scalability with 1..16 parallel
// benchmark instances on a single kernel and a single m3fs instance.
type Fig6Result struct {
	Instances []int
	// Normalized per-benchmark mean instance time, relative to the
	// 1-instance (2 for cat+tr) run.
	Normalized map[string][]float64
}

// Fig6 runs experiment E6.
func Fig6() (*Fig6Result, error) {
	counts := []int{1, 2, 4, 8, 16}
	r := &Fig6Result{Instances: counts, Normalized: map[string][]float64{}}
	for _, b := range workload.All() {
		var base sim.Time
		series := make([]float64, 0, len(counts))
		for _, n := range counts {
			if b.Name == "cat+tr" && n == 1 {
				// cat+tr needs two PEs per instance; the paper has no
				// 1-instance data point (§5.7). Use the 2-instance run
				// as the baseline.
				series = append(series, 0)
				continue
			}
			t, err := RunM3Instances(b, n)
			if err != nil {
				return nil, fmt.Errorf("fig6 %s n=%d: %w", b.Name, n, err)
			}
			if base == 0 {
				base = t
			}
			series = append(series, float64(t)/float64(base))
		}
		r.Normalized[b.Name] = series
	}
	return r, nil
}

// Print writes the figure's series (flatter is better).
func (r *Fig6Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 6: scalability, time per instance normalized to the first run (flatter is better)\n")
	hdr := []string{"benchmark"}
	for _, n := range r.Instances {
		hdr = append(hdr, fmt.Sprintf("%d", n))
	}
	tw := newTable(w, hdr...)
	for _, name := range []string{"cat+tr", "tar", "untar", "find", "sqlite"} {
		row := []string{name}
		for _, v := range r.Normalized[name] {
			if v == 0 {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%.2f", v))
			}
		}
		tw.row(row...)
	}
	tw.flush()
}

// Fig7Result reproduces Figure 7: the FFT filter chain on Linux, on M3
// with the software FFT, and on M3 with the accelerator core.
type Fig7Result struct {
	Linux   Breakdown
	M3Soft  Breakdown
	M3Accel Breakdown
}

// Fig7 runs experiment E7.
func Fig7() (*Fig7Result, error) {
	r := &Fig7Result{}
	var err error
	if r.Linux, err = RunLx(accel.FFTChain(false), linuxos.ProfileXtensa, true); err != nil {
		return nil, fmt.Errorf("fig7 linux: %w", err)
	}
	if r.M3Soft, err = RunM3(accel.FFTChain(false), M3Options{}); err != nil {
		return nil, fmt.Errorf("fig7 m3 soft: %w", err)
	}
	if r.M3Accel, err = RunM3(accel.FFTChain(true), M3Options{FFTPEs: 1, ExtraPEs: -1}); err != nil {
		return nil, fmt.Errorf("fig7 m3 accel: %w", err)
	}
	return r, nil
}

// Print writes the figure's rows.
func (r *Fig7Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 7: FFT filter chain, 32 KiB (K cycles; app = generation + FFT)\n")
	tw := newTable(w, "system", "total", "app(FFT)", "xfers", "OS")
	for _, e := range []struct {
		name string
		b    Breakdown
	}{{"Linux", r.Linux}, {"M3", r.M3Soft}, {"M3+accelerator", r.M3Accel}} {
		tw.row(e.name, kcyc(e.b.Total), kcyc(e.b.App), kcyc(e.b.Xfer), kcyc(e.b.OS))
	}
	tw.flush()
}
