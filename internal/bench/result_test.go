package bench

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Tests for the machine-readable bench output: JSON byte-determinism
// (the acceptance witness), the regression gate's pass/fail behaviour,
// and the sampler's zero-overhead contract.

// witnessJSON runs the determinism witness and serializes it, zeroing
// the one by-design wall-clock metric (events/sec throughput) so the
// rest of the file can be compared byte-for-byte.
func witnessJSON(t *testing.T) []byte {
	t.Helper()
	exp, err := RunWitness()
	if err != nil {
		t.Fatal(err)
	}
	sawWall := false
	for i := range exp.Metrics {
		if exp.Metrics[i].Name == "witness/events_per_sec_wall" {
			if exp.Metrics[i].Value <= 0 {
				t.Fatalf("events_per_sec_wall = %v, want > 0", exp.Metrics[i].Value)
			}
			if exp.Metrics[i].Unit != "info" {
				t.Fatalf("events_per_sec_wall unit = %q; must be \"info\" so -diff never gates on host speed", exp.Metrics[i].Unit)
			}
			exp.Metrics[i].Value = 0
			sawWall = true
		}
	}
	if !sawWall {
		t.Fatal("witness is missing the events_per_sec_wall throughput metric")
	}
	f := &BenchFile{Schema: BenchSchema, Experiments: []BenchExperiment{exp}}
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBenchJSONDeterministic: three witness runs must serialize to
// byte-identical JSON — no map ordering, no nondeterministic hashes,
// and no wall-clock fields beyond the one flagged throughput metric
// (normalized away by witnessJSON).
func TestBenchJSONDeterministic(t *testing.T) {
	first := witnessJSON(t)
	if len(first) == 0 || !bytes.Contains(first, []byte(`"schema": 1`)) {
		t.Fatalf("unexpected witness JSON:\n%s", first)
	}
	for i := 0; i < 2; i++ {
		if next := witnessJSON(t); !bytes.Equal(first, next) {
			t.Fatalf("witness run %d serialized differently:\n%s\nvs\n%s", i+2, next, first)
		}
	}
}

// TestMetricsSnapshotDeterministic: the registry snapshot — the unit
// the witness hashes — is byte-identical across runs of one workload.
func TestMetricsSnapshotDeterministic(t *testing.T) {
	b, err := workload.ByName("tar")
	if err != nil {
		t.Fatal(err)
	}
	snap := func() string {
		tr := obs.New(obs.Options{})
		if _, _, err := RunM3Stats(b, M3Options{Obs: tr, SampleEvery: 4096}); err != nil {
			t.Fatal(err)
		}
		return tr.Metrics().Snapshot()
	}
	s1 := snap()
	if !strings.Contains(s1, "counter kernel_syscalls_total ") ||
		!strings.Contains(s1, "series dtu_rx_queued[0] ") {
		t.Fatalf("snapshot missing expected metrics:\n%s", s1)
	}
	for i := 0; i < 2; i++ {
		if s2 := snap(); s2 != s1 {
			t.Fatalf("snapshot %d differs:\n%s\nvs\n%s", i+2, s2, s1)
		}
	}
}

// TestSamplerOffBitIdentical: with the sampler off (the default), a
// run with the full metrics instrumentation registered must execute
// the exact event schedule of a run with no tracer at all — same
// RunStats, same legacy trace stream.
func TestSamplerOffBitIdentical(t *testing.T) {
	b, err := workload.ByName("tar")
	if err != nil {
		t.Fatal(err)
	}
	run := func(tr *obs.Tracer) (RunStats, uint64) {
		h := fnv.New64a()
		opt := M3Options{Obs: tr, Tracer: func(at sim.Time, source, event string) {
			fmt.Fprintf(h, "%d %s %s\n", at, source, event)
		}}
		_, st, err := RunM3Stats(b, opt)
		if err != nil {
			t.Fatal(err)
		}
		return st, h.Sum64()
	}
	baseSt, baseHash := run(nil)
	obsSt, obsHash := run(obs.New(obs.Options{}))
	if obsSt != baseSt {
		t.Fatalf("metrics instrumentation changed the run: %+v vs baseline %+v", obsSt, baseSt)
	}
	if obsHash != baseHash {
		t.Fatalf("metrics instrumentation perturbed the legacy trace: %#x vs %#x", obsHash, baseHash)
	}
}

// TestSamplerOnLeavesTraceIntact: the sampler adds its own tick events
// (RunStats may differ) but must never reorder or change the
// simulation's own schedule — the legacy trace stream stays identical.
func TestSamplerOnLeavesTraceIntact(t *testing.T) {
	b, err := workload.ByName("tar")
	if err != nil {
		t.Fatal(err)
	}
	trace := func(every sim.Time) uint64 {
		h := fnv.New64a()
		opt := M3Options{
			Obs:         obs.New(obs.Options{}),
			SampleEvery: every,
			Tracer: func(at sim.Time, source, event string) {
				fmt.Fprintf(h, "%d %s %s\n", at, source, event)
			},
		}
		if _, _, err := RunM3Stats(b, opt); err != nil {
			t.Fatal(err)
		}
		return h.Sum64()
	}
	if off, on := trace(0), trace(4096); off != on {
		t.Fatalf("sampler perturbed the legacy trace: %#x vs %#x", on, off)
	}
}

func sampleFile() *BenchFile {
	return &BenchFile{Schema: BenchSchema, Experiments: []BenchExperiment{{
		Name: "fig5",
		Metrics: []BenchMetric{
			{Name: "fig5/tar+M3/total_cycles", Value: 1000, Unit: "cycles"},
			{Name: "fig5/tar+M3/os_cycles", Value: 200, Unit: "cycles"},
		},
	}, {
		Name: "witness",
		Metrics: []BenchMetric{
			{Name: "witness/obs_stream_hash", Unit: "info", Info: "aaaa"},
		},
	}}}
}

// TestDiffSelfTest is the -diff acceptance check: an unmodified
// baseline passes, an injected >=10% cycle regression fails.
func TestDiffSelfTest(t *testing.T) {
	old := sampleFile()
	if d := DiffBench(old, sampleFile()); d.Failed() {
		t.Fatalf("identical files diffed as regression: %v", d.Regressions)
	}
	reg := sampleFile()
	reg.Experiments[0].Metrics[0].Value = 1100 // +10% > 5% tolerance
	d := DiffBench(old, reg)
	if !d.Failed() {
		t.Fatal("10% cycle regression passed the 5% gate")
	}
	if len(d.Regressions) != 1 || !strings.Contains(d.Regressions[0].String(), "total_cycles") {
		t.Fatalf("unexpected regressions: %v", d.Regressions)
	}
	r := d.Regressions[0]
	if r.Exp != "fig5" || r.Old != 1000 || r.New != 1100 || r.Missing {
		t.Fatalf("regression fields: %+v", r)
	}
	// Headline names the metric and delta — the actionable error text.
	if h := d.Headline(0); !strings.Contains(h, "total_cycles") || !strings.Contains(h, "+10.0%") {
		t.Fatalf("headline = %q", h)
	}
}

// TestDiffTolerancesAndDirections: per-metric tolerance overrides,
// improvements pass with a note, info metrics never gate, missing
// metrics fail, new metrics are notes.
func TestDiffTolerancesAndDirections(t *testing.T) {
	old := sampleFile()
	old.Experiments[0].Metrics[0].Tol = 0.20

	within := sampleFile()
	within.Experiments[0].Metrics[0].Value = 1150 // +15% < 20% override
	if d := DiffBench(old, within); d.Failed() {
		t.Fatalf("regression within per-metric tolerance failed: %v", d.Regressions)
	}

	improved := sampleFile()
	improved.Experiments[0].Metrics[0].Value = 500
	d := DiffBench(old, improved)
	if d.Failed() {
		t.Fatalf("improvement failed the gate: %v", d.Regressions)
	}
	if len(d.Notes) == 0 || !strings.Contains(d.Notes[0], "improvement") {
		t.Fatalf("improvement not noted: %v", d.Notes)
	}

	infoChanged := sampleFile()
	infoChanged.Experiments[1].Metrics[0].Info = "bbbb"
	if d := DiffBench(sampleFile(), infoChanged); d.Failed() {
		t.Fatalf("info metric change failed the gate: %v", d.Regressions)
	}

	missing := sampleFile()
	missing.Experiments[0].Metrics = missing.Experiments[0].Metrics[:1]
	if d := DiffBench(sampleFile(), missing); !d.Failed() {
		t.Fatal("vanished metric passed the gate")
	}

	extra := sampleFile()
	extra.Experiments[0].Metrics = append(extra.Experiments[0].Metrics,
		BenchMetric{Name: "fig5/tar+M3/new_cycles", Value: 1, Unit: "cycles"})
	d = DiffBench(sampleFile(), extra)
	if d.Failed() {
		t.Fatalf("new metric failed the gate: %v", d.Regressions)
	}
	if len(d.Notes) == 0 || !strings.Contains(d.Notes[len(d.Notes)-1], "new metric") {
		t.Fatalf("new metric not noted: %v", d.Notes)
	}
}

// TestReadBenchJSONSchemaGate: -diff refuses files of another schema.
func TestReadBenchJSONSchemaGate(t *testing.T) {
	var buf bytes.Buffer
	f := sampleFile()
	f.Schema = BenchSchema + 1
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBenchJSON(buf.Bytes()); err == nil {
		t.Fatal("wrong-schema file parsed without error")
	}
	buf.Reset()
	if err := sampleFile().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchJSON(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Experiments) != 2 || got.Experiments[0].Metrics[0].Value != 1000 {
		t.Fatalf("roundtrip mangled the file: %+v", got)
	}
}

// TestExperimentFromTables: the generic CSV-to-metrics flattening.
func TestExperimentFromTables(t *testing.T) {
	tbl := &CSVTable{Name: "demo", Rows: [][]string{
		{"op", "system", "total_cycles", "ratio"},
		{"read", "m3", "123", "0.5"},
		{"write", "m3", "456", ""},
	}}
	exp := ExperimentFromTables("demo", []*CSVTable{tbl})
	want := []BenchMetric{
		{Name: "demo/read+m3/total_cycles", Value: 123, Unit: "cycles"},
		{Name: "demo/read+m3/ratio", Value: 0.5, Unit: "ratio"},
		{Name: "demo/write+m3/total_cycles", Value: 456, Unit: "cycles"},
	}
	if len(exp.Metrics) != len(want) {
		t.Fatalf("metrics = %+v, want %+v", exp.Metrics, want)
	}
	for i, m := range exp.Metrics {
		if m != want[i] {
			t.Fatalf("metric %d = %+v, want %+v", i, m, want[i])
		}
	}
}

// TestUtilizationSeries: the utilization experiment derives busy
// fractions from registry-sampled idle series, sorted by PE id.
func TestUtilizationSeries(t *testing.T) {
	b, err := workload.ByName("tar")
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunUtilization(b)
	if err != nil {
		t.Fatal(err)
	}
	if r.SampleEvery == 0 || len(r.PEs) == 0 {
		t.Fatalf("no sampled utilization: %+v", r)
	}
	for i, u := range r.PEs {
		if i > 0 && r.PEs[i-1].PE >= u.PE {
			t.Fatalf("PEs not sorted by id: %+v", r.PEs)
		}
		if u.Busy < 0 || u.Busy > 1 {
			t.Fatalf("pe%d busy fraction out of range: %v", u.PE, u.Busy)
		}
		if len(u.IdleSeries) == 0 {
			t.Fatalf("pe%d: empty idle series", u.PE)
		}
	}
	if r.Mean <= 0 || r.Mean > 1 {
		t.Fatalf("mean utilization out of range: %v", r.Mean)
	}
	// The series are cumulative idle cycles: non-decreasing.
	for _, u := range r.PEs {
		for i := 1; i < len(u.IdleSeries); i++ {
			if u.IdleSeries[i] < u.IdleSeries[i-1] {
				t.Fatalf("pe%d idle series decreases at %d: %v", u.PE, i, u.IdleSeries)
			}
		}
	}
}
