package bench

import (
	"testing"

	"repro/internal/linuxos"
	"repro/internal/workload"
)

// The whole stack — engine, NoC, DTUs, kernel, services, workloads —
// must be deterministic: identical configurations produce identical
// cycle counts. This is what makes the reproduction's numbers
// meaningful.

func TestM3RunDeterministic(t *testing.T) {
	b, err := workload.ByName("tar")
	if err != nil {
		t.Fatal(err)
	}
	first, err := RunM3(b, M3Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		again, err := RunM3(b, M3Options{})
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Fatalf("run %d differs: %+v vs %+v", i+2, again, first)
		}
	}
}

func TestLxRunDeterministic(t *testing.T) {
	b, err := workload.ByName("untar")
	if err != nil {
		t.Fatal(err)
	}
	first, err := RunLx(b, linuxos.ProfileXtensa, true)
	if err != nil {
		t.Fatal(err)
	}
	again, err := RunLx(b, linuxos.ProfileXtensa, true)
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Fatalf("runs differ: %+v vs %+v", again, first)
	}
}

func TestInstancesDeterministic(t *testing.T) {
	b, err := workload.ByName("find")
	if err != nil {
		t.Fatal(err)
	}
	first, err := RunM3Instances(b, 4)
	if err != nil {
		t.Fatal(err)
	}
	again, err := RunM3Instances(b, 4)
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Fatalf("instance runs differ: %d vs %d", first, again)
	}
}

func TestSyscallDeterministic(t *testing.T) {
	t1, x1 := NullSyscallM3()
	t2, x2 := NullSyscallM3()
	if t1 != t2 || x1 != x2 {
		t.Fatalf("syscall runs differ: (%d,%d) vs (%d,%d)", t1, x1, t2, x2)
	}
}
