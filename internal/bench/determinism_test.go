package bench

import (
	"fmt"
	"hash/fnv"
	"testing"

	"repro/internal/linuxos"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The whole stack — engine, NoC, DTUs, kernel, services, workloads —
// must be deterministic: identical configurations produce identical
// cycle counts. This is what makes the reproduction's numbers
// meaningful.

func TestM3RunDeterministic(t *testing.T) {
	b, err := workload.ByName("tar")
	if err != nil {
		t.Fatal(err)
	}
	first, err := RunM3(b, M3Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		again, err := RunM3(b, M3Options{})
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Fatalf("run %d differs: %+v vs %+v", i+2, again, first)
		}
	}
}

// tracedRun executes one full workload with a tracer installed and
// returns the engine statistics plus an FNV hash of the complete event
// stream (time, source, payload of every trace line).
func tracedRun(t *testing.T, b workload.Benchmark) (RunStats, uint64) {
	t.Helper()
	h := fnv.New64a()
	opt := M3Options{Tracer: func(at sim.Time, source, event string) {
		fmt.Fprintf(h, "%d %s %s\n", at, source, event)
	}}
	_, st, err := RunM3Stats(b, opt)
	if err != nil {
		t.Fatal(err)
	}
	return st, h.Sum64()
}

// TestTraceDeterministic is the runtime witness for the invariants
// m3vet enforces statically: two runs of the same mid-size workload
// must execute the identical event schedule — same event count, same
// final time, and the same hash over every trace line. A single
// unsorted map walk on a kernel path (e.g. reverting the sorted
// iteration in core/caps.go revokeAll) perturbs the schedule and makes
// this fail.
func TestTraceDeterministic(t *testing.T) {
	b, err := workload.ByName("tar")
	if err != nil {
		t.Fatal(err)
	}
	st1, h1 := tracedRun(t, b)
	if st1.ExecutedEvents == 0 {
		t.Fatal("run executed no events")
	}
	for i := 0; i < 2; i++ {
		st2, h2 := tracedRun(t, b)
		if st1 != st2 {
			t.Fatalf("run %d stats differ: %+v vs %+v", i+2, st2, st1)
		}
		if h1 != h2 {
			t.Fatalf("run %d trace hash differs: %#x vs %#x (same stats %+v — an order-only divergence)", i+2, h2, h1, st1)
		}
	}
}

func TestLxRunDeterministic(t *testing.T) {
	b, err := workload.ByName("untar")
	if err != nil {
		t.Fatal(err)
	}
	first, err := RunLx(b, linuxos.ProfileXtensa, true)
	if err != nil {
		t.Fatal(err)
	}
	again, err := RunLx(b, linuxos.ProfileXtensa, true)
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Fatalf("runs differ: %+v vs %+v", again, first)
	}
}

func TestInstancesDeterministic(t *testing.T) {
	b, err := workload.ByName("find")
	if err != nil {
		t.Fatal(err)
	}
	first, err := RunM3Instances(b, 4)
	if err != nil {
		t.Fatal(err)
	}
	again, err := RunM3Instances(b, 4)
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Fatalf("instance runs differ: %d vs %d", first, again)
	}
}

func TestSyscallDeterministic(t *testing.T) {
	t1, x1 := NullSyscallM3()
	t2, x2 := NullSyscallM3()
	if t1 != t2 || x1 != x2 {
		t.Fatalf("syscall runs differ: (%d,%d) vs (%d,%d)", t1, x1, t2, x2)
	}
}
