package bench

import (
	"fmt"
	"io"

	"repro/internal/linuxos"
	"repro/internal/m3"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/tile"
	"repro/internal/workload"
)

// Experiment E-lat: latency percentiles instead of totals. The same
// open/read/write/stat/close loop runs on M3 and on the Linux model;
// every operation is timed individually into deterministic power-of-2
// histograms (package obs), so the comparison shows the latency
// *distribution* — tails included — not just the mean the breakdown
// figures report. On M3 the structured tracer additionally collects
// the hardware-level histograms (syscall RTT, DTU message latency,
// RDMA transfer time, NoC link occupancy, service-call RTT).

const (
	elatFileSize = 256 << 10
	elatBufSize  = 4 << 10
	elatIters    = 32
)

// opHists is the fixed per-operation histogram set of one system.
type opHists struct {
	hs [5]obs.Histogram
}

var opHistNames = [5]string{"open", "read", "write", "stat", "close"}

const (
	opOpen = iota
	opRead
	opWrite
	opStat
	opClose
)

func newOpHists() *opHists {
	o := &opHists{}
	for i := range o.hs {
		o.hs[i].Name = opHistNames[i]
	}
	return o
}

// all returns the histograms in fixed op order.
func (o *opHists) all() []*obs.Histogram {
	out := make([]*obs.Histogram, len(o.hs))
	for i := range o.hs {
		out[i] = &o.hs[i]
	}
	return out
}

// timedOS wraps a workload.OS and observes the latency of each file
// operation against the simulation clock.
type timedOS struct {
	workload.OS
	clock func() sim.Time
	hists *opHists
}

func (t *timedOS) observe(op int, t0 sim.Time) {
	t.hists.hs[op].Observe(uint64(t.clock() - t0))
}

func (t *timedOS) Open(path string, flags workload.OpenFlags) (workload.File, error) {
	t0 := t.clock()
	f, err := t.OS.Open(path, flags)
	t.observe(opOpen, t0)
	if err != nil {
		return nil, err
	}
	return &timedFile{f: f, os: t}, nil
}

func (t *timedOS) Stat(path string) (workload.Stat, error) {
	t0 := t.clock()
	st, err := t.OS.Stat(path)
	t.observe(opStat, t0)
	return st, err
}

// timedFile wraps the read/write/close paths of one open file.
type timedFile struct {
	f  workload.File
	os *timedOS
}

func (f *timedFile) Read(buf []byte) (int, error) {
	t0 := f.os.clock()
	n, err := f.f.Read(buf)
	f.os.observe(opRead, t0)
	return n, err
}

func (f *timedFile) Write(buf []byte) (int, error) {
	t0 := f.os.clock()
	n, err := f.f.Write(buf)
	f.os.observe(opWrite, t0)
	return n, err
}

func (f *timedFile) Close() error {
	t0 := f.os.clock()
	err := f.f.Close()
	f.os.observe(opClose, t0)
	return err
}

// elatLoop is the measured phase: elatIters rounds of open, stream the
// file in elatBufSize reads, stat, close, then one rewrite of the file.
// The setup (untimed) created /elat.dat beforehand.
func elatLoop(os workload.OS, h *opHists, clock func() sim.Time) error {
	t := &timedOS{OS: os, clock: clock, hists: h}
	buf := make([]byte, elatBufSize)
	for i := 0; i < elatIters; i++ {
		f, err := t.Open("/elat.dat", workload.Read)
		if err != nil {
			return err
		}
		for {
			n, rerr := f.Read(buf)
			if n == 0 || rerr != nil {
				break
			}
		}
		if _, err := t.Stat("/elat.dat"); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	out, err := t.Open("/elat.out", workload.Write|workload.Create|workload.Trunc)
	if err != nil {
		return err
	}
	for written := 0; written < elatFileSize; written += len(buf) {
		if _, err := out.Write(buf); err != nil {
			return err
		}
	}
	return out.Close()
}

func elatSetup(os workload.OS) error {
	return writeFilePattern(os, "/elat.dat", elatFileSize)
}

// ELatResult holds the E-lat percentile tables.
type ELatResult struct {
	M3, Lx *opHists
	// DTU is the M3 run's hardware-level histogram set, in obs.HistID
	// order.
	DTU []*obs.Histogram
}

// ELat runs experiment E-lat on both systems.
func ELat() (*ELatResult, error) {
	res := &ELatResult{M3: newOpHists(), Lx: newOpHists()}
	tracer := obs.New(obs.Options{})
	s := bootM3(M3Options{Obs: tracer}, 1)
	var runErr error
	if _, err := s.kern.StartInit("elat", tile.CoreXtensa, func(ctx *tile.Ctx) {
		env := m3.NewEnv(ctx, s.kern)
		wos, err := workload.NewM3OS(env)
		if err != nil {
			runErr = err
			env.Exit(1)
			return
		}
		if err := elatSetup(wos); err != nil {
			runErr = err
			env.Exit(1)
			return
		}
		if err := elatLoop(wos, res.M3, ctx.Now); err != nil {
			runErr = err
			env.Exit(1)
			return
		}
		env.Exit(0)
	}); err != nil {
		return nil, err
	}
	s.eng.Run()
	if runErr != nil {
		return nil, fmt.Errorf("elat on M3: %w", runErr)
	}
	res.DTU = tracer.Histograms()

	eng := sim.NewEngine()
	sys := linuxos.New(eng, linuxos.ProfileXtensa, false)
	sys.Spawn("elat", func(pr *linuxos.Proc) {
		wos := workload.NewLxOS(sys, pr)
		if err := elatSetup(wos); err != nil {
			runErr = err
			return
		}
		runErr = elatLoop(wos, res.Lx, pr.P().Now)
	})
	eng.Run()
	if runErr != nil {
		return nil, fmt.Errorf("elat on Linux: %w", runErr)
	}
	return res, nil
}

// Print writes the percentile tables.
func (r *ELatResult) Print(w io.Writer) {
	fmt.Fprintf(w, "E-lat: per-operation latency percentiles (cycles)\n")
	tw := newTable(w, "op", "system", "count", "mean", "p50", "p90", "p99", "max")
	for i, m3h := range r.M3.all() {
		for _, sh := range []struct {
			name string
			h    *obs.Histogram
		}{{"M3", m3h}, {"Lx", r.Lx.all()[i]}} {
			h := sh.h
			tw.row(h.Name, sh.name, fmt.Sprint(h.Count()), fmt.Sprint(h.Mean()),
				fmt.Sprint(h.Quantile(0.50)), fmt.Sprint(h.Quantile(0.90)),
				fmt.Sprint(h.Quantile(0.99)), fmt.Sprint(h.Max()))
		}
	}
	tw.flush()
	fmt.Fprintf(w, "\nE-lat: M3 hardware-level histograms (cycles)\n")
	tw = newTable(w, "hist", "count", "mean", "p50", "p90", "p99", "max")
	for _, h := range r.DTU {
		tw.row(h.Name, fmt.Sprint(h.Count()), fmt.Sprint(h.Mean()),
			fmt.Sprint(h.Quantile(0.50)), fmt.Sprint(h.Quantile(0.90)),
			fmt.Sprint(h.Quantile(0.99)), fmt.Sprint(h.Max()))
	}
	tw.flush()
}

// CSV renders the E-lat tables.
func (r *ELatResult) CSV() []*CSVTable {
	ops := &CSVTable{Name: "elat_ops", Rows: [][]string{
		{"op", "system", "count", "mean_cycles", "p50", "p90", "p99", "max"},
	}}
	for i, m3h := range r.M3.all() {
		for _, sh := range []struct {
			name string
			h    *obs.Histogram
		}{{"m3", m3h}, {"lx", r.Lx.all()[i]}} {
			h := sh.h
			ops.Rows = append(ops.Rows, []string{h.Name, sh.name,
				fmt.Sprint(h.Count()), fmt.Sprint(h.Mean()),
				fmt.Sprint(h.Quantile(0.50)), fmt.Sprint(h.Quantile(0.90)),
				fmt.Sprint(h.Quantile(0.99)), fmt.Sprint(h.Max())})
		}
	}
	dtu := &CSVTable{Name: "elat_dtu", Rows: [][]string{
		{"hist", "count", "mean_cycles", "p50", "p90", "p99", "max"},
	}}
	for _, h := range r.DTU {
		dtu.Rows = append(dtu.Rows, []string{h.Name,
			fmt.Sprint(h.Count()), fmt.Sprint(h.Mean()),
			fmt.Sprint(h.Quantile(0.50)), fmt.Sprint(h.Quantile(0.90)),
			fmt.Sprint(h.Quantile(0.99)), fmt.Sprint(h.Max())})
	}
	return []*CSVTable{ops, dtu}
}
