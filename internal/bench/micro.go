package bench

import (
	"errors"
	"io"

	"repro/internal/workload"
)

// Micro-benchmarks of §5.4: transfer 2 MiB with 4 KiB buffers ("4 KiB
// is the sweet spot on Linux"). The file is not fragmented on M3.
const (
	microFileSize = 2 << 20
	microBufSize  = 4 << 10
)

// ReadBench reads a 2 MiB file, discarding the data.
func ReadBench() workload.Benchmark {
	return workload.Benchmark{
		Name: "read",
		PEs:  1,
		Setup: func(os workload.OS) error {
			return writeFilePattern(os, "/bench.dat", microFileSize)
		},
		Run: func(os workload.OS) error {
			f, err := os.Open("/bench.dat", workload.Read)
			if err != nil {
				return err
			}
			buf := make([]byte, microBufSize)
			for {
				if _, err := f.Read(buf); err != nil {
					if errors.Is(err, io.EOF) {
						break
					}
					return err
				}
			}
			return f.Close()
		},
	}
}

// WriteBench writes precomputed data into a new file.
func WriteBench() workload.Benchmark {
	return workload.Benchmark{
		Name:  "write",
		PEs:   1,
		Setup: func(os workload.OS) error { return nil },
		Run: func(os workload.OS) error {
			return writeFilePattern(os, "/bench.out", microFileSize)
		},
	}
}

// PipeBench transfers 2 MiB between two processes/VPEs.
func PipeBench() workload.Benchmark {
	return workload.Benchmark{
		Name:  "pipe",
		PEs:   2,
		Setup: func(os workload.OS) error { return nil },
		Run: func(os workload.OS) error {
			r, wait, err := os.PipeFromChild("producer", func(cos workload.OS, w workload.File) {
				buf := make([]byte, microBufSize)
				for i := range buf {
					buf[i] = byte(i)
				}
				for sent := 0; sent < microFileSize; sent += len(buf) {
					if _, err := w.Write(buf); err != nil {
						return
					}
				}
				_ = w.Close()
			})
			if err != nil {
				return err
			}
			buf := make([]byte, microBufSize)
			for {
				if _, err := r.Read(buf); err != nil {
					if errors.Is(err, io.EOF) {
						break
					}
					return err
				}
			}
			_ = r.Close()
			wait()
			return nil
		},
	}
}

func writeFilePattern(os workload.OS, path string, size int) error {
	f, err := os.Open(path, workload.Write|workload.Create|workload.Trunc)
	if err != nil {
		return err
	}
	buf := make([]byte, microBufSize)
	for i := range buf {
		buf[i] = byte(i * 7)
	}
	for written := 0; written < size; written += len(buf) {
		if _, err := f.Write(buf); err != nil {
			return err
		}
	}
	return f.Close()
}
