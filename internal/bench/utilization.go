package bench

import (
	"fmt"

	"repro/internal/m3"
	"repro/internal/sim"
	"repro/internal/tile"
	"repro/internal/workload"
)

// The utilization trade-off (§3.4): "The disadvantage of this design is
// the decrease in system utilization, because a PE is idling (for a
// certain time) if the application on that PE is waiting for an
// incoming message or the completion of a memory transfer." M3 accepts
// this in exchange for heterogeneity support and kept cache/TLB state.
// This experiment quantifies it: per-PE busy fractions during a
// benchmark, where idle time is the DTU-wait time the hardware
// observes.

// PEUtilization is one PE's share of busy cycles over the run.
type PEUtilization struct {
	PE   int
	Role string
	Busy float64 // 1 - idle/elapsed
}

// UtilizationResult is the outcome of RunUtilization.
type UtilizationResult struct {
	Benchmark string
	Elapsed   sim.Time
	PEs       []PEUtilization
	// Mean is the average busy fraction across all PEs incl. kernel
	// and service — the "system utilization" the paper trades away.
	Mean float64
}

// RunUtilization executes b once on M3 and reports per-PE utilization
// over the run phase.
func RunUtilization(b workload.Benchmark) (*UtilizationResult, error) {
	s := bootM3(M3Options{}, b.PEs)
	res := &UtilizationResult{Benchmark: b.Name}
	var runErr error
	idleBase := make([]uint64, len(s.plat.PEs))
	var start sim.Time
	_, err := s.kern.StartInit("app", tile.CoreXtensa, func(ctx *tile.Ctx) {
		env := m3.NewEnv(ctx, s.kern)
		os, err := workload.NewM3OS(env)
		if err != nil {
			runErr = err
			return
		}
		if err := b.Setup(os); err != nil {
			runErr = err
			return
		}
		for i, pe := range s.plat.PEs {
			idleBase[i] = pe.DTU.IdleCyclesAt(ctx.Now())
		}
		start = ctx.Now()
		if err := b.Run(os); err != nil {
			runErr = err
			return
		}
		res.Elapsed = ctx.Now() - start
		for i, pe := range s.plat.PEs {
			idle := pe.DTU.IdleCyclesAt(ctx.Now()) - idleBase[i]
			busy := 1 - float64(idle)/float64(res.Elapsed)
			if busy < 0 {
				busy = 0
			}
			role := "app"
			switch i {
			case 0:
				role = "kernel"
			case 1:
				role = "m3fs"
			}
			res.PEs = append(res.PEs, PEUtilization{PE: pe.ID, Role: role, Busy: busy})
		}
		env.Exit(0)
	})
	if err != nil {
		return nil, err
	}
	s.eng.Run()
	if runErr != nil {
		return nil, runErr
	}
	var sum float64
	for _, u := range res.PEs {
		sum += u.Busy
	}
	res.Mean = sum / float64(len(res.PEs))
	return res, nil
}

func (r *UtilizationResult) String() string {
	s := fmt.Sprintf("%s: mean PE utilization %.1f%% over %d cycles (", r.Benchmark, r.Mean*100, r.Elapsed)
	for i, u := range r.PEs {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s=%.0f%%", u.Role, u.Busy*100)
	}
	return s + ")"
}
