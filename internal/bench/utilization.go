package bench

import (
	"fmt"
	"sort"

	"repro/internal/m3"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/tile"
	"repro/internal/workload"
)

// The utilization trade-off (§3.4): "The disadvantage of this design is
// the decrease in system utilization, because a PE is idling (for a
// certain time) if the application on that PE is waiting for an
// incoming message or the completion of a memory transfer." M3 accepts
// this in exchange for heterogeneity support and kept cache/TLB state.
// This experiment quantifies it: per-PE busy fractions during a
// benchmark, where idle time is the DTU-wait time the hardware
// observes. The idle counters are sampled on the simulated clock
// through the metrics registry, so the result carries the utilization
// trajectory of the run, not just its endpoint delta.

// MPEIdle is the per-PE cumulative DTU idle-cycle series the
// utilization experiment registers (index = PE id).
const MPEIdle = "bench_pe_idle_cycles"

// utilSampleEvery is the sampling interval of the utilization
// experiment, chosen well below the run length of every workload so a
// run spans many samples.
const utilSampleEvery sim.Time = 4096

// PEUtilization is one PE's share of busy cycles over the run.
type PEUtilization struct {
	PE   int
	Role string
	Busy float64 // 1 - idle/elapsed
	// IdleSeries is the sampled cumulative idle-cycle trajectory
	// (one value per sampler tick, oldest first).
	IdleSeries []int64
}

// UtilizationResult is the outcome of RunUtilization.
type UtilizationResult struct {
	Benchmark string
	Elapsed   sim.Time
	// SampleEvery is the registry sampling interval the idle series
	// were recorded at.
	SampleEvery sim.Time
	PEs         []PEUtilization
	// Mean is the average busy fraction across all PEs incl. kernel
	// and service — the "system utilization" the paper trades away.
	Mean float64
}

// RunUtilization executes b once on M3 and reports per-PE utilization
// over the run phase, derived from the registry-sampled idle series.
func RunUtilization(b workload.Benchmark) (*UtilizationResult, error) {
	tr := obs.New(obs.Options{})
	s := bootM3(M3Options{Obs: tr, SampleEvery: utilSampleEvery}, b.PEs)
	res := &UtilizationResult{Benchmark: b.Name, SampleEvery: utilSampleEvery}
	for _, pe := range s.plat.PEs {
		d := pe.DTU
		tr.Metrics().Series(MPEIdle, pe.ID, func() int64 {
			return int64(d.IdleCyclesAt(s.eng.Now()))
		})
	}
	var runErr error
	idleBase := make([]uint64, len(s.plat.PEs))
	var start, end sim.Time
	_, err := s.kern.StartInit("app", tile.CoreXtensa, func(ctx *tile.Ctx) {
		env := m3.NewEnv(ctx, s.kern)
		os, err := workload.NewM3OS(env)
		if err != nil {
			runErr = err
			return
		}
		if err := b.Setup(os); err != nil {
			runErr = err
			return
		}
		for i, pe := range s.plat.PEs {
			idleBase[i] = pe.DTU.IdleCyclesAt(ctx.Now())
		}
		start = ctx.Now()
		if err := b.Run(os); err != nil {
			runErr = err
			return
		}
		end = ctx.Now()
		res.Elapsed = end - start
		env.Exit(0)
	})
	if err != nil {
		return nil, err
	}
	s.eng.Run()
	if runErr != nil {
		return nil, runErr
	}
	for i, pe := range s.plat.PEs {
		series := tr.Metrics().Series(MPEIdle, pe.ID, nil).Samples()
		idle, window := idleOverRun(series, utilSampleEvery, start, end)
		if window == 0 {
			// Run shorter than the sampling window: fall back to the
			// exact endpoint delta.
			idle = int64(pe.DTU.IdleCyclesAt(end) - idleBase[i])
			window = res.Elapsed
		}
		busy := 1 - float64(idle)/float64(window)
		if busy < 0 {
			busy = 0
		}
		role := "app"
		switch i {
		case 0:
			role = "kernel"
		case 1:
			role = "m3fs"
		}
		res.PEs = append(res.PEs, PEUtilization{
			PE: pe.ID, Role: role, Busy: busy, IdleSeries: series,
		})
	}
	sort.SliceStable(res.PEs, func(i, j int) bool { return res.PEs[i].PE < res.PEs[j].PE })
	var sum float64
	for _, u := range res.PEs {
		sum += u.Busy
	}
	res.Mean = sum / float64(len(res.PEs))
	return res, nil
}

// idleOverRun extracts the idle-cycle delta a sampled cumulative series
// saw across the [start, end] run window. Sample k was taken at cycle
// (k+1)*every. It returns (0, 0) when fewer than two samples fall
// inside the window.
func idleOverRun(samples []int64, every, start, end sim.Time) (idle int64, window sim.Time) {
	first, last := -1, -1
	for k := range samples {
		at := sim.Time(k+1) * every
		if at < start || at > end {
			continue
		}
		if first < 0 {
			first = k
		}
		last = k
	}
	if first < 0 || last == first {
		return 0, 0
	}
	return samples[last] - samples[first], sim.Time(last-first) * every
}

func (r *UtilizationResult) String() string {
	s := fmt.Sprintf("%s: mean PE utilization %.1f%% over %d cycles (", r.Benchmark, r.Mean*100, r.Elapsed)
	for i, u := range r.PEs {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s=%.0f%%", u.Role, u.Busy*100)
	}
	return s + ")"
}
