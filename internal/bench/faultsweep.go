package bench

import (
	"fmt"
	"io"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/workload"
)

// efaultSeed pins the fault schedule of the sweep: the table is
// reproducible bit for bit (docs/FAULTS.md).
const efaultSeed uint64 = 0xFA17

// efaultRetries is the per-transfer retry budget for the sweep —
// deliberately above the DTU default so even the 5% point degrades
// gracefully instead of aborting.
const efaultRetries = 10

// EFaultRates are the per-link packet-loss probabilities swept by
// experiment E-fault.
var EFaultRates = []float64{0, 0.001, 0.005, 0.01, 0.02, 0.05}

// EFaultRow is one loss rate of the degradation sweep.
type EFaultRow struct {
	DropRate    float64
	RunTime     sim.Time // instance run phase (all instances finished)
	Slowdown    float64  // vs. the lossless row
	Retransmits uint64
	Aborts      uint64
	Dropped     uint64 // packets the NoC fault layer removed
}

// EFaultResult is the experiment E-fault table: how gracefully the
// untar workload degrades as the NoC loses packets, with the DTU's
// retransmission layer absorbing the loss.
type EFaultResult struct {
	Workload string
	Rows     []EFaultRow
}

// EFault runs the degradation sweep: untar under increasing per-link
// packet loss, same seed at every point, completion required.
func EFault() (*EFaultResult, error) {
	b := workload.Untar()
	res := &EFaultResult{Workload: b.Name}
	for _, rate := range EFaultRates {
		plan := fault.Plan{
			Seed:       efaultSeed,
			DropRate:   rate,
			MaxRetries: efaultRetries,
		}
		cr, err := RunM3Chaos(b, 1, plan, M3Options{})
		if err != nil {
			return nil, fmt.Errorf("efault rate %g: %w", rate, err)
		}
		out := cr.Outcomes[0]
		if !out.Finished {
			return nil, fmt.Errorf("efault rate %g: instance did not finish: %v", rate, out.Err)
		}
		row := EFaultRow{
			DropRate:    rate,
			RunTime:     out.RunTime,
			Retransmits: cr.Inj.Retransmits(),
			Aborts:      cr.Inj.Aborts(),
			Dropped:     cr.Plat.Net.PacketsDropped,
		}
		if base := res.Rows; len(base) > 0 && base[0].RunTime > 0 {
			row.Slowdown = float64(row.RunTime) / float64(base[0].RunTime)
		} else {
			row.Slowdown = 1
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Print writes the sweep table.
func (r *EFaultResult) Print(w io.Writer) {
	fmt.Fprintf(w, "E-fault: %s under per-link packet loss (seed %#x, %d retries)\n",
		r.Workload, efaultSeed, efaultRetries)
	tw := newTable(w, "drop rate", "run (cycles)", "slowdown", "dropped", "retransmits", "aborts")
	for _, row := range r.Rows {
		tw.row(fmt.Sprintf("%.3f%%", row.DropRate*100), cyc(row.RunTime),
			fmt.Sprintf("%.3fx", row.Slowdown),
			fmt.Sprintf("%d", row.Dropped),
			fmt.Sprintf("%d", row.Retransmits),
			fmt.Sprintf("%d", row.Aborts))
	}
	tw.flush()
}

// CSV renders the sweep.
func (r *EFaultResult) CSV() []*CSVTable {
	t := &CSVTable{Name: "efault_degradation", Rows: [][]string{
		{"drop_rate", "run_cycles", "slowdown", "packets_dropped", "retransmits", "aborts"},
	}}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", row.DropRate), cyc(row.RunTime),
			fmt.Sprintf("%.4f", row.Slowdown),
			fmt.Sprintf("%d", row.Dropped),
			fmt.Sprintf("%d", row.Retransmits),
			fmt.Sprintf("%d", row.Aborts),
		})
	}
	return []*CSVTable{t}
}
