package bench

import "testing"

func TestCreditAblation(t *testing.T) {
	honest, err := RunCreditAblation(8, 16, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 8 senders x 2 credits = 16 <= 16 slots: nothing may be dropped.
	if honest.Dropped != 0 {
		t.Fatalf("honest config dropped %d messages", honest.Dropped)
	}
	if honest.Delivered != 16 {
		// Each sender has 2 credits and no reply path: exactly 2 of
		// its 4 sends are accepted.
		t.Fatalf("honest delivered = %d, want 16", honest.Delivered)
	}
	over, err := RunCreditAblation(8, 4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 8 senders x 4 credits = 32 into 4 slots with a slow receiver:
	// messages must be dropped.
	if over.Dropped == 0 {
		t.Fatal("overcommitted config dropped nothing")
	}
	if over.Delivered+over.Dropped != 32 {
		t.Fatalf("delivered(%d)+dropped(%d) != 32", over.Delivered, over.Dropped)
	}
}

func TestEPMuxAblation(t *testing.T) {
	fits, err := RunEPMuxAblation(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	thrash, err := RunEPMuxAblation(12, 8)
	if err != nil {
		t.Fatal(err)
	}
	// 4 gates fit into the 5 free endpoints: one activation each.
	if fits.Activates != 0 {
		t.Fatalf("fits variant re-activated %d times during the loop", fits.Activates)
	}
	// 12 gates over 5 endpoints thrash: every access re-activates.
	if thrash.Activates == 0 {
		t.Fatal("thrash variant never re-activated")
	}
	perAccess := float64(thrash.Cycles-fits.Cycles*3) / float64(12*8)
	if thrash.Cycles <= fits.Cycles*2 {
		t.Fatalf("thrash (%d) should cost much more than fits (%d); per-access delta %f",
			thrash.Cycles, fits.Cycles, perAccess)
	}
}

func TestExtentBatchAblation(t *testing.T) {
	single, err := RunExtentBatchAblation(1)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := RunExtentBatchAblation(256)
	if err != nil {
		t.Fatal(err)
	}
	if single.Extents != 512 || batched.Extents != 2 {
		t.Fatalf("extents = %d / %d", single.Extents, batched.Extents)
	}
	if penalty := float64(single.WriteCycles) / float64(batched.WriteCycles); penalty < 2 {
		t.Fatalf("single-block appends penalty = %.2fx, want > 2x", penalty)
	}
}

func TestContentionAblation(t *testing.T) {
	r, err := RunContentionAblation(4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Contended <= r.Unlimited {
		t.Fatalf("contended (%d) must be slower than perfect scaling (%d)", r.Contended, r.Unlimited)
	}
}

func TestTopologyAblation(t *testing.T) {
	r, err := RunTopologyAblation(4)
	if err != nil {
		t.Fatal(err)
	}
	// The torus shortens average routes; under contention it must not
	// be slower than the mesh.
	if r.Torus > r.Mesh {
		t.Fatalf("torus (%d) slower than mesh (%d)", r.Torus, r.Mesh)
	}
}
