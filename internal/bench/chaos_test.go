package bench

import (
	"fmt"
	"hash/fnv"
	"testing"

	"repro/internal/core"
	"repro/internal/dtu"
	"repro/internal/fault"
	"repro/internal/m3fs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// recoverOpts is the harness configuration for the recovery tier: a
// journaled m3fs under kernel supervision with one spare PE to respawn
// onto.
func recoverOpts() M3Options {
	return M3Options{
		ExtraPEs: 1,
		FS:       m3fs.Config{Journal: true},
		FSPolicy: core.RestartPolicy{MaxRestarts: 1, Backoff: 5000},
	}
}

// chaosSeed keeps every chaos schedule in this file on one replayable
// stream family.
const chaosSeed uint64 = 0xC0FFEE

// midRunCrashAt derives a crash time that lands mid-way through the
// run phase of instance 0: it executes the same configuration without
// the crash and places the crash 40% into the observed run window.
// The added watchdog probe traffic shifts timing by far less than
// that margin, and because everything is deterministic the derived
// time hits the same simulation state on every run.
func midRunCrashAt(t *testing.T, b workload.Benchmark, n int, plan fault.Plan) sim.Time {
	return midRunCrashAtOpt(t, b, n, plan, M3Options{})
}

// midRunCrashAtOpt is midRunCrashAt for a non-default harness
// configuration (the recovery tests boot with a journaled, supervised
// m3fs, which shifts timing).
func midRunCrashAtOpt(t *testing.T, b workload.Benchmark, n int, plan fault.Plan, opt M3Options) sim.Time {
	t.Helper()
	plan.Crashes = nil
	cr, err := RunM3Chaos(b, n, plan, opt)
	if err != nil {
		t.Fatal(err)
	}
	out := cr.Outcomes[0]
	if !out.Finished {
		t.Fatalf("baseline instance 0 did not finish: %v", out.Err)
	}
	return out.StartAt + out.RunTime*2/5
}

// tracedChaosRun runs one chaos configuration with a tracer installed
// and returns the run plus an FNV hash over the complete event stream.
func tracedChaosRun(t *testing.T, b workload.Benchmark, n int, plan fault.Plan, opt M3Options) (*ChaosRun, uint64) {
	t.Helper()
	h := fnv.New64a()
	opt.Tracer = func(at sim.Time, source, event string) {
		fmt.Fprintf(h, "%d %s %s\n", at, source, event)
	}
	cr, err := RunM3Chaos(b, n, plan, opt)
	if err != nil {
		t.Fatal(err)
	}
	return cr, h.Sum64()
}

// outcomeSummary flattens the per-instance outcomes into a comparable
// string (errors by message; the VPE pointer is excluded).
func outcomeSummary(cr *ChaosRun) string {
	s := ""
	for _, o := range cr.Outcomes {
		s += fmt.Sprintf("%s fin=%v start=%d end=%d err=%v; ", o.Name, o.Finished, o.StartAt, o.EndAt, o.Err)
	}
	return s
}

// TestFaultDeterminism is the acceptance witness for the tentpole:
// with every fault class armed at once — packet loss, header
// corruption, transfer-engine stalls, a DRAM brownout, and a mid-run
// PE crash that kills a VPE between syscalls and mid-transfer — three
// runs of the identical (configuration, seed) pair must execute the
// identical event schedule: same event count, same final time, same
// hash over every trace line, same per-instance outcomes.
//
// Swapping the fault layer's seeded splitmix64 streams for math/rand
// global state makes this fail (verified locally; see docs/FAULTS.md).
func TestFaultDeterminism(t *testing.T) {
	b, err := workload.ByName("cat+tr")
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.Plan{
		Seed:        chaosSeed,
		DropRate:    0.01,
		CorruptRate: 0.002,
		StallRate:   0.05,
	}
	crashAt := midRunCrashAt(t, b, 2, plan)
	plan.Brownouts = []fault.Window{{Start: crashAt / 2, End: crashAt, ExtraLatency: 40}}
	plan.Crashes = []fault.Crash{{PE: 2, At: crashAt}}

	cr1, h1 := tracedChaosRun(t, b, 2, plan, M3Options{})
	if cr1.Stats.ExecutedEvents == 0 {
		t.Fatal("run executed no events")
	}
	if cr1.Inj.CrashesFired() != 1 {
		t.Fatalf("crash did not fire (at %d, final time %d)", crashAt, cr1.Stats.FinalTime)
	}
	if cr1.Kern.Stats.VPEsReaped == 0 {
		t.Fatal("watchdog reaped no VPE after the crash")
	}
	sum1 := outcomeSummary(cr1)
	for i := 0; i < 2; i++ {
		cr2, h2 := tracedChaosRun(t, b, 2, plan, M3Options{})
		if cr1.Stats != cr2.Stats {
			t.Fatalf("run %d stats differ: %+v vs %+v", i+2, cr2.Stats, cr1.Stats)
		}
		if h1 != h2 {
			t.Fatalf("run %d trace hash differs: %#x vs %#x (same stats %+v — an order-only divergence)",
				i+2, h2, h1, cr1.Stats)
		}
		if sum2 := outcomeSummary(cr2); sum2 != sum1 {
			t.Fatalf("run %d outcomes differ:\n%s\nvs\n%s", i+2, sum2, sum1)
		}
	}
}

// assertIsolation checks the isolation invariants that must hold after
// any chaos run: the engine drained without deadlock, no exited VPE
// retains a capability, and the filesystem service holds no session
// state for departed clients.
func assertIsolation(t *testing.T, cr *ChaosRun) {
	t.Helper()
	if cr.Eng.Deadlocked() {
		t.Error("simulation deadlocked")
	}
	for _, vpe := range cr.Kern.VPEs() {
		if vpe.Exited() && vpe.Caps.Len() != 0 {
			t.Errorf("exited vpe %d (%s) still holds %d capabilities (sels %v)",
				vpe.ID, vpe.Name, vpe.Caps.Len(), vpe.Caps.Sels())
		}
	}
	if cr.FS != nil && cr.FS.SessionCount() != 0 {
		t.Errorf("m3fs still holds %d sessions", cr.FS.SessionCount())
	}
}

// TestChaosMatrix drives every application workload through the fault
// tiers: fault-free (reliability armed but idle), 1% per-hop packet
// loss, and a mid-run crash of the PE running instance 0. Surviving
// instances must complete, the crashed VPE must be reaped with its
// capabilities revoked and its PE's endpoints deconfigured, and the
// system must wind down without deadlock — the paper's isolation story
// surviving hardware failure.
func TestChaosMatrix(t *testing.T) {
	for _, b := range workload.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			plan := fault.Plan{Seed: chaosSeed}
			crashAt := midRunCrashAt(t, b, 2, plan)

			t.Run("none", func(t *testing.T) {
				cr, err := RunM3Chaos(b, 2, fault.Plan{Seed: chaosSeed}, M3Options{})
				if err != nil {
					t.Fatal(err)
				}
				for _, o := range cr.Outcomes {
					if !o.Finished || o.Err != nil {
						t.Errorf("%s: finished=%v err=%v", o.Name, o.Finished, o.Err)
					}
				}
				if n := cr.Inj.Retransmits(); n != 0 {
					t.Errorf("fault-free run retransmitted %d times", n)
				}
				assertIsolation(t, cr)
			})

			t.Run("loss", func(t *testing.T) {
				cr, err := RunM3Chaos(b, 2, fault.Plan{Seed: chaosSeed, DropRate: 0.01}, M3Options{})
				if err != nil {
					t.Fatal(err)
				}
				for _, o := range cr.Outcomes {
					if !o.Finished || o.Err != nil {
						t.Errorf("%s: finished=%v err=%v", o.Name, o.Finished, o.Err)
					}
				}
				if cr.Inj.Retransmits() == 0 {
					t.Error("1% loss run saw no retransmissions")
				}
				assertIsolation(t, cr)
			})

			t.Run("crash", func(t *testing.T) {
				plan := fault.Plan{Seed: chaosSeed, Crashes: []fault.Crash{{PE: 2, At: crashAt}}}
				cr, err := RunM3Chaos(b, 2, plan, M3Options{})
				if err != nil {
					t.Fatal(err)
				}
				if cr.Inj.CrashesFired() != 1 {
					t.Fatalf("crash at %d did not fire (final time %d)", crashAt, cr.Stats.FinalTime)
				}
				victim := cr.Outcomes[0].VPE
				if victim.PE.ID != 2 {
					t.Fatalf("instance 0 on PE %d, crash targeted PE 2", victim.PE.ID)
				}
				if cr.Outcomes[0].Finished {
					t.Error("crashed instance reported completion")
				}
				if !victim.Exited() || victim.ExitCode() != core.CrashExitCode {
					t.Errorf("victim vpe %d: exited=%v code=%d, want reaped with code %d",
						victim.ID, victim.Exited(), victim.ExitCode(), core.CrashExitCode)
				}
				surv := cr.Outcomes[1]
				if !surv.Finished || surv.Err != nil {
					t.Errorf("survivor did not complete: finished=%v err=%v", surv.Finished, surv.Err)
				}
				for ep := 0; ep < victim.PE.DTU.NumEndpoints(); ep++ {
					if typ := victim.PE.DTU.EP(ep).Type; typ != dtu.EpInvalid {
						t.Errorf("victim PE endpoint %d still configured as %v", ep, typ)
					}
				}
				assertIsolation(t, cr)
			})

			// recover: the m3fs PE itself crashes mid-run. The kernel
			// supervisor respawns the service on the spare PE, the
			// journal replays the pre-crash metadata, and every client
			// re-establishes its session transparently — availability
			// through a service crash.
			t.Run("recover", func(t *testing.T) {
				opts := recoverOpts()
				fsCrashAt := midRunCrashAtOpt(t, b, 2, fault.Plan{Seed: chaosSeed}, opts)
				plan := fault.Plan{Seed: chaosSeed, Crashes: []fault.Crash{{PE: 1, At: fsCrashAt}}}
				cr, h1 := tracedChaosRun(t, b, 2, plan, opts)
				if cr.Inj.CrashesFired() != 1 {
					t.Fatalf("m3fs crash at %d did not fire (final time %d)", fsCrashAt, cr.Stats.FinalTime)
				}
				if got := cr.Kern.Stats.ServiceRestarts; got != 1 {
					t.Fatalf("supervisor restarted the service %d times, want 1", got)
				}
				if len(cr.FSReadyAt) != 2 {
					t.Fatalf("m3fs became ready %d times (%v), want boot + restart", len(cr.FSReadyAt), cr.FSReadyAt)
				}
				if cr.FSReadyAt[1] <= fsCrashAt {
					t.Fatalf("restart ready at %d, before the crash at %d", cr.FSReadyAt[1], fsCrashAt)
				}
				if !cr.FS.Recovered {
					t.Error("restarted m3fs did not replay a journal")
				}
				if cr.FS.ReplayedRecords == 0 {
					t.Error("journal replay applied no records despite pre-crash mutations")
				}
				for _, o := range cr.Outcomes {
					if !o.Finished || o.Err != nil {
						t.Errorf("%s did not complete through the restart: finished=%v err=%v",
							o.Name, o.Finished, o.Err)
					}
				}
				// The recovered image must be self-consistent: re-parse
				// it, which runs the full invariant checker.
				img := cr.FS.FS().MarshalImage(nil)
				if _, err := m3fs.UnmarshalImage(img, nil); err != nil {
					t.Errorf("recovered filesystem image fails fsck: %v", err)
				}
				assertIsolation(t, cr)

				// Recovery is deterministic: repeated runs execute the
				// identical event schedule.
				for i := 0; i < 2; i++ {
					cr2, h2 := tracedChaosRun(t, b, 2, plan, opts)
					if cr.Stats != cr2.Stats {
						t.Fatalf("recover rerun %d stats differ: %+v vs %+v", i+2, cr2.Stats, cr.Stats)
					}
					if h1 != h2 {
						t.Fatalf("recover rerun %d trace hash differs: %#x vs %#x", i+2, h2, h1)
					}
				}
			})

			// norestart: the same m3fs crash without a restart policy.
			// There is nothing to fail over to — but clients must get
			// clean timeout/session-dead errors, never a hang.
			t.Run("norestart", func(t *testing.T) {
				opts := M3Options{FS: m3fs.Config{Journal: true}}
				fsCrashAt := midRunCrashAtOpt(t, b, 2, fault.Plan{Seed: chaosSeed}, opts)
				plan := fault.Plan{Seed: chaosSeed, Crashes: []fault.Crash{{PE: 1, At: fsCrashAt}}}
				cr, err := RunM3Chaos(b, 2, plan, opts)
				if err != nil {
					t.Fatal(err)
				}
				if cr.Inj.CrashesFired() != 1 {
					t.Fatalf("m3fs crash at %d did not fire (final time %d)", fsCrashAt, cr.Stats.FinalTime)
				}
				if got := cr.Kern.Stats.ServiceRestarts; got != 0 {
					t.Fatalf("unsupervised service restarted %d times", got)
				}
				if cr.Eng.Deadlocked() {
					t.Fatal("run deadlocked: a client blocked forever on the dead service")
				}
				for _, o := range cr.Outcomes {
					if !o.Finished && o.Err == nil {
						t.Errorf("%s neither finished nor failed cleanly (end=%d)", o.Name, o.EndAt)
					}
				}
			})
		})
	}
}
