package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/obs"
)

// Regression attribution: when the bench gate goes red, explain it.
// Attribute pairs each regression with the capture diff of its
// experiment's workload (CaptureWorkloads), producing the
// machine-readable DiffReport ci.sh retains as
// artifacts/diff-report.json and the per-metric attribution text
// `m3bench -diff` appends under its REGRESSION lines. With no captures
// in one of the files the report degrades gracefully: the regressions
// are still listed, the absent workloads are named.

// DiffReportSchema versions the diff-report JSON layout.
const DiffReportSchema = 1

// Attribution explains the regressions mapped to one captured
// workload via the workload's capture diff.
type Attribution struct {
	Workload string `json:"workload"`
	// Experiments are the regressed experiments this workload
	// represents, in first-regression order.
	Experiments []string `json:"experiments"`
	// Metrics are the regressed metric keys ("exp:metric").
	Metrics []string `json:"metrics"`
	// Summary is the diff's one-line headline.
	Summary string `json:"summary"`
	// Diff is the full capture alignment.
	Diff *obs.CaptureDiff `json:"diff"`
}

// DiffReport is the machine-readable explanation of one bench diff.
type DiffReport struct {
	Schema      int          `json:"schema"`
	Regressions []Regression `json:"regressions"`
	Notes       []string     `json:"notes,omitempty"`
	// Attributions hold one capture diff per regressed workload, in
	// workload-name order.
	Attributions []*Attribution `json:"attributions,omitempty"`
	// MissingCaptures names workloads wanted for attribution but not
	// captured in both files (rerun with `m3bench -capture`).
	MissingCaptures []string `json:"missing_captures,omitempty"`
}

// Attribute builds the diff report: every regression, joined with the
// capture diff of its experiment's workload where both files carry
// that capture.
func Attribute(d *BenchDiff, old, new *BenchFile) (*DiffReport, error) {
	rep := &DiffReport{
		Schema:      DiffReportSchema,
		Regressions: d.Regressions,
		Notes:       d.Notes,
	}
	byWorkload := map[string]*Attribution{}
	missing := map[string]bool{}
	var order []string
	for _, r := range d.Regressions {
		w, ok := CaptureWorkloads[r.Exp]
		if !ok {
			continue
		}
		a, seen := byWorkload[w]
		if !seen {
			oc, nc := FindCapture(old, w), FindCapture(new, w)
			if oc == nil || nc == nil {
				if !missing[w] {
					missing[w] = true
					rep.MissingCaptures = append(rep.MissingCaptures, w)
				}
				continue
			}
			cd, err := obs.DiffCaptures(oc, nc)
			if err != nil {
				return nil, fmt.Errorf("bench: attributing workload %s: %w", w, err)
			}
			a = &Attribution{Workload: w, Summary: cd.Summary(), Diff: cd}
			byWorkload[w] = a
			order = append(order, w)
		} else if a == nil {
			continue
		}
		if len(a.Experiments) == 0 || a.Experiments[len(a.Experiments)-1] != r.Exp {
			dup := false
			for _, e := range a.Experiments {
				if e == r.Exp {
					dup = true
					break
				}
			}
			if !dup {
				a.Experiments = append(a.Experiments, r.Exp)
			}
		}
		a.Metrics = append(a.Metrics, r.Key())
	}
	sort.Strings(order)
	sort.Strings(rep.MissingCaptures)
	for _, w := range order {
		rep.Attributions = append(rep.Attributions, byWorkload[w])
	}
	return rep, nil
}

// attributionTopGroups caps the per-workload group table in the text
// rendering; the JSON report always carries the full diff.
const attributionTopGroups = 5

// WriteText renders the attribution sections: one line per regressed
// metric pointing at its workload diff, then each workload's capture
// diff once.
func (r *DiffReport) WriteText(w io.Writer) error {
	pr := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	byWorkload := map[string]*Attribution{}
	for _, a := range r.Attributions {
		byWorkload[a.Workload] = a
	}
	for _, reg := range r.Regressions {
		wl := CaptureWorkloads[reg.Exp]
		a := byWorkload[wl]
		switch {
		case a != nil:
			if err := pr("attribution %s: %s — %s\n", reg.Key(), reg.Delta(), a.Summary); err != nil {
				return err
			}
		case wl != "":
			if err := pr("attribution %s: %s — no capture of workload %s in both files (rerun with m3bench -capture)\n",
				reg.Key(), reg.Delta(), wl); err != nil {
				return err
			}
		default:
			if err := pr("attribution %s: %s — experiment has no capture workload\n", reg.Key(), reg.Delta()); err != nil {
				return err
			}
		}
	}
	for _, a := range r.Attributions {
		if err := pr("workload %s (regressed: %s):\n", a.Workload, joinKeys(a.Metrics)); err != nil {
			return err
		}
		//m3vet:allow timetaint the capture diff is simulation-derived; the taint is the host-speed "info" metric riding in the same report struct, which never gates and is reported as-is
		if err := a.Diff.WriteText(w, attributionTopGroups); err != nil {
			return err
		}
	}
	return nil
}

// joinKeys renders a key list compactly.
func joinKeys(keys []string) string {
	const max = 6
	s := ""
	for i, k := range keys {
		if i == max {
			return fmt.Sprintf("%s, and %d more", s, len(keys)-max)
		}
		if i > 0 {
			s += ", "
		}
		s += k
	}
	return s
}

// WriteJSON renders the report as indented JSON with a trailing
// newline.
func (r *DiffReport) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
