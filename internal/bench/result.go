package bench

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Machine-readable bench output: every experiment renders its result
// table into a flat metric list, the whole run is serialized as
// schema-versioned JSON, and `m3bench -diff old.json new.json` compares
// two such files under per-metric tolerances. The JSON is the CI
// regression baseline (BENCH_*.json); see EXPERIMENTS.md for the
// schema and docs/OBSERVABILITY.md for the determinism contract.

// BenchSchema is the JSON schema version. Bump it whenever the field
// layout or metric naming changes incompatibly; -diff refuses to
// compare files of different schema versions.
const BenchSchema = 1

// DefaultTolerance is the fractional regression threshold -diff
// applies to metrics that carry no explicit tolerance: a metric may
// grow by <5% before the diff fails. All bench metrics are
// lower-is-better (cycles, counts); improvements never fail.
const DefaultTolerance = 0.05

// BenchMetric is one scalar measurement.
type BenchMetric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value,omitempty"`
	// Unit is "cycles", "ratio", ... — or "info" for metrics recorded
	// for the determinism witness only, which -diff reports but never
	// gates on (hashes and event counts change legitimately whenever
	// instrumentation is added).
	Unit string `json:"unit"`
	// Info carries non-numeric witness values (hashes).
	Info string `json:"info,omitempty"`
	// Tol overrides DefaultTolerance for this metric (fraction, e.g.
	// 0.10 allows +10%).
	Tol float64 `json:"tol,omitempty"`
}

// BenchExperiment is the metric set of one experiment.
type BenchExperiment struct {
	Name    string        `json:"name"`
	Metrics []BenchMetric `json:"metrics"`
}

// BenchFile is the serialized bench run. It deliberately carries no
// wall-clock timestamps, host names, or toolchain strings: two runs of
// the same tree produce byte-identical files — with one flagged
// exception, the witness's events-per-wall-second throughput metric,
// which is host-dependent by design and rides in an "info" metric so
// -diff reports it but never gates on it.
type BenchFile struct {
	Schema      int               `json:"schema"`
	Experiments []BenchExperiment `json:"experiments"`
	// Captures are the optional run captures (`m3bench -capture`), one
	// per distinct experiment workload in workload-name order. They are
	// input to regression attribution (diffreport.go, cmd/m3diff) and
	// carry their own schema version; files without captures diff and
	// parse exactly as before.
	Captures []*obs.RunCapture `json:"captures,omitempty"`
}

// WriteJSON renders the file as indented JSON with a trailing newline.
// encoding/json serializes struct slices in order, so the output is
// deterministic.
func (f *BenchFile) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ReadBenchJSON parses a bench file and validates its schema version.
func ReadBenchJSON(data []byte) (*BenchFile, error) {
	var f BenchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("bench: parsing JSON: %w", err)
	}
	if f.Schema != BenchSchema {
		return nil, fmt.Errorf("bench: schema %d, this binary speaks %d", f.Schema, BenchSchema)
	}
	return &f, nil
}

// ExperimentFromTables flattens an experiment's CSV tables into
// metrics: every numeric cell becomes one metric named
// "table/rowlabel/column", where the row label joins the row's
// non-numeric cells. Empty cells are skipped. The mapping is purely
// positional, so a new experiment gets JSON output for free from its
// CSV() method.
func ExperimentFromTables(name string, tables []*CSVTable) BenchExperiment {
	exp := BenchExperiment{Name: name}
	for _, t := range tables {
		if len(t.Rows) < 2 {
			continue
		}
		header := t.Rows[0]
		for _, row := range t.Rows[1:] {
			var labels []string
			type numCell struct {
				col string
				v   float64
			}
			var nums []numCell
			for i, cell := range row {
				if cell == "" {
					continue
				}
				if v, err := strconv.ParseFloat(cell, 64); err == nil {
					col := fmt.Sprintf("col%d", i)
					if i < len(header) {
						col = header[i]
					}
					nums = append(nums, numCell{col, v})
				} else {
					labels = append(labels, cell)
				}
			}
			prefix := t.Name
			if len(labels) > 0 {
				prefix += "/" + strings.Join(labels, "+")
			}
			for _, nc := range nums {
				exp.Metrics = append(exp.Metrics, BenchMetric{
					Name:  prefix + "/" + nc.col,
					Value: nc.v,
					Unit:  unitOf(nc.col),
				})
			}
		}
	}
	return exp
}

// unitOf derives the unit from the column name.
func unitOf(col string) string {
	if strings.HasSuffix(col, "_cycles") || col == "cycles" {
		return "cycles"
	}
	return "ratio"
}

// witnessWorkload is the fixed workload the determinism witness runs.
const witnessWorkload = "tar"

// witnessSampleEvery is the witness run's metrics sampling interval.
const witnessSampleEvery sim.Time = 4096

// RunWitness executes the determinism witness: one fixed workload with
// the structured tracer, the legacy tracer, and the metrics sampler all
// armed. It records the engine statistics and content hashes of every
// observability stream as "info" metrics — byte-identical across runs
// of the same tree by the determinism contract, but never gated on by
// -diff (they legitimately change when instrumentation is added).
func RunWitness() (BenchExperiment, error) {
	exp := BenchExperiment{Name: "witness"}
	b, err := workload.ByName(witnessWorkload)
	if err != nil {
		return exp, err
	}
	obsHash := fnv.New64a()
	events := 0
	var buf [obs.EncodedSize]byte
	tr := obs.New(obs.Options{Sink: func(ev obs.Event) {
		obsHash.Write(ev.AppendBinary(buf[:0]))
		events++
	}})
	legacyHash := fnv.New64a()
	opt := M3Options{
		Obs:         tr,
		SampleEvery: witnessSampleEvery,
		Tracer: func(at sim.Time, source, event string) {
			fmt.Fprintf(legacyHash, "%d %s %s\n", at, source, event)
		},
	}
	wallStart := time.Now() //m3vet:allow timetaint events/sec throughput is wall-clock by definition; "info" unit keeps it out of the diff gate
	_, st, err := RunM3Stats(b, opt)
	wall := time.Since(wallStart)
	if err != nil {
		return exp, err
	}
	// Simulator throughput: executed events per second of host wall
	// clock. This is the optimization target of the calendar-queue and
	// pooled-allocation work; recording it in every bench file makes
	// engine-speed regressions visible in the -diff notes without ever
	// failing CI on a slow machine.
	eventsPerSec := 0.0
	if wall > 0 {
		eventsPerSec = float64(st.ExecutedEvents) / wall.Seconds()
	}
	snapHash := fnv.New64a()
	snapHash.Write([]byte(tr.Metrics().Snapshot()))
	exp.Metrics = []BenchMetric{
		{Name: "witness/executed_events", Value: float64(st.ExecutedEvents), Unit: "info"},
		{Name: "witness/final_time", Value: float64(st.FinalTime), Unit: "info"},
		{Name: "witness/obs_events", Value: float64(events), Unit: "info"},
		{Name: "witness/events_per_sec_wall", Value: eventsPerSec, Unit: "info"},
		{Name: "witness/obs_stream_hash", Unit: "info", Info: fmt.Sprintf("%016x", obsHash.Sum64())},
		{Name: "witness/legacy_trace_hash", Unit: "info", Info: fmt.Sprintf("%016x", legacyHash.Sum64())},
		{Name: "witness/metrics_snapshot_hash", Unit: "info", Info: fmt.Sprintf("%016x", snapHash.Sum64())},
	}
	return exp, nil
}

// Regression is one gating failure of a bench diff: a metric past its
// tolerance, or a metric that vanished from the new run.
type Regression struct {
	Exp    string  `json:"exp"`
	Metric string  `json:"metric"`
	Old    float64 `json:"old,omitempty"`
	New    float64 `json:"new,omitempty"`
	// Tol is the tolerance the metric was gated under (fraction).
	Tol float64 `json:"tol,omitempty"`
	// Missing marks a metric absent from the new file (a silently
	// vanished experiment must not pass CI).
	Missing bool `json:"missing,omitempty"`
}

// Key is the metric's index key ("exp:metric").
func (r Regression) Key() string { return r.Exp + ":" + r.Metric }

// Delta renders the regression's movement ("123 -> 140 (+13.8%)", or
// "missing from new run").
func (r Regression) Delta() string {
	if r.Missing {
		return "missing from new run"
	}
	return fmt.Sprintf("%g -> %g (%+.1f%%, tol %.0f%%)",
		r.Old, r.New, 100*(r.New/r.Old-1), 100*r.Tol)
}

func (r Regression) String() string { return r.Key() + ": " + r.Delta() }

// BenchDiff is the outcome of comparing two bench files.
type BenchDiff struct {
	// Regressions are the failures: metrics past tolerance, metrics
	// that disappeared, schema trouble.
	Regressions []Regression
	// Notes are non-failing observations: improvements, new metrics,
	// info-metric changes.
	Notes []string
}

// Failed reports whether the diff should gate CI.
func (d *BenchDiff) Failed() bool { return len(d.Regressions) > 0 }

// Headline names the regressed metrics and their deltas in one line,
// capped at max entries (0 = all) — the actionable part of the gate's
// error text.
func (d *BenchDiff) Headline(max int) string {
	var parts []string
	for i, r := range d.Regressions {
		if max > 0 && i == max {
			parts = append(parts, fmt.Sprintf("and %d more", len(d.Regressions)-max))
			break
		}
		parts = append(parts, r.String())
	}
	return strings.Join(parts, "; ")
}

// Write renders the diff report.
func (d *BenchDiff) Write(w io.Writer) error {
	for _, n := range d.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	for _, r := range d.Regressions {
		if _, err := fmt.Fprintf(w, "REGRESSION: %s\n", r); err != nil {
			return err
		}
	}
	if len(d.Regressions) == 0 {
		_, err := fmt.Fprintln(w, "bench diff: no regressions")
		return err
	}
	_, err := fmt.Fprintf(w, "bench diff: %d regression(s)\n", len(d.Regressions))
	return err
}

// metricRef locates one metric inside a file.
type metricRef struct {
	exp string
	m   BenchMetric
}

func indexMetrics(f *BenchFile) (map[string]metricRef, []string) {
	idx := make(map[string]metricRef)
	var keys []string
	for _, e := range f.Experiments {
		for _, m := range e.Metrics {
			k := e.Name + ":" + m.Name
			if _, dup := idx[k]; !dup {
				keys = append(keys, k)
			}
			idx[k] = metricRef{exp: e.Name, m: m}
		}
	}
	return idx, keys
}

// DiffBench compares a new bench run against an old baseline. Every
// numeric metric is lower-is-better: the diff fails when
// new > old*(1+tol), with tol the baseline metric's Tol (or
// DefaultTolerance). Info metrics and improvements only produce notes;
// metrics missing from the new file fail (a silently vanished
// experiment must not pass CI); metrics only in the new file are
// notes (the next committed baseline adopts them).
func DiffBench(old, new *BenchFile) *BenchDiff {
	d := &BenchDiff{}
	oldIdx, oldKeys := indexMetrics(old)
	newIdx, newKeys := indexMetrics(new)
	for _, k := range oldKeys {
		o := oldIdx[k]
		n, ok := newIdx[k]
		if !ok {
			d.Regressions = append(d.Regressions, Regression{
				Exp: o.exp, Metric: o.m.Name, Old: o.m.Value, Missing: true})
			continue
		}
		if o.m.Unit == "info" || n.m.Unit == "info" {
			if o.m.Info != n.m.Info || o.m.Value != n.m.Value {
				d.Notes = append(d.Notes, fmt.Sprintf("%s: witness changed (%s%v -> %s%v)",
					k, o.m.Info, o.m.Value, n.m.Info, n.m.Value))
			}
			continue
		}
		tol := o.m.Tol
		if tol == 0 {
			tol = DefaultTolerance
		}
		switch {
		case o.m.Value == 0:
			if n.m.Value != 0 {
				d.Notes = append(d.Notes, fmt.Sprintf("%s: 0 -> %g (zero baseline, not gated)", k, n.m.Value))
			}
		case n.m.Value > o.m.Value*(1+tol):
			d.Regressions = append(d.Regressions, Regression{
				Exp: o.exp, Metric: o.m.Name, Old: o.m.Value, New: n.m.Value, Tol: tol})
		case n.m.Value < o.m.Value*(1-tol):
			d.Notes = append(d.Notes, fmt.Sprintf("%s: %g -> %g (%+.1f%%, improvement)",
				k, o.m.Value, n.m.Value, 100*(n.m.Value/o.m.Value-1)))
		}
	}
	var added []string
	for _, k := range newKeys {
		if _, ok := oldIdx[k]; !ok {
			added = append(added, k)
		}
	}
	sort.Strings(added)
	for _, k := range added {
		d.Notes = append(d.Notes, fmt.Sprintf("%s: new metric, absent from baseline", k))
	}
	return d
}
