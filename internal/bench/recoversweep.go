package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/m3fs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// erecoverSeed pins the crash schedule of the recovery sweep
// (docs/RECOVERY.md): the table is reproducible bit for bit.
const erecoverSeed uint64 = 0x5EC0

// erecoverBackoff is the supervisor's restart back-off for the sweep.
const erecoverBackoff sim.Time = 5000

// ERecoverCrashes are the service-crash counts swept by experiment
// E-recover.
var ERecoverCrashes = []int{0, 1, 2}

// ERecoverRow is one crash count of the availability sweep.
type ERecoverRow struct {
	Crashes     int
	RunTime     sim.Time // instance run phase (completion required)
	Goodput     float64  // crash-free run time / actual run time
	Restarts    uint64   // supervisor respawns observed
	MeanRecover sim.Time // mean cycles from crash to service ready
	Replayed    int      // journal records replayed by the last incarnation
}

// ERecoverResult is the experiment E-recover table: how availability
// degrades as the m3fs service PE is crashed repeatedly mid-run, with
// the kernel supervisor respawning the service on a spare PE and the
// journal restoring its metadata each time.
type ERecoverResult struct {
	Workload string
	Rows     []ERecoverRow
}

// ERecover runs the availability sweep: untar while the PE hosting the
// m3fs service is crashed 0..N times. Crash times and target PEs are
// derived iteratively — each run observes where the supervisor placed
// the restarted service and when it became ready, and the next row
// crashes that incarnation a quarter of a crash-free run later — so the
// whole schedule is a pure function of the seed and stays deterministic.
func ERecover() (*ERecoverResult, error) {
	b := workload.Untar()
	res := &ERecoverResult{Workload: b.Name}
	var crashes []fault.Crash
	var baseline sim.Time
	for _, n := range ERecoverCrashes {
		opt := M3Options{
			ExtraPEs: n,
			FS:       m3fs.Config{Journal: true},
		}
		if n > 0 {
			opt.FSPolicy = core.RestartPolicy{MaxRestarts: n, Backoff: erecoverBackoff}
		}
		plan := fault.Plan{Seed: erecoverSeed, Crashes: append([]fault.Crash(nil), crashes[:min(n, len(crashes))]...)}
		cr, err := RunM3Chaos(b, 1, plan, opt)
		if err != nil {
			return nil, fmt.Errorf("erecover %d crashes: %w", n, err)
		}
		out := cr.Outcomes[0]
		if !out.Finished {
			return nil, fmt.Errorf("erecover %d crashes: instance did not finish: %v", n, out.Err)
		}
		if got := int(cr.Kern.Stats.ServiceRestarts); got != n {
			return nil, fmt.Errorf("erecover %d crashes: %d restarts observed", n, got)
		}
		if len(cr.FSReadyAt) != n+1 {
			return nil, fmt.Errorf("erecover %d crashes: service ready %d times", n, len(cr.FSReadyAt))
		}
		row := ERecoverRow{
			Crashes:  n,
			RunTime:  out.RunTime,
			Goodput:  1,
			Restarts: cr.Kern.Stats.ServiceRestarts,
			Replayed: cr.FS.ReplayedRecords,
		}
		if baseline == 0 {
			baseline = out.RunTime
		} else {
			row.Goodput = float64(baseline) / float64(out.RunTime)
		}
		for i := 0; i < n; i++ {
			row.MeanRecover += cr.FSReadyAt[i+1] - plan.Crashes[i].At
		}
		if n > 0 {
			row.MeanRecover /= sim.Time(n)
		}
		res.Rows = append(res.Rows, row)

		// Derive the next crash from this run: target the PE the live
		// service incarnation sits on, a quarter of a crash-free run
		// after the last point at which it was known to be up.
		if pe, ok := servicePE(cr, "m3fs"); ok {
			at := cr.FSReadyAt[len(cr.FSReadyAt)-1]
			if at < out.StartAt {
				at = out.StartAt
			}
			crashes = append(crashes, fault.Crash{PE: pe, At: at + baseline/4})
		}
	}
	return res, nil
}

// servicePE locates the PE hosting the live incarnation of the named
// service VPE after a run.
func servicePE(cr *ChaosRun, name string) (int, bool) {
	for _, vpe := range cr.Kern.VPEs() {
		if vpe.Name == name && !vpe.Exited() {
			return vpe.PE.ID, true
		}
	}
	return 0, false
}

// Print writes the sweep table.
func (r *ERecoverResult) Print(w io.Writer) {
	fmt.Fprintf(w, "E-recover: %s under repeated m3fs service crashes (seed %#x, backoff %d)\n",
		r.Workload, erecoverSeed, erecoverBackoff)
	tw := newTable(w, "crashes", "run (cycles)", "goodput", "restarts", "mean recover", "replayed")
	for _, row := range r.Rows {
		tw.row(fmt.Sprintf("%d", row.Crashes), cyc(row.RunTime),
			fmt.Sprintf("%.3fx", row.Goodput),
			fmt.Sprintf("%d", row.Restarts),
			cyc(row.MeanRecover),
			fmt.Sprintf("%d", row.Replayed))
	}
	tw.flush()
}

// CSV renders the sweep.
func (r *ERecoverResult) CSV() []*CSVTable {
	t := &CSVTable{Name: "erecover_availability", Rows: [][]string{
		{"crashes", "run_cycles", "goodput", "restarts", "mean_recover_cycles", "replayed_records"},
	}}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", row.Crashes), cyc(row.RunTime),
			fmt.Sprintf("%.4f", row.Goodput),
			fmt.Sprintf("%d", row.Restarts),
			cyc(row.MeanRecover),
			fmt.Sprintf("%d", row.Replayed),
		})
	}
	return []*CSVTable{t}
}
