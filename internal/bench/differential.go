package bench

import (
	"fmt"
	"hash/fnv"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The differential engine harness: every workload the tier-1 suite
// exercises is run under each engine configuration — the reference
// binary-heap event queue, the production calendar queue, and the
// conservative parallel engine at several worker counts — and every
// observable byte of the run is hashed into a witness. Two engine
// configurations are equivalent exactly when their witnesses are
// identical; TestEngineEquivalence enforces this for the whole matrix
// on every CI run.

// EngineVariant names one engine configuration under differential test.
type EngineVariant struct {
	Name string
	Cfg  sim.Config
}

// EngineVariants returns the configuration matrix. The first entry is
// the reference: the binary heap kept precisely so the calendar queue
// and the parallel engine have a trusted baseline to differ against.
func EngineVariants() []EngineVariant {
	return []EngineVariant{
		{"serial-heap", sim.Config{Queue: sim.QueueHeap}},
		{"serial-calendar", sim.Config{}},
		{"parallel-2", sim.Config{Workers: 2}},
		{"parallel-4", sim.Config{Workers: 4}},
		{"parallel-8", sim.Config{Workers: 8}},
	}
}

// DifferentialWitness condenses everything observable about one run.
// Two runs are behaviourally identical iff their witnesses are equal —
// the struct is comparable, so == is the whole equivalence check.
type DifferentialWitness struct {
	// Stats is the engine-level run witness: executed events and final
	// simulated time.
	Stats RunStats
	// LegacyHash digests the legacy trace stream ("%d %s %s\n" lines),
	// ObsHash the structured event stream (fixed binary encoding),
	// MetricsHash the end-of-run metrics snapshot.
	LegacyHash  uint64
	ObsHash     uint64
	MetricsHash uint64
	// ObsEvents counts structured events (a hash collision shield and a
	// friendlier first diff signal).
	ObsEvents int
	// Outcomes summarizes every chaos instance: completion, error text,
	// and run timing.
	Outcomes string
}

// String renders the witness compactly for test failure output.
func (w DifferentialWitness) String() string {
	return fmt.Sprintf("events=%d final=%d legacy=%016x obs=%016x(%d) metrics=%016x outcomes=%q",
		w.Stats.ExecutedEvents, w.Stats.FinalTime,
		w.LegacyHash, w.ObsHash, w.ObsEvents, w.MetricsHash, w.Outcomes)
}

// differentialSampleEvery keeps the metrics sampler armed during
// differential runs so sampler events participate in the equivalence
// check too.
const differentialSampleEvery sim.Time = 4096

// RunDifferential executes n instances of b under the given fault plan
// on one engine configuration, with every observability stream armed,
// and returns the run's witness. The fault plan matters: asynchronous
// control traffic (acks, nacks) is the only NoC path that uses
// sharded delivery, and it only exists under fault injection — a
// lossless differential run would leave the parallel engine's most
// delicate path untested.
func RunDifferential(b workload.Benchmark, n int, plan fault.Plan, cfg sim.Config) (DifferentialWitness, error) {
	return RunDifferentialOverload(b, n, plan, cfg, nil)
}

// RunDifferentialOverload is RunDifferential with an overload policy
// armed on the system. Its point is the zero-overhead-when-off proof:
// an armed-but-idle policy (zero deadline, zero watermarks) must
// produce a witness bit-identical to a nil policy — not one extra
// event, trace line, or metric (TestOverloadIdleBitIdentical).
func RunDifferentialOverload(b workload.Benchmark, n int, plan fault.Plan, cfg sim.Config, ov *OverloadSpec) (DifferentialWitness, error) {
	var w DifferentialWitness
	obsHash := fnv.New64a()
	var buf [obs.EncodedSize]byte
	tr := obs.New(obs.Options{Sink: func(ev obs.Event) {
		obsHash.Write(ev.AppendBinary(buf[:0]))
		w.ObsEvents++
	}})
	legacyHash := fnv.New64a()
	opt := M3Options{
		Obs:         tr,
		SampleEvery: differentialSampleEvery,
		Engine:      cfg,
		Overload:    ov,
		Tracer: func(at sim.Time, source, event string) {
			fmt.Fprintf(legacyHash, "%d %s %s\n", at, source, event)
		},
	}
	cr, err := RunM3Chaos(b, n, plan, opt)
	if err != nil {
		return w, err
	}
	w.Stats = cr.Stats
	w.LegacyHash = legacyHash.Sum64()
	w.ObsHash = obsHash.Sum64()
	mh := fnv.New64a()
	mh.Write([]byte(tr.Metrics().Snapshot()))
	w.MetricsHash = mh.Sum64()
	for i := range cr.Outcomes {
		o := &cr.Outcomes[i]
		errText := ""
		if o.Err != nil {
			errText = o.Err.Error()
		}
		w.Outcomes += fmt.Sprintf("%s fin=%v err=%q start=%d end=%d;",
			o.Name, o.Finished, errText, o.StartAt, o.EndAt)
	}
	return w, nil
}
