// Package bench is the evaluation harness: it re-runs every experiment
// from the paper's evaluation (§5, Figures 3–7 and the §5.2
// cross-check) on the simulated platform and prints the corresponding
// rows/series. See EXPERIMENTS.md for paper-vs-measured numbers.
package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dtu"
	"repro/internal/linuxos"
	"repro/internal/m3"
	"repro/internal/m3fs"
	"repro/internal/obs"
	"repro/internal/overload"
	"repro/internal/sim"
	"repro/internal/tile"
	"repro/internal/workload"
)

// Breakdown splits a measured run into the paper's stacked-bar
// categories.
type Breakdown struct {
	App   sim.Time // application compute (incl. unsupported syscalls)
	Xfer  sim.Time // data transfers (DTU or memcpy)
	OS    sim.Time // everything else: syscalls, services, libm3/libc
	Total sim.Time
}

func (b Breakdown) String() string {
	return fmt.Sprintf("total=%d (app=%d xfer=%d os=%d)", b.Total, b.App, b.Xfer, b.OS)
}

// M3Options configures an M3 run.
type M3Options struct {
	// FFTPEs adds accelerator cores to the platform.
	FFTPEs int
	// ExtraPEs adds spare general-purpose cores (children need them).
	ExtraPEs int
	// NoCUnlimited disables link contention ("the NoC scales
	// perfectly", §5.7).
	NoCUnlimited bool
	// NoCTorus adds wrap-around links (topology ablation).
	NoCTorus bool
	// DRAMPorts overrides the memory ports (0 = 1).
	DRAMPorts int
	// DRAMSize overrides the module size.
	DRAMSize int
	// FS configures m3fs.
	FS m3fs.Config
	// FSPolicy, when MaxRestarts > 0, starts m3fs under kernel
	// supervision: a crashed service incarnation is respawned on a
	// spare PE (provide one via ExtraPEs) with a bumped service epoch.
	FSPolicy core.RestartPolicy
	// AppendBlocks/NoMerge tune the client's extent allocation
	// (Figure 4).
	AppendBlocks int
	NoMerge      bool
	// Tracer, if set, receives every trace event of the run; the
	// determinism regression test hashes this stream.
	Tracer func(at sim.Time, source, event string)
	// Obs, if set, is the structured tracer wired through the NoC and
	// every DTU (spans, histograms, flight recorder). Nil keeps
	// structured observability fully off.
	Obs *obs.Tracer
	// SampleEvery, when nonzero (and Obs is set), starts the metrics
	// sampler: every SampleEvery cycles each registered series records
	// one sample. Zero keeps the sampler off, scheduling no extra
	// events — RunStats stay bit-identical to a sampler-free run.
	SampleEvery sim.Time
	// Engine configures the simulation engine (event queue kind,
	// parallel workers). Every configuration produces byte-identical
	// runs; the zero value is the production default. The differential
	// harness (differential.go) sweeps this field.
	Engine sim.Config
	// DispatchCostDelta perturbs the kernel's per-syscall dispatch cost
	// (core.CostDispatch) by the given number of cycles — the seeded
	// regression of the m3diff self-test. Zero (the default) leaves the
	// cost table untouched and the run bit-identical.
	DispatchCostDelta sim.Time
	// Overload, when set, arms the end-to-end overload-control stack
	// (docs/OVERLOAD.md): deadline stamping on every PE DTU, admission
	// control on the m3fs PE, and the kernel's shed controller and
	// circuit breakers. Nil (the default) keeps every knob off and the
	// run bit-identical to the unarmed baseline.
	Overload *OverloadSpec
}

// OverloadSpec is the harness-level overload policy: one struct arms
// all three layers consistently.
type OverloadSpec struct {
	// CallDeadline is the cycle budget stamped into service-call
	// headers platform-wide (DTU deadline registers + kernel calls).
	CallDeadline sim.Time
	// RxWatermark is the admission watermark on the m3fs service PE's
	// DTU: requests arriving with this many messages already queued are
	// refused with a fast-fail NACK instead of being buffered.
	RxWatermark int
	// Shed/Breaker parameterize the kernel's per-service shed
	// controllers and circuit breakers.
	Shed    overload.ShedConfig
	Breaker overload.BreakerConfig
}

// m3System is a booted M3 platform.
type m3System struct {
	eng  *sim.Engine
	plat *tile.Platform
	kern *core.Kernel
}

func bootM3(opt M3Options, appPEs int) *m3System {
	s := bootM3NoFS(opt, appPEs)
	if _, err := s.kern.StartInit("m3fs", tile.CoreXtensa, m3fs.Program(s.kern, opt.FS, nil)); err != nil {
		panic(err)
	}
	return s
}

// bootM3NoFS builds the platform and kernel without starting m3fs, for
// harness variants that need the service handle.
func bootM3NoFS(opt M3Options, appPEs int) *m3System {
	eng := sim.NewEngineWith(opt.Engine)
	types := []tile.CoreType{tile.CoreXtensa, tile.CoreXtensa} // kernel, m3fs
	for i := 0; i < appPEs+opt.ExtraPEs; i++ {
		types = append(types, tile.CoreXtensa)
	}
	for i := 0; i < opt.FFTPEs; i++ {
		types = append(types, tile.CoreFFT)
	}
	cfg := tile.Config{PEs: types, Obs: opt.Obs}
	cfg.NoC.Unlimited = opt.NoCUnlimited
	cfg.NoC.Torus = opt.NoCTorus
	if opt.DRAMPorts > 0 {
		cfg.DRAM.Ports = opt.DRAMPorts
	}
	if opt.DRAMSize > 0 {
		cfg.DRAM.Size = opt.DRAMSize
	}
	if opt.Tracer != nil {
		eng.SetTracer(opt.Tracer)
	}
	plat := tile.NewPlatform(eng, cfg)
	kern := core.Boot(plat, 0)
	if opt.DispatchCostDelta != 0 {
		kern.PerturbSyscallCost(opt.DispatchCostDelta)
	}
	if ov := opt.Overload; ov != nil {
		// Arm every PE DTU so deadlines ride in all message headers; the
		// m3fs PE (index 1 by construction) additionally enforces the
		// admission watermark on its receive gates.
		for i, pe := range plat.PEs {
			c := &dtu.OverloadConfig{CallDeadline: ov.CallDeadline}
			if i == 1 {
				c.RxWatermark = ov.RxWatermark
			}
			pe.DTU.EnableOverload(c)
		}
		kern.EnableOverload(core.OverloadConfig{
			CallDeadline: ov.CallDeadline,
			Shed:         ov.Shed,
			Breaker:      ov.Breaker,
		})
	}
	if opt.Obs.On() && opt.SampleEvery > 0 {
		opt.Obs.Metrics().StartSampler(eng, opt.SampleEvery)
	}
	return &m3System{eng: eng, plat: plat, kern: kern}
}

// xferCycles estimates the DTU data-transfer cycles from the hardware
// counters: streamed bytes at 8 B/cycle plus the fixed per-transfer
// DRAM/NoC latency.
func (s *m3System) xferCycles() sim.Time {
	var bytes, ops uint64
	for _, pe := range s.plat.PEs {
		st := pe.DTU.Stats
		bytes += st.BytesRead + st.BytesWritten
		ops += st.MemReads + st.MemWrites
	}
	perOp := s.plat.DRAM.Latency() + 8 // latency + a few hops
	return sim.Time(bytes/8) + sim.Time(ops)*perOp
}

// RunStats describes the simulation run itself, independent of the
// workload's cycle breakdown: the exact number of executed events and
// the final simulated time. Two runs of the same configuration must
// produce identical RunStats — this is the runtime witness for the
// determinism invariants m3vet enforces statically.
type RunStats struct {
	ExecutedEvents uint64
	FinalTime      sim.Time
}

// RunM3 executes one benchmark on a fresh M3 system and returns the
// measured breakdown of the run phase.
func RunM3(b workload.Benchmark, opt M3Options) (Breakdown, error) {
	bd, _, err := RunM3Stats(b, opt)
	return bd, err
}

// RunM3Stats is RunM3 plus engine-level run statistics.
func RunM3Stats(b workload.Benchmark, opt M3Options) (Breakdown, RunStats, error) {
	s := bootM3(opt, b.PEs)
	var bd Breakdown
	var runErr error
	_, err := s.kern.StartInit("app", tile.CoreXtensa, func(ctx *tile.Ctx) {
		env := m3.NewEnv(ctx, s.kern)
		os, err := workload.NewM3OS(env)
		if err != nil {
			runErr = err
			return
		}
		if opt.AppendBlocks > 0 {
			os.FS.AppendBlocks = opt.AppendBlocks
		}
		os.FS.NoMerge = opt.NoMerge
		if err := b.Setup(os); err != nil {
			runErr = err
			return
		}
		os.ResetAppCycles()
		xferBase := s.xferCycles()
		start := ctx.Now()
		if err := b.Run(os); err != nil {
			runErr = err
			return
		}
		bd.Total = ctx.Now() - start
		// Parent and child PEs overlap (pipes): cap each category at
		// the remaining wall time, app first, then transfers.
		bd.App = sim.Time(os.AppCycles())
		if bd.App > bd.Total {
			bd.App = bd.Total
		}
		bd.Xfer = s.xferCycles() - xferBase
		if bd.App+bd.Xfer > bd.Total {
			bd.Xfer = bd.Total - bd.App
		}
		bd.OS = bd.Total - bd.App - bd.Xfer
		env.Exit(0)
	})
	if err != nil {
		return bd, RunStats{}, err
	}
	s.eng.Run()
	st := RunStats{ExecutedEvents: s.eng.ExecutedEvents(), FinalTime: s.eng.Now()}
	return bd, st, runErr
}

// RunLx executes one benchmark on a fresh Linux system with the given
// profile and cache variant.
func RunLx(b workload.Benchmark, prof linuxos.Profile, cold bool) (Breakdown, error) {
	eng := sim.NewEngine()
	sys := linuxos.New(eng, prof, cold)
	var bd Breakdown
	var runErr error
	sys.Spawn("app", func(pr *linuxos.Proc) {
		os := workload.NewLxOS(sys, pr)
		if err := b.Setup(os); err != nil {
			runErr = err
			return
		}
		base := sys.Stats
		start := pr.P().Now()
		if err := b.Run(os); err != nil {
			runErr = err
			return
		}
		bd.Total = pr.P().Now() - start
		bd.App = sys.Stats.App - base.App
		bd.Xfer = sys.Stats.Xfer - base.Xfer
		bd.OS = sys.Stats.OS - base.OS
	})
	eng.Run()
	return bd, runErr
}

// RunM3Instances runs n parallel instances of b on one M3 system with
// a single kernel and a single m3fs (Figure 6). All instances start
// their run phase together after every setup finished; the returned
// value is the mean run time per instance.
func RunM3Instances(b workload.Benchmark, n int) (sim.Time, error) {
	return RunM3InstancesEngine(b, n, sim.Config{})
}

// RunM3InstancesEngine is RunM3Instances on an explicit engine
// configuration (m3sim's -engine/-parallel flags).
func RunM3InstancesEngine(b workload.Benchmark, n int, eng sim.Config) (sim.Time, error) {
	opt := M3Options{
		NoCUnlimited: true,
		DRAMPorts:    64,
		DRAMSize:     512 << 20,
		FS:           m3fs.Config{RegionSize: 384 << 20},
		Engine:       eng,
	}
	s := bootM3(opt, n*b.PEs)
	ready := 0
	startSig := sim.NewSignal(s.eng)
	times := make([]sim.Time, 0, n)
	var runErr error
	for i := 0; i < n; i++ {
		prefix := fmt.Sprintf("/i%d", i)
		_, err := s.kern.StartInit(fmt.Sprintf("app%d", i), tile.CoreXtensa, func(ctx *tile.Ctx) {
			env := m3.NewEnv(ctx, s.kern)
			os, err := workload.NewM3OS(env)
			if err != nil {
				runErr = err
				return
			}
			os.Prefix = prefix
			if err := os.Mkdir(""); err != nil && prefix != "" {
				runErr = err
				return
			}
			if err := b.Setup(os); err != nil {
				runErr = err
				return
			}
			// Barrier: start all instances at the same time.
			ready++
			if ready == n {
				startSig.Broadcast()
			} else {
				startSig.Wait(ctx.P)
			}
			start := ctx.Now()
			if err := b.Run(os); err != nil {
				runErr = err
				return
			}
			times = append(times, ctx.Now()-start)
			env.Exit(0)
		})
		if err != nil {
			return 0, err
		}
	}
	s.eng.Run()
	if runErr != nil {
		return 0, runErr
	}
	var drops uint64
	for _, pe := range s.plat.PEs {
		drops += pe.DTU.Stats.MsgsDropped
	}
	if drops > 0 {
		return 0, fmt.Errorf("bench: %d messages dropped (ringbuffer overcommit)", drops)
	}
	if len(times) != n {
		return 0, fmt.Errorf("bench: only %d of %d instances finished", len(times), n)
	}
	var sum sim.Time
	for _, t := range times {
		sum += t
	}
	return sum / sim.Time(n), nil
}

// NullSyscallM3 measures the M3 null system call and its wire share.
func NullSyscallM3() (total, xfer sim.Time) {
	s := bootM3(M3Options{}, 1)
	var t sim.Time
	_, err := s.kern.StartInit("app", tile.CoreXtensa, func(ctx *tile.Ctx) {
		env := m3.NewEnv(ctx, s.kern)
		const rounds = 16
		if err := env.Noop(); err != nil { // warm up
			panic(err)
		}
		start := ctx.Now()
		for i := 0; i < rounds; i++ {
			if err := env.Noop(); err != nil {
				panic(err)
			}
		}
		t = (ctx.Now() - start) / rounds
		env.Exit(0)
	})
	if err != nil {
		panic(err)
	}
	s.eng.Run()
	// Wire share: request and reply transfer times between the app PE
	// (id 2) and the kernel (id 0).
	app := s.plat.PEs[2].Node
	kern := s.plat.PEs[0].Node
	x := s.plat.Net.TransferTime(app, kern, dtu.HeaderSize+8) +
		s.plat.Net.TransferTime(kern, app, dtu.HeaderSize+8)
	return t, x
}

// NullSyscallLx returns the Linux null-syscall cost for a profile.
func NullSyscallLx(prof linuxos.Profile) sim.Time { return prof.SyscallCost }
