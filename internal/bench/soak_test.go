package bench

import (
	"fmt"
	"testing"

	"repro/internal/m3"
	"repro/internal/m3fs"
	"repro/internal/tile"
	"repro/internal/workload"
)

// TestSoakAllBenchmarksOneSystem runs every application benchmark
// back to back inside a single booted system — one kernel, one m3fs,
// reused PEs — and checks the filesystem invariants after each. This
// is the long-haul integration test: capability tables, PE allocation,
// sessions, and the DRAM allocator must all stay consistent across
// many create/exit cycles.
func TestSoakAllBenchmarksOneSystem(t *testing.T) {
	var fsSvc *m3fs.Service
	opt := M3Options{ExtraPEs: 2, DRAMSize: 256 << 20, FS: m3fs.Config{RegionSize: 128 << 20}}
	s := bootM3Soak(opt, 2, &fsSvc)
	var failed string
	_, err := s.kern.StartInit("soak", tile.CoreXtensa, func(ctx *tile.Ctx) {
		env := m3.NewEnv(ctx, s.kern)
		os, err := workload.NewM3OS(env)
		if err != nil {
			failed = err.Error()
			return
		}
		for round := 0; round < 2; round++ {
			for _, b := range workload.All() {
				os.Prefix = fmt.Sprintf("/r%d-%s", round, b.Name)
				if err := os.Mkdir(""); err != nil {
					failed = fmt.Sprintf("%s round %d mkdir: %v", b.Name, round, err)
					return
				}
				if err := b.Setup(os); err != nil {
					failed = fmt.Sprintf("%s round %d setup: %v", b.Name, round, err)
					return
				}
				if err := b.Run(os); err != nil {
					failed = fmt.Sprintf("%s round %d run: %v", b.Name, round, err)
					return
				}
				if fsSvc != nil {
					if err := fsSvc.FS().CheckInvariants(); err != nil {
						failed = fmt.Sprintf("%s round %d fsck: %v", b.Name, round, err)
						return
					}
				}
			}
		}
		env.Exit(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	s.eng.Run()
	if failed != "" {
		t.Fatal(failed)
	}
	var drops uint64
	for _, pe := range s.plat.PEs {
		drops += pe.DTU.Stats.MsgsDropped
	}
	if drops > 0 {
		t.Fatalf("%d messages dropped during the soak", drops)
	}
}

// bootM3Soak is bootM3 with access to the m3fs service handle.
func bootM3Soak(opt M3Options, appPEs int, svc **m3fs.Service) *m3System {
	s := bootM3NoFS(opt, appPEs)
	if _, err := s.kern.StartInit("m3fs", tile.CoreXtensa,
		m3fs.Program(s.kern, opt.FS, func(sv *m3fs.Service) { *svc = sv })); err != nil {
		panic(err)
	}
	return s
}
