// Package trace implements the paper's benchmark methodology (§5.6):
// the four BusyBox benchmarks were first run on Linux under strace,
// "the results were combined into a data structure that specifies
// which syscall to execute including its arguments", with wait entries
// for computation time, and a replayer executed that data structure
// through the other system's API.
//
// Recorder captures a workload's OS-level operations (and its compute
// gaps) while it runs on either system; Replay executes a captured
// trace against any workload.OS. Traces marshal to bytes, so they can
// be stored like the paper's recorded strace data.
package trace

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/kif"
	"repro/internal/workload"
)

// Kind is the operation type of a trace record.
type Kind uint8

// Operation kinds.
const (
	KCompute Kind = iota + 1 // the paper's "wait" entries
	KOpen
	KRead
	KWrite
	KSeek
	KClose
	KStat
	KMkdir
	KUnlink
	KReadDir
	KCopyRange
)

var kindNames = map[Kind]string{
	KCompute: "compute", KOpen: "open", KRead: "read", KWrite: "write",
	KSeek: "seek", KClose: "close", KStat: "stat", KMkdir: "mkdir",
	KUnlink: "unlink", KReadDir: "readdir", KCopyRange: "copyrange",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "unknown"
}

// Record is one traced operation.
type Record struct {
	Kind   Kind
	FD     int // recorder-assigned file id
	SrcFD  int // source file for copyrange
	Path   string
	Flags  workload.OpenFlags
	Size   int
	Off    int64
	Whence int
	Cycles uint64
}

// Trace is a recorded operation sequence.
type Trace struct {
	Records []Record
}

// Len returns the number of records.
func (t *Trace) Len() int { return len(t.Records) }

// Marshal encodes the trace.
func (t *Trace) Marshal() []byte {
	var o kif.OStream
	o.U64(uint64(len(t.Records)))
	for _, r := range t.Records {
		o.U64(uint64(r.Kind)).I64(int64(r.FD)).I64(int64(r.SrcFD)).Str(r.Path)
		o.U64(uint64(r.Flags)).I64(int64(r.Size)).I64(r.Off).I64(int64(r.Whence)).U64(r.Cycles)
	}
	return o.Bytes()
}

// Unmarshal decodes a trace produced by Marshal.
func Unmarshal(data []byte) (*Trace, error) {
	is := kif.NewIStream(data)
	n := int(is.U64())
	if is.Err() != nil || n < 0 || n > 1<<24 {
		return nil, fmt.Errorf("trace: corrupt header")
	}
	t := &Trace{Records: make([]Record, 0, n)}
	for i := 0; i < n; i++ {
		r := Record{
			Kind:  Kind(is.U64()),
			FD:    int(is.I64()),
			SrcFD: int(is.I64()),
			Path:  is.Str(),
		}
		r.Flags = workload.OpenFlags(is.U64())
		r.Size = int(is.I64())
		r.Off = is.I64()
		r.Whence = int(is.I64())
		r.Cycles = is.U64()
		if is.Err() != nil {
			return nil, fmt.Errorf("trace: corrupt record %d: %w", i, is.Err())
		}
		t.Records = append(t.Records, r)
	}
	return t, nil
}

// Recorder wraps a workload.OS and logs every operation. It does not
// capture payload bytes — like strace, only the arguments — so replay
// writes synthetic data of the recorded sizes.
type Recorder struct {
	inner workload.OS
	T     *Trace
	next  int
}

var _ workload.OS = (*Recorder)(nil)

// NewRecorder wraps inner.
func NewRecorder(inner workload.OS) *Recorder {
	return &Recorder{inner: inner, T: &Trace{}, next: 1}
}

func (r *Recorder) log(rec Record) { r.T.Records = append(r.T.Records, rec) }

// Compute records a wait entry and forwards.
func (r *Recorder) Compute(cycles uint64) {
	r.log(Record{Kind: KCompute, Cycles: cycles})
	r.inner.Compute(cycles)
}

// Open forwards and assigns a trace file id.
func (r *Recorder) Open(path string, flags workload.OpenFlags) (workload.File, error) {
	f, err := r.inner.Open(path, flags)
	if err != nil {
		return nil, err
	}
	id := r.next
	r.next++
	r.log(Record{Kind: KOpen, FD: id, Path: path, Flags: flags})
	return &recFile{r: r, f: f, id: id}, nil
}

// Stat forwards and records.
func (r *Recorder) Stat(path string) (workload.Stat, error) {
	r.log(Record{Kind: KStat, Path: path})
	return r.inner.Stat(path)
}

// Mkdir forwards and records.
func (r *Recorder) Mkdir(path string) error {
	r.log(Record{Kind: KMkdir, Path: path})
	return r.inner.Mkdir(path)
}

// Unlink forwards and records.
func (r *Recorder) Unlink(path string) error {
	r.log(Record{Kind: KUnlink, Path: path})
	return r.inner.Unlink(path)
}

// ReadDir forwards and records.
func (r *Recorder) ReadDir(path string) ([]string, error) {
	r.log(Record{Kind: KReadDir, Path: path})
	return r.inner.ReadDir(path)
}

// CopyRange forwards and records when both files are traced.
func (r *Recorder) CopyRange(dst, src workload.File, n int) (int, bool, error) {
	d, ok1 := dst.(*recFile)
	s, ok2 := src.(*recFile)
	if !ok1 || !ok2 {
		return 0, false, nil
	}
	c, ok, err := r.inner.CopyRange(d.f, s.f, n)
	if ok {
		r.log(Record{Kind: KCopyRange, FD: d.id, SrcFD: s.id, Size: c})
	}
	return c, ok, err
}

// CoreType forwards.
func (r *Recorder) CoreType() string { return r.inner.CoreType() }

// PipeFromChild is not recordable: the paper replayed only the
// single-process benchmarks (tar, untar, find, sqlite); cat+tr was
// implemented natively on both systems.
func (r *Recorder) PipeFromChild(string, func(workload.OS, workload.File)) (workload.File, func(), error) {
	return nil, nil, errors.New("trace: pipes are not recordable")
}

// PipeToChild is not recordable either.
func (r *Recorder) PipeToChild(string, string, func(workload.OS, workload.File)) (workload.File, func(), error) {
	return nil, nil, errors.New("trace: pipes are not recordable")
}

// recFile wraps a file to record per-descriptor operations.
type recFile struct {
	r  *Recorder
	f  workload.File
	id int
}

func (f *recFile) Read(buf []byte) (int, error) {
	n, err := f.f.Read(buf)
	f.r.log(Record{Kind: KRead, FD: f.id, Size: len(buf)})
	return n, err
}

func (f *recFile) Write(buf []byte) (int, error) {
	n, err := f.f.Write(buf)
	f.r.log(Record{Kind: KWrite, FD: f.id, Size: len(buf)})
	return n, err
}

func (f *recFile) Close() error {
	f.r.log(Record{Kind: KClose, FD: f.id})
	return f.f.Close()
}

func (f *recFile) Seek(off int64, whence int) (int64, error) {
	sf, ok := f.f.(workload.SeekableFile)
	if !ok {
		return 0, errors.New("trace: file is not seekable")
	}
	f.r.log(Record{Kind: KSeek, FD: f.id, Off: off, Whence: whence})
	return sf.Seek(off, whence)
}

// Replay executes a trace against os, like the paper's replay program:
// each recorded syscall runs through the corresponding API, compute
// records become plain computation of the same length.
func Replay(os workload.OS, t *Trace) error {
	files := make(map[int]workload.File)
	buf := make([]byte, 64<<10)
	for i, rec := range t.Records {
		var err error
		switch rec.Kind {
		case KCompute:
			os.Compute(rec.Cycles)
		case KOpen:
			var f workload.File
			f, err = os.Open(rec.Path, rec.Flags)
			if err == nil {
				files[rec.FD] = f
			}
		case KRead:
			err = withFile(files, rec.FD, func(f workload.File) error {
				_, rerr := f.Read(sized(buf, rec.Size))
				if errors.Is(rerr, io.EOF) {
					return nil
				}
				return rerr
			})
		case KWrite:
			err = withFile(files, rec.FD, func(f workload.File) error {
				_, werr := f.Write(sized(buf, rec.Size))
				return werr
			})
		case KSeek:
			err = withFile(files, rec.FD, func(f workload.File) error {
				sf, ok := f.(workload.SeekableFile)
				if !ok {
					return errors.New("trace: replay seek on non-seekable file")
				}
				_, serr := sf.Seek(rec.Off, rec.Whence)
				return serr
			})
		case KClose:
			err = withFile(files, rec.FD, func(f workload.File) error {
				delete(files, rec.FD)
				return f.Close()
			})
		case KStat:
			_, err = os.Stat(rec.Path)
		case KMkdir:
			err = os.Mkdir(rec.Path)
		case KUnlink:
			err = os.Unlink(rec.Path)
		case KReadDir:
			_, err = os.ReadDir(rec.Path)
		case KCopyRange:
			err = withFile(files, rec.FD, func(dst workload.File) error {
				return withFile(files, rec.SrcFD, func(src workload.File) error {
					n, ok, cerr := os.CopyRange(dst, src, rec.Size)
					if !ok {
						// The replaying system has no in-kernel copy:
						// fall back to read+write of the same size.
						_, rerr := src.Read(sized(buf, rec.Size))
						if rerr != nil && !errors.Is(rerr, io.EOF) {
							return rerr
						}
						_, werr := dst.Write(sized(buf, rec.Size))
						return werr
					}
					_ = n
					if errors.Is(cerr, io.EOF) {
						return nil
					}
					return cerr
				})
			})
		default:
			err = fmt.Errorf("trace: unknown record kind %d", rec.Kind)
		}
		if err != nil {
			return fmt.Errorf("trace: record %d (%s %s): %w", i, rec.Kind, rec.Path, err)
		}
	}
	return nil
}

func withFile(files map[int]workload.File, fd int, fn func(workload.File) error) error {
	f, ok := files[fd]
	if !ok {
		return fmt.Errorf("trace: unknown file id %d", fd)
	}
	return fn(f)
}

func sized(buf []byte, n int) []byte {
	if n <= len(buf) {
		return buf[:n]
	}
	return make([]byte, n)
}
