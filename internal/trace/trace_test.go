package trace_test

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/linuxos"
	"repro/internal/m3"
	"repro/internal/m3fs"
	"repro/internal/sim"
	"repro/internal/tile"
	"repro/internal/trace"
	"repro/internal/workload"
)

// recordOnLinux runs b's setup natively and records its run phase.
func recordOnLinux(t *testing.T, b workload.Benchmark) *trace.Trace {
	t.Helper()
	eng := sim.NewEngine()
	sys := linuxos.New(eng, linuxos.ProfileXtensa, false)
	var tr *trace.Trace
	sys.Spawn("rec", func(pr *linuxos.Proc) {
		os := workload.NewLxOS(sys, pr)
		if err := b.Setup(os); err != nil {
			t.Error(err)
			return
		}
		rec := trace.NewRecorder(os)
		if err := b.Run(rec); err != nil {
			t.Error(err)
			return
		}
		tr = rec.T
	})
	eng.Run()
	if tr == nil {
		t.Fatal("recording failed")
	}
	return tr
}

// timeOnM3 runs fn after b.Setup on a fresh M3 system and returns its
// duration.
func timeOnM3(t *testing.T, b workload.Benchmark, fn func(os workload.OS) error) sim.Time {
	t.Helper()
	eng := sim.NewEngine()
	plat := tile.NewPlatform(eng, tile.Homogeneous(2+b.PEs))
	kern := core.Boot(plat, 0)
	if _, err := kern.StartInit("m3fs", "", m3fs.Program(kern, m3fs.Config{}, nil)); err != nil {
		t.Fatal(err)
	}
	var took sim.Time
	_, err := kern.StartInit("app", "", func(ctx *tile.Ctx) {
		env := m3.NewEnv(ctx, kern)
		os, err := workload.NewM3OS(env)
		if err != nil {
			t.Error(err)
			return
		}
		if err := b.Setup(os); err != nil {
			t.Error(err)
			return
		}
		start := ctx.Now()
		if err := fn(os); err != nil {
			t.Error(err)
			return
		}
		took = ctx.Now() - start
		env.Exit(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	return took
}

func TestReplayMatchesNativeRun(t *testing.T) {
	// The paper's methodology: record the benchmark's syscalls on
	// Linux, replay them on M3, and take the replay as the M3 result.
	// For that to be sound, replaying must cost about the same as
	// running natively on M3. tar avoids sendfile asymmetry by being
	// replayed with the read+write fallback — use find and sqlite,
	// whose operation streams are identical on both systems.
	for _, name := range []string{"find", "sqlite"} {
		b, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		tr := recordOnLinux(t, b)
		if tr.Len() == 0 {
			t.Fatalf("%s: empty trace", name)
		}
		native := timeOnM3(t, b, func(os workload.OS) error { return b.Run(os) })
		replayed := timeOnM3(t, b, func(os workload.OS) error { return trace.Replay(os, tr) })
		ratio := float64(replayed) / float64(native)
		if ratio < 0.9 || ratio > 1.1 {
			t.Errorf("%s: replay %d vs native %d cycles (ratio %.2f), want within 10%%",
				name, replayed, native, ratio)
		}
	}
}

func TestReplayTarProducesArchive(t *testing.T) {
	b, err := workload.ByName("tar")
	if err != nil {
		t.Fatal(err)
	}
	tr := recordOnLinux(t, b)
	_ = timeOnM3(t, b, func(os workload.OS) error {
		if err := trace.Replay(os, tr); err != nil {
			return err
		}
		st, err := os.Stat("/archive.tar")
		if err != nil {
			return err
		}
		if st.Size < 1<<20 {
			t.Errorf("replayed archive only %d bytes", st.Size)
		}
		return nil
	})
}

func TestMarshalRoundTrip(t *testing.T) {
	b, err := workload.ByName("find")
	if err != nil {
		t.Fatal(err)
	}
	tr := recordOnLinux(t, b)
	data := tr.Marshal()
	back, err := trace.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("round trip lost records: %d vs %d", back.Len(), tr.Len())
	}
	for i := range tr.Records {
		if tr.Records[i] != back.Records[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, tr.Records[i], back.Records[i])
		}
	}
}

func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(kinds []uint8, paths []string, sizes []uint16) bool {
		tr := &trace.Trace{}
		for i, k := range kinds {
			r := trace.Record{
				Kind: trace.Kind(k%11 + 1),
				FD:   i,
			}
			if len(paths) > 0 {
				r.Path = paths[i%len(paths)]
			}
			if len(sizes) > 0 {
				r.Size = int(sizes[i%len(sizes)])
			}
			tr.Records = append(tr.Records, r)
		}
		back, err := trace.Unmarshal(tr.Marshal())
		if err != nil {
			return false
		}
		if back.Len() != tr.Len() {
			return false
		}
		for i := range tr.Records {
			if tr.Records[i] != back.Records[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	if _, err := trace.Unmarshal([]byte{1, 2, 3}); err == nil {
		t.Fatal("corrupt trace must fail to decode")
	}
	tr := &trace.Trace{Records: []trace.Record{{Kind: trace.KCompute, Cycles: 5}}}
	data := tr.Marshal()
	if _, err := trace.Unmarshal(data[:len(data)-4]); err == nil {
		t.Fatal("truncated trace must fail to decode")
	}
}

func TestReplayUnknownFD(t *testing.T) {
	tr := &trace.Trace{Records: []trace.Record{{Kind: trace.KRead, FD: 99, Size: 16}}}
	eng := sim.NewEngine()
	sys := linuxos.New(eng, linuxos.ProfileXtensa, false)
	var rerr error
	sys.Spawn("replay", func(pr *linuxos.Proc) {
		rerr = trace.Replay(workload.NewLxOS(sys, pr), tr)
	})
	eng.Run()
	if rerr == nil {
		t.Fatal("replay with unknown fd must fail")
	}
}

func TestRecorderRefusesPipes(t *testing.T) {
	eng := sim.NewEngine()
	sys := linuxos.New(eng, linuxos.ProfileXtensa, false)
	var gotErr bool
	sys.Spawn("rec", func(pr *linuxos.Proc) {
		rec := trace.NewRecorder(workload.NewLxOS(sys, pr))
		_, _, err := rec.PipeFromChild("x", func(workload.OS, workload.File) {})
		gotErr = err != nil
	})
	eng.Run()
	if !gotErr {
		t.Fatal("recording a pipe must fail")
	}
}

func TestReplaySeekAndMeta(t *testing.T) {
	// A hand-built trace covering seek, mkdir, readdir, stat, unlink —
	// replayed on both OS models.
	tr := &trace.Trace{Records: []trace.Record{
		{Kind: trace.KMkdir, Path: "/d"},
		{Kind: trace.KOpen, FD: 1, Path: "/d/f", Flags: workload.Write | workload.Create},
		{Kind: trace.KWrite, FD: 1, Size: 8192},
		{Kind: trace.KSeek, FD: 1, Off: 100, Whence: 0},
		{Kind: trace.KWrite, FD: 1, Size: 16},
		{Kind: trace.KClose, FD: 1},
		{Kind: trace.KStat, Path: "/d/f"},
		{Kind: trace.KReadDir, Path: "/d"},
		{Kind: trace.KCompute, Cycles: 1234},
		{Kind: trace.KUnlink, Path: "/d/f"},
	}}
	// Linux.
	eng := sim.NewEngine()
	sys := linuxos.New(eng, linuxos.ProfileXtensa, false)
	var lerr error
	sys.Spawn("replay", func(pr *linuxos.Proc) {
		lerr = trace.Replay(workload.NewLxOS(sys, pr), tr)
	})
	eng.Run()
	if lerr != nil {
		t.Fatalf("linux replay: %v", lerr)
	}
	// M3.
	b := workload.Benchmark{Name: "empty", PEs: 1,
		Setup: func(os workload.OS) error { return nil },
		Run:   func(os workload.OS) error { return nil }}
	took := timeOnM3(t, b, func(os workload.OS) error { return trace.Replay(os, tr) })
	if took < 1234 {
		t.Fatalf("m3 replay took %d cycles, must include the compute record", took)
	}
}

func TestKindStrings(t *testing.T) {
	if trace.KOpen.String() != "open" || trace.KCopyRange.String() != "copyrange" {
		t.Fatal("kind names broken")
	}
	if trace.Kind(200).String() != "unknown" {
		t.Fatal("unknown kind name")
	}
}
