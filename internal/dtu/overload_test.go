package dtu

import (
	"testing"

	"repro/internal/sim"
)

func TestAdmissionWatermarkRefusesRequests(t *testing.T) {
	r := newRig(t)
	r.d1.EnableOverload(&OverloadConfig{RxWatermark: 2})
	r.channel(t, 4)
	var flagged *Message
	r.eng.Spawn("sender", func(p *sim.Process) {
		for i := 0; i < 3; i++ {
			if err := r.d0.Send(p, 1, []byte("req"), 2, 7); err != nil {
				t.Error(err)
			}
		}
		// The third request is refused; its fast-fail reply lands on the
		// reply endpoint like any other reply.
		msg, _ := r.d0.WaitMsg(p, 2)
		flagged = msg
		r.d0.Ack(2, msg)
	})
	r.eng.Run()
	if r.d1.Stats.OverloadRefused != 1 {
		t.Fatalf("refusals = %d, want 1", r.d1.Stats.OverloadRefused)
	}
	if r.d1.Stats.MsgsReceived != 2 {
		t.Fatalf("admitted = %d, want the watermark's 2", r.d1.Stats.MsgsReceived)
	}
	if flagged == nil || !flagged.Overloaded() || flagged.Expired() {
		t.Fatalf("fast-fail reply flags wrong: %+v", flagged)
	}
	if flagged.Label != 7 {
		t.Fatalf("fast-fail reply label = %d, want the request's replyLabel", flagged.Label)
	}
	// The refusal restored the sender's credit: 4 - 3 sends + 1 refund.
	if got := r.d0.Credits(1); got != 2 {
		t.Fatalf("credits = %d, want 2 (refusal must refund)", got)
	}
}

func TestDeadlineExpiredInFlightDropsBeforeExecution(t *testing.T) {
	r := newRig(t)
	// Both sides are armed, as the harness does platform-wide: the
	// sender's DTU stamps the header, the receiver's enforces it.
	r.d0.EnableOverload(&OverloadConfig{})
	r.d1.EnableOverload(&OverloadConfig{})
	r.channel(t, 4)
	var flagged *Message
	r.eng.Spawn("sender", func(p *sim.Process) {
		// A 1-cycle budget cannot survive the NoC traversal: the receiver
		// must drop the request at arrival and fast-fail it.
		r.d0.StampDeadline(1)
		if err := r.d0.Send(p, 1, []byte("late"), 2, 9); err != nil {
			t.Error(err)
		}
		msg, _ := r.d0.WaitMsg(p, 2)
		flagged = msg
		r.d0.Ack(2, msg)
	})
	r.eng.Run()
	if r.d1.Stats.DeadlineDrops != 1 {
		t.Fatalf("deadline drops = %d, want 1", r.d1.Stats.DeadlineDrops)
	}
	if r.d1.Stats.MsgsReceived != 0 {
		t.Fatalf("delivered = %d, want none (expired work must not execute)", r.d1.Stats.MsgsReceived)
	}
	if flagged == nil || !flagged.Expired() || flagged.Overloaded() {
		t.Fatalf("fast-fail reply flags wrong: %+v", flagged)
	}
	if got := r.d0.Credits(1); got != 4 {
		t.Fatalf("credits = %d, want all 4 back", got)
	}
}

func TestDeadlineRegisterIsOneShot(t *testing.T) {
	r := newRig(t)
	r.d1.EnableOverload(&OverloadConfig{})
	r.d0.EnableOverload(&OverloadConfig{})
	r.channel(t, 4)
	r.eng.Spawn("pair", func(p *sim.Process) {
		// First send consumes the stamped deadline; the second must go
		// out unbounded (deadline 0), so a generous budget on the first
		// message cannot leak onto later traffic.
		r.d0.StampDeadline(1 << 40)
		if err := r.d0.Send(p, 1, []byte("bounded"), -1, 0); err != nil {
			t.Error(err)
		}
		if err := r.d0.Send(p, 1, []byte("unbounded"), -1, 0); err != nil {
			t.Error(err)
		}
	})
	r.eng.Run()
	first, _ := fetchAll(r.d1, 0)
	if len(first) != 2 {
		t.Fatalf("delivered %d messages, want 2", len(first))
	}
	if first[0].Deadline != 1<<40 || first[1].Deadline != 0 {
		t.Fatalf("deadlines = %d/%d, want %d/0", first[0].Deadline, first[1].Deadline, sim.Time(1)<<40)
	}
}

// fetchAll drains every arrived message of one endpoint.
func fetchAll(d *DTU, ep int) ([]*Message, int) {
	var msgs []*Message
	for {
		m := d.Fetch(ep)
		if m == nil {
			return msgs, len(msgs)
		}
		msgs = append(msgs, m)
	}
}

func TestRepliesBypassAdmission(t *testing.T) {
	// Replies must land even past the watermark: their slot was budgeted
	// by the requester's credit, and refusing them would strand callers.
	r := newRig(t)
	r.d0.EnableOverload(&OverloadConfig{RxWatermark: 1})
	r.channel(t, 4)
	r.eng.Spawn("receiver", func(p *sim.Process) {
		msg, _ := r.d1.WaitMsg(p, 0)
		if err := r.d1.Reply(p, 0, msg, []byte("pong")); err != nil {
			t.Error(err)
		}
	})
	r.eng.Spawn("sender", func(p *sim.Process) {
		// Pre-fill the sender's reply endpoint to the watermark with an
		// unrelated self-directed message, then do a real exchange.
		if err := r.d0.Configure(3, Endpoint{
			Type: EpSend, Target: 0, TargetEP: 2, Label: 1, Credits: 1, MsgSize: 16,
		}); err != nil {
			t.Fatal(err)
		}
		if err := r.d0.Send(p, 3, []byte("filler"), -1, 0); err != nil {
			t.Error(err)
		}
		if err := r.d0.Send(p, 1, []byte("ping"), 2, 42); err != nil {
			t.Error(err)
		}
		msg, _ := r.d0.WaitMsg(p, 2)
		if string(msg.Data) != "pong" && string(msg.Data) != "filler" {
			t.Errorf("unexpected data %q", msg.Data)
		}
	})
	r.eng.Run()
	// Both the filler request and the reply occupied ep2; the reply was
	// admitted although the watermark (1) was already met by the filler.
	if r.d0.Stats.OverloadRefused != 0 {
		t.Fatalf("refused = %d, want 0 — a reply or the single pre-watermark request was refused", r.d0.Stats.OverloadRefused)
	}
	if r.d0.Stats.MsgsReceived != 2 {
		t.Fatalf("received = %d, want filler + reply", r.d0.Stats.MsgsReceived)
	}
}

func TestOverloadOffIsInert(t *testing.T) {
	r := newRig(t)
	r.channel(t, 4)
	// StampDeadline without EnableOverload must not arm anything.
	r.d0.StampDeadline(123)
	r.eng.Spawn("pair", func(p *sim.Process) {
		if err := r.d0.Send(p, 1, []byte("plain"), -1, 0); err != nil {
			t.Error(err)
		}
	})
	r.eng.Run()
	msgs, n := fetchAll(r.d1, 0)
	if n != 1 || msgs[0].Deadline != 0 {
		t.Fatalf("disarmed DTU stamped a deadline: %d msgs, deadline %d", n, msgs[0].Deadline)
	}
	if r.d0.Overloaded() || r.d1.Overloaded() {
		t.Fatal("Overloaded() true without EnableOverload")
	}
	if r.d0.CallDeadline() != 0 {
		t.Fatalf("CallDeadline = %d, want 0", r.d0.CallDeadline())
	}
}

func TestOverloadCallDeadlineExposed(t *testing.T) {
	r := newRig(t)
	r.d0.EnableOverload(&OverloadConfig{CallDeadline: 5000})
	if got := r.d0.CallDeadline(); got != 5000 {
		t.Fatalf("CallDeadline = %d, want 5000", got)
	}
	// An armed fault-layer deadline takes precedence (recovery policy
	// owns the budget when crashes are in play).
	r.d0.EnableFaults(&FaultConfig{CallDeadline: 777})
	if got := r.d0.CallDeadline(); got != 777 {
		t.Fatalf("CallDeadline with faults = %d, want 777", got)
	}
}
