package dtu

import (
	"errors"
	"testing"

	"repro/internal/noc"
	"repro/internal/sim"
)

func TestNextBackoffCapsWithoutWrap(t *testing.T) {
	fc := &FaultConfig{Timeout: 100, MaxBackoff: 800}
	var got []sim.Time
	for cur := fc.Timeout; len(got) < 5; cur = fc.nextBackoff(cur) {
		got = append(got, cur)
	}
	want := []sim.Time{100, 200, 400, 800, 800}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("backoff chain = %v, want %v", got, want)
		}
	}
	// Near the top of the unsigned range the doubling must clamp, not
	// wrap into a tiny timeout.
	top := ^sim.Time(0)
	fc2 := &FaultConfig{Timeout: top / 2, MaxBackoff: top}
	if nb := fc2.nextBackoff(top - 1); nb != top {
		t.Fatalf("nextBackoff(max-1) = %d, want clamp at %d", nb, top)
	}
	if nb := fc2.nextBackoff(fc2.Timeout); nb != top {
		t.Fatalf("nextBackoff(max/2) = %d, want clamp at %d", nb, top)
	}
}

func TestEnableFaultsBackoffDefaults(t *testing.T) {
	r := newRig(t)
	cfg := FaultConfig{Timeout: 2000}
	r.d0.EnableFaults(&cfg)
	if cfg.MaxBackoff != 2000*DefaultBackoffFactor {
		t.Fatalf("default MaxBackoff = %d, want %d", cfg.MaxBackoff, 2000*DefaultBackoffFactor)
	}
	// A timeout too large to multiply caps at itself instead of
	// overflowing the default computation.
	huge := FaultConfig{Timeout: ^sim.Time(0) / 2}
	r.d0.EnableFaults(&huge)
	if huge.MaxBackoff != huge.Timeout {
		t.Fatalf("huge-timeout MaxBackoff = %d, want %d", huge.MaxBackoff, huge.Timeout)
	}
	// An explicit cap below the base timeout is lifted to it: the first
	// attempt must be allowed its full configured timeout.
	low := FaultConfig{Timeout: 500, MaxBackoff: 10}
	r.d0.EnableFaults(&low)
	if low.MaxBackoff != 500 {
		t.Fatalf("inverted MaxBackoff = %d, want lifted to 500", low.MaxBackoff)
	}
}

func TestBackoffCapBoundsPartitionAbortTime(t *testing.T) {
	// A fully partitioned receiver with a long retry budget: the abort
	// must arrive on the capped-backoff schedule, not the uncapped
	// exponential one (which would be ~5x slower here).
	r := newFaultRig(t, FaultConfig{Timeout: 50, MaxRetries: 8, MaxBackoff: 200},
		func(pkt *noc.Packet) noc.LinkFault {
			if _, ok := pkt.Payload.(*msgPacket); ok {
				return noc.LinkDrop
			}
			return noc.LinkOK
		})
	r.channel(t, 4)
	r.eng.Spawn("sender", func(p *sim.Process) {
		if err := r.d0.Send(p, 1, []byte("void"), -1, 0); !errors.Is(err, ErrTimeout) {
			t.Errorf("err = %v, want ErrTimeout", err)
		}
	})
	r.eng.Run()
	if r.d0.Stats.Retransmits != 8 {
		t.Fatalf("retransmits = %d, want MaxRetries", r.d0.Stats.Retransmits)
	}
	// Capped waits: 50+100+200*7 = 1550; uncapped would be 50*(2^9-1) =
	// 25550. Allow slack for NoC latencies.
	if now := r.eng.Now(); now > 3000 {
		t.Fatalf("abort took %d cycles, want capped-backoff schedule (~1550)", now)
	}
}

func TestNackStormRetransmitsWithoutBackoff(t *testing.T) {
	// Sustained corruption: every copy is NACKed and retransmitted
	// immediately. The retry budget must bound the storm, and because
	// NACKs bypass the timeout wait entirely, the whole exchange stays
	// far under one timeout period.
	const storms = 4
	corrupted := 0
	r := newFaultRig(t, FaultConfig{Timeout: 10000}, func(pkt *noc.Packet) noc.LinkFault {
		if _, ok := pkt.Payload.(*msgPacket); ok && corrupted < storms {
			corrupted++
			return noc.LinkCorrupt
		}
		return noc.LinkOK
	})
	r.channel(t, 4)
	// Completion time is sampled inside the process: the engine keeps
	// running until stale (harmless) timeout timers drain, so the final
	// engine clock is not the delivery time.
	var doneAt sim.Time
	r.eng.Spawn("receiver", func(p *sim.Process) {
		msg, _ := r.d1.WaitMsg(p, 0)
		r.d1.Ack(0, msg)
	})
	r.eng.Spawn("sender", func(p *sim.Process) {
		if err := r.d0.Send(p, 1, []byte("ping"), -1, 0); err != nil {
			t.Error(err)
		}
		doneAt = r.eng.Now()
	})
	r.eng.Run()
	if r.d0.Stats.Retransmits != storms {
		t.Fatalf("retransmits = %d, want %d", r.d0.Stats.Retransmits, storms)
	}
	if r.d1.Stats.Poisoned != storms {
		t.Fatalf("poisoned = %d, want %d", r.d1.Stats.Poisoned, storms)
	}
	if r.d1.Stats.MsgsReceived != 1 {
		t.Fatalf("delivered = %d, want exactly once", r.d1.Stats.MsgsReceived)
	}
	if doneAt >= 10000 {
		t.Fatalf("exchange took %d cycles — a NACK waited out the timeout", doneAt)
	}
}

func TestNackStormExhaustsRetryBudget(t *testing.T) {
	// If every copy is corrupted the NACK storm must still end in a
	// bounded abort, and fast: no copy ever waits out a timeout.
	r := newFaultRig(t, FaultConfig{Timeout: 10000, MaxRetries: 3},
		func(pkt *noc.Packet) noc.LinkFault {
			if _, ok := pkt.Payload.(*msgPacket); ok {
				return noc.LinkCorrupt
			}
			return noc.LinkOK
		})
	r.channel(t, 4)
	var doneAt sim.Time
	r.eng.Spawn("sender", func(p *sim.Process) {
		if err := r.d0.Send(p, 1, []byte("doomed"), -1, 0); !errors.Is(err, ErrTimeout) {
			t.Errorf("err = %v, want ErrTimeout", err)
		}
		doneAt = r.eng.Now()
	})
	r.eng.Run()
	if r.d0.Stats.SendsAborted != 1 || r.d0.Stats.Retransmits != 3 {
		t.Fatalf("aborts/retransmits = %d/%d, want 1/3",
			r.d0.Stats.SendsAborted, r.d0.Stats.Retransmits)
	}
	if doneAt >= 10000 {
		t.Fatalf("abort took %d cycles — NACKs should preempt every timeout", doneAt)
	}
}

func TestDedupWindowAdvancesAndStaysBounded(t *testing.T) {
	r := newRig(t)
	d := r.d0
	// Out-of-order arrivals park above the floor...
	if d.markSeen(1, 2) || d.markSeen(1, 3) {
		t.Fatal("fresh sequence numbers reported as duplicates")
	}
	s := d.seen[1]
	if s.floor != 0 || len(s.ahead) != 2 {
		t.Fatalf("window = floor %d / %d ahead, want 0/2", s.floor, len(s.ahead))
	}
	// ...and filling the gap collapses them into the floor.
	if d.markSeen(1, 1) {
		t.Fatal("gap-filling seq reported as duplicate")
	}
	if s.floor != 3 || len(s.ahead) != 0 {
		t.Fatalf("window = floor %d / %d ahead, want 3/0", s.floor, len(s.ahead))
	}
	// Everything at or below the floor is a duplicate, with no map entry.
	for seq := uint64(1); seq <= 3; seq++ {
		if !d.markSeen(1, seq) {
			t.Fatalf("seq %d below floor not deduplicated", seq)
		}
	}
	// A long in-order run keeps the window at O(1).
	for seq := uint64(4); seq <= 4096; seq++ {
		if d.markSeen(1, seq) {
			t.Fatalf("in-order seq %d reported as duplicate", seq)
		}
	}
	if s.floor != 4096 || len(s.ahead) != 0 {
		t.Fatalf("after in-order run: floor %d / %d ahead, want 4096/0", s.floor, len(s.ahead))
	}
	// Windows are per-sender: another source starts fresh.
	if d.markSeen(2, 1) {
		t.Fatal("fresh sender's seq 1 reported as duplicate")
	}
}

func TestDedupWindowWraparound(t *testing.T) {
	// A floor parked at the top of the range must not hang or wrap the
	// gap-filling walk (floor+1 overflows to 0, which is never a valid
	// sequence number).
	r := newRig(t)
	d := r.d0
	top := ^uint64(0)
	if d.markSeen(1, top-1) || d.markSeen(1, top) {
		t.Fatal("top-of-range seqs reported as duplicates")
	}
	s := d.seen[1]
	if len(s.ahead) != 2 {
		t.Fatalf("ahead = %d entries, want 2 (floor cannot reach them from 0)", len(s.ahead))
	}
	if !d.markSeen(1, top) {
		t.Fatal("replay of top seq not deduplicated")
	}
	// Low seqs still work alongside the parked high ones.
	if d.markSeen(1, 1) {
		t.Fatal("seq 1 reported as duplicate")
	}
	if s.floor != 1 {
		t.Fatalf("floor = %d, want 1", s.floor)
	}
}
