package dtu

import (
	"errors"
	"fmt"

	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Errors returned by DTU operations. They model conditions the real
// hardware signals through status registers.
var (
	ErrBadEndpoint   = errors.New("dtu: endpoint misconfigured for this operation")
	ErrNoCredits     = errors.New("dtu: send denied, no credits left")
	ErrMsgTooLarge   = errors.New("dtu: message exceeds configured size")
	ErrNotPrivileged = errors.New("dtu: operation requires a privileged DTU")
	ErrPerms         = errors.New("dtu: memory endpoint permission denied")
	ErrBounds        = errors.New("dtu: access outside memory endpoint region")
	ErrNoReply       = errors.New("dtu: message does not permit a reply")
	ErrRemote        = errors.New("dtu: remote operation failed")
	// ErrTimeout reports a transfer or remote operation that stayed
	// unacknowledged through the whole retry budget. It only occurs
	// with fault injection enabled (see EnableFaults); the lossless
	// model never times out.
	ErrTimeout = errors.New("dtu: operation timed out")
)

// DTU is one data transfer unit instance, attached to a PE's core as a
// memory-mapped device and to the NoC as the PE's only external
// interface.
type DTU struct {
	eng  *sim.Engine
	net  *noc.Network
	node noc.NodeID
	spm  *mem.SPM

	//m3vet:resolve sharedstate owner endpoint table is configured and drained in process or serial delivery context
	eps []epState
	//m3vet:resolve sharedstate owner flipped only by serial config-request handling
	privileged bool

	// MsgAvail fires whenever a message or reply arrives at any receive
	// endpoint; cores use it to model polling the DTU status register
	// without burning simulated host CPU.
	MsgAvail *sim.Signal
	// CreditAvail fires whenever credits are restored at any send
	// endpoint.
	CreditAvail *sim.Signal

	//m3vet:resolve sharedstate owner operation ids are minted in process context
	nextOp uint64
	//m3vet:resolve sharedstate owner pending-op table is mutated in process context and serial delivery
	pending map[uint64]*pendingOp

	// Reliability state, live only when faults is non-nil (see
	// EnableFaults): outstanding acknowledged transfers by sequence
	// number, received (sender, seq) pairs for duplicate suppression,
	// and the core-liveness callback probes read.
	faults *FaultConfig
	//m3vet:resolve sharedstate owner sequence numbers are minted in transmit, process context
	nextSeq uint64
	//m3vet:resolve sharedstate owner the send table is inserted/deleted in transmit; shard delivery only reads it (ack/nack flags are per-entry, see pendingSend)
	sends map[uint64]*pendingSend
	//m3vet:resolve sharedstate owner dedup windows are updated in serial Deliver, which shard code reaches through sc.Defer
	seen       map[noc.NodeID]*dedupState
	coreStatus func() bool

	// reqs feeds the DTU's internal engine that serves incoming RDMA
	// accesses to the local SPM and remote configuration requests.
	reqs *sim.Queue[*noc.Packet]

	// msgFree heads this DTU's message freelist. Messages are pooled
	// conservatively: allocated here at Send/Reply, recycled only where
	// a message is provably dead — the receive-side drop paths, where
	// the message was never inserted into a ringbuffer and no other
	// reference exists (the reliable layer acked and deduplicated
	// before receive, so no retransmission resurrects the pointer).
	// Delivered messages are never recycled: their Data legally
	// escapes into software (kif.IStream wraps it).
	//m3vet:resolve sharedstate owner pool head moves in newMessage (process context) and freeMessage (serial receive drops)
	msgFree *Message

	// waitingSince is the start of the core's in-progress DTU wait
	// (valid while waiting is true), so utilization measurements see
	// idle time that has not completed yet.
	//m3vet:resolve sharedstate owner wait bookkeeping is touched by the owning core's process only
	waiting bool
	//m3vet:resolve sharedstate owner wait bookkeeping is touched by the owning core's process only
	waitingSince sim.Time

	// obs is the structured tracer (nil-safe; see package obs) and
	// curSpan the one-slot span register: software arms it with
	// StampSpan before issuing an operation, the DTU consumes it when
	// the message or transfer is actually built. The register survives
	// credit-denied retries because consumption happens only on the
	// successful attempt.
	obs *obs.Tracer
	//m3vet:resolve sharedstate owner the span register is armed and consumed by the owning core's process
	curSpan uint64

	// Overload-control state, live only when overload is non-nil (see
	// EnableOverload): the admission/deadline configuration and the
	// one-slot deadline register software arms with StampDeadline, a
	// sibling of the span register below.
	overload *OverloadConfig
	//m3vet:resolve sharedstate owner the deadline register is armed and consumed by the owning core's process
	curDeadline sim.Time

	// Cached metric handles (nil-safe, inert without a tracer); the
	// registry entries are keyed by node id. The overload counters are
	// registered lazily on first increment — see overload.go.
	mCreditStalls  *obs.Counter
	mRetransmits   *obs.Counter
	mNacks         *obs.Counter
	//m3vet:resolve sharedstate owner registered lazily in serial delivery context (admit runs in Deliver)
	mDeadlineDrops *obs.Counter
	//m3vet:resolve sharedstate owner registered lazily in serial delivery context (admit runs in Deliver)
	mAdmitRefusals *obs.Counter

	Stats Stats
}

// Metric names this DTU registers, keyed by NoC node id (m3vet:
// metricname — names must stay package-level constants).
const (
	// MCreditStalls counts send attempts denied for lack of credits:
	// the paper's flow-control backpressure made visible.
	MCreditStalls = "dtu_credit_stalls_total"
	// MRetransmits counts reliability-layer retransmissions.
	MRetransmits = "dtu_retransmits_total"
	// MNacks counts NACKs this DTU sent for poisoned packets.
	MNacks = "dtu_nacks_total"
	// MRxQueued samples the occupied receive-ringbuffer slots across
	// all endpoints (queue depth over simulated time).
	MRxQueued = "dtu_rx_queued"
)

// SetObserver installs the structured tracer (wired by the platform)
// and registers the DTU's metrics with it.
func (d *DTU) SetObserver(tr *obs.Tracer) {
	d.obs = tr
	if tr.On() {
		m := tr.Metrics()
		d.mCreditStalls = m.Counter(MCreditStalls, int(d.node))
		d.mRetransmits = m.Counter(MRetransmits, int(d.node))
		d.mNacks = m.Counter(MNacks, int(d.node))
		m.Series(MRxQueued, int(d.node), func() int64 { return int64(d.RxQueued()) })
	}
}

// RxQueued returns the occupied receive-ringbuffer slots across all
// endpoints — the DTU's instantaneous receive queue depth.
func (d *DTU) RxQueued() int {
	n := 0
	for i := range d.eps {
		if d.eps[i].Type == EpReceive {
			n += d.eps[i].occupied
		}
	}
	return n
}

// newMessage takes a message from the freelist (or the heap on a pool
// miss). The returned message is zeroed except for the fields the
// caller sets; Data is always nil — data buffers are never recycled
// across messages, so no receiver can observe another VPE's bytes
// through the pool.
func (d *DTU) newMessage() *Message {
	m := d.msgFree
	if m == nil {
		return &Message{}
	}
	d.msgFree = m.next
	m.next = nil
	return m
}

// freeMessage zeroes a provably dead message and returns it to the
// pool. Pool hygiene is absolute: no stale span, reply capability
// (replyNode/replyEP/replyLabel/creditEP), label, data, or
// acked/replied state may survive — a leak here would hand the next
// receiver a forged reply capability or another VPE's payload
// (TestMessagePoolHygiene).
func (d *DTU) freeMessage(m *Message) {
	*m = Message{next: d.msgFree}
	d.msgFree = m
}

// StampSpan arms the span register: the next message or RDMA transfer
// this DTU builds carries the id in its header. Software calls it at
// the root of a request (syscall issue, service call).
func (d *DTU) StampSpan(span obs.SpanID) { d.curSpan = uint64(span) }

// takeSpan consumes the span register.
func (d *DTU) takeSpan() uint64 {
	s := d.curSpan
	d.curSpan = 0
	return s
}

// IdleCyclesAt returns the core's accumulated DTU-wait idle time as of
// now, including a wait still in progress.
func (d *DTU) IdleCyclesAt(now sim.Time) uint64 {
	idle := d.Stats.IdleCycles
	if d.waiting && now > d.waitingSince {
		idle += uint64(now - d.waitingSince)
	}
	return idle
}

// idleWait wraps a blocking signal wait with idle accounting.
func (d *DTU) idleWait(p *sim.Process, sig *sim.Signal) {
	t0 := d.eng.Now()
	d.waiting, d.waitingSince = true, t0
	sig.Wait(p)
	d.waiting = false
	d.Stats.IdleCycles += uint64(d.eng.Now() - t0)
}

// New creates a DTU for the PE at node, attaches it to the network, and
// starts its internal request server. All DTUs boot privileged (the
// paper: "all DTUs are privileged at boot"); the kernel downgrades
// application PEs during boot.
func New(eng *sim.Engine, net *noc.Network, node noc.NodeID, spm *mem.SPM, numEPs int) *DTU {
	if numEPs <= 0 {
		numEPs = DefaultNumEndpoints
	}
	d := &DTU{
		eng:         eng,
		net:         net,
		node:        node,
		spm:         spm,
		eps:         make([]epState, numEPs),
		privileged:  true,
		MsgAvail:    sim.NewSignal(eng),
		CreditAvail: sim.NewSignal(eng),
		pending:     make(map[uint64]*pendingOp),
		sends:       make(map[uint64]*pendingSend),
		seen:        make(map[noc.NodeID]*dedupState),
		reqs:        sim.NewQueue[*noc.Packet](eng),
	}
	net.Attach(node, d)
	eng.Spawn(fmt.Sprintf("dtu%d-server", node), d.serve)
	return d
}

// Node returns the NoC node this DTU is attached to.
func (d *DTU) Node() noc.NodeID { return d.node }

// Privileged reports the DTU's privilege state.
func (d *DTU) Privileged() bool { return d.privileged }

// SetPrivileged changes privilege locally (used by the platform at
// boot; at run time privilege changes travel as config packets).
func (d *DTU) SetPrivileged(v bool) { d.privileged = v }

// NumEndpoints returns the endpoint count.
func (d *DTU) NumEndpoints() int { return len(d.eps) }

// EP returns a copy of the endpoint registers (software-visible state).
func (d *DTU) EP(i int) Endpoint { return d.eps[i].Endpoint }

// Configure writes endpoint i's registers. Locally this requires a
// privileged DTU — application PEs were downgraded at boot and must ask
// the kernel instead.
func (d *DTU) Configure(i int, cfg Endpoint) error {
	if !d.privileged {
		return ErrNotPrivileged
	}
	return d.applyConfig(i, cfg)
}

func (d *DTU) applyConfig(i int, cfg Endpoint) error {
	if i < 0 || i >= len(d.eps) {
		return fmt.Errorf("%w: endpoint %d of %d", ErrBadEndpoint, i, len(d.eps))
	}
	if cfg.Type == EpReceive {
		if cfg.SlotSize <= HeaderSize || cfg.SlotCount <= 0 {
			return fmt.Errorf("%w: receive endpoint needs slots larger than the header", ErrBadEndpoint)
		}
		if cfg.BufAddr < 0 || cfg.BufAddr+cfg.BufSize() > d.spm.Size() {
			return fmt.Errorf("%w: ringbuffer outside SPM", ErrBounds)
		}
	}
	d.eps[i] = epState{Endpoint: cfg}
	d.Stats.ConfigsApplied++
	return nil
}

// Send transmits data through send endpoint ep. If replyEP >= 0 it
// names a local receive endpoint for the direct reply and replyLabel
// the label the reply will carry. The calling process is blocked for
// the NoC injection and delivery time (the paper's software then polls
// for the reply; see WaitMsg).
func (d *DTU) Send(p *sim.Process, ep int, data []byte, replyEP int, replyLabel uint64) error {
	if ep < 0 || ep >= len(d.eps) || d.eps[ep].Type != EpSend {
		return ErrBadEndpoint
	}
	s := &d.eps[ep]
	if len(data) > s.MsgSize {
		return ErrMsgTooLarge
	}
	if s.Credits == 0 {
		d.Stats.SendsDenied++
		if tr := d.obs; tr.On() {
			d.mCreditStalls.Inc()
		}
		return ErrNoCredits
	}
	if replyEP >= 0 {
		if replyEP >= len(d.eps) || d.eps[replyEP].Type != EpReceive {
			return fmt.Errorf("%w: reply endpoint %d not a receive endpoint", ErrBadEndpoint, replyEP)
		}
	}
	if s.Credits != UnlimitedCredits {
		s.Credits--
	}
	msg := d.newMessage()
	msg.Label = s.Label
	msg.Data = append([]byte(nil), data...)
	msg.replyNode = d.node
	msg.replyEP = replyEP
	msg.replyLabel = replyLabel
	msg.creditEP = ep
	msg.Span = d.takeSpan()
	if d.overload != nil {
		msg.Deadline = d.takeDeadline()
	}
	msg.sentAt = d.eng.Now()
	d.Stats.MsgsSent++
	if d.eng.Tracing() {
		d.eng.Emit(d.traceName(), fmt.Sprintf("send ep%d -> node%d/ep%d (%d bytes, label %#x)",
			ep, s.Target, s.TargetEP, len(data), s.Label))
	}
	if tr := d.obs; tr.On() {
		tr.Emit(obs.Event{At: d.eng.Now(), PE: int32(d.node), Layer: obs.LDTU,
			Kind: obs.EvMsgSend, Span: obs.SpanID(msg.Span),
			Arg0: uint64(ep), Arg1: uint64(s.Target), Arg2: uint64(len(data))})
	}
	pkt := d.net.NewPacket()
	pkt.Src, pkt.Dst, pkt.Size, pkt.Span = d.node, s.Target, msgWireSize(len(data)), msg.Span
	pkt.Payload = &msgPacket{TargetEP: s.TargetEP, Msg: msg}
	return d.transmit(p, pkt)
}

// traceName identifies the DTU in trace output.
func (d *DTU) traceName() string { return fmt.Sprintf("dtu%d", d.node) }

// RDMA direction tags for EvXferStart/End Arg0.
const (
	xferRead  = 1
	xferWrite = 2
)

// Reply sends data back to the sender of msg, which was fetched from
// receive endpoint ep. The reply restores one credit at the sender's
// send endpoint. Each message can be replied to once; replying also
// acks the message (frees its ringbuffer slot).
func (d *DTU) Reply(p *sim.Process, ep int, msg *Message, data []byte) error {
	if ep < 0 || ep >= len(d.eps) || d.eps[ep].Type != EpReceive {
		return ErrBadEndpoint
	}
	if !msg.CanReply() {
		return ErrNoReply
	}
	if msg.replied {
		return fmt.Errorf("%w: already replied", ErrNoReply)
	}
	msg.replied = true
	d.Ack(ep, msg)
	reply := d.newMessage()
	reply.Label = msg.replyLabel
	reply.Data = append([]byte(nil), data...)
	reply.replyNode = d.node
	reply.replyEP = -1
	reply.Span = msg.Span
	reply.sentAt = d.eng.Now()
	d.Stats.Replies++
	if tr := d.obs; tr.On() {
		tr.Emit(obs.Event{At: d.eng.Now(), PE: int32(d.node), Layer: obs.LDTU,
			Kind: obs.EvReplySend, Span: obs.SpanID(reply.Span),
			Arg0: uint64(ep), Arg1: uint64(msg.replyNode), Arg2: uint64(len(data))})
	}
	pkt := d.net.NewPacket()
	pkt.Src, pkt.Dst, pkt.Size, pkt.Span = d.node, msg.replyNode, msgWireSize(len(data)), reply.Span
	pkt.Payload = &replyPacket{TargetEP: msg.replyEP, CreditEP: msg.creditEP, Msg: reply}
	return d.transmit(p, pkt)
}

// Fetch returns the oldest unfetched message at receive endpoint ep, or
// nil if none arrived. The slot stays occupied until Ack or Reply.
func (d *DTU) Fetch(ep int) *Message {
	if ep < 0 || ep >= len(d.eps) || d.eps[ep].Type != EpReceive {
		return nil
	}
	r := &d.eps[ep]
	if len(r.arrived) == 0 {
		return nil
	}
	m := r.arrived[0]
	r.arrived = r.arrived[1:]
	return m
}

// Ack frees the ringbuffer slot of a fetched message (the software
// advancing the read position).
func (d *DTU) Ack(ep int, msg *Message) {
	if msg.acked {
		return
	}
	msg.acked = true
	if ep >= 0 && ep < len(d.eps) && d.eps[ep].Type == EpReceive {
		d.eps[ep].occupied--
	}
}

// HasMsg reports whether receive endpoint ep holds an unfetched
// message.
func (d *DTU) HasMsg(ep int) bool {
	return ep >= 0 && ep < len(d.eps) && d.eps[ep].Type == EpReceive && len(d.eps[ep].arrived) > 0
}

// WaitMsg blocks until one of the given receive endpoints (all receive
// endpoints if none are named) holds a message, then fetches and
// returns it together with the endpoint index. It models the core
// polling the DTU's message-status register.
func (d *DTU) WaitMsg(p *sim.Process, eps ...int) (*Message, int) {
	for {
		if len(eps) == 0 {
			// d.eps is a slice, so this scan is in fixed endpoint order
			// (lowest endpoint wins) — deterministic, unlike a map walk.
			for i := range d.eps {
				if m := d.Fetch(i); m != nil {
					return m, i
				}
			}
		} else {
			for _, i := range eps {
				if m := d.Fetch(i); m != nil {
					return m, i
				}
			}
		}
		d.idleWait(p, d.MsgAvail)
	}
}

// WaitMsgDeadline is WaitMsg with a cycle budget: if no message arrives
// within deadline cycles it gives up and returns (nil, -1). A deadline
// of zero means no budget — the call degenerates to WaitMsg and, by the
// zero-extra-events discipline, schedules nothing.
func (d *DTU) WaitMsgDeadline(p *sim.Process, deadline sim.Time, eps ...int) (*Message, int) {
	if deadline <= 0 {
		return d.WaitMsg(p, eps...)
	}
	expired := false
	d.eng.Schedule(deadline, func() {
		// The waiter may long since have fetched its message and moved
		// on; the broadcast then only causes other parked waiters to
		// re-check their predicates, which is harmless and deterministic.
		expired = true
		d.MsgAvail.Broadcast()
	})
	for {
		for _, i := range eps {
			if m := d.Fetch(i); m != nil {
				return m, i
			}
		}
		if expired {
			return nil, -1
		}
		d.idleWait(p, d.MsgAvail)
	}
}

// WaitCredits blocks until send endpoint ep has at least one credit.
func (d *DTU) WaitCredits(p *sim.Process, ep int) error {
	if ep < 0 || ep >= len(d.eps) || d.eps[ep].Type != EpSend {
		return ErrBadEndpoint
	}
	for d.eps[ep].Credits == 0 {
		d.idleWait(p, d.CreditAvail)
	}
	return nil
}

// WaitCreditsDeadline is WaitCredits with a cycle budget: if the
// endpoint regains no credit within deadline cycles it returns
// ErrTimeout. A zero deadline degenerates to WaitCredits and schedules
// nothing.
func (d *DTU) WaitCreditsDeadline(p *sim.Process, ep int, deadline sim.Time) error {
	if deadline <= 0 {
		return d.WaitCredits(p, ep)
	}
	if ep < 0 || ep >= len(d.eps) || d.eps[ep].Type != EpSend {
		return ErrBadEndpoint
	}
	expired := false
	d.eng.Schedule(deadline, func() {
		expired = true
		d.CreditAvail.Broadcast()
	})
	for d.eps[ep].Credits == 0 {
		if expired {
			return ErrTimeout
		}
		d.idleWait(p, d.CreditAvail)
	}
	return nil
}

// Credits returns the remaining credits of send endpoint ep.
func (d *DTU) Credits(ep int) int { return d.eps[ep].Credits }

// ReadMem transfers len(buf) bytes from offset off of the memory region
// behind memory endpoint ep into buf (and conceptually into the local
// SPM). The calling process blocks until the data arrived — the
// paper's software polls a DTU register for transfer completion.
func (d *DTU) ReadMem(p *sim.Process, ep int, off int, buf []byte) error {
	m, err := d.memEP(ep, off, len(buf), PermRead)
	if err != nil {
		return err
	}
	span, t0 := d.takeSpan(), d.eng.Now()
	if tr := d.obs; tr.On() {
		tr.Emit(obs.Event{At: t0, PE: int32(d.node), Layer: obs.LDTU,
			Kind: obs.EvXferStart, Span: obs.SpanID(span),
			Arg0: xferRead, Arg1: uint64(len(buf))})
	}
	resp, err := d.doOp(p, func(op uint64) {
		pkt := d.net.NewPacket()
		pkt.Src, pkt.Dst, pkt.Size, pkt.Span = d.node, m.MemTarget, ctrlPacketSize, span
		pkt.Payload = &MemReadReq{OpID: op, Src: d.node, Addr: m.MemAddr + off, Len: len(buf)}
		d.net.Send(p, pkt)
	})
	if tr := d.obs; tr.On() {
		now := d.eng.Now()
		tr.Emit(obs.Event{At: now, PE: int32(d.node), Layer: obs.LDTU,
			Kind: obs.EvXferEnd, Span: obs.SpanID(span),
			Arg0: xferRead, Arg1: uint64(len(buf))})
		tr.Hist(obs.HXfer).Observe(uint64(now - t0))
	}
	if err != nil {
		return err
	}
	if resp.resp.Err != "" {
		return fmt.Errorf("%w: %s", ErrRemote, resp.resp.Err)
	}
	copy(buf, resp.resp.Data)
	d.Stats.MemReads++
	d.Stats.BytesRead += uint64(len(buf))
	return nil
}

// WriteMem transfers data to offset off of the memory region behind
// memory endpoint ep. It blocks until the target acknowledged the
// write.
func (d *DTU) WriteMem(p *sim.Process, ep int, off int, data []byte) error {
	m, err := d.memEP(ep, off, len(data), PermWrite)
	if err != nil {
		return err
	}
	span, t0 := d.takeSpan(), d.eng.Now()
	if tr := d.obs; tr.On() {
		tr.Emit(obs.Event{At: t0, PE: int32(d.node), Layer: obs.LDTU,
			Kind: obs.EvXferStart, Span: obs.SpanID(span),
			Arg0: xferWrite, Arg1: uint64(len(data))})
	}
	resp, err := d.doOp(p, func(op uint64) {
		pkt := d.net.NewPacket()
		pkt.Src, pkt.Dst, pkt.Size, pkt.Span = d.node, m.MemTarget, msgWireSize(len(data)), span
		pkt.Payload = &MemWriteReq{OpID: op, Src: d.node, Addr: m.MemAddr + off, Data: append([]byte(nil), data...)}
		d.net.Send(p, pkt)
	})
	if tr := d.obs; tr.On() {
		now := d.eng.Now()
		tr.Emit(obs.Event{At: now, PE: int32(d.node), Layer: obs.LDTU,
			Kind: obs.EvXferEnd, Span: obs.SpanID(span),
			Arg0: xferWrite, Arg1: uint64(len(data))})
		tr.Hist(obs.HXfer).Observe(uint64(now - t0))
	}
	if err != nil {
		return err
	}
	if resp.resp.Err != "" {
		return fmt.Errorf("%w: %s", ErrRemote, resp.resp.Err)
	}
	d.Stats.MemWrites++
	d.Stats.BytesWritten += uint64(len(data))
	return nil
}

func (d *DTU) memEP(ep, off, n int, need Perm) (*epState, error) {
	if ep < 0 || ep >= len(d.eps) || d.eps[ep].Type != EpMemory {
		return nil, ErrBadEndpoint
	}
	m := &d.eps[ep]
	if m.MemPerms&need == 0 {
		return nil, ErrPerms
	}
	if off < 0 || n < 0 || off+n > m.MemSize {
		return nil, ErrBounds
	}
	return m, nil
}

// GrantCredits restores credits at a send endpoint of the DTU at
// target without rewriting the whole endpoint: the paper's second
// refill path, "refilled by either the receiver (typically when
// replying) or an OS kernel" (§4.4.3). Privileged DTUs only.
func (d *DTU) GrantCredits(p *sim.Process, target noc.NodeID, sendEP, credits int) error {
	if !d.privileged {
		return ErrNotPrivileged
	}
	if credits <= 0 {
		return fmt.Errorf("%w: non-positive credit grant", ErrBadEndpoint)
	}
	// Credit grants are not idempotent — a duplicate would double the
	// grant — so they travel on the deduplicated reliable path rather
	// than the op-retry path.
	pkt := d.net.NewPacket()
	pkt.Src, pkt.Dst, pkt.Size = d.node, target, ctrlPacketSize
	pkt.Payload = &creditPacket{SendEP: sendEP, Credits: credits}
	return d.transmit(p, pkt)
}

// ConfigureRemote writes endpoint registers of the DTU at target. Only
// privileged DTUs may issue config packets; this is the kernel's
// mechanism for NoC-level isolation.
func (d *DTU) ConfigureRemote(p *sim.Process, target noc.NodeID, ep int, cfg Endpoint) error {
	return d.sendConfig(p, target, &ConfigReq{EP: ep, Cfg: cfg})
}

// SetPrivilegedRemote up/downgrades the privilege of the DTU at target.
// The kernel downgrades all application PEs during boot.
func (d *DTU) SetPrivilegedRemote(p *sim.Process, target noc.NodeID, privileged bool) error {
	req := &ConfigReq{SetPrivilege: -1}
	if privileged {
		req.SetPrivilege = 1
	}
	return d.sendConfig(p, target, req)
}

func (d *DTU) sendConfig(p *sim.Process, target noc.NodeID, req *ConfigReq) error {
	if !d.privileged {
		return ErrNotPrivileged
	}
	req.Src = d.node
	req.Privileged = true
	resp, err := d.doOp(p, func(op uint64) {
		req.OpID = op
		pkt := d.net.NewPacket()
		pkt.Src, pkt.Dst, pkt.Size = d.node, target, ctrlPacketSize+48 // register file on the wire
		pkt.Payload = req
		d.net.Send(p, pkt)
	})
	if err != nil {
		return err
	}
	if resp.cfg.Err != "" {
		return fmt.Errorf("%w: %s", ErrRemote, resp.cfg.Err)
	}
	return nil
}

func (d *DTU) newOp() uint64 {
	d.nextOp++
	op := d.nextOp
	d.pending[op] = &pendingOp{done: sim.NewSignal(d.eng)}
	return op
}

// waitOp blocks until the operation's response arrived or, when
// timeout is nonzero, until the timeout expired. A response that
// lands in the same cycle as the expiry wins: the caller checks the
// response fields, not the timer.
func (d *DTU) waitOp(p *sim.Process, op uint64, timeout sim.Time) *pendingOp {
	po := d.pending[op]
	expired := false
	if timeout > 0 {
		d.eng.Schedule(timeout, func() {
			if _, ok := d.pending[op]; ok && po.resp == nil && po.cfg == nil && po.probe == nil {
				expired = true
				po.done.Broadcast()
			}
		})
	}
	for po.resp == nil && po.cfg == nil && po.probe == nil && !expired {
		d.idleWait(p, po.done)
	}
	delete(d.pending, op)
	return po
}

// Deliver implements noc.Handler: it is the DTU's NoC-facing side.
// Message and response packets are handled inline (the hardware writes
// the ringbuffer / completion registers without software involvement);
// RDMA and config requests are queued for the DTU's request server.
//
// The reliability preamble runs first: corrupted packets are poisoned
// (NACKed if they were sequence-numbered, silently discarded
// otherwise — retransmit and timeouts cover the loss), hardware
// acks/nacks complete pending transmits, and sequence-numbered
// transfers are acknowledged and deduplicated before any payload
// takes effect, so a retransmission whose original arrived cannot
// deliver twice.
func (d *DTU) Deliver(pkt *noc.Packet) {
	if pkt.Corrupt {
		d.Stats.Poisoned++
		if d.eng.Tracing() {
			d.eng.Emit(d.traceName(), fmt.Sprintf("poisoned pkt from node%d seq %d", pkt.Src, pkt.Seq))
		}
		if tr := d.obs; tr.On() {
			tr.Emit(obs.Event{At: d.eng.Now(), PE: int32(d.node), Layer: obs.LDTU,
				Kind: obs.EvPoisoned, Span: obs.SpanID(pkt.Span),
				Arg0: uint64(pkt.Src), Arg1: pkt.Seq})
		}
		if pkt.Seq != 0 {
			if tr := d.obs; tr.On() {
				d.mNacks.Inc()
			}
			d.sendCtrl(pkt.Src, &nackPacket{Seq: pkt.Seq})
		}
		return
	}
	switch pl := pkt.Payload.(type) {
	case *ackPacket:
		if ps, ok := d.sends[pl.Seq]; ok {
			ps.acked = true
			ps.done.Broadcast()
		}
		return
	case *nackPacket:
		if ps, ok := d.sends[pl.Seq]; ok && !ps.acked {
			ps.nacked = true
			ps.done.Broadcast()
		}
		return
	}
	if pkt.Seq != 0 {
		// Ack every copy — the previous ack may itself have been lost —
		// but deliver only the first.
		d.sendCtrl(pkt.Src, &ackPacket{Seq: pkt.Seq})
		if d.markSeen(pkt.Src, pkt.Seq) {
			d.Stats.DupsDropped++
			return
		}
	}
	switch pl := pkt.Payload.(type) {
	case *msgPacket:
		d.receive(pl.TargetEP, pl.Msg, true)
	case *replyPacket:
		if pl.CreditEP >= 0 && pl.CreditEP < len(d.eps) {
			s := &d.eps[pl.CreditEP]
			if s.Type == EpSend && s.Credits != UnlimitedCredits {
				s.Credits++
				d.CreditAvail.Broadcast()
			}
		}
		d.receive(pl.TargetEP, pl.Msg, false)
	case *creditPacket:
		if pl.SendEP >= 0 && pl.SendEP < len(d.eps) {
			s := &d.eps[pl.SendEP]
			if s.Type == EpSend && s.Credits != UnlimitedCredits {
				s.Credits += pl.Credits
				d.CreditAvail.Broadcast()
			}
		}
	case *MemReadReq, *MemWriteReq, *ConfigReq, *probeReq:
		// The packet outlives Deliver: the request server dequeues and
		// answers it later. Take ownership from the network's pool.
		pkt.Retain = true
		d.reqs.Send(pkt)
	case *MemResp:
		if po, ok := d.pending[pl.OpID]; ok {
			po.resp = pl
			po.done.Broadcast()
		}
	case *ConfigResp:
		if po, ok := d.pending[pl.OpID]; ok {
			po.cfg = pl
			po.done.Broadcast()
		}
	case *probeResp:
		if po, ok := d.pending[pl.OpID]; ok {
			po.probe = pl
			po.done.Broadcast()
		}
	default:
		panic(fmt.Sprintf("dtu: unknown packet payload %T", pkt.Payload))
	}
}

// DeliverShard implements noc.ShardHandler: it is Deliver for the
// parallel engine, running on the shard that owns this DTU's node id.
// Only state owned by the destination DTU is touched inline (the
// poison counter, the pending-send flags — all written only under this
// node's shard or in serial context); everything with wider reach —
// trace/obs emission, control-packet sends, signal broadcasts, and the
// whole payload-delivery path — is deferred to the serial barrier in
// the exact order serial Deliver would apply it.
func (d *DTU) DeliverShard(sc *sim.ShardCtx, pkt *noc.Packet) {
	if pkt.Corrupt {
		d.Stats.Poisoned++
		src, seq, span := pkt.Src, pkt.Seq, pkt.Span
		if sc.Tracing() {
			sc.Emit(d.traceName(), fmt.Sprintf("poisoned pkt from node%d seq %d", src, seq))
		}
		if tr := d.obs; tr.On() {
			at := sc.Now()
			sc.Defer(func() {
				tr.Emit(obs.Event{At: at, PE: int32(d.node), Layer: obs.LDTU,
					Kind: obs.EvPoisoned, Span: obs.SpanID(span),
					Arg0: uint64(src), Arg1: seq})
			})
		}
		if seq != 0 {
			sc.Defer(func() {
				if tr := d.obs; tr.On() {
					d.mNacks.Inc()
				}
				d.sendCtrl(src, &nackPacket{Seq: seq})
			})
		}
		return
	}
	switch pl := pkt.Payload.(type) {
	case *ackPacket:
		if ps, ok := d.sends[pl.Seq]; ok {
			ps.acked = true
			sc.Defer(ps.done.Broadcast)
		}
		return
	case *nackPacket:
		if ps, ok := d.sends[pl.Seq]; ok && !ps.acked {
			ps.nacked = true
			sc.Defer(ps.done.Broadcast)
		}
		return
	}
	// Everything else — dedup bookkeeping, ringbuffer writes, credit
	// refills, request queuing, op completion — wakes processes or
	// crosses into shared structures; run the serial path wholesale at
	// the barrier.
	sc.Defer(func() { d.Deliver(pkt) })
}

// receive places a message into the ringbuffer of receive endpoint ep,
// writing it into the SPM like the hardware does, or drops it when the
// buffer is full or the endpoint is not receiving. isRequest separates
// request messages from replies: only requests are subject to overload
// admission — a reply's slot was budgeted by the requester's credit,
// and refusing it would strand the caller.
func (d *DTU) receive(ep int, msg *Message, isRequest bool) {
	// The drop paths recycle the message: it was never inserted into a
	// ringbuffer, the reliable layer acked and deduplicated the carrying
	// packet before receive, and no other reference exists — the message
	// is provably dead.
	if ep < 0 || ep >= len(d.eps) || d.eps[ep].Type != EpReceive {
		d.Stats.MsgsDropped++
		d.freeMessage(msg)
		return
	}
	r := &d.eps[ep]
	if d.overload != nil && isRequest && !d.admit(ep, r, msg) {
		return
	}
	if r.occupied >= r.SlotCount || HeaderSize+len(msg.Data) > r.SlotSize {
		d.Stats.MsgsDropped++
		d.freeMessage(msg)
		return
	}
	slot := r.nextSlot
	// Find a free slot; occupied < SlotCount guarantees one exists.
	r.nextSlot = (r.nextSlot + 1) % r.SlotCount
	msg.slot = slot
	if err := d.spm.Write(r.BufAddr+slot*r.SlotSize+HeaderSize, msg.Data); err != nil {
		d.Stats.MsgsDropped++
		d.freeMessage(msg)
		return
	}
	r.occupied++
	r.arrived = append(r.arrived, msg)
	d.Stats.MsgsReceived++
	if d.eng.Tracing() {
		d.eng.Emit(d.traceName(), fmt.Sprintf("recv ep%d slot%d (%d bytes, label %#x)",
			ep, slot, len(msg.Data), msg.Label))
	}
	if tr := d.obs; tr.On() {
		now := d.eng.Now()
		tr.Emit(obs.Event{At: now, PE: int32(d.node), Layer: obs.LDTU,
			Kind: obs.EvMsgRecv, Span: obs.SpanID(msg.Span),
			Arg0: uint64(ep), Arg1: uint64(len(msg.Data)), Arg2: msg.Label})
		if now >= msg.sentAt {
			tr.Hist(obs.HMsgLatency).Observe(uint64(now - msg.sentAt))
		}
	}
	d.MsgAvail.Broadcast()
}

// serve is the DTU's internal engine handling incoming RDMA accesses to
// the local SPM, remote configuration writes, and liveness probes.
func (d *DTU) serve(p *sim.Process) {
	p.SetDaemon()
	for {
		pkt := d.reqs.Recv(p)
		switch req := pkt.Payload.(type) {
		case *MemReadReq:
			buf := make([]byte, req.Len)
			resp := &MemResp{OpID: req.OpID}
			if err := d.spm.Read(req.Addr, buf); err != nil {
				resp.Err = err.Error()
			} else {
				resp.Data = buf
			}
			out := d.net.NewPacket()
			out.Src, out.Dst, out.Size = d.node, req.Src, msgWireSize(len(resp.Data))
			out.Payload = resp
			d.net.FreePacket(pkt)
			d.net.Send(p, out)
		case *MemWriteReq:
			resp := &MemResp{OpID: req.OpID}
			if err := d.spm.Write(req.Addr, req.Data); err != nil {
				resp.Err = err.Error()
			}
			out := d.net.NewPacket()
			out.Src, out.Dst, out.Size = d.node, req.Src, ctrlPacketSize
			out.Payload = resp
			d.net.FreePacket(pkt)
			d.net.Send(p, out)
		case *ConfigReq:
			resp := &ConfigResp{OpID: req.OpID}
			if !req.Privileged {
				resp.Err = ErrNotPrivileged.Error()
			} else if req.SetPrivilege != 0 {
				d.privileged = req.SetPrivilege > 0
			} else if err := d.applyConfig(req.EP, req.Cfg); err != nil {
				resp.Err = err.Error()
			} else {
				if d.eng.Tracing() {
					d.eng.Emit(d.traceName(), fmt.Sprintf("config ep%d <- node%d (%s)",
						req.EP, req.Src, req.Cfg.Type))
				}
				if tr := d.obs; tr.On() {
					tr.Emit(obs.Event{At: d.eng.Now(), PE: int32(d.node), Layer: obs.LDTU,
						Kind: obs.EvConfig, Arg0: uint64(req.EP), Arg1: uint64(req.Src)})
				}
			}
			out := d.net.NewPacket()
			out.Src, out.Dst, out.Size = d.node, req.Src, ctrlPacketSize
			out.Payload = resp
			d.net.FreePacket(pkt)
			d.net.Send(p, out)
		case *probeReq:
			// The DTU answers for its core: it is a separate hardware
			// block and keeps serving the NoC after a core crash.
			crashed := d.coreStatus != nil && d.coreStatus()
			out := d.net.NewPacket()
			out.Src, out.Dst, out.Size = d.node, req.Src, ctrlPacketSize
			out.Payload = &probeResp{OpID: req.OpID, Crashed: crashed}
			d.net.FreePacket(pkt)
			d.net.Send(p, out)
		}
	}
}
