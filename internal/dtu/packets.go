package dtu

import "repro/internal/noc"

// Wire payload types. Besides DTU-to-DTU traffic, the memory request
// and response types are also understood by the DRAM tile (package
// tile), which speaks the same RDMA protocol as a DTU-fronted SPM.

// msgPacket carries a message to a receive endpoint.
type msgPacket struct {
	TargetEP int
	Msg      *Message
}

// replyPacket carries a reply back to the original sender's receive
// endpoint and restores one credit at its send endpoint.
type replyPacket struct {
	TargetEP int
	CreditEP int
	Msg      *Message
}

// creditPacket restores credits at a send endpoint without carrying a
// message (used when a receiver acks without replying).
type creditPacket struct {
	SendEP  int
	Credits int
}

// MemReadReq asks the target to return Len bytes starting at Addr.
type MemReadReq struct {
	OpID uint64
	Src  noc.NodeID
	Addr int
	Len  int
}

// MemWriteReq asks the target to store Data at Addr.
type MemWriteReq struct {
	OpID uint64
	Src  noc.NodeID
	Addr int
	Data []byte
}

// MemResp answers a MemReadReq (with Data) or a MemWriteReq (empty
// Data). A non-empty Err reports an out-of-bounds access.
type MemResp struct {
	OpID uint64
	//m3vet:resolve sharedstate message filled once by the serving tile, then carried to the requester
	Data []byte
	//m3vet:resolve sharedstate message filled once by the serving tile, then carried to the requester
	Err string
}

// ConfigReq remotely writes an endpoint's registers. Only packets from
// privileged DTUs are honoured; this is how a kernel PE exercises
// NoC-level control over application PEs.
type ConfigReq struct {
	//m3vet:resolve sharedstate message filled once by the requesting kernel, then carried to the target DTU
	OpID uint64
	//m3vet:resolve sharedstate message filled once by the requesting kernel, then carried to the target DTU
	Src noc.NodeID
	//m3vet:resolve sharedstate message filled once by the requesting kernel, then carried to the target DTU
	Privileged bool

	EP  int
	Cfg Endpoint

	// SetPrivilege, when non-zero, up/downgrades the target DTU's
	// privilege instead of writing an endpoint: +1 upgrades, -1
	// downgrades (the boot-time downgrade of application PEs).
	//m3vet:resolve sharedstate message filled once by the requesting kernel, then carried to the target DTU
	SetPrivilege int
}

// ConfigResp acknowledges a ConfigReq.
type ConfigResp struct {
	OpID uint64
	//m3vet:resolve sharedstate message filled once by the target DTU, then carried back to the requester
	Err string
}

// ackPacket is the hardware acknowledgement of a sequence-numbered
// transfer; nackPacket asks for an immediate retransmission after a
// corrupted copy arrived. Both are fire-and-forget (their own Seq is
// zero): a lost or corrupted ack/nack is covered by the sender's
// timeout-driven retransmit and the receiver's deduplication.
type ackPacket struct{ Seq uint64 }

type nackPacket struct{ Seq uint64 }

// probeReq asks a DTU whether its attached core is alive; probeResp is
// its autonomous answer. This is the kernel's death-detection channel
// (the DTU "error report" of a PE whose core can no longer speak for
// itself).
type probeReq struct {
	OpID uint64
	Src  noc.NodeID
}

type probeResp struct {
	OpID    uint64
	Crashed bool
}

// wire size helpers: requests and acks are small control packets.
const ctrlPacketSize = 16

func msgWireSize(payload int) int { return HeaderSize + payload }
