package dtu

import (
	"errors"
	"testing"

	"repro/internal/noc"
	"repro/internal/sim"
)

// newFaultRig is newRig with reliability armed on both DTUs and a
// scriptable per-packet fault verdict. The verdict sees every copy of
// every packet on every hop (the 2x1 mesh has a single hop), so tests
// can drop or corrupt exactly the copies they mean to.
func newFaultRig(t *testing.T, cfg FaultConfig, verdict func(pkt *noc.Packet) noc.LinkFault) *rig {
	t.Helper()
	r := newRig(t)
	c0, c1 := cfg, cfg
	r.d0.EnableFaults(&c0)
	r.d1.EnableFaults(&c1)
	if verdict != nil {
		r.net.SetFaultHook(func(from, to noc.NodeID, pkt *noc.Packet) noc.LinkFault {
			return verdict(pkt)
		})
	}
	return r
}

// exchange runs the standard ping/pong over the rig's channel and
// checks the reply came back intact.
func exchange(t *testing.T, r *rig) {
	t.Helper()
	r.channel(t, 4)
	r.eng.Spawn("receiver", func(p *sim.Process) {
		msg, _ := r.d1.WaitMsg(p, 0)
		if string(msg.Data) != "ping" {
			t.Errorf("data = %q", msg.Data)
		}
		if err := r.d1.Reply(p, 0, msg, []byte("pong")); err != nil {
			t.Error(err)
		}
	})
	r.eng.Spawn("sender", func(p *sim.Process) {
		if err := r.d0.Send(p, 1, []byte("ping"), 2, 42); err != nil {
			t.Error(err)
		}
		msg, _ := r.d0.WaitMsg(p, 2)
		if string(msg.Data) != "pong" {
			t.Errorf("reply = %q", msg.Data)
		}
		r.d0.Ack(2, msg)
	})
	r.eng.Run()
}

func TestTransmitRetriesAfterDrop(t *testing.T) {
	// The first copy of every message-class transfer is dropped; the
	// timeout-driven retransmit must still deliver each exactly once.
	seen := map[seqKey]bool{}
	r := newFaultRig(t, FaultConfig{Timeout: 100}, func(pkt *noc.Packet) noc.LinkFault {
		key := seqKey{src: pkt.Src, seq: pkt.Seq}
		if pkt.Seq != 0 && !seen[key] {
			seen[key] = true
			return noc.LinkDrop
		}
		return noc.LinkOK
	})
	exchange(t, r)
	if r.d0.Stats.Retransmits == 0 || r.d1.Stats.Retransmits == 0 {
		t.Errorf("retransmits = %d/%d, want both > 0", r.d0.Stats.Retransmits, r.d1.Stats.Retransmits)
	}
	if r.d1.Stats.MsgsReceived != 1 || r.d0.Stats.MsgsReceived != 1 {
		t.Errorf("delivered = %d/%d, want exactly one each way", r.d1.Stats.MsgsReceived, r.d0.Stats.MsgsReceived)
	}
	if r.d0.Stats.SendsAborted != 0 || r.d1.Stats.SendsAborted != 0 {
		t.Errorf("aborts = %d/%d, want none", r.d0.Stats.SendsAborted, r.d1.Stats.SendsAborted)
	}
}

func TestCorruptCopyNacksAndRetransmits(t *testing.T) {
	// One corrupted copy: the receiver poisons it and NACKs, and the
	// sender retransmits immediately instead of waiting out the timeout.
	corrupted := false
	r := newFaultRig(t, FaultConfig{}, func(pkt *noc.Packet) noc.LinkFault {
		if _, ok := pkt.Payload.(*msgPacket); ok && !corrupted {
			corrupted = true
			return noc.LinkCorrupt
		}
		return noc.LinkOK
	})
	exchange(t, r)
	if r.d1.Stats.Poisoned != 1 {
		t.Errorf("poisoned = %d, want 1", r.d1.Stats.Poisoned)
	}
	if r.d0.Stats.Retransmits != 1 {
		t.Errorf("retransmits = %d, want 1", r.d0.Stats.Retransmits)
	}
	if r.d1.Stats.MsgsReceived != 1 {
		t.Errorf("delivered = %d, want exactly once", r.d1.Stats.MsgsReceived)
	}
}

func TestTransmitAbortsAfterRetryBudget(t *testing.T) {
	// A fully partitioned receiver: every data copy is dropped, so the
	// send must abort with ErrTimeout after MaxRetries+1 attempts
	// instead of blocking forever.
	r := newFaultRig(t, FaultConfig{Timeout: 50, MaxRetries: 3}, func(pkt *noc.Packet) noc.LinkFault {
		if _, ok := pkt.Payload.(*msgPacket); ok {
			return noc.LinkDrop
		}
		return noc.LinkOK
	})
	r.channel(t, 4)
	r.eng.Spawn("sender", func(p *sim.Process) {
		if err := r.d0.Send(p, 1, []byte("void"), -1, 0); !errors.Is(err, ErrTimeout) {
			t.Errorf("err = %v, want ErrTimeout", err)
		}
	})
	r.eng.Run()
	if r.d0.Stats.SendsAborted != 1 {
		t.Errorf("aborts = %d, want 1", r.d0.Stats.SendsAborted)
	}
	if r.d0.Stats.Retransmits != 3 {
		t.Errorf("retransmits = %d, want MaxRetries", r.d0.Stats.Retransmits)
	}
	if r.d1.Stats.MsgsReceived != 0 {
		t.Errorf("delivered = %d, want none", r.d1.Stats.MsgsReceived)
	}
}

func TestGrantCreditsRefillUnderRetry(t *testing.T) {
	// Credit exhaustion and the kernel-style GrantCredits refill under
	// the worst retry weather: the first grant copy is dropped (timeout
	// retransmit) and the ack of the copy that did arrive is dropped too
	// (one more retransmit, which the receiver must deduplicate so the
	// grant is applied exactly once).
	dropCredit, dropAck := true, true
	r := newFaultRig(t, FaultConfig{Timeout: 100}, func(pkt *noc.Packet) noc.LinkFault {
		switch pkt.Payload.(type) {
		case *creditPacket:
			if dropCredit {
				dropCredit = false
				return noc.LinkDrop
			}
		case *ackPacket:
			// Node 0 only acks transfers from node 1, and the only such
			// transfer in this test is the credit grant.
			if pkt.Src == 0 && dropAck {
				dropAck = false
				return noc.LinkDrop
			}
		}
		return noc.LinkOK
	})
	r.channel(t, 1)
	r.eng.Spawn("receiver", func(p *sim.Process) {
		msg, _ := r.d1.WaitMsg(p, 0)
		r.d1.Ack(0, msg)
		// Acking without replying restores nothing; the privileged side
		// refills the sender explicitly (§4.4.3's second refill path).
		if err := r.d1.GrantCredits(p, 0, 1, 1); err != nil {
			t.Error(err)
		}
		msg, _ = r.d1.WaitMsg(p, 0)
		r.d1.Ack(0, msg)
	})
	r.eng.Spawn("sender", func(p *sim.Process) {
		if err := r.d0.Send(p, 1, []byte("first"), -1, 0); err != nil {
			t.Error(err)
		}
		if err := r.d0.Send(p, 1, []byte("starved"), -1, 0); !errors.Is(err, ErrNoCredits) {
			t.Errorf("err = %v, want ErrNoCredits", err)
		}
		if err := r.d0.WaitCredits(p, 1); err != nil {
			t.Error(err)
		}
		if err := r.d0.Send(p, 1, []byte("second"), -1, 0); err != nil {
			t.Error(err)
		}
	})
	r.eng.Run()
	if r.d0.Stats.SendsDenied != 1 {
		t.Errorf("denied = %d, want 1", r.d0.Stats.SendsDenied)
	}
	if r.d1.Stats.Retransmits < 2 {
		t.Errorf("grant retransmits = %d, want >= 2 (lost copy + lost ack)", r.d1.Stats.Retransmits)
	}
	if r.d0.Stats.DupsDropped != 1 {
		t.Errorf("dups dropped = %d, want 1", r.d0.Stats.DupsDropped)
	}
	if got := r.d0.Credits(1); got != 0 {
		t.Errorf("credits = %d, want 0 (granted once, spent once)", got)
	}
	if r.d1.Stats.MsgsReceived != 2 {
		t.Errorf("delivered = %d, want 2", r.d1.Stats.MsgsReceived)
	}
}

func TestReadMemRetriesLostRequest(t *testing.T) {
	// RDMA reads ride the op-retry path: a lost request times out and is
	// reissued under a fresh op id, and the caller never sees the loss.
	dropReq := true
	r := newFaultRig(t, FaultConfig{Timeout: 100}, func(pkt *noc.Packet) noc.LinkFault {
		if _, ok := pkt.Payload.(*MemReadReq); ok && dropReq {
			dropReq = false
			return noc.LinkDrop
		}
		return noc.LinkOK
	})
	if err := r.d0.Configure(3, Endpoint{
		Type: EpMemory, MemTarget: 1, MemAddr: 1024, MemSize: 1024, MemPerms: PermRW,
	}); err != nil {
		t.Fatal(err)
	}
	r.eng.Spawn("rdma", func(p *sim.Process) {
		if err := r.d0.WriteMem(p, 3, 0, []byte("durable")); err != nil {
			t.Error(err)
		}
		buf := make([]byte, 7)
		if err := r.d0.ReadMem(p, 3, 0, buf); err != nil {
			t.Error(err)
		}
		if string(buf) != "durable" {
			t.Errorf("read = %q", buf)
		}
	})
	r.eng.Run()
	if r.d0.Stats.OpTimeouts != 1 {
		t.Errorf("op timeouts = %d, want 1", r.d0.Stats.OpTimeouts)
	}
	if r.d0.Stats.SendsAborted != 0 {
		t.Errorf("aborts = %d, want none", r.d0.Stats.SendsAborted)
	}
}

func TestProbeUnreachablePEReportsTimeout(t *testing.T) {
	// A fully unreachable PE answers no probe; the prober must get a
	// clean ErrTimeout — that is the kernel's "dead or partitioned"
	// signal — rather than block forever.
	r := newFaultRig(t, FaultConfig{Timeout: 50, MaxRetries: 2}, func(pkt *noc.Packet) noc.LinkFault {
		if _, ok := pkt.Payload.(*probeReq); ok {
			return noc.LinkDrop
		}
		return noc.LinkOK
	})
	r.eng.Spawn("prober", func(p *sim.Process) {
		if _, err := r.d0.Probe(p, 1); !errors.Is(err, ErrTimeout) {
			t.Errorf("err = %v, want ErrTimeout", err)
		}
	})
	r.eng.Run()
	if r.d0.Stats.OpTimeouts != 3 {
		t.Errorf("op timeouts = %d, want MaxRetries+1", r.d0.Stats.OpTimeouts)
	}
}

func TestProbeReportsCrashedCore(t *testing.T) {
	// The DTU answers probes autonomously from its core-status line, so
	// a crashed core is visible without any software on the probed PE.
	r := newFaultRig(t, FaultConfig{}, nil)
	coreDead := false
	r.d1.SetCoreStatus(func() bool { return coreDead })
	r.eng.Spawn("prober", func(p *sim.Process) {
		crashed, err := r.d0.Probe(p, 1)
		if err != nil || crashed {
			t.Errorf("live probe = (%v, %v), want (false, nil)", crashed, err)
		}
		coreDead = true
		crashed, err = r.d0.Probe(p, 1)
		if err != nil || !crashed {
			t.Errorf("dead probe = (%v, %v), want (true, nil)", crashed, err)
		}
	})
	r.eng.Run()
}
