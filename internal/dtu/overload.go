package dtu

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/sim"
)

// OverloadConfig switches a DTU into overload-controlled operation
// (docs/OVERLOAD.md): request messages carry propagated deadlines that
// are checked against the sim clock at the receiving DTU *before* the
// message enters a ringbuffer, and receive endpoints refuse — rather
// than queue — requests past a depth watermark. Both rejection paths
// answer with an immediate fast-fail reply carrying an overload flag,
// so the sender learns in one round trip instead of burning its full
// deadline.
//
// Without it — the default — the DTU behaves exactly as before: not a
// single extra event is scheduled and no metric is registered, so
// overload-off runs stay bit-identical to the pre-overload simulator
// (enforced by the equivalence harness). Unlike the fault hooks, the
// overload knobs are harness-level policy, armed by bench options or
// kernel configuration rather than through internal/fault.
type OverloadConfig struct {
	// RxWatermark, when > 0, is the occupied-slot count at or above
	// which a receive endpoint refuses further *request* messages
	// (replies always land: the slot for them was budgeted by the
	// sender's credit). This turns the paper's credit budget from a
	// correctness bound into an admission decision.
	RxWatermark int
	// CallDeadline, when nonzero, is the cycle budget software on this
	// PE should apply to service calls; libm3 reads it via
	// DTU.CallDeadline, and the DTU stamps it into request headers so
	// every downstream hop can drop expired work early.
	CallDeadline sim.Time
}

// EnableOverload arms the overload configuration. Passing nil disarms.
func (d *DTU) EnableOverload(cfg *OverloadConfig) { d.overload = cfg }

// Overloaded reports whether overload control is armed on this DTU.
func (d *DTU) Overloaded() bool { return d.overload != nil }

// Message overload flags, carried from the refusing DTU back to the
// caller in the fast-fail reply header.
const (
	// msgFlagOverload marks a fast-fail reply for a request refused by
	// the admission watermark (the caller sees kif.ErrOverload).
	msgFlagOverload uint8 = 1 << iota
	// msgFlagExpired marks a fast-fail reply for a request whose
	// propagated deadline expired in flight (the caller sees a
	// timeout — it counts as a deadline miss for breaker purposes).
	msgFlagExpired
)

// Overloaded reports whether this message is a fast-fail reply from an
// admission refusal.
func (m *Message) Overloaded() bool { return m.flags&msgFlagOverload != 0 }

// Expired reports whether this message is a fast-fail reply for a
// request dropped because its deadline expired in flight.
func (m *Message) Expired() bool { return m.flags&msgFlagExpired != 0 }

// StampDeadline arms the deadline register: the next message this DTU
// builds carries the budget in its header, to be decremented by the
// sim clock at each hop (the header stores the remaining budget
// relative to sentAt; receivers compare now-sentAt against it).
// Software arms it at the root of a bounded call, exactly like the
// span register.
func (d *DTU) StampDeadline(deadline sim.Time) {
	if d.overload != nil {
		d.curDeadline = deadline
	}
}

// takeDeadline consumes the deadline register.
func (d *DTU) takeDeadline() sim.Time {
	t := d.curDeadline
	d.curDeadline = 0
	return t
}

// Metric names of the overload subsystem. The counters are registered
// lazily on their first increment — an armed-but-idle or disarmed run
// keeps its metrics snapshot bit-identical to seed.
const (
	// MDeadlineDrops counts requests dropped at this DTU because their
	// propagated deadline expired in flight.
	MDeadlineDrops = "dtu_deadline_drops_total"
	// MAdmitRefusals counts requests refused by this DTU's admission
	// watermark.
	MAdmitRefusals = "dtu_admit_refusals_total"
)

func (d *DTU) deadlineDropCounter() *obs.Counter {
	if d.mDeadlineDrops == nil && d.obs.On() {
		d.mDeadlineDrops = d.obs.Metrics().Counter(MDeadlineDrops, int(d.node))
	}
	return d.mDeadlineDrops
}

func (d *DTU) admitRefusalCounter() *obs.Counter {
	if d.mAdmitRefusals == nil && d.obs.On() {
		d.mAdmitRefusals = d.obs.Metrics().Counter(MAdmitRefusals, int(d.node))
	}
	return d.mAdmitRefusals
}

// admit is the overload preamble of receive(), run only for request
// messages on an overload-armed DTU, before the message touches a
// ringbuffer. It returns false after refusing (and recycling) the
// message. Expiry is checked first: an expired request is dead whatever
// the queue looks like, and counting it as a deadline drop (not an
// admission refusal) keeps the two signals separable in the metrics.
func (d *DTU) admit(ep int, r *epState, msg *Message) bool {
	now := d.eng.Now()
	if msg.Deadline > 0 && now >= msg.sentAt && now-msg.sentAt >= msg.Deadline {
		d.Stats.DeadlineDrops++
		if tr := d.obs; tr.On() {
			d.deadlineDropCounter().Inc()
			tr.Emit(obs.Event{At: now, PE: int32(d.node), Layer: obs.LDTU,
				Kind: obs.EvDeadlineDrop, Span: obs.SpanID(msg.Span),
				Arg0: uint64(ep), Arg1: uint64(msg.replyNode),
				Arg2: uint64(now - msg.sentAt - msg.Deadline)})
		}
		if d.eng.Tracing() {
			d.eng.Emit(d.traceName(), fmt.Sprintf("deadline-drop ep%d from node%d (%d cycles overdue)",
				ep, msg.replyNode, now-msg.sentAt-msg.Deadline))
		}
		d.fastFail(msg, msgFlagExpired)
		return false
	}
	if d.overload.RxWatermark > 0 && r.occupied >= d.overload.RxWatermark {
		d.Stats.OverloadRefused++
		if tr := d.obs; tr.On() {
			d.admitRefusalCounter().Inc()
			tr.Emit(obs.Event{At: now, PE: int32(d.node), Layer: obs.LDTU,
				Kind: obs.EvAdmitRefuse, Span: obs.SpanID(msg.Span),
				Arg0: uint64(ep), Arg1: uint64(msg.replyNode), Arg2: uint64(r.occupied)})
		}
		if d.eng.Tracing() {
			d.eng.Emit(d.traceName(), fmt.Sprintf("admit-refuse ep%d from node%d (%d occupied)",
				ep, msg.replyNode, r.occupied))
		}
		d.fastFail(msg, msgFlagOverload)
		return false
	}
	return true
}

// fastFail answers a refused request with an immediate flagged reply —
// the overload NACK — restoring the sender's credit so its send gate
// does not leak, then recycles the request (it never entered a
// ringbuffer; the reliable layer acked and deduplicated its packet
// before receive, so no other reference exists). The reply is a
// fire-and-forget control-size packet from engine context, like
// ack/nack: if it is lost under fault injection, the sender's own
// deadline covers the silence.
func (d *DTU) fastFail(msg *Message, flag uint8) {
	if msg.replyEP < 0 {
		// No reply channel: the refusal can only be silent. The sender's
		// deadline (it armed one — the message carried it) bounds its wait.
		d.freeMessage(msg)
		return
	}
	reply := d.newMessage()
	reply.Label = msg.replyLabel
	reply.flags = flag
	reply.replyNode = d.node
	reply.replyEP = -1
	reply.Span = msg.Span
	reply.sentAt = d.eng.Now()
	pkt := d.net.NewPacket()
	pkt.Src, pkt.Dst, pkt.Size, pkt.Span = d.node, msg.replyNode, ctrlPacketSize, reply.Span
	pkt.Payload = &replyPacket{TargetEP: msg.replyEP, CreditEP: msg.creditEP, Msg: reply}
	d.freeMessage(msg)
	d.net.SendAsync(pkt)
}
