package dtu

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

func TestKernelCreditRefill(t *testing.T) {
	r := newRig(t)
	// One-credit channel, no reply path: after one send the channel is
	// exhausted until a "kernel" (the still-privileged d1) grants more.
	if err := r.d1.Configure(0, Endpoint{
		Type: EpReceive, BufAddr: 0, SlotSize: 64 + HeaderSize, SlotCount: 4,
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.d0.Configure(1, Endpoint{
		Type: EpSend, Target: 1, TargetEP: 0, Credits: 1, MsgSize: 64,
	}); err != nil {
		t.Fatal(err)
	}
	r.eng.Spawn("sender", func(p *sim.Process) {
		if err := r.d0.Send(p, 1, []byte("a"), -1, 0); err != nil {
			t.Error(err)
		}
		if err := r.d0.Send(p, 1, []byte("b"), -1, 0); !errors.Is(err, ErrNoCredits) {
			t.Errorf("second send: %v, want ErrNoCredits", err)
		}
		if err := r.d0.WaitCredits(p, 1); err != nil {
			t.Error(err)
		}
		if err := r.d0.Send(p, 1, []byte("b"), -1, 0); err != nil {
			t.Errorf("send after refill: %v", err)
		}
	})
	r.eng.Spawn("kernel", func(p *sim.Process) {
		p.Sleep(500)
		if err := r.d1.GrantCredits(p, 0, 1, 2); err != nil {
			t.Error(err)
		}
	})
	r.eng.Run()
	if got := r.d0.Credits(1); got != 1 {
		t.Fatalf("credits = %d, want 1 (granted 2, spent 1)", got)
	}
	if r.d1.Stats.MsgsReceived != 2 {
		t.Fatalf("received = %d, want 2", r.d1.Stats.MsgsReceived)
	}
}

func TestGrantCreditsRequiresPrivilege(t *testing.T) {
	r := newRig(t)
	r.eng.Spawn("setup", func(p *sim.Process) {
		if err := r.d0.SetPrivilegedRemote(p, 1, false); err != nil {
			t.Error(err)
		}
		if err := r.d1.GrantCredits(p, 0, 1, 1); !errors.Is(err, ErrNotPrivileged) {
			t.Errorf("grant: %v, want ErrNotPrivileged", err)
		}
		if err := r.d0.GrantCredits(p, 1, 1, 0); !errors.Is(err, ErrBadEndpoint) {
			t.Errorf("zero grant: %v, want ErrBadEndpoint", err)
		}
	})
	r.eng.Run()
}

func TestGrantCreditsIgnoredOnNonSendEP(t *testing.T) {
	r := newRig(t)
	if err := r.d1.Configure(0, Endpoint{
		Type: EpReceive, BufAddr: 0, SlotSize: 64 + HeaderSize, SlotCount: 2,
	}); err != nil {
		t.Fatal(err)
	}
	r.eng.Spawn("kernel", func(p *sim.Process) {
		// Granting to a receive endpoint or an invalid index must be
		// harmless (hardware ignores it).
		if err := r.d0.GrantCredits(p, 1, 0, 3); err != nil {
			t.Error(err)
		}
		if err := r.d0.GrantCredits(p, 1, 99, 3); err != nil {
			t.Error(err)
		}
	})
	r.eng.Run()
	if r.d1.EP(0).Type != EpReceive {
		t.Fatal("receive endpoint corrupted by credit grant")
	}
}

func TestUnlimitedCreditsUnaffectedByGrant(t *testing.T) {
	r := newRig(t)
	if err := r.d1.Configure(0, Endpoint{
		Type: EpReceive, BufAddr: 0, SlotSize: 64 + HeaderSize, SlotCount: 2,
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.d0.Configure(1, Endpoint{
		Type: EpSend, Target: 1, TargetEP: 0, Credits: UnlimitedCredits, MsgSize: 64,
	}); err != nil {
		t.Fatal(err)
	}
	r.eng.Spawn("kernel", func(p *sim.Process) {
		if err := r.d1.GrantCredits(p, 0, 1, 5); err != nil {
			t.Error(err)
		}
	})
	r.eng.Run()
	if got := r.d0.Credits(1); got != UnlimitedCredits {
		t.Fatalf("credits = %d, want unlimited", got)
	}
}
