package dtu

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sim"
)

// rig is a 2-PE test platform (nodes 0 and 1 on a 2x1 mesh) without the
// tile layer, so the dtu package is tested in isolation.
type rig struct {
	eng  *sim.Engine
	net  *noc.Network
	spm0 *mem.SPM
	spm1 *mem.SPM
	d0   *DTU
	d1   *DTU
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := sim.NewEngine()
	net := noc.New(eng, noc.Config{Width: 2, Height: 1})
	spm0 := mem.NewSPM(64 << 10)
	spm1 := mem.NewSPM(64 << 10)
	return &rig{
		eng:  eng,
		net:  net,
		spm0: spm0,
		spm1: spm1,
		d0:   New(eng, net, 0, spm0, 8),
		d1:   New(eng, net, 1, spm1, 8),
	}
}

// channel configures a message channel d0(ep1, send) -> d1(ep0,
// receive) with the given credits, plus a reply path back to d0's ep2.
func (r *rig) channel(t *testing.T, credits int) {
	t.Helper()
	if err := r.d1.Configure(0, Endpoint{
		Type: EpReceive, BufAddr: 0, SlotSize: 256 + HeaderSize, SlotCount: 4,
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.d0.Configure(1, Endpoint{
		Type: EpSend, Target: 1, TargetEP: 0, Label: 0xC0FFEE, Credits: credits, MsgSize: 256,
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.d0.Configure(2, Endpoint{
		Type: EpReceive, BufAddr: 8192, SlotSize: 256 + HeaderSize, SlotCount: 2,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSendReceiveReply(t *testing.T) {
	r := newRig(t)
	r.channel(t, 4)
	var reply []byte
	r.eng.Spawn("receiver", func(p *sim.Process) {
		msg, ep := r.d1.WaitMsg(p, 0)
		if ep != 0 {
			t.Errorf("ep = %d", ep)
		}
		if msg.Label != 0xC0FFEE {
			t.Errorf("label = %#x, want 0xC0FFEE", msg.Label)
		}
		if string(msg.Data) != "ping" {
			t.Errorf("data = %q", msg.Data)
		}
		if !msg.CanReply() {
			t.Error("message should permit a reply")
		}
		if err := r.d1.Reply(p, 0, msg, []byte("pong")); err != nil {
			t.Error(err)
		}
	})
	r.eng.Spawn("sender", func(p *sim.Process) {
		if err := r.d0.Send(p, 1, []byte("ping"), 2, 42); err != nil {
			t.Error(err)
		}
		msg, _ := r.d0.WaitMsg(p, 2)
		if msg.Label != 42 {
			t.Errorf("reply label = %d, want 42", msg.Label)
		}
		reply = msg.Data
		r.d0.Ack(2, msg)
	})
	r.eng.Run()
	if string(reply) != "pong" {
		t.Fatalf("reply = %q, want pong", reply)
	}
}

func TestCreditsConsumeAndRestore(t *testing.T) {
	r := newRig(t)
	r.channel(t, 2)
	r.eng.Spawn("receiver", func(p *sim.Process) {
		for i := 0; i < 3; i++ {
			msg, _ := r.d1.WaitMsg(p, 0)
			if err := r.d1.Reply(p, 0, msg, []byte("ok")); err != nil {
				t.Error(err)
			}
		}
	})
	r.eng.Spawn("sender", func(p *sim.Process) {
		if err := r.d0.Send(p, 1, []byte("a"), 2, 0); err != nil {
			t.Error(err)
		}
		if err := r.d0.Send(p, 1, []byte("b"), 2, 0); err != nil {
			t.Error(err)
		}
		if got := r.d0.Credits(1); got != 0 {
			t.Errorf("credits = %d, want 0", got)
		}
		// Third send must be denied until a reply restores a credit.
		if err := r.d0.Send(p, 1, []byte("c"), 2, 0); !errors.Is(err, ErrNoCredits) {
			t.Errorf("err = %v, want ErrNoCredits", err)
		}
		if err := r.d0.WaitCredits(p, 1); err != nil {
			t.Error(err)
		}
		if err := r.d0.Send(p, 1, []byte("c"), 2, 0); err != nil {
			t.Error(err)
		}
		// Drain replies.
		for i := 0; i < 3; i++ {
			m, _ := r.d0.WaitMsg(p, 2)
			r.d0.Ack(2, m)
		}
	})
	r.eng.Run()
	if r.d0.Stats.SendsDenied != 1 {
		t.Fatalf("SendsDenied = %d, want 1", r.d0.Stats.SendsDenied)
	}
	if got := r.d0.Credits(1); got != 2 {
		t.Fatalf("final credits = %d, want 2", got)
	}
}

func TestRingbufferOverrunDrops(t *testing.T) {
	r := newRig(t)
	// 2 slots, 4 credits: the kernel violated the paper's rule of not
	// handing out more credits than buffer space — messages get dropped.
	if err := r.d1.Configure(0, Endpoint{Type: EpReceive, BufAddr: 0, SlotSize: 64 + HeaderSize, SlotCount: 2}); err != nil {
		t.Fatal(err)
	}
	if err := r.d0.Configure(1, Endpoint{Type: EpSend, Target: 1, TargetEP: 0, Credits: 4, MsgSize: 64}); err != nil {
		t.Fatal(err)
	}
	r.eng.Spawn("sender", func(p *sim.Process) {
		for i := 0; i < 4; i++ {
			if err := r.d0.Send(p, 1, []byte{byte(i)}, -1, 0); err != nil {
				t.Error(err)
			}
		}
	})
	r.eng.Run()
	if r.d1.Stats.MsgsReceived != 2 {
		t.Fatalf("received = %d, want 2", r.d1.Stats.MsgsReceived)
	}
	if r.d1.Stats.MsgsDropped != 2 {
		t.Fatalf("dropped = %d, want 2", r.d1.Stats.MsgsDropped)
	}
}

func TestAckFreesSlot(t *testing.T) {
	r := newRig(t)
	r.channel(t, UnlimitedCredits)
	r.eng.Spawn("receiver", func(p *sim.Process) {
		for i := 0; i < 8; i++ {
			msg, _ := r.d1.WaitMsg(p, 0)
			r.d1.Ack(0, msg)
		}
	})
	r.eng.Spawn("sender", func(p *sim.Process) {
		for i := 0; i < 8; i++ {
			if err := r.d0.Send(p, 1, []byte{byte(i)}, -1, 0); err != nil {
				t.Error(err)
			}
			p.Sleep(100) // receiver keeps up
		}
	})
	r.eng.Run()
	if r.d1.Stats.MsgsDropped != 0 {
		t.Fatalf("dropped = %d, want 0", r.d1.Stats.MsgsDropped)
	}
	if r.d1.Stats.MsgsReceived != 8 {
		t.Fatalf("received = %d, want 8", r.d1.Stats.MsgsReceived)
	}
}

func TestReplyTwiceFails(t *testing.T) {
	r := newRig(t)
	r.channel(t, 4)
	r.eng.Spawn("receiver", func(p *sim.Process) {
		msg, _ := r.d1.WaitMsg(p, 0)
		if err := r.d1.Reply(p, 0, msg, []byte("x")); err != nil {
			t.Error(err)
		}
		if err := r.d1.Reply(p, 0, msg, []byte("y")); !errors.Is(err, ErrNoReply) {
			t.Errorf("second reply err = %v, want ErrNoReply", err)
		}
	})
	r.eng.Spawn("sender", func(p *sim.Process) {
		if err := r.d0.Send(p, 1, []byte("m"), 2, 0); err != nil {
			t.Error(err)
		}
		m, _ := r.d0.WaitMsg(p, 2)
		r.d0.Ack(2, m)
	})
	r.eng.Run()
}

func TestReplyToNoReplyMessageFails(t *testing.T) {
	r := newRig(t)
	r.channel(t, 4)
	r.eng.Spawn("receiver", func(p *sim.Process) {
		msg, _ := r.d1.WaitMsg(p, 0)
		if err := r.d1.Reply(p, 0, msg, []byte("x")); !errors.Is(err, ErrNoReply) {
			t.Errorf("err = %v, want ErrNoReply", err)
		}
	})
	r.eng.Spawn("sender", func(p *sim.Process) {
		if err := r.d0.Send(p, 1, []byte("m"), -1, 0); err != nil {
			t.Error(err)
		}
	})
	r.eng.Run()
}

func TestMsgTooLarge(t *testing.T) {
	r := newRig(t)
	r.channel(t, 4)
	r.eng.Spawn("sender", func(p *sim.Process) {
		if err := r.d0.Send(p, 1, make([]byte, 257), -1, 0); !errors.Is(err, ErrMsgTooLarge) {
			t.Errorf("err = %v, want ErrMsgTooLarge", err)
		}
	})
	r.eng.Run()
}

func TestSendOnNonSendEndpoint(t *testing.T) {
	r := newRig(t)
	r.channel(t, 4)
	r.eng.Spawn("sender", func(p *sim.Process) {
		if err := r.d0.Send(p, 2, []byte("x"), -1, 0); !errors.Is(err, ErrBadEndpoint) {
			t.Errorf("err = %v, want ErrBadEndpoint", err)
		}
		if err := r.d0.Send(p, 7, []byte("x"), -1, 0); !errors.Is(err, ErrBadEndpoint) {
			t.Errorf("err = %v, want ErrBadEndpoint", err)
		}
	})
	r.eng.Run()
}

func TestRingbufferWrittenToSPM(t *testing.T) {
	r := newRig(t)
	r.channel(t, 4)
	r.eng.Spawn("sender", func(p *sim.Process) {
		if err := r.d0.Send(p, 1, []byte("spm-bytes"), -1, 0); err != nil {
			t.Error(err)
		}
	})
	r.eng.Run()
	// Slot 0 of d1's ep0 ringbuffer starts at BufAddr=0; payload sits
	// behind the header.
	got := make([]byte, 9)
	if err := r.spm1.Read(HeaderSize, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "spm-bytes" {
		t.Fatalf("SPM ringbuffer = %q", got)
	}
}

func TestRemoteSPMReadWrite(t *testing.T) {
	r := newRig(t)
	// d0 gets a memory endpoint into d1's SPM at [1024, 2048).
	if err := r.d0.Configure(3, Endpoint{
		Type: EpMemory, MemTarget: 1, MemAddr: 1024, MemSize: 1024, MemPerms: PermRW,
	}); err != nil {
		t.Fatal(err)
	}
	r.eng.Spawn("rdma", func(p *sim.Process) {
		if err := r.d0.WriteMem(p, 3, 16, []byte("remote data")); err != nil {
			t.Error(err)
		}
		buf := make([]byte, 11)
		if err := r.d0.ReadMem(p, 3, 16, buf); err != nil {
			t.Error(err)
		}
		if string(buf) != "remote data" {
			t.Errorf("rdma read = %q", buf)
		}
	})
	r.eng.Run()
	// The bytes really are in d1's SPM at 1024+16.
	got := make([]byte, 11)
	if err := r.spm1.Read(1040, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "remote data" {
		t.Fatalf("spm1 = %q", got)
	}
	if r.d0.Stats.MemReads != 1 || r.d0.Stats.MemWrites != 1 {
		t.Fatalf("stats = %+v", r.d0.Stats)
	}
}

func TestMemEndpointPermissions(t *testing.T) {
	r := newRig(t)
	if err := r.d0.Configure(3, Endpoint{
		Type: EpMemory, MemTarget: 1, MemAddr: 0, MemSize: 64, MemPerms: PermRead,
	}); err != nil {
		t.Fatal(err)
	}
	r.eng.Spawn("rdma", func(p *sim.Process) {
		if err := r.d0.WriteMem(p, 3, 0, []byte("x")); !errors.Is(err, ErrPerms) {
			t.Errorf("write err = %v, want ErrPerms", err)
		}
		if err := r.d0.ReadMem(p, 3, 60, make([]byte, 8)); !errors.Is(err, ErrBounds) {
			t.Errorf("oob err = %v, want ErrBounds", err)
		}
		if err := r.d0.ReadMem(p, 3, -4, make([]byte, 2)); !errors.Is(err, ErrBounds) {
			t.Errorf("neg err = %v, want ErrBounds", err)
		}
	})
	r.eng.Run()
}

func TestRemoteConfigRequiresPrivilege(t *testing.T) {
	r := newRig(t)
	r.eng.Spawn("kernel", func(p *sim.Process) {
		// Kernel (d0, privileged) downgrades d1.
		if err := r.d0.SetPrivilegedRemote(p, 1, false); err != nil {
			t.Error(err)
		}
		if r.d1.Privileged() {
			t.Error("d1 should be downgraded")
		}
		// d1, now unprivileged, cannot configure anything.
		if err := r.d1.Configure(0, Endpoint{Type: EpSend}); !errors.Is(err, ErrNotPrivileged) {
			t.Errorf("local config err = %v, want ErrNotPrivileged", err)
		}
		if err := r.d1.ConfigureRemote(p, 0, 0, Endpoint{Type: EpSend}); !errors.Is(err, ErrNotPrivileged) {
			t.Errorf("remote config err = %v, want ErrNotPrivileged", err)
		}
		// The kernel can configure d1's endpoints remotely.
		if err := r.d0.ConfigureRemote(p, 1, 0, Endpoint{
			Type: EpReceive, BufAddr: 0, SlotSize: 64 + HeaderSize, SlotCount: 2,
		}); err != nil {
			t.Error(err)
		}
		if r.d1.EP(0).Type != EpReceive {
			t.Errorf("d1 ep0 type = %v, want receive", r.d1.EP(0).Type)
		}
	})
	r.eng.Run()
}

func TestRemoteConfigBadRingbufferRejected(t *testing.T) {
	r := newRig(t)
	r.eng.Spawn("kernel", func(p *sim.Process) {
		err := r.d0.ConfigureRemote(p, 1, 0, Endpoint{
			Type: EpReceive, BufAddr: 64 << 10, SlotSize: 64 + HeaderSize, SlotCount: 4,
		})
		if !errors.Is(err, ErrRemote) {
			t.Errorf("err = %v, want ErrRemote (ringbuffer outside SPM)", err)
		}
	})
	r.eng.Run()
}

func TestMessageTransferTiming(t *testing.T) {
	r := newRig(t)
	r.channel(t, 4)
	var sent sim.Time
	r.eng.Spawn("sender", func(p *sim.Process) {
		if err := r.d0.Send(p, 1, make([]byte, 48), -1, 0); err != nil {
			t.Error(err)
		}
		sent = p.Now()
	})
	r.eng.Run()
	// 1 hop * 3 + (16 header + 48)/8 = 3 + 8 = 11 cycles.
	if sent != 11 {
		t.Fatalf("send took %d cycles, want 11", sent)
	}
}

func TestUnlimitedCreditsNeverDenied(t *testing.T) {
	r := newRig(t)
	r.channel(t, UnlimitedCredits)
	r.eng.Spawn("receiver", func(p *sim.Process) {
		for i := 0; i < 3; i++ {
			m, _ := r.d1.WaitMsg(p, 0)
			r.d1.Ack(0, m)
		}
	})
	r.eng.Spawn("sender", func(p *sim.Process) {
		for i := 0; i < 3; i++ {
			if err := r.d0.Send(p, 1, []byte("m"), -1, 0); err != nil {
				t.Error(err)
			}
			p.Sleep(50)
		}
		if r.d0.Credits(1) != UnlimitedCredits {
			t.Errorf("credits changed: %d", r.d0.Credits(1))
		}
	})
	r.eng.Run()
}

func TestLabelIsUnforgeable(t *testing.T) {
	r := newRig(t)
	r.channel(t, 4)
	var got uint64
	r.eng.Spawn("receiver", func(p *sim.Process) {
		msg, _ := r.d1.WaitMsg(p, 0)
		got = msg.Label
		r.d1.Ack(0, msg)
	})
	r.eng.Spawn("sender", func(p *sim.Process) {
		// The sender has no API to choose the label: it is endpoint
		// state written by the kernel. Whatever the sender does, the
		// receiver sees the kernel-configured label.
		if err := r.d0.Send(p, 1, []byte("evil"), -1, 0); err != nil {
			t.Error(err)
		}
	})
	r.eng.Run()
	if got != 0xC0FFEE {
		t.Fatalf("label = %#x, want the kernel-chosen 0xC0FFEE", got)
	}
}

func TestFetchOrderFIFO(t *testing.T) {
	r := newRig(t)
	r.channel(t, 4)
	var order []byte
	r.eng.Spawn("sender", func(p *sim.Process) {
		for i := byte(0); i < 4; i++ {
			if err := r.d0.Send(p, 1, []byte{i}, -1, 0); err != nil {
				t.Error(err)
			}
		}
	})
	r.eng.Spawn("receiver", func(p *sim.Process) {
		for i := 0; i < 4; i++ {
			m, _ := r.d1.WaitMsg(p, 0)
			order = append(order, m.Data[0])
			r.d1.Ack(0, m)
		}
	})
	r.eng.Run()
	if !bytes.Equal(order, []byte{0, 1, 2, 3}) {
		t.Fatalf("order = %v", order)
	}
}

// TestMessagePayloadProperty pushes random payloads through a channel
// and checks exact content and order at the receiver.
func TestMessagePayloadProperty(t *testing.T) {
	f := func(payloads [][]byte) bool {
		if len(payloads) > 32 {
			payloads = payloads[:32]
		}
		for i := range payloads {
			if len(payloads[i]) > 256 {
				payloads[i] = payloads[i][:256]
			}
		}
		r := newRig(t)
		if err := r.d1.Configure(0, Endpoint{
			Type: EpReceive, BufAddr: 0, SlotSize: 256 + HeaderSize, SlotCount: 4,
		}); err != nil {
			return false
		}
		if err := r.d0.Configure(1, Endpoint{
			Type: EpSend, Target: 1, TargetEP: 0, Credits: 4, MsgSize: 256,
		}); err != nil {
			return false
		}
		if err := r.d0.Configure(2, Endpoint{
			Type: EpReceive, BufAddr: 8192, SlotSize: 64 + HeaderSize, SlotCount: 4,
		}); err != nil {
			return false
		}
		var got [][]byte
		r.eng.Spawn("recv", func(p *sim.Process) {
			for i := 0; i < len(payloads); i++ {
				msg, _ := r.d1.WaitMsg(p, 0)
				got = append(got, append([]byte(nil), msg.Data...))
				if err := r.d1.Reply(p, 0, msg, nil); err != nil {
					t.Error(err)
				}
			}
		})
		ok := true
		r.eng.Spawn("send", func(p *sim.Process) {
			for _, pl := range payloads {
				for {
					err := r.d0.Send(p, 1, pl, 2, 0)
					if err == nil {
						break
					}
					if !errors.Is(err, ErrNoCredits) {
						ok = false
						return
					}
					if err := r.d0.WaitCredits(p, 1); err != nil {
						ok = false
						return
					}
				}
			}
			// Drain the credit-restoring replies.
			for i := 0; i < len(payloads); i++ {
				m, _ := r.d0.WaitMsg(p, 2)
				r.d0.Ack(2, m)
			}
		})
		r.eng.Run()
		if !ok || len(got) != len(payloads) {
			return false
		}
		for i := range payloads {
			if !bytes.Equal(got[i], payloads[i]) {
				return false
			}
		}
		return r.d1.Stats.MsgsDropped == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
