package dtu

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

// Deadline coverage for the bounded wait primitives the crash-recovery
// stack leans on (docs/RECOVERY.md): a waiter with a cycle budget gets
// a clean expiry instead of parking forever on a dead peer, a message
// arriving in time wins over the timer, and zero budget degenerates to
// the plain unbounded wait.

func TestWaitMsgDeadlineExpires(t *testing.T) {
	r := newRig(t)
	r.channel(t, 2)
	var at sim.Time
	fired := false
	r.eng.Spawn("recv", func(p *sim.Process) {
		msg, ep := r.d1.WaitMsgDeadline(p, 5000, 0)
		if msg != nil || ep != -1 {
			t.Errorf("WaitMsgDeadline on silent channel = %v, %d; want nil, -1", msg, ep)
		}
		at = r.eng.Now()
		fired = true
	})
	r.eng.Run()
	if !fired {
		t.Fatal("waiter never returned")
	}
	if at != 5000 {
		t.Errorf("deadline expired at %d, want exactly 5000", at)
	}
}

func TestWaitMsgDeadlineDeliveredInTime(t *testing.T) {
	r := newRig(t)
	r.channel(t, 2)
	got := false
	r.eng.Spawn("recv", func(p *sim.Process) {
		msg, ep := r.d1.WaitMsgDeadline(p, 50000, 0)
		if msg == nil || ep != 0 {
			t.Errorf("WaitMsgDeadline = %v, %d; want the message on ep 0", msg, ep)
			return
		}
		if string(msg.Data) != "ping" {
			t.Errorf("payload = %q, want ping", msg.Data)
		}
		got = true
	})
	r.eng.Spawn("send", func(p *sim.Process) {
		p.Sleep(1000)
		if err := r.d0.Send(p, 1, []byte("ping"), -1, 0); err != nil {
			t.Error(err)
		}
	})
	r.eng.Run()
	if !got {
		t.Fatal("message never delivered")
	}
}

func TestWaitCreditsDeadline(t *testing.T) {
	r := newRig(t)
	r.channel(t, 1)
	done := false
	r.eng.Spawn("send", func(p *sim.Process) {
		// Burn the only credit; nobody ever replies, so the credit never
		// comes back and the bounded wait must expire on the dot.
		if err := r.d0.Send(p, 1, []byte("m"), -1, 0); err != nil {
			t.Error(err)
			return
		}
		start := r.eng.Now()
		if err := r.d0.WaitCreditsDeadline(p, 1, 3000); !errors.Is(err, ErrTimeout) {
			t.Errorf("WaitCreditsDeadline = %v, want ErrTimeout", err)
		}
		if took := r.eng.Now() - start; took != 3000 {
			t.Errorf("expiry took %d cycles, want exactly 3000", took)
		}
		// Misconfigured endpoints fail fast, budget or not.
		if err := r.d0.WaitCreditsDeadline(p, 2, 3000); !errors.Is(err, ErrBadEndpoint) {
			t.Errorf("on a receive endpoint: %v, want ErrBadEndpoint", err)
		}
		done = true
	})
	r.eng.Run()
	if !done {
		t.Fatal("sender never finished")
	}
}

// TestWaitDeadlineZeroSchedulesNothing pins the zero-extra-events
// discipline: a zero budget must not arm a timer — the fault-free
// baseline schedule stays bit-identical whether the deadline plumbing
// exists or not.
func TestWaitDeadlineZeroSchedulesNothing(t *testing.T) {
	r := newRig(t)
	r.channel(t, 2)
	got := false
	r.eng.Spawn("recv", func(p *sim.Process) {
		msg, ep := r.d1.WaitMsgDeadline(p, 0, 0)
		if msg == nil || ep != 0 {
			t.Errorf("WaitMsgDeadline(0) = %v, %d; want the message", msg, ep)
			return
		}
		got = true
	})
	r.eng.Spawn("send", func(p *sim.Process) {
		p.Sleep(1000)
		if err := r.d0.Send(p, 1, []byte("x"), -1, 0); err != nil {
			t.Error(err)
		}
	})
	r.eng.Run()
	if !got {
		t.Fatal("message never delivered")
	}
	// The engine drained: had a timer been armed for "deadline zero",
	// the run would have ended later than the send path needs.
	if now := r.eng.Now(); now >= 5000 {
		t.Errorf("engine ran until %d; a phantom deadline timer was scheduled", now)
	}
}
