package dtu

import (
	"testing"

	"repro/internal/sim"
)

// TestMessagePoolHygiene: a message recycled through the DTU's pool
// must come back with nothing of its previous life — no label, data,
// span, or reply capability (replyNode/replyEP/replyLabel/creditEP). A
// leak here would hand the next receiver a forged reply capability or
// another VPE's payload.
func TestMessagePoolHygiene(t *testing.T) {
	r := newRig(t)
	// d0's send endpoint targets d1's ep0, which is left unconfigured:
	// delivery hits receive's bad-endpoint drop path, the only place a
	// message is provably dead and recycled (into the receiving DTU's
	// pool).
	if err := r.d0.Configure(1, Endpoint{
		Type: EpSend, Target: 1, TargetEP: 0, Label: 0xABCDEF, Credits: 4, MsgSize: 64,
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.d0.Configure(2, Endpoint{
		Type: EpReceive, BufAddr: 0, SlotSize: 64 + HeaderSize, SlotCount: 2,
	}); err != nil {
		t.Fatal(err)
	}
	r.eng.Spawn("sender", func(p *sim.Process) {
		// Arm every field a stale message could leak: span, reply
		// capability, label, payload.
		r.d0.StampSpan(0xDEAD)
		if err := r.d0.Send(p, 1, []byte("secret-payload"), 2, 0x42); err != nil {
			t.Error(err)
		}
	})
	r.eng.Run()
	if r.d1.Stats.MsgsDropped != 1 {
		t.Fatalf("MsgsDropped = %d, want 1", r.d1.Stats.MsgsDropped)
	}
	pooled := 0
	for m := r.d1.msgFree; m != nil; m = m.next {
		pooled++
		if m.Label != 0 || m.Data != nil || m.Span != 0 ||
			m.replyNode != 0 || m.replyEP != 0 || m.replyLabel != 0 || m.creditEP != 0 ||
			m.slot != 0 || m.replied || m.acked || m.sentAt != 0 {
			t.Fatalf("pooled message not zeroed: %+v", m)
		}
	}
	if pooled != 1 {
		t.Fatalf("pooled = %d messages, want 1", pooled)
	}
	// The pool must actually be a pool: the next allocation reuses the
	// recycled object and unlinks it.
	head := r.d1.msgFree
	m := r.d1.newMessage()
	if m != head {
		t.Fatal("newMessage did not reuse the pool head")
	}
	if m.next != nil {
		t.Fatal("allocated message still linked into the pool")
	}
	if r.d1.msgFree != nil {
		t.Fatal("pool head not advanced")
	}
}

// TestMessagePoolRingbufferDrops covers the other two recycle sites:
// a full ringbuffer and an over-large payload both drop — and pool —
// the message.
func TestMessagePoolRingbufferDrops(t *testing.T) {
	r := newRig(t)
	// One slot, small: the second message finds the buffer full.
	if err := r.d1.Configure(0, Endpoint{
		Type: EpReceive, BufAddr: 0, SlotSize: 32 + HeaderSize, SlotCount: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.d0.Configure(1, Endpoint{
		Type: EpSend, Target: 1, TargetEP: 0, Label: 1, Credits: 8, MsgSize: 64,
	}); err != nil {
		t.Fatal(err)
	}
	r.eng.Spawn("sender", func(p *sim.Process) {
		for i := 0; i < 3; i++ {
			if err := r.d0.Send(p, 1, []byte("x"), -1, 0); err != nil {
				t.Error(err)
			}
		}
		// Fits the endpoint's MsgSize but not a slot: the slot-size drop
		// path.
		if err := r.d0.Send(p, 1, make([]byte, 48), -1, 0); err != nil {
			t.Error(err)
		}
	})
	r.eng.Run()
	if r.d1.Stats.MsgsDropped != 3 {
		t.Fatalf("MsgsDropped = %d, want 3", r.d1.Stats.MsgsDropped)
	}
	pooled := 0
	for m := r.d1.msgFree; m != nil; m = m.next {
		pooled++
		if m.Data != nil || m.Label != 0 {
			t.Fatalf("pooled message not zeroed: %+v", m)
		}
	}
	if pooled != 3 {
		t.Fatalf("pooled = %d messages, want 3", pooled)
	}
	// The delivered message must NOT have been recycled: its data
	// legally escaped to software.
	if m := r.d1.Fetch(0); m == nil || string(m.Data) != "x" {
		t.Fatalf("delivered message damaged: %+v", m)
	}
}
