package dtu

import (
	"fmt"

	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Default reliability parameters, used when the fault configuration
// leaves them zero. The timeout comfortably covers a worst-case
// mesh traversal plus remote service time; the retry budget pushes
// the abort probability at realistic loss rates below anything a
// workload will ever observe (at 1% per-link loss, ~1e-14 per
// message).
const (
	DefaultTimeout    sim.Time = 2000
	DefaultMaxRetries          = 6
	// DefaultBackoffFactor bounds the exponential backoff: the per-
	// attempt timeout never exceeds Timeout * DefaultBackoffFactor
	// (32 = five doublings, matching a retry budget of 6 — larger
	// budgets keep retrying at the cap instead of overflowing into
	// multi-epoch sleeps).
	DefaultBackoffFactor sim.Time = 32
)

// FaultConfig switches a DTU into fault-tolerant operation. With it
// enabled, message-class transfers (sends, replies, credit grants)
// carry sequence numbers and are retransmitted until acknowledged,
// and remote operations (RDMA, remote config, probes) get bounded
// response timeouts with retry. Without it — the default — the DTU
// behaves exactly as the lossless model always has: not a single
// extra event is scheduled, so fault-free runs stay bit-identical to
// the pre-fault simulator.
//
// Only internal/fault may enable this (m3vet: faultsite).
type FaultConfig struct {
	// Timeout is the initial ack/response timeout in cycles; it
	// doubles on every retry (bounded exponential backoff).
	Timeout sim.Time
	// MaxRetries bounds the retransmissions/retries of one transfer
	// before it aborts with ErrTimeout.
	MaxRetries int
	// MaxBackoff caps the per-attempt timeout the exponential backoff
	// can reach. Zero picks Timeout * DefaultBackoffFactor. The cap is
	// what keeps a long retry budget from doubling into overflow:
	// sim.Time is unsigned, and an uncapped doubling chain would
	// eventually wrap into a tiny timeout and retransmit-storm.
	MaxBackoff sim.Time
	// PreSend, when set, runs before every fault-gated transfer; the
	// fault layer uses it to inject transfer-engine stalls.
	PreSend func(p *sim.Process)
	// CallDeadline, when nonzero, is the cycle budget software on this
	// PE should apply to request/reply calls into services; libm3 reads
	// it via DTU.CallDeadline to arm bounded waits and session
	// recovery. Zero keeps every call path unbounded (and schedules no
	// deadline events). The fault layer sets it only when a crash is
	// armed (docs/RECOVERY.md).
	CallDeadline sim.Time
}

// EnableFaults installs the reliability configuration. Zero Timeout
// or MaxRetries fall back to the defaults.
func (d *DTU) EnableFaults(cfg *FaultConfig) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = DefaultMaxRetries
	}
	if cfg.MaxBackoff <= 0 {
		// Overflow-safe default: a Timeout within a factor of the top of
		// the range caps at itself rather than wrapping.
		if cfg.Timeout > ^sim.Time(0)/DefaultBackoffFactor {
			cfg.MaxBackoff = cfg.Timeout
		} else {
			cfg.MaxBackoff = cfg.Timeout * DefaultBackoffFactor
		}
	}
	if cfg.MaxBackoff < cfg.Timeout {
		cfg.MaxBackoff = cfg.Timeout
	}
	d.faults = cfg
}

// nextBackoff doubles a timeout under the configured cap without ever
// wrapping: sim.Time is unsigned, so `t *= 2` on a large t would
// silently produce a shorter timeout than the attempt before it.
func (fc *FaultConfig) nextBackoff(t sim.Time) sim.Time {
	if t >= fc.MaxBackoff/2 {
		return fc.MaxBackoff
	}
	return t * 2
}

// CallDeadline reports the call cycle budget of the armed fault
// configuration — or, when the fault layer arms none, of the overload
// configuration (see EnableOverload) — zero when neither arms one.
// Reading it is safe from any layer: it only tells software whether
// the run wants bounded calls, it arms nothing.
func (d *DTU) CallDeadline() sim.Time {
	if d.faults != nil && d.faults.CallDeadline > 0 {
		return d.faults.CallDeadline
	}
	if d.overload != nil {
		return d.overload.CallDeadline
	}
	return 0
}

// Faulty reports whether the fault layer is armed on this DTU.
// Software uses it to pick its failure semantics: with faults armed a
// timeout may mean a dead service incarnation (worth a session
// recovery); with only overload armed it means shed or expired work,
// which a bounded retry handles without touching the session.
func (d *DTU) Faulty() bool { return d.faults != nil }

// SetCoreStatus installs the callback a probe response reads to learn
// whether the attached core is alive. The DTU is a separate hardware
// block: it keeps answering probes after its core crashed — that is
// precisely how the kernel tells a dead PE from a slow one. Wired by
// the platform at build time; only internal/fault triggers probing.
func (d *DTU) SetCoreStatus(fn func() bool) { d.coreStatus = fn }

// ResetEndpoints clears every endpoint register, dropping any
// buffered messages. The tile layer invokes this when the kernel
// resets a PE (VPE teardown, §4.5.5), so a freed PE leaks no stale
// communication rights to its next occupant.
func (d *DTU) ResetEndpoints() {
	for i := range d.eps {
		d.eps[i] = epState{}
	}
}

// stall applies the configured pre-send hook.
func (fc *FaultConfig) stall(p *sim.Process) {
	if fc.PreSend != nil {
		fc.PreSend(p)
	}
}

// pendingSend tracks one reliable outbound transfer awaiting its ack.
type pendingSend struct {
	done *sim.Signal
	//m3vet:resolve sharedstate shard only the destination shard's delivery context flips the flag for packets it received; the sender polls it at the barrier
	acked bool
	//m3vet:resolve sharedstate shard only the destination shard's delivery context flips the flag for packets it received; the sender polls it at the barrier
	nacked bool
}

// seqKey identifies a reliable transfer at the receiver for duplicate
// suppression: sequence numbers are per-sender.
type seqKey struct {
	src noc.NodeID
	seq uint64
}

// dedupState is the per-sender duplicate-suppression window. Sequence
// numbers from one sender mint monotonically from 1, so instead of
// remembering every (sender, seq) pair forever — memory that only
// grows over a long run — the receiver keeps a floor at or below which
// everything is a known duplicate, plus the sparse set of out-of-order
// arrivals above it. The floor advances as the gaps fill, so `ahead`
// stays bounded by the sender's in-flight window however many
// transfers the run carries.
type dedupState struct {
	//m3vet:resolve sharedstate owner dedup windows advance in serial Deliver only
	floor uint64
	//m3vet:resolve sharedstate owner dedup windows advance in serial Deliver only
	ahead map[uint64]bool
}

// markSeen records (src, seq) in the dedup window and reports whether
// the transfer was already delivered.
func (d *DTU) markSeen(src noc.NodeID, seq uint64) bool {
	s := d.seen[src]
	if s == nil {
		s = &dedupState{ahead: make(map[uint64]bool)}
		d.seen[src] = s
	}
	if seq <= s.floor || s.ahead[seq] {
		return true
	}
	s.ahead[seq] = true
	for s.ahead[s.floor+1] {
		delete(s.ahead, s.floor+1)
		s.floor++
	}
	return false
}

// transmit pushes a message-class packet (message, reply, credit
// grant). Without faults it is a plain NoC send. With faults the
// packet gets a sequence number and is retransmitted — same sequence
// number, so the receiver can deduplicate — until the receiving DTU
// acknowledges it, the receiver NACKs a corrupted copy (immediate
// retransmit), or the retry budget runs out (ErrTimeout). These are
// hardware-level acks between DTUs, distinct from the software-level
// message ack that frees a ringbuffer slot.
func (d *DTU) transmit(p *sim.Process, pkt *noc.Packet) error {
	if d.faults == nil {
		d.net.Send(p, pkt)
		return nil
	}
	d.faults.stall(p)
	d.nextSeq++
	pkt.Seq = d.nextSeq
	ps := &pendingSend{done: sim.NewSignal(d.eng)}
	d.sends[pkt.Seq] = ps
	timeout := d.faults.Timeout
	for attempt := 0; ; attempt++ {
		pkt.Corrupt = false // a corrupting hop taints the packet; retransmit clean
		d.net.Send(p, pkt)
		if ps.acked {
			break
		}
		expired := false
		d.eng.Schedule(timeout, func() {
			// The timer belongs to this attempt only: if the transfer
			// was acked (or aborted and forgotten) in the meantime, it
			// must not wake anyone.
			if s, ok := d.sends[pkt.Seq]; ok && s == ps && !ps.acked {
				expired = true
				ps.done.Broadcast()
			}
		})
		for !ps.acked && !ps.nacked && !expired {
			d.idleWait(p, ps.done)
		}
		if ps.acked {
			break
		}
		if attempt >= d.faults.MaxRetries {
			delete(d.sends, pkt.Seq)
			d.Stats.SendsAborted++
			if d.eng.Tracing() {
				d.eng.Emit(d.traceName(), fmt.Sprintf("xmit seq %d -> node%d aborted after %d attempts",
					pkt.Seq, pkt.Dst, attempt+1))
			}
			if tr := d.obs; tr.On() {
				tr.Emit(obs.Event{At: d.eng.Now(), PE: int32(d.node), Layer: obs.LDTU,
					Kind: obs.EvXmitAbort, Span: obs.SpanID(pkt.Span),
					Arg0: pkt.Seq, Arg1: uint64(pkt.Dst), Arg2: uint64(attempt + 1)})
			}
			// Build the error before freeing: it reads the packet.
			err := fmt.Errorf("%w: transfer to node %d unacknowledged after %d attempts",
				ErrTimeout, pkt.Dst, attempt+1)
			d.net.FreePacket(pkt)
			return err
		}
		if !ps.nacked {
			// Silence: back off (capped); a NACK retransmits immediately.
			timeout = d.faults.nextBackoff(timeout)
		}
		ps.nacked = false
		d.Stats.Retransmits++
		if d.eng.Tracing() {
			d.eng.Emit(d.traceName(), fmt.Sprintf("xmit seq %d -> node%d retry %d",
				pkt.Seq, pkt.Dst, attempt+1))
		}
		if tr := d.obs; tr.On() {
			d.mRetransmits.Inc()
			tr.Emit(obs.Event{At: d.eng.Now(), PE: int32(d.node), Layer: obs.LDTU,
				Kind: obs.EvRetransmit, Span: obs.SpanID(pkt.Span),
				Arg0: pkt.Seq, Arg1: uint64(pkt.Dst), Arg2: uint64(attempt + 1)})
		}
	}
	delete(d.sends, pkt.Seq)
	// Sequence-numbered packets are sender-owned (the network never
	// frees them — retransmits reuse the same packet); the transfer is
	// acked, so this side is done with it.
	d.net.FreePacket(pkt)
	return nil
}

// doOp runs one remote request/response operation (RDMA access,
// remote config, probe): send issues the request under the given op
// id; doOp waits for the response. Without faults the wait is
// unbounded, as before. With faults the wait times out and the
// operation is retried under a fresh op id with doubled timeout —
// these operations are idempotent, and a late response to an
// abandoned attempt is ignored because its op id is no longer
// pending.
func (d *DTU) doOp(p *sim.Process, send func(op uint64)) (*pendingOp, error) {
	if d.faults == nil {
		op := d.newOp()
		send(op)
		return d.waitOp(p, op, 0), nil
	}
	d.faults.stall(p)
	timeout := d.faults.Timeout
	for attempt := 0; ; attempt++ {
		op := d.newOp()
		send(op)
		po := d.waitOp(p, op, timeout)
		if po.resp != nil || po.cfg != nil || po.probe != nil {
			return po, nil
		}
		d.Stats.OpTimeouts++
		if d.eng.Tracing() {
			d.eng.Emit(d.traceName(), fmt.Sprintf("op %d timed out (attempt %d)", op, attempt+1))
		}
		if tr := d.obs; tr.On() {
			tr.Emit(obs.Event{At: d.eng.Now(), PE: int32(d.node), Layer: obs.LDTU,
				Kind: obs.EvOpTimeout, Arg0: op, Arg1: uint64(attempt + 1)})
		}
		if attempt >= d.faults.MaxRetries {
			d.Stats.SendsAborted++
			return nil, fmt.Errorf("%w: remote operation unanswered after %d attempts",
				ErrTimeout, attempt+1)
		}
		timeout = d.faults.nextBackoff(timeout)
	}
}

// Probe asks the DTU at target whether its attached core is alive: the
// kernel's death-detection channel. The target's DTU answers
// autonomously — a crashed core cannot, and need not, be involved —
// and a fully unreachable PE surfaces as ErrTimeout after the retry
// budget. Privileged DTUs only; requires faults enabled (the timeout
// is what makes "no answer" an answer).
func (d *DTU) Probe(p *sim.Process, target noc.NodeID) (bool, error) {
	if !d.privileged {
		return false, ErrNotPrivileged
	}
	po, err := d.doOp(p, func(op uint64) {
		pkt := d.net.NewPacket()
		pkt.Src, pkt.Dst, pkt.Size = d.node, target, ctrlPacketSize
		pkt.Payload = &probeReq{OpID: op, Src: d.node}
		d.net.Send(p, pkt)
	})
	if err != nil {
		return false, err
	}
	return po.probe.Crashed, nil
}

// sendCtrl emits an autonomous control packet (ack, nack) from engine
// context, where no sending process exists.
func (d *DTU) sendCtrl(dst noc.NodeID, payload any) {
	pkt := d.net.NewPacket()
	pkt.Src, pkt.Dst, pkt.Size = d.node, dst, ctrlPacketSize
	pkt.Payload = payload
	d.net.SendAsync(pkt)
}
