// Package dtu implements the data transfer unit, the paper's common
// hardware component attached to every processing element.
//
// A DTU holds a small set of endpoints. Each endpoint can be configured
// as a send endpoint, a receive endpoint, or a memory endpoint; the
// configuration registers are writable only by privileged (kernel) PEs —
// locally or remotely via NoC config packets — while the data-path
// operations (send, reply, fetch, read, write) are available to the
// application on the PE. Controlling the endpoint configuration of a
// DTU therefore controls all communication of the attached core: this
// is the paper's NoC-level isolation.
package dtu

import (
	"repro/internal/noc"
	"repro/internal/sim"
)

// DefaultNumEndpoints is the endpoint count of the prototype platform.
const DefaultNumEndpoints = 8

// HeaderSize is the wire size in bytes of the message header the DTU
// prepends to every message: label, length, and reply information.
const HeaderSize = 16

// UnlimitedCredits marks a send endpoint that is never throttled. The
// kernel uses it for its own channels.
const UnlimitedCredits = -1

// EpType is the configured role of an endpoint.
type EpType uint8

// Endpoint roles.
const (
	EpInvalid EpType = iota
	EpSend
	EpReceive
	EpMemory
)

func (t EpType) String() string {
	switch t {
	case EpInvalid:
		return "invalid"
	case EpSend:
		return "send"
	case EpReceive:
		return "receive"
	case EpMemory:
		return "memory"
	}
	return "unknown"
}

// Perm is a memory-endpoint permission bitmask.
type Perm uint8

// Memory permissions.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermRW = PermRead | PermWrite
)

// Endpoint is the register file of one endpoint. Which fields are
// meaningful depends on Type; the kernel writes the whole set
// atomically when it activates a gate.
type Endpoint struct {
	Type EpType

	// Send endpoint registers (the paper's target, label, credits).
	Target   noc.NodeID // PE holding the receive endpoint
	TargetEP int        // receive endpoint index at Target
	Label    uint64     // receiver-chosen, unforgeable sender identity
	//m3vet:resolve sharedstate owner credits are spent in process context and restored in serial reply delivery
	Credits int // remaining messages; UnlimitedCredits disables
	MsgSize int // max payload bytes per message

	// Receive endpoint registers (the paper's buffer register).
	BufAddr   int // ringbuffer address in the local SPM
	SlotSize  int // bytes per slot, including the header
	SlotCount int // number of slots

	// Memory endpoint registers (the paper's target as memory region).
	MemTarget noc.NodeID // PE or memory tile owning the region
	MemAddr   int        // region start at the target
	MemSize   int        // region length in bytes
	MemPerms  Perm
}

// BufSize returns the SPM bytes a receive endpoint's ringbuffer spans.
func (e *Endpoint) BufSize() int { return e.SlotSize * e.SlotCount }

// epState is the run-time state of an endpoint beyond its registers.
type epState struct {
	Endpoint

	// Receive state: arrived but not yet fetched messages (FIFO), and
	// the number of slots holding fetched-but-unacked messages.
	//m3vet:resolve sharedstate owner ringbuffer state changes in serial Deliver and in the owning core's fetch/ack
	arrived []*Message
	//m3vet:resolve sharedstate owner ringbuffer state changes in serial Deliver and in the owning core's fetch/ack
	occupied int
	//m3vet:resolve sharedstate owner ringbuffer state changes in serial Deliver and in the owning core's fetch/ack
	nextSlot int
}

// Message is a received message as the software sees it after fetching
// it from the ringbuffer.
type Message struct {
	// Label identifies the sender; it was chosen by the receiver when
	// the channel was created and cannot be forged by the sender.
	//m3vet:resolve sharedstate message filled once at delivery, then handed off to the fetching software
	Label uint64
	// Data is the message payload.
	//m3vet:resolve sharedstate message filled once at delivery, then handed off to the fetching software
	Data []byte

	// Reply routing, taken from the header. The fields are unexported
	// on purpose: software that fetches a message may Reply to it, but
	// must never see the raw node id or endpoint index of the sender —
	// the message is an opaque reply capability (m3vet's capflow rule
	// checks exactly this). replyEP < 0 means the sender did not permit
	// a reply.
	//m3vet:resolve sharedstate message filled once at delivery, then handed off to the fetching software
	replyNode noc.NodeID
	//m3vet:resolve sharedstate message filled once at delivery, then handed off to the fetching software
	replyEP int
	//m3vet:resolve sharedstate message filled once at delivery, then handed off to the fetching software
	replyLabel uint64
	// creditEP is the sender's send endpoint whose credit is restored
	// when the reply arrives.
	//m3vet:resolve sharedstate message filled once at delivery, then handed off to the fetching software
	creditEP int

	// Span is the causal trace id riding in the message header's label
	// space (zero: none). Replies inherit it, so one request's full
	// path reconstructs from the event stream.
	//m3vet:resolve sharedstate message filled once at delivery, then handed off to the fetching software
	Span uint64

	// Deadline is the propagated cycle budget riding in the header of
	// an overload-controlled request (zero: none). Receivers compare
	// the sim clock against sentAt+Deadline and drop expired work
	// before it enters a ringbuffer (docs/OVERLOAD.md).
	//m3vet:resolve sharedstate message filled once at delivery, then handed off to the fetching software
	Deadline sim.Time
	// flags marks overload fast-fail replies (msgFlagOverload,
	// msgFlagExpired); see Overloaded/Expired.
	//m3vet:resolve sharedstate message filled once at delivery, then handed off to the fetching software
	flags uint8

	//m3vet:resolve sharedstate message set at delivery; read/updated only by the owning fetcher afterwards
	slot int
	//m3vet:resolve sharedstate message set at delivery; read/updated only by the owning fetcher afterwards
	replied bool
	//m3vet:resolve sharedstate message set at delivery; read/updated only by the owning fetcher afterwards
	acked bool
	//m3vet:resolve sharedstate message set at delivery; read/updated only by the owning fetcher afterwards
	sentAt sim.Time

	// next links the DTU's message freelist (see DTU.newMessage).
	//m3vet:resolve sharedstate owner freelist links move only in newMessage/freeMessage, serial paths
	next *Message
}

// CanReply reports whether the sender permitted a direct reply.
func (m *Message) CanReply() bool { return m.replyEP >= 0 }

// Stats counts DTU activity for the evaluation harness.
type Stats struct {
	//m3vet:resolve sharedstate owner counted in process context or serial delivery
	MsgsSent uint64
	//m3vet:resolve sharedstate owner counted in process context or serial delivery
	MsgsReceived uint64
	//m3vet:resolve sharedstate owner counted in process context or serial delivery
	MsgsDropped uint64
	//m3vet:resolve sharedstate owner counted in process context or serial delivery
	Replies uint64
	//m3vet:resolve sharedstate owner counted in process context or serial delivery
	SendsDenied uint64 // send attempts denied for lack of credits
	//m3vet:resolve sharedstate owner counted in process context or serial delivery
	MemReads uint64
	//m3vet:resolve sharedstate owner counted in process context or serial delivery
	MemWrites uint64
	//m3vet:resolve sharedstate owner counted in process context or serial delivery
	BytesRead uint64
	//m3vet:resolve sharedstate owner counted in process context or serial delivery
	BytesWritten uint64
	//m3vet:resolve sharedstate owner counted in process context or serial delivery
	ConfigsApplied uint64

	// Reliability counters, nonzero only with fault injection enabled:
	// retransmitted transfers, transfers/ops aborted after the retry
	// budget, timed-out remote operations (each timeout retries until
	// the budget runs out), duplicate deliveries suppressed, and
	// corrupted packets discarded on arrival.
	//m3vet:resolve sharedstate owner counted in process context or serial delivery
	Retransmits uint64
	//m3vet:resolve sharedstate owner counted in process context or serial delivery
	SendsAborted uint64
	//m3vet:resolve sharedstate owner counted in process context or serial delivery
	OpTimeouts uint64
	//m3vet:resolve sharedstate owner counted in process context or serial delivery
	DupsDropped uint64
	//m3vet:resolve sharedstate shard only the destination shard's delivery context counts poisoned arrivals at its own DTU
	Poisoned uint64

	// Overload-control counters, nonzero only with EnableOverload:
	// requests dropped because their propagated deadline expired in
	// flight, and requests refused by the admission watermark.
	//m3vet:resolve sharedstate owner counted in process context or serial delivery
	DeadlineDrops uint64
	//m3vet:resolve sharedstate owner counted in process context or serial delivery
	OverloadRefused uint64

	// IdleCycles accumulates the time the attached core spent waiting
	// on the DTU — for messages, credits, or transfer completions. The
	// paper trades this idle time for heterogeneity support (§3.4);
	// see the utilization experiment.
	//m3vet:resolve sharedstate owner accumulated by the owning core's process only
	IdleCycles uint64
}

// pendingOp tracks an outstanding remote operation (RDMA, remote
// config, or probe) awaiting its response packet.
type pendingOp struct {
	done *sim.Signal
	//m3vet:resolve sharedstate owner response slots are filled in serial Deliver and read by the woken process
	resp *MemResp
	//m3vet:resolve sharedstate owner response slots are filled in serial Deliver and read by the woken process
	cfg *ConfigResp
	//m3vet:resolve sharedstate owner response slots are filled in serial Deliver and read by the woken process
	probe *probeResp
}
