// Package accel models the paper's FFT accelerator experiment (§5.8):
// a core with instruction extensions for fast fourier transformation,
// used in a filter chain. The parent generates random numbers and
// writes them into a pipe; the child, running on the FFT core, reads
// the pipe, transforms the data, and writes the result into a file.
//
// The code for the parent is identical for the software and the
// accelerator version — it merely runs the child on a different PE
// type — which is the paper's point: M3's abstractions make using an
// accelerator as cheap as using another core.
package accel

import (
	"errors"
	"io"

	"repro/internal/workload"
)

// Cycle costs per input byte. The accelerator achieves "about a factor
// of 30" over the software FFT (§5.8).
const (
	SoftFFTPerByte  = 60
	AccelFFTPerByte = 2
	GenPerByte      = 3 // random-number generation in the parent
)

// InputSize is the amount of data pushed through the chain (32 KiB of
// random numbers, §5.8).
const InputSize = 32 << 10

// CoreTypeFFT is the PE type the child requests in the accelerated
// variant; it must match the platform's FFT core type.
const CoreTypeFFT = "fft"

// FFTChain returns the filter-chain benchmark. If useAccel, the child
// VPE is placed on an FFT core; otherwise on a standard core running
// the software FFT.
func FFTChain(useAccel bool) workload.Benchmark {
	name := "fft-soft"
	peType := ""
	if useAccel {
		name = "fft-accel"
		peType = CoreTypeFFT
	}
	return workload.Benchmark{
		Name:  name,
		PEs:   2,
		Setup: func(os workload.OS) error { return nil },
		Run: func(os workload.OS) error {
			w, wait, err := os.PipeToChild("fft", peType, func(cos workload.OS, r workload.File) {
				runFFTChild(cos, r)
			})
			if err != nil {
				return err
			}
			// The parent generates random numbers and writes them into
			// the pipe.
			chunk := make([]byte, 4096)
			seed := uint32(0x5eed)
			for total := 0; total < InputSize; total += len(chunk) {
				os.Compute(uint64(len(chunk)) * GenPerByte)
				for i := range chunk {
					seed = seed*1664525 + 1013904223
					chunk[i] = byte(seed >> 24)
				}
				if _, err := w.Write(chunk); err != nil {
					return err
				}
			}
			if err := w.Close(); err != nil {
				return err
			}
			wait()
			return nil
		},
	}
}

// runFFTChild reads the pipe, performs the FFT (in hardware when the
// core supports it), and writes the result into a file.
func runFFTChild(cos workload.OS, r workload.File) {
	perByte := uint64(SoftFFTPerByte)
	if cos.CoreType() == CoreTypeFFT {
		perByte = AccelFFTPerByte
	}
	out, err := cos.Open("/fft.out", workload.Write|workload.Create|workload.Trunc)
	if err != nil {
		return
	}
	defer out.Close()
	buf := make([]byte, 4096)
	for {
		n, rerr := r.Read(buf)
		if n > 0 {
			cos.Compute(uint64(n) * perByte)
			transform(buf[:n])
			if _, werr := out.Write(buf[:n]); werr != nil {
				return
			}
		}
		if rerr != nil {
			if !errors.Is(rerr, io.EOF) {
				return
			}
			return
		}
	}
}

// transform applies a toy butterfly permutation so the output provably
// depends on the input (the cycle cost models the real FFT).
func transform(b []byte) {
	for i := 0; i+1 < len(b); i += 2 {
		lo, hi := b[i], b[i+1]
		b[i], b[i+1] = lo+hi, lo-hi
	}
}
