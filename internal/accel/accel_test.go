package accel_test

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/linuxos"
	"repro/internal/m3"
	"repro/internal/m3fs"
	"repro/internal/sim"
	"repro/internal/tile"
	"repro/internal/workload"
)

func TestFFTChainProducesOutput(t *testing.T) {
	eng := sim.NewEngine()
	plat := tile.NewPlatform(eng, tile.Config{PEs: []tile.CoreType{
		tile.CoreXtensa, tile.CoreXtensa, tile.CoreXtensa, tile.CoreFFT,
	}})
	kern := core.Boot(plat, 0)
	var svc *m3fs.Service
	if _, err := kern.StartInit("m3fs", "", m3fs.Program(kern, m3fs.Config{}, func(s *m3fs.Service) { svc = s })); err != nil {
		t.Fatal(err)
	}
	var size int64
	_, err := kern.StartInit("app", tile.CoreXtensa, func(ctx *tile.Ctx) {
		env := m3.NewEnv(ctx, kern)
		os, err := workload.NewM3OS(env)
		if err != nil {
			t.Error(err)
			return
		}
		if err := accel.FFTChain(true).Run(os); err != nil {
			t.Error(err)
			return
		}
		st, err := os.Stat("/fft.out")
		if err != nil {
			t.Error(err)
			return
		}
		size = st.Size
		env.Exit(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if size != accel.InputSize {
		t.Fatalf("fft output = %d bytes, want %d", size, accel.InputSize)
	}
	if svc == nil {
		t.Fatal("m3fs not ready")
	}
	if err := svc.FS().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAcceleratorBeatsSoftware(t *testing.T) {
	soft, err := bench.RunM3(accel.FFTChain(false), bench.M3Options{})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := bench.RunM3(accel.FFTChain(true), bench.M3Options{FFTPEs: 1, ExtraPEs: -1})
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(soft.Total) / float64(fast.Total)
	if speedup < 8 {
		t.Fatalf("accelerator speedup = %.1fx, want >= 8x end to end", speedup)
	}
}

func TestIdenticalParentCodeBothVariants(t *testing.T) {
	// The parent's generation work is identical in both variants: the
	// app cycles differ only by the child's FFT cost ratio (~30x).
	softGen := uint64(accel.InputSize) * accel.GenPerByte
	soft := softGen + uint64(accel.InputSize)*accel.SoftFFTPerByte
	fast := softGen + uint64(accel.InputSize)*accel.AccelFFTPerByte
	if ratio := float64(accel.SoftFFTPerByte) / float64(accel.AccelFFTPerByte); ratio != 30 {
		t.Fatalf("FFT cost ratio = %.0f, want 30 (the paper's factor)", ratio)
	}
	if soft <= fast {
		t.Fatal("software variant must compute more")
	}
}

func TestFFTChainOnLinux(t *testing.T) {
	bd, err := bench.RunLx(accel.FFTChain(false), linuxos.ProfileXtensa, false)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Total == 0 || bd.App == 0 {
		t.Fatalf("breakdown = %+v", bd)
	}
	// On Linux there is no accelerator to reach: requesting one runs
	// the software path on the same core.
	bd2, err := bench.RunLx(accel.FFTChain(true), linuxos.ProfileXtensa, false)
	if err != nil {
		t.Fatal(err)
	}
	if bd2.App != bd.App {
		t.Fatalf("Linux app cycles differ between variants: %d vs %d", bd2.App, bd.App)
	}
}
