package tile

import (
	"fmt"

	"repro/internal/dtu"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sim"
)

// memTile fronts the DRAM module on the NoC. It speaks the same RDMA
// protocol as a DTU-fronted scratchpad, so a memory endpoint works
// identically whether it points at DRAM or at another PE's SPM.
type memTile struct {
	eng  *sim.Engine
	net  *noc.Network
	node noc.NodeID
	dram *mem.DRAM
	reqs *sim.Queue[*noc.Packet]
}

func newMemTile(eng *sim.Engine, net *noc.Network, node noc.NodeID, dram *mem.DRAM) *memTile {
	m := &memTile{eng: eng, net: net, node: node, dram: dram, reqs: sim.NewQueue[*noc.Packet](eng)}
	net.Attach(node, m)
	// One worker per DRAM port lets independent accesses overlap when
	// the module has multiple ports; the port resource inside mem.DRAM
	// provides the actual admission control.
	for i := 0; i < dram.Ports().Capacity(); i++ {
		eng.Spawn(fmt.Sprintf("memtile%d-w%d", node, i), m.serve)
	}
	return m
}

// Deliver implements noc.Handler.
func (m *memTile) Deliver(pkt *noc.Packet) {
	if pkt.Corrupt {
		// A corrupted request must not be executed as if valid; the
		// requesting DTU's operation timeout covers the loss.
		return
	}
	switch pkt.Payload.(type) {
	case *dtu.MemReadReq, *dtu.MemWriteReq:
		// The packet outlives Deliver: a serve worker dequeues and
		// answers it later. Take ownership from the network's pool.
		pkt.Retain = true
		m.reqs.Send(pkt)
	default:
		panic(fmt.Sprintf("tile: memory tile got %T", pkt.Payload))
	}
}

func (m *memTile) serve(p *sim.Process) {
	p.SetDaemon()
	for {
		pkt := m.reqs.Recv(p)
		switch req := pkt.Payload.(type) {
		case *dtu.MemReadReq:
			buf := make([]byte, req.Len)
			resp := &dtu.MemResp{OpID: req.OpID}
			src := req.Src
			m.net.FreePacket(pkt)
			err := m.dram.Access(p, false, req.Addr, buf, func() {
				// Stream the response while the port is held: the port
				// is busy exactly as long as data leaves the module.
				resp.Data = buf
				out := m.net.NewPacket()
				out.Src, out.Dst, out.Size = m.node, src, dtu.HeaderSize+len(buf)
				out.Payload = resp
				m.net.Send(p, out)
			})
			if err != nil {
				resp.Err = err.Error()
				out := m.net.NewPacket()
				out.Src, out.Dst, out.Size = m.node, src, 16
				out.Payload = resp
				m.net.Send(p, out)
			}
		case *dtu.MemWriteReq:
			resp := &dtu.MemResp{OpID: req.OpID}
			src := req.Src
			m.net.FreePacket(pkt)
			err := m.dram.Access(p, true, req.Addr, req.Data, nil)
			if err != nil {
				resp.Err = err.Error()
			}
			out := m.net.NewPacket()
			out.Src, out.Dst, out.Size = m.node, src, 16
			out.Payload = resp
			m.net.Send(p, out)
		}
	}
}
