package tile

import (
	"testing"

	"repro/internal/dtu"
	"repro/internal/mem"
	"repro/internal/sim"
)

func TestPlatformLayout(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPlatform(eng, Homogeneous(5))
	if len(p.PEs) != 5 {
		t.Fatalf("PEs = %d", len(p.PEs))
	}
	// 5 PEs + memory tile need a mesh of >= 6 nodes.
	if p.Net.Nodes() < 6 {
		t.Fatalf("mesh nodes = %d", p.Net.Nodes())
	}
	if got := p.PEByNode(p.DRAMNode); got != nil {
		t.Fatalf("DRAM node resolved to PE %d", got.ID)
	}
	if got := p.PEByNode(2); got == nil || got.ID != 2 {
		t.Fatal("PEByNode(2) broken")
	}
}

func TestHeterogeneousTypes(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPlatform(eng, Config{PEs: []CoreType{CoreXtensa, CoreFFT, CoreXtensa}})
	if p.PEs[1].Type != CoreFFT {
		t.Fatalf("PE1 type = %s", p.PEs[1].Type)
	}
	id := p.FindPE(CoreFFT, func(pe *PE) bool { return false })
	if id != 1 {
		t.Fatalf("FindPE(fft) = %d, want 1", id)
	}
	if got := p.FindPE("gpu", func(pe *PE) bool { return false }); got != -1 {
		t.Fatalf("FindPE(gpu) = %d, want -1", got)
	}
}

func TestStartProgramComputes(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPlatform(eng, Homogeneous(2))
	var end sim.Time
	p.PEs[0].Start("work", func(c *Ctx) {
		c.Compute(1234)
		end = c.Now()
	})
	eng.Run()
	if end != 1234 {
		t.Fatalf("end = %d, want 1234", end)
	}
	if p.PEs[0].Running() {
		t.Fatal("program should be done")
	}
}

func TestDoubleStartPanics(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPlatform(eng, Homogeneous(1))
	p.PEs[0].Start("a", func(c *Ctx) { c.Compute(10) })
	defer func() {
		if recover() == nil {
			t.Fatal("second Start on busy PE must panic")
		}
	}()
	p.PEs[0].Start("b", func(c *Ctx) {})
}

func TestRDMAtoDRAMThroughMemTile(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPlatform(eng, Homogeneous(2))
	pe := p.PEs[0]
	if err := pe.DTU.Configure(3, dtu.Endpoint{
		Type: dtu.EpMemory, MemTarget: p.DRAMNode, MemAddr: 4096, MemSize: 8192, MemPerms: dtu.PermRW,
	}); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i)
	}
	var readBack []byte
	pe.Start("rdma", func(c *Ctx) {
		if err := pe.DTU.WriteMem(c.P, 3, 0, data); err != nil {
			t.Error(err)
		}
		readBack = make([]byte, 4096)
		if err := pe.DTU.ReadMem(c.P, 3, 0, readBack); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	for i := range data {
		if readBack[i] != data[i] {
			t.Fatalf("byte %d = %d, want %d", i, readBack[i], data[i])
		}
	}
	// And the DRAM module really holds the data at 4096.
	got := make([]byte, 4)
	if err := p.DRAM.Peek(4096, got); err != nil {
		t.Fatal(err)
	}
	if got[1] != 1 || got[2] != 2 {
		t.Fatalf("dram = %v", got)
	}
}

func TestDRAMBandwidthEightBytesPerCycle(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPlatform(eng, Homogeneous(1))
	pe := p.PEs[0]
	if err := pe.DTU.Configure(0, dtu.Endpoint{
		Type: dtu.EpMemory, MemTarget: p.DRAMNode, MemAddr: 0, MemSize: 1 << 20, MemPerms: dtu.PermRead,
	}); err != nil {
		t.Fatal(err)
	}
	const size = 64 << 10
	var took sim.Time
	pe.Start("read", func(c *Ctx) {
		start := c.Now()
		if err := pe.DTU.ReadMem(c.P, 0, 0, make([]byte, size)); err != nil {
			t.Error(err)
		}
		took = c.Now() - start
	})
	eng.Run()
	// Dominated by size/8 cycles streaming; overhead (hops, latency,
	// request) is small and fixed.
	ideal := sim.Time(size / 8)
	if took < ideal || took > ideal+200 {
		t.Fatalf("64 KiB read took %d cycles, want ~%d (8 B/cycle)", took, ideal)
	}
}

func TestDRAMPortContentionSerializes(t *testing.T) {
	eng := sim.NewEngine()
	cfg := Homogeneous(2)
	cfg.DRAM = mem.DRAMConfig{Size: 1 << 20, Ports: 1}
	p := NewPlatform(eng, cfg)
	const size = 32 << 10
	var finish []sim.Time
	for i := 0; i < 2; i++ {
		pe := p.PEs[i]
		if err := pe.DTU.Configure(0, dtu.Endpoint{
			Type: dtu.EpMemory, MemTarget: p.DRAMNode, MemAddr: 0, MemSize: 1 << 20, MemPerms: dtu.PermRead,
		}); err != nil {
			t.Fatal(err)
		}
		pe.Start("read", func(c *Ctx) {
			if err := pe.DTU.ReadMem(c.P, 0, 0, make([]byte, size)); err != nil {
				t.Error(err)
			}
			finish = append(finish, c.Now())
		})
	}
	eng.Run()
	if len(finish) != 2 {
		t.Fatal("missing finishes")
	}
	ser := sim.Time(size / 8)
	// The second reader must wait roughly one full streaming time
	// behind the first at the single DRAM port.
	gap := finish[1] - finish[0]
	if gap < ser/2 {
		t.Fatalf("finish gap = %d, want >= %d (port serialization)", gap, ser/2)
	}
}
