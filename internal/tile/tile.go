// Package tile assembles processing elements (core + scratchpad + DTU)
// and the memory tile into a platform connected by the NoC — the
// simulated analogue of the paper's Tomahawk MPSoC.
package tile

import (
	"fmt"

	"repro/internal/dtu"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/sim"
)

// CoreType describes the kind of core on a PE. The paper's point is
// that the OS does not care: every PE is driven through its DTU. Types
// matter only to applications that request a specific accelerator.
type CoreType string

// Core types of the prototype platform.
const (
	CoreXtensa CoreType = "xtensa" // general-purpose RISC core
	CoreFFT    CoreType = "fft"    // Xtensa with FFT instruction extensions
	CoreARM    CoreType = "arm"    // used for the Linux cross-check only
)

// PE is one processing element: core, scratchpad, and DTU.
type PE struct {
	ID   int
	Node noc.NodeID
	Type CoreType
	SPM  *mem.SPM
	DTU  *dtu.DTU

	plat *Platform
	//m3vet:resolve sharedstate owner set at program start and by serial crash callbacks
	prog *sim.Process
	//m3vet:resolve sharedstate owner set at program start and by serial crash callbacks
	crashed bool
}

// Ctx is the execution context handed to software running on a PE.
type Ctx struct {
	P  *sim.Process
	PE *PE
}

// Compute advances simulated time by n core cycles — the cost
// annotation for software work (the paper's cores are cycle-equivalent
// across the compared systems).
func (c *Ctx) Compute(n sim.Time) { c.P.Sleep(n) }

// Now returns the current simulated time.
func (c *Ctx) Now() sim.Time { return c.P.Now() }

// Start runs prog on the PE's core. A PE runs one program at a time
// (the paper's PEs are owned by one application); starting while a
// previous program still runs panics.
func (pe *PE) Start(name string, prog func(c *Ctx)) *sim.Process {
	if pe.prog != nil && !pe.prog.Dead() {
		panic(fmt.Sprintf("tile: PE %d already running %s", pe.ID, pe.prog.Name()))
	}
	p := pe.plat.Eng.Spawn(fmt.Sprintf("pe%d/%s", pe.ID, name), func(p *sim.Process) {
		prog(&Ctx{P: p, PE: pe})
	})
	pe.prog = p
	return p
}

// Running reports whether a program currently occupies the PE.
func (pe *PE) Running() bool { return pe.prog != nil && !pe.prog.Dead() }

// Crash kills the PE's core permanently: the running program dies
// mid-instruction and the core never fetches again. The DTU is a
// separate hardware block and keeps serving the NoC — the kernel can
// still probe the PE and deconfigure its endpoints, which is exactly
// the paper's isolation story surviving the failure. Only
// internal/fault may crash PEs (m3vet: faultsite).
func (pe *PE) Crash() {
	if pe.crashed {
		return
	}
	pe.crashed = true
	if pe.prog != nil && !pe.prog.Dead() {
		pe.prog.Kill()
	}
	if pe.plat.Eng.Tracing() {
		pe.plat.Eng.Emit(fmt.Sprintf("pe%d", pe.ID), "core crashed")
	}
	if tr := pe.plat.Obs; tr.On() {
		tr.Emit(obs.Event{At: pe.plat.Eng.Now(), PE: int32(pe.Node), Layer: obs.LApp,
			Kind: obs.EvCrash})
	}
}

// Obs returns the platform's structured tracer (nil-safe; software on
// the PE reads it to emit app- and service-layer events).
func (pe *PE) Obs() *obs.Tracer { return pe.plat.Obs }

// Crashed reports whether the core was crashed by fault injection.
func (pe *PE) Crashed() bool { return pe.crashed }

// Reset stops the PE on the kernel's behalf (teardown of a revoked
// VPE, §4.5.5: the kernel "resets the PE"): the program is killed and
// the DTU's endpoint registers are cleared, so the freed PE carries no
// stale communication rights to its next occupant.
func (pe *PE) Reset() {
	if pe.prog != nil && !pe.prog.Dead() {
		pe.prog.Kill()
	}
	pe.DTU.ResetEndpoints()
}

// Config parameterizes a platform.
type Config struct {
	// PEs lists the core type of each processing element, in PE-id
	// order. The platform places them on a near-square mesh with the
	// memory tile on the last node.
	PEs []CoreType
	// SPMSize is the per-PE data scratchpad in bytes (default 64 KiB,
	// the simulator version of Tomahawk).
	SPMSize int
	// EndpointsPerDTU (default 8).
	EndpointsPerDTU int
	// DRAM configures the memory tile (default 64 MiB, 1 port).
	DRAM mem.DRAMConfig
	// NoC overrides mesh parameters; Width/Height are derived from the
	// PE count when zero.
	NoC noc.Config
	// Obs, if set, is the structured tracer wired into the NoC and every
	// DTU (nil keeps structured observability off — not a single event).
	Obs *obs.Tracer
}

// Platform is the assembled hardware: PEs plus one memory tile on a
// mesh NoC, sharing a simulation engine.
type Platform struct {
	Eng  *sim.Engine
	Net  *noc.Network
	PEs  []*PE
	DRAM *mem.DRAM
	// DRAMNode is the memory tile's NoC node.
	DRAMNode noc.NodeID
	// Obs is the structured tracer (nil-safe; see package obs).
	Obs *obs.Tracer
}

// Homogeneous returns a Config with n general-purpose PEs.
func Homogeneous(n int) Config {
	pes := make([]CoreType, n)
	for i := range pes {
		pes[i] = CoreXtensa
	}
	return Config{PEs: pes}
}

// NewPlatform builds and wires the platform.
func NewPlatform(eng *sim.Engine, cfg Config) *Platform {
	n := len(cfg.PEs)
	if n == 0 {
		panic("tile: platform needs at least one PE")
	}
	if cfg.SPMSize == 0 {
		cfg.SPMSize = 64 << 10
	}
	if cfg.DRAM.Size == 0 {
		cfg.DRAM.Size = 64 << 20
	}
	nocCfg := cfg.NoC
	if nocCfg.Width == 0 || nocCfg.Height == 0 {
		w := 1
		for w*w < n+1 {
			w++
		}
		h := (n + 1 + w - 1) / w
		nocCfg.Width, nocCfg.Height = w, h
	}
	if nocCfg.Width*nocCfg.Height < n+1 {
		panic("tile: mesh too small for PEs + memory tile")
	}
	p := &Platform{
		Eng:  eng,
		Net:  noc.New(eng, nocCfg),
		DRAM: mem.NewDRAM(eng, cfg.DRAM),
		Obs:  cfg.Obs,
	}
	p.Net.SetObserver(cfg.Obs)
	for i, ct := range cfg.PEs {
		node := noc.NodeID(i)
		pe := &PE{
			ID:   i,
			Node: node,
			Type: ct,
			SPM:  mem.NewSPM(cfg.SPMSize),
			plat: p,
		}
		pe.DTU = dtu.New(eng, p.Net, node, pe.SPM, cfg.EndpointsPerDTU)
		pe.DTU.SetObserver(cfg.Obs)
		thisPE := pe
		pe.DTU.SetCoreStatus(func() bool { return thisPE.crashed })
		p.PEs = append(p.PEs, pe)
	}
	p.DRAMNode = noc.NodeID(n)
	newMemTile(eng, p.Net, p.DRAMNode, p.DRAM)
	return p
}

// PEByNode returns the PE attached at node, or nil for the memory tile.
func (p *Platform) PEByNode(node noc.NodeID) *PE {
	if int(node) < len(p.PEs) {
		return p.PEs[node]
	}
	return nil
}

// FindPE returns the first PE of the given type for which free reports
// true under the caller's bookkeeping, or -1. The kernel uses its own
// allocation bitmaps; this helper serves tests and examples.
func (p *Platform) FindPE(t CoreType, used func(*PE) bool) int {
	for _, pe := range p.PEs {
		if pe.Type == t && !used(pe) {
			return pe.ID
		}
	}
	return -1
}
