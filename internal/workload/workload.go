// Package workload implements the paper's application-level benchmarks
// (§5.6) once, against an OS-neutral interface, and provides adapters
// for both M3 (libm3) and the Linux model — the same methodology as the
// paper's cat+tr benchmark, which used "the same code for M3 and
// Linux, except for programming against libm3".
package workload

import (
	"errors"
	"io"
)

// OpenFlags mirrors the flag sets of both systems.
type OpenFlags uint32

// Open flags.
const (
	Read OpenFlags = 1 << iota
	Write
	Create
	Trunc
)

// Stat is the metadata subset the benchmarks need.
type Stat struct {
	Size  int64
	IsDir bool
}

// File is an open file or pipe end.
type File interface {
	Read(buf []byte) (int, error)
	Write(buf []byte) (int, error)
	Close() error
}

// SeekableFile additionally supports Seek; regular files implement it.
type SeekableFile interface {
	File
	Seek(off int64, whence int) (int64, error)
}

// OS is the per-process view of an operating system.
type OS interface {
	// Compute models application work in cycles.
	Compute(cycles uint64)

	Open(path string, flags OpenFlags) (File, error)
	Stat(path string) (Stat, error)
	Mkdir(path string) error
	Unlink(path string) error
	ReadDir(path string) ([]string, error)

	// PipeFromChild starts a child process/VPE running child with the
	// write end of a fresh pipe and returns the read end plus a wait
	// function. The child receives its own OS handle.
	PipeFromChild(name string, child func(os OS, w File)) (File, func(), error)

	// PipeToChild starts a child with the read end and returns the
	// write end: the FFT filter-chain shape (§5.8). peType requests a
	// specific core type ("" = same as parent); on Linux it is ignored.
	PipeToChild(name, peType string, child func(os OS, r File)) (File, func(), error)

	// CopyRange copies n bytes from src to dst using an in-kernel path
	// when the OS has one (sendfile on Linux, §5.6); handled reports
	// whether it did. Callers fall back to read+write loops.
	CopyRange(dst, src File, n int) (int, bool, error)

	// CoreType returns the type of the core the process runs on ("" on
	// Linux): programs pick accelerated code paths with it.
	CoreType() string
}

// CopyAll copies src to dst in bufSize chunks, preferring the OS copy
// path, and returns the bytes moved.
func CopyAll(os OS, dst, src File, bufSize int) (int, error) {
	if n, ok, err := copyByRange(os, dst, src); ok {
		return n, err
	}
	buf := make([]byte, bufSize)
	total := 0
	for {
		n, rerr := src.Read(buf)
		if n > 0 {
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return total, werr
			}
			total += n
		}
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				return total, nil
			}
			return total, rerr
		}
	}
}

func copyByRange(os OS, dst, src File) (int, bool, error) {
	total := 0
	for {
		n, ok, err := os.CopyRange(dst, src, 64<<10)
		if !ok {
			return 0, false, nil
		}
		total += n
		if err != nil {
			if errors.Is(err, io.EOF) {
				return total, true, nil
			}
			return total, true, err
		}
	}
}

// Benchmark is one application-level workload: Setup prepares the
// filesystem (not measured), Run is the measured phase.
type Benchmark struct {
	Name  string
	Setup func(os OS) error
	Run   func(os OS) error
	// PEs is the number of application PEs one instance occupies on M3
	// (cat+tr needs two, §5.7).
	PEs int
}
