package workload_test

import (
	"errors"
	"fmt"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/linuxos"
	"repro/internal/m3"
	"repro/internal/m3fs"
	"repro/internal/sim"
	"repro/internal/tile"
	"repro/internal/workload"
)

// runOnM3 executes fn inside a booted M3 system with enough PEs.
func runOnM3(t *testing.T, appPEs int, fn func(os *workload.M3OS) error) {
	t.Helper()
	eng := sim.NewEngine()
	plat := tile.NewPlatform(eng, tile.Homogeneous(2+appPEs))
	kern := core.Boot(plat, 0)
	if _, err := kern.StartInit("m3fs", "", m3fs.Program(kern, m3fs.Config{}, nil)); err != nil {
		t.Fatal(err)
	}
	var ferr error
	_, err := kern.StartInit("app", "", func(ctx *tile.Ctx) {
		env := m3.NewEnv(ctx, kern)
		os, err := workload.NewM3OS(env)
		if err != nil {
			ferr = err
			return
		}
		ferr = fn(os)
		env.Exit(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if ferr != nil {
		t.Fatal(ferr)
	}
}

// runOnLx executes fn inside a Linux system.
func runOnLx(t *testing.T, fn func(os *workload.LxOS) error) {
	t.Helper()
	eng := sim.NewEngine()
	sys := linuxos.New(eng, linuxos.ProfileXtensa, false)
	var ferr error
	sys.Spawn("app", func(pr *linuxos.Proc) {
		ferr = fn(workload.NewLxOS(sys, pr))
	})
	eng.Run()
	if ferr != nil {
		t.Fatal(ferr)
	}
}

// runBench runs setup+run and verify on one OS handle.
func runBench(b workload.Benchmark, os workload.OS) error {
	if err := b.Setup(os); err != nil {
		return err
	}
	return b.Run(os)
}

// readAll reads a whole file through the workload interface.
func readAll(os workload.OS, path string) ([]byte, error) {
	f, err := os.Open(path, workload.Read)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []byte
	buf := make([]byte, 4096)
	for {
		n, rerr := f.Read(buf)
		out = append(out, buf[:n]...)
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				return out, nil
			}
			return out, rerr
		}
	}
}

// verifyCatTr checks that the output file is the input with a->b.
func verifyCatTr(os workload.OS) error {
	out, err := readAll(os, "/output.txt")
	if err != nil {
		return err
	}
	if len(out) != 64<<10 {
		return errorsNew("cat+tr output size %d", len(out))
	}
	for i, c := range out {
		if c != 'b' {
			return errorsNew("cat+tr byte %d = %q", i, c)
		}
	}
	return nil
}

// verifyUntar checks every extracted file against its source.
func verifyUntar(os workload.OS) error {
	srcs, err := os.ReadDir("/src")
	if err != nil {
		return err
	}
	if len(srcs) != 6 {
		return errorsNew("src files = %d", len(srcs))
	}
	for _, name := range srcs {
		want, err := readAll(os, "/src/"+name)
		if err != nil {
			return err
		}
		got, err := readAll(os, "/dst/"+name)
		if err != nil {
			return err
		}
		if len(got) != len(want) {
			return errorsNew("%s: %d bytes, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				return errorsNew("%s: byte %d differs", name, i)
			}
		}
	}
	return nil
}

func errorsNew(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}

func TestCatTrCorrectOnBothOSes(t *testing.T) {
	b := workload.CatTr()
	runOnM3(t, b.PEs+1, func(os *workload.M3OS) error {
		if err := runBench(b, os); err != nil {
			return err
		}
		return verifyCatTr(os)
	})
	runOnLx(t, func(os *workload.LxOS) error {
		if err := runBench(b, os); err != nil {
			return err
		}
		return verifyCatTr(os)
	})
}

func TestTarUntarRoundTripOnBothOSes(t *testing.T) {
	b := workload.Untar() // setup includes tar
	runOnM3(t, b.PEs, func(os *workload.M3OS) error {
		if err := runBench(b, os); err != nil {
			return err
		}
		return verifyUntar(os)
	})
	runOnLx(t, func(os *workload.LxOS) error {
		if err := runBench(b, os); err != nil {
			return err
		}
		return verifyUntar(os)
	})
}

func TestFindOnBothOSes(t *testing.T) {
	b := workload.Find()
	runOnM3(t, b.PEs, func(os *workload.M3OS) error { return runBench(b, os) })
	runOnLx(t, func(os *workload.LxOS) error { return runBench(b, os) })
}

func TestSqliteOnBothOSes(t *testing.T) {
	b := workload.Sqlite()
	runOnM3(t, b.PEs, func(os *workload.M3OS) error { return runBench(b, os) })
	runOnLx(t, func(os *workload.LxOS) error { return runBench(b, os) })
}

func TestPrefixNamespaces(t *testing.T) {
	// Two prefixed instances of tar must not interfere.
	b := workload.Tar()
	runOnM3(t, 1, func(os *workload.M3OS) error {
		for _, prefix := range []string{"/a", "/b"} {
			os.Prefix = prefix
			if err := os.Mkdir(""); err != nil {
				return err
			}
			if err := runBench(b, os); err != nil {
				return err
			}
			st, err := os.Stat("/archive.tar")
			if err != nil {
				return err
			}
			if st.Size < 1<<20 {
				return errorsNew("%s archive too small: %d", prefix, st.Size)
			}
		}
		return nil
	})
}

func TestByName(t *testing.T) {
	if _, err := workload.ByName("tar"); err != nil {
		t.Fatal(err)
	}
	if _, err := workload.ByName("nope"); err == nil {
		t.Fatal("unknown benchmark must fail")
	}
	if got := len(workload.All()); got != 5 {
		t.Fatalf("All() = %d benchmarks, want 5", got)
	}
}

// TestThreeStagePipeline chains gen -> transform -> sink across three
// processes/VPEs with two pipes: the filter-chain shape the paper's
// introduction motivates, here with a nested child creating its own
// child (transitive VPE creation and capability delegation on M3).
func TestThreeStagePipeline(t *testing.T) {
	const total = 16 << 10
	run := func(os workload.OS) error {
		// Stage 2 (sink) is created by stage 1 (transform), which is
		// created by the parent (generator).
		w1, wait1, err := os.PipeToChild("stage1", "", func(os1 workload.OS, r1 workload.File) {
			w2, wait2, err := os1.PipeToChild("stage2", "", func(os2 workload.OS, r2 workload.File) {
				out, err := os2.Open("/chain.out", workload.Write|workload.Create|workload.Trunc)
				if err != nil {
					return
				}
				_, _ = workload.CopyAll(os2, out, r2, 2048)
				_ = out.Close()
			})
			if err != nil {
				return
			}
			buf := make([]byte, 2048)
			for {
				n, rerr := r1.Read(buf)
				if n > 0 {
					os1.Compute(uint64(n)) // the transform
					for i := 0; i < n; i++ {
						buf[i] ^= 0x5a
					}
					if _, werr := w2.Write(buf[:n]); werr != nil {
						return
					}
				}
				if rerr != nil {
					break
				}
			}
			_ = w2.Close()
			wait2()
		})
		if err != nil {
			return err
		}
		chunk := make([]byte, 2048)
		for i := range chunk {
			chunk[i] = byte(i)
		}
		for sent := 0; sent < total; sent += len(chunk) {
			if _, err := w1.Write(chunk); err != nil {
				return err
			}
		}
		if err := w1.Close(); err != nil {
			return err
		}
		wait1()
		st, err := os.Stat("/chain.out")
		if err != nil {
			return err
		}
		if st.Size != total {
			return fmt.Errorf("chain output = %d bytes, want %d", st.Size, total)
		}
		out, err := readAll(os, "/chain.out")
		if err != nil {
			return err
		}
		for i := 0; i < 2048; i++ {
			if out[i] != byte(i)^0x5a {
				return fmt.Errorf("byte %d not transformed: %d", i, out[i])
			}
		}
		return nil
	}
	// M3: parent + 2 child VPEs = 3 app PEs.
	runOnM3(t, 3, func(os *workload.M3OS) error { return run(os) })
	runOnLx(t, func(os *workload.LxOS) error { return run(os) })
}

// TestCopyRangeFallbacks: sendfile only applies to regular files; pipe
// ends and the M3 adapter fall back to read+write.
func TestCopyRangeFallbacks(t *testing.T) {
	runOnLx(t, func(os *workload.LxOS) error {
		f1, err := os.Open("/a", workload.Write|workload.Create)
		if err != nil {
			return err
		}
		if _, err := f1.Write([]byte("12345678")); err != nil {
			return err
		}
		r, wait, err := os.PipeFromChild("w", func(cos workload.OS, w workload.File) {
			_, _ = w.Write([]byte("pipe"))
		})
		if err != nil {
			return err
		}
		// Pipe involved: CopyRange must decline.
		if _, ok, _ := os.CopyRange(f1, r, 4); ok {
			return fmt.Errorf("sendfile accepted a pipe")
		}
		buf := make([]byte, 8)
		if _, err := r.Read(buf); err != nil {
			return err
		}
		wait()
		return f1.Close()
	})
	runOnM3(t, 1, func(os *workload.M3OS) error {
		f1, err := os.Open("/a", workload.Write|workload.Create)
		if err != nil {
			return err
		}
		f2, err := os.Open("/b", workload.Write|workload.Create)
		if err != nil {
			return err
		}
		if _, ok, _ := os.CopyRange(f1, f2, 4); ok {
			return fmt.Errorf("M3 claims an in-kernel copy path")
		}
		_ = f1.Close()
		return f2.Close()
	})
}
