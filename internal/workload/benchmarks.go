package workload

import (
	"errors"
	"fmt"
	"io"
	"strings"
)

// The five application-level benchmarks of §5.6. File sizes and item
// counts follow the paper: cat+tr pipes a 64 KiB file, tar/untar work
// on a 1.2 MiB archive of 60–500 KiB files, find walks a 40-item tree,
// and sqlite creates a table, inserts 8 entries, and selects them.

// Application compute costs (cycles) — identical on both systems, as
// the cores are cycle-equivalent (§5.1).
const (
	trCostPerByte    = 1
	tarHeaderCost    = 2000
	findMatchCost    = 3000
	sqliteOpenCost   = 400000
	sqliteCreateCost = 250000
	sqliteInsertCost = 180000
	sqliteSelectCost = 500000
	sqlitePageSize   = 4096
)

// CatTr is benchmark 1: a child writes a 64 KiB file into a pipe; the
// parent reads the pipe, replaces all "a" with "b", and writes the
// result into a new file. It exercises application loading, pipes, and
// the filesystem.
func CatTr() Benchmark {
	const size = 64 << 10
	return Benchmark{
		Name: "cat+tr",
		PEs:  2,
		Setup: func(os OS) error {
			return writePattern(os, "/input.txt", size, 'a')
		},
		Run: func(os OS) error {
			r, wait, err := os.PipeFromChild("cat", func(cos OS, w File) {
				f, err := cos.Open("/input.txt", Read)
				if err != nil {
					return
				}
				_, _ = CopyAll(cos, w, f, 4096)
				_ = f.Close()
				_ = w.Close()
			})
			if err != nil {
				return err
			}
			out, err := os.Open("/output.txt", Write|Create|Trunc)
			if err != nil {
				return err
			}
			buf := make([]byte, 4096)
			for {
				n, rerr := r.Read(buf)
				if n > 0 {
					os.Compute(uint64(n) * trCostPerByte) // tr a -> b
					for i := 0; i < n; i++ {
						if buf[i] == 'a' {
							buf[i] = 'b'
						}
					}
					if _, werr := out.Write(buf[:n]); werr != nil {
						return werr
					}
				}
				if rerr != nil {
					if !errors.Is(rerr, io.EOF) {
						return rerr
					}
					break
				}
			}
			if err := out.Close(); err != nil {
				return err
			}
			_ = r.Close()
			wait()
			return nil
		},
	}
}

// tarSizes are the archived file sizes: between 60 and 500 KiB,
// 1.2 MiB in total (§5.6).
var tarSizes = []int{60 << 10, 100 << 10, 150 << 10, 200 << 10, 219 << 10, 500 << 10}

const tarHeaderSize = 512

// Tar is benchmark 2: create a tar archive from the source files.
func Tar() Benchmark {
	return Benchmark{
		Name: "tar",
		PEs:  1,
		Setup: func(os OS) error {
			if err := os.Mkdir("/src"); err != nil {
				return err
			}
			for i, size := range tarSizes {
				if err := writePattern(os, tarMemberPath(i), size, byte('A'+i)); err != nil {
					return err
				}
			}
			return nil
		},
		Run: func(os OS) error {
			arch, err := os.Open("/archive.tar", Write|Create|Trunc)
			if err != nil {
				return err
			}
			hdr := make([]byte, tarHeaderSize)
			for i, size := range tarSizes {
				os.Compute(tarHeaderCost) // build the header
				name := tarMemberPath(i)
				copy(hdr, name)
				putSize(hdr[100:], size)
				if _, err := arch.Write(hdr); err != nil {
					return err
				}
				f, err := os.Open(name, Read)
				if err != nil {
					return err
				}
				if _, err := CopyAll(os, arch, f, 4096); err != nil {
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
			}
			return arch.Close()
		},
	}
}

// Untar is benchmark 3: unpack the same archive.
func Untar() Benchmark {
	t := Tar()
	return Benchmark{
		Name: "untar",
		PEs:  1,
		Setup: func(os OS) error {
			if err := t.Setup(os); err != nil {
				return err
			}
			if err := t.Run(os); err != nil {
				return err
			}
			if err := os.Mkdir("/dst"); err != nil {
				return err
			}
			return nil
		},
		Run: func(os OS) error {
			arch, err := os.Open("/archive.tar", Read)
			if err != nil {
				return err
			}
			hdr := make([]byte, tarHeaderSize)
			for {
				n, rerr := io.ReadFull(fileReader{arch}, hdr)
				if rerr != nil || n < tarHeaderSize {
					break
				}
				os.Compute(tarHeaderCost) // parse the header
				name := cstr(hdr[:100])
				size := getSize(hdr[100:])
				base := name[strings.LastIndex(name, "/")+1:]
				out, err := os.Open("/dst/"+base, Write|Create|Trunc)
				if err != nil {
					return err
				}
				if err := copyN(os, out, arch, size); err != nil {
					return err
				}
				if err := out.Close(); err != nil {
					return err
				}
			}
			return arch.Close()
		},
	}
}

// Find is benchmark 4: search for files within a directory tree of 40
// items. It consists mostly of stat calls (§5.6).
func Find() Benchmark {
	// 4 directories with 9 files each = 40 items.
	return Benchmark{
		Name: "find",
		PEs:  1,
		Setup: func(os OS) error {
			if err := os.Mkdir("/tree"); err != nil {
				return err
			}
			for d := 0; d < 4; d++ {
				dir := fmt.Sprintf("/tree/dir%d", d)
				if err := os.Mkdir(dir); err != nil {
					return err
				}
				for f := 0; f < 9; f++ {
					name := fmt.Sprintf("%s/file%d.txt", dir, f)
					if f%3 == 0 {
						name = fmt.Sprintf("%s/match%d.log", dir, f)
					}
					if err := writePattern(os, name, 128, 'x'); err != nil {
						return err
					}
				}
			}
			return nil
		},
		Run: func(os OS) error {
			matches := 0
			var walk func(dir string) error
			walk = func(dir string) error {
				names, err := os.ReadDir(dir)
				if err != nil {
					return err
				}
				for _, name := range names {
					full := dir + "/" + name
					st, err := os.Stat(full)
					if err != nil {
						return err
					}
					os.Compute(findMatchCost) // pattern match on the name
					if strings.HasSuffix(name, ".log") {
						matches++
					}
					if st.IsDir {
						if err := walk(full); err != nil {
							return err
						}
					}
				}
				return nil
			}
			if err := walk("/tree"); err != nil {
				return err
			}
			if matches != 12 {
				return fmt.Errorf("find: %d matches, want 12", matches)
			}
			return nil
		},
	}
}

// Sqlite is benchmark 5: create a table, insert 8 entries, and select
// them. Computation makes up the majority of the execution time
// (§5.6), with page-sized database I/O in between.
func Sqlite() Benchmark {
	return Benchmark{
		Name:  "sqlite",
		PEs:   1,
		Setup: func(os OS) error { return nil },
		Run: func(os OS) error {
			os.Compute(sqliteOpenCost)
			db, err := os.Open("/test.db", Read|Write|Create)
			if err != nil {
				return err
			}
			page := make([]byte, sqlitePageSize)
			// CREATE TABLE: root page write.
			os.Compute(sqliteCreateCost)
			fill(page, 0xC3)
			if _, err := db.Write(page); err != nil {
				return err
			}
			// 8 INSERTs: compute + journal write + page write.
			jrn, err := os.Open("/test.db-journal", Write|Create|Trunc)
			if err != nil {
				return err
			}
			for i := 0; i < 8; i++ {
				os.Compute(sqliteInsertCost)
				fill(page, byte(i))
				if _, err := jrn.Write(page); err != nil {
					return err
				}
				if _, err := db.Write(page); err != nil {
					return err
				}
			}
			if err := jrn.Close(); err != nil {
				return err
			}
			if err := os.Unlink("/test.db-journal"); err != nil {
				return err
			}
			if err := db.Close(); err != nil {
				return err
			}
			// SELECT: re-open, read the pages back, evaluate.
			db, err = os.Open("/test.db", Read)
			if err != nil {
				return err
			}
			for {
				if _, err := db.Read(page); err != nil {
					break
				}
			}
			os.Compute(sqliteSelectCost)
			return db.Close()
		},
	}
}

// All returns the five benchmarks in the paper's order.
func All() []Benchmark {
	return []Benchmark{CatTr(), Tar(), Untar(), Find(), Sqlite()}
}

// ByName returns a benchmark by name.
func ByName(name string) (Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// --- helpers ---

func tarMemberPath(i int) string { return fmt.Sprintf("/src/file%d.dat", i) }

// writePattern creates path with size bytes of the given fill.
func writePattern(os OS, path string, size int, fill byte) error {
	f, err := os.Open(path, Write|Create|Trunc)
	if err != nil {
		return err
	}
	buf := make([]byte, 4096)
	for i := range buf {
		buf[i] = fill
	}
	for written := 0; written < size; {
		n := len(buf)
		if size-written < n {
			n = size - written
		}
		if _, err := f.Write(buf[:n]); err != nil {
			return err
		}
		written += n
	}
	return f.Close()
}

// copyN copies exactly n bytes, using the in-kernel path when the OS
// has one (untar uses sendfile on Linux, §5.6).
func copyN(os OS, dst, src File, n int) error {
	for n > 0 {
		c, ok, err := os.CopyRange(dst, src, n)
		if !ok {
			break
		}
		n -= c
		if err != nil {
			return err
		}
	}
	buf := make([]byte, 4096)
	for n > 0 {
		c := len(buf)
		if n < c {
			c = n
		}
		r, err := src.Read(buf[:c])
		if r > 0 {
			if _, werr := dst.Write(buf[:r]); werr != nil {
				return werr
			}
			n -= r
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func fill(b []byte, v byte) {
	for i := range b {
		b[i] = v
	}
}

func cstr(b []byte) string {
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}

func putSize(b []byte, size int) {
	for i := 0; i < 8; i++ {
		b[i] = byte(size >> (8 * i))
	}
}

func getSize(b []byte) int {
	size := 0
	for i := 0; i < 8; i++ {
		size |= int(b[i]) << (8 * i)
	}
	return size
}

// fileReader adapts File to io.Reader for io.ReadFull.
type fileReader struct{ f File }

func (r fileReader) Read(p []byte) (int, error) { return r.f.Read(p) }
