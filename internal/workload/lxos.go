package workload

import (
	"errors"
	"io"

	"repro/internal/linuxos"
	"repro/internal/sim"
)

// LxOS adapts a Linux process to the workload interface.
type LxOS struct {
	Sys  *linuxos.System
	Proc *linuxos.Proc
}

var _ OS = (*LxOS)(nil)

// NewLxOS wraps an existing process.
func NewLxOS(sys *linuxos.System, pr *linuxos.Proc) *LxOS {
	return &LxOS{Sys: sys, Proc: pr}
}

// Compute models application work.
func (o *LxOS) Compute(cycles uint64) { o.Proc.Compute(sim.Time(cycles)) }

// Open opens path.
func (o *LxOS) Open(path string, flags OpenFlags) (File, error) {
	var lf linuxos.OpenFlags
	if flags&Read != 0 {
		lf |= linuxos.ORead
	}
	if flags&Write != 0 {
		lf |= linuxos.OWrite
	}
	if flags&Create != 0 {
		lf |= linuxos.OCreate
	}
	if flags&Trunc != 0 {
		lf |= linuxos.OTrunc
	}
	fd, err := o.Proc.Open(path, lf)
	if err != nil {
		return nil, err
	}
	return &lxFile{pr: o.Proc, fd: fd, regular: true}, nil
}

// Stat returns file metadata.
func (o *LxOS) Stat(path string) (Stat, error) {
	st, err := o.Proc.Stat(path)
	if err != nil {
		return Stat{}, err
	}
	return Stat{Size: st.Size, IsDir: st.IsDir}, nil
}

// Mkdir creates a directory.
func (o *LxOS) Mkdir(path string) error { return o.Proc.Mkdir(path) }

// Unlink removes a file.
func (o *LxOS) Unlink(path string) error { return o.Proc.Unlink(path) }

// ReadDir lists entry names.
func (o *LxOS) ReadDir(path string) ([]string, error) { return o.Proc.ReadDir(path) }

// CopyRange uses sendfile for regular files (§5.6).
func (o *LxOS) CopyRange(dst, src File, n int) (int, bool, error) {
	d, ok1 := dst.(*lxFile)
	s, ok2 := src.(*lxFile)
	if !ok1 || !ok2 || !d.regular || !s.regular {
		return 0, false, nil
	}
	c, err := o.Proc.Sendfile(d.fd, s.fd, n)
	return c, true, err
}

// CoreType: Linux runs on the general-purpose core only.
func (o *LxOS) CoreType() string { return "" }

// PipeFromChild forks a child holding the pipe's write end.
func (o *LxOS) PipeFromChild(name string, childFn func(os OS, w File)) (File, func(), error) {
	rfd, wfd := o.Proc.Pipe()
	child := o.Proc.Fork(name, func(ch *linuxos.Proc) {
		_ = ch.Close(rfd)
		cos := NewLxOS(o.Sys, ch)
		w := &lxFile{pr: ch, fd: wfd}
		childFn(cos, w)
		_ = w.Close()
	})
	_ = o.Proc.Close(wfd)
	wait := func() { o.Proc.Wait(child) }
	return &lxFile{pr: o.Proc, fd: rfd}, wait, nil
}

// PipeToChild forks a child holding the pipe's read end; peType is
// meaningless on Linux (no accelerator cores are reachable, which is
// the paper's point).
func (o *LxOS) PipeToChild(name, peType string, childFn func(os OS, r File)) (File, func(), error) {
	rfd, wfd := o.Proc.Pipe()
	child := o.Proc.Fork(name, func(ch *linuxos.Proc) {
		_ = ch.Close(wfd)
		cos := NewLxOS(o.Sys, ch)
		r := &lxFile{pr: ch, fd: rfd}
		childFn(cos, r)
		_ = r.Close()
	})
	_ = o.Proc.Close(rfd)
	wait := func() { o.Proc.Wait(child) }
	return &lxFile{pr: o.Proc, fd: wfd}, wait, nil
}

// lxFile adapts a file descriptor.
type lxFile struct {
	pr      *linuxos.Proc
	fd      int
	regular bool
	closed  bool
}

func (f *lxFile) Read(b []byte) (int, error)  { return f.pr.Read(f.fd, b) }
func (f *lxFile) Write(b []byte) (int, error) { return f.pr.Write(f.fd, b) }
func (f *lxFile) Close() error {
	if f.closed {
		return nil
	}
	f.closed = true
	return f.pr.Close(f.fd)
}
func (f *lxFile) Seek(off int64, whence int) (int64, error) {
	if !f.regular {
		return 0, errors.New("workload: seek on pipe")
	}
	return f.pr.Seek(f.fd, off, whence)
}

var _ io.Reader = (*lxFile)(nil)
