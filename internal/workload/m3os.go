package workload

import (
	"errors"
	"fmt"

	"repro/internal/kif"
	"repro/internal/m3"
	"repro/internal/m3fs"
	"repro/internal/sim"
	"repro/internal/tile"
)

// M3OS adapts a libm3 environment to the workload interface.
type M3OS struct {
	Env *m3.Env
	FS  *m3fs.Client
	// Prefix is prepended to every path, giving each benchmark
	// instance its own namespace in the scalability experiment.
	Prefix string

	// appAcc accumulates application compute cycles across this OS
	// handle and its children, for the evaluation's stacked bars.
	appAcc *uint64
}

var _ OS = (*M3OS)(nil)

// NewM3OS mounts m3fs at "/" and returns the adapter.
func NewM3OS(env *m3.Env) (*M3OS, error) {
	c, err := m3fs.MountAt(env, "/", "")
	if err != nil {
		return nil, err
	}
	return &M3OS{Env: env, FS: c, appAcc: new(uint64)}, nil
}

// AppCycles returns the accumulated application compute cycles.
func (o *M3OS) AppCycles() uint64 { return *o.appAcc }

// ResetAppCycles clears the accumulator (between setup and run).
func (o *M3OS) ResetAppCycles() { *o.appAcc = 0 }

func (o *M3OS) path(p string) string { return o.Prefix + p }

// Compute models application work.
func (o *M3OS) Compute(cycles uint64) {
	*o.appAcc += cycles
	o.Env.Ctx.Compute(sim.Time(cycles))
}

// Open opens path through the VFS.
func (o *M3OS) Open(path string, flags OpenFlags) (File, error) {
	var mf m3.OpenFlags
	if flags&Read != 0 {
		mf |= m3.OpenRead
	}
	if flags&Write != 0 {
		mf |= m3.OpenWrite
	}
	if flags&Create != 0 {
		mf |= m3.OpenCreate
	}
	if flags&Trunc != 0 {
		mf |= m3.OpenTrunc
	}
	f, err := o.Env.VFS.Open(o.path(path), mf)
	if err != nil {
		return nil, err
	}
	return m3File{f}, nil
}

// Stat returns file metadata.
func (o *M3OS) Stat(path string) (Stat, error) {
	st, err := o.Env.VFS.Stat(o.path(path))
	if err != nil {
		return Stat{}, err
	}
	return Stat{Size: st.Size, IsDir: st.IsDir}, nil
}

// Mkdir creates a directory.
func (o *M3OS) Mkdir(path string) error { return o.Env.VFS.Mkdir(o.path(path)) }

// Unlink removes a file.
func (o *M3OS) Unlink(path string) error { return o.Env.VFS.Unlink(o.path(path)) }

// ReadDir lists entry names.
func (o *M3OS) ReadDir(path string) ([]string, error) {
	ents, err := o.Env.VFS.ReadDir(o.path(path))
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name
	}
	return names, nil
}

// CopyRange: M3 has no in-kernel copy path; callers use read+write.
func (o *M3OS) CopyRange(dst, src File, n int) (int, bool, error) { return 0, false, nil }

// CoreType returns the PE's core type.
func (o *M3OS) CoreType() string { return string(o.Env.Ctx.PE.Type) }

// Selectors at which pipe capabilities are passed between parent and
// child VPEs.
const (
	pipeSGateSel = 100
	pipeWMemSel  = 101
	fsSessSel    = 102
	fsSGateSel   = 103
)

// shareFS delegates the parent's m3fs session and request gate to the
// child, the libm3 analogue of a forked child inheriting the mount.
func (o *M3OS) shareFS(vpe *m3.ChildVPE) error {
	if err := vpe.Delegate(o.FS.SessSel(), fsSessSel, 1); err != nil {
		return err
	}
	return vpe.Delegate(o.FS.SGateSel(), fsSGateSel, 1)
}

func (o *M3OS) childM3OS(child *m3.Env) *M3OS {
	c := m3fs.ClientFromCaps(child, fsSessSel, fsSGateSel)
	_ = child.VFS.Mount("/", c)
	return &M3OS{Env: child, FS: c, Prefix: o.Prefix, appAcc: o.appAcc}
}

// PipeFromChild creates the pipe locally (the parent reads, so it owns
// the receive gate), starts the child VPE with VPE.Run, and delegates
// the writer capabilities plus the filesystem session.
func (o *M3OS) PipeFromChild(name string, childFn func(os OS, w File)) (File, func(), error) {
	pipe, err := m3.NewPipe(o.Env, 0)
	if err != nil {
		return nil, nil, err
	}
	vpe, err := o.Env.NewVPE(name, "")
	if err != nil {
		return nil, nil, err
	}
	sg, wm := pipe.WriterSels()
	if err := vpe.Delegate(sg, pipeSGateSel, 1); err != nil {
		return nil, nil, err
	}
	if err := vpe.Delegate(wm, pipeWMemSel, 1); err != nil {
		return nil, nil, err
	}
	if err := o.shareFS(vpe); err != nil {
		return nil, nil, err
	}
	size := pipe.Size()
	if err := vpe.Run(func(child *m3.Env) {
		cos := o.childM3OS(child)
		w := m3.OpenPipeWriter(child, pipeSGateSel, pipeWMemSel, size)
		childFn(cos, pipeWriterFile{w})
		_ = w.Close()
	}); err != nil {
		return nil, nil, err
	}
	wait := func() {
		_, _ = vpe.Wait()
		_ = vpe.Revoke()
	}
	return pipeReaderFile{pipe}, wait, nil
}

// PipeToChild starts the child VPE (optionally on a specific core
// type); the child creates the pipe — it reads, so it must own the
// receive gate — and the parent obtains the writer capabilities from
// the child's first, deterministic selectors.
func (o *M3OS) PipeToChild(name, peType string, childFn func(os OS, r File)) (File, func(), error) {
	vpe, err := o.Env.NewVPE(name, tile.CoreType(peType))
	if err != nil {
		return nil, nil, err
	}
	if err := o.shareFS(vpe); err != nil {
		return nil, nil, err
	}
	if err := vpe.Run(func(child *m3.Env) {
		// NewPipe allocates selectors 1..4: rgate, ringbuffer,
		// sgate(3), writer memory gate(4).
		pipe, perr := m3.NewPipe(child, 0)
		if perr != nil {
			child.SetExit(1)
			return
		}
		cos := o.childM3OS(child)
		childFn(cos, pipeReaderFile{pipe})
	}); err != nil {
		return nil, nil, err
	}
	// Obtain the writer capabilities once the child created them.
	mine := o.Env.AllocSels(2)
	for attempt := 0; ; attempt++ {
		err := vpe.Obtain(mine, 3, 2)
		if err == nil {
			break
		}
		if errors.Is(err, kif.ErrNoSuchCap) && attempt < 1000 {
			o.Env.P().Sleep(500)
			continue
		}
		return nil, nil, fmt.Errorf("workload: obtain pipe caps: %w", err)
	}
	w := m3.OpenPipeWriter(o.Env, mine, mine+1, m3.DefaultPipeSize)
	wait := func() {
		_, _ = vpe.Wait()
		_ = vpe.Revoke()
	}
	return pipeWriterFile{w}, wait, nil
}

// m3File adapts m3.File.
type m3File struct{ f m3.File }

func (f m3File) Read(b []byte) (int, error)  { return f.f.Read(b) }
func (f m3File) Write(b []byte) (int, error) { return f.f.Write(b) }
func (f m3File) Close() error                { return f.f.Close() }
func (f m3File) Seek(off int64, whence int) (int64, error) {
	return f.f.Seek(off, whence)
}

// pipeReaderFile adapts m3.PipeReader.
type pipeReaderFile struct{ p *m3.PipeReader }

func (f pipeReaderFile) Read(b []byte) (int, error)  { return f.p.Read(b) }
func (f pipeReaderFile) Write(b []byte) (int, error) { return 0, errors.New("pipe read end") }
func (f pipeReaderFile) Close() error                { return nil }

// pipeWriterFile adapts m3.PipeWriter.
type pipeWriterFile struct{ w *m3.PipeWriter }

func (f pipeWriterFile) Read(b []byte) (int, error)  { return 0, errors.New("pipe write end") }
func (f pipeWriterFile) Write(b []byte) (int, error) { return f.w.Write(b) }
func (f pipeWriterFile) Close() error                { return f.w.Close() }
