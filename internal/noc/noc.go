// Package noc models the packet-switched network-on-chip that connects
// the processing elements and the DRAM tile.
//
// The network is a 2D mesh with dimension-ordered (XY) routing. The
// timing model is virtual cut-through: a packet's head pays a fixed
// per-hop router latency, the body streams at the link bandwidth, and
// each traversed link stays busy for the packet's serialization time.
// Under no contention the end-to-end latency of an S-byte packet over h
// hops is h*HopLatency + ceil(S/LinkBytesPerCycle) cycles — which gives
// the DTU its 8 bytes/cycle streaming bandwidth from the paper.
package noc

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/sim"
)

// NodeID identifies a mesh node: y*Width + x.
type NodeID int

// Packet is one network transfer. Size covers everything on the wire
// (header + payload). Payload is the semantic content interpreted by
// the destination's handler (a DTU message, an RDMA request, ...).
//
// Seq and Corrupt exist for the reliability layer: Seq is a nonzero
// sender-assigned sequence number on transfers that want end-to-end
// acknowledgement (zero means fire-and-forget), and Corrupt marks a
// packet whose header was damaged in flight by fault injection — the
// payload pointer survives in the model, but receivers must treat the
// packet as poisoned.
type Packet struct {
	//m3vet:resolve sharedstate message header fields are written by the packet's current owner under the pool hand-off discipline
	Src, Dst NodeID
	//m3vet:resolve sharedstate message written by the packet's current owner under the pool hand-off discipline
	Size int
	//m3vet:resolve sharedstate message written by the packet's current owner under the pool hand-off discipline
	Payload any
	//m3vet:resolve sharedstate message assigned by the sender before transmit; owner-exclusive per the pool discipline
	Seq uint64
	//m3vet:resolve sharedstate message set by the serial fault hook while the network owns the packet
	Corrupt bool

	// Span is the causal trace id of the request this packet belongs
	// to (zero: none). The DTU stamps it from the message header so
	// the observability layer can reconstruct a request's NoC flights.
	//m3vet:resolve sharedstate message written by the packet's current owner under the pool hand-off discipline
	Span uint64

	// Retain transfers ownership of a delivered fire-and-forget packet
	// (Seq == 0) to the handler: the network then does not recycle it
	// after Deliver returns, and the handler must call FreePacket once
	// done. Handlers that queue the packet for later processing (the
	// DTU's request server) set it inside Deliver. See FreePacket for
	// the full ownership rules.
	//m3vet:resolve sharedstate message set inside Deliver by the receiving handler, which owns the packet at that point
	Retain bool

	// next links the network's packet freelist.
	//m3vet:resolve sharedstate owner freelist links are only touched by NewPacket/FreePacket, which run serially (shard code frees through sc.Defer)
	next *Packet
}

// LinkFault is a fault-injection verdict for one packet at one hop.
type LinkFault uint8

// Link fault verdicts.
const (
	// LinkOK passes the packet through unharmed.
	LinkOK LinkFault = iota
	// LinkDrop loses the packet at this hop: it pays full wire timing
	// up to and including the hop but is never delivered.
	LinkDrop
	// LinkCorrupt damages the packet's header; it is delivered with
	// Corrupt set and the receiver decides (NACK, drop, ...).
	LinkCorrupt
)

// FaultHook inspects a packet about to traverse the link from→to and
// returns a verdict. Hooks run in deterministic per-hop order along
// the route, so a seeded RNG consulted inside the hook yields a
// replayable fault schedule. Only internal/fault may install hooks
// (enforced by m3vet's faultsite rule).
type FaultHook func(from, to NodeID, pkt *Packet) LinkFault

// Handler consumes packets delivered at a node. Deliver runs in engine
// context and must not block; implementations hand work that needs
// simulated time to a resident process via queues/signals.
type Handler interface {
	Deliver(pkt *Packet)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(pkt *Packet)

// Deliver calls f(pkt).
func (f HandlerFunc) Deliver(pkt *Packet) { f(pkt) }

// ShardHandler is an optional extension of Handler for nodes that can
// consume asynchronous control packets in parallel shard context. When
// the destination handler implements it, SendAsync delivers through
// DeliverShard on the destination node's shard (shard id == NodeID)
// instead of a serial event, letting a parallel engine (sim.Config
// Workers > 1) process same-cycle control traffic to different nodes
// concurrently.
//
// DeliverShard may touch only state owned by the destination node and
// must route every other effect — scheduling, counters, trace output,
// packet frees — through the sim.ShardCtx. Implementations unsure
// about a payload defer the whole delivery: sc.Defer(func() {
// h.Deliver(pkt) }) reproduces serial semantics exactly.
type ShardHandler interface {
	Handler
	DeliverShard(sc *sim.ShardCtx, pkt *Packet)
}

// Config parameterizes a mesh network.
type Config struct {
	Width, Height int
	// HopLatency is the per-router head latency in cycles (default 3).
	HopLatency sim.Time
	// LinkBytesPerCycle is the link (and thus DTU streaming) bandwidth
	// (default 8, the paper's DTU bandwidth).
	LinkBytesPerCycle int
	// Unlimited disables link contention: packets still pay latency and
	// serialization but never queue. Figure 6 uses this ("we assume the
	// NoC scales perfectly").
	Unlimited bool
	// Torus adds wrap-around links in both dimensions, halving the
	// worst-case hop count; routing stays dimension-ordered and picks
	// the shorter direction per dimension.
	Torus bool
}

// Network is a 2D-mesh NoC.
type Network struct {
	eng      *sim.Engine
	cfg      Config
	handlers []Handler
	//m3vet:resolve sharedstate owner link resources are created at boot and arbitrated in process context
	links map[linkKey]*sim.Resource
	//m3vet:resolve sharedstate owner lazily created in serial Send paths only
	linkBusy map[linkKey]*obs.Counter
	fault    FaultHook
	obs      *obs.Tracer

	// PacketsSent counts injected packets; BytesSent the wire bytes.
	//m3vet:resolve sharedstate owner NoC totals bump in Send/SendAsync, which shard code reaches only through deferred acts
	PacketsSent uint64
	//m3vet:resolve sharedstate owner NoC totals bump in Send/SendAsync, which shard code reaches only through deferred acts
	BytesSent uint64
	// PacketsDropped and PacketsCorrupted count fault-injected losses
	// and header corruptions.
	//m3vet:resolve sharedstate owner fault accounting happens inside serial link hooks
	PacketsDropped uint64
	//m3vet:resolve sharedstate owner fault accounting happens inside serial link hooks
	PacketsCorrupted uint64

	// free heads the packet freelist. All alloc/free sites run in
	// serial engine or process context (shard-context frees are
	// deferred to the batch barrier), so a plain list suffices.
	//m3vet:resolve sharedstate owner pool head moves only in NewPacket/FreePacket, serial by the ownership rules above
	free *Packet
}

type linkKey struct{ from, to NodeID }

// New returns a mesh network with Width*Height nodes.
func New(eng *sim.Engine, cfg Config) *Network {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		panic("noc: mesh dimensions must be positive")
	}
	if cfg.HopLatency == 0 {
		cfg.HopLatency = 3
	}
	if cfg.LinkBytesPerCycle == 0 {
		cfg.LinkBytesPerCycle = 8
	}
	return &Network{
		eng:      eng,
		cfg:      cfg,
		handlers: make([]Handler, cfg.Width*cfg.Height),
		links:    make(map[linkKey]*sim.Resource),
		linkBusy: make(map[linkKey]*obs.Counter),
	}
}

// Metric names the network registers, keyed by LinkIndex (m3vet:
// metricname).
const (
	// MLinkBusy accumulates the cycles each directed link was occupied
	// by packet heads and bodies (router latency + serialization).
	MLinkBusy = "noc_link_busy_cycles_total"
	// MLinkQueued samples the packets waiting for each directed link.
	MLinkQueued = "noc_link_queued"
)

// LinkIndex encodes the directed link from→to as a dense metric index.
func (n *Network) LinkIndex(from, to NodeID) int {
	return int(from)*n.Nodes() + int(to)
}

// LinkByIndex decodes a LinkIndex.
func (n *Network) LinkByIndex(i int) (from, to NodeID) {
	return NodeID(i / n.Nodes()), NodeID(i % n.Nodes())
}

// Config returns the network parameters.
func (n *Network) Config() Config { return n.cfg }

// NewPacket takes a zeroed packet from the network's pool (or the heap
// on a cold start). Senders on the hot path use it instead of a
// literal so steady-state traffic allocates nothing per packet.
//
// Ownership rules, enforced by TestPacketPoolHygiene and the
// differential harness:
//   - Seq != 0 (reliable transfers): the sender owns the packet across
//     delivery and retransmissions — delivery is synchronous in the
//     model, so no copy is ever in flight — and frees it when the
//     transfer completes or is abandoned.
//   - Seq == 0, delivered: the network frees it after Deliver returns,
//     unless the handler took ownership via Retain (it then frees after
//     consuming, e.g. the DTU request server after responding).
//   - Seq == 0, dropped by fault injection: the network frees it.
func (n *Network) NewPacket() *Packet {
	pkt := n.free
	if pkt == nil {
		return &Packet{}
	}
	n.free = pkt.next
	pkt.next = nil
	return pkt
}

// FreePacket zeroes pkt — pool hygiene: no stale payload, sequence
// number, span, fault flag, or Retain mark may survive on the freelist
// — and returns it to the pool. Freeing a packet that was never
// allocated from the pool is legal and grows the pool.
func (n *Network) FreePacket(pkt *Packet) {
	*pkt = Packet{next: n.free}
	n.free = pkt
}

// finishDelivery applies the fire-and-forget ownership rule after a
// packet was handed to its handler.
func (n *Network) finishDelivery(pkt *Packet) {
	if pkt.Seq == 0 && !pkt.Retain {
		n.FreePacket(pkt)
	}
}

// SetObserver installs the structured tracer (wired by the platform at
// build time; nil keeps observability off).
func (n *Network) SetObserver(tr *obs.Tracer) { n.obs = tr }

// Nodes returns the number of mesh nodes.
func (n *Network) Nodes() int { return n.cfg.Width * n.cfg.Height }

// Attach registers the handler that consumes packets addressed to id.
func (n *Network) Attach(id NodeID, h Handler) {
	n.checkNode(id)
	if n.handlers[id] != nil {
		panic(fmt.Sprintf("noc: node %d already attached", id))
	}
	n.handlers[id] = h
}

// XY returns the mesh coordinates of id.
func (n *Network) XY(id NodeID) (x, y int) {
	n.checkNode(id)
	return int(id) % n.cfg.Width, int(id) / n.cfg.Width
}

// ID returns the node id at mesh coordinates (x, y).
func (n *Network) ID(x, y int) NodeID {
	id := NodeID(y*n.cfg.Width + x)
	n.checkNode(id)
	return id
}

// Route returns the XY route from src to dst as the sequence of visited
// nodes, excluding src and including dst. An empty route means src ==
// dst (local delivery). On a torus, each dimension walks the shorter
// direction, wrapping around the edge.
func (n *Network) Route(src, dst NodeID) []NodeID {
	sx, sy := n.XY(src)
	dx, dy := n.XY(dst)
	var route []NodeID
	x, y := sx, sy
	stepX := n.step(sx, dx, n.cfg.Width)
	for x != dx {
		x = wrap(x+stepX, n.cfg.Width)
		route = append(route, n.ID(x, y))
	}
	stepY := n.step(sy, dy, n.cfg.Height)
	for y != dy {
		y = wrap(y+stepY, n.cfg.Height)
		route = append(route, n.ID(x, y))
	}
	return route
}

// step returns the per-hop delta (+1 or -1) to move from a to b along
// a dimension of the given extent.
func (n *Network) step(a, b, extent int) int {
	if a == b {
		return 0
	}
	forward := wrap(b-a, extent)
	if n.cfg.Torus && forward > extent-forward {
		return -1
	}
	if !n.cfg.Torus && b < a {
		return -1
	}
	return 1
}

func wrap(v, extent int) int {
	v %= extent
	if v < 0 {
		v += extent
	}
	return v
}

// Hops returns the number of router hops between src and dst.
func (n *Network) Hops(src, dst NodeID) int {
	sx, sy := n.XY(src)
	dx, dy := n.XY(dst)
	hx, hy := abs(sx-dx), abs(sy-dy)
	if n.cfg.Torus {
		if w := n.cfg.Width - hx; w < hx {
			hx = w
		}
		if w := n.cfg.Height - hy; w < hy {
			hy = w
		}
	}
	return hx + hy
}

// SerializationTime returns the cycles the body of a size-byte packet
// occupies a link.
func (n *Network) SerializationTime(size int) sim.Time {
	bpc := n.cfg.LinkBytesPerCycle
	return sim.Time((size + bpc - 1) / bpc)
}

// TransferTime returns the uncontended end-to-end latency of a
// size-byte packet from src to dst.
func (n *Network) TransferTime(src, dst NodeID, size int) sim.Time {
	return sim.Time(n.Hops(src, dst))*n.cfg.HopLatency + n.SerializationTime(size)
}

// Send injects pkt, blocking p for the end-to-end transfer time plus
// any link queueing, then delivers it to the destination handler. The
// calling process models the transfer engine pushing the packet (a DTU
// command or a memory tile streaming a response).
func (n *Network) Send(p *sim.Process, pkt *Packet) {
	n.checkNode(pkt.Src)
	n.checkNode(pkt.Dst)
	n.PacketsSent++
	n.BytesSent += uint64(pkt.Size)
	ser := n.SerializationTime(pkt.Size)
	if tr := n.obs; tr.On() && pkt.Span != 0 {
		tr.Emit(obs.Event{At: n.eng.Now(), PE: int32(pkt.Src), Layer: obs.LNoC,
			Kind: obs.EvPktInject, Span: obs.SpanID(pkt.Span),
			Arg0: uint64(pkt.Dst), Arg1: uint64(pkt.Size)})
	}
	dropped := false
	if pkt.Src != pkt.Dst {
		prev := pkt.Src
		for _, next := range n.Route(pkt.Src, pkt.Dst) {
			link := n.link(prev, next)
			if link != nil {
				link.Acquire(p, 1)
				// The link stays busy while the body streams through;
				// the head moves on after the router latency.
				lk := link
				n.eng.Schedule(n.cfg.HopLatency+ser, func() { lk.Release(1) })
			}
			if tr := n.obs; tr.On() {
				tr.Hist(obs.HLinkOcc).Observe(uint64(n.cfg.HopLatency + ser))
				n.linkBusy[linkKey{prev, next}].Add(uint64(n.cfg.HopLatency + ser))
			}
			p.Sleep(n.cfg.HopLatency)
			if !dropped {
				dropped = n.applyFault(prev, next, pkt)
			}
			prev = next
		}
	}
	// Body drains into the destination. A dropped packet still occupied
	// the wire up to the faulty hop; the sender's transfer engine is
	// blind to the loss and pays the full push either way.
	p.Sleep(ser)
	if dropped {
		if pkt.Seq == 0 {
			n.FreePacket(pkt)
		}
		return
	}
	h := n.handlers[pkt.Dst]
	if h == nil {
		panic(fmt.Sprintf("noc: packet for unattached node %d", pkt.Dst))
	}
	if tr := n.obs; tr.On() && pkt.Span != 0 {
		tr.Emit(obs.Event{At: n.eng.Now(), PE: int32(pkt.Dst), Layer: obs.LNoC,
			Kind: obs.EvPktDeliver, Span: obs.SpanID(pkt.Span),
			Arg0: uint64(pkt.Src), Arg1: uint64(pkt.Size)})
	}
	h.Deliver(pkt)
	n.finishDelivery(pkt)
}

// SendAsync injects pkt without a sending process: the packet pays the
// uncontended end-to-end latency and is delivered via a scheduled
// event. It models autonomous DTU control traffic (acknowledgements,
// probes) emitted from engine context where no process is available.
// Link occupancy is not modelled for these few-byte control packets.
//
// When the destination handler implements ShardHandler, delivery is
// scheduled on the destination node's shard: under a parallel engine,
// same-cycle control packets to different nodes are then consumed
// concurrently. The hop-latency lookahead makes this safe — the
// transfer time is at least one cycle, so a delivery event is always
// scheduled strictly in the future and every event of a cycle was
// recorded before that cycle's batch starts (docs/PARALLEL.md).
func (n *Network) SendAsync(pkt *Packet) {
	n.checkNode(pkt.Src)
	n.checkNode(pkt.Dst)
	n.PacketsSent++
	n.BytesSent += uint64(pkt.Size)
	dropped := false
	if pkt.Src != pkt.Dst {
		prev := pkt.Src
		for _, next := range n.Route(pkt.Src, pkt.Dst) {
			if !dropped {
				dropped = n.applyFault(prev, next, pkt)
			}
			prev = next
		}
	}
	if dropped {
		if pkt.Seq == 0 {
			n.FreePacket(pkt)
		}
		return
	}
	h := n.handlers[pkt.Dst]
	if h == nil {
		panic(fmt.Sprintf("noc: packet for unattached node %d", pkt.Dst))
	}
	delay := n.TransferTime(pkt.Src, pkt.Dst, pkt.Size)
	if sh, ok := h.(ShardHandler); ok {
		n.eng.ScheduleShard(int(pkt.Dst), delay, func(sc *sim.ShardCtx) {
			sh.DeliverShard(sc, pkt)
			// The pool is engine-owned shared state: free at the
			// barrier, after any Retain set inside DeliverShard is
			// visible.
			sc.Defer(func() { n.finishDelivery(pkt) })
		})
		return
	}
	n.eng.Schedule(delay, func() {
		h.Deliver(pkt)
		n.finishDelivery(pkt)
	})
}

// SetFaultHook installs (or, with nil, removes) the per-hop fault
// hook. Only internal/fault may call this (m3vet: faultsite).
func (n *Network) SetFaultHook(hook FaultHook) { n.fault = hook }

// applyFault consults the fault hook for one hop and applies the
// verdict. It reports whether the packet was dropped.
func (n *Network) applyFault(from, to NodeID, pkt *Packet) bool {
	if n.fault == nil {
		return false
	}
	switch n.fault(from, to, pkt) {
	case LinkDrop:
		n.PacketsDropped++
		if n.eng.Tracing() {
			n.eng.Emit("noc", fmt.Sprintf("drop pkt %d->%d seq %d at link %d->%d", pkt.Src, pkt.Dst, pkt.Seq, from, to))
		}
		if tr := n.obs; tr.On() {
			tr.Emit(obs.Event{At: n.eng.Now(), PE: int32(pkt.Src), Layer: obs.LNoC,
				Kind: obs.EvPktDrop, Span: obs.SpanID(pkt.Span),
				Arg0: uint64(pkt.Dst), Arg1: pkt.Seq,
				Arg2: uint64(from)<<32 | uint64(uint32(to))})
		}
		return true
	case LinkCorrupt:
		if !pkt.Corrupt {
			pkt.Corrupt = true
			n.PacketsCorrupted++
			if n.eng.Tracing() {
				n.eng.Emit("noc", fmt.Sprintf("corrupt pkt %d->%d seq %d at link %d->%d", pkt.Src, pkt.Dst, pkt.Seq, from, to))
			}
			if tr := n.obs; tr.On() {
				tr.Emit(obs.Event{At: n.eng.Now(), PE: int32(pkt.Src), Layer: obs.LNoC,
					Kind: obs.EvPktCorrupt, Span: obs.SpanID(pkt.Span),
					Arg0: uint64(pkt.Dst), Arg1: pkt.Seq,
					Arg2: uint64(from)<<32 | uint64(uint32(to))})
			}
		}
	}
	return false
}

// link returns the contention resource for the directed link prev→next,
// or nil when contention modelling is disabled.
func (n *Network) link(prev, next NodeID) *sim.Resource {
	if n.cfg.Unlimited {
		return nil
	}
	k := linkKey{prev, next}
	r, ok := n.links[k]
	if !ok {
		r = sim.NewResource(n.eng, 1)
		n.links[k] = r
		if tr := n.obs; tr.On() {
			idx := n.LinkIndex(prev, next)
			n.linkBusy[k] = tr.Metrics().Counter(MLinkBusy, idx)
			res := r
			tr.Metrics().Series(MLinkQueued, idx, func() int64 { return int64(res.QueueLen()) })
		}
	}
	return r
}

func (n *Network) checkNode(id NodeID) {
	if int(id) < 0 || int(id) >= len(n.handlers) {
		panic(fmt.Sprintf("noc: node %d out of range (mesh %dx%d)", id, n.cfg.Width, n.cfg.Height))
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
