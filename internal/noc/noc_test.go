package noc

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func mesh(t *testing.T, w, h int) (*sim.Engine, *Network) {
	t.Helper()
	e := sim.NewEngine()
	n := New(e, Config{Width: w, Height: h})
	return e, n
}

func TestXYRoundTrip(t *testing.T) {
	_, n := mesh(t, 4, 3)
	for id := 0; id < n.Nodes(); id++ {
		x, y := n.XY(NodeID(id))
		if n.ID(x, y) != NodeID(id) {
			t.Fatalf("ID(XY(%d)) = %d", id, n.ID(x, y))
		}
	}
}

func TestRouteXYOrder(t *testing.T) {
	_, n := mesh(t, 4, 4)
	// From (0,0) to (2,3): X first, then Y.
	route := n.Route(n.ID(0, 0), n.ID(2, 3))
	want := []NodeID{n.ID(1, 0), n.ID(2, 0), n.ID(2, 1), n.ID(2, 2), n.ID(2, 3)}
	if len(route) != len(want) {
		t.Fatalf("route = %v, want %v", route, want)
	}
	for i := range want {
		if route[i] != want[i] {
			t.Fatalf("route = %v, want %v", route, want)
		}
	}
}

func TestRouteProperty(t *testing.T) {
	_, n := mesh(t, 5, 5)
	f := func(a, b uint8) bool {
		src := NodeID(int(a) % n.Nodes())
		dst := NodeID(int(b) % n.Nodes())
		route := n.Route(src, dst)
		if len(route) != n.Hops(src, dst) {
			return false
		}
		if len(route) == 0 {
			return src == dst
		}
		// Route ends at dst and each step is a mesh neighbour.
		if route[len(route)-1] != dst {
			return false
		}
		prev := src
		for _, next := range route {
			if n.Hops(prev, next) != 1 {
				return false
			}
			prev = next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTransferLatency(t *testing.T) {
	e, n := mesh(t, 4, 1)
	var arrived sim.Time
	n.Attach(3, HandlerFunc(func(pkt *Packet) { arrived = e.Now() }))
	e.Spawn("tx", func(p *sim.Process) {
		n.Send(p, &Packet{Src: 0, Dst: 3, Size: 64})
	})
	e.Run()
	// 3 hops * 3 cycles + 64/8 = 9 + 8 = 17.
	if arrived != 17 {
		t.Fatalf("arrival at %d, want 17", arrived)
	}
}

func TestLocalDelivery(t *testing.T) {
	e, n := mesh(t, 2, 2)
	var arrived sim.Time
	n.Attach(1, HandlerFunc(func(pkt *Packet) { arrived = e.Now() }))
	e.Spawn("tx", func(p *sim.Process) {
		n.Send(p, &Packet{Src: 1, Dst: 1, Size: 16})
	})
	e.Run()
	// No hops, only serialization: 16/8 = 2.
	if arrived != 2 {
		t.Fatalf("local delivery at %d, want 2", arrived)
	}
}

func TestLinkContention(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, Config{Width: 3, Height: 1})
	var arrivals []sim.Time
	n.Attach(2, HandlerFunc(func(pkt *Packet) { arrivals = append(arrivals, eng.Now()) }))
	// Two senders at node 0 push 800-byte packets over the same links.
	for i := 0; i < 2; i++ {
		eng.Spawn("tx", func(p *sim.Process) {
			n.Send(p, &Packet{Src: 0, Dst: 2, Size: 800})
		})
	}
	eng.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	// First: 2 hops * 3 + 100 = 106. Second queues behind the first on
	// link 0->1 for HopLatency+ser = 103 cycles, then takes 106.
	if arrivals[0] != 106 {
		t.Fatalf("first arrival = %d, want 106", arrivals[0])
	}
	if arrivals[1] <= arrivals[0] {
		t.Fatalf("second arrival %d must be delayed past %d", arrivals[1], arrivals[0])
	}
}

func TestUnlimitedNoContention(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, Config{Width: 3, Height: 1, Unlimited: true})
	var arrivals []sim.Time
	n.Attach(2, HandlerFunc(func(pkt *Packet) { arrivals = append(arrivals, eng.Now()) }))
	for i := 0; i < 2; i++ {
		eng.Spawn("tx", func(p *sim.Process) {
			n.Send(p, &Packet{Src: 0, Dst: 2, Size: 800})
		})
	}
	eng.Run()
	if len(arrivals) != 2 || arrivals[0] != 106 || arrivals[1] != 106 {
		t.Fatalf("arrivals = %v, want both 106", arrivals)
	}
}

func TestCountersAndStats(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, Config{Width: 2, Height: 1})
	n.Attach(1, HandlerFunc(func(pkt *Packet) {}))
	eng.Spawn("tx", func(p *sim.Process) {
		n.Send(p, &Packet{Src: 0, Dst: 1, Size: 100})
		n.Send(p, &Packet{Src: 0, Dst: 1, Size: 28})
	})
	eng.Run()
	if n.PacketsSent != 2 {
		t.Fatalf("packets = %d", n.PacketsSent)
	}
	if n.BytesSent != 128 {
		t.Fatalf("bytes = %d", n.BytesSent)
	}
}

func TestSerializationRoundsUp(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, Config{Width: 2, Height: 2})
	if got := n.SerializationTime(1); got != 1 {
		t.Fatalf("ser(1) = %d", got)
	}
	if got := n.SerializationTime(9); got != 2 {
		t.Fatalf("ser(9) = %d", got)
	}
	if got := n.SerializationTime(16); got != 2 {
		t.Fatalf("ser(16) = %d", got)
	}
}

func TestAttachTwicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double attach must panic")
		}
	}()
	eng := sim.NewEngine()
	n := New(eng, Config{Width: 2, Height: 1})
	n.Attach(0, HandlerFunc(func(pkt *Packet) {}))
	n.Attach(0, HandlerFunc(func(pkt *Packet) {}))
}

func TestUnattachedDeliveryPanics(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, Config{Width: 2, Height: 1})
	eng.Spawn("tx", func(p *sim.Process) {
		defer func() {
			if recover() == nil {
				t.Error("delivery to unattached node must panic")
			}
		}()
		n.Send(p, &Packet{Src: 0, Dst: 1, Size: 8})
	})
	eng.Run()
}

func TestTorusShorterRoutes(t *testing.T) {
	eng := sim.NewEngine()
	mesh := New(eng, Config{Width: 6, Height: 6})
	torus := New(sim.NewEngine(), Config{Width: 6, Height: 6, Torus: true})
	// Corner to corner: mesh needs 10 hops, torus wraps in 2.
	src, dst := mesh.ID(0, 0), mesh.ID(5, 5)
	if got := mesh.Hops(src, dst); got != 10 {
		t.Fatalf("mesh hops = %d, want 10", got)
	}
	if got := torus.Hops(src, dst); got != 2 {
		t.Fatalf("torus hops = %d, want 2", got)
	}
	route := torus.Route(src, dst)
	if len(route) != 2 || route[len(route)-1] != dst {
		t.Fatalf("torus route = %v", route)
	}
}

func TestTorusRouteProperty(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, Config{Width: 5, Height: 4, Torus: true})
	f := func(a, b uint8) bool {
		src := NodeID(int(a) % n.Nodes())
		dst := NodeID(int(b) % n.Nodes())
		route := n.Route(src, dst)
		if len(route) != n.Hops(src, dst) {
			return false
		}
		if len(route) == 0 {
			return src == dst
		}
		if route[len(route)-1] != dst {
			return false
		}
		prev := src
		for _, next := range route {
			if n.Hops(prev, next) != 1 {
				return false
			}
			prev = next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTorusDelivery(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, Config{Width: 4, Height: 1, Torus: true})
	var arrived sim.Time
	n.Attach(3, HandlerFunc(func(pkt *Packet) { arrived = eng.Now() }))
	eng.Spawn("tx", func(p *sim.Process) {
		// 0 -> 3 wraps backwards in one hop on a 4-ring.
		n.Send(p, &Packet{Src: 0, Dst: 3, Size: 64})
	})
	eng.Run()
	// 1 hop * 3 + 64/8 = 11.
	if arrived != 11 {
		t.Fatalf("torus delivery at %d, want 11", arrived)
	}
}
