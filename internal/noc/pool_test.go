package noc

import (
	"testing"

	"repro/internal/sim"
)

// fillPacket arms every field a stale pooled packet could leak.
func fillPacket(pkt *Packet) {
	pkt.Src, pkt.Dst, pkt.Size = 1, 2, 64
	pkt.Payload = "stale"
	pkt.Seq = 99
	pkt.Corrupt = true
	pkt.Span = 0xDEAD
	pkt.Retain = true
}

// assertZeroed fails unless pkt carries nothing of its previous life.
func assertZeroed(t *testing.T, pkt *Packet) {
	t.Helper()
	if pkt.Src != 0 || pkt.Dst != 0 || pkt.Size != 0 || pkt.Payload != nil ||
		pkt.Seq != 0 || pkt.Corrupt || pkt.Span != 0 || pkt.Retain {
		t.Fatalf("pooled packet not zeroed: %+v", pkt)
	}
}

// TestPacketPoolHygiene: FreePacket must scrub everything — a stale
// Seq would trip the receiver's dedup table, a stale Corrupt flag
// would poison an innocent transfer, a stale Retain would leak the
// packet — and NewPacket must reuse pooled objects LIFO.
func TestPacketPoolHygiene(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, Config{Width: 2, Height: 1})

	first := n.NewPacket() // cold start: heap
	assertZeroed(t, first)
	fillPacket(first)
	n.FreePacket(first)
	assertZeroed(t, first)
	if n.free != first {
		t.Fatal("freed packet not at pool head")
	}

	second := n.NewPacket()
	if second != first {
		t.Fatal("NewPacket did not reuse the pooled object")
	}
	if second.next != nil {
		t.Fatal("allocated packet still linked into the pool")
	}
	if n.free != nil {
		t.Fatal("pool head not advanced")
	}
	n.FreePacket(second)
}

// TestPacketPoolDeliveryOwnership covers the three ownership rules at
// the delivery boundary: fire-and-forget packets are recycled by the
// network after Deliver, Retain hands them to the handler, and
// sequence-numbered packets stay sender-owned.
func TestPacketPoolDeliveryOwnership(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, Config{Width: 2, Height: 1})
	var retained *Packet
	n.Attach(0, HandlerFunc(func(pkt *Packet) {}))
	n.Attach(1, HandlerFunc(func(pkt *Packet) {
		if pkt.Payload == "keep" {
			pkt.Retain = true
			retained = pkt
		}
	}))

	eng.Spawn("sender", func(p *sim.Process) {
		// Rule: Seq == 0, no Retain — network recycles after Deliver.
		pkt := n.NewPacket()
		pkt.Src, pkt.Dst, pkt.Size = 0, 1, 8
		pkt.Payload = "fire-and-forget"
		n.Send(p, pkt)
		if n.free != pkt {
			t.Error("fire-and-forget packet not recycled after delivery")
		}

		// Rule: Retain — the handler owns it until it frees it.
		pkt2 := n.NewPacket()
		pkt2.Src, pkt2.Dst, pkt2.Size = 0, 1, 8
		pkt2.Payload = "keep"
		n.Send(p, pkt2)
		if retained != pkt2 {
			t.Error("handler did not retain the packet")
		}
		if n.free == pkt2 {
			t.Error("retained packet recycled behind the handler's back")
		}
		n.FreePacket(retained)
		assertZeroed(t, retained)

		// Rule: Seq != 0 — sender-owned, the network must not touch it.
		pkt3 := n.NewPacket()
		pkt3.Src, pkt3.Dst, pkt3.Size = 0, 1, 8
		pkt3.Seq = 7
		pkt3.Payload = "reliable"
		n.Send(p, pkt3)
		if pkt3.Payload != "reliable" || pkt3.Seq != 7 {
			t.Error("sender-owned packet mutated by delivery")
		}
		n.FreePacket(pkt3)
	})
	eng.Run()
}

// TestPacketPoolDropRecycle: a fault-dropped fire-and-forget packet is
// recycled at the drop site; a sequence-numbered one stays with the
// sender for retransmission.
func TestPacketPoolDropRecycle(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, Config{Width: 2, Height: 1})
	n.Attach(0, HandlerFunc(func(pkt *Packet) {}))
	n.Attach(1, HandlerFunc(func(pkt *Packet) { t.Error("dropped packet delivered") }))
	n.SetFaultHook(func(from, to NodeID, pkt *Packet) LinkFault { return LinkDrop })

	eng.Spawn("sender", func(p *sim.Process) {
		pkt := n.NewPacket()
		pkt.Src, pkt.Dst, pkt.Size = 0, 1, 8
		pkt.Payload = "lost"
		n.Send(p, pkt)
		if n.free != pkt {
			t.Error("dropped fire-and-forget packet not recycled")
		}
		assertZeroed(t, pkt)

		pkt2 := n.NewPacket()
		pkt2.Src, pkt2.Dst, pkt2.Size = 0, 1, 8
		pkt2.Seq = 3
		pkt2.Payload = "reliable"
		n.Send(p, pkt2)
		if pkt2.Payload != "reliable" {
			t.Error("sender-owned packet recycled at the drop site")
		}
		n.FreePacket(pkt2)
	})
	eng.Run()
	if n.PacketsDropped != 2 {
		t.Fatalf("PacketsDropped = %d, want 2", n.PacketsDropped)
	}
}

// TestPacketPoolAsyncRecycle: SendAsync delivers via a scheduled event;
// the fire-and-forget recycle happens after the deferred delivery, not
// at injection.
func TestPacketPoolAsyncRecycle(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, Config{Width: 2, Height: 1})
	delivered := false
	n.Attach(0, HandlerFunc(func(pkt *Packet) {}))
	n.Attach(1, HandlerFunc(func(pkt *Packet) { delivered = true }))

	pkt := n.NewPacket()
	pkt.Src, pkt.Dst, pkt.Size = 0, 1, 8
	pkt.Payload = "ctrl"
	n.SendAsync(pkt)
	if n.free == pkt {
		t.Fatal("in-flight async packet recycled before delivery")
	}
	eng.Run()
	if !delivered {
		t.Fatal("async packet never delivered")
	}
	if n.free != pkt {
		t.Fatal("async packet not recycled after delivery")
	}
	assertZeroed(t, pkt)
}
