package analysis

import "testing"

// obsOverlay is a minimal obs package exposing the guarded producer
// surface for fixture dependencies.
var obsOverlay = map[string]string{"obs.go": `package obs

type Event struct{ Arg0 uint64 }

type HistID int

type Histogram struct{}

func (h *Histogram) Observe(v uint64) {}

type Tracer struct{}

func (t *Tracer) On() bool              { return t != nil }
func (t *Tracer) Emit(ev Event)         {}
func (t *Tracer) Hist(id HistID) *Histogram { return nil }
func (t *Tracer) NewSpan() uint64       { return 0 }
func (t *Tracer) Histograms() []*Histogram { return nil }
`}

func TestObsGuardFlagsUnguardedSites(t *testing.T) {
	src := `package dtu

import "repro/internal/obs"

type DTU struct{ obs *obs.Tracer }

func (d *DTU) send() {
	d.obs.Emit(obs.Event{})               // line 8: unguarded
	d.obs.Hist(0).Observe(1)              // line 9: unguarded (both calls)
}
`
	got := runOn(t, []*Analyzer{ObsGuard}, "repro/internal/dtu",
		map[string]string{"f.go": src},
		map[string]map[string]string{"repro/internal/obs": obsOverlay})
	checkFindings(t, got, []finding{{8, "obsguard"}, {9, "obsguard"}, {9, "obsguard"}})
}

func TestObsGuardAcceptsGuardedSites(t *testing.T) {
	src := `package dtu

import "repro/internal/obs"

type DTU struct{ obs *obs.Tracer }

func (d *DTU) send() {
	if tr := d.obs; tr.On() {
		span := tr.NewSpan()
		tr.Emit(obs.Event{Arg0: span})
		tr.Hist(0).Observe(1)
	}
}

func (d *DTU) recv() {
	if d.obs.On() {
		d.obs.Emit(obs.Event{})
	}
}
`
	got := runOn(t, []*Analyzer{ObsGuard}, "repro/internal/dtu",
		map[string]string{"f.go": src},
		map[string]map[string]string{"repro/internal/obs": obsOverlay})
	checkFindings(t, got, nil)
}

func TestObsGuardScopedToSimFacing(t *testing.T) {
	// The bench harness and the CLIs construct tracers on purpose and
	// read them after the run; only simulation-facing packages carry
	// the zero-overhead obligation.
	src := `package bench

import "repro/internal/obs"

func report(tr *obs.Tracer) {
	tr.Emit(obs.Event{})
	tr.Hist(0).Observe(1)
}
`
	got := runOn(t, []*Analyzer{ObsGuard}, "repro/internal/bench",
		map[string]string{"f.go": src},
		map[string]map[string]string{"repro/internal/obs": obsOverlay})
	checkFindings(t, got, nil)
}

func TestObsGuardIgnoresReadSide(t *testing.T) {
	// Read-side accessors are not producers; a guard on an unrelated
	// condition does not count for a producer inside it.
	src := `package dtu

import "repro/internal/obs"

type DTU struct{ obs *obs.Tracer }

func (d *DTU) stats(ready bool) []*obs.Histogram {
	if ready {
		d.obs.Emit(obs.Event{}) // line 9: guard without On() does not count
	}
	return d.obs.Histograms()
}
`
	got := runOn(t, []*Analyzer{ObsGuard}, "repro/internal/dtu",
		map[string]string{"f.go": src},
		map[string]map[string]string{"repro/internal/obs": obsOverlay})
	checkFindings(t, got, []finding{{9, "obsguard"}})
}

func TestObsGuardIgnoresUnrelatedNames(t *testing.T) {
	// A local Emit/Observe is not the obs package's producer surface.
	src := `package dtu

type queue struct{}

func (q *queue) Emit()            {}
func (q *queue) Observe(v uint64) {}
func f(q *queue)                  { q.Emit(); q.Observe(1) }
`
	got := runOn(t, []*Analyzer{ObsGuard}, "repro/internal/dtu",
		map[string]string{"f.go": src}, nil)
	checkFindings(t, got, nil)
}

func TestObsGuardFlagsUnguardedMetricMutations(t *testing.T) {
	// Counter/gauge updates are producers too: with the tracer off not
	// even a nil-safe Inc may run on the hot path.
	metricsOverlay := map[string]string{"obs.go": `package obs

type Counter struct{}

func (c *Counter) Inc()         {}
func (c *Counter) Add(n uint64) {}

type Gauge struct{}

func (g *Gauge) Set(v int64) {}

type Tracer struct{}

func (t *Tracer) On() bool { return t != nil }
`}
	src := `package dtu

import "repro/internal/obs"

type DTU struct {
	obs *obs.Tracer
	c   *obs.Counter
	g   *obs.Gauge
}

func (d *DTU) send() {
	d.c.Inc()    // line 12: unguarded
	d.g.Set(3)   // line 13: unguarded
	if tr := d.obs; tr.On() {
		d.c.Add(2) // guarded: fine
	}
}
`
	got := runOn(t, []*Analyzer{ObsGuard}, "repro/internal/dtu",
		map[string]string{"f.go": src},
		map[string]map[string]string{"repro/internal/obs": metricsOverlay})
	checkFindings(t, got, []finding{{12, "obsguard"}, {13, "obsguard"}})
}
