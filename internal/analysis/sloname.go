package analysis

import (
	"go/ast"
)

// SLOName extends the metricname discipline to the SLO engine: every
// objective registered against an obs.SLOSet (Objective) must be named
// by a package-level constant. SLO definitions are contracts — burn
// rates, breach events, and the snapshot format are all keyed by name,
// so a name computed at runtime would let the objective set drift with
// run parameters and break the byte-stable m3slo report
// (docs/OBSERVABILITY.md). The obs package itself is exempt: it
// implements the set.
var SLOName = &Analyzer{
	Name: "sloname",
	Doc:  "SLO names passed to obs.SLOSet registration must be package-level constants",
	Run:  runSLOName,
}

// sloRegistration names the obs.SLOSet methods whose first argument is
// an objective name.
var sloRegistration = map[string]bool{
	"Objective": true,
}

func runSLOName(pass *Pass) {
	if pass.Pkg.Path == obsPkg {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != obsPkg ||
				!sloRegistration[fn.Name()] || len(call.Args) == 0 {
				return true
			}
			if isPkgLevelConst(info, call.Args[0]) {
				return true
			}
			pass.Reportf(call.Args[0].Pos(),
				"SLO name passed to obs %s must be a package-level constant, not a dynamic expression", fn.Name())
			return true
		})
	}
}
