package analysis

import "testing"

// epochFixture is the common prologue of the fixture kernel: the
// mechanism declarations the rule must recognize.
const epochFixture = `package core

type ServiceObj struct {
	Name  string
	Epoch uint64
}

type Kernel struct {
	services map[string]*ServiceObj
}

func (k *Kernel) callService(svc *ServiceObj, payload []byte) error { return nil }

func (k *Kernel) serviceCurrent(svc *ServiceObj) bool {
	cur, ok := k.services[svc.Name]
	return ok && cur == svc && cur.Epoch == svc.Epoch
}
`

func TestEpochFenceFlagsUnfencedCall(t *testing.T) {
	src := epochFixture + `
func (k *Kernel) deliver(svc *ServiceObj) error {
	return k.callService(svc, nil)
}
`
	got := runOn(t, []*Analyzer{EpochFence}, "repro/internal/core",
		map[string]string{"f.go": src}, nil)
	checkFindings(t, got, []finding{{20, "epochfence"}})
}

func TestEpochFenceAcceptsServiceCurrent(t *testing.T) {
	src := epochFixture + `
func (k *Kernel) deliver(svc *ServiceObj) error {
	if !k.serviceCurrent(svc) {
		return nil
	}
	return k.callService(svc, nil)
}
`
	got := runOn(t, []*Analyzer{EpochFence}, "repro/internal/core",
		map[string]string{"f.go": src}, nil)
	checkFindings(t, got, nil)
}

func TestEpochFenceAcceptsDirectEpochCheck(t *testing.T) {
	src := epochFixture + `
func (k *Kernel) deliver(svc *ServiceObj, epoch uint64) error {
	if svc.Epoch != epoch {
		return nil
	}
	return k.callService(svc, nil)
}
`
	got := runOn(t, []*Analyzer{EpochFence}, "repro/internal/core",
		map[string]string{"f.go": src}, nil)
	checkFindings(t, got, nil)
}

func TestEpochFenceAcceptsFenceInsideClosure(t *testing.T) {
	// The kernel's deferred-reply pattern: fence and call live in a
	// spawned closure of the same declaration.
	src := epochFixture + `
func (k *Kernel) deliver(svc *ServiceObj, spawn func(func())) {
	spawn(func() {
		if !k.serviceCurrent(svc) {
			return
		}
		_ = k.callService(svc, nil)
	})
}
`
	got := runOn(t, []*Analyzer{EpochFence}, "repro/internal/core",
		map[string]string{"f.go": src}, nil)
	checkFindings(t, got, nil)
}

func TestEpochFenceIgnoresOtherPackages(t *testing.T) {
	// A same-named helper elsewhere is not the kernel's service path.
	src := `package m3fs

type svc struct{}

func callService(s *svc) {}

func f(s *svc) { callService(s) }
`
	got := runOn(t, []*Analyzer{EpochFence}, "repro/internal/m3fs",
		map[string]string{"f.go": src}, nil)
	checkFindings(t, got, nil)
}
