package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoDeterminism forbids the three host-nondeterminism leaks that can
// silently skew a cycle-accurate run: wall-clock time, math/rand, and
// iteration over Go maps (whose order is randomized per range). It
// applies to the simulation-facing packages only; host-side tooling
// (cmd/*, the bench wall-clock printer) may use real time freely.
var NoDeterminism = &Analyzer{
	Name: "nodeterminism",
	Doc:  "forbid wall-clock time, math/rand, and unsorted map iteration in simulation code",
	Run:  runNoDeterminism,
}

// timeFuncs are the wall-clock entry points of package time that leak
// host state into the simulation.
var timeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runNoDeterminism(pass *Pass) {
	if !simFacing[pass.Pkg.Path] {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"import of %s: simulation code must not use host randomness; derive pseudo-random state from simulated inputs", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn := calleeFunc(info, n); fn != nil && fn.Pkg() != nil &&
					fn.Pkg().Path() == "time" && timeFuncs[fn.Name()] {
					pass.Reportf(n.Pos(),
						"call to time.%s: simulation code must use the engine clock (sim.Time), not wall-clock time", fn.Name())
				}
			case *ast.RangeStmt:
				t := info.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Map); ok && !isKeyCollectLoop(n) {
					pass.Reportf(n.Pos(),
						"iteration over map %s has randomized order; collect and sort the keys first (or //m3vet:allow if provably order-independent)", types.TypeString(t, nil))
				}
			}
			return true
		})
	}
}

// isKeyCollectLoop recognizes the sorted-iteration idiom's first half:
// a range over a map whose body does nothing but append the key to a
// slice ("keys = append(keys, k)"). Such loops are order-independent;
// the caller is expected to sort the collected slice before use.
func isKeyCollectLoop(n *ast.RangeStmt) bool {
	key, ok := n.Key.(*ast.Ident)
	if !ok || n.Value != nil || len(n.Body.List) != 1 {
		return false
	}
	assign, ok := n.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	lhs, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || call.Ellipsis.IsValid() || len(call.Args) != 2 {
		return false
	}
	if fun, ok := call.Fun.(*ast.Ident); !ok || fun.Name != "append" {
		return false
	}
	dst, ok := call.Args[0].(*ast.Ident)
	arg, ok2 := call.Args[1].(*ast.Ident)
	return ok && ok2 && dst.Name == lhs.Name && arg.Name == key.Name
}
