package analysis

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"strconv"
)

// MagicCost flags integer literals used as cycle costs at
// Schedule/Sleep/compute call sites. Calibrated costs belong in a
// package's costs.go table where they carry a name, a paper citation,
// and one place to retune; a bare `compute(p, 40)` is a number nobody
// can audit against §5.3. The literal 0 is exempt ("run now" /
// "yield" is scheduling, not a modeled cost).
var MagicCost = &Analyzer{
	Name: "magiccost",
	Doc:  "flag integer-literal cycle costs outside the costs.go tables",
	Run:  runMagicCost,
}

// costFuncs are the call names through which simulated cycles are
// spent.
var costFuncs = map[string]bool{"Schedule": true, "Sleep": true, "compute": true}

func runMagicCost(pass *Pass) {
	if !simFacing[pass.Pkg.Path] {
		return
	}
	for _, f := range pass.Pkg.Files {
		if filepath.Base(pass.Pkg.Fset.Position(f.Pos()).Filename) == "costs.go" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !costFuncs[calleeName(call)] {
				return true
			}
			for _, arg := range call.Args {
				if v, ok := intLiteral(pass, arg); ok && v != 0 {
					pass.Reportf(arg.Pos(),
						"magic cycle cost %d in call to %s; give it a name in the package's costs.go table", v, calleeName(call))
				}
			}
			return true
		})
	}
}

// intLiteral unwraps parentheses and type conversions (sim.Time(40))
// and returns the value of an integer literal argument.
func intLiteral(pass *Pass, e ast.Expr) (int64, bool) {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if tv, ok := pass.Pkg.Info.Types[call.Fun]; ok && tv.IsType() {
			return intLiteral(pass, call.Args[0])
		}
	}
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.INT {
		return 0, false
	}
	v, err := strconv.ParseInt(lit.Value, 0, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}
