package analysis

import (
	"strings"
	"testing"
)

func TestResolveStampsInventory(t *testing.T) {
	res := runModuleOn(t, shardFixture)
	rows := make(map[string]InventoryEntry)
	for _, e := range res.Inventory {
		rows[e.Key] = e
	}
	want := map[string]string{
		"repro/internal/noc.PerShard":   "shard",
		"repro/internal/noc.OwnerOnly":  "owner",
		"repro/internal/noc.Deferred":   "owner",
		"repro/internal/noc.Unresolved": "",
	}
	for key, kind := range want {
		e, ok := rows[key]
		if !ok {
			t.Errorf("no inventory row for %s", key)
			continue
		}
		if e.Resolution != kind {
			t.Errorf("%s resolution = %q, want %q", key, e.Resolution, kind)
		}
		if kind != "" && e.ResolutionNote == "" {
			t.Errorf("%s has no resolution note", key)
		}
	}
}

func TestResolveRetiresSharedStateFindings(t *testing.T) {
	res := runModuleOn(t, shardFixture)
	diags := diagsOf(res, "sharedstate")
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 sharedstate finding (the unresolved entry), got %d:\n%s",
			len(diags), diagText(diags))
	}
	if diags[0].Key != "sharedstate:repro/internal/noc.Unresolved" {
		t.Errorf("surviving finding = %q, want the unresolved location", diags[0].Key)
	}
}

// badResolveFixture holds every way a resolve comment can be wrong:
// too few fields, a rule other than sharedstate, an unknown resolution
// kind, and a well-formed comment on a declaration the inventory does
// not contain (stale).
var badResolveFixture = map[string]map[string]string{
	"repro/internal/noc": {"noc.go": `package noc

//m3vet:resolve sharedstate
var A int

//m3vet:resolve timetaint owner wrong rule entirely
var B int

//m3vet:resolve sharedstate banana unknown kind
var C int

//m3vet:resolve sharedstate owner nothing inventories this
var D int
`},
}

func TestResolveMalformedAndStaleComments(t *testing.T) {
	res := runModuleOn(t, badResolveFixture)
	diags := diagsOf(res, "m3vet")
	if len(diags) != 4 {
		t.Fatalf("want 4 diagnostics, got %d:\n%s", len(diags), diagText(diags))
	}
	wants := []string{
		"malformed resolve comment",
		`names rule "timetaint"`,
		`unknown resolution "banana"`,
		"matches no inventoried shared-state declaration",
	}
	for _, w := range wants {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, w) {
				found = true
			}
		}
		if !found {
			t.Errorf("no diagnostic containing %q:\n%s", w, diagText(diags))
		}
	}
	// None of these carry a rule:key identity, so none can be baselined
	// away: a lying annotation must always fail CI.
	for _, d := range diags {
		if d.Key != "" {
			t.Errorf("diagnostic %s is baselineable (key %q)", d, d.Key)
		}
	}
}
