package analysis

import "testing"

const goroutineFixture = `package p

func f(ch chan int) {
	go f(ch)
	ch <- 1
	_ = <-ch
	select {}
	close(ch)
	ch2 := make(chan int)
	for v := range ch2 {
		_ = v
	}
}
`

func TestNoGoroutineFlagsConcurrencyOutsideSim(t *testing.T) {
	got := runOn(t, []*Analyzer{NoGoroutine}, "repro/internal/m3", map[string]string{"f.go": goroutineFixture}, nil)
	checkFindings(t, got, []finding{
		{4, "nogoroutine"},  // go statement
		{5, "nogoroutine"},  // channel send
		{6, "nogoroutine"},  // channel receive
		{7, "nogoroutine"},  // select
		{8, "nogoroutine"},  // close
		{9, "nogoroutine"},  // make(chan)
		{10, "nogoroutine"}, // range over channel
	})
}

func TestNoGoroutineAllowsEngineInternals(t *testing.T) {
	// The same code inside internal/sim is the engine's own hand-off
	// machinery and is exempt.
	got := runOn(t, []*Analyzer{NoGoroutine}, "repro/internal/sim", map[string]string{"f.go": goroutineFixture}, nil)
	checkFindings(t, got, nil)
}

func TestNoGoroutineCleanCodeIsQuiet(t *testing.T) {
	src := `package p

func f(xs []int) int {
	sum := 0
	for _, x := range xs {
		sum += x
	}
	return sum
}
`
	got := runOn(t, []*Analyzer{NoGoroutine}, "repro/internal/m3", map[string]string{"f.go": src}, nil)
	checkFindings(t, got, nil)
}
