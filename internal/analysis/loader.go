package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	// Path is the import path ("repro/internal/core").
	Path string
	Fset *token.FileSet
	// Files holds the non-test source files, in file-name order.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads module packages from a directory tree, with an optional
// in-memory overlay used by the analyzer fixture tests. It implements
// types.Importer: module-internal imports resolve through the loader
// itself (or the overlay) and standard-library imports compile from
// $GOROOT/src, so no export data, go/packages, or external tooling is
// needed.
type Loader struct {
	Fset *token.FileSet
	// ModulePath is the module's import-path prefix ("repro").
	ModulePath string
	// Dir is the module root on disk; may be empty for overlay-only use.
	Dir string
	// Overlay maps import path -> file name -> source text. Overlay
	// entries shadow the disk tree.
	Overlay map[string]map[string]string

	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader for the module rooted at dir, reading the
// module path from go.mod.
func NewLoader(dir string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, err
	}
	module := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			module = strings.TrimSpace(rest)
			break
		}
	}
	if module == "" {
		return nil, fmt.Errorf("analysis: no module line in %s/go.mod", dir)
	}
	l := NewOverlayLoader(module, nil)
	l.Dir = dir
	return l, nil
}

// NewOverlayLoader returns a loader resolving modulePath-internal
// imports from the overlay alone. Tests use it to type-check fixture
// packages without touching disk.
func NewOverlayLoader(modulePath string, overlay map[string]map[string]string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModulePath: modulePath,
		Overlay:    overlay,
		std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}
}

// moduleInternal reports whether path belongs to the loaded module.
func (l *Loader) moduleInternal(path string) bool {
	return path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")
}

// sources returns the file name -> source mapping for path. Disk
// sources are returned with nil content (the parser reads the file).
func (l *Loader) sources(path string) (dir string, names []string, overlay map[string]string, err error) {
	if src, ok := l.Overlay[path]; ok {
		for name := range src {
			names = append(names, name)
		}
		sort.Strings(names)
		return "", names, src, nil
	}
	if l.Dir == "" {
		return "", nil, nil, fmt.Errorf("analysis: package %s not in overlay and no module dir set", path)
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	dir = filepath.Join(l.Dir, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return dir, names, nil, nil
}

// Load parses and type-checks the package with the given import path.
// Results are memoized; test files are skipped (the invariants protect
// simulation code, and tests legitimately use host time and goroutines).
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, names, overlay, err := l.sources(path)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go source files for %s", path)
	}
	var files []*ast.File
	for _, name := range names {
		var (
			f        *ast.File
			parseErr error
		)
		if overlay != nil {
			f, parseErr = parser.ParseFile(l.Fset, name, overlay[name], parser.ParseComments)
		} else {
			f, parseErr = parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		}
		if parseErr != nil {
			return nil, parseErr
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Path: path, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.Overlay[path]; ok || l.moduleInternal(path) {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}

// ListPackages walks the module tree and returns the import paths of
// every directory holding at least one non-test Go file, sorted.
func (l *Loader) ListPackages() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.Dir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != l.Dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(l.Dir, filepath.Dir(p))
		if err != nil {
			return err
		}
		path := l.ModulePath
		if rel != "." {
			path += "/" + filepath.ToSlash(rel)
		}
		paths = append(paths, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	// Dedupe: one entry per directory.
	out := paths[:0]
	for i, p := range paths {
		if i == 0 || paths[i-1] != p {
			out = append(out, p)
		}
	}
	return out, nil
}
