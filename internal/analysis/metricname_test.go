package analysis

import "testing"

// registryOverlay is a minimal obs package exposing the metric
// registration surface for fixture dependencies.
var registryOverlay = map[string]string{"obs.go": `package obs

type Counter struct{}

func (c *Counter) Inc() {}

type Gauge struct{}

type Series struct{}

type Registry struct{}

func (r *Registry) Counter(name string, idx int) *Counter              { return nil }
func (r *Registry) Gauge(name string, idx int) *Gauge                  { return nil }
func (r *Registry) Series(name string, idx int, src func() int64) *Series { return nil }
`}

func TestMetricNameFlagsDynamicNames(t *testing.T) {
	src := `package dtu

import (
	"fmt"

	"repro/internal/obs"
)

func f(m *obs.Registry, node int) {
	m.Counter("dtu_stalls_total", node)               // line 10: literal
	name := "dtu_retries_total"
	m.Gauge(name, node)                               // line 12: local
	m.Series(fmt.Sprintf("dtu_rx_%d", node), node, nil) // line 13: computed
}
`
	got := runOn(t, []*Analyzer{MetricName}, "repro/internal/dtu",
		map[string]string{"f.go": src},
		map[string]map[string]string{"repro/internal/obs": registryOverlay})
	checkFindings(t, got, []finding{
		{10, "metricname"}, {12, "metricname"}, {13, "metricname"}})
}

func TestMetricNameAllowsPackageConstants(t *testing.T) {
	src := `package dtu

import "repro/internal/obs"

const MStalls = "dtu_stalls_total"

func f(m *obs.Registry, node int) {
	m.Counter(MStalls, node)
	m.Series(MStalls, node, nil)
}
`
	got := runOn(t, []*Analyzer{MetricName}, "repro/internal/dtu",
		map[string]string{"f.go": src},
		map[string]map[string]string{"repro/internal/obs": registryOverlay})
	checkFindings(t, got, nil)
}

func TestMetricNameAllowsImportedConstants(t *testing.T) {
	// A bench harness registering a metric under another package's
	// exported name constant is fine: the name still has exactly one
	// compile-time definition site.
	dtuOverlay := map[string]string{"dtu.go": `package dtu

const MStalls = "dtu_stalls_total"
`}
	src := `package bench

import (
	"repro/internal/dtu"
	"repro/internal/obs"
)

func f(m *obs.Registry) {
	m.Counter(dtu.MStalls, 0)
}
`
	got := runOn(t, []*Analyzer{MetricName}, "repro/internal/bench",
		map[string]string{"f.go": src},
		map[string]map[string]string{
			"repro/internal/obs": registryOverlay,
			"repro/internal/dtu": dtuOverlay,
		})
	checkFindings(t, got, nil)
}

func TestMetricNameFlagsFunctionScopedConst(t *testing.T) {
	// A const declared inside a function body is still a fixed string,
	// but the rule demands package scope: one definition site per
	// metric, visible in the package's const block.
	src := `package dtu

import "repro/internal/obs"

func f(m *obs.Registry) {
	const name = "dtu_stalls_total"
	m.Counter(name, 0)
}
`
	got := runOn(t, []*Analyzer{MetricName}, "repro/internal/dtu",
		map[string]string{"f.go": src},
		map[string]map[string]string{"repro/internal/obs": registryOverlay})
	checkFindings(t, got, []finding{{7, "metricname"}})
}

func TestMetricNameIgnoresUnrelatedCounters(t *testing.T) {
	// Same method names on a foreign type are not registrations.
	src := `package m3fs

type reg struct{}

func (r *reg) Counter(name string, idx int) int { return 0 }
func f(r *reg)                                  { r.Counter("x", 0) }
`
	got := runOn(t, []*Analyzer{MetricName}, "repro/internal/m3fs",
		map[string]string{"f.go": src}, nil)
	checkFindings(t, got, nil)
}
