package analysis

import (
	"path/filepath"
	"testing"
)

func moduleRootForTest(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func TestLoaderLoadsRealPackages(t *testing.T) {
	l, err := NewLoader(moduleRootForTest(t))
	if err != nil {
		t.Fatal(err)
	}
	if l.ModulePath != "repro" {
		t.Fatalf("module path = %q, want repro", l.ModulePath)
	}
	pkg, err := l.Load("repro/internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types == nil || pkg.Types.Scope().Lookup("Engine") == nil {
		t.Fatal("sim.Engine not found in type-checked package")
	}
	// Memoized: a second load returns the identical package.
	again, err := l.Load("repro/internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	if again != pkg {
		t.Fatal("Load is not memoized")
	}
}

func TestListPackagesCoversModule(t *testing.T) {
	l, err := NewLoader(moduleRootForTest(t))
	if err != nil {
		t.Fatal(err)
	}
	paths, err := l.ListPackages()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"repro/internal/analysis":   false,
		"repro/internal/sim":        false,
		"repro/cmd/m3vet":           false,
		"repro/examples/quickstart": false,
	}
	for _, p := range paths {
		if _, ok := want[p]; ok {
			want[p] = true
		}
		if p == "repro" {
			t.Error("module root has no non-test Go files and must not be listed")
		}
	}
	for p, seen := range want {
		if !seen {
			t.Errorf("ListPackages missed %s", p)
		}
	}
}

// TestRepoIsClean is the self-hosting check: the repository at HEAD
// must produce zero diagnostics. If this fails, either fix the flagged
// code or annotate it with a justified //m3vet:allow.
func TestRepoIsClean(t *testing.T) {
	diags, err := Check(moduleRootForTest(t), All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
