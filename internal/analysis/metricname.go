package analysis

import (
	"go/ast"
	"go/types"
)

// MetricName pins the metrics namespace down at compile time: every
// registration against the obs registry (Counter, Gauge, Series) must
// pass a name that resolves to a package-level constant. Dynamic names
// — string literals at the call site, fmt.Sprintf products, locals —
// would let the metric set drift with run parameters, breaking the
// byte-identical snapshot contract (docs/OBSERVABILITY.md) and making
// bench JSON diffs compare different universes. A constant per metric
// also gives every name exactly one greppable definition site. The obs
// package itself is exempt: it implements the registry.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc:  "metric names passed to obs registration must be package-level constants",
	Run:  runMetricName,
}

// metricRegistration names the obs.Registry methods whose first
// argument is a metric name.
var metricRegistration = map[string]bool{
	"Counter": true,
	"Gauge":   true,
	"Series":  true,
}

func runMetricName(pass *Pass) {
	if pass.Pkg.Path == obsPkg {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != obsPkg ||
				!metricRegistration[fn.Name()] || len(call.Args) == 0 {
				return true
			}
			if isPkgLevelConst(info, call.Args[0]) {
				return true
			}
			pass.Reportf(call.Args[0].Pos(),
				"metric name passed to obs %s must be a package-level constant, not a dynamic expression", fn.Name())
			return true
		})
	}
}

// isPkgLevelConst reports whether expr is an identifier or selector
// resolving to a constant declared at package scope (in this package or
// an imported one).
func isPkgLevelConst(info *types.Info, expr ast.Expr) bool {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	c, ok := info.Uses[id].(*types.Const)
	if !ok || c.Pkg() == nil {
		return false
	}
	return c.Parent() == c.Pkg().Scope()
}
