package analysis

import (
	"strings"
	"testing"
)

// shardFixture models the parallel engine's shapes: a noc.ShardHandler
// implementation and a ScheduleShard callback (both shard contexts),
// plus a serial engine callback, touching four locations that cover the
// resolve/parsafe matrix — resolved "shard" (legal shard write),
// resolved "owner" reached through a helper (illegal shard write),
// a write deferred through the barrier hand-off (legal), and an
// unresolved location (illegal, and still a sharedstate finding).
var shardFixture = map[string]map[string]string{
	"repro/internal/sim": {"sim.go": `package sim

type Engine struct{}

func (e *Engine) Schedule(at int, fn func()) { fn() }

// ShardCtx mirrors the real engine's shard context: the barrier
// hand-off invokes its callback inline in immediate (serial) mode,
// which is exactly the call edge parsafe must not follow.
type ShardCtx struct{ immediate bool }

func (sc *ShardCtx) Defer(fn func()) {
	if sc.immediate {
		fn()
	}
}

func ScheduleShard(shard int, fn func(sc *ShardCtx)) {
	fn(&ShardCtx{immediate: true})
}
`},
	"repro/internal/noc": {"noc.go": `package noc

import "repro/internal/sim"

type Packet struct{}

type ShardHandler interface {
	DeliverShard(p *Packet, sc *sim.ShardCtx)
}

//m3vet:resolve sharedstate shard each shard counts its own deliveries
var PerShard int

//m3vet:resolve sharedstate owner only barrier code bumps this
var OwnerOnly int

//m3vet:resolve sharedstate owner drained at the barrier
var Deferred int

var Unresolved int
`},
	"repro/internal/dtu": {"dtu.go": `package dtu

import (
	"repro/internal/noc"
	"repro/internal/sim"
)

type D struct{}

func (d *D) DeliverShard(p *noc.Packet, sc *sim.ShardCtx) {
	noc.PerShard++
	bumpOwner()
	sc.Defer(func() { noc.Deferred++ })
}

func bumpOwner() { noc.OwnerOnly++ }
`},
	"repro/internal/core": {"core.go": `package core

import (
	"repro/internal/noc"
	"repro/internal/sim"
)

func Boot(e *sim.Engine) {
	e.Schedule(1, func() {
		noc.PerShard++
		noc.OwnerOnly++
		noc.Deferred++
		noc.Unresolved++
	})
	sim.ScheduleShard(0, func(sc *sim.ShardCtx) {
		noc.Unresolved++
	})
}
`},
}

func findDiag(diags []Diagnostic, substr string) *Diagnostic {
	for i := range diags {
		if strings.Contains(diags[i].Key, substr) {
			return &diags[i]
		}
	}
	return nil
}

func TestParSafeFlagsShardWritesToNonShardState(t *testing.T) {
	res := runModuleOn(t, shardFixture)
	diags := diagsOf(res, "parsafe")
	if len(diags) != 2 {
		t.Fatalf("want 2 parsafe findings, got %d:\n%s", len(diags), diagText(diags))
	}

	// The DeliverShard implementation reaches OwnerOnly through a
	// helper; the resolution says "owner", so the shard write is a lie.
	owner := findDiag(diags, "noc.OwnerOnly@")
	if owner == nil {
		t.Fatalf("no finding for OwnerOnly:\n%s", diagText(diags))
	}
	if !strings.Contains(owner.Key, "(D).DeliverShard") {
		t.Errorf("OwnerOnly finding should name the handler context: %q", owner.Key)
	}
	if !strings.Contains(owner.Message, `is resolved "owner"`) {
		t.Errorf("message should quote the conflicting resolution: %q", owner.Message)
	}
	var haveHop bool
	for _, f := range owner.Chain {
		if strings.Contains(f.Note, "bumpOwner") {
			haveHop = true
		}
	}
	if !haveHop {
		t.Errorf("witness should pass through bumpOwner: %v", owner.Chain)
	}

	// The ScheduleShard callback writes a location with no resolve
	// annotation at all.
	unres := findDiag(diags, "noc.Unresolved@")
	if unres == nil {
		t.Fatalf("no finding for Unresolved:\n%s", diagText(diags))
	}
	if !strings.Contains(unres.Key, "Boot$lit") {
		t.Errorf("Unresolved finding should name the ScheduleShard callback: %q", unres.Key)
	}
	if !strings.Contains(unres.Message, "no //m3vet:resolve annotation") {
		t.Errorf("message should say the entry is unresolved: %q", unres.Message)
	}
}

func TestParSafePermitsShardResolvedAndDeferredWrites(t *testing.T) {
	res := runModuleOn(t, shardFixture)
	for _, d := range diagsOf(res, "parsafe") {
		// PerShard is resolved "shard": the shard write is the point.
		if strings.Contains(d.Key, "PerShard") {
			t.Errorf("shard-resolved location flagged: %s", d)
		}
		// Deferred is written only inside sc.Defer's callback, which
		// runs at the barrier — parsafe must not follow the hand-off's
		// inline (immediate-mode) invocation edge.
		if strings.Contains(d.Key, "Deferred") {
			t.Errorf("barrier-deferred write flagged: %s", d)
		}
	}
}
