package analysis

import (
	"strings"
	"testing"
)

// runModuleOn type-checks the overlay and runs the full module
// pipeline (call graph, summaries, inventory, module analyzers) with
// no per-package analyzers.
func runModuleOn(t *testing.T, overlay map[string]map[string]string) *ModuleResult {
	t.Helper()
	res, err := checkPackages(loadPkgs(t, overlay), nil, AllModule())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func diagsOf(res *ModuleResult, rule string) []Diagnostic {
	var out []Diagnostic
	for _, d := range res.Diagnostics {
		if d.Rule == rule {
			out = append(out, d)
		}
	}
	return out
}

// sharedFixture models the real shape: a noc.Handler implementation
// (packet delivery entry context) and an engine callback both mutate a
// sim-facing counter, while a second counter is touched by only one
// context.
var sharedFixture = map[string]map[string]string{
	"repro/internal/sim": {"sim.go": `package sim

type Engine struct{}

func (e *Engine) Schedule(at int, fn func()) { fn() }
`},
	"repro/internal/noc": {"noc.go": `package noc

type Packet struct{}

type Handler interface{ Deliver(p *Packet) }

var Delivered int
var Private int
`},
	"repro/internal/dtu": {"dtu.go": `package dtu

import "repro/internal/noc"

type D struct{ local int }

func (d *D) Deliver(p *noc.Packet) {
	d.local++
	bump()
}

func bump() { noc.Delivered++ }
`},
	"repro/internal/core": {"core.go": `package core

import (
	"repro/internal/noc"
	"repro/internal/sim"
)

func Boot(e *sim.Engine) {
	e.Schedule(1, func() {
		noc.Delivered++
		noc.Private++
	})
}
`},
}

func TestSharedStateFindsCrossContextWrites(t *testing.T) {
	res := runModuleOn(t, sharedFixture)
	diags := diagsOf(res, "sharedstate")
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 sharedstate finding, got %d:\n%s", len(diags), diagText(diags))
	}
	d := diags[0]
	if d.Key != "sharedstate:repro/internal/noc.Delivered" {
		t.Errorf("key = %q", d.Key)
	}
	if len(d.Chain) == 0 {
		t.Error("finding has no witness chain")
	}
	// The witness comes from the first (name-sorted) writer and must
	// end at a direct access of the location.
	last := d.Chain[len(d.Chain)-1].Note
	if !strings.Contains(last, "accesses repro/internal/noc.Delivered") {
		t.Errorf("witness should end at the access: %q", last)
	}
	// The handler reaches Delivered only through bump, so the handler's
	// own witness chain must include the interprocedural hop.
	res2 := runModuleOn(t, sharedFixture)
	for _, e := range res2.Inventory {
		if e.Key != "repro/internal/noc.Delivered" {
			continue
		}
		want := []string{"repro/internal/core.Boot$lit@9", "repro/internal/dtu.(D).Deliver"}
		if len(e.Writers) != 2 || e.Writers[0] != want[0] || e.Writers[1] != want[1] {
			t.Errorf("writers = %v, want %v", e.Writers, want)
		}
	}
}

func TestSharedStateInventoryRows(t *testing.T) {
	res := runModuleOn(t, sharedFixture)
	rows := make(map[string]InventoryEntry)
	for _, e := range res.Inventory {
		rows[e.Key] = e
	}
	del, ok := rows["repro/internal/noc.Delivered"]
	if !ok {
		t.Fatalf("no inventory row for Delivered; rows: %v", keysOf(rows))
	}
	if !del.Shared || len(del.Writers) != 2 {
		t.Errorf("Delivered row: shared=%v writers=%v", del.Shared, del.Writers)
	}
	// Private is written by one context only: inventoried, not shared.
	priv, ok := rows["repro/internal/noc.Private"]
	if !ok {
		t.Fatalf("no inventory row for Private; rows: %v", keysOf(rows))
	}
	if priv.Shared {
		t.Errorf("Private should not be shared: writers=%v readers=%v", priv.Writers, priv.Readers)
	}
	// The handler's own field is single-context too.
	if e, ok := rows["repro/internal/dtu.D.local"]; ok && e.Shared {
		t.Errorf("D.local is touched by one context only: %+v", e)
	}
}

func keysOf(m map[string]InventoryEntry) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestSharedStateBaselineSuppression(t *testing.T) {
	res := runModuleOn(t, sharedFixture)
	b := &Baseline{Suppressed: []string{"sharedstate:repro/internal/noc.Delivered"}, keys: map[string]bool{
		"sharedstate:repro/internal/noc.Delivered": true,
	}}
	kept, suppressed := b.Filter(res.Diagnostics)
	if suppressed != 1 {
		t.Errorf("suppressed = %d, want 1", suppressed)
	}
	for _, d := range kept {
		if d.Rule == "sharedstate" {
			t.Errorf("baselined finding survived: %s", d)
		}
	}
}
