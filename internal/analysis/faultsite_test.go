package analysis

import "testing"

// simOverlay is a minimal sim package exposing the guarded Kill entry
// point for fixture dependencies.
var simOverlay = map[string]string{"sim.go": `package sim

type Process struct{}

func (p *Process) Kill() {}

type Engine struct{}
`}

func TestFaultSiteFlagsForeignCallers(t *testing.T) {
	src := `package m3fs

import "repro/internal/sim"

func f(p *sim.Process) {
	p.Kill()
}
`
	got := runOn(t, []*Analyzer{FaultSite}, "repro/internal/m3fs",
		map[string]string{"f.go": src},
		map[string]map[string]string{"repro/internal/sim": simOverlay})
	checkFindings(t, got, []finding{{6, "faultsite"}})
}

func TestFaultSiteAllowsFaultPackage(t *testing.T) {
	src := `package fault

import "repro/internal/sim"

func f(p *sim.Process) {
	p.Kill()
}
`
	got := runOn(t, []*Analyzer{FaultSite}, "repro/internal/fault",
		map[string]string{"f.go": src},
		map[string]map[string]string{"repro/internal/sim": simOverlay})
	checkFindings(t, got, nil)
}

func TestFaultSiteAllowsOwningLayer(t *testing.T) {
	// The tile layer models the hardware consequence of a crash/reset:
	// it may kill the program process, but it may not, say, arm the
	// death watchdog.
	src := `package tile

import (
	"repro/internal/core"
	"repro/internal/sim"
)

func f(p *sim.Process, k *core.Kernel) {
	p.Kill()
	k.EnableDeathWatch()
}
`
	coreOverlay := map[string]string{"core.go": `package core

type Kernel struct{}

func (k *Kernel) EnableDeathWatch() {}
`}
	got := runOn(t, []*Analyzer{FaultSite}, "repro/internal/tile",
		map[string]string{"f.go": src},
		map[string]map[string]string{
			"repro/internal/sim":  simOverlay,
			"repro/internal/core": coreOverlay,
		})
	checkFindings(t, got, []finding{{10, "faultsite"}})
}

func TestFaultSiteIgnoresUnrelatedNames(t *testing.T) {
	// A local function that happens to be called Kill is not an entry
	// point; only the guarded packages' functions count.
	src := `package m3fs

type job struct{}

func (j *job) Kill()            {}
func (j *job) EnableFaults()    {}
func f(j *job)                  { j.Kill(); j.EnableFaults() }
`
	got := runOn(t, []*Analyzer{FaultSite}, "repro/internal/m3fs",
		map[string]string{"f.go": src}, nil)
	checkFindings(t, got, nil)
}
