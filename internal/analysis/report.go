package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// This file is the machine-readable side of m3vet: the -json report
// (findings with witness chains plus the shared-state inventory) and
// the vet-baseline.json suppression file that lets CI accept the
// current inventory without letting new findings in.

// JSONFact is one serialized witness step.
type JSONFact struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Note string `json:"note,omitempty"`
}

// JSONFinding is one serialized diagnostic.
type JSONFinding struct {
	Rule    string     `json:"rule"`
	Key     string     `json:"key,omitempty"`
	File    string     `json:"file"`
	Line    int        `json:"line"`
	Col     int        `json:"col"`
	Message string     `json:"message"`
	Chain   []JSONFact `json:"chain,omitempty"`
}

// JSONInventoryEntry is one serialized shared-state inventory row.
type JSONInventoryEntry struct {
	Key     string   `json:"key"`
	Kind    string   `json:"kind"`
	Type    string   `json:"type"`
	File    string   `json:"file"`
	Line    int      `json:"line"`
	Shared  bool     `json:"shared"`
	Writers []string `json:"writers"`
	Readers []string `json:"readers"`
	// Resolution and ResolutionNote mirror the //m3vet:resolve
	// annotation on the declaration: how the location is safe under the
	// parallel engine (owner/shard/message) and why. Empty while the
	// entry is still open work-list debt.
	Resolution     string     `json:"resolution,omitempty"`
	ResolutionNote string     `json:"resolution_note,omitempty"`
	Witness        []JSONFact `json:"witness,omitempty"`
}

// JSONReport is the full `m3vet -json` document.
type JSONReport struct {
	// Findings are the unsuppressed diagnostics.
	Findings []JSONFinding `json:"findings"`
	// Suppressed counts baseline-suppressed findings (they are absent
	// from Findings but the count keeps the suppression visible).
	Suppressed int `json:"suppressed"`
	// SharedState is the full inventory (shared and private rows): the
	// parallel-DES work-list. See ROADMAP item 2.
	SharedState []JSONInventoryEntry `json:"sharedstate"`
}

// relPath rebases file paths onto the module root so reports and
// baselines are machine-independent.
func relPath(root, file string) string {
	if root == "" {
		return file
	}
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return file
}

func jsonFact(root string, f Fact) JSONFact {
	return JSONFact{File: relPath(root, f.Pos.Filename), Line: f.Pos.Line, Col: f.Pos.Column, Note: f.Note}
}

func jsonPosFact(root string, pos token.Position, note string) JSONFact {
	return jsonFact(root, Fact{Pos: pos, Note: note})
}

// BuildReport serializes a module check result. root is the module
// directory used to relativize paths; suppressed is the number of
// baseline-suppressed findings.
func BuildReport(root string, diags []Diagnostic, inventory []InventoryEntry, suppressed int) *JSONReport {
	rep := &JSONReport{Findings: []JSONFinding{}, Suppressed: suppressed, SharedState: []JSONInventoryEntry{}}
	for _, d := range diags {
		f := JSONFinding{
			Rule:    d.Rule,
			Key:     d.Key,
			File:    relPath(root, d.Pos.Filename),
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Message: d.Message,
		}
		for _, step := range d.Chain {
			f.Chain = append(f.Chain, jsonFact(root, step))
		}
		rep.Findings = append(rep.Findings, f)
	}
	for _, e := range inventory {
		row := JSONInventoryEntry{
			Key:            e.Key,
			Kind:           e.Kind,
			Type:           e.Type,
			File:           relPath(root, e.Pos.Pos.Filename),
			Line:           e.Pos.Pos.Line,
			Shared:         e.Shared,
			Writers:        e.Writers,
			Readers:        e.Readers,
			Resolution:     e.Resolution,
			ResolutionNote: e.ResolutionNote,
		}
		for _, step := range e.WriteWitness {
			row.Witness = append(row.Witness, jsonFact(root, step))
		}
		rep.SharedState = append(rep.SharedState, row)
	}
	return rep
}

// WriteJSON writes the report to path (or stdout for "-"), indented
// for diffability.
func (r *JSONReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, data, 0o644)
}

// Baseline is the committed suppression set: the stable keys of
// accepted findings. Keys are position-independent, so ordinary code
// motion does not churn the file; only a genuinely new flow adds a
// key.
type Baseline struct {
	// Comment documents the file's purpose inside the JSON itself.
	Comment    string   `json:"_comment,omitempty"`
	Suppressed []string `json:"suppressed"`

	keys map[string]bool
}

// LoadBaseline reads a baseline file; a missing file is an empty
// baseline, not an error (fresh checkouts before the first
// `make vet-baseline` still vet).
func LoadBaseline(path string) (*Baseline, error) {
	b := &Baseline{}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		b.keys = map[string]bool{}
		return b, nil
	}
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(data, b); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	b.keys = make(map[string]bool, len(b.Suppressed))
	for _, k := range b.Suppressed {
		b.keys[k] = true
	}
	return b, nil
}

// Filter splits diagnostics into surviving and baseline-suppressed.
// Only keyed (module-pass) findings can be baselined.
func (b *Baseline) Filter(diags []Diagnostic) (kept []Diagnostic, suppressed int) {
	for _, d := range diags {
		if d.Key != "" && b.keys[d.Key] {
			suppressed++
			continue
		}
		kept = append(kept, d)
	}
	return kept, suppressed
}

// WriteBaseline writes the keys of every keyed diagnostic as the new
// baseline.
func WriteBaseline(path string, diags []Diagnostic) error {
	seen := make(map[string]bool)
	var keys []string
	for _, d := range diags {
		if d.Key != "" && !seen[d.Key] {
			seen[d.Key] = true
			keys = append(keys, d.Key)
		}
	}
	sort.Strings(keys)
	b := &Baseline{
		Comment: "accepted m3vet findings (regenerate with `make vet-baseline`); " +
			"the sharedstate keys double as the parallel-DES synchronization work-list",
		Suppressed: keys,
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
