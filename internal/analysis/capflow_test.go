package analysis

import (
	"strings"
	"testing"
)

// capFixture: an app-layer package touching hw-layer APIs. NodeID may
// not cross into app at all; an unexported field makes a struct an
// opaque handle and is fine.
var capFixture = map[string]map[string]string{
	"repro/internal/kif": {"kif.go": `package kif

type CapSel uint64
`},
	"repro/internal/noc": {"noc.go": `package noc

type NodeID int
`},
	"repro/internal/dtu": {"dtu.go": `package dtu

import (
	"repro/internal/kif"
	"repro/internal/noc"
)

// Leaky carries an exported node id.
type Leaky struct{ Node noc.NodeID }

// Opaque hides its routing state: an opaque reply handle.
type Opaque struct{ node noc.NodeID }

func GetLeaky() *Leaky   { return &Leaky{} }
func GetOpaque() *Opaque { return &Opaque{} }

func Ping(n noc.NodeID)      {}
func Deleg(s kif.CapSel)     {}
func UseOpaque(o *Opaque)    {}
`},
	"repro/internal/m3": {"m3.go": `package m3

import (
	"repro/internal/dtu"
	"repro/internal/kif"
	"repro/internal/noc"
)

func App() {
	dtu.Ping(noc.NodeID(3))    // NodeID arg: app->hw, banned
	dtu.Deleg(kif.CapSel(7))   // CapSel arg: app->hw, banned
	l := dtu.GetLeaky()        // exported NodeID field result: banned
	_ = l
	o := dtu.GetOpaque()       // opaque handle: fine
	dtu.UseOpaque(o)           // opaque handle arg: fine
}
`},
}

func TestCapFlowLayerCrossings(t *testing.T) {
	res := runModuleOn(t, capFixture)
	diags := diagsOf(res, "capflow")
	if len(diags) != 3 {
		t.Fatalf("want 3 capflow findings, got %d:\n%s", len(diags), diagText(diags))
	}
	wantKeys := map[string]bool{
		"capflow:app->hw:repro/internal/dtu.Ping:arg0":       true,
		"capflow:app->hw:repro/internal/dtu.Deleg:arg0":      true,
		"capflow:hw->app:repro/internal/dtu.GetLeaky:result": true,
	}
	for _, d := range diags {
		if !wantKeys[d.Key] {
			t.Errorf("unexpected finding key %q: %s", d.Key, d.Message)
		}
		delete(wantKeys, d.Key)
	}
	for k := range wantKeys {
		t.Errorf("missing finding %q", k)
	}
}

// Kernel<->hw NodeID traffic is legitimate (the kernel programs DTU
// endpoints with node ids); only app-layer contact is banned. kif
// itself is the sanctioned carrier for selectors.
func TestCapFlowAllowedCrossings(t *testing.T) {
	overlay := map[string]map[string]string{
		"repro/internal/kif": {"kif.go": `package kif

type CapSel uint64

func Marshal(s CapSel) []byte { return nil }
`},
		"repro/internal/noc": {"noc.go": `package noc

type NodeID int
`},
		"repro/internal/dtu": {"dtu.go": `package dtu

import "repro/internal/noc"

func Configure(n noc.NodeID) {}
`},
		"repro/internal/core": {"core.go": `package core

import (
	"repro/internal/dtu"
	"repro/internal/kif"
	"repro/internal/noc"
)

func Activate(sel kif.CapSel) {
	dtu.Configure(noc.NodeID(1)) // kernel->hw node id: allowed
	_ = kif.Marshal(sel)         // selector into kif: the sanctioned channel
}
`},
	}
	res := runModuleOn(t, overlay)
	if diags := diagsOf(res, "capflow"); len(diags) != 0 {
		t.Fatalf("want no capflow findings, got:\n%s", diagText(diags))
	}
}

func TestCapFlowMessages(t *testing.T) {
	res := runModuleOn(t, capFixture)
	for _, d := range diagsOf(res, "capflow") {
		if !strings.Contains(d.Message, "kif syscall/delegation") &&
			!strings.Contains(d.Message, "translate it at the boundary") {
			t.Errorf("message should explain the sanctioned channel: %s", d.Message)
		}
	}
}
