package analysis

import "fmt"

// TimeTaint is the interprocedural companion to the syntactic
// nodeterminism rule. nodeterminism bans time.Now/math/rand/map-ranges
// *inside* simulation-facing packages; what it cannot see is host
// nondeterminism laundered through helper functions: a cmd/ tool that
// computes a value from wall-clock time and passes it into a sim API,
// a timestamp threaded through fmt.Sprintf into a metrics snapshot, a
// map-ordered slice fed to the bench JSON encoder. TimeTaint runs the
// taint engine (taint.go) over the whole module and reports every
// source-to-sink flow with its witness chain.
var TimeTaint = &ModuleAnalyzer{
	Name: "timetaint",
	Doc:  "forbid wall-clock, host-randomness, or map-order values from reaching sim state, traces, metrics, or bench JSON",
	Run:  runTimeTaint,
}

func runTimeTaint(pass *ModulePass) {
	for _, sink := range RunTaint(pass.Graph) {
		chain := sink.Chain()
		src := "host nondeterminism"
		if len(chain) > 0 {
			src = chain[0].Note
		}
		// The key is position-independent: the source kind plus the
		// sink description survive unrelated line churn.
		key := fmt.Sprintf("%s->%s", src, sink.Pos.Note)
		pass.Report(sink.Pos.Pos, key,
			fmt.Sprintf("%s reaches a determinism-sensitive sink: %s", src, sink.Pos.Note),
			chain)
	}
}
