package analysis

import (
	"fmt"
	"go/types"
)

// ParSafe checks the parallel engine's barrier discipline statically:
// code running inside a *shard context* — a noc.ShardHandler.DeliverShard
// implementation or a callback handed to ScheduleShard — executes
// concurrently with other shards between barriers, so the only shared
// locations it may write are the ones whose //m3vet:resolve annotation
// argues per-shard partitioning ("shard"). A write to anything else —
// an unresolved inventory entry, or one resolved as "owner" or
// "message" — is exactly the bug the conservative engine's act replay
// exists to prevent: the write must move behind the barrier (sc.Defer)
// or the resolution is wrong. See docs/PARALLEL.md.
//
// The pass cannot reuse the fixpoint summaries directly: ShardCtx's
// hand-off methods (Defer, Schedule, ScheduleShard, Emit) invoke their
// callback inline under a serial engine, so the call graph
// conservatively gives them edges to every compatible closure in the
// module — but under the parallel engine, the only engine where shard
// contexts run concurrently, those callbacks execute serially at the
// batch barrier. parsafe therefore walks the call graph itself,
// counting each reached function's *direct* writes and stopping at the
// hand-off methods (their own act-log writes still count; their
// callbacks do not).
var ParSafe = &ModuleAnalyzer{
	Name: "parsafe",
	Doc:  "shard-context code may only write shared state resolved as per-shard",
	Run:  runParSafe,
}

// shardContextHows are the entry-context kinds that run concurrently
// under the parallel engine.
var shardContextHows = map[string]bool{
	"noc.ShardHandler":  true,
	"sim.ScheduleShard": true,
}

func runParSafe(pass *ModulePass) {
	byKey := make(map[string]*InventoryEntry, len(pass.Inventory))
	for i := range pass.Inventory {
		byKey[pass.Inventory[i].Key] = &pass.Inventory[i]
	}
	for _, ctx := range FindEntryContexts(pass.Graph) {
		if !shardContextHows[ctx.how] {
			continue
		}
		reach := shardReachable(ctx.node)
		pos := ctx.node.Pkg.Fset.Position(ctx.node.Pos())
		for _, n := range reach.order {
			sum := pass.Summaries.ByNode[n]
			if sum == nil {
				continue
			}
			locs := make([]Loc, 0, len(sum.Writes))
			for loc, e := range sum.Writes {
				// via != nil entries arrived through a callee's summary;
				// the callee is (or will be) visited itself, and barrier
				// hand-offs must not leak through.
				if e.via == nil && simLoc(loc) {
					locs = append(locs, loc)
				}
			}
			SortLocs(locs)
			for _, loc := range locs {
				key := loc.String()
				e := byKey[key]
				if e == nil || !e.Shared || e.Resolution == "shard" {
					continue
				}
				if reach.flagged[key] {
					continue // one finding per (context, location)
				}
				reach.flagged[key] = true
				how := "has no //m3vet:resolve annotation"
				if e.Resolution != "" {
					how = fmt.Sprintf("is resolved %q", e.Resolution)
				}
				pass.Report(pos, fmt.Sprintf("%s@%s", key, ctx.node.Name()),
					fmt.Sprintf("shard context %s (%s) writes shared %s %s, which %s: defer the write to the barrier or resolve the location as \"shard\"",
						ctx.node.Name(), ctx.how, e.Kind, key, how),
					reach.chain(pass, n, loc))
			}
		}
	}
}

// shardReach is the barrier-bounded reachability set of one shard
// context: every function its inline execution can reach, with parent
// pointers for witness chains.
type shardReach struct {
	root    *FuncNode
	parent  map[*FuncNode]*FuncNode
	order   []*FuncNode
	flagged map[string]bool
}

// shardReachable walks call edges from root in deterministic (source)
// order, stopping at barrier hand-off methods: their callbacks run
// serially at the batch barrier, not inside the shard context.
func shardReachable(root *FuncNode) *shardReach {
	r := &shardReach{
		root:    root,
		parent:  map[*FuncNode]*FuncNode{root: nil},
		flagged: make(map[string]bool),
	}
	var visit func(n *FuncNode)
	visit = func(n *FuncNode) {
		r.order = append(r.order, n)
		if isBarrierHandOff(n) {
			return
		}
		for _, c := range n.Calls {
			if _, seen := r.parent[c]; !seen {
				r.parent[c] = n
				visit(c)
			}
		}
	}
	visit(root)
	return r
}

// isBarrierHandOff reports whether n is one of ShardCtx's act-recording
// methods. Their immediate-mode branches invoke the callback inline,
// but immediate mode only exists under serial engines, where no code
// runs concurrently in the first place.
func isBarrierHandOff(n *FuncNode) bool {
	if n.Obj == nil || n.Pkg.Path != simEnginePath {
		return false
	}
	recv := n.Sig.Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "ShardCtx" {
		return false
	}
	switch n.Obj.Name() {
	case "Defer", "Schedule", "ScheduleShard", "Emit":
		return true
	}
	return false
}

// chain reconstructs the witness: root calls ... calls n, n accesses
// loc.
func (r *shardReach) chain(pass *ModulePass, n *FuncNode, loc Loc) []Fact {
	var path []*FuncNode
	for cur := n; cur != nil; cur = r.parent[cur] {
		path = append(path, cur)
	}
	var facts []Fact
	for i := len(path) - 1; i > 0; i-- {
		caller, callee := path[i], path[i-1]
		facts = append(facts, Fact{
			Pos:  caller.Pkg.Fset.Position(caller.Pos()),
			Note: fmt.Sprintf("%s calls %s", caller.Name(), callee.Name()),
		})
	}
	accessPos := n.Pkg.Fset.Position(n.Pos())
	if sum := pass.Summaries.ByNode[n]; sum != nil {
		if e, ok := sum.Writes[loc]; ok && e.via == nil {
			accessPos = n.Pkg.Fset.Position(e.pos)
		}
	}
	facts = append(facts, Fact{
		Pos:  accessPos,
		Note: fmt.Sprintf("%s accesses %s", n.Name(), loc),
	})
	return facts
}
