package analysis

import (
	"go/ast"
	"go/types"
)

// NoGoroutine forbids Go concurrency outside internal/sim. The engine's
// strict hand-off (at most one goroutine — the engine or one process —
// runs at any moment) is what makes the simulation deterministic;
// a stray `go` statement or channel operation anywhere else introduces
// scheduler-dependent interleavings that no test will reliably catch.
var NoGoroutine = &Analyzer{
	Name: "nogoroutine",
	Doc:  "forbid go statements and raw channel operations outside internal/sim",
	Run:  runNoGoroutine,
}

func runNoGoroutine(pass *Pass) {
	if pass.Pkg.Path == simEnginePath {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(),
					"go statement outside internal/sim: spawn a sim.Process to keep the engine's strict hand-off")
			case *ast.SendStmt:
				pass.Reportf(n.Pos(),
					"channel send outside internal/sim: use sim.Queue or sim.Signal")
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(),
					"select statement outside internal/sim: use sim.Signal waits")
			case *ast.UnaryExpr:
				if n.Op.String() == "<-" {
					pass.Reportf(n.Pos(),
						"channel receive outside internal/sim: use sim.Queue or sim.Signal")
				}
			case *ast.RangeStmt:
				if t := info.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						pass.Reportf(n.Pos(),
							"range over channel outside internal/sim: use sim.Queue")
					}
				}
			case *ast.CallExpr:
				fun, ok := ast.Unparen(n.Fun).(*ast.Ident)
				if !ok {
					return true
				}
				if b, isBuiltin := info.Uses[fun].(*types.Builtin); isBuiltin {
					switch b.Name() {
					case "close":
						pass.Reportf(n.Pos(), "close of channel outside internal/sim")
					case "make":
						if len(n.Args) > 0 {
							if t := info.TypeOf(n.Args[0]); t != nil {
								if _, isChan := t.Underlying().(*types.Chan); isChan {
									pass.Reportf(n.Pos(), "channel creation outside internal/sim")
								}
							}
						}
					}
				}
			}
			return true
		})
	}
}
