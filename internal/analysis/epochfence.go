package analysis

import "go/ast"

// EpochFence enforces the service-restart fencing discipline inside the
// kernel: every function that calls into a service (callService) holds
// a *ServiceObj it resolved earlier, and between resolution and call
// the service may have crashed and been respawned under a new epoch. A
// call site that never consults serviceCurrent (or the object's Epoch
// field directly) would happily deliver a request to a stale
// incarnation — exactly the bug class the epoch mechanism exists to
// make impossible (docs/RECOVERY.md).
var EpochFence = &Analyzer{
	Name: "epochfence",
	Doc:  "kernel service calls must fence stale incarnations by epoch",
	Run:  runEpochFence,
}

// epochPkg is the package defining callService and the fence helpers;
// the unexported call path cannot be reached from anywhere else.
const epochPkg = "repro/internal/core"

func runEpochFence(pass *Pass) {
	if pass.Pkg.Path != epochPkg {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			switch fd.Name.Name {
			case "callService", "serviceCurrent":
				// The mechanism itself, not a user of it.
				continue
			}
			var calls []*ast.CallExpr
			fenced := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if fn := calleeFunc(info, n); fn != nil && fn.Pkg() != nil &&
						fn.Pkg().Path() == epochPkg && fn.Name() == "callService" {
						calls = append(calls, n)
					}
					if fn := calleeFunc(info, n); fn != nil && fn.Name() == "serviceCurrent" {
						fenced = true
					}
				case *ast.SelectorExpr:
					if n.Sel.Name == "Epoch" {
						fenced = true
					}
				}
				return true
			})
			if fenced {
				continue
			}
			for _, call := range calls {
				pass.Reportf(call.Pos(),
					"callService without an epoch fence: check serviceCurrent (or Epoch) before calling into a service")
			}
		}
	}
}
