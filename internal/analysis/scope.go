package analysis

import (
	"go/ast"
	"go/types"
)

// simFacing lists the packages whose code executes inside (or builds)
// the simulation. Code here must be bit-for-bit deterministic: it runs
// under the engine's strict hand-off and any dependence on host time,
// host randomness, or Go's randomized map iteration order changes the
// event schedule and corrupts every benchmark comparison.
var simFacing = map[string]bool{
	"repro/internal/sim":   true,
	"repro/internal/core":  true,
	"repro/internal/dtu":   true,
	"repro/internal/noc":   true,
	"repro/internal/m3":    true,
	"repro/internal/m3fs":  true,
	"repro/internal/mem":   true,
	"repro/internal/tile":  true,
	"repro/internal/accel": true,
	"repro/internal/fault": true,
	"repro/internal/obs":   true,
}

// simEnginePath is the only package allowed to use Go concurrency: the
// engine's strict hand-off in sim/process.go is the single legal use of
// goroutines and channels in the module.
const simEnginePath = "repro/internal/sim"

// calleeFunc resolves the function or method called by call, or nil if
// the callee is not a named function (builtin, conversion, func value).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// calleeName returns the bare name of the called function or method,
// for syntactic matching when type information offers nothing better.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
