package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// CapFlow enforces the paper's naming discipline on *values*, where the
// existing crosslayer rule enforces it on *imports*: capability
// selectors (kif.CapSel) are names in a VPE's private capability space
// and mean nothing outside it, and raw NoC node ids are hardware
// addresses that applications must never see. Neither may cross a
// layer boundary as a plain Go value — selectors travel between app
// and kernel only inside syscall messages (kif.OStream/IStream, which
// marshal them to bytes), and the kernel translates a selector to a
// concrete endpoint/node before it talks to the DTU.
//
// Three value flows are checked, all over the type-checked tree:
//
//  1. a call from one layer into another whose arguments carry a
//     selector or node id;
//  2. a call whose *result* hands a selector or node id back across a
//     boundary (a kernel API returning a CapSel to hardware, or a raw
//     NodeID into app code);
//  3. a direct write from one layer into a selector-typed field owned
//     by another layer's struct.
//
// Layers: app = m3 (libm3), workload, m3fs (services); kernel = core;
// hw = dtu, noc, mem, tile, accel. Everything else (kif, sim, obs,
// fault) is neutral glue and may carry either type — kif *is* the
// sanctioned channel.
var CapFlow = &ModuleAnalyzer{
	Name: "capflow",
	Doc:  "forbid capability selectors and raw PE ids from crossing layer boundaries outside the syscall/delegation APIs",
	Run:  runCapFlow,
}

// capLayers maps package-path prefixes to layers; packages not listed
// are neutral ("").
var capLayers = map[string]string{
	"repro/internal/m3":       "app",
	"repro/internal/workload": "app",
	"repro/internal/m3fs":     "app",
	"repro/internal/core":     "kernel",
	"repro/internal/dtu":      "hw",
	"repro/internal/noc":      "hw",
	"repro/internal/mem":      "hw",
	"repro/internal/tile":     "hw",
	"repro/internal/accel":    "hw",
}

func layerOf(path string) string {
	for prefix, layer := range capLayers {
		if underPrefix(path, prefix) {
			return layer
		}
	}
	return ""
}

// capFlowAllowed lists the sanctioned carriers, by declaring package:
// everything in kif (stream marshalling, the selector type's own
// methods) plus cmd-level wiring (the boot code in cmd/* assembles the
// machine and legitimately hands node ids around; it is not simulated
// software).
func capFlowAllowed(pkgPath string) bool {
	return pkgPath == "repro/internal/kif" || underPrefix(pkgPath, "repro/cmd")
}

// selKind classifies a type: "capability selector" for kif.CapSel (or
// a struct containing one, like kif.CapRange), "raw node id" for
// noc.NodeID, "" otherwise.
func selKind(t types.Type) string {
	return selKindDepth(t, 0)
}

func selKindDepth(t types.Type, depth int) string {
	if depth > 3 || t == nil {
		return ""
	}
	switch t := t.(type) {
	case *types.Named:
		obj := t.Obj()
		if obj != nil && obj.Pkg() != nil {
			switch {
			case obj.Pkg().Path() == "repro/internal/kif" && obj.Name() == "CapSel":
				return "capability selector"
			case obj.Pkg().Path() == "repro/internal/noc" && obj.Name() == "NodeID":
				return "raw node id"
			}
		}
		return selKindDepth(t.Underlying(), depth+1)
	case *types.Pointer:
		return selKindDepth(t.Elem(), depth+1)
	case *types.Slice:
		return selKindDepth(t.Elem(), depth+1)
	case *types.Array:
		return selKindDepth(t.Elem(), depth+1)
	case *types.Map:
		if k := selKindDepth(t.Key(), depth+1); k != "" {
			return k
		}
		return selKindDepth(t.Elem(), depth+1)
	case *types.Struct:
		// Only exported fields make a struct a carrier: an unexported
		// selector or node id field is an opaque handle the owning
		// package resolves internally — the sanctioned capability
		// pattern (the holder can pass the struct around but cannot
		// read or forge the name inside it).
		for i := 0; i < t.NumFields(); i++ {
			if !t.Field(i).Exported() {
				continue
			}
			if k := selKindDepth(t.Field(i).Type(), depth+1); k != "" {
				return k
			}
		}
	}
	return ""
}

// crossingBanned reports whether a value of the given kind may not
// travel from layer a to layer b directly.
func crossingBanned(kind, a, b string) bool {
	if a == b || a == "" || b == "" {
		return false
	}
	switch kind {
	case "capability selector":
		// Selectors are private to the app<->kernel naming contract
		// and must never appear in hardware at all; every boundary
		// crossing outside kif is banned.
		return true
	case "raw node id":
		// Node ids are legitimate currency between kernel and hardware
		// (the kernel programs DTU endpoints with them); only the app
		// layer must never touch them.
		return a == "app" || b == "app"
	}
	return false
}

func runCapFlow(pass *ModulePass) {
	for _, n := range pass.Graph.Nodes {
		// Literal nodes' bodies are nested inside their parents', which
		// this walk already covers.
		if n.Body == nil || n.Lit != nil {
			continue
		}
		callerLayer := layerOf(n.Pkg.Path)
		info := n.Pkg.Info
		fset := n.Pkg.Fset
		ast.Inspect(n.Body, func(node ast.Node) bool {
			switch node := node.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(info, node)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				calleePath := fn.Pkg().Path()
				if capFlowAllowed(calleePath) || capFlowAllowed(n.Pkg.Path) {
					return true
				}
				calleeLayer := layerOf(calleePath)
				// Arguments crossing caller -> callee.
				for i, arg := range node.Args {
					kind := selKind(info.TypeOf(arg))
					if kind == "" || !crossingBanned(kind, callerLayer, calleeLayer) {
						continue
					}
					pass.Report(fset.Position(arg.Pos()),
						fmt.Sprintf("%s->%s:%s:arg%d", callerLayer, calleeLayer, calleeKey(fn), i),
						fmt.Sprintf("%s passed from %s layer (%s) into %s layer (%s.%s): selectors and node ids cross layers only through the kif syscall/delegation APIs",
							kind, callerLayer, n.Name(), calleeLayer, calleePath, fn.Name()),
						[]Fact{
							{Pos: fset.Position(node.Pos()), Note: fmt.Sprintf("%s calls %s.%s", n.Name(), calleePath, fn.Name())},
							{Pos: fset.Position(arg.Pos()), Note: fmt.Sprintf("argument %d carries a %s", i, kind)},
						})
				}
				// Results crossing callee -> caller.
				if kind := selKind(info.TypeOf(node)); kind != "" && crossingBanned(kind, calleeLayer, callerLayer) {
					pass.Report(fset.Position(node.Pos()),
						fmt.Sprintf("%s->%s:%s:result", calleeLayer, callerLayer, calleeKey(fn)),
						fmt.Sprintf("%s returned from %s layer (%s.%s) into %s layer (%s): translate it at the boundary instead of leaking the raw value",
							kind, calleeLayer, calleePath, fn.Name(), callerLayer, n.Name()),
						[]Fact{
							{Pos: fset.Position(node.Pos()), Note: fmt.Sprintf("%s receives a %s from %s.%s", n.Name(), kind, calleePath, fn.Name())},
						})
				}
			case *ast.AssignStmt:
				// Direct writes into another layer's selector-typed
				// fields.
				for _, lhs := range node.Lhs {
					loc, ok := locOf(info, ast.Unparen(lhs))
					if !ok || !loc.Field || loc.Var.Pkg() == nil {
						continue
					}
					ownerLayer := layerOf(loc.Var.Pkg().Path())
					kind := selKind(loc.Var.Type())
					if kind == "" || capFlowAllowed(n.Pkg.Path) || !crossingBanned(kind, callerLayer, ownerLayer) {
						continue
					}
					pass.Report(fset.Position(lhs.Pos()),
						fmt.Sprintf("%s->%s:store:%s", callerLayer, ownerLayer, loc),
						fmt.Sprintf("%s stored by %s layer (%s) into %s layer field %s: selector state belongs to its own layer",
							kind, callerLayer, n.Name(), ownerLayer, loc),
						[]Fact{
							{Pos: fset.Position(lhs.Pos()), Note: fmt.Sprintf("%s writes %s", n.Name(), loc)},
						})
				}
			}
			return true
		})
	}
}

// calleeKey is the position-independent identity of a callee used in
// baseline keys.
func calleeKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}
