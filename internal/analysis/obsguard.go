package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ObsGuard enforces the structured tracer's zero-overhead contract:
// simulation-facing code may emit events or update histograms only
// inside a block guarded by Tracer.On(). With no tracer installed the
// whole observability layer must cost one predictable branch per site
// — an unguarded Emit would build an Event (and evaluate its
// arguments) on every hot-path execution, and an unguarded histogram
// update would skew the zero-overhead regression baseline. The obs
// package itself is exempt: it implements the guard.
var ObsGuard = &Analyzer{
	Name: "obsguard",
	Doc:  "structured-event and histogram calls must sit inside a Tracer.On() guard",
	Run:  runObsGuard,
}

// obsPkg is the structured observability package.
const obsPkg = "repro/internal/obs"

// obsGuarded names the obs functions that produce data and therefore
// belong under a guard. Read-side accessors (Quantile, Histograms,
// FlightDump, ...) run after the simulation and stay free. Metric
// mutations (Inc/Add/Set) are guarded for the same reason as Emit:
// with the tracer off, not even an atomic-free counter bump may run.
var obsGuarded = map[string]bool{
	"Emit":    true,
	"Hist":    true,
	"Observe": true,
	"NewSpan": true,
	"Inc":     true,
	"Add":     true,
	"Set":     true,
}

func runObsGuard(pass *Pass) {
	path := pass.Pkg.Path
	if path == obsPkg || !simFacing[path] {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		// Pass 1: the guarded ranges — bodies of if statements whose
		// condition calls Tracer.On.
		var ranges [][2]token.Pos
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			if condCallsOn(info, ifs.Cond) {
				ranges = append(ranges, [2]token.Pos{ifs.Body.Pos(), ifs.Body.End()})
			}
			return true
		})
		// Pass 2: every guarded callee must sit inside one of them.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != obsPkg || !obsGuarded[fn.Name()] {
				return true
			}
			for _, r := range ranges {
				if call.Pos() >= r[0] && call.End() <= r[1] {
					return true
				}
			}
			pass.Reportf(call.Pos(),
				"unguarded call to obs %s: wrap the site in `if tr := ...; tr.On() { ... }` so a disabled tracer costs one branch", fn.Name())
			return true
		})
	}
}

// condCallsOn reports whether the expression contains a call to the
// obs package's On method.
func condCallsOn(info *types.Info, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil &&
			fn.Pkg().Path() == obsPkg && fn.Name() == "On" {
			found = true
		}
		return true
	})
	return found
}
