package analysis

import (
	"strings"
)

// CrossLayer enforces the paper's isolation story at the import graph:
// PEs interact with the system only through their DTU, so the hardware
// tiles, the accelerators, and the workloads must never reach into the
// kernel directly, and nothing but the hardware layers may touch the
// NoC. An import edge that violates this is an architectural bug even
// if the code happens to work today.
var CrossLayer = &Analyzer{
	Name: "crosslayer",
	Doc:  "forbid imports that bypass the DTU isolation boundary",
	Run:  runCrossLayer,
}

// crossLayerBans maps an importing package prefix to the import paths
// it must not name and the reason why.
var crossLayerBans = []struct {
	from      string
	forbidden string
	why       string
}{
	{"repro/internal/tile", "repro/internal/core", "hardware tiles are configured by the kernel over the NoC, never the reverse"},
	{"repro/internal/accel", "repro/internal/core", "accelerators reach the system only through their DTU"},
	{"repro/internal/accel", "repro/internal/dtu", "accelerator logic runs behind the tile abstraction, not on raw DTUs"},
	{"repro/internal/workload", "repro/internal/core", "workloads are user programs; they talk to the kernel via syscall messages through libm3"},
	{"repro/internal/workload", "repro/internal/dtu", "workloads use the m3 gate API, not raw DTU endpoints"},
	// workload -> noc is covered by the NoC importer allowlist below.
}

// nocImporters are the only packages allowed to import the NoC model:
// the DTU (the PEs' sole interface), the tiles that instantiate the
// network, the kernel that addresses nodes when configuring remote
// endpoints, and the fault layer that arms per-link packet faults.
var nocImporters = map[string]bool{
	"repro/internal/dtu":   true,
	"repro/internal/tile":  true,
	"repro/internal/core":  true,
	"repro/internal/fault": true,
}

func runCrossLayer(pass *Pass) {
	path := pass.Pkg.Path
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			target := strings.Trim(imp.Path.Value, `"`)
			for _, ban := range crossLayerBans {
				if underPrefix(path, ban.from) && underPrefix(target, ban.forbidden) {
					pass.Reportf(imp.Pos(), "%s must not import %s: %s", path, target, ban.why)
				}
			}
			if target == "repro/internal/noc" && !nocImporters[path] && !underPrefix(path, "repro/internal/noc") {
				pass.Reportf(imp.Pos(),
					"%s must not import the NoC model: PEs interact only through their DTU", path)
			}
		}
	}
}

// underPrefix reports whether path is prefix itself or below it.
func underPrefix(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}
