package analysis

import "go/ast"

// FaultSite confines fault injection to its package: the hooks that
// arm packet faults, DTU reliability, DRAM brownouts, PE crashes, and
// the kernel's death watchdog exist so that internal/fault can turn a
// declarative plan into a deterministic schedule — a stray call from a
// workload, a service, or the kernel itself would inject faults
// outside any plan, invisibly to the (configuration, seed) replay
// contract. Each entry point may additionally be used by the layer
// that owns the modelled hardware action (the tile layer kills a
// program and clears endpoints when a PE crashes or is reset).
var FaultSite = &Analyzer{
	Name: "faultsite",
	Doc:  "fault-injection hooks may be armed only by internal/fault",
	Run:  runFaultSite,
}

// faultPkg is the single package allowed to call every fault entry
// point.
const faultPkg = "repro/internal/fault"

// faultEntryPoints maps (defining package, function name) to the extra
// package — beyond internal/fault and the defining package itself —
// allowed to call it.
var faultEntryPoints = map[[2]string]string{
	{"repro/internal/noc", "SetFaultHook"}:            "",
	{"repro/internal/dtu", "EnableFaults"}:            "",
	{"repro/internal/dtu", "ResetEndpoints"}:          "repro/internal/tile",
	{"repro/internal/mem", "SetFaultDelay"}:           "",
	{"repro/internal/tile", "Crash"}:                  "",
	{"repro/internal/sim", "Kill"}:                    "repro/internal/tile",
	{"repro/internal/core", "EnableDeathWatch"}:       "",
	{"repro/internal/core", "SetServiceCallDeadline"}: "",
}

func runFaultSite(pass *Pass) {
	path := pass.Pkg.Path
	if path == faultPkg {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			key := [2]string{fn.Pkg().Path(), fn.Name()}
			extra, guarded := faultEntryPoints[key]
			if !guarded || path == key[0] || (extra != "" && path == extra) {
				return true
			}
			pass.Reportf(call.Pos(),
				"call to %s.%s: fault-injection hooks may be armed only by %s", key[0], fn.Name(), faultPkg)
			return true
		})
	}
}
