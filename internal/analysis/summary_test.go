package analysis

import (
	"sort"
	"strings"
	"testing"
)

func summaryLocs(m map[Loc]effect) []string {
	var out []string
	for loc := range m {
		out = append(out, loc.String())
	}
	sort.Strings(out)
	return out
}

func hasLoc(m map[Loc]effect, key string) bool {
	for loc := range m {
		if loc.String() == key {
			return true
		}
	}
	return false
}

func TestSummaryDirectEffects(t *testing.T) {
	overlay := map[string]map[string]string{
		"repro/internal/a": {"a.go": `package a

var Counter int

type T struct{ n int }

func (t *T) Bump() {
	t.n++          // field write + read
	Counter += t.n // global compound write (reads too)
}
`},
	}
	g := BuildCallGraph(loadPkgs(t, overlay))
	sums := Summarize(g)
	sum := sums.ByNode[nodeByName(t, g, "repro/internal/a.(T).Bump")]
	for _, want := range []string{"repro/internal/a.T.n", "repro/internal/a.Counter"} {
		if !hasLoc(sum.Writes, want) {
			t.Errorf("Bump should write %s; writes: %v", want, summaryLocs(sum.Writes))
		}
		if !hasLoc(sum.Reads, want) {
			t.Errorf("Bump should read %s; reads: %v", want, summaryLocs(sum.Reads))
		}
	}
}

// Effects must propagate over call edges — including mutual recursion,
// which exercises fixpoint termination — and WriteChain must
// reconstruct the full caller-to-access witness.
func TestSummaryFixpointAndChain(t *testing.T) {
	overlay := map[string]map[string]string{
		"repro/internal/a": {"a.go": `package a

var Hits int

func ping(n int) {
	if n > 0 {
		pong(n - 1)
	}
}

func pong(n int) {
	Hits++
	ping(n)
}

func Top() { ping(3) }
`},
	}
	g := BuildCallGraph(loadPkgs(t, overlay))
	sums := Summarize(g)
	top := nodeByName(t, g, "repro/internal/a.Top")
	sum := sums.ByNode[top]
	if !hasLoc(sum.Writes, "repro/internal/a.Hits") {
		t.Fatalf("Top should transitively write Hits; writes: %v", summaryLocs(sum.Writes))
	}
	var loc Loc
	for l := range sum.Writes {
		if l.String() == "repro/internal/a.Hits" {
			loc = l
		}
	}
	chain := sums.WriteChain(top, loc)
	if len(chain) < 2 {
		t.Fatalf("witness chain too short: %v", chain)
	}
	last := chain[len(chain)-1].Note
	if !strings.Contains(last, "accesses repro/internal/a.Hits") {
		t.Errorf("chain should end at the direct access, got %q", last)
	}
	if !strings.Contains(chain[0].Note, "Top calls") {
		t.Errorf("chain should start at Top's call, got %q", chain[0].Note)
	}
}

// A literal's effects belong to the literal's node; the parent picks
// them up only through a call edge (immediately invoked) or a dynamic
// edge — never by textual containment.
func TestSummaryLiteralSeparation(t *testing.T) {
	overlay := map[string]map[string]string{
		"repro/internal/a": {"a.go": `package a

var N int

func Stash() func() {
	return func() { N++ }
}
`},
	}
	g := BuildCallGraph(loadPkgs(t, overlay))
	sums := Summarize(g)
	stash := sums.ByNode[nodeByName(t, g, "repro/internal/a.Stash")]
	if hasLoc(stash.Writes, "repro/internal/a.N") {
		t.Errorf("Stash never runs the literal; writes: %v", summaryLocs(stash.Writes))
	}
	lit := sums.ByNode[nodeByName(t, g, "repro/internal/a.Stash$lit@6")]
	if !hasLoc(lit.Writes, "repro/internal/a.N") {
		t.Errorf("the literal writes N; writes: %v", summaryLocs(lit.Writes))
	}
}
