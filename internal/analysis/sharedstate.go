package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// SharedState is the inventory pass behind ROADMAP item 2 (conservative
// parallel DES). An *entry context* is one place the simulator can
// start executing on behalf of a PE: a noc.Handler.Deliver
// implementation (packet delivery), a callback scheduled on the sim
// engine, or a process body spawned on it. Under today's sequential
// engine these contexts interleave but never overlap; a parallel engine
// would run them concurrently, so every location written by one entry
// context and touched by another is a synchronization obligation. This
// pass computes that set interprocedurally (call graph + effect
// summaries) and emits it both as diagnostics (baselined — the
// inventory is accepted debt, not a regression) and as the
// machine-readable `m3vet -json` inventory the parallel-DES PR will
// consume as its work-list.
var SharedState = &ModuleAnalyzer{
	Name: "sharedstate",
	Doc:  "inventory mutable state reachable from more than one PE entry context",
	Run:  runSharedState,
}

// entryContext pairs an entry-point function with how it becomes one.
type entryContext struct {
	node *FuncNode
	how  string // "noc.Handler", "noc.ShardHandler", "sim.Schedule", "sim.ScheduleShard", "sim.Spawn", "tile.Start"
}

// spawnSites maps (package path, method name) of the functions whose
// func-typed arguments become entry contexts. ScheduleShard callbacks
// are additionally *shard* contexts: they run concurrently between
// barriers under the parallel engine (the parsafe pass keys off the
// how string).
var spawnSites = map[[2]string]string{
	{"repro/internal/sim", "Schedule"}:      "sim.Schedule",
	{"repro/internal/sim", "ScheduleShard"}: "sim.ScheduleShard",
	{"repro/internal/sim", "Spawn"}:         "sim.Spawn",
	{"repro/internal/tile", "Start"}:        "tile.Start",
}

// FindEntryContexts discovers the entry contexts of the module, in
// deterministic (name) order.
func FindEntryContexts(g *CallGraph) []entryContext {
	seen := make(map[*FuncNode]bool)
	var out []entryContext
	add := func(n *FuncNode, how string) {
		if n != nil && !seen[n] {
			seen[n] = true
			out = append(out, entryContext{node: n, how: how})
		}
	}

	// 1. noc.Handler implementations: packet-delivery entry points.
	if iface := lookupInterface(g.pkgs, "repro/internal/noc", "Handler"); iface != nil {
		deliver := lookupMethod(iface, "Deliver")
		if deliver != nil {
			for _, impl := range g.implementers(iface, deliver) {
				add(impl, "noc.Handler")
			}
		}
	}

	// 1b. noc.ShardHandler implementations: sharded packet delivery,
	// running concurrently between barriers under the parallel engine.
	if iface := lookupInterface(g.pkgs, "repro/internal/noc", "ShardHandler"); iface != nil {
		deliver := lookupMethod(iface, "DeliverShard")
		if deliver != nil {
			for _, impl := range g.implementers(iface, deliver) {
				add(impl, "noc.ShardHandler")
			}
		}
	}

	// 2. Func values handed to the engine (callbacks, process bodies)
	// or to tile.PE.Start.
	for _, n := range g.Nodes {
		if n.Body == nil {
			continue
		}
		info := n.Pkg.Info
		ast.Inspect(n.Body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			how, ok := spawnSites[[2]string{fn.Pkg().Path(), fn.Name()}]
			if !ok {
				return true
			}
			for _, arg := range call.Args {
				if t := info.TypeOf(arg); t == nil {
					continue
				} else if _, isFunc := t.Underlying().(*types.Signature); !isFunc {
					continue
				}
				add(resolveFuncValue(g, info, arg), how)
			}
			return true
		})
	}

	sort.Slice(out, func(i, j int) bool { return out[i].node.Name() < out[j].node.Name() })
	return out
}

// resolveFuncValue maps a func-typed argument expression to its
// call-graph node: a literal, a named function, or a method value.
// Arbitrary func-typed variables resolve to nil (conservative loss,
// noted in docs/ANALYSIS.md).
func resolveFuncValue(g *CallGraph, info *types.Info, arg ast.Expr) *FuncNode {
	switch arg := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		return g.ByLit[arg]
	case *ast.Ident:
		if fn, ok := info.Uses[arg].(*types.Func); ok {
			return g.ByObj[fn]
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[arg]; ok && sel.Kind() == types.MethodVal {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return g.ByObj[fn]
			}
		}
		if fn, ok := info.Uses[arg.Sel].(*types.Func); ok {
			return g.ByObj[fn]
		}
	}
	return nil
}

func lookupInterface(pkgs []*Package, path, name string) *types.Interface {
	for _, pkg := range pkgs {
		if pkg.Path != path {
			continue
		}
		tn, ok := pkg.Types.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			return nil
		}
		iface, _ := tn.Type().Underlying().(*types.Interface)
		return iface
	}
	return nil
}

func lookupMethod(iface *types.Interface, name string) *types.Func {
	for i := 0; i < iface.NumMethods(); i++ {
		if m := iface.Method(i); m.Name() == name {
			return m
		}
	}
	return nil
}

// InventoryEntry is one row of the shared-state inventory.
type InventoryEntry struct {
	// Key is the stable location identity ("repro/internal/noc.Network.PacketsSent").
	Key string
	// Kind is "global" or "field".
	Kind string
	// Type is the location's Go type.
	Type string
	// Pos is the declaration site.
	Pos Fact
	// Writers and Readers are the entry contexts that may write/read
	// the location (reader lists exclude nothing — a writer usually
	// reads too). Sorted.
	Writers []string
	Readers []string
	// Shared marks locations written by one context and touched by at
	// least one other: the synchronization work-list.
	Shared bool
	// Resolution is the synchronization argument recorded by a
	// //m3vet:resolve comment on the declaration ("owner", "shard" or
	// "message" — see resolve.go), or "" while the entry is still open
	// work-list debt. Resolved entries stop producing sharedstate
	// findings; "shard" is additionally what licenses a write from a
	// shard context (the parsafe pass).
	Resolution string
	// ResolutionNote is the resolve comment's mandatory reason.
	ResolutionNote string
	// WriteWitness is one interprocedural chain from a writing entry
	// context to the mutating statement.
	WriteWitness []Fact
}

// BuildInventory computes the shared-state inventory over the module.
// Only locations declared in simulation-facing packages participate:
// host-side tooling state is invisible to the parallel engine.
func BuildInventory(g *CallGraph, sums *Summaries) []InventoryEntry {
	entries := FindEntryContexts(g)
	type access struct {
		writers []*entryContext
		readers []*entryContext
	}
	accesses := make(map[Loc]*access)
	get := func(loc Loc) *access {
		a := accesses[loc]
		if a == nil {
			a = &access{}
			accesses[loc] = a
		}
		return a
	}
	for i := range entries {
		e := &entries[i]
		sum := sums.ByNode[e.node]
		if sum == nil {
			continue
		}
		for loc := range sum.Writes {
			if simLoc(loc) {
				get(loc).writers = append(get(loc).writers, e)
			}
		}
		for loc := range sum.Reads {
			if simLoc(loc) {
				get(loc).readers = append(get(loc).readers, e)
			}
		}
	}

	locs := make([]Loc, 0, len(accesses))
	for loc := range accesses {
		locs = append(locs, loc)
	}
	SortLocs(locs)

	var out []InventoryEntry
	for _, loc := range locs {
		a := accesses[loc]
		touch := make(map[string]bool)
		for _, e := range a.writers {
			touch[e.node.Name()] = true
		}
		for _, e := range a.readers {
			touch[e.node.Name()] = true
		}
		kind := "global"
		if loc.Field {
			kind = "field"
		}
		entry := InventoryEntry{
			Key:     loc.String(),
			Kind:    kind,
			Type:    types.TypeString(loc.Var.Type(), nil),
			Pos:     Fact{Pos: positionOf(g, loc.Var), Note: "declared here"},
			Writers: contextNames(a.writers),
			Readers: contextNames(a.readers),
			Shared:  len(a.writers) > 0 && len(touch) > 1,
		}
		if len(a.writers) > 0 {
			// Witness from the first (name-sorted) writer.
			entry.WriteWitness = sums.WriteChain(a.writers[0].node, loc)
		}
		out = append(out, entry)
	}
	return out
}

// simLoc reports whether loc is declared in a simulation-facing
// package.
func simLoc(loc Loc) bool {
	return loc.Var.Pkg() != nil && simFacing[loc.Var.Pkg().Path()]
}

func contextNames(ctxs []*entryContext) []string {
	seen := make(map[string]bool)
	var names []string
	for _, c := range ctxs {
		name := c.node.Name()
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

func positionOf(g *CallGraph, v *types.Var) token.Position {
	for _, pkg := range g.pkgs {
		if pkg.Types == v.Pkg() {
			return pkg.Fset.Position(v.Pos())
		}
	}
	if len(g.pkgs) > 0 {
		return g.pkgs[0].Fset.Position(v.Pos())
	}
	return token.Position{}
}

func runSharedState(pass *ModulePass) {
	for _, entry := range pass.Inventory {
		if !entry.Shared {
			continue
		}
		// A //m3vet:resolve annotation retires the entry from the
		// work-list: the synchronization plan it demanded now exists and
		// is recorded (and, for shard resolutions, checked by parsafe).
		if entry.Resolution != "" {
			continue
		}
		writers := summarizeNames(entry.Writers)
		readers := summarizeNames(entry.Readers)
		pass.Report(entry.Pos.Pos, entry.Key,
			fmt.Sprintf("%s %s (%s) is written by entry context(s) %s and reachable from %s: needs a synchronization plan before parallel DES",
				entry.Kind, entry.Key, entry.Type, writers, readers),
			entry.WriteWitness)
	}
}

// summarizeNames keeps diagnostics readable when dozens of contexts
// touch a location.
func summarizeNames(names []string) string {
	const max = 3
	if len(names) == 0 {
		return "(none)"
	}
	if len(names) <= max {
		return strings.Join(names, ", ")
	}
	return fmt.Sprintf("%s and %d more", strings.Join(names[:max], ", "), len(names)-max)
}
