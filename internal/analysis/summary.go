package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file computes per-function *effect summaries* — which
// package-level variables and which struct fields a function may read
// or write, directly or through anything it calls — and propagates
// them over the call graph to a fixpoint.
//
// Granularity: summaries are field-sensitive but instance-insensitive.
// A write to d.eps[i].Credits is recorded as "writes field
// dtu.epState.Credits", with no attempt to distinguish which epState
// (or which DTU) — alias analysis on a simulator whose objects are
// wired together at boot would buy little precision for its cost. The
// consumers are designed for that: the shared-state inventory is a
// conservative work-list, not a proof of a race.

// Loc is one abstract mutable location: a package-level variable or a
// struct field, identified by its types object.
type Loc struct {
	// Var is the variable or field object.
	Var *types.Var
	// Field is true for struct fields, false for package-level vars.
	Field bool
}

// String returns the stable identity used in inventories and baseline
// keys: "pkg/path.VarName" or "pkg/path.Type.Field".
func (l Loc) String() string {
	v := l.Var
	pkg := ""
	if v.Pkg() != nil {
		pkg = v.Pkg().Path()
	}
	if !l.Field {
		return fmt.Sprintf("%s.%s", pkg, v.Name())
	}
	if owner := fieldOwner(v); owner != "" {
		return fmt.Sprintf("%s.%s.%s", pkg, owner, v.Name())
	}
	return fmt.Sprintf("%s.(struct).%s", pkg, v.Name())
}

// fieldOwners maps each field object of a module to the name of the
// named struct type declaring it; built lazily per module.
var fieldOwnersCache = map[*types.Var]string{}

func fieldOwner(v *types.Var) string { return fieldOwnersCache[v] }

// effect records how a location was reached from a function: directly
// at a position, or through a callee.
type effect struct {
	// pos is the access position (direct) or the call position (via).
	pos token.Pos
	// via is the callee whose summary contributed the location, nil
	// for a direct access in this function's body.
	via *FuncNode
}

// Summary is one function's transitive effect set.
type Summary struct {
	Node *FuncNode
	// Writes and Reads map each location to the first-seen effect
	// (direct access or the call edge it arrived through), which is
	// enough to reconstruct one witness chain per (function, location).
	Writes map[Loc]effect
	Reads  map[Loc]effect
}

// Summaries is the module-wide fixpoint result.
type Summaries struct {
	ByNode map[*FuncNode]*Summary
	graph  *CallGraph
}

// Summarize computes direct effects for every node and propagates them
// over call edges until nothing changes.
func Summarize(g *CallGraph) *Summaries {
	s := &Summaries{ByNode: make(map[*FuncNode]*Summary, len(g.Nodes)), graph: g}
	registerFieldOwners(g.pkgs)
	for _, n := range g.Nodes {
		s.ByNode[n] = directEffects(n)
	}
	// Fixpoint: iterate in deterministic node order. The effect sets
	// only grow and are bounded by (#locations × #functions), so this
	// terminates; on this module it converges in a handful of rounds.
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			sum := s.ByNode[n]
			for _, callee := range n.Calls {
				cs := s.ByNode[callee]
				if cs == nil {
					continue
				}
				callPos := n.Pos()
				for loc := range cs.Writes {
					if _, ok := sum.Writes[loc]; !ok {
						sum.Writes[loc] = effect{pos: callPos, via: callee}
						changed = true
					}
				}
				for loc := range cs.Reads {
					if _, ok := sum.Reads[loc]; !ok {
						sum.Reads[loc] = effect{pos: callPos, via: callee}
						changed = true
					}
				}
			}
		}
	}
	return s
}

// WriteChain reconstructs one witness chain for why fn may write loc:
// a list of "function at position" steps ending at the direct access.
func (s *Summaries) WriteChain(fn *FuncNode, loc Loc) []Fact {
	return s.chain(fn, loc, func(sum *Summary) (effect, bool) {
		e, ok := sum.Writes[loc]
		return e, ok
	})
}

func (s *Summaries) chain(fn *FuncNode, loc Loc, get func(*Summary) (effect, bool)) []Fact {
	var facts []Fact
	seen := make(map[*FuncNode]bool)
	for fn != nil && !seen[fn] {
		seen[fn] = true
		sum := s.ByNode[fn]
		if sum == nil {
			break
		}
		e, ok := get(sum)
		if !ok {
			break
		}
		pos := fn.Pkg.Fset.Position(e.pos)
		if e.via == nil {
			facts = append(facts, Fact{Pos: pos, Note: fmt.Sprintf("%s accesses %s", fn.Name(), loc)})
			return facts
		}
		facts = append(facts, Fact{Pos: pos, Note: fmt.Sprintf("%s calls %s", fn.Name(), e.via.Name())})
		fn = e.via
	}
	return facts
}

// registerFieldOwners fills the field→owning-type map for the loaded
// packages.
func registerFieldOwners(pkgs []*Package) {
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				fieldOwnersCache[st.Field(i)] = tn.Name()
			}
		}
	}
}

// directEffects walks one function body and records its immediate
// reads and writes of package-level vars and struct fields.
func directEffects(n *FuncNode) *Summary {
	sum := &Summary{Node: n, Writes: make(map[Loc]effect), Reads: make(map[Loc]effect)}
	if n.Body == nil {
		return sum
	}
	info := n.Pkg.Info
	record := func(expr ast.Expr, write bool) {
		loc, ok := locOf(info, expr)
		if !ok {
			return
		}
		set := sum.Reads
		if write {
			set = sum.Writes
		}
		if _, dup := set[loc]; !dup {
			set[loc] = effect{pos: expr.Pos()}
		}
	}
	var walk func(node ast.Node) bool
	walk = func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			// Nested literals are separate call-graph nodes with their
			// own summaries.
			if n.Lit != node {
				return false
			}
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				record(lhs, true)
				// x.f = v also *reads* x (and x.f += v reads x.f; the
				// read set is conservative either way).
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
					ast.Inspect(sel.X, walk)
				}
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					ast.Inspect(idx.X, walk)
					ast.Inspect(idx.Index, walk)
				}
			}
			if node.Tok != token.ASSIGN && node.Tok != token.DEFINE {
				// Compound assignment reads the target too.
				for _, lhs := range node.Lhs {
					record(lhs, false)
				}
			}
			for _, rhs := range node.Rhs {
				ast.Inspect(rhs, walk)
			}
			return false
		case *ast.IncDecStmt:
			record(node.X, true)
			record(node.X, false)
			if sel, ok := ast.Unparen(node.X).(*ast.SelectorExpr); ok {
				ast.Inspect(sel.X, walk)
			}
			return false
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				// Taking the address of a location lets anything
				// downstream write it; record conservatively as a
				// write (and a read).
				record(node.X, true)
				record(node.X, false)
			}
		case *ast.SelectorExpr:
			record(node, false)
			ast.Inspect(node.X, walk)
			return false
		case *ast.Ident:
			record(node, false)
		case *ast.RangeStmt:
			// `range x` reads x; the key/value are new objects.
			ast.Inspect(node.X, walk)
			if node.Body != nil {
				ast.Inspect(node.Body, walk)
			}
			return false
		}
		return true
	}
	ast.Inspect(n.Body, walk)
	return sum
}

// locOf resolves an assignable expression to an abstract location:
// package-level var, or struct field (through any number of
// selectors/indexes/stars). Locals and parameters return ok=false.
func locOf(info *types.Info, expr ast.Expr) (Loc, bool) {
	switch expr := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[expr].(*types.Var); ok && isPackageLevel(v) {
			return Loc{Var: v}, true
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[expr]; ok && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok {
				return Loc{Var: v, Field: true}, true
			}
		}
		// Package-qualified var: pkg.V
		if v, ok := info.Uses[expr.Sel].(*types.Var); ok && isPackageLevel(v) {
			return Loc{Var: v}, true
		}
	case *ast.IndexExpr:
		// m[k] = v mutates whatever m is: attribute to m's location.
		return locOf(info, expr.X)
	case *ast.StarExpr:
		return locOf(info, expr.X)
	}
	return Loc{}, false
}

// isPackageLevel reports whether v is declared at package scope.
func isPackageLevel(v *types.Var) bool {
	if v.Pkg() == nil || v.IsField() {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}

// SortLocs orders locations by their string identity.
func SortLocs(locs []Loc) {
	sort.Slice(locs, func(i, j int) bool { return locs[i].String() < locs[j].String() })
}
