package analysis

import "testing"

// m3GatesOverlay is a minimal m3 package exposing the guarded RPC
// primitives for fixture dependencies.
var m3GatesOverlay = map[string]string{"m3.go": `package m3

type SendGate struct{}

func (sg *SendGate) Call(data []byte) ([]byte, error)                  { return nil, nil }
func (sg *SendGate) CallDeadline(data []byte, d uint64) ([]byte, error) { return nil, nil }

type RecvGate struct{}

type Message struct{}

func (rg *RecvGate) Recv() *Message { return nil }
`}

func runDeadlineOn(t *testing.T, src string) []Diagnostic {
	t.Helper()
	return runOn(t, []*Analyzer{DeadlineGuard}, "repro/internal/m3fs",
		map[string]string{"f.go": src},
		map[string]map[string]string{"repro/internal/m3": m3GatesOverlay})
}

func TestDeadlineGuardFlagsUnboundedCall(t *testing.T) {
	got := runDeadlineOn(t, `package m3fs

import "repro/internal/m3"

func f(sg *m3.SendGate, rg *m3.RecvGate) {
	sg.Call(nil)
	rg.Recv()
}
`)
	checkFindings(t, got, []finding{{6, "deadlineguard"}, {7, "deadlineguard"}})
}

func TestDeadlineGuardFlagsConstantZeroDeadline(t *testing.T) {
	got := runDeadlineOn(t, `package m3fs

import "repro/internal/m3"

const noBudget = 0

func f(sg *m3.SendGate, d uint64) {
	sg.CallDeadline(nil, 0)
	sg.CallDeadline(nil, noBudget)
	sg.CallDeadline(nil, 500)
	sg.CallDeadline(nil, d)
}
`)
	// The two constant-zero sites are Call in disguise; the nonzero
	// constant and the dynamic expression pass.
	checkFindings(t, got, []finding{{8, "deadlineguard"}, {9, "deadlineguard"}})
}

func TestDeadlineGuardHonorsNoDeadlineComment(t *testing.T) {
	got := runDeadlineOn(t, `package m3fs

import "repro/internal/m3"

func f(sg *m3.SendGate, rg *m3.RecvGate) {
	//m3vet:nodeadline this wait is bounded by the caller's own budget
	sg.Call(nil)
	rg.Recv() //m3vet:nodeadline interrupt-style wait, unbounded by design
}
`)
	checkFindings(t, got, nil)
}

func TestDeadlineGuardFlagsStaleComment(t *testing.T) {
	got := runDeadlineOn(t, `package m3fs

import "repro/internal/m3"

//m3vet:nodeadline nothing on the next line is guarded
func f(sg *m3.SendGate, d uint64) ([]byte, error) {
	return sg.CallDeadline(nil, d)
}
`)
	checkFindings(t, got, []finding{{5, "deadlineguard"}})
}

func TestDeadlineGuardFlagsMalformedComment(t *testing.T) {
	got := runDeadlineOn(t, `package m3fs

import "repro/internal/m3"

func f(sg *m3.SendGate) {
	//m3vet:nodeadline
	sg.Call(nil)
}
`)
	// The reason-less comment is malformed AND suppresses nothing, so
	// the call itself is still flagged.
	checkFindings(t, got, []finding{{6, "deadlineguard"}, {7, "deadlineguard"}})
}

func TestDeadlineGuardFlagsKernelCallService(t *testing.T) {
	src := `package core

type Kernel struct{}

func (k *Kernel) callService(payload []byte) ([]byte, error) { return nil, nil }

func (k *Kernel) helperA() {
	k.callService(nil)
}

func (k *Kernel) helperB() {
	//m3vet:nodeadline callService applies servDeadline/overload config internally
	k.callService(nil)
}
`
	got := runOn(t, []*Analyzer{DeadlineGuard}, "repro/internal/core",
		map[string]string{"f.go": src}, nil)
	checkFindings(t, got, []finding{{8, "deadlineguard"}})
}
