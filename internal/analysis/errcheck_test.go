package analysis

import "testing"

// errcheckDeps are minimal stand-ins for the real kernel and DTU
// packages, so the fixtures exercise the same package-path matching the
// analyzer performs on the real tree.
var errcheckDeps = map[string]map[string]string{
	"repro/internal/kif": {"kif.go": `package kif

type Error uint64

const OK Error = 0
`},
	"repro/internal/dtu": {"dtu.go": `package dtu

type DTU struct{}

func (d *DTU) Send(data []byte) error { return nil }

func (d *DTU) Fetch() int { return 0 }
`},
	"repro/internal/core": {"core.go": `package core

import "repro/internal/kif"

type Table struct{}

func (t *Table) Install(sel uint64) (int, kif.Error) { return 0, kif.OK }

func Boot() int { return 0 }
`},
}

func TestErrCheckLiteFlagsDroppedErrors(t *testing.T) {
	src := `package m3

import (
	"repro/internal/core"
	"repro/internal/dtu"
)

func f(d *dtu.DTU, tab *core.Table) {
	d.Send(nil)
	_ = d.Send(nil)
	_, _ = tab.Install(1)
	defer d.Send(nil)
}
`
	got := runOn(t, []*Analyzer{ErrCheckLite}, "repro/internal/m3", map[string]string{"f.go": src}, errcheckDeps)
	checkFindings(t, got, []finding{
		{9, "errchecklite"},  // bare statement
		{10, "errchecklite"}, // blank assign
		{11, "errchecklite"}, // all-blank multi-assign of kif.Error
		{12, "errchecklite"}, // deferred drop
	})
}

func TestErrCheckLiteCheckedAndForeignCallsAreQuiet(t *testing.T) {
	src := `package m3

import (
	"errors"

	"repro/internal/core"
	"repro/internal/dtu"
)

func local() error { return nil }

func f(d *dtu.DTU, tab *core.Table) error {
	if err := d.Send(nil); err != nil {
		return err
	}
	n, e := tab.Install(1)
	_, _ = n, e
	d.Fetch()
	core.Boot()
	local()
	errors.New("x")
	return nil
}
`
	// Checked results, error-free APIs, and errors from packages
	// outside core/dtu (local helpers, stdlib) are out of scope.
	got := runOn(t, []*Analyzer{ErrCheckLite}, "repro/internal/m3", map[string]string{"f.go": src}, errcheckDeps)
	checkFindings(t, got, nil)
}
