package analysis

import (
	"go/ast"
	"go/constant"
	"strings"
)

// DeadlineGuard enforces the overload-control contract on blocking RPC
// primitives (docs/OVERLOAD.md): every call site of an unbounded
// service RPC — a send-gate Call, a blocking receive-gate Recv, or the
// kernel's callService helper — must either pass an explicit deadline
// (a nonzero CallDeadline argument) or carry a //m3vet:nodeadline
// comment recording *why* the site is deliberately unbounded (or, for
// callService, why its bound lives elsewhere). An RPC with neither is
// how a shed or crashed service turns into a hung caller: the deadline
// decision must be visible at the call site, not implicit.
var DeadlineGuard = &Analyzer{
	Name: "deadlineguard",
	Doc:  "blocking service RPCs must set a deadline or carry //m3vet:nodeadline",
	Run:  runDeadlineGuard,
}

// NoDeadlinePrefix introduces the suppression comment:
//
//	//m3vet:nodeadline <reason>
//
// placed on the flagged line or on the line directly above it. The
// reason is mandatory, and a comment that suppresses nothing is itself
// a diagnostic — stale annotations must not linger.
const NoDeadlinePrefix = "m3vet:nodeadline"

// deadlineEntry describes one guarded RPC primitive.
type deadlineEntry struct {
	// deadlineArg is the index of the deadline argument, or -1 when
	// the primitive takes none (and is therefore always unbounded).
	deadlineArg int
}

// deadlineEntryPoints maps (defining package, function name) to the
// guard description. callService takes no deadline parameter — the
// kernel stamps its configured service-call deadline internally — so
// each of its call sites carries an annotation saying exactly that,
// keeping the boundedness story auditable per site.
var deadlineEntryPoints = map[[2]string]deadlineEntry{
	{"repro/internal/m3", "Call"}:          {deadlineArg: -1},
	{"repro/internal/m3", "Recv"}:          {deadlineArg: -1},
	{"repro/internal/m3", "CallDeadline"}:  {deadlineArg: 1},
	{"repro/internal/core", "callService"}: {deadlineArg: -1},
}

func runDeadlineGuard(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		// Collect this file's nodeadline comments first: a comment at
		// line L claims findings on L (trailing) and L+1 (standalone
		// above the call), like //m3vet:allow.
		type slot struct {
			line int
			pos  ast.Node
			used bool
		}
		var slots []*slot
		claimed := map[int]*slot{}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, NoDeadlinePrefix) {
					continue
				}
				pos := pass.Pkg.Fset.Position(c.Pos())
				if len(strings.Fields(strings.TrimPrefix(text, NoDeadlinePrefix))) == 0 {
					pass.Reportf(c.Pos(), "malformed nodeadline comment: want //m3vet:nodeadline <reason>")
					continue
				}
				s := &slot{line: pos.Line, pos: c}
				slots = append(slots, s)
				claimed[pos.Line] = s
				claimed[pos.Line+1] = s
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			key := [2]string{fn.Pkg().Path(), fn.Name()}
			entry, guarded := deadlineEntryPoints[key]
			if !guarded {
				return true
			}
			if entry.deadlineArg >= 0 {
				// Bounded variant: fine unless the deadline argument is
				// the constant zero (which is Call in disguise).
				if entry.deadlineArg >= len(call.Args) {
					return true
				}
				tv, ok := info.Types[call.Args[entry.deadlineArg]]
				if !ok || tv.Value == nil {
					return true // dynamic deadline expression
				}
				if v, exact := constant.Uint64Val(tv.Value); !exact || v != 0 {
					return true
				}
			}
			line := pass.Pkg.Fset.Position(call.Pos()).Line
			if s := claimed[line]; s != nil {
				s.used = true
				return true
			}
			what := "without a deadline"
			if entry.deadlineArg >= 0 {
				what = "with a constant-zero deadline"
			}
			pass.Reportf(call.Pos(),
				"call to %s.%s %s: pass a deadline or annotate //m3vet:nodeadline <reason>",
				key[0], fn.Name(), what)
			return true
		})
		for _, s := range slots {
			if !s.used {
				pass.Reportf(s.pos.Pos(), "nodeadline comment suppresses nothing; remove it")
			}
		}
	}
}
