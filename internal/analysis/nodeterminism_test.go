package analysis

import "testing"

func TestNoDeterminismFlagsViolations(t *testing.T) {
	src := `package core

import (
	"math/rand"
	"time"
)

func f(m map[int]string) int {
	t := time.Now()
	_ = time.Since(t)
	for k, v := range m {
		_, _ = k, v
	}
	return rand.Int()
}
`
	got := runOn(t, []*Analyzer{NoDeterminism}, "repro/internal/core", map[string]string{"f.go": src}, nil)
	checkFindings(t, got, []finding{
		{4, "nodeterminism"},  // math/rand import
		{9, "nodeterminism"},  // time.Now
		{10, "nodeterminism"}, // time.Since
		{11, "nodeterminism"}, // map range
	})
}

func TestNoDeterminismKeyCollectIdiomIsClean(t *testing.T) {
	src := `package core

import "sort"

func keys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func slices(s []int) {
	for i, v := range s {
		_, _ = i, v
	}
}
`
	got := runOn(t, []*Analyzer{NoDeterminism}, "repro/internal/core", map[string]string{"f.go": src}, nil)
	checkFindings(t, got, nil)
}

func TestNoDeterminismIgnoresHostSidePackages(t *testing.T) {
	src := `package bench

import "time"

func wall() time.Time { return time.Now() }

func iter(m map[int]int) {
	for k := range m {
		_ = k
	}
}
`
	// The bench harness runs on the host; wall-clock use there is fine.
	got := runOn(t, []*Analyzer{NoDeterminism}, "repro/internal/bench", map[string]string{"f.go": src}, nil)
	checkFindings(t, got, nil)
}

func TestNoDeterminismValueAppendIsStillFlagged(t *testing.T) {
	src := `package core

func values(m map[string]int) []int {
	vs := make([]int, 0, len(m))
	for _, v := range m {
		vs = append(vs, v)
	}
	return vs
}
`
	// Appending values (not keys) produces a nondeterministically
	// ordered slice with no sortable handle — must be flagged.
	got := runOn(t, []*Analyzer{NoDeterminism}, "repro/internal/core", map[string]string{"f.go": src}, nil)
	checkFindings(t, got, []finding{{5, "nodeterminism"}})
}
