package analysis

import (
	"fmt"
	"strings"
)

// This file implements //m3vet:resolve comments: the mechanism that
// retires entries from the shared-state inventory (ROADMAP item 2's
// synchronization work-list) one by one as the parallel engine's
// synchronization plan lands. A resolve comment sits on (or directly
// above) the declaration of an inventoried location and records *how*
// the location is safe under the conservative parallel engine:
//
//	//m3vet:resolve sharedstate <owner|shard|message> <reason>
//
// The three resolutions match the engine's three safety arguments
// (docs/PARALLEL.md):
//
//   - owner: the location is only mutated on the engine goroutine —
//     in serial callbacks, process bodies, or barrier-replayed acts —
//     never inside a shard context.
//   - shard: the location is partitioned per shard; a shard context
//     only writes the partition it owns (its own DTU, its own
//     ShardCtx act log).
//   - message: the location lives in a pooled message or packet whose
//     ownership is handed off through the pool discipline; exactly one
//     context can reach it at a time.
//
// A resolved entry stops producing a sharedstate finding (its baseline
// key disappears on the next `make vet-baseline`), and the claim is
// *checked*: the parsafe pass flags any shard-context write to a
// shared location not resolved as "shard", so an "owner" annotation on
// something a DeliverShard path actually mutates fails CI instead of
// silently lying.
const ResolvePrefix = "m3vet:resolve"

// resolveKinds are the accepted synchronization arguments.
var resolveKinds = map[string]bool{
	"owner":   true,
	"shard":   true,
	"message": true,
}

// resolution is one parsed resolve comment.
type resolution struct {
	kind string
	note string
	pos  Fact
	used bool
}

// resolveSlot identifies one (file, line) a resolve comment applies to.
type resolveSlot struct {
	file string
	line int
}

// collectResolves parses every //m3vet:resolve comment of the given
// packages. Like //m3vet:allow, a comment claims its own line and the
// line below it (trailing comment vs standalone comment above the
// declaration). Malformed comments — wrong rule, unknown kind, missing
// reason — are diagnostics: a resolution that parses as nothing must
// not silently leave the entry unresolved.
func collectResolves(pkgs []*Package) (map[resolveSlot]*resolution, []Diagnostic) {
	resolves := make(map[resolveSlot]*resolution)
	var bad []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, ResolvePrefix) {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					fields := strings.Fields(strings.TrimPrefix(text, ResolvePrefix))
					switch {
					case len(fields) < 3:
						bad = append(bad, Diagnostic{Pos: pos, Rule: "m3vet",
							Message: "malformed resolve comment: want //m3vet:resolve sharedstate <owner|shard|message> <reason>"})
						continue
					case fields[0] != SharedState.Name:
						bad = append(bad, Diagnostic{Pos: pos, Rule: "m3vet",
							Message: fmt.Sprintf("resolve comment names rule %q; only %q entries can be resolved", fields[0], SharedState.Name)})
						continue
					case !resolveKinds[fields[1]]:
						bad = append(bad, Diagnostic{Pos: pos, Rule: "m3vet",
							Message: fmt.Sprintf("resolve comment uses unknown resolution %q (want owner, shard, or message)", fields[1])})
						continue
					}
					r := &resolution{
						kind: fields[1],
						note: strings.Join(fields[2:], " "),
						pos:  Fact{Pos: pos, Note: "resolved here"},
					}
					for _, slot := range []resolveSlot{
						{pos.Filename, pos.Line},
						{pos.Filename, pos.Line + 1},
					} {
						if prev := resolves[slot]; prev != nil && prev != r {
							bad = append(bad, Diagnostic{Pos: pos, Rule: "m3vet",
								Message: fmt.Sprintf("duplicate resolve comment for %s:%d", slot.file, slot.line)})
							continue
						}
						resolves[slot] = r
					}
				}
			}
		}
	}
	return resolves, bad
}

// applyResolutions matches resolve comments against the inventory's
// declaration sites, stamping Resolution/ResolutionNote on matched
// entries. A resolve comment that matches no inventoried location is a
// diagnostic — stale annotations (the field was renamed, the code no
// longer shares it) must be deleted, not accumulate.
func applyResolutions(pkgs []*Package, inventory []InventoryEntry) []Diagnostic {
	resolves, diags := collectResolves(pkgs)
	if len(resolves) == 0 {
		return diags
	}
	for i := range inventory {
		e := &inventory[i]
		r := resolves[resolveSlot{e.Pos.Pos.Filename, e.Pos.Pos.Line}]
		if r == nil {
			continue
		}
		e.Resolution = r.kind
		e.ResolutionNote = r.note
		r.used = true
	}
	seen := make(map[*resolution]bool)
	for _, r := range resolves {
		if r.used || seen[r] {
			continue
		}
		seen[r] = true
		diags = append(diags, Diagnostic{Pos: r.pos.Pos, Rule: "m3vet",
			Message: "resolve comment matches no inventoried shared-state declaration (stale annotation?)"})
	}
	SortDiagnostics(diags)
	return diags
}
