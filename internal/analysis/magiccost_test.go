package analysis

import "testing"

func TestMagicCostFlagsLiterals(t *testing.T) {
	src := `package mem

type Time uint64

type Eng struct{}

func (Eng) Schedule(d Time, fn func()) {}

type Proc struct{}

func (Proc) Sleep(d Time) {}

type K struct{}

func (K) compute(p Proc, n Time) {}

const costX Time = 40

func f(e Eng, p Proc, k K, n Time) {
	e.Schedule(0, nil)
	e.Schedule(25, nil)
	p.Sleep(Time(7))
	p.Sleep(costX)
	p.Sleep(n + 1)
	k.compute(p, 40)
}
`
	got := runOn(t, []*Analyzer{MagicCost}, "repro/internal/mem", map[string]string{"f.go": src}, nil)
	checkFindings(t, got, []finding{
		{21, "magiccost"}, // Schedule(25, ...); Schedule(0, ...) above is exempt
		{22, "magiccost"}, // conversion-wrapped literal Time(7)
		{25, "magiccost"}, // compute(p, 40); named costX and n+1 are exempt
	})
}

func TestMagicCostExemptsCostsFileAndHostPackages(t *testing.T) {
	pkg := `package mem

type Time uint64

type Proc struct{}

func (Proc) Sleep(d Time) {}
`
	costs := `package mem

// The cost table itself may carry literals; that is its job.
func warm(p Proc) { p.Sleep(99) }
`
	got := runOn(t, []*Analyzer{MagicCost}, "repro/internal/mem",
		map[string]string{"a.go": pkg, "costs.go": costs}, nil)
	checkFindings(t, got, nil)

	host := `package bench

type Proc struct{}

func (Proc) Sleep(d uint64) {}

func f(p Proc) { p.Sleep(500) }
`
	got = runOn(t, []*Analyzer{MagicCost}, "repro/internal/bench", map[string]string{"f.go": host}, nil)
	checkFindings(t, got, nil)
}
