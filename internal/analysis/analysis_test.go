package analysis

import (
	"fmt"
	"strings"
	"testing"
)

// runOn type-checks an in-memory fixture package (plus overlay
// dependencies) and runs the given analyzers over it.
func runOn(t *testing.T, analyzers []*Analyzer, path string, files map[string]string, deps map[string]map[string]string) []Diagnostic {
	t.Helper()
	overlay := map[string]map[string]string{path: files}
	for p, f := range deps {
		overlay[p] = f
	}
	l := NewOverlayLoader("repro", overlay)
	pkg, err := l.Load(path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	return RunAnalyzers(pkg, analyzers)
}

// finding is the (line, rule) fingerprint of one expected diagnostic.
type finding struct {
	line int
	rule string
}

func checkFindings(t *testing.T, got []Diagnostic, want []finding) {
	t.Helper()
	var gotf []finding
	for _, d := range got {
		gotf = append(gotf, finding{d.Pos.Line, d.Rule})
	}
	if fmt.Sprint(gotf) != fmt.Sprint(want) {
		t.Errorf("findings = %v, want %v\nfull diagnostics:\n%s", gotf, want, diagText(got))
	}
}

func diagText(ds []Diagnostic) string {
	var b strings.Builder
	for _, d := range ds {
		fmt.Fprintln(&b, "  ", d)
	}
	return b.String()
}

func TestAllowSuppression(t *testing.T) {
	src := `package noc

func f(m map[int]int) {
	//m3vet:allow nodeterminism the loop only sums, which is commutative
	for _, v := range m {
		_ = v
	}
	for _, v := range m { //m3vet:allow nodeterminism trailing comment form
		_ = v
	}
	for _, v := range m { // line 11: not suppressed
		_ = v
	}
}
`
	got := runOn(t, All(), "repro/internal/noc", map[string]string{"f.go": src}, nil)
	checkFindings(t, got, []finding{{11, "nodeterminism"}})
}

func TestAllowCommentValidation(t *testing.T) {
	src := `package noc

//m3vet:allow nodeterminism
var a int

//m3vet:allow nosuchrule because reasons
var b int
`
	got := runOn(t, All(), "repro/internal/noc", map[string]string{"f.go": src}, nil)
	checkFindings(t, got, []finding{{3, "m3vet"}, {6, "m3vet"}})
	if !strings.Contains(got[0].Message, "malformed") {
		t.Errorf("first diagnostic should mention malformed comment: %s", got[0].Message)
	}
	if !strings.Contains(got[1].Message, "unknown rule") {
		t.Errorf("second diagnostic should mention unknown rule: %s", got[1].Message)
	}
}

func TestDiagnosticString(t *testing.T) {
	src := `package noc

import "time"

var T = time.Now()
`
	got := runOn(t, []*Analyzer{NoDeterminism}, "repro/internal/noc", map[string]string{"f.go": src}, nil)
	if len(got) != 1 {
		t.Fatalf("got %d diagnostics, want 1:\n%s", len(got), diagText(got))
	}
	want := "f.go:5:9: nodeterminism: call to time.Now"
	if !strings.HasPrefix(got[0].String(), want) {
		t.Errorf("String() = %q, want prefix %q", got[0].String(), want)
	}
}
