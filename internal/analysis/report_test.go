package analysis

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

func TestBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "vet-baseline.json")
	diags := []Diagnostic{
		{Rule: "sharedstate", Key: "sharedstate:repro/internal/noc.Delivered"},
		{Rule: "capflow", Key: "capflow:app->hw:x:arg0"},
		{Rule: "sharedstate", Key: "sharedstate:repro/internal/noc.Delivered"}, // dup: written once
		{Rule: "nodeterminism"}, // unkeyed: never baselined
	}
	if err := WriteBaseline(path, diags); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Suppressed) != 2 {
		t.Fatalf("suppressed = %v, want 2 deduped keys", b.Suppressed)
	}
	kept, suppressed := b.Filter(diags)
	if suppressed != 3 {
		t.Errorf("suppressed %d findings, want 3 (both keyed rules, dup included)", suppressed)
	}
	if len(kept) != 1 || kept[0].Rule != "nodeterminism" {
		t.Errorf("kept = %v, want only the unkeyed syntactic finding", kept)
	}
}

func TestLoadBaselineMissingFile(t *testing.T) {
	b, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatalf("missing baseline must not error: %v", err)
	}
	kept, suppressed := b.Filter([]Diagnostic{{Rule: "capflow", Key: "capflow:x"}})
	if suppressed != 0 || len(kept) != 1 {
		t.Errorf("empty baseline should keep everything: kept=%v suppressed=%d", kept, suppressed)
	}
}

func TestBuildReportRelativizesPaths(t *testing.T) {
	root := string(filepath.Separator) + filepath.Join("mod", "root")
	diags := []Diagnostic{{
		Rule:    "timetaint",
		Key:     "timetaint:src->sink",
		Pos:     token.Position{Filename: filepath.Join(root, "internal", "x", "x.go"), Line: 3, Column: 1},
		Message: "m",
		Chain: []Fact{{
			Pos:  token.Position{Filename: filepath.Join(root, "internal", "y", "y.go"), Line: 9},
			Note: "step",
		}},
	}}
	inv := []InventoryEntry{{
		Key: "repro/internal/noc.Delivered", Kind: "global", Type: "int", Shared: true,
		Pos:     Fact{Pos: token.Position{Filename: filepath.Join(root, "internal", "noc", "noc.go"), Line: 7}},
		Writers: []string{"a", "b"},
	}}
	rep := BuildReport(root, diags, inv, 5)
	if rep.Suppressed != 5 {
		t.Errorf("suppressed = %d", rep.Suppressed)
	}
	if got := rep.Findings[0].File; got != "internal/x/x.go" {
		t.Errorf("finding file = %q, want module-relative", got)
	}
	if got := rep.Findings[0].Chain[0].File; got != "internal/y/y.go" {
		t.Errorf("chain file = %q, want module-relative", got)
	}
	if got := rep.SharedState[0].File; got != "internal/noc/noc.go" {
		t.Errorf("inventory file = %q, want module-relative", got)
	}
	// And the document must survive a JSON round trip.
	path := filepath.Join(t.TempDir(), "sub", "report.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back JSONReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Findings) != 1 || len(back.SharedState) != 1 || back.Suppressed != 5 {
		t.Errorf("round trip lost data: %+v", back)
	}
}
