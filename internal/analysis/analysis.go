// Package analysis is m3vet's static-analysis framework: a small,
// stdlib-only (go/ast, go/parser, go/types, go/token) reimplementation
// of the parts of golang.org/x/tools/go/analysis this repository needs
// to enforce its simulation invariants.
//
// The paper's evaluation rests on two properties that ordinary Go code
// review does not protect: the cycle-accurate simulation must be
// deterministic (identical configurations produce identical schedules),
// and PEs must interact only through their DTU. Each Analyzer in this
// package encodes one such invariant as a mechanical check; cmd/m3vet
// runs them all over every package of the module and fails CI on any
// diagnostic. See docs/ANALYSIS.md for the rule catalogue.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one independently testable rule.
type Analyzer struct {
	// Name is the rule identifier used in diagnostics and in
	// //m3vet:allow comments.
	Name string
	// Doc is a one-line description of the protected invariant.
	Doc string
	// Run inspects one type-checked package and reports findings on the
	// pass.
	Run func(*Pass)
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:     p.Pkg.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, printed as "file:line:col: rule: message".
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// All returns the full analyzer set in a fixed order.
func All() []*Analyzer {
	return []*Analyzer{
		NoDeterminism,
		NoGoroutine,
		ErrCheckLite,
		MagicCost,
		CrossLayer,
		FaultSite,
		EpochFence,
		ObsGuard,
		MetricName,
	}
}

// AllowPrefix introduces a suppression comment:
//
//	//m3vet:allow <rule> <reason>
//
// placed on the flagged line or on the line directly above it. The
// reason is mandatory — a suppression without a recorded justification
// is itself a diagnostic.
const AllowPrefix = "m3vet:allow"

// allowKey identifies one (file, line, rule) suppression slot.
type allowKey struct {
	file string
	line int
	rule string
}

// collectAllows parses //m3vet:allow comments of a package. It returns
// the suppression set and diagnostics for malformed or unknown-rule
// comments (those must never silently disable nothing).
func collectAllows(pkg *Package, known map[string]bool) (map[allowKey]bool, []Diagnostic) {
	allows := make(map[allowKey]bool)
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, AllowPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, AllowPrefix))
				switch {
				case len(fields) < 2:
					bad = append(bad, Diagnostic{Pos: pos, Rule: "m3vet",
						Message: "malformed allow comment: want //m3vet:allow <rule> <reason>"})
				case !known[fields[0]]:
					bad = append(bad, Diagnostic{Pos: pos, Rule: "m3vet",
						Message: fmt.Sprintf("allow comment names unknown rule %q", fields[0])})
				default:
					// Suppress on the comment's own line (trailing
					// comment) and on the next line (standalone comment
					// above the flagged statement).
					allows[allowKey{pos.Filename, pos.Line, fields[0]}] = true
					allows[allowKey{pos.Filename, pos.Line + 1, fields[0]}] = true
				}
			}
		}
	}
	return allows, bad
}

// RunAnalyzers executes the analyzers over one package and returns the
// surviving (non-suppressed) diagnostics, position-sorted.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	allows, diags := collectAllows(pkg, known)
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg}
		pass.report = func(d Diagnostic) {
			if !allows[allowKey{d.Pos.Filename, d.Pos.Line, d.Rule}] {
				diags = append(diags, d)
			}
		}
		a.Run(pass)
	}
	SortDiagnostics(diags)
	return diags
}

// SortDiagnostics orders diagnostics by file, line, column, rule.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}

// Check loads every package of the module rooted at dir and runs the
// analyzers over each. Load (parse or type) errors are returned as
// errors, not diagnostics: the module must build before it can be
// vetted.
func Check(dir string, analyzers []*Analyzer) ([]Diagnostic, error) {
	l, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	paths, err := l.ListPackages()
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", path, err)
		}
		diags = append(diags, RunAnalyzers(pkg, analyzers)...)
	}
	SortDiagnostics(diags)
	return diags, nil
}
