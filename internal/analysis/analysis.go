// Package analysis is m3vet's static-analysis framework: a small,
// stdlib-only (go/ast, go/parser, go/types, go/token) reimplementation
// of the parts of golang.org/x/tools/go/analysis this repository needs
// to enforce its simulation invariants.
//
// The paper's evaluation rests on two properties that ordinary Go code
// review does not protect: the cycle-accurate simulation must be
// deterministic (identical configurations produce identical schedules),
// and PEs must interact only through their DTU. Each Analyzer in this
// package encodes one such invariant as a mechanical check; cmd/m3vet
// runs them all over every package of the module and fails CI on any
// diagnostic. See docs/ANALYSIS.md for the rule catalogue.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one independently testable rule.
type Analyzer struct {
	// Name is the rule identifier used in diagnostics and in
	// //m3vet:allow comments.
	Name string
	// Doc is a one-line description of the protected invariant.
	Doc string
	// Run inspects one type-checked package and reports findings on the
	// pass.
	Run func(*Pass)
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:     p.Pkg.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Fact is one step of a finding's witness chain: a position and a note
// explaining what the dataflow engine concluded there ("kernel.run
// calls dtu.Send", "dtu.Send writes Network.PacketsSent").
type Fact struct {
	Pos  token.Position
	Note string
}

// Diagnostic is one finding, printed as "file:line:col: rule: message".
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string

	// Key is a stable, position-independent identity for baseline
	// suppression ("sharedstate:repro/internal/noc.Network.PacketsSent").
	// Per-package syntactic rules leave it empty; they are gated by
	// //m3vet:allow comments instead.
	Key string
	// Chain is the interprocedural witness for the finding, outermost
	// step first. Empty for syntactic rules.
	Chain []Fact
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// All returns the full analyzer set in a fixed order.
func All() []*Analyzer {
	return []*Analyzer{
		NoDeterminism,
		NoGoroutine,
		ErrCheckLite,
		MagicCost,
		CrossLayer,
		FaultSite,
		DeadlineGuard,
		EpochFence,
		ObsGuard,
		MetricName,
		SLOName,
	}
}

// ModuleAnalyzer is a whole-module rule: it sees every package at
// once, plus the call graph and effect summaries the interprocedural
// engine computed over them. The three dataflow passes (sharedstate,
// timetaint, capflow) are module analyzers; the per-package syntactic
// rules stay plain Analyzers.
type ModuleAnalyzer struct {
	// Name is the rule identifier used in diagnostics, baseline keys
	// and //m3vet:allow comments.
	Name string
	// Doc is a one-line description of the protected invariant.
	Doc string
	// Run inspects the whole module and reports findings on the pass.
	Run func(*ModulePass)
}

// ModulePass carries one module analyzer's run.
type ModulePass struct {
	Analyzer *ModuleAnalyzer
	// Pkgs are all module packages in path order.
	Pkgs []*Package
	// Graph is the conservative module call graph.
	Graph *CallGraph
	// Summaries are the fixpoint effect summaries over Graph.
	Summaries *Summaries
	// Inventory is the shared-state inventory, computed once per run.
	Inventory []InventoryEntry

	report func(Diagnostic)
}

// Report records a finding with a stable baseline key and a witness
// chain.
func (p *ModulePass) Report(pos token.Position, key, message string, chain []Fact) {
	p.report(Diagnostic{
		Pos:     pos,
		Rule:    p.Analyzer.Name,
		Message: message,
		Key:     p.Analyzer.Name + ":" + key,
		Chain:   chain,
	})
}

// AllModule returns the module-level analyzer set in a fixed order.
func AllModule() []*ModuleAnalyzer {
	return []*ModuleAnalyzer{
		SharedState,
		ParSafe,
		TimeTaint,
		CapFlow,
	}
}

// AllowPrefix introduces a suppression comment:
//
//	//m3vet:allow <rule> <reason>
//
// placed on the flagged line or on the line directly above it. The
// reason is mandatory — a suppression without a recorded justification
// is itself a diagnostic.
const AllowPrefix = "m3vet:allow"

// allowKey identifies one (file, line, rule) suppression slot.
type allowKey struct {
	file string
	line int
	rule string
}

// collectAllows parses //m3vet:allow comments of a package. It returns
// the suppression set and diagnostics for malformed or unknown-rule
// comments (those must never silently disable nothing).
func collectAllows(pkg *Package, known map[string]bool) (map[allowKey]bool, []Diagnostic) {
	allows := make(map[allowKey]bool)
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, AllowPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, AllowPrefix))
				switch {
				case len(fields) < 2:
					bad = append(bad, Diagnostic{Pos: pos, Rule: "m3vet",
						Message: "malformed allow comment: want //m3vet:allow <rule> <reason>"})
				case !known[fields[0]]:
					bad = append(bad, Diagnostic{Pos: pos, Rule: "m3vet",
						Message: fmt.Sprintf("allow comment names unknown rule %q", fields[0])})
				default:
					// Suppress on the comment's own line (trailing
					// comment) and on the next line (standalone comment
					// above the flagged statement).
					allows[allowKey{pos.Filename, pos.Line, fields[0]}] = true
					allows[allowKey{pos.Filename, pos.Line + 1, fields[0]}] = true
				}
			}
		}
	}
	return allows, bad
}

// RunAnalyzers executes the analyzers over one package and returns the
// surviving (non-suppressed) diagnostics, position-sorted.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return runAnalyzersKnown(pkg, analyzers, nil)
}

// runAnalyzersKnown is RunAnalyzers with additional rule names treated
// as known in //m3vet:allow comments (the module-level rules, which do
// not run per package but may be suppressed per line).
func runAnalyzersKnown(pkg *Package, analyzers []*Analyzer, extraKnown []string) []Diagnostic {
	known := make(map[string]bool, len(analyzers)+len(extraKnown))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, name := range extraKnown {
		known[name] = true
	}
	allows, diags := collectAllows(pkg, known)
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg}
		pass.report = func(d Diagnostic) {
			if !allows[allowKey{d.Pos.Filename, d.Pos.Line, d.Rule}] {
				diags = append(diags, d)
			}
		}
		a.Run(pass)
	}
	SortDiagnostics(diags)
	return diags
}

// SortDiagnostics orders diagnostics by file, line, column, rule.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}

// Check loads every package of the module rooted at dir and runs the
// analyzers over each. Load (parse or type) errors are returned as
// errors, not diagnostics: the module must build before it can be
// vetted.
func Check(dir string, analyzers []*Analyzer) ([]Diagnostic, error) {
	res, err := CheckModule(dir, analyzers, nil)
	if err != nil {
		return nil, err
	}
	return res.Diagnostics, nil
}

// ModuleResult is everything one m3vet run produces: the findings plus
// the shared-state inventory (ROADMAP item 2's synchronization
// work-list), which is emitted even when it produces no diagnostics.
type ModuleResult struct {
	Diagnostics []Diagnostic
	// Inventory is the shared-state inventory; nil when the
	// interprocedural engine was skipped (fast mode).
	Inventory []InventoryEntry
}

// CheckModule loads every package of the module rooted at dir, runs the
// per-package analyzers over each, then (if any module analyzers are
// given) builds the call graph and effect summaries once and runs the
// interprocedural passes. Passing no module analyzers is "fast mode":
// syntactic rules only, no fixpoint.
func CheckModule(dir string, analyzers []*Analyzer, mods []*ModuleAnalyzer) (*ModuleResult, error) {
	l, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	paths, err := l.ListPackages()
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	res, err := checkPackages(pkgs, analyzers, mods)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// checkPackages is the load-free core of CheckModule, shared with the
// overlay-fixture tests.
func checkPackages(pkgs []*Package, analyzers []*Analyzer, mods []*ModuleAnalyzer) (*ModuleResult, error) {
	// Module-rule names are always legal in //m3vet:allow comments —
	// including in fast mode, when the module passes themselves are
	// skipped — so an allow for (say) timetaint does not flip between
	// "valid" and "unknown rule" depending on how m3vet was invoked.
	extraSet := make(map[string]bool)
	var extraKnown []string
	for _, m := range AllModule() {
		extraSet[m.Name] = true
		extraKnown = append(extraKnown, m.Name)
	}
	for _, m := range mods {
		if !extraSet[m.Name] {
			extraSet[m.Name] = true
			extraKnown = append(extraKnown, m.Name)
		}
	}
	res := &ModuleResult{}
	for _, pkg := range pkgs {
		res.Diagnostics = append(res.Diagnostics, runAnalyzersKnown(pkg, analyzers, extraKnown)...)
	}
	if len(mods) > 0 {
		graph := BuildCallGraph(pkgs)
		sums := Summarize(graph)
		res.Inventory = BuildInventory(graph, sums)
		// Stamp //m3vet:resolve annotations onto the inventory before
		// the module passes run: sharedstate skips resolved entries,
		// parsafe checks shard resolutions. Malformed or stale resolve
		// comments surface as (unkeyed, unbaselineable) diagnostics.
		res.Diagnostics = append(res.Diagnostics, applyResolutions(pkgs, res.Inventory)...)
		// Line-level allow comments apply to module findings too; a
		// baseline file handles the accepted inventory wholesale.
		allKnown := make(map[string]bool)
		for _, a := range analyzers {
			allKnown[a.Name] = true
		}
		for _, name := range extraKnown {
			allKnown[name] = true
		}
		allows := make(map[allowKey]bool)
		for _, pkg := range pkgs {
			pkgAllows, _ := collectAllows(pkg, allKnown)
			for k := range pkgAllows {
				allows[k] = true
			}
		}
		for _, m := range mods {
			pass := &ModulePass{Analyzer: m, Pkgs: pkgs, Graph: graph, Summaries: sums, Inventory: res.Inventory}
			pass.report = func(d Diagnostic) {
				if !allows[allowKey{d.Pos.Filename, d.Pos.Line, d.Rule}] {
					res.Diagnostics = append(res.Diagnostics, d)
				}
			}
			m.Run(pass)
		}
	}
	SortDiagnostics(res.Diagnostics)
	return res, nil
}
