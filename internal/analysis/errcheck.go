package analysis

import (
	"go/ast"
	"go/types"
)

// ErrCheckLite flags dropped error results from the kernel and DTU
// APIs. A swallowed dtu.Send error means a syscall or service request
// silently never happened; a swallowed kif.Error from the capability
// layer means an isolation decision was ignored. Unlike a full errcheck
// this rule is scoped to the two packages whose errors are part of the
// isolation story, so it stays noise-free.
var ErrCheckLite = &Analyzer{
	Name: "errchecklite",
	Doc:  "flag dropped error returns from internal/core and internal/dtu APIs",
	Run:  runErrCheckLite,
}

// errSourcePkgs are the packages whose error returns must be consumed.
var errSourcePkgs = map[string]bool{
	"repro/internal/core": true,
	"repro/internal/dtu":  true,
}

func runErrCheckLite(pass *Pass) {
	info := pass.Pkg.Info
	check := func(call *ast.CallExpr) {
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil || !errSourcePkgs[fn.Pkg().Path()] {
			return
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return
		}
		for i := 0; i < sig.Results().Len(); i++ {
			if isErrorLike(sig.Results().At(i).Type()) {
				pass.Reportf(call.Pos(),
					"result of %s.%s carries an error; check it (assign to _ only with an //m3vet:allow reason)",
					fn.Pkg().Name(), fn.Name())
				return
			}
		}
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					check(call)
				}
				return false
			case *ast.GoStmt:
				check(n.Call)
				return false
			case *ast.DeferStmt:
				check(n.Call)
				return false
			case *ast.AssignStmt:
				// A call whose every result lands in the blank
				// identifier is as dropped as a bare statement.
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := n.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
						return true
					}
				}
				check(call)
				return false
			}
			return true
		})
	}
}

// isErrorLike reports whether t is the built-in error interface or the
// kernel interface's kif.Error status code.
func isErrorLike(t types.Type) bool {
	if types.Identical(t, types.Universe.Lookup("error").Type()) {
		return true
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "repro/internal/kif" && obj.Name() == "Error"
}
