package analysis

import "testing"

// sloOverlay is a minimal obs package exposing the SLO registration
// surface for fixture dependencies.
var sloOverlay = map[string]string{"obs.go": `package obs

type SLO struct{}

type SLOConfig struct {
	Objective float64
}

type SLOSet struct{}

func (s *SLOSet) Objective(name string, cfg SLOConfig) *SLO { return nil }
`}

func TestSLONameFlagsDynamicNames(t *testing.T) {
	src := `package bench

import (
	"fmt"

	"repro/internal/obs"
)

func f(s *obs.SLOSet, shard int) {
	s.Objective("kv_p99", obs.SLOConfig{})                       // line 10: literal
	name := "kv_avail"
	s.Objective(name, obs.SLOConfig{})                           // line 12: local
	s.Objective(fmt.Sprintf("kv_%d", shard), obs.SLOConfig{})    // line 13: computed
}
`
	got := runOn(t, []*Analyzer{SLOName}, "repro/internal/bench",
		map[string]string{"f.go": src},
		map[string]map[string]string{"repro/internal/obs": sloOverlay})
	checkFindings(t, got, []finding{
		{10, "sloname"}, {12, "sloname"}, {13, "sloname"}})
}

func TestSLONameAllowsPackageConstants(t *testing.T) {
	src := `package bench

import "repro/internal/obs"

const SLOTail = "kv_p99"

func f(s *obs.SLOSet) {
	s.Objective(SLOTail, obs.SLOConfig{Objective: 0.99})
}
`
	got := runOn(t, []*Analyzer{SLOName}, "repro/internal/bench",
		map[string]string{"f.go": src},
		map[string]map[string]string{"repro/internal/obs": sloOverlay})
	checkFindings(t, got, nil)
}

func TestSLONameIgnoresUnrelatedObjectives(t *testing.T) {
	// Same method name on a foreign type is not a registration.
	src := `package m3fs

type planner struct{}

func (p *planner) Objective(name string, weight int) int { return 0 }
func f(p *planner)                                       { p.Objective("x", 0) }
`
	got := runOn(t, []*Analyzer{SLOName}, "repro/internal/m3fs",
		map[string]string{"f.go": src}, nil)
	checkFindings(t, got, nil)
}
