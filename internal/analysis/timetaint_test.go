package analysis

import (
	"strings"
	"testing"
)

// A wall-clock value laundered through a helper function and stored
// into sim-facing state must be flagged, with a chain running
// source -> call -> store. The same helper's value kept host-side must
// not be.
func TestTimeTaintInterprocedural(t *testing.T) {
	overlay := map[string]map[string]string{
		"repro/internal/sim": {"sim.go": `package sim

var LastStamp int64
`},
		"repro/internal/toolx": {"tool.go": `package toolx

import (
	"time"

	"repro/internal/sim"
)

var hostOnly int64 // not sim-facing: storing here is fine

func stamp() int64 { return time.Now().UnixNano() }

func Record() {
	v := stamp()
	sim.LastStamp = v // flagged
	hostOnly = v      // not flagged
}
`},
	}
	res := runModuleOn(t, overlay)
	diags := diagsOf(res, "timetaint")
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 timetaint finding, got %d:\n%s", len(diags), diagText(diags))
	}
	d := diags[0]
	if !strings.Contains(d.Message, "sim.LastStamp") {
		t.Errorf("message should name the sim location: %s", d.Message)
	}
	if len(d.Chain) < 2 {
		t.Fatalf("chain too short: %v", d.Chain)
	}
	if !strings.Contains(d.Chain[0].Note, "time.Now") {
		t.Errorf("chain should start at the source: %q", d.Chain[0].Note)
	}
	if !strings.Contains(d.Key, "timetaint:") || strings.Contains(d.Key, ".go:") {
		t.Errorf("key should be rule-prefixed and position-independent: %q", d.Key)
	}
}

// Map iteration order is a source; feeding an order-dependent value to
// the JSON encoder is a sink. Collecting keys for sorting is the
// sanctioned pattern and must stay clean.
func TestTimeTaintMapOrder(t *testing.T) {
	overlay := map[string]map[string]string{
		"repro/internal/toolx": {"tool.go": `package toolx

import "encoding/json"

func Dump(m map[string]int) ([]byte, error) {
	var names []string
	for k := range m { // key-collect loop: allowed
		names = append(names, k)
	}
	var first string
	for k := range m { // order-dependent pick
		first = k
		break
	}
	_ = names
	return json.Marshal(first)
}
`},
	}
	res := runModuleOn(t, overlay)
	diags := diagsOf(res, "timetaint")
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 timetaint finding, got %d:\n%s", len(diags), diagText(diags))
	}
	if !strings.Contains(diags[0].Message, "json.Marshal") {
		t.Errorf("sink should be the JSON encoder: %s", diags[0].Message)
	}
	if !strings.Contains(diags[0].Message, "randomized order") {
		t.Errorf("source should be map order: %s", diags[0].Message)
	}
}

// Closure free variables: taint flowing into a captured local inside a
// literal must reach stores made by the enclosing function and vice
// versa.
func TestTimeTaintClosureCapture(t *testing.T) {
	overlay := map[string]map[string]string{
		"repro/internal/sim": {"sim.go": `package sim

var Seeded int64
`},
		"repro/internal/toolx": {"tool.go": `package toolx

import (
	"time"

	"repro/internal/sim"
)

func Arm() {
	var v int64
	set := func() { v = time.Now().Unix() }
	set()
	sim.Seeded = v
}
`},
	}
	res := runModuleOn(t, overlay)
	diags := diagsOf(res, "timetaint")
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 timetaint finding, got %d:\n%s", len(diags), diagText(diags))
	}
	if !strings.Contains(diags[0].Message, "sim.Seeded") {
		t.Errorf("finding should name sim.Seeded: %s", diags[0].Message)
	}
}
