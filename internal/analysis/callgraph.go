package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file builds the conservative call graph that the interprocedural
// passes (sharedstate, timetaint, capflow) walk. The graph covers every
// function and method declared in the module plus every function
// literal, and resolves four call shapes:
//
//   - direct calls to declared functions and methods (static);
//   - interface method calls: edges to every method of a module type
//     that implements the interface (types.Implements, so embedding and
//     pointer receivers are handled by the type checker, not by name
//     matching);
//   - immediately invoked function literals (static);
//   - calls through function-typed values (fields, variables,
//     parameters, method values): edges to every *address-taken*
//     function or literal with an assignable signature. A function is
//     address-taken when it is referenced outside call position —
//     passed as an argument, assigned, stored in a struct — which is
//     the only way it can become a dynamic callee.
//
// The dynamic-call rule is the usual class-hierarchy-style
// over-approximation: it never misses a possible callee inside the
// module, at the cost of edges that cannot happen at run time. The
// passes built on top are designed so that over-approximation widens
// inventories and taint, never shrinks them.

// FuncNode is one call-graph node: a declared function/method or a
// function literal.
type FuncNode struct {
	// Obj is the declared function object (nil for literals).
	Obj *types.Func
	// Lit is the literal (nil for declared functions).
	Lit *ast.FuncLit
	// Body is the function body; nil for declarations without one.
	Body *ast.BlockStmt
	// Pkg is the package the node's source lives in.
	Pkg *Package
	// Sig is the node's signature.
	Sig *types.Signature
	// Parent is the enclosing node for literals (nil for declared
	// functions): the closure's writes happen in the parent's source,
	// but its *calls* happen wherever the value ends up.
	Parent *FuncNode

	// Calls are the resolved callees, deduplicated, in first-seen
	// (source) order so every walk over the graph is deterministic.
	Calls []*FuncNode
	// calledDynamically marks address-taken nodes (possible targets of
	// calls through func values).
	calledDynamically bool

	callSet map[*FuncNode]bool
}

// Name returns a stable human-readable identifier:
// "pkg/path.Func", "pkg/path.(Type).Method", or
// "pkg/path.Parent$lit@line" for literals.
func (n *FuncNode) Name() string {
	if n.Obj != nil {
		if recv := n.Sig.Recv(); recv != nil {
			t := recv.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return fmt.Sprintf("%s.(%s).%s", n.Pkg.Path, named.Obj().Name(), n.Obj.Name())
			}
		}
		return fmt.Sprintf("%s.%s", n.Pkg.Path, n.Obj.Name())
	}
	pos := n.Pkg.Fset.Position(n.Lit.Pos())
	parent := "func"
	if n.Parent != nil {
		parent = n.Parent.Name()
	}
	return fmt.Sprintf("%s$lit@%d", parent, pos.Line)
}

// Pos returns the node's source position.
func (n *FuncNode) Pos() token.Pos {
	if n.Obj != nil {
		return n.Obj.Pos()
	}
	return n.Lit.Pos()
}

func (n *FuncNode) addCall(callee *FuncNode) {
	if callee == nil || n.callSet[callee] {
		return
	}
	if n.callSet == nil {
		n.callSet = make(map[*FuncNode]bool)
	}
	n.callSet[callee] = true
	n.Calls = append(n.Calls, callee)
}

// CallGraph is the module-wide conservative call graph.
type CallGraph struct {
	// Nodes in deterministic order: packages in path order, functions
	// in source order within each package.
	Nodes []*FuncNode
	// ByObj maps declared function objects to their nodes.
	ByObj map[*types.Func]*FuncNode
	// ByLit maps function literals to their nodes.
	ByLit map[*ast.FuncLit]*FuncNode

	pkgs     []*Package
	dynamics []dynamicCall

	// bindings maps each func-typed variable or field object to the
	// functions/literals assigned to it anywhere in the module. A call
	// through the object resolves to exactly this set — unless the
	// object is "open" (some assignment's RHS could not be resolved to
	// a node, e.g. a parameter flowing in), in which case resolution
	// falls back to every address-taken function of compatible
	// signature.
	bindings    map[types.Object][]*FuncNode
	bindingSet  map[types.Object]map[*FuncNode]bool
	openBinding map[types.Object]bool
}

// NodeFor returns the node of a declared function, or nil.
func (g *CallGraph) NodeFor(fn *types.Func) *FuncNode { return g.ByObj[fn] }

// BuildCallGraph constructs the call graph over the given packages
// (every package of the module, in path order).
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		ByObj:       make(map[*types.Func]*FuncNode),
		ByLit:       make(map[*ast.FuncLit]*FuncNode),
		pkgs:        pkgs,
		bindings:    make(map[types.Object][]*FuncNode),
		bindingSet:  make(map[types.Object]map[*FuncNode]bool),
		openBinding: make(map[types.Object]bool),
	}
	// Pass 1: create nodes for every declared function and literal.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				node := &FuncNode{
					Obj:  obj,
					Body: fd.Body,
					Pkg:  pkg,
					Sig:  obj.Type().(*types.Signature),
				}
				g.ByObj[obj] = node
				g.Nodes = append(g.Nodes, node)
				g.addLiterals(node, pkg, fd.Body)
			}
		}
		// Literals in package-level variable initializers run at init
		// time; give them nodes with no parent.
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if gd, ok := decl.(*ast.GenDecl); ok {
					g.addLiterals(nil, pkg, gd)
				}
			}
		}
	}
	// Pass 2: resolve calls and references.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					obj, _ := pkg.Info.Defs[d.Name].(*types.Func)
					if node := g.ByObj[obj]; node != nil && d.Body != nil {
						g.resolveBody(node, d.Body)
					}
				case *ast.GenDecl:
					// Initializer expressions: references are
					// address-taken (they can be called from anywhere
					// the variable flows), and literals' bodies get
					// their own call edges. Bindings (var x = fn) are
					// recorded so calls through x resolve precisely.
					ast.Inspect(d, func(n ast.Node) bool {
						switch n := n.(type) {
						case *ast.ValueSpec:
							g.recordValueSpec(pkg, n)
						case *ast.CompositeLit:
							g.recordComposite(pkg, n)
						}
						if lit, ok := n.(*ast.FuncLit); ok {
							if node := g.ByLit[lit]; node != nil {
								node.calledDynamically = true
								g.resolveBody(node, lit.Body)
							}
							return false
						}
						g.markRefs(pkg, n)
						return true
					})
				}
			}
		}
	}
	g.resolveDynamicCalls()
	return g
}

// addLiterals creates nodes for every function literal under root.
func (g *CallGraph) addLiterals(parent *FuncNode, pkg *Package, root ast.Node) {
	if root == nil {
		return
	}
	var stack []*FuncNode
	if parent != nil {
		stack = append(stack, parent)
	}
	// ast.Inspect gives enter/leave via nil; track nesting so each
	// literal's Parent is the innermost enclosing function node.
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		sig, _ := pkg.Info.TypeOf(lit).(*types.Signature)
		if sig == nil {
			return true
		}
		var p *FuncNode
		if len(stack) > 0 {
			p = stack[len(stack)-1]
		}
		node := &FuncNode{Lit: lit, Body: lit.Body, Pkg: pkg, Sig: sig, Parent: p}
		g.ByLit[lit] = node
		g.Nodes = append(g.Nodes, node)
		stack = append(stack, node)
		ast.Inspect(lit.Body, walk)
		stack = stack[:len(stack)-1]
		return false // children handled by the nested Inspect
	}
	ast.Inspect(root, walk)
}

// addBinding records that a call through obj may reach node.
func (g *CallGraph) addBinding(obj types.Object, node *FuncNode) {
	if obj == nil || node == nil {
		return
	}
	set := g.bindingSet[obj]
	if set == nil {
		set = make(map[*FuncNode]bool)
		g.bindingSet[obj] = set
	}
	if !set[node] {
		set[node] = true
		g.bindings[obj] = append(g.bindings[obj], node)
	}
}

// bindTarget resolves an assignable expression to the variable or
// field object a func value is being bound to, or nil.
func bindTarget(pkg *Package, lhs ast.Expr) types.Object {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if obj := pkg.Info.Defs[lhs]; obj != nil {
			return obj
		}
		return pkg.Info.Uses[lhs]
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[lhs]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		return pkg.Info.Uses[lhs.Sel]
	}
	return nil
}

func isFuncTyped(obj types.Object) bool {
	if obj == nil || obj.Type() == nil {
		return false
	}
	_, ok := obj.Type().Underlying().(*types.Signature)
	return ok
}

// valueNode resolves a func-valued expression to its node: a literal,
// a named function, or a method value. nil for anything else.
func (g *CallGraph) valueNode(pkg *Package, expr ast.Expr) *FuncNode {
	switch expr := ast.Unparen(expr).(type) {
	case *ast.FuncLit:
		return g.ByLit[expr]
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[expr].(*types.Func); ok {
			return g.ByObj[fn]
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[expr]; ok && sel.Kind() == types.MethodVal {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return g.ByObj[fn]
			}
		}
		if fn, ok := pkg.Info.Uses[expr.Sel].(*types.Func); ok {
			return g.ByObj[fn]
		}
	}
	return nil
}

// recordBinding processes one (target, value) pair of an assignment,
// composite literal element, or var initializer.
func (g *CallGraph) recordBinding(pkg *Package, obj types.Object, rhs ast.Expr) {
	if !isFuncTyped(obj) {
		return
	}
	if n := g.valueNode(pkg, rhs); n != nil {
		g.addBinding(obj, n)
		return
	}
	// A func-typed RHS we cannot resolve (parameter, call result,
	// other variable): the target's callee set is no longer closed.
	// nil and non-func RHS (e.g. in a mixed tuple) stay closed — nil
	// cannot be called.
	if t := pkg.Info.TypeOf(rhs); t != nil {
		if _, ok := t.Underlying().(*types.Signature); ok {
			g.openBinding[obj] = true
		}
	}
}

// recordAssign records func-value bindings made by one assignment.
func (g *CallGraph) recordAssign(pkg *Package, stmt *ast.AssignStmt) {
	if len(stmt.Lhs) == len(stmt.Rhs) {
		for i := range stmt.Lhs {
			g.recordBinding(pkg, bindTarget(pkg, stmt.Lhs[i]), stmt.Rhs[i])
		}
		return
	}
	// Tuple assignment from a call: any func-typed target may receive
	// a value we cannot see.
	for _, lhs := range stmt.Lhs {
		if obj := bindTarget(pkg, lhs); isFuncTyped(obj) {
			g.openBinding[obj] = true
		}
	}
}

// recordComposite records func-value bindings made by struct literal
// fields (keyed or positional).
func (g *CallGraph) recordComposite(pkg *Package, lit *ast.CompositeLit) {
	t := pkg.Info.TypeOf(lit)
	if t == nil {
		return
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok {
				g.recordBinding(pkg, pkg.Info.Uses[key], kv.Value)
			}
			continue
		}
		if i < st.NumFields() {
			g.recordBinding(pkg, st.Field(i), elt)
		}
	}
}

// recordValueSpec records func-value bindings made by var declarations.
func (g *CallGraph) recordValueSpec(pkg *Package, spec *ast.ValueSpec) {
	if len(spec.Names) != len(spec.Values) {
		return
	}
	for i, name := range spec.Names {
		g.recordBinding(pkg, pkg.Info.Defs[name], spec.Values[i])
	}
}

// resolveBody records static call edges and address-taken references
// for one function body. Calls made inside nested literals belong to
// the literal's node, not the enclosing function's.
func (g *CallGraph) resolveBody(node *FuncNode, body *ast.BlockStmt) {
	cur := node
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			g.recordAssign(node.Pkg, n)
		case *ast.CompositeLit:
			g.recordComposite(node.Pkg, n)
		case *ast.ValueSpec:
			g.recordValueSpec(node.Pkg, n)
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			lit := g.ByLit[n]
			if lit == nil {
				return false
			}
			// A literal reached outside call position is a value: it can
			// be stored, passed, and later called through a func
			// variable, so it is a dynamic-call candidate.
			lit.calledDynamically = true
			prev := cur
			cur = lit
			ast.Inspect(n.Body, walk)
			cur = prev
			return false
		case *ast.CallExpr:
			g.resolveCall(cur, n)
			// Walk the arguments (they may reference functions or hold
			// literals) but skip the callee expression itself: a
			// function named in call position is *called*, not
			// address-taken, and marking it would make every direct
			// callee a dynamic-call candidate.
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				// Nothing inside to walk.
			case *ast.SelectorExpr:
				ast.Inspect(fun.X, walk)
			case *ast.FuncLit:
				// Immediately invoked: the static edge is recorded by
				// resolveCall; the body's own edges belong to the
				// literal's node, which is not address-taken.
				if lit := g.ByLit[fun]; lit != nil {
					prev := cur
					cur = lit
					ast.Inspect(fun.Body, walk)
					cur = prev
				}
			default:
				ast.Inspect(n.Fun, walk)
			}
			for _, arg := range n.Args {
				ast.Inspect(arg, walk)
			}
			return false
		default:
			g.markRefs(node.Pkg, n)
		}
		return true
	}
	ast.Inspect(body, walk)
}

// resolveCall adds edges for one call expression from caller.
func (g *CallGraph) resolveCall(caller *FuncNode, call *ast.CallExpr) {
	info := caller.Pkg.Info
	fun := ast.Unparen(call.Fun)
	switch fun := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			caller.addCall(g.ByObj[obj])
			return
		case *types.Var:
			// Call through a func-typed variable: dynamic.
			caller.addCall(g.dynamicNodeFor(caller, call))
			return
		}
		// Builtin or type conversion: no edge.
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			callee, _ := sel.Obj().(*types.Func)
			if callee == nil {
				return
			}
			if types.IsInterface(sel.Recv().Underlying()) {
				// Interface dispatch: every module method implementing
				// this interface method is a possible callee.
				for _, impl := range g.implementers(sel.Recv(), callee) {
					caller.addCall(impl)
				}
				return
			}
			caller.addCall(g.ByObj[callee])
			return
		}
		// Package-qualified function, func-typed field, or conversion.
		switch obj := info.Uses[fun.Sel].(type) {
		case *types.Func:
			caller.addCall(g.ByObj[obj])
			return
		case *types.Var:
			caller.addCall(g.dynamicNodeFor(caller, call))
			return
		}
	case *ast.FuncLit:
		// Immediately invoked literal.
		caller.addCall(g.ByLit[fun])
		return
	default:
		// Call of an arbitrary expression (call result, index...):
		// dynamic.
		if _, ok := info.TypeOf(call.Fun).(*types.Signature); ok {
			caller.addCall(g.dynamicNodeFor(caller, call))
		}
	}
}

// dynamicCall is a placeholder node representing "a call through a
// func value of this signature"; resolveDynamicCalls replaces each
// placeholder's edges with the address-taken candidates.
type dynamicCall struct {
	caller *FuncNode
	sig    *types.Signature
	// target is the variable or field the call goes through, when the
	// callee expression names one; bindings recorded for it take
	// priority over the signature-matching fallback.
	target types.Object
}

func (g *CallGraph) dynamicNodeFor(caller *FuncNode, call *ast.CallExpr) *FuncNode {
	sig, _ := caller.Pkg.Info.TypeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return nil
	}
	dc := dynamicCall{caller: caller, sig: sig}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		dc.target = caller.Pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := caller.Pkg.Info.Selections[fun]; ok && sel.Kind() == types.FieldVal {
			dc.target = sel.Obj()
		} else {
			dc.target = caller.Pkg.Info.Uses[fun.Sel]
		}
	}
	g.dynamics = append(g.dynamics, dc)
	return nil
}

// markRefs marks functions referenced outside call position as
// address-taken. resolveBody routes every non-call node here, and
// resolveCall's argument walk re-enters via resolveBody's default arm,
// so `eng.Schedule(d, fn)` marks fn.
func (g *CallGraph) markRefs(pkg *Package, n ast.Node) {
	switch n := n.(type) {
	case *ast.Ident:
		if obj, ok := pkg.Info.Uses[n].(*types.Func); ok {
			if node := g.ByObj[obj]; node != nil {
				node.calledDynamically = true
			}
		}
	case *ast.FuncLit:
		if node := g.ByLit[n]; node != nil {
			node.calledDynamically = true
		}
	case *ast.SelectorExpr:
		// Method value: x.M referenced, not called.
		if sel, ok := pkg.Info.Selections[n]; ok && sel.Kind() == types.MethodVal {
			if fn, ok := sel.Obj().(*types.Func); ok {
				if node := g.ByObj[fn]; node != nil {
					node.calledDynamically = true
				}
			}
		}
	}
}

// implementers returns the module methods that implement the interface
// method m of interface type iface, in deterministic order.
func (g *CallGraph) implementers(iface types.Type, m *types.Func) []*FuncNode {
	var out []*FuncNode
	it, ok := iface.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	seen := make(map[*FuncNode]bool)
	for _, pkg := range g.pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			// Methods may be on T or *T.
			for _, typ := range []types.Type{named, types.NewPointer(named)} {
				if !types.Implements(typ, it) {
					continue
				}
				obj, _, _ := types.LookupFieldOrMethod(typ, true, m.Pkg(), m.Name())
				if fn, ok := obj.(*types.Func); ok {
					if node := g.ByObj[fn]; node != nil && !seen[node] {
						seen[node] = true
						out = append(out, node)
					}
				}
			}
		}
	}
	return out
}

// resolveDynamicCalls links every dynamic call site to its possible
// callees. A call through a variable or field whose every func-valued
// assignment was resolvable uses exactly that binding set; otherwise
// the site falls back to every address-taken function with an
// assignable signature.
func (g *CallGraph) resolveDynamicCalls() {
	var taken []*FuncNode
	for _, n := range g.Nodes {
		if n.calledDynamically {
			taken = append(taken, n)
		}
	}
	for _, dc := range g.dynamics {
		if dc.target != nil && !g.openBinding[dc.target] {
			if bound := g.bindings[dc.target]; len(bound) > 0 {
				for _, b := range bound {
					dc.caller.addCall(b)
				}
				continue
			}
		}
		for _, cand := range taken {
			if signaturesCompatible(dc.sig, cand.Sig) {
				dc.caller.addCall(cand)
			}
		}
	}
}

// signaturesCompatible reports whether a func value of signature want
// could hold a reference to a function of signature have. Receivers
// are ignored (a method value's receiver is already bound) and
// variadic shapes must agree; parameter and result types must be
// identical position by position.
func signaturesCompatible(want, have *types.Signature) bool {
	if want.Params().Len() != have.Params().Len() ||
		want.Results().Len() != have.Results().Len() ||
		want.Variadic() != have.Variadic() {
		return false
	}
	for i := 0; i < want.Params().Len(); i++ {
		if !types.Identical(want.Params().At(i).Type(), have.Params().At(i).Type()) {
			return false
		}
	}
	for i := 0; i < want.Results().Len(); i++ {
		if !types.Identical(want.Results().At(i).Type(), have.Results().At(i).Type()) {
			return false
		}
	}
	return true
}

// Reachable returns the set of nodes reachable from the given roots
// (roots included), following call edges.
func (g *CallGraph) Reachable(roots []*FuncNode) map[*FuncNode]bool {
	seen := make(map[*FuncNode]bool)
	var stack []*FuncNode
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range n.Calls {
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	return seen
}

// SortNodes orders nodes by (package path, position) for deterministic
// output.
func SortNodes(nodes []*FuncNode) {
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Pkg.Path != nodes[j].Pkg.Path {
			return nodes[i].Pkg.Path < nodes[j].Pkg.Path
		}
		return nodes[i].Pos() < nodes[j].Pos()
	})
}
