package analysis

import "testing"

// crossDeps are empty stand-in packages for the import-graph fixtures.
var crossDeps = map[string]map[string]string{
	"repro/internal/core": {"core.go": "package core\n"},
	"repro/internal/noc":  {"noc.go": "package noc\n"},
	"repro/internal/dtu":  {"dtu.go": "package dtu\n"},
}

func TestCrossLayerFlagsKernelImports(t *testing.T) {
	src := `package tile

import (
	_ "repro/internal/core"
	_ "repro/internal/noc"
)
`
	got := runOn(t, []*Analyzer{CrossLayer}, "repro/internal/tile", map[string]string{"f.go": src}, crossDeps)
	// tile may use the NoC (it instantiates the network) but must not
	// reach into the kernel.
	checkFindings(t, got, []finding{{4, "crosslayer"}})
}

func TestCrossLayerFlagsWorkloadViolations(t *testing.T) {
	src := `package workload

import (
	_ "repro/internal/core"
	_ "repro/internal/dtu"
	_ "repro/internal/noc"
)
`
	got := runOn(t, []*Analyzer{CrossLayer}, "repro/internal/workload", map[string]string{"f.go": src}, crossDeps)
	checkFindings(t, got, []finding{
		{4, "crosslayer"}, // kernel internals
		{5, "crosslayer"}, // raw DTU endpoints
		{6, "crosslayer"}, // NoC
	})
}

func TestCrossLayerFlagsNoCOutsideHardware(t *testing.T) {
	src := `package m3

import _ "repro/internal/noc"
`
	got := runOn(t, []*Analyzer{CrossLayer}, "repro/internal/m3", map[string]string{"f.go": src}, crossDeps)
	checkFindings(t, got, []finding{{3, "crosslayer"}})
}

func TestCrossLayerAllowsHardwareAndHarnessEdges(t *testing.T) {
	dtuSrc := `package dtu

import _ "repro/internal/noc"
`
	got := runOn(t, []*Analyzer{CrossLayer}, "repro/internal/dtu", map[string]string{"f.go": dtuSrc},
		map[string]map[string]string{"repro/internal/noc": crossDeps["repro/internal/noc"]})
	checkFindings(t, got, nil)

	benchSrc := `package bench

import _ "repro/internal/core"
`
	// The bench harness (like cmd/ and examples/) boots the platform
	// host-side and may hold the kernel object.
	got = runOn(t, []*Analyzer{CrossLayer}, "repro/internal/bench", map[string]string{"f.go": benchSrc},
		map[string]map[string]string{"repro/internal/core": crossDeps["repro/internal/core"]})
	checkFindings(t, got, nil)
}
