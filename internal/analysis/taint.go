package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
)

// This file is the interprocedural taint engine behind the timetaint
// pass. Sources are the host-nondeterminism leaks (wall-clock time,
// math/rand, map iteration order); the engine tracks their values
// flow-insensitively through locals, call results and module globals,
// across function boundaries via per-function summaries, and records a
// sink whenever a tainted value reaches simulation state, the obs
// layer, or bench JSON. Every sink carries a witness chain — the list
// of steps from source to sink — for `m3vet -json`.

// taintMark is one link of a taint witness chain. prev points toward
// the source, so walking prev yields the chain sink-to-source; chain()
// reverses it.
type taintMark struct {
	pos  Fact
	prev *taintMark
}

func mark(pkg *Package, at ast.Node, note string, prev *taintMark) *taintMark {
	return &taintMark{pos: Fact{Pos: pkg.Fset.Position(at.Pos()), Note: note}, prev: prev}
}

// chain returns the witness source-first.
func (m *taintMark) chain() []Fact {
	var facts []Fact
	for ; m != nil; m = m.prev {
		facts = append(facts, m.pos)
	}
	for i, j := 0, len(facts)-1; i < j; i, j = i+1, j-1 {
		facts[i], facts[j] = facts[j], facts[i]
	}
	return facts
}

// taintSummary is one function's boundary behaviour.
type taintSummary struct {
	// result is non-nil when some result value carries source taint
	// regardless of the arguments ("returns a wall-clock timestamp").
	result *taintMark
	// paramToResult marks parameters whose taint flows to a result.
	paramToResult map[int]bool
	// paramToState records parameters whose value is stored (possibly
	// transitively) into simulation-facing state.
	paramToState map[int]*taintMark
}

// TaintSink is one confirmed source-to-sink flow.
type TaintSink struct {
	Pos  Fact
	Mark *taintMark
}

// Chain returns the full witness: source first, the sink step last.
func (s TaintSink) Chain() []Fact {
	return append(s.Mark.chain(), s.Pos)
}

type taintRun struct {
	graph   *CallGraph
	sums    map[*FuncNode]*taintSummary
	globals map[Loc]*taintMark
	sinks   map[string]TaintSink // keyed by pos+note for dedup
	// dirty marks a change visible outside one function (summary,
	// global taint, new sink); only those drive the module fixpoint,
	// because local taint is recomputed from scratch on every visit.
	dirty bool
}

// RunTaint executes the taint fixpoint over the module call graph and
// returns the sinks in deterministic order.
func RunTaint(g *CallGraph) []TaintSink {
	t := &taintRun{
		graph:   g,
		sums:    make(map[*FuncNode]*taintSummary, len(g.Nodes)),
		globals: make(map[Loc]*taintMark),
		sinks:   make(map[string]TaintSink),
	}
	for _, n := range g.Nodes {
		t.sums[n] = &taintSummary{paramToResult: map[int]bool{}, paramToState: map[int]*taintMark{}}
	}
	// Summaries, global taint and the sink set only grow, so this
	// terminates.
	for {
		t.dirty = false
		for _, n := range g.Nodes {
			t.analyze(n)
		}
		if !t.dirty {
			break
		}
	}
	keys := make([]string, 0, len(t.sinks))
	for k := range t.sinks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]TaintSink, 0, len(keys))
	for _, k := range keys {
		out = append(out, t.sinks[k])
	}
	return out
}

// funcState is the per-function working set of one analyze call.
type funcState struct {
	run  *taintRun
	node *FuncNode
	// cur is the node whose summary return statements feed: node
	// itself, or a nested literal's node while walking its body (the
	// literal shares the parent's locals, which is how closure
	// free-variable taint flows).
	cur *FuncNode
	// taint maps local objects (and parameters) to source taint.
	taint map[types.Object]*taintMark
	// fromParam maps local objects to the parameter indices whose
	// values may have reached them.
	fromParam map[types.Object]map[int]bool
	// paramIdx maps this node's parameter objects to their position.
	paramIdx map[types.Object]int
	// localChanged drives the within-function fixpoint only.
	localChanged bool
}

// analyze recomputes one function's summary contribution. Top-level
// declared functions walk their nested literals in the same funcState
// (shared locals); literal nodes are skipped here because their parent
// covers them.
func (t *taintRun) analyze(n *FuncNode) {
	if n.Body == nil || n.Lit != nil {
		return
	}
	fs := &funcState{
		run:       t,
		node:      n,
		cur:       n,
		taint:     make(map[types.Object]*taintMark),
		fromParam: make(map[types.Object]map[int]bool),
		paramIdx:  make(map[types.Object]int),
	}
	params := n.Sig.Params()
	for i := 0; i < params.Len(); i++ {
		fs.paramIdx[params.At(i)] = i
	}
	// Local fixpoint: the body may propagate taint backwards through
	// loops; re-walk until the local sets stop growing. The maps grow
	// monotonically, so this terminates.
	for {
		fs.localChanged = false
		fs.walkBody(n.Body)
		if !fs.localChanged {
			break
		}
	}
}

func (fs *funcState) walkBody(body *ast.BlockStmt) {
	var walk func(node ast.Node) bool
	walk = func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			// Walk the literal's body in this same state: its free
			// variables are our locals. Returns inside it feed the
			// literal's own summary.
			litNode := fs.run.graph.ByLit[node]
			if litNode == nil {
				return false
			}
			prev := fs.cur
			fs.cur = litNode
			ast.Inspect(node.Body, walk)
			fs.cur = prev
			return false
		case *ast.AssignStmt:
			fs.assign(node)
			return false
		case *ast.RangeStmt:
			fs.rangeStmt(node)
			return true
		case *ast.ReturnStmt:
			fs.returnStmt(node)
			return false
		case *ast.CallExpr:
			fs.evalExpr(node) // statement-position call: still check sinks
			return false
		}
		return true
	}
	ast.Inspect(body, walk)
}

// setTaint attaches source taint to a local object.
func (fs *funcState) setTaint(obj types.Object, m *taintMark) {
	if obj == nil || m == nil {
		return
	}
	if _, ok := fs.taint[obj]; !ok {
		fs.taint[obj] = m
		fs.localChanged = true
	}
}

func (fs *funcState) setFromParam(obj types.Object, params map[int]bool) {
	if obj == nil || len(params) == 0 {
		return
	}
	set := fs.fromParam[obj]
	if set == nil {
		set = make(map[int]bool)
		fs.fromParam[obj] = set
	}
	for i := range params {
		if !set[i] {
			set[i] = true
			fs.localChanged = true
		}
	}
}

func (fs *funcState) setGlobal(loc Loc, m *taintMark) {
	if m == nil {
		return
	}
	if _, ok := fs.run.globals[loc]; !ok {
		fs.run.globals[loc] = m
		fs.localChanged = true
		fs.run.dirty = true
	}
}

func (fs *funcState) sink(at ast.Node, note string, m *taintMark) {
	if m == nil {
		return
	}
	pos := fs.node.Pkg.Fset.Position(at.Pos())
	key := fmt.Sprintf("%s:%d:%d|%s", pos.Filename, pos.Line, pos.Column, note)
	if _, ok := fs.run.sinks[key]; !ok {
		fs.run.sinks[key] = TaintSink{Pos: Fact{Pos: pos, Note: note}, Mark: m}
		fs.run.dirty = true
	}
}

// assign handles one assignment (including := and compound forms).
func (fs *funcState) assign(stmt *ast.AssignStmt) {
	// Evaluate the full RHS: any tainted operand taints every LHS
	// (tuple assignments from calls are not split per-result).
	var m *taintMark
	params := make(map[int]bool)
	for _, rhs := range stmt.Rhs {
		rm, rp := fs.evalExpr(rhs)
		m = firstMark(m, rm)
		for i := range rp {
			params[i] = true
		}
	}
	for _, lhs := range stmt.Lhs {
		fs.store(lhs, m, params)
		// The LHS may itself contain reads (index expressions, field
		// chains); evaluate them for their side effects.
		if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
			fs.evalExpr(sel.X)
		}
		if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			fs.evalExpr(idx.X)
			fs.evalExpr(idx.Index)
		}
	}
}

// store routes taint into whatever lhs names.
func (fs *funcState) store(lhs ast.Expr, m *taintMark, params map[int]bool) {
	if m == nil && len(params) == 0 {
		return
	}
	lhs = ast.Unparen(lhs)
	info := fs.node.Pkg.Info
	// A package-level var or struct field?
	if loc, ok := locOf(info, lhs); ok {
		fs.storeLoc(lhs, loc, m, params)
		return
	}
	// A local or parameter.
	if id, ok := lhs.(*ast.Ident); ok {
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		fs.setTaint(obj, m)
		fs.setFromParam(obj, params)
		return
	}
	// x.f or x[i] where x is a local: taint the base object.
	switch lhs := lhs.(type) {
	case *ast.SelectorExpr:
		fs.store(lhs.X, m, params)
	case *ast.IndexExpr:
		fs.store(lhs.X, m, params)
	case *ast.StarExpr:
		fs.store(lhs.X, m, params)
	}
}

// storeLoc handles a write of tainted data into an abstract location.
// Writes into simulation-facing state are sinks (for source taint) and
// paramToState facts (for parameter taint).
func (fs *funcState) storeLoc(at ast.Expr, loc Loc, m *taintMark, params map[int]bool) {
	simState := loc.Var.Pkg() != nil && simFacing[loc.Var.Pkg().Path()]
	if m != nil {
		fs.setGlobal(loc, m)
		if simState {
			fs.sink(at, fmt.Sprintf("stored into simulation state %s", loc), m)
		}
	}
	if simState && len(params) > 0 {
		sum := fs.run.sums[fs.node]
		for i := range params {
			if sum.paramToState[i] == nil {
				sum.paramToState[i] = mark(fs.node.Pkg, at,
					fmt.Sprintf("%s stores its argument into simulation state %s", fs.node.Name(), loc), nil)
				fs.run.dirty = true
			}
		}
	}
}

// rangeStmt seeds map-iteration-order taint on the key/value variables
// and forwards taint of the ranged expression.
func (fs *funcState) rangeStmt(stmt *ast.RangeStmt) {
	info := fs.node.Pkg.Info
	xm, xp := fs.evalExpr(stmt.X)
	t := info.TypeOf(stmt.X)
	isMap := false
	if t != nil {
		_, isMap = t.Underlying().(*types.Map)
	}
	for _, e := range []ast.Expr{stmt.Key, stmt.Value} {
		id, ok := e.(*ast.Ident)
		if !ok {
			continue
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if isMap && !isKeyCollectLoop(stmt) {
			fs.setTaint(obj, mark(fs.node.Pkg, stmt,
				fmt.Sprintf("iteration over map %s (randomized order)", types.TypeString(t, nil)), nil))
		}
		fs.setTaint(obj, xm)
		fs.setFromParam(obj, xp)
	}
}

// returnStmt folds result taint into the current node's summary (the
// enclosing function, or the literal being walked).
func (fs *funcState) returnStmt(stmt *ast.ReturnStmt) {
	sum := fs.run.sums[fs.cur]
	for _, res := range stmt.Results {
		m, params := fs.evalExpr(res)
		if m != nil && sum.result == nil {
			sum.result = m
			fs.run.dirty = true
		}
		// Parameter indices are the *enclosing declared function's*;
		// recording them on a literal's summary would misalign with the
		// literal's own parameters, so only the top-level node takes
		// param flow facts.
		if fs.cur == fs.node {
			for i := range params {
				if !sum.paramToResult[i] {
					sum.paramToResult[i] = true
					fs.run.dirty = true
				}
			}
		}
	}
}

// evalExpr computes the taint of one expression: the source-taint mark
// (nil if none) and the set of parameter indices whose values may flow
// into it. Side effects: sink checks on calls.
func (fs *funcState) evalExpr(expr ast.Expr) (*taintMark, map[int]bool) {
	if expr == nil {
		return nil, nil
	}
	info := fs.node.Pkg.Info
	switch expr := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj := info.Uses[expr]
		if obj == nil {
			obj = info.Defs[expr]
		}
		var params map[int]bool
		if i, ok := fs.paramIdx[obj]; ok {
			params = map[int]bool{i: true}
		}
		if set := fs.fromParam[obj]; set != nil {
			params = unionParams(params, set)
		}
		if m := fs.taint[obj]; m != nil {
			return m, params
		}
		if v, ok := obj.(*types.Var); ok && isPackageLevel(v) {
			return fs.run.globals[Loc{Var: v}], params
		}
		return nil, params
	case *ast.SelectorExpr:
		if loc, ok := locOf(info, expr); ok {
			if m := fs.run.globals[loc]; m != nil {
				return m, nil
			}
		}
		return fs.evalExpr(expr.X)
	case *ast.CallExpr:
		return fs.evalCall(expr)
	case *ast.StarExpr:
		return fs.evalExpr(expr.X)
	case *ast.UnaryExpr:
		return fs.evalExpr(expr.X)
	case *ast.BinaryExpr:
		lm, lp := fs.evalExpr(expr.X)
		rm, rp := fs.evalExpr(expr.Y)
		return firstMark(lm, rm), unionParams(lp, rp)
	case *ast.IndexExpr:
		bm, bp := fs.evalExpr(expr.X)
		im, ip := fs.evalExpr(expr.Index)
		return firstMark(bm, im), unionParams(bp, ip)
	case *ast.SliceExpr:
		return fs.evalExpr(expr.X)
	case *ast.TypeAssertExpr:
		return fs.evalExpr(expr.X)
	case *ast.CompositeLit:
		var m *taintMark
		var params map[int]bool
		for _, elt := range expr.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			em, ep := fs.evalExpr(elt)
			m = firstMark(m, em)
			params = unionParams(params, ep)
		}
		return m, params
	case *ast.FuncLit:
		// A literal in expression position (assignment RHS, argument)
		// still has a body that can capture — and taint — our locals;
		// walk it in this state, with returns feeding the literal's own
		// summary. The value itself carries no taint.
		if litNode := fs.run.graph.ByLit[expr]; litNode != nil {
			prev := fs.cur
			fs.cur = litNode
			fs.walkBody(expr.Body)
			fs.cur = prev
		}
		return nil, nil
	}
	return nil, nil
}

// evalCall handles sources, summaries, unknown callees and sinks.
func (fs *funcState) evalCall(call *ast.CallExpr) (*taintMark, map[int]bool) {
	info := fs.node.Pkg.Info
	pkg := fs.node.Pkg

	// Evaluate arguments (and the receiver expression, if any).
	var argMarks []*taintMark
	var anyArg *taintMark
	var params map[int]bool
	for _, arg := range call.Args {
		am, ap := fs.evalExpr(arg)
		argMarks = append(argMarks, am)
		anyArg = firstMark(anyArg, am)
		params = unionParams(params, ap)
	}
	var recvMark *taintMark
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			recvMark, _ = fs.evalExpr(sel.X)
		}
	}

	fn := calleeFunc(info, call)

	// Sources.
	if fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "time":
			if timeFuncs[fn.Name()] {
				return mark(pkg, call, fmt.Sprintf("wall-clock value from time.%s", fn.Name()), nil), params
			}
		case "math/rand", "math/rand/v2":
			return mark(pkg, call, fmt.Sprintf("host randomness from %s.%s", fn.Pkg().Path(), fn.Name()), nil), params
		}
	}

	// Sinks by callee package: the obs layer (metrics, traces, bench
	// snapshots) and JSON encoding (bench output files).
	if fn != nil && fn.Pkg() != nil {
		sinkNote := ""
		switch fn.Pkg().Path() {
		case "repro/internal/obs":
			sinkNote = fmt.Sprintf("passed to obs.%s (metrics/trace output)", fn.Name())
		case "encoding/json":
			sinkNote = fmt.Sprintf("encoded via json.%s (bench/trace JSON)", fn.Name())
		}
		if sinkNote != "" {
			fs.sink(call, sinkNote, firstMark(anyArg, recvMark))
		}
	}

	// Module callee: consult its summary.
	if fn != nil {
		if callee := fs.run.graph.ByObj[fn]; callee != nil {
			sum := fs.run.sums[callee]
			var m *taintMark
			if sum.result != nil {
				m = mark(pkg, call, fmt.Sprintf("result of %s", callee.Name()), sum.result)
			}
			forwards := len(sum.paramToResult) > 0
			for i, am := range argMarks {
				if am == nil {
					continue
				}
				if sum.paramToResult[i] {
					m = firstMark(m, mark(pkg, call, fmt.Sprintf("flows through %s", callee.Name()), am))
				}
				if ps := sum.paramToState[i]; ps != nil {
					fs.sink(call, ps.pos.Note, am)
				}
			}
			// Our own parameters' values survive through a forwarding
			// callee.
			var outParams map[int]bool
			if forwards {
				outParams = params
			}
			return m, outParams
		}
		// Known function outside the module (stdlib): conservative
		// arg-to-result propagation (fmt.Sprintf of a timestamp is
		// still a timestamp).
		var m *taintMark
		if src := firstMark(anyArg, recvMark); src != nil && hasResults(info, call) {
			m = mark(pkg, call, fmt.Sprintf("through call to %s.%s", pkgPathOf(fn), fn.Name()), src)
		}
		return m, params
	}

	// Dynamic call or conversion: propagate argument taint.
	var m *taintMark
	if src := firstMark(anyArg, recvMark); src != nil {
		m = mark(pkg, call, "through call through function value", src)
	}
	return m, params
}

func hasResults(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		return tuple.Len() > 0
	}
	return true
}

func pkgPathOf(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

func firstMark(a, b *taintMark) *taintMark {
	if a != nil {
		return a
	}
	return b
}

func unionParams(a, b map[int]bool) map[int]bool {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make(map[int]bool, len(a)+len(b))
	for i := range a {
		out[i] = true
	}
	for i := range b {
		out[i] = true
	}
	return out
}
