package analysis

import (
	"sort"
	"strings"
	"testing"
)

// loadPkgs type-checks every overlay package, in path order, and
// returns them ready for BuildCallGraph/checkPackages.
func loadPkgs(t *testing.T, overlay map[string]map[string]string) []*Package {
	t.Helper()
	l := NewOverlayLoader("repro", overlay)
	paths := make([]string, 0, len(overlay))
	for p := range overlay {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", p, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs
}

func nodeByName(t *testing.T, g *CallGraph, name string) *FuncNode {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Name() == name {
			return n
		}
	}
	var names []string
	for _, n := range g.Nodes {
		names = append(names, n.Name())
	}
	t.Fatalf("no node %q; have:\n  %s", name, strings.Join(names, "\n  "))
	return nil
}

func calleeNames(n *FuncNode) []string {
	var out []string
	for _, c := range n.Calls {
		out = append(out, c.Name())
	}
	return out
}

func hasCallee(n *FuncNode, name string) bool {
	for _, c := range n.Calls {
		if c.Name() == name {
			return true
		}
	}
	return false
}

func TestCallGraphStaticAndMethods(t *testing.T) {
	overlay := map[string]map[string]string{
		"repro/internal/a": {"a.go": `package a

type T struct{}

func (t *T) M() { helper() }

func helper() {}

func Top() {
	t := &T{}
	t.M()
}
`},
	}
	g := BuildCallGraph(loadPkgs(t, overlay))
	top := nodeByName(t, g, "repro/internal/a.Top")
	if !hasCallee(top, "repro/internal/a.(T).M") {
		t.Errorf("Top should call (T).M; calls: %v", calleeNames(top))
	}
	m := nodeByName(t, g, "repro/internal/a.(T).M")
	if !hasCallee(m, "repro/internal/a.helper") {
		t.Errorf("(T).M should call helper; calls: %v", calleeNames(m))
	}
}

// An interface call must edge to every module implementation — found
// through the type checker, so pointer receivers work.
func TestCallGraphInterfaceDispatch(t *testing.T) {
	overlay := map[string]map[string]string{
		"repro/internal/a": {"a.go": `package a

type Runner interface{ Run() }

func Drive(r Runner) { r.Run() }
`},
		"repro/internal/b": {"b.go": `package b

type Fast struct{}

func (Fast) Run() {}

type Slow struct{}

func (s *Slow) Run() {}
`},
	}
	g := BuildCallGraph(loadPkgs(t, overlay))
	drive := nodeByName(t, g, "repro/internal/a.Drive")
	for _, want := range []string{"repro/internal/b.(Fast).Run", "repro/internal/b.(Slow).Run"} {
		if !hasCallee(drive, want) {
			t.Errorf("Drive should dispatch to %s; calls: %v", want, calleeNames(drive))
		}
	}
}

// A call through a func value must edge to every address-taken
// function of a compatible signature — including method values — but
// not to functions only ever named in call position.
func TestCallGraphDynamicAndMethodValues(t *testing.T) {
	overlay := map[string]map[string]string{
		"repro/internal/a": {"a.go": `package a

type T struct{}

func (t *T) Tick() {}

func free() {}

func onlyCalledDirectly() {}

func Invoke(fn func()) { fn() }

func Wire(t *T) {
	Invoke(t.Tick) // method value: address-taken
	Invoke(free)   // named function: address-taken
	onlyCalledDirectly()
}
`},
	}
	g := BuildCallGraph(loadPkgs(t, overlay))
	invoke := nodeByName(t, g, "repro/internal/a.Invoke")
	for _, want := range []string{"repro/internal/a.(T).Tick", "repro/internal/a.free"} {
		if !hasCallee(invoke, want) {
			t.Errorf("Invoke should resolve dynamically to %s; calls: %v", want, calleeNames(invoke))
		}
	}
	if hasCallee(invoke, "repro/internal/a.onlyCalledDirectly") {
		t.Errorf("Invoke must not target a function never referenced outside call position; calls: %v",
			calleeNames(invoke))
	}
}

// Function literals get their own nodes: an immediately invoked
// literal is a static edge, a stored one resolves dynamically, and a
// nested literal's parent is the innermost enclosing function.
func TestCallGraphClosures(t *testing.T) {
	overlay := map[string]map[string]string{
		"repro/internal/a": {"a.go": `package a

func Invoke(fn func()) { fn() }

func Outer() {
	func() { // immediately invoked
		Invoke(func() {}) // nested, stored
	}()
}
`},
	}
	g := BuildCallGraph(loadPkgs(t, overlay))
	outer := nodeByName(t, g, "repro/internal/a.Outer")
	lit := nodeByName(t, g, "repro/internal/a.Outer$lit@6")
	if !hasCallee(outer, lit.Name()) {
		t.Errorf("Outer should call its immediately invoked literal; calls: %v", calleeNames(outer))
	}
	nested := nodeByName(t, g, "repro/internal/a.Outer$lit@6$lit@7")
	if nested.Parent != lit {
		t.Errorf("nested literal's parent = %v, want the outer literal", nested.Parent)
	}
	invoke := nodeByName(t, g, "repro/internal/a.Invoke")
	if !hasCallee(invoke, nested.Name()) {
		t.Errorf("Invoke should resolve dynamically to the stored literal; calls: %v", calleeNames(invoke))
	}
}

// A call through a variable or field whose assignments are all visible
// resolves to exactly the bound functions, not to every address-taken
// function of the same shape. A parameter (no visible binding) still
// falls back to signature matching.
func TestCallGraphBindingResolution(t *testing.T) {
	overlay := map[string]map[string]string{
		"repro/internal/a": {"a.go": `package a

type Cfg struct{ Hook func() }

func bound()   {}
func decoy()   {}
func escape(f func()) { _ = f }

func UseField() {
	c := Cfg{Hook: bound}
	c.Hook()
}

func UseLocal() {
	f := bound
	f()
	escape(decoy) // decoy is address-taken, same signature
}

func UseParam(f func()) {
	f() // no binding: signature fallback
}
`},
	}
	g := BuildCallGraph(loadPkgs(t, overlay))
	field := nodeByName(t, g, "repro/internal/a.UseField")
	if !hasCallee(field, "repro/internal/a.bound") || hasCallee(field, "repro/internal/a.decoy") {
		t.Errorf("field call should resolve to bound only; calls: %v", calleeNames(field))
	}
	local := nodeByName(t, g, "repro/internal/a.UseLocal")
	if !hasCallee(local, "repro/internal/a.bound") || hasCallee(local, "repro/internal/a.decoy") {
		t.Errorf("local call should resolve to bound only; calls: %v", calleeNames(local))
	}
	param := nodeByName(t, g, "repro/internal/a.UseParam")
	for _, want := range []string{"repro/internal/a.bound", "repro/internal/a.decoy"} {
		if !hasCallee(param, want) {
			t.Errorf("param call should fall back to %s; calls: %v", want, calleeNames(param))
		}
	}
}

// A binding set is abandoned ("open") when any assignment's RHS is a
// func value the analysis cannot resolve.
func TestCallGraphOpenBinding(t *testing.T) {
	overlay := map[string]map[string]string{
		"repro/internal/a": {"a.go": `package a

var hook func()

func bound() {}
func other() {}

func Install(f func()) { hook = f } // unresolvable RHS: hook is open

func Setup() { hook = bound }

func Fire() { hook() }
`},
	}
	g := BuildCallGraph(loadPkgs(t, overlay))
	fire := nodeByName(t, g, "repro/internal/a.Fire")
	// Only bound and the Install parameter flow into hook; the open
	// fallback must include every address-taken compatible function —
	// which here is just bound (other is never referenced).
	if !hasCallee(fire, "repro/internal/a.bound") {
		t.Errorf("Fire should reach bound via fallback; calls: %v", calleeNames(fire))
	}
	if hasCallee(fire, "repro/internal/a.other") {
		t.Errorf("other is never address-taken; calls: %v", calleeNames(fire))
	}
}
