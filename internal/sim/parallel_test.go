package sim

import (
	"fmt"
	"testing"
)

// pingRun drives a synthetic sharded workload — messages hopping
// between per-shard counters with deferred logging and cross-traffic —
// and returns everything observable: the final per-shard state, the
// ordered effect log, the trace stream, the executed-event count, and
// the final time. Every engine configuration must produce identical
// results.
func pingRun(t *testing.T, cfg Config, shards, hops int) (state []uint64, log []string, trace []string, executed uint64, end Time) {
	t.Helper()
	e := NewEngineWith(cfg)
	e.SetTracer(func(at Time, source, event string) {
		trace = append(trace, fmt.Sprintf("%d %s %s", at, source, event))
	})
	state = make([]uint64, shards)
	var hop func(sc *ShardCtx, origin, left int)
	hop = func(sc *ShardCtx, origin, left int) {
		s := sc.Shard()
		// Shard-owned write: legal without the context.
		state[s] = state[s]*31 + uint64(origin) + uint64(sc.Now())
		sc.Emit(fmt.Sprintf("shard%d", s), fmt.Sprintf("hop o=%d left=%d", origin, left))
		sc.Defer(func() { log = append(log, fmt.Sprintf("%d: s%d o%d l%d", sc.Now(), s, origin, left)) })
		if left == 0 {
			return
		}
		next := (s + origin + 1) % shards
		// Vary the delay so batches mix same-cycle ties, serial events,
		// and cross-cycle traffic.
		delay := Time((origin + left) % 3)
		sc.ScheduleShard(next, delay, func(nsc *ShardCtx) { hop(nsc, origin, left-1) })
		if left%4 == 0 {
			// Interleave a serial event: it must observe all earlier
			// sharded effects and be observed by later ones.
			sc.Schedule(delay, func() { log = append(log, fmt.Sprintf("%d: serial o%d l%d", e.Now(), origin, left)) })
		}
	}
	for o := 0; o < shards; o++ {
		o := o
		e.ScheduleShard(o, Time(o%2), func(sc *ShardCtx) { hop(sc, o, hops) })
	}
	end = e.Run()
	return state, log, trace, e.ExecutedEvents(), end
}

// TestParallelMatchesSerial runs the synthetic sharded workload under
// the serial engine and parallel engines with 2, 4, and 8 workers (and
// both queue kinds) and requires identical observable behaviour.
func TestParallelMatchesSerial(t *testing.T) {
	const shards, hops = 8, 40
	refState, refLog, refTrace, refExec, refEnd := pingRun(t, Config{}, shards, hops)
	if refExec == 0 || len(refLog) == 0 || len(refTrace) == 0 {
		t.Fatal("reference run observed nothing; workload broken")
	}
	for _, cfg := range []Config{
		{Queue: QueueHeap},
		{Workers: 2},
		{Workers: 4},
		{Workers: 8},
		{Queue: QueueHeap, Workers: 4},
	} {
		state, log, trace, exec, end := pingRun(t, cfg, shards, hops)
		if exec != refExec || end != refEnd {
			t.Fatalf("cfg %+v: executed/end = %d/%d, want %d/%d", cfg, exec, end, refExec, refEnd)
		}
		for i := range refState {
			if state[i] != refState[i] {
				t.Fatalf("cfg %+v: shard %d state = %d, want %d", cfg, i, state[i], refState[i])
			}
		}
		for i := range refLog {
			if log[i] != refLog[i] {
				t.Fatalf("cfg %+v: log[%d] = %q, want %q", cfg, i, log[i], refLog[i])
			}
		}
		if len(log) != len(refLog) {
			t.Fatalf("cfg %+v: log length %d, want %d", cfg, len(log), len(refLog))
		}
		for i := range refTrace {
			if trace[i] != refTrace[i] {
				t.Fatalf("cfg %+v: trace[%d] = %q, want %q", cfg, i, trace[i], refTrace[i])
			}
		}
		if len(trace) != len(refTrace) {
			t.Fatalf("cfg %+v: trace length %d, want %d", cfg, len(trace), len(refTrace))
		}
	}
}

// TestParallelDeterminism: the same parallel configuration must be
// deterministic run-to-run (worker scheduling must never leak into
// observable order).
func TestParallelDeterminism(t *testing.T) {
	_, ref, _, _, _ := pingRun(t, Config{Workers: 4}, 8, 60)
	for run := 0; run < 5; run++ {
		_, log, _, _, _ := pingRun(t, Config{Workers: 4}, 8, 60)
		if len(log) != len(ref) {
			t.Fatalf("run %d: log length %d, want %d", run, len(log), len(ref))
		}
		for i := range ref {
			if log[i] != ref[i] {
				t.Fatalf("run %d: log[%d] = %q, want %q", run, i, log[i], ref[i])
			}
		}
	}
}

// TestScheduleFromShardPanics: a sharded callback calling the engine's
// Schedule directly under a parallel engine is a data race on the
// event queue; the engine must turn it into a named panic.
func TestScheduleFromShardPanics(t *testing.T) {
	e := NewEngineWith(Config{Workers: 2})
	// Two shards at the same cycle force a real parallel batch.
	e.ScheduleShard(0, 0, func(sc *ShardCtx) {})
	e.ScheduleShard(1, 0, func(sc *ShardCtx) {
		e.Schedule(1, func() {})
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic for Schedule from shard context")
		}
		if s, ok := r.(string); !ok || s != "sim: Schedule from a parallel shard context; use ShardCtx.Schedule/ScheduleShard/Defer" {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	e.Run()
}

// TestShardPanicReplay: a panic on a worker must surface from Run with
// the original value, after the panicking event's earlier effects are
// applied, deterministically across runs.
func TestShardPanicReplay(t *testing.T) {
	for run := 0; run < 3; run++ {
		e := NewEngineWith(Config{Workers: 4})
		var log []string
		for s := 0; s < 4; s++ {
			s := s
			e.ScheduleShard(s, 0, func(sc *ShardCtx) {
				sc.Defer(func() { log = append(log, fmt.Sprintf("s%d", s)) })
				if s == 2 {
					panic("boom-2")
				}
			})
		}
		func() {
			defer func() {
				if r := recover(); r != "boom-2" {
					t.Fatalf("run %d: panic = %v, want boom-2", run, r)
				}
			}()
			e.Run()
		}()
		// Replay order is batch order: shards 0 and 1 replay before the
		// panic re-raises; shard 2's own defer applies first; shard 3
		// never replays.
		want := []string{"s0", "s1", "s2"}
		if len(log) != len(want) {
			t.Fatalf("run %d: log = %v, want %v", run, log, want)
		}
		for i := range want {
			if log[i] != want[i] {
				t.Fatalf("run %d: log = %v, want %v", run, log, want)
			}
		}
	}
}

// TestSerialShardCtxIsImmediate: under a serial engine, ShardCtx
// effects apply inline — Defer runs before the callback returns.
func TestSerialShardCtxIsImmediate(t *testing.T) {
	e := NewEngine()
	ran := false
	e.ScheduleShard(3, 5, func(sc *ShardCtx) {
		if sc.Shard() != 3 {
			t.Fatalf("Shard() = %d, want 3", sc.Shard())
		}
		if sc.Now() != 5 {
			t.Fatalf("Now() = %d, want 5", sc.Now())
		}
		sc.Defer(func() { ran = true })
		if !ran {
			t.Fatal("serial Defer must run immediately")
		}
	})
	e.Run()
	if !ran {
		t.Fatal("sharded callback never ran")
	}
}

// TestRunUntilStopsWorkers: RunUntil must tear the worker pool down on
// exit so an idle engine holds no goroutines, and a later RunUntil must
// transparently restart it.
func TestRunUntilStopsWorkers(t *testing.T) {
	e := NewEngineWith(Config{Workers: 4})
	tick := func(sc *ShardCtx) {}
	for s := 0; s < 4; s++ {
		e.ScheduleShard(s, 10, tick)
		e.ScheduleShard(s, 30, tick)
	}
	e.RunUntil(20)
	if e.pool != nil {
		t.Fatal("worker pool must stop when RunUntil returns")
	}
	if e.ExecutedEvents() != 4 {
		t.Fatalf("executed = %d, want 4", e.ExecutedEvents())
	}
	e.RunUntil(40)
	if e.pool != nil {
		t.Fatal("worker pool must stop after the second RunUntil too")
	}
	if e.ExecutedEvents() != 8 {
		t.Fatalf("executed = %d, want 8", e.ExecutedEvents())
	}
}

// TestEventPoolHygiene: released events must carry no stale callback,
// shard tag, or sequence number back out of the freelist.
func TestEventPoolHygiene(t *testing.T) {
	e := NewEngine()
	e.Schedule(1, func() {})
	e.ScheduleShard(2, 2, func(sc *ShardCtx) {})
	e.Run()
	seenFree := 0
	for ev := e.free; ev != nil; ev = ev.next {
		seenFree++
		if ev.fn != nil || ev.sfn != nil || ev.shard != 0 || ev.at != 0 || ev.seq != 0 {
			t.Fatalf("freelist event not zeroed: %+v", ev)
		}
	}
	if seenFree == 0 {
		t.Fatal("expected recycled events on the freelist")
	}
	// Contexts too: recorded acts must be dropped so closures are not
	// pinned.
	for _, sc := range e.freeCtx {
		if sc.eng != nil || sc.panicked != nil || len(sc.acts) != 0 {
			t.Fatalf("freelist ShardCtx not cleaned: %+v", sc)
		}
	}
}
