package sim

import "testing"

// The stream and the stateless hash must agree on the splitmix64
// finalizer: Uint64 after one step equals mixing the advanced state
// directly. This pins the refactor that introduced mix64.
func TestRandMatchesFinalizer(t *testing.T) {
	var seed uint64 = 0xdeadbeefcafef00d
	r := NewRand(seed)
	got := r.Uint64()
	want := mix64(seed + 0x9e3779b97f4a7c15)
	if got != want {
		t.Fatalf("Uint64 = %#x, finalizer gives %#x", got, want)
	}
}

func TestHashStateless(t *testing.T) {
	a := Hash(1, 2, 3)
	b := Hash(1, 2, 3)
	if a != b {
		t.Fatalf("Hash not deterministic: %#x vs %#x", a, b)
	}
	// Word order matters (a hop from->to is not to->from).
	if Hash(1, 2, 3) == Hash(1, 3, 2) {
		t.Fatal("Hash ignores word order")
	}
	// Distinct inputs must decorrelate; a handful of collisions over a
	// small grid would mean the fold is broken, not bad luck.
	seen := make(map[uint64]bool)
	for from := uint64(0); from < 16; from++ {
		for to := uint64(0); to < 16; to++ {
			for seq := uint64(0); seq < 8; seq++ {
				h := Hash(0x1234, from, to, seq)
				if seen[h] {
					t.Fatalf("collision at (%d,%d,%d)", from, to, seq)
				}
				seen[h] = true
			}
		}
	}
}

func TestUnitRange(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		v := Unit(r.Uint64())
		if v < 0 || v >= 1 {
			t.Fatalf("Unit out of [0,1): %v", v)
		}
	}
	if Unit(0) != 0 {
		t.Fatalf("Unit(0) = %v", Unit(0))
	}
}
