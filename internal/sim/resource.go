package sim

import "fmt"

// Resource is a counting semaphore with FIFO admission, used to model
// contended hardware: a DRAM port, a NoC link, a DTU transfer engine.
// Acquire blocks until the requested units are available; requests are
// granted strictly in arrival order (no overtaking), which models a
// fair hardware arbiter.
type Resource struct {
	eng      *Engine
	capacity int
	//m3vet:resolve sharedstate owner arbiter state changes in Acquire/Release, which run in process context
	inUse int
	//m3vet:resolve sharedstate owner arbiter state changes in Acquire/Release, which run in process context
	waiters []resWaiter

	// busyCycles accumulates capacity-weighted busy time for
	// utilisation statistics.
	//m3vet:resolve sharedstate owner statistics accumulate alongside the arbiter state, process context only
	busyCycles Time
	//m3vet:resolve sharedstate owner statistics accumulate alongside the arbiter state, process context only
	lastChange Time
	//m3vet:resolve sharedstate owner statistics accumulate alongside the arbiter state, process context only
	totalGrants uint64
	//m3vet:resolve sharedstate owner statistics accumulate alongside the arbiter state, process context only
	totalWaitFor Time
}

type resWaiter struct {
	p     *Process
	n     int
	since Time
}

// NewResource returns a resource with the given capacity (units).
func NewResource(eng *Engine, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{eng: eng, capacity: capacity}
}

// Acquire blocks p until n units are available and then takes them.
// n must not exceed the capacity.
func (r *Resource) Acquire(p *Process, n int) {
	if n > r.capacity {
		panic(fmt.Sprintf("sim: acquire %d exceeds capacity %d", n, r.capacity))
	}
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.grant(n, 0)
		return
	}
	r.waiters = append(r.waiters, resWaiter{p: p, n: n, since: r.eng.now})
	p.park()
}

// Release returns n units and admits as many FIFO waiters as now fit.
func (r *Resource) Release(n int) {
	r.accumulate()
	r.inUse -= n
	if r.inUse < 0 {
		panic("sim: resource released more than acquired")
	}
	for len(r.waiters) > 0 {
		w := r.waiters[0]
		if w.p.dead {
			// The waiter was killed (PE crash) while queued; it must
			// not consume capacity the survivors need.
			r.waiters = r.waiters[1:]
			continue
		}
		if r.inUse+w.n > r.capacity {
			break // strict FIFO: nobody overtakes the head waiter
		}
		r.waiters = r.waiters[1:]
		r.grant(w.n, r.eng.now-w.since)
		wp, wn := w.p, w.n
		r.eng.Schedule(0, func() {
			if wp.dead {
				// Killed between grant and wake-up: return the units,
				// which also re-runs admission for later waiters.
				r.Release(wn)
				return
			}
			r.eng.resume(wp)
		})
	}
}

func (r *Resource) grant(n int, waited Time) {
	r.accumulate()
	r.inUse += n
	r.totalGrants++
	r.totalWaitFor += waited
}

func (r *Resource) accumulate() {
	r.busyCycles += Time(r.inUse) * (r.eng.now - r.lastChange)
	r.lastChange = r.eng.now
}

// InUse returns the units currently held.
func (r *Resource) InUse() int { return r.inUse }

// Capacity returns the total units of the resource.
func (r *Resource) Capacity() int { return r.capacity }

// QueueLen returns the number of blocked acquirers.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Utilization returns average held units divided by capacity over the
// simulation so far.
func (r *Resource) Utilization() float64 {
	r.accumulate()
	if r.eng.now == 0 {
		return 0
	}
	return float64(r.busyCycles) / (float64(r.capacity) * float64(r.eng.now))
}

// AvgWait returns the mean cycles an acquirer spent queued before its
// grant.
func (r *Resource) AvgWait() float64 {
	if r.totalGrants == 0 {
		return 0
	}
	return float64(r.totalWaitFor) / float64(r.totalGrants)
}
