package sim

import "container/heap"

// calendarQueue is an O(1)-amortized calendar queue specialized for a
// cycle-granular DES: a timing wheel of one-cycle buckets for the near
// future plus an overflow heap for events beyond the wheel's horizon.
//
// Why a one-cycle bucket width removes all sorting: the engine assigns
// sequence numbers monotonically at Schedule time, and an event is only
// ever scheduled at or after the current time — so for any single
// future cycle, events arrive in ascending seq order. With exactly one
// cycle per bucket, plain append and front-to-back drain IS (at, seq)
// order; no comparisons ever happen on the hot path. The overflow heap
// only sees far-future events (retry timeouts, deadlines), which are
// rare relative to the hop-latency traffic that dominates the queue.
//
// Invariants:
//   - every wheel-resident event has at in [cur, cur+wheelSize), so a
//     bucket holds events of exactly one cycle;
//   - every overflow event has at >= cur+wheelSize (migrate restores
//     this whenever cur advances), so the wheel always holds the global
//     minimum while it is non-empty;
//   - overflow events migrate in heap (at, seq) order, and migration
//     for a cycle completes before the first direct push to that cycle
//     can happen (a direct push requires the cycle to be inside the
//     window, and the window only grows when cur advances, which
//     triggers migration) — so bucket append order stays seq order;
//   - cur advances only in pop, to the at of the event being popped.
//     peek never commits a cursor move: between two engine run calls
//     the host may legally schedule earlier than the last peeked time,
//     and those pushes must still land inside the scanned window.
type calendarQueue struct {
	//m3vet:resolve sharedstate owner queue structure is pushed and popped on the engine goroutine only
	buckets [wheelSize]cqBucket
	// cur is the earliest cycle that may still hold events: the at of
	// the most recently popped event (pushes are never earlier).
	cur Time
	// inWheel counts wheel-resident events; size counts all.
	//m3vet:resolve sharedstate owner queue bookkeeping, engine goroutine only
	inWheel int
	//m3vet:resolve sharedstate owner queue bookkeeping, engine goroutine only
	size int
	//m3vet:resolve sharedstate owner overflow heap mutated by engine-side push/pop only
	far eventHeap
}

const (
	wheelBits = 11 // 2048 one-cycle buckets; DTU timeouts (2000+) overflow
	wheelSize = 1 << wheelBits
	wheelMask = wheelSize - 1
)

// cqBucket drains front-to-back so same-cycle events stay FIFO (= seq
// order); the backing array is reused once drained.
type cqBucket struct {
	//m3vet:resolve sharedstate owner bucket contents change only under engine-side push/pop
	evs  []*event
	head int
}

func newCalendarQueue() *calendarQueue { return &calendarQueue{} }

func (c *calendarQueue) push(ev *event) {
	if ev.at >= c.cur+wheelSize {
		heap.Push(&c.far, ev)
	} else {
		b := &c.buckets[ev.at&wheelMask]
		b.evs = append(b.evs, ev)
		c.inWheel++
	}
	c.size++
}

func (c *calendarQueue) pop() *event {
	if c.size == 0 {
		return nil
	}
	if c.inWheel == 0 {
		// Idle gap: jump straight to the overflow minimum instead of
		// walking empty buckets.
		c.cur = c.far[0].at
		c.migrate()
	}
	// The window invariant guarantees a hit within wheelSize buckets.
	for cyc := c.cur; ; cyc++ {
		if cyc-c.cur > wheelMask {
			panic("sim: calendar queue window invariant violated")
		}
		b := &c.buckets[cyc&wheelMask]
		if b.head == len(b.evs) {
			continue
		}
		if cyc != c.cur {
			c.cur = cyc
			c.migrate()
		}
		ev := b.evs[b.head]
		b.evs[b.head] = nil
		b.head++
		if b.head == len(b.evs) {
			b.evs = b.evs[:0]
			b.head = 0
		}
		c.inWheel--
		c.size--
		return ev
	}
}

func (c *calendarQueue) peek() *event {
	if c.size == 0 {
		return nil
	}
	if c.inWheel == 0 {
		return c.far[0]
	}
	for cyc := c.cur; ; cyc++ {
		if cyc-c.cur > wheelMask {
			panic("sim: calendar queue window invariant violated")
		}
		b := &c.buckets[cyc&wheelMask]
		if b.head < len(b.evs) {
			return b.evs[b.head]
		}
	}
}

// migrate pulls overflow events that now fit the window into their
// buckets, in (at, seq) heap order so bucket FIFO order is preserved.
func (c *calendarQueue) migrate() {
	for len(c.far) > 0 && c.far[0].at < c.cur+wheelSize {
		ev := heap.Pop(&c.far).(*event)
		b := &c.buckets[ev.at&wheelMask]
		b.evs = append(b.evs, ev)
		c.inWheel++
	}
}

func (c *calendarQueue) len() int { return c.size }
