package sim

// Rand is a splitmix64 pseudo-random stream. Its entire state is one
// uint64, so a stream is trivially replayable: the same seed yields
// the same sequence on every run, on every platform. The fault layer
// owns one stream per fault plan, which is what makes injected fault
// schedules part of the deterministic event schedule. math/rand would
// not do: its convenience functions share process-global state across
// everything in the address space (and are banned by m3vet's
// nodeterminism rule for exactly that reason).
type Rand struct {
	state uint64
}

// NewRand returns a stream seeded with seed. Distinct seeds give
// independent-looking streams; the same seed replays the same stream.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next 64 pseudo-random bits (splitmix64, the
// mixing function from Steele et al., "Fast Splittable Pseudorandom
// Number Generators").
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). n must be positive. The tiny
// modulo bias is irrelevant for fault schedules.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn on non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}
