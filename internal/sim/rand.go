package sim

// Rand is a splitmix64 pseudo-random stream. Its entire state is one
// uint64, so a stream is trivially replayable: the same seed yields
// the same sequence on every run, on every platform. The fault layer
// owns one stream per fault plan, which is what makes injected fault
// schedules part of the deterministic event schedule. math/rand would
// not do: its convenience functions share process-global state across
// everything in the address space (and are banned by m3vet's
// nodeterminism rule for exactly that reason).
type Rand struct {
	//m3vet:resolve sharedstate owner each stream is advanced by the fault layer inside serial link hooks
	state uint64
}

// NewRand returns a stream seeded with seed. Distinct seeds give
// independent-looking streams; the same seed replays the same stream.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next 64 pseudo-random bits (splitmix64, the
// mixing function from Steele et al., "Fast Splittable Pseudorandom
// Number Generators").
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix64(r.state)
}

// mix64 is splitmix64's output finalizer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hash folds the given words into one 64-bit value with the same
// splitmix64 finalizer Uint64 uses. It is the stateless companion to a
// Rand stream: where a stream's next value depends on how many draws
// came before it (shared mutable position), a hash of an event's own
// identity — seed, link, sequence number, cycle — yields the same
// value no matter who else drew in between. Fault hooks that may one
// day run under a parallel scheduler use this form.
func Hash(words ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, w := range words {
		h = mix64(h ^ w)
	}
	return h
}

// Unit maps 64 random bits onto a uniform float64 in [0, 1).
func Unit(bits uint64) float64 { return float64(bits>>11) / (1 << 53) }

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 { return Unit(r.Uint64()) }

// Intn returns a uniform int in [0, n). n must be positive. The tiny
// modulo bias is irrelevant for fault schedules.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn on non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}
