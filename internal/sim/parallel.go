package sim

import "sync"

// This file implements conservative parallel execution of sharded
// events. The model is cycle-synchronous: the engine pops a maximal
// run of consecutive same-cycle sharded events (a batch), executes the
// batch on a worker pool grouped by shard, and then replays every
// cross-shard effect each event recorded — scheduling, deferred
// closures, trace emission — on the engine goroutine in the events'
// (at, seq) order. Replay reproduces the exact sequence-number
// assignment and side-effect order of serial execution, which is what
// makes parallel runs byte-identical to serial ones (enforced by
// TestEngineEquivalence in internal/bench). See docs/PARALLEL.md.

// ShardCtx is the capability handed to a sharded callback
// (Engine.ScheduleShard). Inside the callback, shard-owned state may be
// touched directly; everything else must go through the context, which
// either applies the effect immediately (serial engine) or records it
// for deterministic replay at the batch barrier (parallel engine).
type ShardCtx struct {
	eng   *Engine
	shard int32
	// immediate selects serial semantics: effects apply inline, making
	// a serial engine's ScheduleShard behave exactly like Schedule.
	immediate bool
	//m3vet:resolve sharedstate shard each batch context is handed to exactly one worker; its act log is appended by that shard alone and drained at the barrier
	acts     []shardAct
	panicked any
}

// actKind discriminates the recorded effect types.
type actKind uint8

const (
	actDefer actKind = iota
	actSchedule
	actScheduleShard
)

// shardAct is one recorded effect, replayed at the batch barrier in
// recording order.
type shardAct struct {
	kind  actKind
	delay Time
	shard int32
	fn    func()
	sfn   func(*ShardCtx)
}

// Now returns the current simulated time. It is fixed for the duration
// of a batch, so reading it from a worker is race-free.
func (sc *ShardCtx) Now() Time { return sc.eng.now }

// Shard returns the shard this callback was scheduled on.
func (sc *ShardCtx) Shard() int { return int(sc.shard) }

// Tracing reports whether a tracer is installed. Tracers are installed
// before running (see Engine.SetTracer), so this read is race-free.
func (sc *ShardCtx) Tracing() bool { return sc.eng.tracer != nil }

// Emit delivers one trace event at the current time, in the event's
// deterministic position: immediately under a serial engine, at the
// batch barrier under a parallel one.
func (sc *ShardCtx) Emit(source, event string) {
	if sc.eng.tracer == nil {
		return
	}
	if sc.immediate {
		sc.eng.Emit(source, event)
		return
	}
	eng := sc.eng
	sc.acts = append(sc.acts, shardAct{kind: actDefer, fn: func() { eng.Emit(source, event) }})
}

// Schedule registers fn as a serial event after delay cycles, like
// Engine.Schedule but legal from shard context.
func (sc *ShardCtx) Schedule(delay Time, fn func()) {
	if sc.immediate {
		sc.eng.Schedule(delay, fn)
		return
	}
	sc.acts = append(sc.acts, shardAct{kind: actSchedule, delay: delay, fn: fn})
}

// ScheduleShard registers fn as a sharded event after delay cycles,
// like Engine.ScheduleShard but legal from shard context.
func (sc *ShardCtx) ScheduleShard(shard int, delay Time, fn func(*ShardCtx)) {
	if shard < 0 {
		panic("sim: ScheduleShard with negative shard")
	}
	if sc.immediate {
		sc.eng.ScheduleShard(shard, delay, fn)
		return
	}
	sc.acts = append(sc.acts, shardAct{kind: actScheduleShard, delay: delay, shard: int32(shard), sfn: fn})
}

// Defer runs fn in engine context — immediately under a serial engine,
// at the batch barrier under a parallel one. It is the escape hatch
// for any effect that touches state the shard does not own: shared
// counters, signal broadcasts, obs emission, pool frees.
func (sc *ShardCtx) Defer(fn func()) {
	if sc.immediate {
		fn()
		return
	}
	sc.acts = append(sc.acts, shardAct{kind: actDefer, fn: fn})
}

// getCtx takes a ShardCtx from the engine's context pool.
func (e *Engine) getCtx(shard int32, immediate bool) *ShardCtx {
	var sc *ShardCtx
	if n := len(e.freeCtx); n > 0 {
		sc = e.freeCtx[n-1]
		e.freeCtx = e.freeCtx[:n-1]
	} else {
		sc = &ShardCtx{}
	}
	sc.eng, sc.shard, sc.immediate, sc.panicked = e, shard, immediate, nil
	return sc
}

// putCtx zeroes a ShardCtx (pool hygiene: recorded closures must not
// be pinned by the freelist) and returns it to the pool.
func (e *Engine) putCtx(sc *ShardCtx) {
	for i := range sc.acts {
		sc.acts[i] = shardAct{}
	}
	sc.acts = sc.acts[:0]
	sc.eng, sc.panicked = nil, nil
	e.freeCtx = append(e.freeCtx, sc)
}

// stepShard executes the sharded event first (already popped, clock
// already advanced) and, under a parallel engine, the rest of its
// batch: the maximal run of consecutive queued sharded events with the
// same time stamp.
func (e *Engine) stepShard(first *event) {
	if e.cfg.Workers <= 1 {
		// Serial: run inline with an immediate-mode context. This path
		// is behaviourally identical to a plain Schedule of the same
		// callback.
		sfn, shard := first.sfn, first.shard
		e.release(first)
		e.executed++
		sc := e.getCtx(shard, true)
		sfn(sc)
		e.putCtx(sc)
		return
	}

	// Collect the batch. A serial event at the same cycle ends it: that
	// event may touch any state, so it must observe all earlier sharded
	// effects and be observed by later ones.
	at := first.at
	e.batch = append(e.batch[:0], first)
	for {
		nx := e.queue.peek()
		if nx == nil || nx.at != at || nx.sfn == nil {
			break
		}
		e.batch = append(e.batch, e.queue.pop())
	}

	// Group batch indices by shard, in first-appearance order, so each
	// shard's events execute sequentially in seq order on one worker.
	if e.groupOf == nil {
		e.groupOf = make(map[int32]int)
	}
	e.groups = e.groups[:0]
	for i, ev := range e.batch {
		gi, ok := e.groupOf[ev.shard]
		if !ok {
			gi = len(e.groups)
			e.groupOf[ev.shard] = gi
			if gi < cap(e.groups) {
				e.groups = e.groups[:gi+1]
				e.groups[gi] = e.groups[gi][:0]
			} else {
				e.groups = append(e.groups, nil)
			}
		}
		e.groups[gi] = append(e.groups[gi], i)
	}
	e.batchCtx = e.batchCtx[:0]
	for _, ev := range e.batch {
		e.batchCtx = append(e.batchCtx, e.getCtx(ev.shard, false))
	}

	// Execute. inBatch is set before any task is handed to a worker and
	// cleared after all workers are joined, so workers always observe
	// it as true (channel send / WaitGroup establish the ordering).
	if e.pool == nil {
		e.pool = newShardPool(e.cfg.Workers)
	}
	e.inBatch = true
	var done sync.WaitGroup
	done.Add(len(e.groups))
	for _, g := range e.groups {
		e.pool.tasks <- poolTask{e: e, group: g, done: &done}
	}
	done.Wait()
	e.inBatch = false

	// Replay in batch (= seq) order: this is where the parallel run
	// re-serializes into exactly the schedule a serial engine would
	// have produced. A panic captured on a worker is re-raised here, at
	// the deterministic point where serial execution would have hit it,
	// after the panicking event's own recorded effects are applied.
	for i, ev := range e.batch {
		sc := e.batchCtx[i]
		e.executed++
		for j := range sc.acts {
			a := &sc.acts[j]
			switch a.kind {
			case actDefer:
				a.fn()
			case actSchedule:
				e.Schedule(a.delay, a.fn)
			case actScheduleShard:
				e.queue.push(e.alloc(e.now+a.delay, nil, a.sfn, a.shard))
			}
		}
		if sc.panicked != nil {
			panic(sc.panicked)
		}
		e.release(ev)
		e.putCtx(sc)
	}
	e.batch = e.batch[:0]
	e.batchCtx = e.batchCtx[:0]
	clear(e.groupOf)
}

// shardPool is a persistent pool of batch workers. It is started
// lazily on the first parallel batch and torn down when Run/RunUntil
// returns (stopPool), so an idle engine holds no goroutines.
type shardPool struct {
	tasks   chan poolTask
	workers sync.WaitGroup
}

// poolTask executes one shard group of the current batch.
type poolTask struct {
	e     *Engine
	group []int
	done  *sync.WaitGroup
}

func newShardPool(n int) *shardPool {
	p := &shardPool{tasks: make(chan poolTask)}
	p.workers.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.workers.Done()
			for t := range p.tasks {
				t.run()
			}
		}()
	}
	return p
}

func (t poolTask) run() {
	defer t.done.Done()
	for _, i := range t.group {
		ev, sc := t.e.batch[i], t.e.batchCtx[i]
		runShardEvent(ev, sc)
		if sc.panicked != nil {
			// Later events of this shard never run — exactly as in
			// serial execution, where the panic would have unwound
			// before reaching them. The barrier re-raises it.
			return
		}
	}
}

// runShardEvent runs one sharded callback, converting a panic into a
// recorded value so the barrier can re-raise it deterministically.
func runShardEvent(ev *event, sc *ShardCtx) {
	defer func() {
		if r := recover(); r != nil {
			sc.panicked = r
		}
	}()
	ev.sfn(sc)
}

// stopPool tears down the worker pool, if one was started.
func (e *Engine) stopPool() {
	if e.pool == nil {
		return
	}
	close(e.pool.tasks)
	e.pool.workers.Wait()
	e.pool = nil
}
