package sim

import "container/heap"

// eventQueue is the engine's pending-event store. Both implementations
// yield events in exactly the same total order — ascending (at, seq) —
// so a run's schedule is independent of the queue chosen; the
// differential test harness (internal/bench TestEngineEquivalence,
// FuzzEventQueue here) holds them to that contract byte-for-byte.
type eventQueue interface {
	// push inserts ev. ev.at must be >= the at of every event popped
	// so far (the engine never schedules into the past).
	push(ev *event)
	// pop removes and returns the minimum (at, seq) event, or nil when
	// empty.
	pop() *event
	// peek returns the minimum (at, seq) event without removing it, or
	// nil when empty.
	peek() *event
	// len returns the number of queued events.
	len() int
}

// eventHeap is a min-heap ordered by (at, seq): the original engine
// queue, kept behind Config{Queue: QueueHeap} as the reference
// implementation for differential testing of the calendar queue.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// heapQueue adapts eventHeap to the eventQueue interface.
type heapQueue struct {
	//m3vet:resolve sharedstate owner the reference heap is pushed and popped on the engine goroutine only
	h eventHeap
}

func (q *heapQueue) push(ev *event) { heap.Push(&q.h, ev) }

func (q *heapQueue) pop() *event {
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*event)
}

func (q *heapQueue) peek() *event {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

func (q *heapQueue) len() int { return len(q.h) }
