package sim

// Signal is a broadcast/wake-one condition for processes. Waiters are
// resumed in FIFO order, at the simulated time of the notification.
//
// Signals carry no payload; the usual pattern is a predicate re-check
// loop:
//
//	for !cond() {
//		sig.Wait(p)
//	}
type Signal struct {
	eng *Engine
	//m3vet:resolve sharedstate owner Wait and Broadcast run in process or barrier context; shard code defers its broadcasts
	waiters []*Process
}

// NewSignal returns a signal bound to eng.
func NewSignal(eng *Engine) *Signal { return &Signal{eng: eng} }

// Wait blocks p until the signal is notified.
func (s *Signal) Wait(p *Process) {
	s.waiters = append(s.waiters, p)
	p.park()
}

// Notify wakes the oldest living waiter, if any. The waiter resumes
// at the current simulated time, after already-queued events for this
// cycle. Dead waiters (killed while blocked) are skipped, not counted:
// a wake-one notification consumed by a corpse would be lost.
func (s *Signal) Notify() {
	for len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		if w.dead {
			continue
		}
		s.eng.Schedule(0, func() { s.eng.resume(w) })
		return
	}
}

// Broadcast wakes all current waiters in FIFO order.
func (s *Signal) Broadcast() {
	ws := s.waiters
	s.waiters = nil
	for _, w := range ws {
		w := w
		s.eng.Schedule(0, func() { s.eng.resume(w) })
	}
}

// Waiters returns the number of processes currently blocked on the
// signal.
func (s *Signal) Waiters() int { return len(s.waiters) }
