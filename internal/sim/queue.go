package sim

// Queue is an unbounded FIFO channel between processes. Senders never
// block; receivers block until an item is available. Items are
// delivered in send order, receivers are served in arrival order.
type Queue[T any] struct {
	eng   *Engine
	items []T
	avail *Signal
}

// NewQueue returns an empty queue bound to eng.
func NewQueue[T any](eng *Engine) *Queue[T] {
	return &Queue[T]{eng: eng, avail: NewSignal(eng)}
}

// Send appends item and wakes one waiting receiver. Safe to call from
// callbacks as well as processes.
func (q *Queue[T]) Send(item T) {
	q.items = append(q.items, item)
	q.avail.Notify()
}

// Recv blocks p until an item is available, then removes and returns
// the oldest item.
func (q *Queue[T]) Recv(p *Process) T {
	for len(q.items) == 0 {
		q.avail.Wait(p)
	}
	item := q.items[0]
	var zero T
	q.items[0] = zero
	q.items = q.items[1:]
	// If more items remain, keep waking receivers so several waiters
	// queued behind one Send-burst all make progress.
	if len(q.items) > 0 {
		q.avail.Notify()
	}
	return item
}

// TryRecv removes and returns the oldest item without blocking. ok is
// false if the queue is empty.
func (q *Queue[T]) TryRecv() (item T, ok bool) {
	if len(q.items) == 0 {
		return item, false
	}
	item = q.items[0]
	var zero T
	q.items[0] = zero
	q.items = q.items[1:]
	return item, true
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }
