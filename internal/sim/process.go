package sim

import "fmt"

// Process is a simulated thread of execution: a goroutine that runs in
// strict hand-off with the engine. Process methods that block (Sleep,
// Signal.Wait, Queue.Recv, Resource.Acquire) yield control back to the
// engine and are resumed by a later event.
//
// A Process must only be used from its own goroutine (the function
// passed to Spawn).
type Process struct {
	eng    *Engine
	name   string
	resume chan struct{}
	//m3vet:resolve sharedstate owner process lifecycle flags flip under the engine's strict hand-off, never in shard context
	dead bool
	//m3vet:resolve sharedstate owner process lifecycle flags flip under the engine's strict hand-off, never in shard context
	killed bool
	//m3vet:resolve sharedstate owner set once at spawn time on the engine goroutine
	daemon bool

	// done is signalled when the process function returns.
	//m3vet:resolve sharedstate owner assigned at spawn, signalled at process exit, both engine-side
	done *Signal
}

// Spawn creates a process named name and schedules it to start at the
// current simulated time. The function fn runs on its own goroutine in
// hand-off with the engine; when fn returns the process terminates and
// its Done signal fires.
func (e *Engine) Spawn(name string, fn func(p *Process)) *Process {
	p := &Process{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
	}
	p.done = NewSignal(e)
	e.liveProcs++
	go func() {
		<-p.resume
		defer func() {
			// A killed process never reaches this defer (its goroutine
			// stays blocked forever); the guard protects the
			// bookkeeping against any future path that could.
			if !p.killed {
				p.dead = true
				e.liveProcs--
				if p.daemon {
					e.daemonProcs--
				}
				p.done.Broadcast()
			}
			e.parked <- struct{}{}
		}()
		fn(p)
	}()
	e.Schedule(0, func() { e.resume(p) })
	return p
}

// Name returns the name given at Spawn time.
func (p *Process) Name() string { return p.name }

// Engine returns the engine the process runs on.
func (p *Process) Engine() *Engine { return p.eng }

// Now returns the current simulated time.
func (p *Process) Now() Time { return p.eng.now }

// Done returns a signal that fires when the process function returns.
// Another process can Join by waiting on it.
func (p *Process) Done() *Signal { return p.done }

// Dead reports whether the process function has returned or the
// process was killed.
func (p *Process) Dead() bool { return p.dead }

// Kill terminates a parked process without running the rest of its
// function: the simulated core stopped mid-instruction. The process
// counts as dead immediately — its Done signal fires and later resume
// attempts (a Signal broadcast, a Resource grant) are ignored. The
// backing goroutine stays blocked on its hand-off channel and is
// leaked deliberately: a crashed PE's program counter never advances
// again, and the leak is bounded by the number of injected crashes.
//
// Kill must not target the currently running process — a program
// cannot crash itself between two of its own instructions here;
// schedule the kill as an engine event instead. Killing an
// already-dead process is a no-op.
//
// A corpse leaks no resource capacity: every Resource unit a process
// can hold across a blocking point is released by an event scheduled
// at acquire time (NoC link occupancy) or held by unkillable resident
// processes (the kernel CPU, the memory tile's ports), and parked
// acquirers that die in the queue are skipped by the resource's
// dead-waiter handling.
func (p *Process) Kill() {
	if p.dead {
		return
	}
	if p.eng.current == p {
		panic("sim: Kill of the running process; schedule the kill as an event")
	}
	p.killed = true
	p.dead = true
	p.eng.liveProcs--
	if p.daemon {
		p.eng.daemonProcs--
	}
	p.done.Broadcast()
}

// Killed reports whether the process was terminated by Kill rather
// than by returning.
func (p *Process) Killed() bool { return p.killed }

// SetDaemon marks the process as a forever-running server loop: a DTU
// request server, a memory-tile port worker, the kernel dispatcher,
// a service like m3fs. Daemons left parked when the event queue drains
// are the expected end state of a run, not a deadlock; see
// Engine.Deadlocked.
func (p *Process) SetDaemon() {
	if !p.daemon && !p.dead {
		p.daemon = true
		p.eng.daemonProcs++
	}
}

// park yields control to the engine; the process stays blocked until an
// event resumes it.
func (p *Process) park() {
	p.eng.parked <- struct{}{}
	<-p.resume
}

// Sleep advances the process's simulated time by d cycles. Other events
// run in the meantime.
func (p *Process) Sleep(d Time) {
	p.eng.Schedule(d, func() { p.eng.resume(p) })
	p.park()
}

// Yield reschedules the process at the current time behind all events
// already queued for this cycle.
func (p *Process) Yield() { p.Sleep(0) }

// Join blocks until other has terminated. Joining a dead process
// returns immediately.
func (p *Process) Join(other *Process) {
	if other.dead {
		return
	}
	other.done.Wait(p)
}

func (p *Process) String() string {
	return fmt.Sprintf("proc(%s)", p.name)
}
