package sim

import "fmt"

// Process is a simulated thread of execution: a goroutine that runs in
// strict hand-off with the engine. Process methods that block (Sleep,
// Signal.Wait, Queue.Recv, Resource.Acquire) yield control back to the
// engine and are resumed by a later event.
//
// A Process must only be used from its own goroutine (the function
// passed to Spawn).
type Process struct {
	eng    *Engine
	name   string
	resume chan struct{}
	dead   bool

	// done is signalled when the process function returns.
	done *Signal
}

// Spawn creates a process named name and schedules it to start at the
// current simulated time. The function fn runs on its own goroutine in
// hand-off with the engine; when fn returns the process terminates and
// its Done signal fires.
func (e *Engine) Spawn(name string, fn func(p *Process)) *Process {
	p := &Process{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
	}
	p.done = NewSignal(e)
	e.liveProcs++
	go func() {
		<-p.resume
		defer func() {
			p.dead = true
			e.liveProcs--
			p.done.Broadcast()
			e.parked <- struct{}{}
		}()
		fn(p)
	}()
	e.Schedule(0, func() { e.resume(p) })
	return p
}

// Name returns the name given at Spawn time.
func (p *Process) Name() string { return p.name }

// Engine returns the engine the process runs on.
func (p *Process) Engine() *Engine { return p.eng }

// Now returns the current simulated time.
func (p *Process) Now() Time { return p.eng.now }

// Done returns a signal that fires when the process function returns.
// Another process can Join by waiting on it.
func (p *Process) Done() *Signal { return p.done }

// Dead reports whether the process function has returned.
func (p *Process) Dead() bool { return p.dead }

// park yields control to the engine; the process stays blocked until an
// event resumes it.
func (p *Process) park() {
	p.eng.parked <- struct{}{}
	<-p.resume
}

// Sleep advances the process's simulated time by d cycles. Other events
// run in the meantime.
func (p *Process) Sleep(d Time) {
	p.eng.Schedule(d, func() { p.eng.resume(p) })
	p.park()
}

// Yield reschedules the process at the current time behind all events
// already queued for this cycle.
func (p *Process) Yield() { p.Sleep(0) }

// Join blocks until other has terminated. Joining a dead process
// returns immediately.
func (p *Process) Join(other *Process) {
	if other.dead {
		return
	}
	other.done.Wait(p)
}

func (p *Process) String() string {
	return fmt.Sprintf("proc(%s)", p.name)
}
