// Package sim provides a deterministic, process-based discrete-event
// simulation engine. It is the substrate on which the hardware models
// (NoC, DRAM, DTU, PEs) and all simulated software run.
//
// The engine advances a cycle-granular clock and executes events in
// (time, sequence) order, so a given configuration always produces the
// same schedule. Simulated activities are either plain callbacks or
// processes: goroutines that run in strict hand-off with the engine —
// at most one goroutine (the engine or a single process) executes at any
// moment, which makes the simulation deterministic despite using
// goroutines for control flow.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulated time stamp, measured in cycles.
type Time uint64

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine owns the simulated clock and the event queue.
//
// All interaction with an Engine must happen from simulation context:
// either from inside a callback scheduled on it or from a process spawned
// on it. The zero value is not usable; call NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap

	// parked is signalled by the currently running process when it
	// yields control back to the engine.
	parked  chan struct{}
	current *Process

	liveProcs   int
	daemonProcs int
	executed    uint64
	deadlocked  bool

	tracer func(at Time, source, event string)
}

// NewEngine returns an engine with an empty event queue at time zero.
func NewEngine() *Engine {
	return &Engine{parked: make(chan struct{})}
}

// Now returns the current simulated time in cycles.
func (e *Engine) Now() Time { return e.now }

// ExecutedEvents returns the number of events executed so far, a cheap
// progress and determinism metric.
func (e *Engine) ExecutedEvents() uint64 { return e.executed }

// Schedule registers fn to run after delay cycles. Callbacks run in the
// engine's goroutine and must not block; to model blocking behaviour use
// a Process.
//
// Scheduling onto a deadlocked engine (see Deadlocked) panics: any new
// event could resume a process that the finished run left parked, and
// the resulting interaction with a drained engine hangs on the internal
// hand-off channel. A panic names the bug instead.
func (e *Engine) Schedule(delay Time, fn func()) {
	if e.deadlocked {
		panic(fmt.Sprintf("sim: Schedule on deadlocked engine (%d processes parked forever)", e.liveProcs))
	}
	e.seq++
	heap.Push(&e.events, &event{at: e.now + delay, seq: e.seq, fn: fn})
}

// Pending reports whether any events remain queued.
func (e *Engine) Pending() bool { return len(e.events) > 0 }

// LiveProcesses returns the number of spawned processes that have not
// yet returned. Processes blocked forever (e.g. a server loop waiting
// for requests after the workload finished) keep this non-zero without
// keeping the event queue non-empty.
func (e *Engine) LiveProcesses() int { return e.liveProcs }

// Run executes events until the queue is empty and returns the final
// simulated time.
//
// If live processes remain when the queue drains, they are parked
// forever: events are the only wake source, so no future step can
// resume them. For daemon processes (server loops — m3fs, DTU request
// servers, the kernel dispatcher — marked via Process.SetDaemon) that
// is the expected end state of every run. Any *non-daemon* process
// parked forever is a genuine deadlock: a client stuck waiting for a
// message that will never come. Run records that as a deadlock — a
// state in which scheduling new work is a bug; see Schedule.
func (e *Engine) Run() Time {
	for len(e.events) > 0 {
		e.step()
	}
	if e.liveProcs > e.daemonProcs {
		e.deadlocked = true
	}
	return e.now
}

// Deadlocked reports whether a completed Run left non-daemon
// processes parked forever. The chaos tests use this as the liveness
// assertion: injected faults must never wedge a surviving client.
func (e *Engine) Deadlocked() bool { return e.deadlocked }

// RunUntil executes events with time stamps <= limit. Events scheduled
// later remain queued. It returns the current time after the last
// executed event.
func (e *Engine) RunUntil(limit Time) Time {
	for len(e.events) > 0 && e.events[0].at <= limit {
		e.step()
	}
	if e.now < limit {
		e.now = limit
	}
	return e.now
}

func (e *Engine) step() {
	ev := heap.Pop(&e.events).(*event)
	if ev.at < e.now {
		panic(fmt.Sprintf("sim: event scheduled in the past (%d < %d)", ev.at, e.now))
	}
	e.now = ev.at
	e.executed++
	ev.fn()
}

// resume hands control to p and blocks the engine until p yields.
func (e *Engine) resume(p *Process) {
	if p.dead {
		return
	}
	prev := e.current
	e.current = p
	p.resume <- struct{}{}
	<-e.parked
	e.current = prev
}

// SetTracer installs a callback receiving (time, source, event) lines
// from instrumented components (DTUs, the kernel). Tracing is off by
// default; call sites guard event-string formatting with Tracing.
func (e *Engine) SetTracer(fn func(at Time, source, event string)) { e.tracer = fn }

// Tracing reports whether a tracer is installed.
func (e *Engine) Tracing() bool { return e.tracer != nil }

// Emit delivers one trace event at the current time.
func (e *Engine) Emit(source, event string) {
	if e.tracer != nil {
		e.tracer(e.now, source, event)
	}
}
