// Package sim provides a deterministic, process-based discrete-event
// simulation engine. It is the substrate on which the hardware models
// (NoC, DRAM, DTU, PEs) and all simulated software run.
//
// The engine advances a cycle-granular clock and executes events in
// (time, sequence) order, so a given configuration always produces the
// same schedule. Simulated activities are either plain callbacks or
// processes: goroutines that run in strict hand-off with the engine —
// at most one goroutine (the engine or a single process) executes at any
// moment, which makes the simulation deterministic despite using
// goroutines for control flow.
//
// Two engine internals are configurable (Config) without changing any
// observable schedule: the event queue implementation (an O(1)
// calendar queue by default, the original binary heap behind a flag
// for differential testing) and conservative parallel execution of
// shard-tagged events (ScheduleShard; see docs/PARALLEL.md). The
// determinism contract extends across all configurations: every
// Config must produce byte-identical traces, which is enforced by the
// differential harness in internal/bench.
package sim

import (
	"fmt"
	"sync/atomic"
)

// Time is a simulated time stamp, measured in cycles.
type Time uint64

// serialShard tags an event with no shard affinity: it runs in engine
// context with exclusive access to all simulation state.
const serialShard int32 = -1

// event is a scheduled callback. Events are engine-pooled: Schedule
// takes one from the freelist and step returns it zeroed, so the
// steady-state hot path allocates nothing per event.
type event struct {
	//m3vet:resolve sharedstate owner events are created, executed and pooled on the engine goroutine only
	at Time
	//m3vet:resolve sharedstate owner written once at Schedule time on the engine goroutine
	seq uint64
	// fn is set for serial events, sfn (with shard >= 0) for sharded
	// ones; exactly one is non-nil.
	//m3vet:resolve sharedstate owner written at Schedule and zeroed at pool return, both engine-side
	fn func()
	//m3vet:resolve sharedstate owner written at ScheduleShard and zeroed at pool return, both engine-side
	sfn func(*ShardCtx)
	//m3vet:resolve sharedstate owner written at Schedule time on the engine goroutine
	shard int32
	// next links the engine freelist.
	//m3vet:resolve sharedstate owner freelist links are only touched by the engine's pool get/put
	next *event
}

// QueueKind selects the engine's event-queue implementation.
type QueueKind uint8

const (
	// QueueCalendar is the default O(1) calendar queue (calendar.go).
	QueueCalendar QueueKind = iota
	// QueueHeap is the original binary min-heap, kept as the reference
	// implementation for differential testing.
	QueueHeap
)

// Config parameterizes an engine. The zero value is the production
// default: calendar queue, serial execution.
type Config struct {
	// Queue selects the event-queue implementation. Both yield events
	// in the identical (time, sequence) order.
	Queue QueueKind
	// Workers > 1 enables conservative parallel execution: maximal
	// same-cycle runs of shard-tagged events (ScheduleShard) execute on
	// a worker pool, grouped by shard, with all cross-shard effects
	// replayed in deterministic order at the batch barrier. Serial
	// events and Workers <= 1 behave exactly as the sequential engine
	// always has. See docs/PARALLEL.md.
	Workers int
}

// Engine owns the simulated clock and the event queue.
//
// All interaction with an Engine must happen from simulation context:
// either from inside a callback scheduled on it or from a process spawned
// on it. The zero value is not usable; call NewEngine.
type Engine struct {
	now Time
	//m3vet:resolve sharedstate owner bumped by Schedule, which shard contexts reach only through the act log
	seq uint64
	//m3vet:resolve sharedstate owner the event queue is pushed and popped on the engine goroutine only
	queue eventQueue
	//m3vet:resolve sharedstate owner event pool mutated by engine-side Schedule and step only
	free *event
	cfg  Config

	// parked is signalled by the currently running process when it
	// yields control back to the engine.
	parked chan struct{}
	//m3vet:resolve sharedstate owner strict hand-off: set by the engine before waking a process
	current *Process

	//m3vet:resolve sharedstate owner process accounting happens in Spawn and process exit, engine-side
	liveProcs int
	//m3vet:resolve sharedstate owner process accounting happens in Spawn and process exit, engine-side
	daemonProcs int
	executed    uint64
	// flushed tracks how much of executed has been folded into the
	// process-wide TotalExecutedEvents aggregate (host-side wall-speed
	// accounting, not simulation state).
	flushed    uint64
	deadlocked bool

	tracer func(at Time, source, event string)

	// Parallel-batch state (parallel.go). inBatch is set strictly
	// before the workers start and cleared strictly after they join,
	// so workers observe it as true race-free; it turns an engine
	// Schedule from shard context into a panic instead of a data race.
	inBatch  bool
	pool     *shardPool
	batch    []*event
	batchCtx []*ShardCtx
	freeCtx  []*ShardCtx
	groupOf  map[int32]int
	groups   [][]int
}

// NewEngine returns a default-configured engine (calendar queue,
// serial) with an empty event queue at time zero.
func NewEngine() *Engine { return NewEngineWith(Config{}) }

// NewEngineWith returns an engine with the given configuration. All
// configurations produce identical schedules; see Config.
func NewEngineWith(cfg Config) *Engine {
	e := &Engine{parked: make(chan struct{}), cfg: cfg}
	switch cfg.Queue {
	case QueueHeap:
		e.queue = &heapQueue{}
	default:
		e.queue = newCalendarQueue()
	}
	return e
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Now returns the current simulated time in cycles.
func (e *Engine) Now() Time { return e.now }

// ExecutedEvents returns the number of events executed so far, a cheap
// progress and determinism metric.
func (e *Engine) ExecutedEvents() uint64 { return e.executed }

// alloc takes an event from the freelist (or the heap on a cold
// start), stamps it with the next sequence number, and fills it.
func (e *Engine) alloc(at Time, fn func(), sfn func(*ShardCtx), shard int32) *event {
	ev := e.free
	if ev == nil {
		ev = &event{}
	} else {
		e.free = ev.next
	}
	e.seq++
	ev.at, ev.seq, ev.fn, ev.sfn, ev.shard, ev.next = at, e.seq, fn, sfn, shard, nil
	return ev
}

// release zeroes an executed event (pool hygiene: no stale callbacks
// or shard tags survive on the freelist) and returns it to the pool.
func (e *Engine) release(ev *event) {
	*ev = event{next: e.free}
	e.free = ev
}

// checkSchedulable panics on the two scheduling bugs the engine can
// name precisely; see Schedule and ScheduleShard.
func (e *Engine) checkSchedulable() {
	if e.inBatch {
		panic("sim: Schedule from a parallel shard context; use ShardCtx.Schedule/ScheduleShard/Defer")
	}
	if e.deadlocked {
		panic(fmt.Sprintf("sim: Schedule on deadlocked engine (%d processes parked forever)", e.liveProcs))
	}
}

// Schedule registers fn to run after delay cycles. Callbacks run in the
// engine's goroutine and must not block; to model blocking behaviour use
// a Process.
//
// Scheduling onto a deadlocked engine (see Deadlocked) panics: any new
// event could resume a process that the finished run left parked, and
// the resulting interaction with a drained engine hangs on the internal
// hand-off channel. A panic names the bug instead. Scheduling from
// inside a parallel shard callback also panics — shard code must route
// engine interaction through its ShardCtx, which replays it in
// deterministic order at the batch barrier.
func (e *Engine) Schedule(delay Time, fn func()) {
	e.checkSchedulable()
	e.queue.push(e.alloc(e.now+delay, fn, nil, serialShard))
}

// ScheduleShard registers fn to run after delay cycles with shard
// affinity: under a parallel engine (Config.Workers > 1), same-cycle
// runs of sharded events execute concurrently, grouped by shard, while
// per-shard order and all observable effects stay identical to serial
// execution. Under a serial engine the callback runs inline exactly
// like Schedule, with an immediate-mode ShardCtx.
//
// The shard contract: fn may touch only state owned by its shard;
// everything else — scheduling, trace emission, signals, shared
// counters — must go through the ShardCtx. m3vet's parsafe pass checks
// the write set of sharded callbacks against the shared-state
// inventory (docs/PARALLEL.md, docs/ANALYSIS.md).
func (e *Engine) ScheduleShard(shard int, delay Time, fn func(*ShardCtx)) {
	if shard < 0 {
		panic("sim: ScheduleShard with negative shard")
	}
	e.checkSchedulable()
	e.queue.push(e.alloc(e.now+delay, nil, fn, int32(shard)))
}

// Pending reports whether any events remain queued.
func (e *Engine) Pending() bool { return e.queue.len() > 0 }

// LiveProcesses returns the number of spawned processes that have not
// yet returned. Processes blocked forever (e.g. a server loop waiting
// for requests after the workload finished) keep this non-zero without
// keeping the event queue non-empty.
func (e *Engine) LiveProcesses() int { return e.liveProcs }

// Run executes events until the queue is empty and returns the final
// simulated time.
//
// If live processes remain when the queue drains, they are parked
// forever: events are the only wake source, so no future step can
// resume them. For daemon processes (server loops — m3fs, DTU request
// servers, the kernel dispatcher — marked via Process.SetDaemon) that
// is the expected end state of every run. Any *non-daemon* process
// parked forever is a genuine deadlock: a client stuck waiting for a
// message that will never come. Run records that as a deadlock — a
// state in which scheduling new work is a bug; see Schedule.
func (e *Engine) Run() Time {
	for e.queue.len() > 0 {
		e.step()
	}
	e.stopPool()
	e.flushExecuted()
	if e.liveProcs > e.daemonProcs {
		e.deadlocked = true
	}
	return e.now
}

// totalExecuted aggregates executed-event counts across every engine
// in the process. It exists purely for host-side wall-speed reporting
// (events_per_sec_wall in the bench witness trajectory) and never
// feeds back into simulation state.
var totalExecuted atomic.Uint64

// TotalExecutedEvents returns the process-wide number of executed
// events across all engines whose Run/RunUntil calls have completed.
// Harnesses diff it around a run to report simulator wall-speed.
func TotalExecutedEvents() uint64 { return totalExecuted.Load() }

// flushExecuted folds this engine's executed-event delta into the
// process-wide aggregate. Called once per Run/RunUntil completion, so
// the per-event hot path pays nothing.
func (e *Engine) flushExecuted() {
	if d := e.executed - e.flushed; d > 0 {
		e.flushed = e.executed
		totalExecuted.Add(d)
	}
}

// Deadlocked reports whether a completed Run left non-daemon
// processes parked forever. The chaos tests use this as the liveness
// assertion: injected faults must never wedge a surviving client.
func (e *Engine) Deadlocked() bool { return e.deadlocked }

// RunUntil executes events with time stamps <= limit. Events scheduled
// later remain queued. It returns the current time after the last
// executed event.
func (e *Engine) RunUntil(limit Time) Time {
	for {
		nx := e.queue.peek()
		if nx == nil || nx.at > limit {
			break
		}
		e.step()
	}
	e.stopPool()
	e.flushExecuted()
	if e.now < limit {
		e.now = limit
	}
	return e.now
}

func (e *Engine) step() {
	ev := e.queue.pop()
	if ev.at < e.now {
		panic(fmt.Sprintf("sim: event scheduled in the past (%d < %d)", ev.at, e.now))
	}
	e.now = ev.at
	if ev.sfn == nil {
		fn := ev.fn
		e.release(ev)
		e.executed++
		fn()
		return
	}
	e.stepShard(ev)
}

// resume hands control to p and blocks the engine until p yields.
func (e *Engine) resume(p *Process) {
	if p.dead {
		return
	}
	prev := e.current
	e.current = p
	p.resume <- struct{}{}
	<-e.parked
	e.current = prev
}

// SetTracer installs a callback receiving (time, source, event) lines
// from instrumented components (DTUs, the kernel). Tracing is off by
// default; call sites guard event-string formatting with Tracing.
// Install tracers before running: shard callbacks read the installed
// state concurrently and rely on it not changing mid-run.
func (e *Engine) SetTracer(fn func(at Time, source, event string)) { e.tracer = fn }

// Tracing reports whether a tracer is installed.
func (e *Engine) Tracing() bool { return e.tracer != nil }

// Emit delivers one trace event at the current time.
func (e *Engine) Emit(source, event string) {
	if e.tracer != nil {
		e.tracer(e.now, source, event)
	}
}
