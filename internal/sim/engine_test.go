package sim

import (
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	end := e.Run()
	if end != 30 {
		t.Fatalf("end time = %d, want 30", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestNestedSchedule(t *testing.T) {
	e := NewEngine()
	var at []Time
	e.Schedule(10, func() {
		at = append(at, e.Now())
		e.Schedule(5, func() { at = append(at, e.Now()) })
	})
	e.Run()
	if len(at) != 2 || at[0] != 10 || at[1] != 15 {
		t.Fatalf("nested schedule times = %v, want [10 15]", at)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(10, func() { ran++ })
	e.Schedule(20, func() { ran++ })
	e.Schedule(30, func() { ran++ })
	e.RunUntil(20)
	if ran != 2 {
		t.Fatalf("ran = %d, want 2", ran)
	}
	if !e.Pending() {
		t.Fatal("expected event at t=30 still pending")
	}
	if e.Now() != 20 {
		t.Fatalf("now = %d, want 20", e.Now())
	}
	e.Run()
	if ran != 3 {
		t.Fatalf("ran = %d, want 3", ran)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Fatalf("now = %d, want 100", e.Now())
	}
}

func TestProcessSleep(t *testing.T) {
	e := NewEngine()
	var wake []Time
	e.Spawn("sleeper", func(p *Process) {
		p.Sleep(100)
		wake = append(wake, p.Now())
		p.Sleep(50)
		wake = append(wake, p.Now())
	})
	e.Run()
	if len(wake) != 2 || wake[0] != 100 || wake[1] != 150 {
		t.Fatalf("wake times = %v, want [100 150]", wake)
	}
}

func TestProcessInterleaving(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("a", func(p *Process) {
		p.Sleep(10)
		order = append(order, "a10")
		p.Sleep(20) // wakes at 30
		order = append(order, "a30")
	})
	e.Spawn("b", func(p *Process) {
		p.Sleep(20)
		order = append(order, "b20")
	})
	e.Run()
	want := []string{"a10", "b20", "a30"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestJoin(t *testing.T) {
	e := NewEngine()
	var joinedAt Time
	child := e.Spawn("child", func(p *Process) { p.Sleep(42) })
	e.Spawn("parent", func(p *Process) {
		p.Join(child)
		joinedAt = p.Now()
	})
	e.Run()
	if joinedAt != 42 {
		t.Fatalf("joined at %d, want 42", joinedAt)
	}
	if !child.Dead() {
		t.Fatal("child should be dead")
	}
}

func TestJoinDeadProcess(t *testing.T) {
	e := NewEngine()
	child := e.Spawn("child", func(p *Process) {})
	var ok bool
	e.Spawn("parent", func(p *Process) {
		p.Sleep(10) // child long dead
		p.Join(child)
		ok = true
	})
	e.Run()
	if !ok {
		t.Fatal("join on dead process must not block")
	}
}

func TestLiveProcesses(t *testing.T) {
	e := NewEngine()
	sig := NewSignal(e)
	e.Spawn("blocked-forever", func(p *Process) { sig.Wait(p) })
	e.Spawn("quick", func(p *Process) {})
	e.Run()
	if got := e.LiveProcesses(); got != 1 {
		t.Fatalf("live processes = %d, want 1", got)
	}
}

func TestSignalNotifyWakesFIFO(t *testing.T) {
	e := NewEngine()
	sig := NewSignal(e)
	var order []string
	spawnWaiter := func(name string) {
		e.Spawn(name, func(p *Process) {
			sig.Wait(p)
			order = append(order, name)
		})
	}
	spawnWaiter("w1")
	spawnWaiter("w2")
	spawnWaiter("w3")
	e.Spawn("notifier", func(p *Process) {
		p.Sleep(10)
		sig.Notify()
		p.Sleep(10)
		sig.Broadcast()
	})
	e.Run()
	want := []string{"w1", "w2", "w3"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order = %v, want %v", order, want)
		}
	}
	if sig.Waiters() != 0 {
		t.Fatalf("waiters = %d, want 0", sig.Waiters())
	}
}

func TestQueueFIFO(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e)
	var got []int
	e.Spawn("recv", func(p *Process) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Recv(p))
		}
	})
	e.Spawn("send", func(p *Process) {
		p.Sleep(5)
		q.Send(1)
		q.Send(2)
		p.Sleep(5)
		q.Send(3)
	})
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestQueueMultipleReceivers(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e)
	sum := 0
	for i := 0; i < 3; i++ {
		e.Spawn("recv", func(p *Process) { sum += q.Recv(p) })
	}
	e.Spawn("send", func(p *Process) {
		p.Sleep(1)
		q.Send(1)
		q.Send(2)
		q.Send(3)
	})
	e.Run()
	if sum != 6 {
		t.Fatalf("sum = %d, want 6", sum)
	}
	if q.Len() != 0 {
		t.Fatalf("queue len = %d, want 0", q.Len())
	}
}

func TestQueueTryRecv(t *testing.T) {
	e := NewEngine()
	q := NewQueue[string](e)
	if _, ok := q.TryRecv(); ok {
		t.Fatal("TryRecv on empty queue must fail")
	}
	q.Send("x")
	v, ok := q.TryRecv()
	if !ok || v != "x" {
		t.Fatalf("TryRecv = %q,%v", v, ok)
	}
}

func TestResourceContention(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	var order []string
	use := func(name string, start, hold Time) {
		e.Spawn(name, func(p *Process) {
			p.Sleep(start)
			r.Acquire(p, 1)
			order = append(order, name+"+")
			p.Sleep(hold)
			r.Release(1)
			order = append(order, name+"-")
		})
	}
	use("a", 0, 100)
	use("b", 10, 10)
	use("c", 20, 10)
	e.Run()
	want := []string{"a+", "a-", "b+", "b-", "c+", "c-"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestResourceFIFONoOvertake(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 2)
	var order []string
	// Holder takes both units; a big request (2) arrives before a small
	// one (1). The small one must not overtake the big one.
	e.Spawn("holder", func(p *Process) {
		r.Acquire(p, 2)
		p.Sleep(100)
		r.Release(1)
		p.Sleep(100)
		r.Release(1)
	})
	e.Spawn("big", func(p *Process) {
		p.Sleep(10)
		r.Acquire(p, 2)
		order = append(order, "big")
		r.Release(2)
	})
	e.Spawn("small", func(p *Process) {
		p.Sleep(20)
		r.Acquire(p, 1)
		order = append(order, "small")
		r.Release(1)
	})
	e.Run()
	if len(order) != 2 || order[0] != "big" || order[1] != "small" {
		t.Fatalf("order = %v, want [big small]", order)
	}
}

func TestResourceUtilization(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	e.Spawn("u", func(p *Process) {
		r.Acquire(p, 1)
		p.Sleep(50)
		r.Release(1)
		p.Sleep(50)
	})
	e.Run()
	if u := r.Utilization(); u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %f, want ~0.5", u)
	}
}

func TestEventInPastPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for event in the past")
		}
	}()
	e := NewEngine()
	e.Schedule(10, func() {
		// Forge an event in the past: push directly into the queue,
		// bypassing Schedule's now-relative stamping. The engine must
		// panic when it pops it rather than rewind the clock.
		e.seq++
		e.queue.push(&event{at: 5, seq: e.seq})
	})
	e.Run()
}

// simRun runs a randomized but seed-determined scenario and returns a
// fingerprint of the final state.
func simRun(nProcs uint8, sleeps []uint16) (Time, uint64) {
	e := NewEngine()
	q := NewQueue[int](e)
	n := int(nProcs%8) + 1
	for i := 0; i < n; i++ {
		i := i
		e.Spawn("p", func(p *Process) {
			for j, s := range sleeps {
				if j%n != i {
					continue
				}
				p.Sleep(Time(s))
				q.Send(j)
				if _, ok := q.TryRecv(); !ok {
					p.Yield()
				}
			}
		})
	}
	end := e.Run()
	return end, e.ExecutedEvents()
}

func TestDeterminismProperty(t *testing.T) {
	f := func(nProcs uint8, sleeps []uint16) bool {
		t1, e1 := simRun(nProcs, sleeps)
		t2, e2 := simRun(nProcs, sleeps)
		return t1 == t2 && e1 == e2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSleepZeroRunsAfterQueuedEvents(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("a", func(p *Process) {
		p.Yield()
		order = append(order, "a")
	})
	e.Spawn("b", func(p *Process) {
		order = append(order, "b")
	})
	e.Run()
	// a yields at t=0 behind b's initial event, so b runs first.
	if len(order) != 2 || order[0] != "b" || order[1] != "a" {
		t.Fatalf("order = %v, want [b a]", order)
	}
}

func TestTracer(t *testing.T) {
	e := NewEngine()
	if e.Tracing() {
		t.Fatal("tracing on by default")
	}
	e.Emit("x", "dropped") // no tracer: no-op
	var got []string
	e.SetTracer(func(at Time, source, event string) {
		got = append(got, source+":"+event)
	})
	if !e.Tracing() {
		t.Fatal("tracer not installed")
	}
	e.Spawn("p", func(p *Process) {
		p.Sleep(5)
		e.Emit("p", "woke")
	})
	e.Run()
	if len(got) != 1 || got[0] != "p:woke" {
		t.Fatalf("trace = %v", got)
	}
}

func TestResourceAvgWaitAndQueueLen(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	e.Spawn("holder", func(p *Process) {
		r.Acquire(p, 1)
		if r.QueueLen() != 0 {
			t.Error("queue should be empty at acquire time")
		}
		p.Sleep(100)
		r.Release(1)
	})
	e.Spawn("waiter", func(p *Process) {
		p.Sleep(10)
		r.Acquire(p, 1) // waits 90 cycles
		r.Release(1)
	})
	e.Run()
	// Two grants; one waited 90 cycles -> mean 45.
	if w := r.AvgWait(); w < 44 || w > 46 {
		t.Fatalf("avg wait = %f, want ~45", w)
	}
}

func TestDeadlockDetectionAndSchedulePanic(t *testing.T) {
	e := NewEngine()
	sig := NewSignal(e)
	e.Spawn("stuck", func(p *Process) { sig.Wait(p) })
	e.Run()
	if !e.Deadlocked() {
		t.Fatal("engine with a forever-parked process must report Deadlocked")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule on a deadlocked engine must panic")
		}
	}()
	e.Schedule(1, func() {})
}

func TestCleanRunStaysSchedulable(t *testing.T) {
	e := NewEngine()
	e.Spawn("worker", func(p *Process) { p.Sleep(5) })
	e.Run()
	if e.Deadlocked() {
		t.Fatal("run with no live processes must not report a deadlock")
	}
	ran := false
	e.Schedule(1, func() { ran = true })
	e.Run()
	if !ran {
		t.Fatal("engine must stay usable after a clean run")
	}
}
