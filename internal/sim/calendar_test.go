package sim

import (
	"math/rand"
	"testing"
)

// drainCompare pops both queues empty, asserting identical (at, seq)
// order, and returns the number of events drained.
func drainCompare(t *testing.T, cal, hp eventQueue) int {
	t.Helper()
	n := 0
	for {
		a, b := cal.pop(), hp.pop()
		if (a == nil) != (b == nil) {
			t.Fatalf("drain %d: cal nil=%v heap nil=%v", n, a == nil, b == nil)
		}
		if a == nil {
			return n
		}
		if a.at != b.at || a.seq != b.seq {
			t.Fatalf("drain %d: cal (%d,%d) != heap (%d,%d)", n, a.at, a.seq, b.at, b.seq)
		}
		n++
	}
}

// TestCalendarMatchesHeap drives calendar and heap queues with an
// identical deterministic push/pop stream mixing same-cycle ties,
// near-future, overflow-horizon, and far-future delays, plus idle gaps
// that exercise the overflow fast-forward path.
func TestCalendarMatchesHeap(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cal, hp := newCalendarQueue(), &heapQueue{}
		var now Time
		var seq uint64
		live := 0
		for op := 0; op < 5000; op++ {
			if rng.Intn(3) != 0 || live == 0 {
				var d Time
				switch rng.Intn(5) {
				case 0:
					d = 0 // same-cycle tie
				case 1:
					d = Time(rng.Intn(16))
				case 2:
					d = Time(rng.Intn(wheelSize)) // inside the wheel
				case 3:
					d = Time(wheelSize - 2 + rng.Intn(8)) // straddle the horizon
				case 4:
					d = Time(rng.Intn(20 * wheelSize)) // deep overflow
				}
				seq++
				cal.push(&event{at: now + d, seq: seq})
				hp.push(&event{at: now + d, seq: seq})
				live++
			} else {
				a, b := cal.pop(), hp.pop()
				if a.at != b.at || a.seq != b.seq {
					t.Fatalf("seed %d op %d: cal (%d,%d) != heap (%d,%d)",
						seed, op, a.at, a.seq, b.at, b.seq)
				}
				now = a.at
				live--
			}
			if cal.len() != hp.len() {
				t.Fatalf("seed %d op %d: len %d != %d", seed, op, cal.len(), hp.len())
			}
			pa, pb := cal.peek(), hp.peek()
			if (pa == nil) != (pb == nil) || (pa != nil && (pa.at != pb.at || pa.seq != pb.seq)) {
				t.Fatalf("seed %d op %d: peek mismatch", seed, op)
			}
		}
		drainCompare(t, cal, hp)
	}
}

// TestCalendarPeekDoesNotCommitCursor is the regression test for the
// subtle cursor bug: peeking a far event must not advance the cursor,
// because between engine run calls the host may legally schedule
// earlier than the peeked time (RunUntil bumps the clock past the last
// executed event) and those pushes must still sort first.
func TestCalendarPeekDoesNotCommitCursor(t *testing.T) {
	c := newCalendarQueue()
	c.push(&event{at: 50, seq: 1})
	if p := c.peek(); p.at != 50 {
		t.Fatalf("peek = %d, want 50", p.at)
	}
	// Host schedules earlier than the peeked event (legal: nothing at
	// 40 has been popped yet).
	c.push(&event{at: 40, seq: 2})
	if p := c.pop(); p.at != 40 || p.seq != 2 {
		t.Fatalf("pop = (%d,%d), want (40,2)", p.at, p.seq)
	}
	if p := c.pop(); p.at != 50 || p.seq != 1 {
		t.Fatalf("pop = (%d,%d), want (50,1)", p.at, p.seq)
	}
}

// TestCalendarOverflowMigrationOrder: overflow events destined for one
// cycle must land in its bucket in seq order, ahead of any later direct
// pushes to the same cycle.
func TestCalendarOverflowMigrationOrder(t *testing.T) {
	c := newCalendarQueue()
	far := Time(3 * wheelSize)
	c.push(&event{at: far, seq: 1}) // overflow
	c.push(&event{at: far, seq: 2}) // overflow, same cycle
	c.push(&event{at: 10, seq: 3})
	if p := c.pop(); p.seq != 3 {
		t.Fatalf("pop seq = %d, want 3", p.seq)
	}
	// Cursor at 10: far is still beyond the horizon. Fast-forward pop
	// migrates both, then a direct push to the same cycle must append
	// after them.
	if p := c.peek(); p.at != far || p.seq != 1 {
		t.Fatalf("peek = (%d,%d), want (%d,1)", p.at, p.seq, far)
	}
	got := []*event{c.pop()}
	c.push(&event{at: far, seq: 4}) // now inside the window: direct push
	got = append(got, c.pop(), c.pop())
	for i, want := range []uint64{1, 2, 4} {
		if got[i].seq != want {
			t.Fatalf("pop %d: seq = %d, want %d", i, got[i].seq, want)
		}
	}
	if c.len() != 0 {
		t.Fatalf("len = %d, want 0", c.len())
	}
}

// TestCalendarBucketReuse drains and refills the same cycle buckets
// repeatedly (modeling a hot simulation loop) and checks the backing
// arrays behave FIFO across reuse.
func TestCalendarBucketReuse(t *testing.T) {
	c := newCalendarQueue()
	var seq uint64
	var now Time
	for round := 0; round < 3*wheelSize; round++ {
		for i := 0; i < 3; i++ {
			seq++
			c.push(&event{at: now + 1, seq: seq})
		}
		base := seq - 2
		for i := 0; i < 3; i++ {
			p := c.pop()
			if p.seq != base+uint64(i) {
				t.Fatalf("round %d pop %d: seq = %d, want %d", round, i, p.seq, base+uint64(i))
			}
			now = p.at
		}
	}
}

// TestCalendarEmpty covers the nil returns.
func TestCalendarEmpty(t *testing.T) {
	c := newCalendarQueue()
	if c.pop() != nil || c.peek() != nil || c.len() != 0 {
		t.Fatal("empty queue must return nil/0")
	}
	c.push(&event{at: 7, seq: 1})
	c.pop()
	if c.pop() != nil || c.peek() != nil {
		t.Fatal("drained queue must return nil")
	}
}

// FuzzEventQueue cross-checks calendar vs heap pop order on random
// (delay, op) streams — same-cycle tie-break stability included, since
// delay 0 is a reachable case — and, per stream, that Schedule after a
// deadlocked Run panics at engine level.
func FuzzEventQueue(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 200, 255, 0, 0, 9})
	f.Add([]byte{255, 254, 253, 7, 7, 7})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		cal, hp := newCalendarQueue(), &heapQueue{}
		var now Time
		var seq uint64
		live := 0
		for i := 0; i < len(data); i++ {
			b := data[i]
			if b < 160 || live == 0 {
				// Push: spread the byte across the interesting delay
				// bands (ties, wheel, horizon, deep overflow).
				d := Time(b)
				switch b % 4 {
				case 1:
					d = Time(b) * 16
				case 2:
					d = Time(wheelSize-4) + Time(b%9)
				case 3:
					d = Time(b) * 97 * 41
				}
				seq++
				cal.push(&event{at: now + d, seq: seq})
				hp.push(&event{at: now + d, seq: seq})
				live++
			} else {
				a, bb := cal.pop(), hp.pop()
				if a.at != bb.at || a.seq != bb.seq {
					t.Fatalf("op %d: cal (%d,%d) != heap (%d,%d)", i, a.at, a.seq, bb.at, bb.seq)
				}
				now = a.at
				live--
			}
			pa, pb := cal.peek(), hp.peek()
			if (pa == nil) != (pb == nil) || (pa != nil && (pa.at != pb.at || pa.seq != pb.seq)) {
				t.Fatalf("op %d: peek mismatch", i)
			}
		}
		for {
			a, b := cal.pop(), hp.pop()
			if (a == nil) != (b == nil) {
				t.Fatal("drain length mismatch")
			}
			if a == nil {
				break
			}
			if a.at != b.at || a.seq != b.seq {
				t.Fatalf("drain: cal (%d,%d) != heap (%d,%d)", a.at, a.seq, b.at, b.seq)
			}
		}

		// Schedule-after-deadlock must panic regardless of queue kind.
		for _, q := range []QueueKind{QueueCalendar, QueueHeap} {
			e := NewEngineWith(Config{Queue: q})
			e.Spawn("stuck", func(p *Process) { NewSignal(e).Wait(p) })
			e.Run()
			if !e.Deadlocked() {
				t.Fatal("expected deadlock")
			}
			func() {
				defer func() {
					if recover() == nil {
						t.Fatalf("queue %d: Schedule after deadlock must panic", q)
					}
				}()
				e.Schedule(0, func() {})
			}()
		}
	})
}
