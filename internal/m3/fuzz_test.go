package m3_test

import (
	"math/rand"
	"testing"

	"repro/internal/kif"
	"repro/internal/m3"
)

// TestKernelSurvivesGarbageSyscalls injects random bytes into the
// syscall channel. The kernel must answer every garbage message with
// an error (or ignore it) and keep serving: after the storm, a valid
// null syscall still works. This is the failure-injection counterpart
// of the protocol tests.
func TestKernelSurvivesGarbageSyscalls(t *testing.T) {
	s := newSystem(t, 3)
	rng := rand.New(rand.NewSource(42))
	s.app(t, "fuzzer", func(env *m3.Env) {
		d := env.DTU()
		for i := 0; i < 200; i++ {
			n := rng.Intn(96)
			payload := make([]byte, n)
			rng.Read(payload)
			if err := d.Send(env.P(), kif.SyscallEP, payload, kif.SysReplyEP, 0); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
			msg, _ := d.WaitMsg(env.P(), kif.SysReplyEP)
			d.Ack(kif.SysReplyEP, msg)
		}
		// The kernel is still alive and sane.
		if err := env.Noop(); err != nil {
			t.Errorf("noop after fuzzing: %v", err)
		}
	})
	s.eng.Run()
}

// TestKernelSurvivesTruncatedOpcodes sends messages shorter than one
// opcode.
func TestKernelSurvivesTruncatedOpcodes(t *testing.T) {
	s := newSystem(t, 3)
	s.app(t, "trunc", func(env *m3.Env) {
		d := env.DTU()
		for _, n := range []int{0, 1, 3, 7} {
			if err := d.Send(env.P(), kif.SyscallEP, make([]byte, n), kif.SysReplyEP, 0); err != nil {
				t.Error(err)
				return
			}
			msg, _ := d.WaitMsg(env.P(), kif.SysReplyEP)
			is := kif.NewIStream(msg.Data)
			if e := is.ErrCode(); e == kif.OK {
				t.Errorf("truncated syscall (%d bytes) succeeded", n)
			}
			d.Ack(kif.SysReplyEP, msg)
		}
		if err := env.Noop(); err != nil {
			t.Error(err)
		}
	})
	s.eng.Run()
}

// TestKernelSurvivesValidOpcodeGarbageArgs sends every known opcode
// followed by random argument bytes.
func TestKernelSurvivesValidOpcodeGarbageArgs(t *testing.T) {
	s := newSystem(t, 3)
	rng := rand.New(rand.NewSource(7))
	ops := []kif.SyscallOp{
		kif.SysCreateVPE, kif.SysVPEStart, kif.SysVPEWait, kif.SysReqMem,
		kif.SysDeriveMem, kif.SysCreateRGate, kif.SysCreateSGate,
		kif.SysActivate, kif.SysCreateSrv, kif.SysOpenSess,
		kif.SysExchangeSess, kif.SysDelegate, kif.SysObtain, kif.SysRevoke,
		kif.SyscallOp(777), // unknown opcode
	}
	s.app(t, "argfuzz", func(env *m3.Env) {
		d := env.DTU()
		for round := 0; round < 8; round++ {
			for _, op := range ops {
				var o kif.OStream
				o.Op(op)
				garbage := make([]byte, rng.Intn(80))
				rng.Read(garbage)
				payload := append(o.Bytes(), garbage...)
				if err := d.Send(env.P(), kif.SyscallEP, payload, kif.SysReplyEP, 0); err != nil {
					t.Error(err)
					return
				}
				msg, _ := d.WaitMsg(env.P(), kif.SysReplyEP)
				d.Ack(kif.SysReplyEP, msg)
			}
		}
		if err := env.Noop(); err != nil {
			t.Errorf("noop after arg fuzzing: %v", err)
		}
		// And the system still boots VPEs and serves files.
		if _, err := env.NewVPE("probe", ""); err == nil {
			t.Log("vpe creation still works")
		}
	})
	s.eng.Run()
}
