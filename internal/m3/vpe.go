package m3

import (
	"fmt"

	"repro/internal/kif"
	"repro/internal/tile"
)

// progRegistry maps executable paths to program entry points: the
// stand-in for compiled binaries. Exec still transfers the file's
// bytes to the target PE for timing; the registry supplies the Go
// function to run.
var progRegistry = map[string]func(*Env){}

// RegisterProgram installs an executable under path. Typically done
// from init functions of example/workload packages.
func RegisterProgram(path string, main func(*Env)) {
	progRegistry[path] = main
}

// LookupProgram returns a registered program entry point.
func LookupProgram(path string) (func(*Env), bool) {
	f, ok := progRegistry[path]
	return f, ok
}

// ChildVPE is the application-side handle for a created VPE: a VPE
// capability, a memory gate for the target PE's local memory (used for
// application loading), and the PE id for information.
type ChildVPE struct {
	env    *Env
	Sel    kif.CapSel
	MemSel kif.CapSel
	VPEID  uint64
	PEID   int

	mem     *MemGate
	started bool
}

// NewVPE asks the kernel for an unused PE of the given type ("" for
// any) and returns the handle. The requester receives a memory gate
// providing complete control of the PE (§4.5.5).
func (e *Env) NewVPE(name string, peType tile.CoreType) (*ChildVPE, error) {
	vpeSel, memSel := e.AllocSel(), e.AllocSel()
	var o kif.OStream
	o.Op(kif.SysCreateVPE).Sel(vpeSel).Sel(memSel).Str(name).Str(string(peType))
	is, err := e.Syscall(&o)
	if err != nil {
		return nil, err
	}
	vpeID := is.U64()
	peID := is.U64()
	return &ChildVPE{
		env: e, Sel: vpeSel, MemSel: memSel, VPEID: vpeID, PEID: int(peID),
		mem: e.MemGateAt(memSel, 64<<10),
	}, nil
}

// Mem returns the memory gate for the child PE's local memory.
func (v *ChildVPE) Mem() *MemGate { return v.mem }

// Run clones the calling program onto the child PE and executes fn
// there, like a fork followed by running a lambda (§4.5.5): libm3
// transfers code, static data, the used heap, and the stack to the
// same addresses in the other PE, then the kernel starts it. The
// function's captures travel with the image; like the paper's C++
// lambdas, the child must not touch the parent's memory directly but
// communicate through gates.
func (v *ChildVPE) Run(fn func(child *Env)) error {
	if err := v.loadImage(CloneImageSize); err != nil {
		return err
	}
	return v.start(fn)
}

// Exec loads the executable at path from the filesystem onto the PE
// and runs it (§4.5.5). The file's bytes are read through the caller's
// VFS and written to the child PE, so exec pays for the real transfer.
func (v *ChildVPE) Exec(path string, args ...string) error {
	prog, ok := LookupProgram(path)
	if !ok {
		return fmt.Errorf("m3: exec %s: no such program", path)
	}
	f, err := v.env.VFS.Open(path, OpenRead)
	if err != nil {
		return fmt.Errorf("m3: exec %s: %w", path, err)
	}
	size := 0
	buf := make([]byte, 4096)
	pos := 0
	for {
		n, rerr := f.Read(buf)
		if n > 0 {
			if werr := v.mem.Write(buf[:n], pos); werr != nil {
				_ = f.Close()
				return werr
			}
			pos += n
			size += n
		}
		if rerr != nil {
			break
		}
	}
	if cerr := f.Close(); cerr != nil {
		return cerr
	}
	if size == 0 {
		return fmt.Errorf("m3: exec %s: empty executable", path)
	}
	return v.start(func(child *Env) {
		child.Args = args
		prog(child)
	})
}

// loadImage transfers an image of the given size to the child PE in
// SPM-buffer-sized chunks.
func (v *ChildVPE) loadImage(size int) error {
	chunk := make([]byte, 4096)
	for off := 0; off < size; off += len(chunk) {
		n := len(chunk)
		if size-off < n {
			n = size - off
		}
		if err := v.mem.Write(chunk[:n], off); err != nil {
			return err
		}
	}
	return nil
}

// start registers the wrapped program and issues the vpestart syscall.
func (v *ChildVPE) start(fn func(child *Env)) error {
	if v.started {
		return fmt.Errorf("m3: VPE already started")
	}
	kern := v.env.Kern
	progID := kern.Progs.Register(func(ctx *tile.Ctx) {
		child := NewEnv(ctx, kern)
		fn(child)
		child.Exit(child.exitCode)
	})
	var o kif.OStream
	o.Op(kif.SysVPEStart).Sel(v.Sel).U64(progID)
	if _, err := v.env.Syscall(&o); err != nil {
		return err
	}
	v.started = true
	return nil
}

// Wait blocks until the child exited and returns its exit code
// (§4.5.5). The kernel defers the reply until then.
func (v *ChildVPE) Wait() (int64, error) {
	var o kif.OStream
	o.Op(kif.SysVPEWait).Sel(v.Sel)
	is, err := v.env.Syscall(&o)
	if err != nil {
		return 0, err
	}
	return is.I64(), nil
}

// Delegate grants count of the caller's capabilities starting at mine
// to the child, at the child's selectors starting at theirs.
func (v *ChildVPE) Delegate(mine, theirs kif.CapSel, count uint64) error {
	return v.env.Delegate(v.Sel, mine, theirs, count)
}

// Obtain pulls count capabilities from the child's table starting at
// theirs into the caller's at mine.
func (v *ChildVPE) Obtain(mine, theirs kif.CapSel, count uint64) error {
	return v.env.Obtain(v.Sel, mine, theirs, count)
}

// Revoke revokes the VPE capability, resetting the PE and making it
// available again.
func (v *ChildVPE) Revoke() error { return v.env.Revoke(v.Sel) }

// SetExit stores the code the wrapper reports to the kernel when the
// program function returns.
func (e *Env) SetExit(code int64) { e.exitCode = code }
