package m3

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/kif"
)

// PipeFS integrates pipes into the VFS (§4.5.8): mounted next to m3fs,
// it makes it transparent for applications whether they access a pipe
// or a file. Pipe ends appear as files under the mount point; opening
// a name with OpenRead yields the reading end, with OpenWrite the
// writing end.
//
// A pipe is created by the reading side (which must own the receive
// gate). For cross-VPE pipes, Export hands out the two capability
// selectors the writer needs; the writer's environment imports them
// under the same name into its own PipeFS.
type PipeFS struct {
	env   *Env
	pipes map[string]*fsPipe
}

type fsPipe struct {
	reader *PipeReader // set on the creating (reading) side
	writer *PipeWriter // set on the importing (writing) side

	// Same-VPE pipes are shortcut through a local buffer: both ends
	// belong to one single-threaded program, so there is no isolation
	// boundary to cross and no second core to synchronize with.
	local    bool
	buf      []byte
	localEOF bool
	size     int

	readerOpen, writerOpen bool
}

// NewPipeFS returns an empty pipe filesystem for env.
func NewPipeFS(env *Env) *PipeFS {
	return &PipeFS{env: env, pipes: make(map[string]*fsPipe)}
}

var _ FileSystem = (*PipeFS)(nil)

// Create makes a named pipe of the given ringbuffer size (0 =
// DefaultPipeSize). The creating environment owns the reading end.
func (p *PipeFS) Create(name string, size int) error {
	name = cleanPath(name)
	if _, exists := p.pipes[name]; exists {
		return fmt.Errorf("m3: pipe %s: %w", name, errExists)
	}
	pr, err := NewPipe(p.env, size)
	if err != nil {
		return err
	}
	p.pipes[name] = &fsPipe{reader: pr}
	return nil
}

// Export returns the writer capabilities (send gate, ringbuffer write
// gate) and size of a created pipe, for delegation to the writer VPE.
func (p *PipeFS) Export(name string) (sgate, wmem kif.CapSel, size int, err error) {
	fp, ok := p.pipes[cleanPath(name)]
	if !ok || fp.reader == nil {
		return kif.InvalidSel, kif.InvalidSel, 0, fmt.Errorf("m3: pipe %s: not created here", name)
	}
	sg, wm := fp.reader.WriterSels()
	return sg, wm, fp.reader.Size(), nil
}

// Import registers the writing end of a pipe whose capabilities were
// delegated from the reading side.
func (p *PipeFS) Import(name string, sgate, wmem kif.CapSel, size int) error {
	name = cleanPath(name)
	if _, exists := p.pipes[name]; exists {
		return fmt.Errorf("m3: pipe %s: %w", name, errExists)
	}
	p.pipes[name] = &fsPipe{writer: OpenPipeWriter(p.env, sgate, wmem, size)}
	return nil
}

var errExists = errors.New("already exists")

// Open returns one end of the named pipe as a File.
func (p *PipeFS) Open(path string, flags OpenFlags) (File, error) {
	fp, ok := p.pipes[cleanPath(path)]
	if !ok {
		return nil, fmt.Errorf("m3: pipe %s: no such pipe", path)
	}
	switch {
	case flags&OpenRead != 0 && flags&OpenWrite == 0:
		if fp.reader == nil {
			return nil, fmt.Errorf("m3: pipe %s: reading end lives in the creating VPE", path)
		}
		if fp.readerOpen {
			return nil, fmt.Errorf("m3: pipe %s: reading end already open", path)
		}
		fp.readerOpen = true
		return &pipeReadFile{fp: fp}, nil
	case flags&OpenWrite != 0 && flags&OpenRead == 0:
		if fp.writer == nil && fp.reader != nil {
			// Same-VPE pipe: both ends in one program; shortcut it.
			fp.local = true
			fp.size = fp.reader.Size()
		}
		if fp.writer == nil && !fp.local {
			return nil, fmt.Errorf("m3: pipe %s: writing end not imported", path)
		}
		if fp.writerOpen {
			return nil, fmt.Errorf("m3: pipe %s: writing end already open", path)
		}
		fp.writerOpen = true
		return &pipeWriteFile{fp: fp}, nil
	default:
		return nil, fmt.Errorf("m3: pipe %s: exactly one of read/write required", path)
	}
}

// Stat reports a pipe as a zero-sized special file.
func (p *PipeFS) Stat(path string) (Stat, error) {
	if _, ok := p.pipes[cleanPath(path)]; !ok {
		return Stat{}, fmt.Errorf("m3: pipe %s: no such pipe", path)
	}
	return Stat{Size: 0, IsDir: false}, nil
}

// Mkdir is not supported on the pipe filesystem.
func (p *PipeFS) Mkdir(path string) error {
	return errors.New("m3: pipefs: mkdir unsupported")
}

// Unlink removes a pipe name.
func (p *PipeFS) Unlink(path string) error {
	name := cleanPath(path)
	if _, ok := p.pipes[name]; !ok {
		return fmt.Errorf("m3: pipe %s: no such pipe", path)
	}
	delete(p.pipes, name)
	return nil
}

// ReadDir lists the pipe names.
func (p *PipeFS) ReadDir(path string) ([]DirEntry, error) {
	if cleanPath(path) != "/" {
		return nil, errors.New("m3: pipefs: flat namespace")
	}
	// Sorted: directory listings are user-visible, so their order must
	// not leak map iteration order into the simulation.
	names := make([]string, 0, len(p.pipes))
	for name := range p.pipes {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]DirEntry, 0, len(names))
	for _, name := range names {
		out = append(out, DirEntry{Name: name[1:], IsDir: false})
	}
	return out, nil
}

// pipeReadFile adapts the reading end to File.
type pipeReadFile struct {
	fp     *fsPipe
	closed bool
}

func (f *pipeReadFile) Read(buf []byte) (int, error) {
	if f.closed {
		return 0, errors.New("m3: read on closed pipe end")
	}
	if f.fp.local {
		return f.fp.localRead(buf)
	}
	return f.fp.reader.Read(buf)
}

func (f *pipeReadFile) Write([]byte) (int, error) { return 0, errors.New("m3: pipe open read-only") }

func (f *pipeReadFile) Seek(int64, int) (int64, error) { return 0, errors.New("m3: pipes cannot seek") }

func (f *pipeReadFile) Close() error {
	f.closed = true
	f.fp.readerOpen = false
	return nil
}

func (f *pipeReadFile) Stat() (Stat, error) { return Stat{}, nil }

// pipeWriteFile adapts the writing end to File.
type pipeWriteFile struct {
	fp     *fsPipe
	closed bool
}

func (f *pipeWriteFile) Read([]byte) (int, error) { return 0, errors.New("m3: pipe open write-only") }

func (f *pipeWriteFile) Write(buf []byte) (int, error) {
	if f.closed {
		return 0, io.ErrClosedPipe
	}
	if f.fp.local {
		return f.fp.localWrite(buf)
	}
	return f.fp.writer.Write(buf)
}

func (f *pipeWriteFile) Seek(int64, int) (int64, error) {
	return 0, errors.New("m3: pipes cannot seek")
}

func (f *pipeWriteFile) Close() error {
	if f.closed {
		return nil
	}
	f.closed = true
	f.fp.writerOpen = false
	if f.fp.local {
		f.fp.localEOF = true
		return nil
	}
	return f.fp.writer.Close()
}

func (f *pipeWriteFile) Stat() (Stat, error) { return Stat{}, nil }

// localWrite appends to the same-VPE shortcut buffer, bounded by the
// pipe size (a single-threaded program cannot drain concurrently).
func (fp *fsPipe) localWrite(buf []byte) (int, error) {
	if fp.localEOF {
		return 0, io.ErrClosedPipe
	}
	if len(fp.buf)+len(buf) > fp.size {
		return 0, fmt.Errorf("m3: local pipe full (%d of %d bytes): drain before writing more", len(fp.buf), fp.size)
	}
	fp.buf = append(fp.buf, buf...)
	return len(buf), nil
}

// localRead consumes from the shortcut buffer.
func (fp *fsPipe) localRead(buf []byte) (int, error) {
	if len(fp.buf) == 0 {
		if fp.localEOF {
			return 0, io.EOF
		}
		return 0, errors.New("m3: local pipe empty and writer still open (single-threaded VPE would block forever)")
	}
	n := copy(buf, fp.buf)
	fp.buf = fp.buf[n:]
	return n, nil
}
