package m3_test

import (
	"testing"

	"repro/internal/m3"
	"repro/internal/sim"
)

func TestTimerInterruptsAsMessages(t *testing.T) {
	s := newSystem(t, 4)
	var ticks []m3.TimerTick
	var gaps []sim.Time
	s.app(t, "handler", func(env *m3.Env) {
		ig, devSG, err := m3.NewInterruptGate(env, 4)
		if err != nil {
			t.Error(err)
			return
		}
		dev, err := env.NewVPE("timer", "")
		if err != nil {
			t.Error(err)
			return
		}
		if err := dev.Delegate(devSG, 400, 1); err != nil {
			t.Error(err)
			return
		}
		if err := dev.Run(m3.TimerDevice(400, 10000, 5)); err != nil {
			t.Error(err)
			return
		}
		var last sim.Time
		for i := 0; i < 5; i++ {
			tick, err := ig.Wait()
			if err != nil {
				t.Error(err)
				return
			}
			ticks = append(ticks, tick)
			if last != 0 {
				gaps = append(gaps, env.Ctx.Now()-last)
			}
			last = env.Ctx.Now()
		}
		if _, err := dev.Wait(); err != nil {
			t.Error(err)
		}
	})
	s.eng.Run()
	if len(ticks) != 5 {
		t.Fatalf("ticks = %d, want 5", len(ticks))
	}
	for i, tick := range ticks {
		if tick.Seq != uint64(i) {
			t.Fatalf("tick %d has seq %d", i, tick.Seq)
		}
	}
	// The inter-arrival time equals the timer interval.
	for _, g := range gaps {
		if g < 9900 || g > 10200 {
			t.Fatalf("tick gap = %d cycles, want ~10000", g)
		}
	}
}

func TestInterruptStormDropsNotBlocks(t *testing.T) {
	s := newSystem(t, 4)
	var received int
	var deviceDone sim.Time
	s.app(t, "handler", func(env *m3.Env) {
		// Only 2 credits/slots and a very fast timer: most ticks are
		// coalesced away while the handler sleeps.
		ig, devSG, err := m3.NewInterruptGate(env, 2)
		if err != nil {
			t.Error(err)
			return
		}
		dev, err := env.NewVPE("timer", "")
		if err != nil {
			t.Error(err)
			return
		}
		if err := dev.Delegate(devSG, 400, 1); err != nil {
			t.Error(err)
			return
		}
		if err := dev.Run(m3.TimerDevice(400, 50, 100)); err != nil {
			t.Error(err)
			return
		}
		// Sleep through the storm, then drain what is pending.
		env.P().Sleep(100 * 50 * 2)
		for {
			if _, ok := ig.TryWait(); !ok {
				break
			}
			received++
		}
		if _, err := dev.Wait(); err != nil {
			t.Error(err)
		}
		deviceDone = env.Ctx.Now()
	})
	s.eng.Run()
	if received == 0 || received > 2 {
		t.Fatalf("received %d pending interrupts, want 1..2 (rest coalesced)", received)
	}
	if deviceDone == 0 {
		t.Fatal("device blocked on the slow handler instead of dropping ticks")
	}
}

func TestInterruptInterposition(t *testing.T) {
	s := newSystem(t, 5)
	var observed []uint64
	var final []uint64
	s.app(t, "handler", func(env *m3.Env) {
		// Final handler gate.
		ig, proxySG, err := m3.NewInterruptGate(env, 4)
		if err != nil {
			t.Error(err)
			return
		}
		// Proxy VPE: owns its own gate, forwards to the handler.
		proxy, err := env.NewVPE("proxy", "")
		if err != nil {
			t.Error(err)
			return
		}
		if err := proxy.Delegate(proxySG, 401, 1); err != nil {
			t.Error(err)
			return
		}
		if err := proxy.Run(func(penv *m3.Env) {
			pig, devSG, err := m3.NewInterruptGate(penv, 4)
			if err != nil {
				penv.SetExit(1)
				return
			}
			// The proxy hands the device gate back to the parent via
			// fixed selectors; the parent obtains it and passes it to
			// the device. Simpler here: the proxy starts the device
			// itself (it received no VPE caps, so the parent starts
			// it; instead the proxy exposes its device gate).
			// Deterministic selector order: rgate=1, sgate=2.
			_ = devSG
			if err := m3.InterruptProxy(penv, pig, 401, 3, func(t m3.TimerTick) {
				observed = append(observed, t.Seq)
			}); err != nil {
				penv.SetExit(1)
			}
		}); err != nil {
			t.Error(err)
			return
		}
		// Obtain the proxy's device-facing send gate (selector 2 in
		// the proxy's deterministic allocation order).
		devSG := env.AllocSel()
		for {
			if err := proxy.Obtain(devSG, 2, 1); err == nil {
				break
			}
			env.P().Sleep(500)
		}
		dev, err := env.NewVPE("timer", "")
		if err != nil {
			t.Error(err)
			return
		}
		if err := dev.Delegate(devSG, 400, 1); err != nil {
			t.Error(err)
			return
		}
		if err := dev.Run(m3.TimerDevice(400, 5000, 3)); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 3; i++ {
			tick, err := ig.Wait()
			if err != nil {
				t.Error(err)
				return
			}
			final = append(final, tick.Seq)
		}
		if _, err := dev.Wait(); err != nil {
			t.Error(err)
		}
		if code, err := proxy.Wait(); err != nil || code != 0 {
			t.Errorf("proxy exit = %d, %v", code, err)
		}
	})
	s.eng.Run()
	if len(observed) != 3 || len(final) != 3 {
		t.Fatalf("observed %d, final %d, want 3 each", len(observed), len(final))
	}
	for i := 0; i < 3; i++ {
		if observed[i] != uint64(i) || final[i] != uint64(i) {
			t.Fatalf("interposition order broken: %v / %v", observed, final)
		}
	}
}
