package m3

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/sim"
)

// OpenFlags controls Open behaviour.
type OpenFlags uint32

// Open flags.
const (
	OpenRead OpenFlags = 1 << iota
	OpenWrite
	OpenCreate
	OpenTrunc
	OpenAppend
	OpenRW = OpenRead | OpenWrite
)

// Stat describes a file or directory.
type Stat struct {
	Size    int64
	IsDir   bool
	Ino     uint64
	Extents int
	// Links is the hard-link count (0 when the filesystem does not
	// track links).
	Links int
}

// DirEntry is one directory entry.
type DirEntry struct {
	Name  string
	IsDir bool
}

// File is an open file handle. Read and Write return io.EOF at end of
// file like the standard library.
type File interface {
	Read(buf []byte) (int, error)
	Write(buf []byte) (int, error)
	Seek(off int64, whence int) (int64, error)
	Close() error
	Stat() (Stat, error)
}

// FileSystem is the interface mounted into the VFS; m3fs's client
// implements it, as does the pipe filesystem.
type FileSystem interface {
	Open(path string, flags OpenFlags) (File, error)
	Stat(path string) (Stat, error)
	Mkdir(path string) error
	Unlink(path string) error
	ReadDir(path string) ([]DirEntry, error)
}

// LinkerFS is implemented by filesystems that support hard links and
// renames (m3fs does; the pipe filesystem does not).
type LinkerFS interface {
	Link(oldPath, newPath string) error
	Rename(oldPath, newPath string) error
}

// ErrNotMounted is returned for paths outside every mount point.
var ErrNotMounted = errors.New("m3: no filesystem mounted for path")

// VFS is libm3's virtual filesystem: a mount table that forwards
// POSIX-like operations to mounted filesystems (§4.5.8). It makes it
// transparent for applications whether they access a pipe or a file.
type VFS struct {
	env    *Env
	mounts []mount
}

type mount struct {
	prefix string
	fs     FileSystem
}

// NewVFS returns an empty mount table.
func NewVFS(e *Env) *VFS { return &VFS{env: e} }

// Mount attaches fs at prefix (e.g. "/"). Longest prefix wins on
// resolution.
func (v *VFS) Mount(prefix string, fs FileSystem) error {
	prefix = cleanPath(prefix)
	for _, m := range v.mounts {
		if m.prefix == prefix {
			return fmt.Errorf("m3: %s already mounted", prefix)
		}
	}
	v.mounts = append(v.mounts, mount{prefix: prefix, fs: fs})
	return nil
}

// resolve finds the filesystem responsible for path and rewrites the
// path relative to the mount point.
func (v *VFS) resolve(path string) (FileSystem, string, error) {
	path = cleanPath(path)
	v.env.Ctx.Compute(CostVFSComponent * sim.Time(countComponents(path)))
	best := -1
	for i, m := range v.mounts {
		if strings.HasPrefix(path, m.prefix) || m.prefix == "/" {
			if best < 0 || len(m.prefix) > len(v.mounts[best].prefix) {
				best = i
			}
		}
	}
	if best < 0 {
		return nil, "", fmt.Errorf("%w: %s", ErrNotMounted, path)
	}
	rel := strings.TrimPrefix(path, v.mounts[best].prefix)
	if !strings.HasPrefix(rel, "/") {
		rel = "/" + rel
	}
	return v.mounts[best].fs, rel, nil
}

// Open opens the file at path.
func (v *VFS) Open(path string, flags OpenFlags) (File, error) {
	fs, rel, err := v.resolve(path)
	if err != nil {
		return nil, err
	}
	return fs.Open(rel, flags)
}

// Stat returns metadata for path.
func (v *VFS) Stat(path string) (Stat, error) {
	fs, rel, err := v.resolve(path)
	if err != nil {
		return Stat{}, err
	}
	return fs.Stat(rel)
}

// Mkdir creates a directory.
func (v *VFS) Mkdir(path string) error {
	fs, rel, err := v.resolve(path)
	if err != nil {
		return err
	}
	return fs.Mkdir(rel)
}

// Unlink removes a file.
func (v *VFS) Unlink(path string) error {
	fs, rel, err := v.resolve(path)
	if err != nil {
		return err
	}
	return fs.Unlink(rel)
}

// Link creates a hard link; both paths must live on the same mounted
// filesystem and it must support links.
func (v *VFS) Link(oldPath, newPath string) error {
	return v.twoPathOp(oldPath, newPath, func(l LinkerFS, o, n string) error {
		return l.Link(o, n)
	})
}

// Rename moves an entry; both paths must live on the same mounted
// filesystem and it must support renames.
func (v *VFS) Rename(oldPath, newPath string) error {
	return v.twoPathOp(oldPath, newPath, func(l LinkerFS, o, n string) error {
		return l.Rename(o, n)
	})
}

func (v *VFS) twoPathOp(oldPath, newPath string, op func(LinkerFS, string, string) error) error {
	fs1, rel1, err := v.resolve(oldPath)
	if err != nil {
		return err
	}
	fs2, rel2, err := v.resolve(newPath)
	if err != nil {
		return err
	}
	if fs1 != fs2 {
		return errors.New("m3: cross-filesystem link/rename")
	}
	l, ok := fs1.(LinkerFS)
	if !ok {
		return errors.New("m3: filesystem does not support links")
	}
	return op(l, rel1, rel2)
}

// ReadDir lists a directory.
func (v *VFS) ReadDir(path string) ([]DirEntry, error) {
	fs, rel, err := v.resolve(path)
	if err != nil {
		return nil, err
	}
	return fs.ReadDir(rel)
}

// ReadFile reads a whole file through the VFS (convenience for tests
// and examples).
func (v *VFS) ReadFile(path string) ([]byte, error) {
	f, err := v.Open(path, OpenRead)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []byte
	buf := make([]byte, 4096)
	for {
		n, rerr := f.Read(buf)
		out = append(out, buf[:n]...)
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				return out, nil
			}
			return out, rerr
		}
	}
}

// WriteFile creates/truncates path with the given contents.
func (v *VFS) WriteFile(path string, data []byte) error {
	f, err := v.Open(path, OpenWrite|OpenCreate|OpenTrunc)
	if err != nil {
		return err
	}
	for len(data) > 0 {
		n := len(data)
		if n > 4096 {
			n = 4096
		}
		if _, werr := f.Write(data[:n]); werr != nil {
			_ = f.Close()
			return werr
		}
		data = data[n:]
	}
	return f.Close()
}

func cleanPath(p string) string {
	if p == "" {
		return "/"
	}
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	for strings.Contains(p, "//") {
		p = strings.ReplaceAll(p, "//", "/")
	}
	if len(p) > 1 {
		p = strings.TrimSuffix(p, "/")
	}
	return p
}

func countComponents(p string) uint64 {
	n := uint64(0)
	for _, c := range strings.Split(p, "/") {
		if c != "" {
			n++
		}
	}
	if n == 0 {
		n = 1
	}
	return n
}

// Whence values for Seek, matching the io package.
const (
	SeekStart   = io.SeekStart
	SeekCurrent = io.SeekCurrent
	SeekEnd     = io.SeekEnd
)
