package m3_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/m3"
	"repro/internal/m3fs"
)

// File-semantics tests: overwrite-in-place, append mode, readdir
// pagination, fstat — the POSIX-like behaviours libm3 promises on top
// of the capability protocol.

func TestOverwriteInPlace(t *testing.T) {
	s := newSystem(t, 3)
	s.app(t, "overwrite", func(env *m3.Env) {
		if _, err := m3fs.MountAt(env, "/", ""); err != nil {
			t.Error(err)
			return
		}
		base := bytes.Repeat([]byte{'.'}, 8192)
		if err := env.VFS.WriteFile("/f", base); err != nil {
			t.Error(err)
			return
		}
		// Re-open WITHOUT truncation and patch the middle.
		f, err := env.VFS.Open("/f", m3.OpenRW)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := f.Seek(4000, m3.SeekStart); err != nil {
			t.Error(err)
		}
		if _, err := f.Write([]byte("PATCH")); err != nil {
			t.Error(err)
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
		got, err := env.VFS.ReadFile("/f")
		if err != nil {
			t.Error(err)
			return
		}
		if len(got) != 8192 {
			t.Errorf("size changed to %d after in-place write", len(got))
			return
		}
		if string(got[4000:4005]) != "PATCH" {
			t.Errorf("patch missing: %q", got[3998:4008])
		}
		if got[3999] != '.' || got[4005] != '.' {
			t.Error("overwrite damaged neighbours")
		}
		// Size and extent count unchanged: the overwrite stayed in the
		// existing allocation.
		st, err := env.VFS.Stat("/f")
		if err != nil || st.Size != 8192 || st.Extents != 1 {
			t.Errorf("stat after overwrite = %+v, %v", st, err)
		}
	})
	s.eng.Run()
	if err := s.fs.FS().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenAppendMode(t *testing.T) {
	s := newSystem(t, 3)
	s.app(t, "append", func(env *m3.Env) {
		if _, err := m3fs.MountAt(env, "/", ""); err != nil {
			t.Error(err)
			return
		}
		if err := env.VFS.WriteFile("/log", []byte("first\n")); err != nil {
			t.Error(err)
			return
		}
		f, err := env.VFS.Open("/log", m3.OpenWrite|m3.OpenAppend)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := f.Write([]byte("second\n")); err != nil {
			t.Error(err)
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
		got, err := env.VFS.ReadFile("/log")
		if err != nil || string(got) != "first\nsecond\n" {
			t.Errorf("log = %q, %v", got, err)
		}
	})
	s.eng.Run()
}

func TestReadDirPagination(t *testing.T) {
	s := newSystem(t, 3)
	s.app(t, "pagination", func(env *m3.Env) {
		if _, err := m3fs.MountAt(env, "/", ""); err != nil {
			t.Error(err)
			return
		}
		if err := env.VFS.Mkdir("/many"); err != nil {
			t.Error(err)
			return
		}
		// 23 entries: three chunks of the service's 8-entry pages.
		for i := 0; i < 23; i++ {
			if err := env.VFS.WriteFile(fmt.Sprintf("/many/f%02d", i), []byte("x")); err != nil {
				t.Error(err)
				return
			}
		}
		ents, err := env.VFS.ReadDir("/many")
		if err != nil || len(ents) != 23 {
			t.Errorf("readdir = %d entries, %v", len(ents), err)
			return
		}
		// Sorted and complete.
		for i := 1; i < len(ents); i++ {
			if ents[i].Name <= ents[i-1].Name {
				t.Errorf("entries not sorted: %q after %q", ents[i].Name, ents[i-1].Name)
			}
		}
	})
	s.eng.Run()
}

func TestFstatOnOpenFile(t *testing.T) {
	s := newSystem(t, 3)
	s.app(t, "fstat", func(env *m3.Env) {
		if _, err := m3fs.MountAt(env, "/", ""); err != nil {
			t.Error(err)
			return
		}
		f, err := env.VFS.Open("/x", m3.OpenWrite|m3.OpenCreate)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := f.Write(make([]byte, 2000)); err != nil {
			t.Error(err)
		}
		// fstat before close: the service reports the inode's current
		// size (writes update it at close; size tracked client-side
		// until then).
		st, err := f.Stat()
		if err != nil {
			t.Error(err)
		}
		if st.Ino == 0 {
			t.Error("fstat has no inode number")
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
		st2, err := env.VFS.Stat("/x")
		if err != nil || st2.Size != 2000 {
			t.Errorf("stat after close = %+v, %v", st2, err)
		}
	})
	s.eng.Run()
}

func TestTruncateReopenShrinks(t *testing.T) {
	s := newSystem(t, 3)
	s.app(t, "shrink", func(env *m3.Env) {
		if _, err := m3fs.MountAt(env, "/", ""); err != nil {
			t.Error(err)
			return
		}
		if err := env.VFS.WriteFile("/f", make([]byte, 100<<10)); err != nil {
			t.Error(err)
			return
		}
		if err := env.VFS.WriteFile("/f", []byte("short")); err != nil {
			t.Error(err)
			return
		}
		st, err := env.VFS.Stat("/f")
		if err != nil || st.Size != 5 {
			t.Errorf("stat = %+v, %v", st, err)
		}
		got, err := env.VFS.ReadFile("/f")
		if err != nil || string(got) != "short" {
			t.Errorf("content = %q, %v", got, err)
		}
	})
	s.eng.Run()
	if err := s.fs.FS().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
