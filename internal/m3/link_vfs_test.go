package m3_test

import (
	"testing"

	"repro/internal/m3"
	"repro/internal/m3fs"
)

// Full-stack hard links and renames: through the VFS, the m3fs client,
// the kernel-mediated session, and the service.
func TestLinkRenameThroughVFS(t *testing.T) {
	s := newSystem(t, 3)
	s.app(t, "links", func(env *m3.Env) {
		if _, err := m3fs.MountAt(env, "/", ""); err != nil {
			t.Error(err)
			return
		}
		if err := env.VFS.WriteFile("/orig", []byte("shared-bytes")); err != nil {
			t.Error(err)
			return
		}
		if err := env.VFS.Link("/orig", "/alias"); err != nil {
			t.Error(err)
			return
		}
		st, err := env.VFS.Stat("/alias")
		if err != nil || st.Size != 12 || st.Links != 2 {
			t.Errorf("alias stat = %+v, %v; want size 12, links 2", st, err)
		}
		// Reading through the alias sees the same bytes.
		got, err := env.VFS.ReadFile("/alias")
		if err != nil || string(got) != "shared-bytes" {
			t.Errorf("alias content = %q, %v", got, err)
		}
		// Unlink the original; the alias survives.
		if err := env.VFS.Unlink("/orig"); err != nil {
			t.Error(err)
		}
		if got, err := env.VFS.ReadFile("/alias"); err != nil || string(got) != "shared-bytes" {
			t.Errorf("after unlink: %q, %v", got, err)
		}
		// Rename the alias.
		if err := env.VFS.Mkdir("/dir"); err != nil {
			t.Error(err)
		}
		if err := env.VFS.Rename("/alias", "/dir/final"); err != nil {
			t.Error(err)
		}
		if _, err := env.VFS.Stat("/alias"); err == nil {
			t.Error("old name still resolves after rename")
		}
		if got, err := env.VFS.ReadFile("/dir/final"); err != nil || string(got) != "shared-bytes" {
			t.Errorf("after rename: %q, %v", got, err)
		}
	})
	s.eng.Run()
	if err := s.fs.FS().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestLinkAcrossMountsRefused: link/rename cannot span filesystems.
func TestLinkAcrossMountsRefused(t *testing.T) {
	s := newSystem(t, 3)
	s.app(t, "cross", func(env *m3.Env) {
		if _, err := m3fs.MountAt(env, "/", ""); err != nil {
			t.Error(err)
			return
		}
		pfs := m3.NewPipeFS(env)
		if err := env.VFS.Mount("/pipes", pfs); err != nil {
			t.Error(err)
			return
		}
		if err := env.VFS.WriteFile("/f", []byte("x")); err != nil {
			t.Error(err)
			return
		}
		if err := env.VFS.Link("/f", "/pipes/f2"); err == nil {
			t.Error("cross-filesystem link must fail")
		}
		// The pipe filesystem supports neither links nor renames.
		if err := pfs.Create("/p", 1024); err != nil {
			t.Error(err)
		}
		if err := env.VFS.Rename("/pipes/p", "/pipes/q"); err == nil {
			t.Error("pipefs rename must fail")
		}
	})
	s.eng.Run()
}
