package m3_test

import (
	"errors"
	"testing"

	"repro/internal/dtu"
	"repro/internal/kif"
	"repro/internal/m3"
	"repro/internal/m3fs"
	"repro/internal/tile"
)

// These tests exercise the kernel's validation paths through the real
// syscall channel: every error is produced by the kernel or a service,
// travels back as a DTU reply, and surfaces as a kif.Error.

func TestSyscallBadSelectors(t *testing.T) {
	s := newSystem(t, 3)
	s.app(t, "bad", func(env *m3.Env) {
		// Revoke of an unknown selector.
		if err := env.Revoke(9999); !errors.Is(err, kif.ErrNoSuchCap) {
			t.Errorf("revoke: %v, want ErrNoSuchCap", err)
		}
		// Derive from a selector that is not a memory capability.
		mg := env.MemGateAt(12345, 64)
		if _, err := mg.Derive(0, 16, dtu.PermRead); !errors.Is(err, kif.ErrNoSuchCap) {
			t.Errorf("derive: %v, want ErrNoSuchCap", err)
		}
		// Reading through a never-installed capability fails at
		// activation.
		if err := mg.Read(make([]byte, 8), 0); !errors.Is(err, kif.ErrNoSuchCap) {
			t.Errorf("read: %v, want ErrNoSuchCap", err)
		}
	})
	s.eng.Run()
}

func TestDeriveCannotWidenPermissions(t *testing.T) {
	s := newSystem(t, 3)
	s.app(t, "widen", func(env *m3.Env) {
		ro, err := env.ReqMem(4096, dtu.PermRead)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := ro.Derive(0, 1024, dtu.PermRW); !errors.Is(err, kif.ErrNoPerm) {
			t.Errorf("derive widened perms: %v, want ErrNoPerm", err)
		}
		if _, err := ro.Derive(2048, 4096, dtu.PermRead); !errors.Is(err, kif.ErrInvalidArgs) {
			t.Errorf("derive out of range: %v, want ErrInvalidArgs", err)
		}
	})
	s.eng.Run()
}

func TestWriteThroughReadOnlyGateDenied(t *testing.T) {
	s := newSystem(t, 3)
	s.app(t, "ro", func(env *m3.Env) {
		rw, err := env.ReqMem(4096, dtu.PermRW)
		if err != nil {
			t.Error(err)
			return
		}
		ro, err := rw.Derive(0, 1024, dtu.PermRead)
		if err != nil {
			t.Error(err)
			return
		}
		// The DTU itself denies the write: the endpoint was configured
		// with read-only permissions by the kernel.
		if err := ro.Write([]byte("x"), 0); !errors.Is(err, dtu.ErrPerms) {
			t.Errorf("write: %v, want dtu.ErrPerms", err)
		}
	})
	s.eng.Run()
}

func TestOpenSessUnknownService(t *testing.T) {
	s := newSystem(t, 3)
	s.app(t, "nosvc", func(env *m3.Env) {
		if _, err := env.OpenSess("no-such-service", ""); !errors.Is(err, kif.ErrNoSuchService) {
			t.Errorf("opensess: %v, want ErrNoSuchService", err)
		}
	})
	s.eng.Run()
}

func TestDuplicateServiceNameRejected(t *testing.T) {
	s := newSystem(t, 4)
	s.app(t, "dup", func(env *m3.Env) {
		// Mounting waits until the real m3fs has registered, so the
		// duplicate registration below cannot win the boot race.
		if _, err := m3fs.MountAt(env, "/", ""); err != nil {
			t.Error(err)
			return
		}
		rg, err := env.NewRecvGate(64, 2)
		if err != nil {
			t.Error(err)
			return
		}
		sel := env.AllocSel()
		var o kif.OStream
		o.Op(kif.SysCreateSrv).Sel(sel).Sel(rg.Sel()).Str("m3fs")
		if _, err := env.Syscall(&o); !errors.Is(err, kif.ErrExists) {
			t.Errorf("createsrv duplicate: %v, want ErrExists", err)
		}
	})
	s.eng.Run()
}

func TestVPEStartInvalidProgram(t *testing.T) {
	s := newSystem(t, 4)
	s.app(t, "badstart", func(env *m3.Env) {
		vpe, err := env.NewVPE("child", "")
		if err != nil {
			t.Error(err)
			return
		}
		var o kif.OStream
		o.Op(kif.SysVPEStart).Sel(vpe.Sel).U64(999999) // no such program id
		if _, err := env.Syscall(&o); !errors.Is(err, kif.ErrInvalidArgs) {
			t.Errorf("vpestart: %v, want ErrInvalidArgs", err)
		}
	})
	s.eng.Run()
}

func TestActivateProtectedEndpointsRefused(t *testing.T) {
	s := newSystem(t, 3)
	s.app(t, "protect", func(env *m3.Env) {
		mg, err := env.ReqMem(1024, dtu.PermRW)
		if err != nil {
			t.Error(err)
			return
		}
		// The kernel must refuse to overwrite the syscall channel
		// (EP0..EP2) — otherwise an application could disconnect
		// itself or forge replies.
		for ep := 0; ep < kif.FirstFreeEP; ep++ {
			var o kif.OStream
			o.Op(kif.SysActivate).Sel(mg.Sel()).I64(int64(ep)).U64(0)
			if _, err := env.Syscall(&o); !errors.Is(err, kif.ErrInvalidArgs) {
				t.Errorf("activate on EP%d: %v, want ErrInvalidArgs", ep, err)
			}
		}
	})
	s.eng.Run()
}

func TestRecvGateCannotBeDelegated(t *testing.T) {
	s := newSystem(t, 4)
	s.app(t, "rgdel", func(env *m3.Env) {
		rg, err := env.NewRecvGate(64, 2)
		if err != nil {
			t.Error(err)
			return
		}
		vpe, err := env.NewVPE("child", "")
		if err != nil {
			t.Error(err)
			return
		}
		// Receive gates can only be moved after invalidating all
		// senders (§4.5.4); the kernel refuses to delegate them.
		if err := vpe.Delegate(rg.Sel(), 100, 1); !errors.Is(err, kif.ErrNoPerm) {
			t.Errorf("delegate rgate: %v, want ErrNoPerm", err)
		}
	})
	s.eng.Run()
}

func TestSelectorCollisionRejected(t *testing.T) {
	s := newSystem(t, 4)
	s.app(t, "collide", func(env *m3.Env) {
		mg, err := env.ReqMem(1024, dtu.PermRW)
		if err != nil {
			t.Error(err)
			return
		}
		// Install something else at the same selector.
		var o kif.OStream
		o.Op(kif.SysReqMem).Sel(mg.Sel()).U64(1024).U64(uint64(dtu.PermRW)).U64(0)
		if _, err := env.Syscall(&o); !errors.Is(err, kif.ErrExists) {
			t.Errorf("selector reuse: %v, want ErrExists", err)
		}
	})
	s.eng.Run()
}

func TestLocateBeyondEOF(t *testing.T) {
	s := newSystem(t, 3)
	s.app(t, "eof", func(env *m3.Env) {
		c, err := m3fs.MountAt(env, "/", "")
		if err != nil {
			t.Error(err)
			return
		}
		_ = c
		if err := env.VFS.WriteFile("/small", []byte("tiny")); err != nil {
			t.Error(err)
			return
		}
		f, err := env.VFS.Open("/small", m3.OpenRead)
		if err != nil {
			t.Error(err)
			return
		}
		defer f.Close()
		// Seeking far past the end and reading: m3fs's locate finds no
		// extent; the client surfaces EOF-like failure. (A fresh file
		// handle has no cached extents, so this really asks m3fs.)
		if _, err := f.Seek(1<<20, m3.SeekStart); err != nil {
			t.Error(err)
		}
		buf := make([]byte, 16)
		if _, err := f.Read(buf); err == nil {
			t.Error("read far beyond EOF should fail or report EOF")
		}
	})
	s.eng.Run()
}

func TestExitCodePropagation(t *testing.T) {
	s := newSystem(t, 4)
	s.app(t, "codes", func(env *m3.Env) {
		for _, want := range []int64{0, 1, -7, 250} {
			vpe, err := env.NewVPE("child", "")
			if err != nil {
				t.Error(err)
				return
			}
			w := want
			if err := vpe.Run(func(child *m3.Env) { child.SetExit(w) }); err != nil {
				t.Error(err)
				return
			}
			code, err := vpe.Wait()
			if err != nil || code != want {
				t.Errorf("exit code = %d, %v; want %d", code, err, want)
			}
			if err := vpe.Revoke(); err != nil {
				t.Error(err)
			}
		}
	})
	s.eng.Run()
}

func TestCreateVPESpecificTypeUnavailable(t *testing.T) {
	s := newSystem(t, 4) // all xtensa
	s.app(t, "wanttype", func(env *m3.Env) {
		if _, err := env.NewVPE("acc", tile.CoreFFT); !errors.Is(err, kif.ErrNoFreePE) {
			t.Errorf("NewVPE(fft): %v, want ErrNoFreePE", err)
		}
	})
	s.eng.Run()
}

// TestRevokeInvalidatesActiveEndpoint: NoC-level enforcement. After a
// revoke, the already-configured endpoint must stop working — the DTU
// itself denies the access, without waiting for a re-activation.
func TestRevokeInvalidatesActiveEndpoint(t *testing.T) {
	s := newSystem(t, 3)
	s.app(t, "revoke-live", func(env *m3.Env) {
		mg, err := env.ReqMem(4096, dtu.PermRW)
		if err != nil {
			t.Error(err)
			return
		}
		// Activate by using it.
		if err := mg.Write([]byte("before"), 0); err != nil {
			t.Error(err)
			return
		}
		if err := env.Revoke(mg.Sel()); err != nil {
			t.Error(err)
			return
		}
		// The endpoint is still bound from libm3's point of view; the
		// hardware must refuse anyway.
		if err := mg.Read(make([]byte, 4), 0); err == nil {
			t.Error("read through revoked capability's live endpoint succeeded")
		}
	})
	s.eng.Run()
}

// TestRevokeDoesNotClobberReusedEndpoint: after the endpoint was
// multiplexed to another gate, revoking the old capability must leave
// the new gate's configuration intact.
func TestRevokeDoesNotClobberReusedEndpoint(t *testing.T) {
	s := newSystem(t, 3)
	s.app(t, "reuse", func(env *m3.Env) {
		// Fill all five multiplexable endpoints plus one: gate 0 gets
		// evicted when gate 5 activates.
		var gates []*m3.MemGate
		for i := 0; i < 6; i++ {
			mg, err := env.ReqMem(1024, dtu.PermRW)
			if err != nil {
				t.Error(err)
				return
			}
			gates = append(gates, mg)
			if err := mg.Write([]byte{byte(i)}, 0); err != nil {
				t.Error(err)
				return
			}
		}
		// gate[0] was evicted (LRU); its old endpoint now belongs to
		// another gate. Revoking gate[0] must not break the others.
		if err := env.Revoke(gates[0].Sel()); err != nil {
			t.Error(err)
			return
		}
		for i := 1; i < 6; i++ {
			buf := make([]byte, 1)
			if err := gates[i].Read(buf, 0); err != nil {
				t.Errorf("gate %d broken by unrelated revoke: %v", i, err)
				return
			}
			if buf[0] != byte(i) {
				t.Errorf("gate %d data = %d", i, buf[0])
			}
		}
	})
	s.eng.Run()
}
