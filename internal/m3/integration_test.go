package m3_test

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/dtu"
	"repro/internal/kif"
	"repro/internal/m3"
	"repro/internal/m3fs"
	"repro/internal/sim"
	"repro/internal/tile"
)

// system boots a platform with the kernel on PE0 and m3fs on PE1.
type system struct {
	eng  *sim.Engine
	plat *tile.Platform
	kern *core.Kernel
	fs   *m3fs.Service
}

func newSystem(t *testing.T, numPEs int) *system {
	t.Helper()
	eng := sim.NewEngine()
	plat := tile.NewPlatform(eng, tile.Homogeneous(numPEs))
	kern := core.Boot(plat, 0)
	s := &system{eng: eng, plat: plat, kern: kern}
	_, err := kern.StartInit("m3fs", "", m3fs.Program(kern, m3fs.Config{}, func(svc *m3fs.Service) {
		s.fs = svc
	}))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// app starts an application program as an init VPE.
func (s *system) app(t *testing.T, name string, prog func(env *m3.Env)) {
	t.Helper()
	_, err := s.kern.StartInit(name, "", func(ctx *tile.Ctx) {
		env := m3.NewEnv(ctx, s.kern)
		prog(env)
		env.Exit(0)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNullSyscall(t *testing.T) {
	s := newSystem(t, 3)
	var took sim.Time
	s.app(t, "bench", func(env *m3.Env) {
		// Warm up, then measure a single null syscall.
		if err := env.Noop(); err != nil {
			t.Error(err)
		}
		start := env.Ctx.Now()
		if err := env.Noop(); err != nil {
			t.Error(err)
		}
		took = env.Ctx.Now() - start
	})
	s.eng.Run()
	// The paper reports ~200 cycles (§5.3). Accept a generous band;
	// the bench harness reports the exact number.
	if took < 120 || took > 320 {
		t.Fatalf("null syscall took %d cycles, want ~200", took)
	}
}

func TestFileWriteReadBack(t *testing.T) {
	s := newSystem(t, 3)
	payload := bytes.Repeat([]byte("m3-file-data-0123"), 4096/16*8) // 32 KiB
	var got []byte
	s.app(t, "filetest", func(env *m3.Env) {
		if _, err := m3fs.MountAt(env, "/", ""); err != nil {
			t.Error(err)
			return
		}
		if err := env.VFS.WriteFile("/data.bin", payload); err != nil {
			t.Error(err)
			return
		}
		var err error
		got, err = env.VFS.ReadFile("/data.bin")
		if err != nil {
			t.Error(err)
		}
	})
	s.eng.Run()
	if !bytes.Equal(got, payload) {
		t.Fatalf("read back %d bytes, want %d; mismatch", len(got), len(payload))
	}
	if s.fs == nil {
		t.Fatal("m3fs never became ready")
	}
	if err := s.fs.FS().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFileMetaOps(t *testing.T) {
	s := newSystem(t, 3)
	s.app(t, "meta", func(env *m3.Env) {
		c, err := m3fs.MountAt(env, "/", "")
		if err != nil {
			t.Error(err)
			return
		}
		_ = c
		if err := env.VFS.Mkdir("/dir"); err != nil {
			t.Error(err)
		}
		if err := env.VFS.Mkdir("/dir/sub"); err != nil {
			t.Error(err)
		}
		if err := env.VFS.WriteFile("/dir/a.txt", []byte("aaa")); err != nil {
			t.Error(err)
		}
		if err := env.VFS.WriteFile("/dir/b.txt", []byte("bbbb")); err != nil {
			t.Error(err)
		}
		st, err := env.VFS.Stat("/dir/b.txt")
		if err != nil || st.Size != 4 || st.IsDir {
			t.Errorf("stat b.txt = %+v, %v", st, err)
		}
		st, err = env.VFS.Stat("/dir")
		if err != nil || !st.IsDir {
			t.Errorf("stat dir = %+v, %v", st, err)
		}
		if _, err := env.VFS.Stat("/nope"); err == nil {
			t.Error("stat of missing file should fail")
		}
		ents, err := env.VFS.ReadDir("/dir")
		if err != nil || len(ents) != 3 {
			t.Errorf("readdir = %v, %v", ents, err)
		}
		if err := env.VFS.Unlink("/dir/a.txt"); err != nil {
			t.Error(err)
		}
		ents, _ = env.VFS.ReadDir("/dir")
		if len(ents) != 2 {
			t.Errorf("after unlink: %v", ents)
		}
		if err := env.VFS.Unlink("/dir"); err == nil {
			t.Error("unlink of non-empty dir should fail")
		}
	})
	s.eng.Run()
	if err := s.fs.FS().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSeekAndPartialReads(t *testing.T) {
	s := newSystem(t, 3)
	s.app(t, "seek", func(env *m3.Env) {
		if _, err := m3fs.MountAt(env, "/", ""); err != nil {
			t.Error(err)
			return
		}
		data := make([]byte, 10000)
		for i := range data {
			data[i] = byte(i % 251)
		}
		if err := env.VFS.WriteFile("/f", data); err != nil {
			t.Error(err)
			return
		}
		f, err := env.VFS.Open("/f", m3.OpenRead)
		if err != nil {
			t.Error(err)
			return
		}
		defer f.Close()
		if _, err := f.Seek(5000, m3.SeekStart); err != nil {
			t.Error(err)
		}
		buf := make([]byte, 100)
		n, err := f.Read(buf)
		if err != nil || n != 100 {
			t.Errorf("read at 5000: n=%d err=%v", n, err)
		}
		if buf[0] != byte(5000%251) {
			t.Errorf("byte at 5000 = %d, want %d", buf[0], byte(5000%251))
		}
		// Seek to the end: read must return EOF.
		if _, err := f.Seek(0, m3.SeekEnd); err != nil {
			t.Error(err)
		}
		if _, err := f.Read(buf); !errors.Is(err, io.EOF) {
			t.Errorf("read at EOF = %v, want io.EOF", err)
		}
	})
	s.eng.Run()
}

func TestVPERunAndWait(t *testing.T) {
	s := newSystem(t, 4)
	var childRan bool
	var code int64
	s.app(t, "parent", func(env *m3.Env) {
		vpe, err := env.NewVPE("child", "")
		if err != nil {
			t.Error(err)
			return
		}
		if err := vpe.Run(func(child *m3.Env) {
			childRan = true
			child.SetExit(42)
		}); err != nil {
			t.Error(err)
			return
		}
		code, err = vpe.Wait()
		if err != nil {
			t.Error(err)
		}
	})
	s.eng.Run()
	if !childRan {
		t.Fatal("child never ran")
	}
	if code != 42 {
		t.Fatalf("exit code = %d, want 42", code)
	}
}

func TestNoFreePE(t *testing.T) {
	// 3 PEs: kernel, m3fs, app. No room for a child VPE.
	s := newSystem(t, 3)
	s.app(t, "parent", func(env *m3.Env) {
		_, err := env.NewVPE("child", "")
		if !errors.Is(err, kif.ErrNoFreePE) {
			t.Errorf("err = %v, want ErrNoFreePE", err)
		}
	})
	s.eng.Run()
}

func TestVPEExitFreesPE(t *testing.T) {
	s := newSystem(t, 4)
	s.app(t, "parent", func(env *m3.Env) {
		for i := 0; i < 3; i++ {
			vpe, err := env.NewVPE("child", "")
			if err != nil {
				t.Errorf("round %d: %v", i, err)
				return
			}
			if err := vpe.Run(func(child *m3.Env) {}); err != nil {
				t.Errorf("round %d: %v", i, err)
				return
			}
			if _, err := vpe.Wait(); err != nil {
				t.Errorf("round %d: %v", i, err)
				return
			}
			// Reuse requires releasing the VPE cap (kernel frees the PE
			// at exit already; revoke just drops our handle).
			if err := vpe.Revoke(); err != nil {
				t.Errorf("round %d revoke: %v", i, err)
			}
		}
	})
	s.eng.Run()
}

func TestPipeParentReadsChildWrites(t *testing.T) {
	s := newSystem(t, 4)
	const total = 64 << 10
	var received []byte
	s.app(t, "parent", func(env *m3.Env) {
		pipe, err := m3.NewPipe(env, 16<<10)
		if err != nil {
			t.Error(err)
			return
		}
		vpe, err := env.NewVPE("writer", "")
		if err != nil {
			t.Error(err)
			return
		}
		sg, wm := pipe.WriterSels()
		// Delegate the two writer capabilities to selectors 100/101.
		if err := vpe.Delegate(sg, 100, 1); err != nil {
			t.Error(err)
			return
		}
		if err := vpe.Delegate(wm, 101, 1); err != nil {
			t.Error(err)
			return
		}
		size := pipe.Size()
		if err := vpe.Run(func(child *m3.Env) {
			w := m3.OpenPipeWriter(child, 100, 101, size)
			chunk := make([]byte, 4096)
			for i := 0; i < total/len(chunk); i++ {
				for j := range chunk {
					chunk[j] = byte(i + j)
				}
				if _, err := w.Write(chunk); err != nil {
					t.Error(err)
					return
				}
			}
			if err := w.Close(); err != nil {
				t.Error(err)
			}
		}); err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 4096)
		for {
			n, rerr := pipe.Read(buf)
			received = append(received, buf[:n]...)
			if rerr != nil {
				if !errors.Is(rerr, io.EOF) {
					t.Error(rerr)
				}
				break
			}
		}
		if _, err := vpe.Wait(); err != nil {
			t.Error(err)
		}
	})
	s.eng.Run()
	if len(received) != total {
		t.Fatalf("received %d bytes, want %d", len(received), total)
	}
	for i := 0; i < total; i += 4096 {
		blk := i / 4096
		for j := 0; j < 4096; j += 1024 {
			if received[i+j] != byte(blk+j) {
				t.Fatalf("corrupt byte at %d: %d != %d", i+j, received[i+j], byte(blk+j))
			}
		}
	}
}

func TestDelegatedMemGate(t *testing.T) {
	s := newSystem(t, 4)
	s.app(t, "parent", func(env *m3.Env) {
		mg, err := env.ReqMem(4096, dtu.PermRW)
		if err != nil {
			t.Error(err)
			return
		}
		if err := mg.Write([]byte("hello child"), 0); err != nil {
			t.Error(err)
			return
		}
		vpe, err := env.NewVPE("reader", "")
		if err != nil {
			t.Error(err)
			return
		}
		if err := vpe.Delegate(mg.Sel(), 200, 1); err != nil {
			t.Error(err)
			return
		}
		if err := vpe.Run(func(child *m3.Env) {
			cmg := child.MemGateAt(200, 4096)
			buf := make([]byte, 11)
			if err := cmg.Read(buf, 0); err != nil {
				t.Error(err)
				return
			}
			if string(buf) != "hello child" {
				t.Errorf("child read %q", buf)
				child.SetExit(1)
			}
		}); err != nil {
			t.Error(err)
			return
		}
		code, err := vpe.Wait()
		if err != nil || code != 0 {
			t.Errorf("wait = %d, %v", code, err)
		}
	})
	s.eng.Run()
}

func TestRevokedMemGateUnusableAfterReactivation(t *testing.T) {
	s := newSystem(t, 4)
	s.app(t, "parent", func(env *m3.Env) {
		mg, err := env.ReqMem(4096, dtu.PermRW)
		if err != nil {
			t.Error(err)
			return
		}
		sub, err := mg.Derive(0, 1024, dtu.PermRead)
		if err != nil {
			t.Error(err)
			return
		}
		if err := sub.Read(make([]byte, 16), 0); err != nil {
			t.Error(err)
		}
		// Revoking the parent capability removes the derived child; a
		// fresh activation of the child selector must fail.
		if err := env.Revoke(mg.Sel()); err != nil {
			t.Error(err)
		}
		fresh := env.MemGateAt(sub.Sel(), 1024)
		if err := fresh.Read(make([]byte, 16), 0); err == nil {
			t.Error("read through revoked capability should fail on activation")
		}
	})
	s.eng.Run()
}

func TestManyGatesEPMultiplexing(t *testing.T) {
	s := newSystem(t, 3)
	s.app(t, "many", func(env *m3.Env) {
		// More memory gates than endpoints: libm3 multiplexes.
		var gates []*m3.MemGate
		for i := 0; i < 12; i++ {
			mg, err := env.ReqMem(1024, dtu.PermRW)
			if err != nil {
				t.Error(err)
				return
			}
			gates = append(gates, mg)
		}
		buf := []byte{1, 2, 3, 4}
		for round := 0; round < 3; round++ {
			for i, mg := range gates {
				buf[0] = byte(i)
				if err := mg.Write(buf, 0); err != nil {
					t.Errorf("gate %d: %v", i, err)
					return
				}
			}
		}
		out := make([]byte, 4)
		for i, mg := range gates {
			if err := mg.Read(out, 0); err != nil {
				t.Errorf("gate %d read: %v", i, err)
				return
			}
			if out[0] != byte(i) {
				t.Errorf("gate %d data = %v", i, out)
			}
		}
	})
	s.eng.Run()
}

func TestFragmentedFileExtents(t *testing.T) {
	s := newSystem(t, 3)
	s.app(t, "frag", func(env *m3.Env) {
		c, err := m3fs.MountAt(env, "/", "")
		if err != nil {
			t.Error(err)
			return
		}
		c.AppendBlocks = 16
		c.NoMerge = true
		data := make([]byte, 64<<10) // 64 KiB over 16-block (16 KiB) extents
		for i := range data {
			data[i] = byte(i >> 8)
		}
		if err := env.VFS.WriteFile("/frag", data); err != nil {
			t.Error(err)
			return
		}
		st, err := env.VFS.Stat("/frag")
		if err != nil {
			t.Error(err)
			return
		}
		if st.Extents != 4 {
			t.Errorf("extents = %d, want 4", st.Extents)
		}
		got, err := env.VFS.ReadFile("/frag")
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, data) {
			t.Error("fragmented file corrupt")
		}
	})
	s.eng.Run()
	if err := s.fs.FS().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestKernelStatsAndUtilization checks the kernel's observability
// hooks used by cmd/m3sim: syscall counters, the CPU resource, and VPE
// lookup.
func TestKernelStatsAndUtilization(t *testing.T) {
	s := newSystem(t, 3)
	s.app(t, "stats", func(env *m3.Env) {
		for i := 0; i < 5; i++ {
			if err := env.Noop(); err != nil {
				t.Error(err)
			}
		}
		if _, err := env.ReqMem(4096, dtu.PermRW); err != nil {
			t.Error(err)
		}
	})
	s.eng.Run()
	if got := s.kern.Stats.Syscalls[kif.SysNoop]; got != 5 {
		t.Fatalf("noop count = %d, want 5", got)
	}
	if got := s.kern.Stats.Syscalls[kif.SysReqMem]; got < 2 { // app + m3fs region
		t.Fatalf("reqmem count = %d, want >= 2", got)
	}
	u := s.kern.CPU().Utilization()
	if u <= 0 || u >= 1 {
		t.Fatalf("kernel utilization = %f", u)
	}
	if s.kern.VPEByID(1) == nil {
		t.Fatal("VPE 1 (m3fs) not found")
	}
	if v := s.kern.VPEByID(2); v == nil || !v.Exited() || v.ExitCode() != 0 {
		t.Fatalf("app VPE state wrong: %+v", v)
	}
}
