package m3_test

import (
	"testing"

	"repro/internal/m3"
	"repro/internal/m3fs"
)

// TestSessionClosedOnClientExit checks the session-lifecycle protocol:
// when a client VPE exits, the kernel drops its capabilities and sends
// the service a close-session notification, so m3fs frees the
// per-session state (open fd table).
func TestSessionClosedOnClientExit(t *testing.T) {
	s := newSystem(t, 4)
	s.app(t, "parent", func(env *m3.Env) {
		if _, err := m3fs.MountAt(env, "/", ""); err != nil {
			t.Error(err)
			return
		}
		before := s.fs.SessionCount()
		vpe, err := env.NewVPE("client", "")
		if err != nil {
			t.Error(err)
			return
		}
		if err := vpe.Run(func(child *m3.Env) {
			// The child opens its own session and some files, then
			// exits without closing anything.
			if _, err := m3fs.MountAt(child, "/", ""); err != nil {
				child.SetExit(1)
				return
			}
			if err := child.VFS.WriteFile("/leak.txt", []byte("leaked")); err != nil {
				child.SetExit(1)
			}
		}); err != nil {
			t.Error(err)
			return
		}
		if code, err := vpe.Wait(); err != nil || code != 0 {
			t.Errorf("child exit %d, %v", code, err)
			return
		}
		// Give the asynchronous close notification time to land.
		env.P().Sleep(5000)
		after := s.fs.SessionCount()
		if after != before {
			t.Errorf("sessions = %d after child exit, want %d", after, before)
		}
	})
	s.eng.Run()
}

// TestSessionSurvivesDelegatedCopyRevoke: revoking a delegated copy of
// the session must NOT close it for the original holder.
func TestSessionSurvivesDelegatedCopyRevoke(t *testing.T) {
	s := newSystem(t, 4)
	s.app(t, "parent", func(env *m3.Env) {
		c, err := m3fs.MountAt(env, "/", "")
		if err != nil {
			t.Error(err)
			return
		}
		vpe, err := env.NewVPE("child", "")
		if err != nil {
			t.Error(err)
			return
		}
		if err := vpe.Delegate(c.SessSel(), 600, 1); err != nil {
			t.Error(err)
			return
		}
		if err := vpe.Run(func(child *m3.Env) {}); err != nil {
			t.Error(err)
			return
		}
		if _, err := vpe.Wait(); err != nil {
			t.Error(err)
		}
		env.P().Sleep(5000)
		// The parent's session still works after the child (holding a
		// delegated copy) exited.
		if err := env.VFS.WriteFile("/still-works", []byte("yes")); err != nil {
			t.Errorf("session died with the delegated copy: %v", err)
		}
	})
	s.eng.Run()
}
