package m3_test

import (
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/m3"
)

// fakeFS is an in-memory FileSystem for VFS unit tests.
type fakeFS struct {
	name  string
	seen  []string
	files map[string][]byte
}

func newFakeFS(name string) *fakeFS {
	return &fakeFS{name: name, files: map[string][]byte{}}
}

func (f *fakeFS) Open(path string, flags m3.OpenFlags) (m3.File, error) {
	f.seen = append(f.seen, "open:"+path)
	if flags&m3.OpenCreate != 0 {
		f.files[path] = nil
	}
	data, ok := f.files[path]
	if !ok {
		return nil, errors.New("fake: not found")
	}
	return &fakeFile{fs: f, path: path, data: data}, nil
}

func (f *fakeFS) Stat(path string) (m3.Stat, error) {
	f.seen = append(f.seen, "stat:"+path)
	if data, ok := f.files[path]; ok {
		return m3.Stat{Size: int64(len(data))}, nil
	}
	return m3.Stat{}, errors.New("fake: not found")
}

func (f *fakeFS) Mkdir(path string) error {
	f.seen = append(f.seen, "mkdir:"+path)
	return nil
}

func (f *fakeFS) Unlink(path string) error {
	f.seen = append(f.seen, "unlink:"+path)
	delete(f.files, path)
	return nil
}

func (f *fakeFS) ReadDir(path string) ([]m3.DirEntry, error) {
	f.seen = append(f.seen, "readdir:"+path)
	return nil, nil
}

type fakeFile struct {
	fs   *fakeFS
	path string
	data []byte
	pos  int
}

func (f *fakeFile) Read(buf []byte) (int, error) {
	if f.pos >= len(f.data) {
		return 0, io.EOF
	}
	n := copy(buf, f.data[f.pos:])
	f.pos += n
	return n, nil
}

func (f *fakeFile) Write(buf []byte) (int, error) {
	f.data = append(f.data[:f.pos], buf...)
	f.pos = len(f.data)
	f.fs.files[f.path] = f.data
	return len(buf), nil
}

func (f *fakeFile) Seek(off int64, whence int) (int64, error) {
	switch whence {
	case io.SeekStart:
		f.pos = int(off)
	case io.SeekCurrent:
		f.pos += int(off)
	case io.SeekEnd:
		f.pos = len(f.data) + int(off)
	}
	return int64(f.pos), nil
}

func (f *fakeFile) Close() error           { return nil }
func (f *fakeFile) Stat() (m3.Stat, error) { return m3.Stat{Size: int64(len(f.data))}, nil }

func TestVFSLongestPrefixWins(t *testing.T) {
	s := newSystem(t, 3)
	s.app(t, "vfs", func(env *m3.Env) {
		root := newFakeFS("root")
		sub := newFakeFS("sub")
		if err := env.VFS.Mount("/", root); err != nil {
			t.Error(err)
		}
		if err := env.VFS.Mount("/sub", sub); err != nil {
			t.Error(err)
		}
		_, _ = env.VFS.Stat("/sub/file")
		_, _ = env.VFS.Stat("/other")
		if len(sub.seen) != 1 || sub.seen[0] != "stat:/file" {
			t.Errorf("sub saw %v, want [stat:/file]", sub.seen)
		}
		if len(root.seen) != 1 || root.seen[0] != "stat:/other" {
			t.Errorf("root saw %v, want [stat:/other]", root.seen)
		}
	})
	s.eng.Run()
}

func TestVFSDoubleMountRejected(t *testing.T) {
	s := newSystem(t, 3)
	s.app(t, "vfs", func(env *m3.Env) {
		if err := env.VFS.Mount("/x", newFakeFS("a")); err != nil {
			t.Error(err)
		}
		if err := env.VFS.Mount("/x", newFakeFS("b")); err == nil {
			t.Error("double mount must fail")
		}
	})
	s.eng.Run()
}

func TestVFSUnmountedPath(t *testing.T) {
	s := newSystem(t, 3)
	s.app(t, "vfs", func(env *m3.Env) {
		if _, err := env.VFS.Open("/nowhere", m3.OpenRead); !errors.Is(err, m3.ErrNotMounted) {
			t.Errorf("open: %v, want ErrNotMounted", err)
		}
		if _, err := env.VFS.Stat("/nowhere"); !errors.Is(err, m3.ErrNotMounted) {
			t.Errorf("stat: %v, want ErrNotMounted", err)
		}
		if err := env.VFS.Mkdir("/nowhere"); !errors.Is(err, m3.ErrNotMounted) {
			t.Errorf("mkdir: %v, want ErrNotMounted", err)
		}
	})
	s.eng.Run()
}

func TestVFSPathCleaning(t *testing.T) {
	s := newSystem(t, 3)
	s.app(t, "vfs", func(env *m3.Env) {
		fs := newFakeFS("root")
		if err := env.VFS.Mount("/", fs); err != nil {
			t.Error(err)
		}
		_, _ = env.VFS.Stat("//a///b/")
		found := false
		for _, op := range fs.seen {
			if op == "stat:/a/b" {
				found = true
			}
		}
		if !found {
			t.Errorf("path not cleaned: %v", fs.seen)
		}
	})
	s.eng.Run()
}

func TestVFSReadWriteFileHelpers(t *testing.T) {
	s := newSystem(t, 3)
	s.app(t, "vfs", func(env *m3.Env) {
		fs := newFakeFS("root")
		if err := env.VFS.Mount("/", fs); err != nil {
			t.Error(err)
		}
		payload := []byte(strings.Repeat("x", 10000)) // multiple 4 KiB chunks
		if err := env.VFS.WriteFile("/big", payload); err != nil {
			t.Error(err)
			return
		}
		got, err := env.VFS.ReadFile("/big")
		if err != nil || len(got) != len(payload) {
			t.Errorf("readfile: %d bytes, %v", len(got), err)
		}
		if _, err := env.VFS.ReadFile("/missing"); err == nil {
			t.Error("readfile of missing file must fail")
		}
	})
	s.eng.Run()
}
