package m3_test

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/m3"
)

func TestPipeFSLocalTransparency(t *testing.T) {
	s := newSystem(t, 3)
	s.app(t, "pipefs", func(env *m3.Env) {
		pfs := m3.NewPipeFS(env)
		if err := env.VFS.Mount("/pipes", pfs); err != nil {
			t.Error(err)
			return
		}
		if err := pfs.Create("/p1", 8192); err != nil {
			t.Error(err)
			return
		}
		// The application accesses the pipe like any file, through the
		// same VFS API (§4.5.8's transparency claim).
		w, err := env.VFS.Open("/pipes/p1", m3.OpenWrite)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := w.Write([]byte("through the vfs")); err != nil {
			t.Error(err)
			return
		}
		if err := w.Close(); err != nil {
			t.Error(err)
			return
		}
		r, err := env.VFS.Open("/pipes/p1", m3.OpenRead)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 64)
		n, err := r.Read(buf)
		if err != nil || string(buf[:n]) != "through the vfs" {
			t.Errorf("read = %q, %v", buf[:n], err)
		}
		if _, err := r.Read(buf); !errors.Is(err, io.EOF) {
			t.Errorf("second read = %v, want EOF", err)
		}
		if err := r.Close(); err != nil {
			t.Error(err)
		}
	})
	s.eng.Run()
}

func TestPipeFSCrossVPE(t *testing.T) {
	s := newSystem(t, 4)
	const total = 32 << 10
	var got []byte
	s.app(t, "parent", func(env *m3.Env) {
		pfs := m3.NewPipeFS(env)
		if err := env.VFS.Mount("/pipes", pfs); err != nil {
			t.Error(err)
			return
		}
		if err := pfs.Create("/data", 8192); err != nil {
			t.Error(err)
			return
		}
		sg, wm, size, err := pfs.Export("/data")
		if err != nil {
			t.Error(err)
			return
		}
		vpe, err := env.NewVPE("writer", "")
		if err != nil {
			t.Error(err)
			return
		}
		if err := vpe.Delegate(sg, 300, 1); err != nil {
			t.Error(err)
			return
		}
		if err := vpe.Delegate(wm, 301, 1); err != nil {
			t.Error(err)
			return
		}
		if err := vpe.Run(func(child *m3.Env) {
			cfs := m3.NewPipeFS(child)
			if err := child.VFS.Mount("/pipes", cfs); err != nil {
				child.SetExit(1)
				return
			}
			if err := cfs.Import("/data", 300, 301, size); err != nil {
				child.SetExit(1)
				return
			}
			w, err := child.VFS.Open("/pipes/data", m3.OpenWrite)
			if err != nil {
				child.SetExit(1)
				return
			}
			chunk := make([]byte, 2048)
			for i := 0; i < total/len(chunk); i++ {
				for j := range chunk {
					chunk[j] = byte(i)
				}
				if _, err := w.Write(chunk); err != nil {
					child.SetExit(1)
					return
				}
			}
			if err := w.Close(); err != nil {
				child.SetExit(1)
			}
		}); err != nil {
			t.Error(err)
			return
		}
		r, err := env.VFS.Open("/pipes/data", m3.OpenRead)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 2048)
		for {
			n, rerr := r.Read(buf)
			got = append(got, buf[:n]...)
			if rerr != nil {
				if !errors.Is(rerr, io.EOF) {
					t.Error(rerr)
				}
				break
			}
		}
		code, err := vpe.Wait()
		if err != nil || code != 0 {
			t.Errorf("child exit = %d, %v", code, err)
		}
	})
	s.eng.Run()
	if len(got) != total {
		t.Fatalf("got %d bytes, want %d", len(got), total)
	}
	want := make([]byte, 2048)
	for i := 0; i < total/2048; i++ {
		for j := range want {
			want[j] = byte(i)
		}
		if !bytes.Equal(got[i*2048:(i+1)*2048], want) {
			t.Fatalf("chunk %d corrupt", i)
		}
	}
}

func TestPipeFSErrors(t *testing.T) {
	s := newSystem(t, 3)
	s.app(t, "pipefs", func(env *m3.Env) {
		pfs := m3.NewPipeFS(env)
		if err := pfs.Create("/p", 4096); err != nil {
			t.Error(err)
			return
		}
		if err := pfs.Create("/p", 4096); err == nil {
			t.Error("duplicate create must fail")
		}
		if _, err := pfs.Open("/missing", m3.OpenRead); err == nil {
			t.Error("open of missing pipe must fail")
		}
		if _, err := pfs.Open("/p", m3.OpenRW); err == nil {
			t.Error("open with both read and write must fail")
		}
		if err := pfs.Mkdir("/d"); err == nil {
			t.Error("mkdir must fail on pipefs")
		}
		r, err := pfs.Open("/p", m3.OpenRead)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := pfs.Open("/p", m3.OpenRead); err == nil {
			t.Error("double open of reading end must fail")
		}
		if _, err := r.Seek(0, m3.SeekStart); err == nil {
			t.Error("seek on pipe must fail")
		}
		ents, err := pfs.ReadDir("/")
		if err != nil || len(ents) != 1 || ents[0].Name != "p" {
			t.Errorf("readdir = %v, %v", ents, err)
		}
		if err := pfs.Unlink("/p"); err != nil {
			t.Error(err)
		}
		if _, err := pfs.Stat("/p"); err == nil {
			t.Error("stat after unlink must fail")
		}
	})
	s.eng.Run()
}

func TestPipeFSLocalBounded(t *testing.T) {
	s := newSystem(t, 3)
	s.app(t, "pipefs", func(env *m3.Env) {
		pfs := m3.NewPipeFS(env)
		if err := pfs.Create("/p", 1024); err != nil {
			t.Error(err)
			return
		}
		w, err := pfs.Open("/p", m3.OpenWrite)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := w.Write(make([]byte, 1024)); err != nil {
			t.Error(err)
		}
		if _, err := w.Write([]byte{1}); err == nil {
			t.Error("overfull local pipe must fail, not deadlock")
		}
		r, err := pfs.Open("/p", m3.OpenRead)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 512)
		if _, err := r.Read(buf); err != nil {
			t.Error(err)
		}
		// Draining frees space for more writes.
		if _, err := w.Write([]byte{1}); err != nil {
			t.Error(err)
		}
		// Drain the remaining 512+1 bytes in one read.
		n, err := r.Read(make([]byte, 2048))
		if err != nil || n != 513 {
			t.Errorf("drain read = %d, %v; want 513", n, err)
		}
		// Reading an empty-but-open local pipe errors instead of
		// blocking the single-threaded program forever.
		if _, err := r.Read(buf); err == nil {
			t.Error("empty open local pipe should error")
		}
	})
	s.eng.Run()
}
