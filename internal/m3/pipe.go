package m3

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/dtu"
	"repro/internal/kif"
)

// Pipes (§4.5.7): a unidirectional data channel between exactly one
// writer and one reader. The data travels through a software-managed
// ringbuffer in DRAM — large enough to maximize reader/writer
// parallelism — while small messages synchronize the two sides: after
// writing, the writer notifies the reader with a message; the reader
// replies after consuming, which both returns buffer space and
// restores the writer's send credits. After setup, the kernel is not
// involved: pipe communication happens directly between the two PEs.

// pipeMsgSlots bounds the number of in-flight notifications.
const pipeMsgSlots = 4

// DefaultPipeSize is the DRAM ringbuffer size.
const DefaultPipeSize = 64 << 10

// PipeReader is the consuming end. The reader side creates the pipe:
// it owns the notification receive gate (receive gates cannot be
// delegated) and the ringbuffer memory, and hands the send gate plus a
// write-only memory gate to the writer via capability exchange.
type PipeReader struct {
	env  *Env
	rg   *RecvGate
	mem  *MemGate
	size int

	sgateSel kif.CapSel // send gate for the writer
	wmemSel  kif.CapSel // write-only ringbuffer gate for the writer

	rpos    int
	pending []byte // fetched from DRAM but not yet consumed
	eof     bool
}

// NewPipe creates the reader side of a pipe with the given ringbuffer
// size (DefaultPipeSize if 0).
func NewPipe(e *Env, size int) (*PipeReader, error) {
	if size <= 0 {
		size = DefaultPipeSize
	}
	rg, err := e.NewRecvGate(64, pipeMsgSlots)
	if err != nil {
		return nil, fmt.Errorf("m3: pipe rgate: %w", err)
	}
	mem, err := e.ReqMem(size, dtu.PermRW)
	if err != nil {
		return nil, fmt.Errorf("m3: pipe ringbuffer: %w", err)
	}
	sg, err := rg.NewSendGate(0x9e1b, pipeMsgSlots)
	if err != nil {
		return nil, fmt.Errorf("m3: pipe sgate: %w", err)
	}
	wmem, err := mem.Derive(0, size, dtu.PermWrite)
	if err != nil {
		return nil, fmt.Errorf("m3: pipe write gate: %w", err)
	}
	return &PipeReader{
		env: e, rg: rg, mem: mem, size: size,
		sgateSel: sg, wmemSel: wmem.Sel(),
	}, nil
}

// WriterSels returns the two capability selectors the writer needs
// (send gate, ringbuffer write gate), for delegation to the writer's
// VPE.
func (pr *PipeReader) WriterSels() (sgate, wmem kif.CapSel) {
	return pr.sgateSel, pr.wmemSel
}

// Size returns the ringbuffer size.
func (pr *PipeReader) Size() int { return pr.size }

// Read consumes up to len(buf) bytes. It returns io.EOF after the
// writer closed the pipe and all data was drained.
func (pr *PipeReader) Read(buf []byte) (int, error) {
	e := pr.env
	e.Ctx.Compute(CostPipeOp)
	for len(pr.pending) == 0 {
		if pr.eof {
			return 0, io.EOF
		}
		// With fault injection's call deadline armed, a writer that
		// died mid-pipe surfaces as a clean timeout instead of a
		// blocked reader (docs/RECOVERY.md).
		msg := pr.rg.RecvDeadline(e.DTU().CallDeadline())
		if msg == nil {
			return 0, fmt.Errorf("m3: pipe read: %w", kif.ErrTimeout)
		}
		is := kif.NewIStream(msg.Data)
		pos, n := int(is.U64()), int(is.U64())
		if is.Err() != nil {
			pr.rg.Ack(msg)
			return 0, is.Err()
		}
		if n == 0 {
			pr.eof = true
			if err := pr.rg.Reply(msg, ackPayload(0)); err != nil {
				return 0, err
			}
			continue
		}
		data := make([]byte, n)
		if err := pr.readRing(data, pos); err != nil {
			pr.rg.Ack(msg)
			return 0, err
		}
		pr.pending = data
		// The reply returns the consumed space to the writer.
		if err := pr.rg.Reply(msg, ackPayload(n)); err != nil {
			return 0, err
		}
	}
	n := copy(buf, pr.pending)
	pr.pending = pr.pending[n:]
	return n, nil
}

func (pr *PipeReader) readRing(buf []byte, pos int) error {
	first := pr.size - pos
	if first > len(buf) {
		first = len(buf)
	}
	if err := pr.mem.Read(buf[:first], pos); err != nil {
		return err
	}
	if first < len(buf) {
		return pr.mem.Read(buf[first:], 0)
	}
	return nil
}

func ackPayload(n int) []byte {
	var o kif.OStream
	o.U64(uint64(n))
	return o.Bytes()
}

// PipeWriter is the producing end, opened from delegated/obtained
// capability selectors.
type PipeWriter struct {
	env  *Env
	sg   *SendGate
	mem  *MemGate
	size int

	// Async lets notifications overlap with further writes instead of
	// waiting for each acknowledgement.
	Async bool

	wpos   int
	free   int
	inMsgs []uint64 // labels of outstanding notifications
	closed bool
}

// OpenPipeWriter wraps the writer-side capabilities of a pipe whose
// ringbuffer has the given size.
func OpenPipeWriter(e *Env, sgate, wmem kif.CapSel, size int) *PipeWriter {
	if size <= 0 {
		size = DefaultPipeSize
	}
	return &PipeWriter{
		env: e, sg: e.SendGateAt(sgate), mem: e.MemGateAt(wmem, size),
		size: size, free: size,
	}
}

// Write pushes all of buf into the pipe, blocking on ringbuffer space
// as needed. Like most libm3 abstractions it combines the send with
// waiting for the reply, making the asynchronous DTU messaging
// synchronous again (§4.5.6); set Async for overlapped notification.
func (pw *PipeWriter) Write(buf []byte) (int, error) {
	if pw.closed {
		return 0, errors.New("m3: write on closed pipe")
	}
	e := pw.env
	total := 0
	for len(buf) > 0 {
		e.Ctx.Compute(CostPipeOp)
		// Reclaim space from any acknowledgements that arrived.
		pw.collect(false)
		for pw.free == 0 {
			if err := pw.collect(true); err != nil {
				return total, err
			}
		}
		n := len(buf)
		if n > pw.free {
			n = pw.free
		}
		if err := pw.writeRing(buf[:n], pw.wpos); err != nil {
			return total, err
		}
		var o kif.OStream
		o.U64(uint64(pw.wpos)).U64(uint64(n))
		label, err := pw.sg.SendAsyncDeadline(o.Bytes(), e.DTU().CallDeadline())
		if err != nil {
			return total, err
		}
		pw.inMsgs = append(pw.inMsgs, label)
		pw.wpos = (pw.wpos + n) % pw.size
		pw.free -= n
		buf = buf[n:]
		total += n
		if !pw.Async {
			if err := pw.collect(true); err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

func (pw *PipeWriter) writeRing(buf []byte, pos int) error {
	first := pw.size - pos
	if first > len(buf) {
		first = len(buf)
	}
	if err := pw.mem.Write(buf[:first], pos); err != nil {
		return err
	}
	if first < len(buf) {
		return pw.mem.Write(buf[first:], 0)
	}
	return nil
}

// collect drains acknowledgements; when wait is true it blocks for the
// oldest outstanding one — bounded by the armed call deadline, so a
// reader that died mid-pipe surfaces as a clean timeout.
func (pw *PipeWriter) collect(wait bool) error {
	for len(pw.inMsgs) > 0 {
		var data []byte
		if wait {
			if d := pw.env.DTU().CallDeadline(); d > 0 {
				var err error
				data, err = pw.sg.CollectReplyDeadline(pw.inMsgs[0], d)
				if err != nil {
					// The acknowledgement is not coming; retire its
					// label so Close does not wait on it again.
					pw.inMsgs = pw.inMsgs[1:]
					return fmt.Errorf("m3: pipe write: %w", err)
				}
			} else {
				data = pw.sg.CollectReply(pw.inMsgs[0], true)
			}
		} else if data = pw.sg.CollectReply(pw.inMsgs[0], false); data == nil {
			return nil
		}
		is := kif.NewIStream(data)
		pw.free += int(is.U64())
		pw.inMsgs = pw.inMsgs[1:]
		wait = false // only block for one
	}
	return nil
}

// Close signals end-of-file to the reader and waits until every
// notification was acknowledged.
func (pw *PipeWriter) Close() error {
	if pw.closed {
		return nil
	}
	pw.closed = true
	var o kif.OStream
	o.U64(0).U64(0)
	label, err := pw.sg.SendAsyncDeadline(o.Bytes(), pw.env.DTU().CallDeadline())
	if err != nil {
		return err
	}
	pw.inMsgs = append(pw.inMsgs, label)
	for len(pw.inMsgs) > 0 {
		if err := pw.collect(true); err != nil {
			return err
		}
	}
	return nil
}
