package m3

import (
	"repro/internal/dtu"
	"repro/internal/kif"
	"repro/internal/sim"
)

// Device interrupts as messages (§4.4.2): the paper proposes sending
// device interrupts as ordinary DTU messages, so software can wait for
// them like for any other message, interpose them, or route them to
// any PE independent of the core. The prototype platform lacked
// devices; this file provides the proposed mechanism with a timer as
// the canonical device.
//
// A timer device is a program placed on its own PE (devices sit behind
// DTUs like every other unit). It receives a send gate to the handler's
// receive gate and emits one message per tick. Because the interrupt
// is just a message through a capability, interposition is a matter of
// pointing the device at a proxy's receive gate instead.

// TimerTick is the payload of one timer interrupt message.
type TimerTick struct {
	// Seq counts ticks from 0.
	Seq uint64
	// At is the device-local cycle time of the tick.
	At sim.Time
}

// encodeTick marshals a tick.
func encodeTick(t TimerTick) []byte {
	var o kif.OStream
	o.U64(t.Seq).U64(uint64(t.At))
	return o.Bytes()
}

// DecodeTick unmarshals a timer interrupt message payload.
func DecodeTick(data []byte) (TimerTick, error) {
	is := kif.NewIStream(data)
	t := TimerTick{Seq: is.U64(), At: sim.Time(is.U64())}
	return t, is.Err()
}

// TimerDevice returns the device program: it fires count interrupt
// messages (count 0 = forever), interval cycles apart, through the
// send gate delegated at sgateSel. Send failures from exhausted
// credits model an interrupt storm the handler cannot keep up with:
// the device drops the tick and continues, like real interrupt
// coalescing.
func TimerDevice(sgateSel kif.CapSel, interval sim.Time, count uint64) func(*Env) {
	return func(env *Env) {
		sg := env.SendGateAt(sgateSel)
		for seq := uint64(0); count == 0 || seq < count; seq++ {
			env.P().Sleep(interval)
			tick := TimerTick{Seq: seq, At: env.Ctx.Now()}
			// Non-blocking: an interrupt the handler has no buffer
			// space for is coalesced away, never queued unboundedly.
			// The handler's acknowledge (reply) restores the credit.
			if err := sg.TrySend(encodeTick(tick)); err != nil {
				continue
			}
		}
	}
}

// InterruptGate is the handler side: a receive gate dedicated to
// interrupt messages.
type InterruptGate struct {
	RG *RecvGate
}

// NewInterruptGate creates a receive gate sized for interrupt
// payloads and returns it with a send gate selector for the device
// (credits bound the number of unhandled interrupts; further ticks are
// dropped by the device, not queued unboundedly).
func NewInterruptGate(env *Env, pending int) (*InterruptGate, kif.CapSel, error) {
	rg, err := env.NewRecvGate(32, pending)
	if err != nil {
		return nil, kif.InvalidSel, err
	}
	sg, err := rg.NewSendGate(0x1e9, pending)
	if err != nil {
		return nil, kif.InvalidSel, err
	}
	return &InterruptGate{RG: rg}, sg, nil
}

// Wait blocks until the next interrupt and returns its tick. It is
// the message-based analogue of waiting for an interrupt, and it
// composes with waiting for any other message. Returning acknowledges
// the interrupt: the reply restores the device's send credit.
func (ig *InterruptGate) Wait() (TimerTick, error) {
	//m3vet:nodeadline waiting for the next interrupt is unbounded by design
	msg := ig.RG.Recv()
	tick, err := DecodeTick(msg.Data)
	ig.ack(msg)
	return tick, err
}

// TryWait polls for a pending interrupt.
func (ig *InterruptGate) TryWait() (TimerTick, bool) {
	msg := ig.RG.TryRecv()
	if msg == nil {
		return TimerTick{}, false
	}
	tick, err := DecodeTick(msg.Data)
	ig.ack(msg)
	if err != nil {
		return TimerTick{}, false
	}
	return tick, true
}

// ack signals end-of-interrupt: a reply when the device asked for one
// (restoring its credit), a plain buffer release otherwise.
func (ig *InterruptGate) ack(msg *dtu.Message) {
	if msg.CanReply() {
		if err := ig.RG.Reply(msg, nil); err == nil {
			return
		}
	}
	ig.RG.Ack(msg)
}

// InterruptProxy forwards interrupts from its own gate to another
// handler — the paper's interposition: because interrupts are
// messages over capabilities, a monitor can be slotted in without the
// device or the final handler changing.
func InterruptProxy(env *Env, in *InterruptGate, outSGate kif.CapSel, count uint64, observe func(TimerTick)) error {
	out := env.SendGateAt(outSGate)
	for seq := uint64(0); count == 0 || seq < count; seq++ {
		tick, err := in.Wait()
		if err != nil {
			return err
		}
		if observe != nil {
			observe(tick)
		}
		if err := out.Send(encodeTick(tick)); err != nil {
			return err
		}
	}
	return nil
}
