package m3_test

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/m3"
	"repro/internal/m3fs"
	"repro/internal/sim"
	"repro/internal/tile"
)

// TestSyncAndBootFromImage exercises the persistence story end to end:
// an application writes files and syncs; the dumped image then boots a
// second, fresh system whose m3fs serves the same files with identical
// contents — the paper's claim that m3fs's organization is "suitable
// for persistent storage as well" (§4.5.8).
func TestSyncAndBootFromImage(t *testing.T) {
	payload := bytes.Repeat([]byte("persist-me!"), 3000) // ~32 KiB

	// First boot: write and sync.
	var image []byte
	{
		s := newSystem(t, 3)
		s.app(t, "writer", func(env *m3.Env) {
			c, err := m3fs.MountAt(env, "/", "")
			if err != nil {
				t.Error(err)
				return
			}
			if err := env.VFS.Mkdir("/data"); err != nil {
				t.Error(err)
				return
			}
			if err := env.VFS.WriteFile("/data/blob.bin", payload); err != nil {
				t.Error(err)
				return
			}
			if err := env.VFS.WriteFile("/data/note.txt", []byte("survives reboot")); err != nil {
				t.Error(err)
				return
			}
			if err := c.Sync(); err != nil {
				t.Error(err)
			}
		})
		s.eng.Run()
		if s.fs == nil || s.fs.SyncedImage == nil {
			t.Fatal("sync produced no image")
		}
		image = s.fs.SyncedImage
	}

	// Second boot: mount from the image and verify.
	{
		eng := sim.NewEngine()
		plat := tile.NewPlatform(eng, tile.Homogeneous(3))
		kern := core.Boot(plat, 0)
		var svc *m3fs.Service
		if _, err := kern.StartInit("m3fs", "", m3fs.Program(kern, m3fs.Config{Image: image},
			func(s *m3fs.Service) { svc = s })); err != nil {
			t.Fatal(err)
		}
		var got []byte
		var note []byte
		if _, err := kern.StartInit("reader", "", func(ctx *tile.Ctx) {
			env := m3.NewEnv(ctx, kern)
			if _, err := m3fs.MountAt(env, "/", ""); err != nil {
				t.Error(err)
				return
			}
			var err error
			got, err = env.VFS.ReadFile("/data/blob.bin")
			if err != nil {
				t.Error(err)
			}
			note, err = env.VFS.ReadFile("/data/note.txt")
			if err != nil {
				t.Error(err)
			}
			env.Exit(0)
		}); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		if !bytes.Equal(got, payload) {
			t.Fatalf("blob after reboot: %d bytes, want %d", len(got), len(payload))
		}
		if string(note) != "survives reboot" {
			t.Fatalf("note after reboot = %q", note)
		}
		if svc == nil {
			t.Fatal("service never ready")
		}
		if err := svc.FS().CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSyncImageGrowsAfterMoreWrites checks the dump reflects later
// state.
func TestSyncImageGrowsAfterMoreWrites(t *testing.T) {
	s := newSystem(t, 3)
	var first, second int
	s.app(t, "writer", func(env *m3.Env) {
		c, err := m3fs.MountAt(env, "/", "")
		if err != nil {
			t.Error(err)
			return
		}
		if err := env.VFS.WriteFile("/a", make([]byte, 4096)); err != nil {
			t.Error(err)
			return
		}
		if err := c.Sync(); err != nil {
			t.Error(err)
			return
		}
		first = len(s.fs.SyncedImage)
		if err := env.VFS.WriteFile("/b", make([]byte, 64<<10)); err != nil {
			t.Error(err)
			return
		}
		if err := c.Sync(); err != nil {
			t.Error(err)
			return
		}
		second = len(s.fs.SyncedImage)
	})
	s.eng.Run()
	if second <= first {
		t.Fatalf("image did not grow: %d then %d bytes", first, second)
	}
}
