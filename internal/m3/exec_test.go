package m3_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/kif"
	"repro/internal/m3"
	"repro/internal/m3fs"
)

// wcMain is the "executable" used by the exec tests: it counts the
// bytes of the file named in its first argument and reports the count
// as its exit code.
func wcMain(env *m3.Env) {
	if _, err := m3fs.MountAt(env, "/", ""); err != nil {
		env.SetExit(-1)
		return
	}
	if len(env.Args) != 1 {
		env.SetExit(-2)
		return
	}
	data, err := env.VFS.ReadFile(env.Args[0])
	if err != nil {
		env.SetExit(-3)
		return
	}
	env.SetExit(int64(len(data)))
}

func init() {
	m3.RegisterProgram("/bin/wc", wcMain)
}

// TestExecFromFilesystem exercises the exec path of §4.5.5: the parent
// loads an executable from m3fs onto the child PE (paying for the real
// byte transfer) and runs it with arguments.
func TestExecFromFilesystem(t *testing.T) {
	s := newSystem(t, 4)
	s.app(t, "shell", func(env *m3.Env) {
		if _, err := m3fs.MountAt(env, "/", ""); err != nil {
			t.Error(err)
			return
		}
		// Install the "binary" (16 KiB of code bytes) and an input file.
		if err := env.VFS.Mkdir("/bin"); err != nil {
			t.Error(err)
			return
		}
		binary := []byte(strings.Repeat("code", 4096))
		if err := env.VFS.WriteFile("/bin/wc", binary); err != nil {
			t.Error(err)
			return
		}
		if err := env.VFS.WriteFile("/input.txt", []byte("count these 23 bytes ok")); err != nil {
			t.Error(err)
			return
		}
		vpe, err := env.NewVPE("wc", "")
		if err != nil {
			t.Error(err)
			return
		}
		start := env.Ctx.Now()
		if err := vpe.Exec("/bin/wc", "/input.txt"); err != nil {
			t.Error(err)
			return
		}
		loadTime := env.Ctx.Now() - start
		code, err := vpe.Wait()
		if err != nil {
			t.Error(err)
			return
		}
		if code != 23 {
			t.Errorf("wc exit code = %d, want 23", code)
		}
		// Exec transfers the binary's bytes: at least 16 KiB through
		// the DTU (2 KiB/cycle would be impossible; 8 B/cycle gives a
		// floor of 2048 cycles for the copy alone).
		if loadTime < 2048 {
			t.Errorf("exec took %d cycles, too fast for a 16 KiB load", loadTime)
		}
	})
	s.eng.Run()
}

func TestExecMissingProgram(t *testing.T) {
	s := newSystem(t, 4)
	s.app(t, "shell", func(env *m3.Env) {
		if _, err := m3fs.MountAt(env, "/", ""); err != nil {
			t.Error(err)
			return
		}
		vpe, err := env.NewVPE("x", "")
		if err != nil {
			t.Error(err)
			return
		}
		// Not registered at all.
		if err := vpe.Exec("/bin/none"); err == nil {
			t.Error("exec of unregistered program must fail")
		}
		// Registered but no file behind the path.
		m3.RegisterProgram("/bin/ghost", func(*m3.Env) {})
		if err := vpe.Exec("/bin/ghost"); !errors.Is(err, kif.ErrNoSuchFile) {
			t.Errorf("exec without executable file: %v, want ErrNoSuchFile", err)
		}
		if _, ok := m3.LookupProgram("/bin/wc"); !ok {
			t.Error("registered program not found")
		}
	})
	s.eng.Run()
}
