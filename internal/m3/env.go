// Package m3 is libm3: the library applications program against. It
// wraps the DTU and the kernel protocol in lightweight abstractions —
// gates, virtual PEs, files, and pipes — "rather than a
// POSIX-compliant environment" (§4.5.2).
package m3

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/dtu"
	"repro/internal/kif"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/tile"
)

// Env is the per-program library state: selector allocation, endpoint
// multiplexing, the mount table, and the syscall channel (installed by
// the kernel on EP0/EP1 before the program started).
type Env struct {
	Ctx  *tile.Ctx
	Kern *core.Kernel
	Args []string

	nextSel   kif.CapSel
	nextLabel uint64
	eps       *epManager
	rbufNext  int
	exitCode  int64

	// stashed call replies that arrived on the call-reply endpoint
	// while waiting for a different label (pipes interleaving with
	// service calls).
	stash map[uint64]*dtu.Message

	// abandoned labels: calls given up on after a deadline. A late
	// reply carrying one is acked immediately instead of stashed, so
	// it cannot leak a ringbuffer slot (lookup/delete only, never
	// walked).
	abandoned map[uint64]bool

	VFS *VFS
}

// NewEnv creates the library state for the program running in ctx. The
// kernel reference stands in for the boot environment block the real
// kernel writes into the PE's memory.
func NewEnv(ctx *tile.Ctx, kern *core.Kernel, args ...string) *Env {
	e := &Env{
		Ctx:       ctx,
		Kern:      kern,
		Args:      args,
		nextSel:   1,
		rbufNext:  kif.RBufSpaceBegin,
		stash:     make(map[uint64]*dtu.Message),
		abandoned: make(map[uint64]bool),
	}
	e.eps = newEPManager(e)
	e.VFS = NewVFS(e)
	return e
}

// P returns the program's simulation process.
func (e *Env) P() *sim.Process { return e.Ctx.P }

// DTU returns the PE's data transfer unit.
func (e *Env) DTU() *dtu.DTU { return e.Ctx.PE.DTU }

// AllocSel returns a fresh capability selector.
func (e *Env) AllocSel() kif.CapSel {
	s := e.nextSel
	e.nextSel++
	return s
}

// AllocSels returns the first of n consecutive fresh selectors.
func (e *Env) AllocSels(n uint64) kif.CapSel {
	s := e.nextSel
	e.nextSel += kif.CapSel(n)
	return s
}

func (e *Env) allocLabel() uint64 {
	e.nextLabel++
	return e.nextLabel
}

// allocRBuf reserves SPM space for a receive-gate ringbuffer.
func (e *Env) allocRBuf(size int) (int, error) {
	if e.rbufNext+size > kif.RBufSpaceEnd {
		return 0, fmt.Errorf("m3: out of ringbuffer space (%d + %d > %d)",
			e.rbufNext, size, kif.RBufSpaceEnd)
	}
	a := e.rbufNext
	e.rbufNext += size
	return a, nil
}

// Syscall sends a request to the kernel over the DTU and waits for the
// reply: the paper's replacement for the mode switch. The returned
// stream is positioned after the error code.
//
// This is the root of a causal span: the id is allocated here, stamped
// into the DTU's span register, and rides the message header through
// the NoC, the kernel, and any service it calls, back to the reply.
func (e *Env) Syscall(req *kif.OStream) (*kif.IStream, error) {
	e.Ctx.Compute(CostSysMarshal)
	d := e.DTU()
	var span obs.SpanID
	var t0 sim.Time
	tr := e.Ctx.PE.Obs()
	if tr.On() {
		span, t0 = tr.NewSpan(), e.Ctx.Now()
		tr.Emit(obs.Event{At: t0, PE: int32(e.Ctx.PE.Node), Layer: obs.LApp,
			Kind: obs.EvSyscallStart, Span: span,
			Arg0: uint64(kif.NewIStream(req.Bytes()).Op())})
		d.StampSpan(span)
	}
	if err := d.Send(e.P(), kif.SyscallEP, req.Bytes(), kif.SysReplyEP, 0); err != nil {
		if tr.On() {
			tr.Emit(obs.Event{At: e.Ctx.Now(), PE: int32(e.Ctx.PE.Node), Layer: obs.LApp,
				Kind: obs.EvSyscallEnd, Span: span,
				Arg0: uint64(kif.NewIStream(req.Bytes()).Op()), Arg1: 1})
		}
		if errors.Is(err, dtu.ErrTimeout) {
			// The DTU gave up after its retry budget (fault injection);
			// surface the protocol-level error so callers can handle it
			// like any other kernel refusal.
			return nil, fmt.Errorf("m3: syscall send: %w", kif.ErrTimeout)
		}
		return nil, fmt.Errorf("m3: syscall send: %w", err)
	}
	msg, _ := d.WaitMsg(e.P(), kif.SysReplyEP)
	e.Ctx.Compute(CostSysUnmarshal)
	if tr.On() {
		now := e.Ctx.Now()
		tr.Emit(obs.Event{At: now, PE: int32(e.Ctx.PE.Node), Layer: obs.LApp,
			Kind: obs.EvSyscallEnd, Span: span,
			Arg0: uint64(kif.NewIStream(req.Bytes()).Op())})
		tr.Hist(obs.HSyscallRTT).Observe(uint64(now - t0))
	}
	is := kif.NewIStream(msg.Data)
	kerr := is.ErrCode()
	d.Ack(kif.SysReplyEP, msg)
	if kerr != kif.OK {
		return nil, kerr
	}
	return is, nil
}

// Noop performs the null system call (Figure 3 micro-benchmark).
func (e *Env) Noop() error {
	var o kif.OStream
	o.Op(kif.SysNoop)
	_, err := e.Syscall(&o)
	return err
}

// Exit reports the program's exit code to the kernel; no reply is
// expected. Program wrappers call it automatically when the program
// function returns.
func (e *Env) Exit(code int64) {
	var o kif.OStream
	o.Op(kif.SysExit).I64(code)
	e.Ctx.Compute(CostSysMarshal)
	// Best effort: an exiting program cannot do anything about errors.
	//m3vet:allow errchecklite the program is gone either way; the kernel reaps it via VPE wait
	_ = e.DTU().Send(e.P(), kif.SyscallEP, o.Bytes(), -1, 0)
}

// ReqMem asks the kernel for a DRAM region and returns a memory gate
// for it.
func (e *Env) ReqMem(size int, perms dtu.Perm) (*MemGate, error) {
	return e.reqMem(size, perms, false)
}

// ReqMemStable is ReqMem with the stable flag: a supervised service
// asking for stable memory gets the same pinned region back after
// every restart, contents preserved — the persistence anchor of the
// m3fs journal. For unsupervised callers the flag is a plain ReqMem.
func (e *Env) ReqMemStable(size int, perms dtu.Perm) (*MemGate, error) {
	return e.reqMem(size, perms, true)
}

func (e *Env) reqMem(size int, perms dtu.Perm, stable bool) (*MemGate, error) {
	sel := e.AllocSel()
	var o kif.OStream
	o.Op(kif.SysReqMem).Sel(sel).U64(uint64(size)).U64(uint64(perms))
	if stable {
		o.U64(1)
	} else {
		o.U64(0)
	}
	if _, err := e.Syscall(&o); err != nil {
		return nil, err
	}
	return e.MemGateAt(sel, size), nil
}

// Revoke undoes all grants of the capability at sel recursively.
func (e *Env) Revoke(sel kif.CapSel) error {
	var o kif.OStream
	o.Op(kif.SysRevoke).Sel(sel)
	_, err := e.Syscall(&o)
	return err
}

// OpenSess opens a session at the named service. The kernel forwards
// the request to the service, which may deny it.
func (e *Env) OpenSess(name, arg string) (kif.CapSel, error) {
	sel := e.AllocSel()
	var o kif.OStream
	o.Op(kif.SysOpenSess).Sel(sel).Str(name).Str(arg)
	if _, err := e.Syscall(&o); err != nil {
		return kif.InvalidSel, err
	}
	return sel, nil
}

// ExchangeSess performs a session-scoped capability exchange: obtain
// pulls capCount capabilities chosen by the service into selectors
// starting at caps; delegate pushes the caller's. It returns the
// service's answer arguments.
func (e *Env) ExchangeSess(sess kif.CapSel, obtain bool, caps kif.CapSel, capCount uint64, args []byte) ([]byte, error) {
	var o kif.OStream
	o.Op(kif.SysExchangeSess).Sel(sess)
	if obtain {
		o.U64(1)
	} else {
		o.U64(0)
	}
	o.Sel(caps).U64(capCount).Blob(args)
	is, err := e.Syscall(&o)
	if err != nil {
		return nil, err
	}
	return is.Blob(), nil
}

// Delegate grants count capabilities starting at mine to the VPE whose
// capability the caller holds at vpeSel, placing them at theirs.
func (e *Env) Delegate(vpeSel, mine, theirs kif.CapSel, count uint64) error {
	var o kif.OStream
	o.Op(kif.SysDelegate).Sel(vpeSel).Sel(mine).Sel(theirs).U64(count)
	_, err := e.Syscall(&o)
	return err
}

// Obtain pulls count capabilities from the peer VPE's selectors
// starting at theirs into the caller's table at mine.
func (e *Env) Obtain(vpeSel, mine, theirs kif.CapSel, count uint64) error {
	var o kif.OStream
	o.Op(kif.SysObtain).Sel(vpeSel).Sel(mine).Sel(theirs).U64(count)
	_, err := e.Syscall(&o)
	return err
}

// recvReply waits for a call reply with the given label on the
// call-reply endpoint, stashing replies that belong to other labels
// (e.g. pipe acknowledgements arriving between service calls).
func (e *Env) recvReply(label uint64) *dtu.Message {
	return e.recvReplyDeadline(label, 0)
}

// recvReplyDeadline is recvReply with a cycle budget: nil after
// deadline cycles without the wanted label. Zero means unbounded (and
// schedules nothing, preserving the fault-free event schedule).
func (e *Env) recvReplyDeadline(label uint64, deadline sim.Time) *dtu.Message {
	if m, ok := e.stash[label]; ok {
		delete(e.stash, label)
		return m
	}
	d := e.DTU()
	for {
		msg, _ := d.WaitMsgDeadline(e.P(), deadline, kif.CallReplyEP)
		if msg == nil {
			return nil
		}
		if msg.Label == label {
			return msg
		}
		e.stashOrDrop(msg)
	}
}

// DiscardReply marks a call label abandoned: if its reply already
// arrived it is acked now, otherwise it will be acked on arrival.
// Callers use it after recvReplyDeadline gave up, so a late reply from
// a slow (or restarted) service cannot pin a ringbuffer slot forever.
func (e *Env) DiscardReply(label uint64) {
	if m, ok := e.stash[label]; ok {
		delete(e.stash, label)
		e.DTU().Ack(kif.CallReplyEP, m)
		return
	}
	e.abandoned[label] = true
}

// stashOrDrop files a foreign-label reply: abandoned labels are acked
// straight away, everything else waits in the stash.
func (e *Env) stashOrDrop(msg *dtu.Message) {
	if e.abandoned[msg.Label] {
		delete(e.abandoned, msg.Label)
		e.DTU().Ack(kif.CallReplyEP, msg)
		return
	}
	e.stash[msg.Label] = msg
}

// tryRecvReply returns a stashed or pending reply for label without
// blocking.
func (e *Env) tryRecvReply(label uint64) *dtu.Message {
	if m, ok := e.stash[label]; ok {
		delete(e.stash, label)
		return m
	}
	d := e.DTU()
	for d.HasMsg(kif.CallReplyEP) {
		msg := d.Fetch(kif.CallReplyEP)
		if msg.Label == label {
			return msg
		}
		e.stashOrDrop(msg)
	}
	return nil
}
