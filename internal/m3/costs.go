package m3

import "repro/internal/sim"

// Client-side cycle costs. Together with the kernel costs in package
// core they calibrate the null system call to the paper's ~200 cycles
// (§5.3) and the file fast path to ~70 cycles to reach the read
// function plus ~90 cycles to determine the location (§5.4).
const (
	// CostSysMarshal covers building the request and programming the
	// DTU send registers.
	CostSysMarshal sim.Time = 55
	// CostSysUnmarshal covers fetching and decoding the reply.
	CostSysUnmarshal sim.Time = 30

	// CostCallMarshal/Unmarshal are the same for service gate calls.
	CostCallMarshal   sim.Time = 55
	CostCallUnmarshal sim.Time = 30

	// CostMemOp is the DTU programming cost of a memory-gate transfer.
	CostMemOp sim.Time = 15

	// CostFileEnter models reaching the read/write function through the
	// POSIX-like API (~70 cycles in the paper).
	CostFileEnter sim.Time = 70
	// CostFileLocate models determining the position within the already
	// obtained extents (~90 cycles in the paper).
	CostFileLocate sim.Time = 90

	// CostVFSComponent is charged per path component for mount-table
	// and path handling in libm3.
	CostVFSComponent sim.Time = 20

	// CostPipeOp models the libm3 pipe bookkeeping per chunk.
	CostPipeOp sim.Time = 60
)

// CloneImageSize is the number of bytes VPE.Run transfers to the target
// PE: code, static data, used heap, and stack (§4.5.5). The prototype
// SPMs hold 64 KiB; a typical image uses half.
const CloneImageSize = 32 << 10
