package m3_test

import (
	"errors"
	"testing"

	"repro/internal/dtu"
	"repro/internal/kif"
	"repro/internal/m3"
)

// Direct gate-level tests: the client/server message patterns libm3
// builds everything else on.

func TestServerWithMultipleLabeledSenders(t *testing.T) {
	s := newSystem(t, 6)
	got := map[uint64]int{}
	s.app(t, "server", func(env *m3.Env) {
		rg, err := env.NewRecvGate(128, 8)
		if err != nil {
			t.Error(err)
			return
		}
		// Three clients, each with a distinct receiver-chosen label.
		var vpes []*m3.ChildVPE
		for i := uint64(1); i <= 3; i++ {
			sg, err := rg.NewSendGate(i, 2)
			if err != nil {
				t.Error(err)
				return
			}
			vpe, err := env.NewVPE("client", "")
			if err != nil {
				t.Error(err)
				return
			}
			if err := vpe.Delegate(sg, 500, 1); err != nil {
				t.Error(err)
				return
			}
			if err := vpe.Run(func(child *m3.Env) {
				csg := child.SendGateAt(500)
				for n := 0; n < 4; n++ {
					if _, err := csg.Call([]byte{byte(n)}); err != nil {
						child.SetExit(1)
						return
					}
				}
			}); err != nil {
				t.Error(err)
				return
			}
			vpes = append(vpes, vpe)
		}
		// The server identifies each client by the unforgeable label —
		// "no additional lookup in a hash table is necessary" (§4.4.2).
		for i := 0; i < 12; i++ {
			msg := rg.Recv()
			got[msg.Label]++
			if err := rg.Reply(msg, []byte("ok")); err != nil {
				t.Error(err)
				return
			}
		}
		for _, vpe := range vpes {
			if code, err := vpe.Wait(); err != nil || code != 0 {
				t.Errorf("client exit %d, %v", code, err)
			}
		}
	})
	s.eng.Run()
	for i := uint64(1); i <= 3; i++ {
		if got[i] != 4 {
			t.Fatalf("label %d: %d messages, want 4 (map %v)", i, got[i], got)
		}
	}
}

func TestTrySendExhaustsWithoutBlocking(t *testing.T) {
	s := newSystem(t, 4)
	s.app(t, "trysend", func(env *m3.Env) {
		rg, err := env.NewRecvGate(64, 2)
		if err != nil {
			t.Error(err)
			return
		}
		sg, err := rg.NewSendGate(9, 2)
		if err != nil {
			t.Error(err)
			return
		}
		vpe, err := env.NewVPE("burst", "")
		if err != nil {
			t.Error(err)
			return
		}
		if err := vpe.Delegate(sg, 500, 1); err != nil {
			t.Error(err)
			return
		}
		var denied int64
		if err := vpe.Run(func(child *m3.Env) {
			csg := child.SendGateAt(500)
			d := int64(0)
			for n := 0; n < 5; n++ {
				if err := csg.TrySend([]byte{byte(n)}); err != nil {
					if !errors.Is(err, dtu.ErrNoCredits) {
						child.SetExit(2)
						return
					}
					d++
				}
			}
			child.SetExit(d)
		}); err != nil {
			t.Error(err)
			return
		}
		denied, err = vpe.Wait()
		if err != nil {
			t.Error(err)
			return
		}
		// 2 credits, 5 attempts, no replies in between: 3 denied.
		if denied != 3 {
			t.Errorf("denied = %d, want 3", denied)
		}
		// The two delivered messages are pending.
		n := 0
		for {
			msg := rg.TryRecv()
			if msg == nil {
				break
			}
			n++
			rg.Ack(msg)
		}
		if n != 2 {
			t.Errorf("delivered = %d, want 2", n)
		}
	})
	s.eng.Run()
}

func TestCallRepliesRoutedByLabel(t *testing.T) {
	s := newSystem(t, 4)
	// Two services on the same env answered out of order would corrupt
	// call/reply matching if labels were not respected. Here we check
	// the simplest property: sequential calls always see their own
	// reply payloads.
	s.app(t, "labels", func(env *m3.Env) {
		rg, err := env.NewRecvGate(128, 4)
		if err != nil {
			t.Error(err)
			return
		}
		sg, err := rg.NewSendGate(1, 4)
		if err != nil {
			t.Error(err)
			return
		}
		// Echo server on a second PE.
		vpe, err := env.NewVPE("echo", "")
		if err != nil {
			t.Error(err)
			return
		}
		// The echo server owns the rgate? No: receive gates stay with
		// their creator. Instead the child calls us and we reply.
		if err := vpe.Delegate(sg, 500, 1); err != nil {
			t.Error(err)
			return
		}
		if err := vpe.Run(func(child *m3.Env) {
			csg := child.SendGateAt(500)
			for n := byte(0); n < 8; n++ {
				resp, err := csg.Call([]byte{n})
				if err != nil || len(resp) != 1 || resp[0] != n+100 {
					child.SetExit(1)
					return
				}
			}
		}); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 8; i++ {
			msg := rg.Recv()
			if err := rg.Reply(msg, []byte{msg.Data[0] + 100}); err != nil {
				t.Error(err)
				return
			}
		}
		if code, err := vpe.Wait(); err != nil || code != 0 {
			t.Errorf("echo client exit %d, %v", code, err)
		}
	})
	s.eng.Run()
}

func TestSelectorAllocationMonotonic(t *testing.T) {
	s := newSystem(t, 3)
	s.app(t, "sels", func(env *m3.Env) {
		a := env.AllocSel()
		b := env.AllocSels(4)
		c := env.AllocSel()
		if b != a+1 || c != b+4 {
			t.Errorf("selector allocation: %d %d %d", a, b, c)
		}
		if a == kif.InvalidSel || b == kif.InvalidSel {
			t.Error("allocated invalid selector")
		}
	})
	s.eng.Run()
}
