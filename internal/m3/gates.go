package m3

import (
	"errors"
	"fmt"

	"repro/internal/dtu"
	"repro/internal/kif"
	"repro/internal/obs"
	"repro/internal/sim"
)

// ErrNoFreeEP is returned when every multiplexable endpoint is pinned
// by a receive gate.
var ErrNoFreeEP = errors.New("m3: no free endpoint")

// epManager multiplexes the PE's free endpoints (FirstFreeEP and up)
// among the program's gates, since applications may hold more gates
// than endpoints exist (§4.5.4). Send and memory gates are re-activated
// on demand with LRU eviction; receive gates pin their endpoint.
type epManager struct {
	env   *Env
	gates []*gateBase // index 0 == kif.FirstFreeEP
	clock uint64
}

func newEPManager(e *Env) *epManager {
	n := e.Ctx.PE.DTU.NumEndpoints() - kif.FirstFreeEP
	return &epManager{env: e, gates: make([]*gateBase, n)}
}

// acquire makes sure g is bound to an endpoint and returns its index.
func (m *epManager) acquire(g *gateBase) (int, error) {
	m.clock++
	if g.ep >= 0 {
		g.lastUse = m.clock
		return g.ep, nil
	}
	victim := -1
	for i, cur := range m.gates {
		if cur == nil {
			victim = i
			break
		}
	}
	if victim < 0 {
		var oldest uint64 = ^uint64(0)
		for i, cur := range m.gates {
			if !cur.pinned && cur.lastUse < oldest {
				oldest = cur.lastUse
				victim = i
			}
		}
		if victim < 0 {
			return -1, ErrNoFreeEP
		}
		m.gates[victim].ep = -1
	}
	ep := victim + kif.FirstFreeEP
	if err := m.env.activate(g, ep); err != nil {
		return -1, err
	}
	m.gates[victim] = g
	g.ep = ep
	g.lastUse = m.clock
	return ep, nil
}

// release unbinds g (used when dropping a gate).
func (m *epManager) release(g *gateBase) {
	if g.ep >= 0 {
		m.gates[g.ep-kif.FirstFreeEP] = nil
		g.ep = -1
	}
}

// gateBase is the common state of all gate kinds.
type gateBase struct {
	env     *Env
	sel     kif.CapSel
	ep      int
	bufAddr int // receive gates only
	pinned  bool
	lastUse uint64
}

// Sel returns the gate's capability selector.
func (g *gateBase) Sel() kif.CapSel { return g.sel }

// EP returns the currently bound endpoint, or -1.
func (g *gateBase) EP() int { return g.ep }

// activate performs the activate system call for g on endpoint ep.
func (e *Env) activate(g *gateBase, ep int) error {
	var o kif.OStream
	o.Op(kif.SysActivate).Sel(g.sel).I64(int64(ep)).U64(uint64(g.bufAddr))
	_, err := e.Syscall(&o)
	return err
}

// RecvGate receives messages on a pinned endpoint backed by an SPM
// ringbuffer.
type RecvGate struct {
	gateBase
	SlotSize int
	Slots    int
}

// NewRecvGate creates and activates a receive gate with the given
// payload slot size and slot count.
func (e *Env) NewRecvGate(slotSize, slots int) (*RecvGate, error) {
	sel := e.AllocSel()
	var o kif.OStream
	o.Op(kif.SysCreateRGate).Sel(sel).U64(uint64(slotSize)).U64(uint64(slots))
	if _, err := e.Syscall(&o); err != nil {
		return nil, err
	}
	buf, err := e.allocRBuf((slotSize + dtu.HeaderSize) * slots)
	if err != nil {
		return nil, err
	}
	rg := &RecvGate{
		gateBase: gateBase{env: e, sel: sel, ep: -1, bufAddr: buf, pinned: true},
		SlotSize: slotSize,
		Slots:    slots,
	}
	if _, err := e.eps.acquire(&rg.gateBase); err != nil {
		return nil, err
	}
	return rg, nil
}

// NewSendGate creates a send gate for rg with the given label and
// credit limit, to be handed to senders via capability exchange.
func (rg *RecvGate) NewSendGate(label uint64, credits int) (kif.CapSel, error) {
	e := rg.env
	sel := e.AllocSel()
	var o kif.OStream
	o.Op(kif.SysCreateSGate).Sel(sel).Sel(rg.sel).U64(label).I64(int64(credits))
	if _, err := e.Syscall(&o); err != nil {
		return kif.InvalidSel, err
	}
	return sel, nil
}

// Recv blocks until a message arrives.
func (rg *RecvGate) Recv() *dtu.Message {
	msg, _ := rg.env.DTU().WaitMsg(rg.env.P(), rg.ep)
	return msg
}

// RecvDeadline is Recv bounded by a cycle budget: it returns nil when
// the deadline expires first. A zero deadline is exactly Recv —
// unbounded, and scheduling no deadline events.
func (rg *RecvGate) RecvDeadline(deadline sim.Time) *dtu.Message {
	msg, _ := rg.env.DTU().WaitMsgDeadline(rg.env.P(), deadline, rg.ep)
	return msg
}

// TryRecv fetches a pending message without blocking.
func (rg *RecvGate) TryRecv() *dtu.Message {
	return rg.env.DTU().Fetch(rg.ep)
}

// Reply answers msg; this also frees its ringbuffer slot and restores
// the sender's credit.
func (rg *RecvGate) Reply(msg *dtu.Message, data []byte) error {
	rg.env.Ctx.Compute(CostCallMarshal)
	return rg.env.DTU().Reply(rg.env.P(), rg.ep, msg, data)
}

// Ack frees msg's ringbuffer slot without replying.
func (rg *RecvGate) Ack(msg *dtu.Message) { rg.env.DTU().Ack(rg.ep, msg) }

// SendGate sends messages to a receive gate; obtained via capability
// exchange or created locally from one's own receive gate.
type SendGate struct {
	gateBase
	msgSize int
}

// SendGateAt wraps an already-held send capability.
func (e *Env) SendGateAt(sel kif.CapSel) *SendGate {
	return &SendGate{gateBase: gateBase{env: e, sel: sel, ep: -1}}
}

// Send transmits data without expecting a reply.
func (sg *SendGate) Send(data []byte) error {
	return sg.send(data, -1, 0)
}

// SendAsync transmits data and registers the reply under a fresh
// label, returned for a later CollectReply. Used by pipes to overlap
// transfers with computation.
func (sg *SendGate) SendAsync(data []byte) (uint64, error) {
	label := sg.env.allocLabel()
	return label, sg.send(data, kif.CallReplyEP, label)
}

// SendAsyncDeadline is SendAsync with a cycle budget on the credit
// wait: a receiver that never restores credit makes the send fail with
// kif.ErrTimeout (wrapped) instead of blocking forever. Zero deadline
// is exactly SendAsync.
func (sg *SendGate) SendAsyncDeadline(data []byte, deadline sim.Time) (uint64, error) {
	label := sg.env.allocLabel()
	return label, sg.sendDeadline(data, kif.CallReplyEP, label, deadline, 0)
}

func (sg *SendGate) send(data []byte, replyEP int, label uint64) error {
	return sg.sendDeadline(data, replyEP, label, 0, 0)
}

func (sg *SendGate) sendDeadline(data []byte, replyEP int, label uint64, deadline sim.Time, span obs.SpanID) error {
	e := sg.env
	ep, err := e.eps.acquire(&sg.gateBase)
	if err != nil {
		return err
	}
	// Arm the span register only after acquire: activating the gate may
	// itself issue syscalls, which root their own spans. The DTU
	// consumes the register on the successful send, so credit-denied
	// retries keep the id.
	if span != 0 {
		e.DTU().StampSpan(span)
	}
	// A bounded call also propagates its budget in the message header
	// (overload-armed DTUs only; the stamp is a no-op otherwise), so
	// every downstream hop can drop the request once it is already
	// dead. Like the span register, it survives credit-denied retries.
	if deadline > 0 {
		e.DTU().StampDeadline(deadline)
	}
	for {
		err = e.DTU().Send(e.P(), ep, data, replyEP, label)
		if err == nil {
			return nil
		}
		if errors.Is(err, dtu.ErrNoCredits) {
			// Bracket the credit wait so the critical-path engine can
			// attribute it to queueing rather than app compute.
			tr := e.Ctx.PE.Obs()
			if tr.On() {
				tr.Emit(obs.Event{At: e.Ctx.Now(), PE: int32(e.Ctx.PE.Node), Layer: obs.LDTU,
					Kind: obs.EvCreditStall, Span: span, Arg0: uint64(ep)})
			}
			werr := e.DTU().WaitCreditsDeadline(e.P(), ep, deadline)
			if tr.On() {
				expired := uint64(0)
				if werr != nil {
					expired = 1
				}
				tr.Emit(obs.Event{At: e.Ctx.Now(), PE: int32(e.Ctx.PE.Node), Layer: obs.LDTU,
					Kind: obs.EvCreditOK, Span: span, Arg0: uint64(ep), Arg2: expired})
			}
			if werr == nil {
				continue
			}
			if errors.Is(werr, dtu.ErrTimeout) {
				// A receiver that never restores credit is as dead as
				// one that never replies.
				return fmt.Errorf("m3: gate send: %w", kif.ErrTimeout)
			}
		}
		return fmt.Errorf("m3: gate send: %w", err)
	}
}

// Drop unbinds the gate from its endpoint, if bound. Session recovery
// uses it to retire the send gate of a dead service incarnation so the
// slot is immediately reusable.
func (sg *SendGate) Drop() { sg.env.eps.release(&sg.gateBase) }

// TrySend transmits data without blocking on credits: if the channel
// is exhausted it returns dtu.ErrNoCredits immediately. The reply (if
// the receiver sends one, e.g. an interrupt acknowledge) restores the
// credit in hardware without the sender fetching it.
func (sg *SendGate) TrySend(data []byte) error {
	e := sg.env
	ep, err := e.eps.acquire(&sg.gateBase)
	if err != nil {
		return err
	}
	return e.DTU().Send(e.P(), ep, data, kif.CallReplyEP, e.allocLabel())
}

// Call sends data and waits for the reply (the common synchronous
// pattern libm3 builds on top of asynchronous DTU messaging, §4.5.6).
func (sg *SendGate) Call(data []byte) ([]byte, error) {
	//m3vet:nodeadline Call IS the deliberately unbounded variant; bounded callers use CallDeadline
	return sg.CallDeadline(data, 0)
}

// CallDeadline is Call with a cycle budget applied to both wait points
// (credits and reply): if the receiver neither accepts nor answers in
// time it returns kif.ErrTimeout (wrapped) and abandons the reply
// label, so a late answer is acked instead of leaking a ringbuffer
// slot. A zero deadline is exactly Call — unbounded, and scheduling no
// deadline events.
func (sg *SendGate) CallDeadline(data []byte, deadline sim.Time) ([]byte, error) {
	e := sg.env
	e.Ctx.Compute(CostCallMarshal)
	label := e.allocLabel()
	// A client service call roots its own causal span, like a syscall.
	var span obs.SpanID
	tr := e.Ctx.PE.Obs()
	if tr.On() {
		span = tr.NewSpan()
		tr.Emit(obs.Event{At: e.Ctx.Now(), PE: int32(e.Ctx.PE.Node), Layer: obs.LApp,
			Kind: obs.EvSvcCallStart, Span: span,
			Arg0: label, Arg1: uint64(len(data))})
	}
	err := sg.sendDeadline(data, kif.CallReplyEP, label, deadline, span)
	if err != nil {
		if tr.On() {
			tr.Emit(obs.Event{At: e.Ctx.Now(), PE: int32(e.Ctx.PE.Node), Layer: obs.LApp,
				Kind: obs.EvSvcCallEnd, Span: span, Arg0: label, Arg1: 1})
		}
		return nil, err
	}
	msg := e.recvReplyDeadline(label, deadline)
	if tr.On() {
		fail := uint64(0)
		if msg == nil || msg.Overloaded() || msg.Expired() {
			fail = 1
		}
		tr.Emit(obs.Event{At: e.Ctx.Now(), PE: int32(e.Ctx.PE.Node), Layer: obs.LApp,
			Kind: obs.EvSvcCallEnd, Span: span, Arg0: label, Arg1: fail})
	}
	if msg == nil {
		e.DiscardReply(label)
		return nil, fmt.Errorf("m3: call reply: %w", kif.ErrTimeout)
	}
	// Overload fast-fail replies (docs/OVERLOAD.md): an admission
	// refusal surfaces as the typed kif.ErrOverload — retry it under a
	// budget, not via session recovery — while an in-flight deadline
	// expiry is a deadline miss like any other timeout.
	if msg.Overloaded() {
		e.DTU().Ack(kif.CallReplyEP, msg)
		return nil, fmt.Errorf("m3: call refused: %w", kif.ErrOverload)
	}
	if msg.Expired() {
		e.DTU().Ack(kif.CallReplyEP, msg)
		return nil, fmt.Errorf("m3: call expired in flight: %w", kif.ErrTimeout)
	}
	e.Ctx.Compute(CostCallUnmarshal)
	data = msg.Data
	e.DTU().Ack(kif.CallReplyEP, msg)
	return data, nil
}

// CollectReplyDeadline is a blocking CollectReply bounded by a cycle
// budget: on expiry it abandons the label (a late reply is acked, not
// leaked) and returns kif.ErrTimeout wrapped. Zero deadline blocks
// unboundedly like CollectReply.
func (sg *SendGate) CollectReplyDeadline(label uint64, deadline sim.Time) ([]byte, error) {
	e := sg.env
	msg := e.recvReplyDeadline(label, deadline)
	if msg == nil {
		e.DiscardReply(label)
		return nil, fmt.Errorf("m3: collect reply: %w", kif.ErrTimeout)
	}
	if msg.Overloaded() {
		e.DTU().Ack(kif.CallReplyEP, msg)
		return nil, fmt.Errorf("m3: collect reply refused: %w", kif.ErrOverload)
	}
	if msg.Expired() {
		e.DTU().Ack(kif.CallReplyEP, msg)
		return nil, fmt.Errorf("m3: collect reply expired in flight: %w", kif.ErrTimeout)
	}
	data := msg.Data
	e.DTU().Ack(kif.CallReplyEP, msg)
	if data == nil {
		data = []byte{}
	}
	return data, nil
}

// CollectReply waits for (or polls, if wait is false) the reply to a
// SendAsync identified by label. It returns nil when polling finds
// nothing.
func (sg *SendGate) CollectReply(label uint64, wait bool) []byte {
	e := sg.env
	var msg *dtu.Message
	if wait {
		msg = e.recvReply(label)
	} else if msg = e.tryRecvReply(label); msg == nil {
		return nil
	}
	data := msg.Data
	e.DTU().Ack(kif.CallReplyEP, msg)
	if data == nil {
		data = []byte{}
	}
	return data
}

// MemGate provides RDMA access to a memory region through a memory
// capability.
type MemGate struct {
	gateBase
	size int
}

// MemGateAt wraps an already-held memory capability of the given size.
func (e *Env) MemGateAt(sel kif.CapSel, size int) *MemGate {
	return &MemGate{gateBase: gateBase{env: e, sel: sel, ep: -1}, size: size}
}

// Size returns the region size in bytes.
func (mg *MemGate) Size() int { return mg.size }

// Drop unbinds the gate from its endpoint, if bound (see
// SendGate.Drop).
func (mg *MemGate) Drop() { mg.env.eps.release(&mg.gateBase) }

// Derive creates a sub-range memory gate with equal or fewer
// permissions.
func (mg *MemGate) Derive(off, size int, perms dtu.Perm) (*MemGate, error) {
	e := mg.env
	sel := e.AllocSel()
	var o kif.OStream
	o.Op(kif.SysDeriveMem).Sel(mg.sel).Sel(sel).U64(uint64(off)).U64(uint64(size)).U64(uint64(perms))
	if _, err := e.Syscall(&o); err != nil {
		return nil, err
	}
	return e.MemGateAt(sel, size), nil
}

// Read transfers len(buf) bytes from region offset off into buf via
// the DTU.
func (mg *MemGate) Read(buf []byte, off int) error {
	e := mg.env
	ep, err := e.eps.acquire(&mg.gateBase)
	if err != nil {
		return err
	}
	e.Ctx.Compute(CostMemOp)
	return e.DTU().ReadMem(e.P(), ep, off, buf)
}

// Write transfers buf to region offset off via the DTU.
func (mg *MemGate) Write(buf []byte, off int) error {
	e := mg.env
	ep, err := e.eps.acquire(&mg.gateBase)
	if err != nil {
		return err
	}
	e.Ctx.Compute(CostMemOp)
	return e.DTU().WriteMem(e.P(), ep, off, buf)
}
