package m3_test

import (
	"errors"
	"io"
	"testing"

	"repro/internal/m3"
	"repro/internal/sim"
)

// pipeFixture wires a cross-VPE pipe: the parent reads, a child VPE
// writes total bytes in chunkSize chunks (async or sync notification
// mode) and the parent's wall time is returned.
func runPipeMode(t *testing.T, async bool, total, chunkSize, ringSize int) sim.Time {
	t.Helper()
	s := newSystem(t, 4)
	var took sim.Time
	s.app(t, "parent", func(env *m3.Env) {
		pipe, err := m3.NewPipe(env, ringSize)
		if err != nil {
			t.Error(err)
			return
		}
		vpe, err := env.NewVPE("writer", "")
		if err != nil {
			t.Error(err)
			return
		}
		sg, wm := pipe.WriterSels()
		if err := vpe.Delegate(sg, 100, 1); err != nil {
			t.Error(err)
			return
		}
		if err := vpe.Delegate(wm, 101, 1); err != nil {
			t.Error(err)
			return
		}
		size := pipe.Size()
		if err := vpe.Run(func(child *m3.Env) {
			w := m3.OpenPipeWriter(child, 100, 101, size)
			w.Async = async
			chunk := make([]byte, chunkSize)
			for sent := 0; sent < total; sent += len(chunk) {
				if _, err := w.Write(chunk); err != nil {
					child.SetExit(1)
					return
				}
			}
			if err := w.Close(); err != nil {
				child.SetExit(1)
			}
		}); err != nil {
			t.Error(err)
			return
		}
		start := env.Ctx.Now()
		buf := make([]byte, chunkSize)
		got := 0
		for {
			n, rerr := pipe.Read(buf)
			got += n
			if rerr != nil {
				if !errors.Is(rerr, io.EOF) {
					t.Error(rerr)
				}
				break
			}
		}
		took = env.Ctx.Now() - start
		// The writer sends whole chunks, rounding the total up.
		want := (total + chunkSize - 1) / chunkSize * chunkSize
		if got != want {
			t.Errorf("received %d bytes, want %d", got, want)
		}
		if code, err := vpe.Wait(); err != nil || code != 0 {
			t.Errorf("writer exit %d, %v", code, err)
		}
	})
	s.eng.Run()
	return took
}

func TestPipeAsyncMode(t *testing.T) {
	// Async notifications let the writer overlap RDMA with the
	// reader's consumption; it must be correct and at least as fast.
	syncT := runPipeMode(t, false, 64<<10, 4096, 16<<10)
	asyncT := runPipeMode(t, true, 64<<10, 4096, 16<<10)
	if asyncT > syncT {
		t.Fatalf("async pipe (%d) slower than sync (%d)", asyncT, syncT)
	}
}

func TestPipeTinyRingWraparound(t *testing.T) {
	// A ring smaller than the transfer forces wraparound writes and
	// reads; both modes must stay correct.
	runPipeMode(t, false, 24<<10, 3000, 8192)
	runPipeMode(t, true, 24<<10, 3000, 8192)
}

func TestPipeChunkLargerThanRing(t *testing.T) {
	// A single Write larger than the ring must be split across
	// notifications, not deadlock.
	runPipeMode(t, false, 16<<10, 8192, 4096)
}

func TestPipeWriteAfterCloseFails(t *testing.T) {
	s := newSystem(t, 3)
	s.app(t, "x", func(env *m3.Env) {
		pipe, err := m3.NewPipe(env, 4096)
		if err != nil {
			t.Error(err)
			return
		}
		sg, wm := pipe.WriterSels()
		w := m3.OpenPipeWriter(env, sg, wm, pipe.Size())
		w.Async = true // local same-PE use: avoid blocking on own reply
		if _, err := w.Write([]byte("x")); err != nil {
			t.Error(err)
		}
		// Drain so Close can collect the outstanding ack.
		buf := make([]byte, 16)
		if _, err := pipe.Read(buf); err != nil {
			t.Error(err)
		}
		if err := w.Close(); err != nil {
			t.Error(err)
		}
		if _, err := w.Write([]byte("y")); err == nil {
			t.Error("write after close must fail")
		}
		if err := w.Close(); err != nil {
			t.Error("double close must be idempotent")
		}
	})
	s.eng.Run()
}
