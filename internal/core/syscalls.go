package core

import (
	"fmt"

	"repro/internal/dtu"
	"repro/internal/kif"
	"repro/internal/overload"
	"repro/internal/sim"
	"repro/internal/tile"
)

// sysCreateVPE: createvpe(vpeSel, memSel, name, peType) -> (err, vpeID, peID).
// Allocates a suitable, unused PE, creates the VPE kernel object and a
// VPE capability, and gives the requester a memory gate for the new
// PE's local memory (used by libm3 for application loading).
func (k *Kernel) sysCreateVPE(p *sim.Process, vpe *VPE, is *kif.IStream, msg *dtu.Message) {
	vpeSel, memSel := is.Sel(), is.Sel()
	name, peType := is.Str(), is.Str()
	if is.Err() != nil {
		k.replyErr(p, msg, kif.ErrInvalidArgs)
		return
	}
	k.compute(p, CostCreateVPE)
	pe := k.allocPE(tile.CoreType(peType))
	if pe == nil {
		k.replyErr(p, msg, kif.ErrNoFreePE)
		return
	}
	child := k.newVPE(name, pe)
	if _, err := vpe.Caps.Install(vpeSel, CapVPE, child); err != kif.OK {
		k.freePE(pe)
		delete(k.vpes, child.ID)
		k.replyErr(p, msg, err)
		return
	}
	memObj := &MemObj{Node: pe.Node, Addr: 0, Size: pe.SPM.Size(), Perms: dtu.PermRW}
	if _, err := vpe.Caps.Install(memSel, CapMem, memObj); err != kif.OK {
		k.replyErr(p, msg, err)
		return
	}
	var o kif.OStream
	o.Err(kif.OK).U64(child.ID).U64(uint64(pe.ID))
	k.reply(p, msg, &o)
}

// sysVPEStart: vpestart(vpeSel, progID) -> err. Installs the standard
// endpoints on the target PE and starts the program.
func (k *Kernel) sysVPEStart(p *sim.Process, vpe *VPE, is *kif.IStream, msg *dtu.Message) {
	vpeSel, progID := is.Sel(), is.U64()
	if is.Err() != nil {
		k.replyErr(p, msg, kif.ErrInvalidArgs)
		return
	}
	cap, err := vpe.Caps.Get(vpeSel, CapVPE)
	if err != kif.OK {
		k.replyErr(p, msg, err)
		return
	}
	child := cap.Obj.(*VPE)
	prog := k.Progs.Get(progID)
	if prog == nil || child.exited {
		k.replyErr(p, msg, kif.ErrInvalidArgs)
		return
	}
	k.compute(p, CostVPEStart)
	k.installStdEPs(p, child)
	child.started = true
	child.PE.Start(child.Name, prog)
	k.replyErr(p, msg, kif.OK)
}

// sysVPEWait: vpewait(vpeSel) -> (err, exitCode). The reply is
// deferred until the VPE exits; a kernel helper activity waits so the
// dispatcher stays responsive.
func (k *Kernel) sysVPEWait(p *sim.Process, vpe *VPE, is *kif.IStream, msg *dtu.Message) {
	vpeSel := is.Sel()
	if is.Err() != nil {
		k.replyErr(p, msg, kif.ErrInvalidArgs)
		return
	}
	cap, err := vpe.Caps.Get(vpeSel, CapVPE)
	if err != kif.OK {
		k.replyErr(p, msg, err)
		return
	}
	child := cap.Obj.(*VPE)
	k.compute(p, CostVPEWait)
	k.Plat.Eng.Spawn("kernel-wait", func(hp *sim.Process) {
		for !child.exited {
			child.exitSig.Wait(hp)
		}
		var o kif.OStream
		o.Err(kif.OK).I64(child.exitCode)
		k.reply(hp, msg, &o)
	})
}

// sysExit: exit(code). No reply is expected; the kernel tears down the
// VPE's capabilities and frees its PE for reuse.
func (k *Kernel) sysExit(p *sim.Process, vpe *VPE, is *kif.IStream, msg *dtu.Message) {
	code := is.I64()
	k.compute(p, CostExit)
	k.destroyVPE(vpe, code)
	k.PE.DTU.Ack(kif.KSyscallEP, msg)
}

func (k *Kernel) destroyVPE(vpe *VPE, code int64) {
	k.teardownVPE(vpe, code, false)
}

// teardownVPE ends a VPE: revoke all capabilities, optionally reset the
// PE (kill the program and clear its DTU endpoints, §4.5.5), and wake
// waiters. A crashed PE is never returned to the allocator.
func (k *Kernel) teardownVPE(vpe *VPE, code int64, reset bool) {
	if vpe.exited {
		return
	}
	vpe.exited = true
	vpe.exitCode = code
	vpe.Caps.revokeAll(k.onDrop)
	if reset {
		vpe.PE.Reset()
	}
	if !vpe.PE.Crashed() {
		k.freePE(vpe.PE)
	}
	vpe.exitSig.Broadcast()
	k.actSig.Broadcast()
}

func (k *Kernel) freePE(pe *tile.PE) {
	if pe != nil {
		k.peUsed[pe.ID] = false
	}
}

// onDrop releases the kernel object of a removed capability.
//
// The drop is traced: revocation order is part of the event schedule
// (session closes and memory releases happen in this order), so the
// determinism regression test hashes these lines to witness it.
func (k *Kernel) onDrop(c *Capability) {
	if k.Plat.Eng.Tracing() {
		k.Plat.Eng.Emit("kernel", fmt.Sprintf("drop %s", c))
	}
	if tr := k.Plat.Obs; tr.On() {
		k.mCapRevocations.Inc()
	}
	switch obj := c.Obj.(type) {
	case *MemObj:
		if obj.root && !obj.stable && obj.Node == k.Plat.DRAMNode {
			// Stable (supervisor-pinned) regions deliberately survive
			// the drop: a restarted service incarnation re-adopts them.
			k.dram.release(obj.Addr, obj.Size)
		}
	case *ServiceObj:
		if k.services[obj.Name] == obj {
			delete(k.services, obj.Name)
		}
	case *SessObj:
		// Tell the service the session is gone so it can drop its
		// per-session state (open files). Only the root session
		// capability — the one opensess installed under the service
		// capability — closes the session; dropping a delegated copy
		// does not (the paper's recursive revoke removes the copies
		// when the root goes).
		if c.parent == nil || c.parent.Type == CapService {
			k.closeSession(obj)
		}
	case *VPE:
		// Revoking a VPE capability resets the PE and makes it
		// available again (the paper, §4.5.5).
		k.teardownVPE(obj, -1, true)
	}
}

// closeSession notifies a service that a client session disappeared.
func (k *Kernel) closeSession(sess *SessObj) {
	svc := sess.Service
	if svc.Owner.exited || !k.serviceCurrent(svc) {
		// Dead or superseded incarnation (epoch fence): its successor
		// never issued this session ident, there is nobody to notify.
		return
	}
	k.Plat.Eng.Spawn("kernel-closesess", func(hp *sim.Process) {
		if !k.serviceCurrent(svc) {
			return
		}
		var req kif.OStream
		req.U64(uint64(kif.ServCloseSess)).U64(sess.Ident)
		// Session teardown has no originating request: no span. It is
		// never shed (PriorityHigh): dropping a close leaks service-side
		// session state, which is exactly what an overloaded service
		// cannot afford.
		//m3vet:nodeadline callService applies servDeadline/overload config internally
		resp, cerr := k.callService(hp, svc, req.Bytes(), 0, overload.PriorityHigh)
		if cerr == kif.OK {
			k.PE.DTU.Ack(kif.KServReplyEP, resp)
		}
	})
}

// sysReqMem: reqmem(dstSel, size, perms, stable) -> err. Allocates
// DRAM. With the stable flag set and the caller supervised, the kernel
// pins the region and hands the same bytes back to every restarted
// incarnation of the caller (journal recovery); for anyone else the
// flag is a plain allocation.
func (k *Kernel) sysReqMem(p *sim.Process, vpe *VPE, is *kif.IStream, msg *dtu.Message) {
	dstSel, size, perms := is.Sel(), int(is.U64()), dtu.Perm(is.U64())
	stable := is.U64() != 0
	if is.Err() != nil || size <= 0 {
		k.replyErr(p, msg, kif.ErrInvalidArgs)
		return
	}
	k.compute(p, CostReqMem)
	var addr int
	pinned := false
	if stable {
		if a, _, ok := k.stableRegionFor(vpe, size); ok {
			addr, pinned = a, true
		}
	}
	if !pinned {
		a, ok := k.dram.alloc(size)
		if !ok {
			k.replyErr(p, msg, kif.ErrNoSpace)
			return
		}
		addr = a
	}
	obj := &MemObj{Node: k.Plat.DRAMNode, Addr: addr, Size: size, Perms: perms & dtu.PermRW, root: true, stable: pinned}
	if _, err := vpe.Caps.Install(dstSel, CapMem, obj); err != kif.OK {
		if !pinned {
			k.dram.release(addr, size)
		}
		k.replyErr(p, msg, err)
		return
	}
	var o kif.OStream
	o.Err(kif.OK).U64(uint64(addr))
	k.reply(p, msg, &o)
}

// sysDeriveMem: derivemem(srcSel, dstSel, off, size, perms) -> err.
// Creates a sub-range memory capability as a child of the source, with
// equal or fewer permissions.
func (k *Kernel) sysDeriveMem(p *sim.Process, vpe *VPE, is *kif.IStream, msg *dtu.Message) {
	srcSel, dstSel := is.Sel(), is.Sel()
	off, size, perms := int(is.U64()), int(is.U64()), dtu.Perm(is.U64())
	if is.Err() != nil {
		k.replyErr(p, msg, kif.ErrInvalidArgs)
		return
	}
	cap, err := vpe.Caps.Get(srcSel, CapMem)
	if err != kif.OK {
		k.replyErr(p, msg, err)
		return
	}
	src := cap.Obj.(*MemObj)
	if off < 0 || size <= 0 || off+size > src.Size {
		k.replyErr(p, msg, kif.ErrInvalidArgs)
		return
	}
	if perms&^src.Perms != 0 {
		k.replyErr(p, msg, kif.ErrNoPerm)
		return
	}
	k.compute(p, CostDeriveMem)
	obj := &MemObj{Node: src.Node, Addr: src.Addr + off, Size: size, Perms: perms}
	if _, err := cap.DelegateTo(vpe.Caps, dstSel, obj); err != kif.OK {
		k.replyErr(p, msg, err)
		return
	}
	k.replyErr(p, msg, kif.OK)
}

// sysCreateRGate: creatergate(dstSel, slotSize, slots) -> err.
func (k *Kernel) sysCreateRGate(p *sim.Process, vpe *VPE, is *kif.IStream, msg *dtu.Message) {
	dstSel, slotSize, slots := is.Sel(), int(is.U64()), int(is.U64())
	if is.Err() != nil || slotSize <= 0 || slots <= 0 {
		k.replyErr(p, msg, kif.ErrInvalidArgs)
		return
	}
	k.compute(p, CostCreateRG)
	obj := &RGateObj{Owner: vpe, SlotSize: slotSize, Slots: slots, EP: -1}
	if _, err := vpe.Caps.Install(dstSel, CapRGate, obj); err != kif.OK {
		k.replyErr(p, msg, err)
		return
	}
	k.replyErr(p, msg, kif.OK)
}

// sysCreateSGate: createsgate(dstSel, rgateSel, label, credits) -> err.
// The send gate is a child of the receive gate in the capability tree,
// so revoking the receive gate invalidates all senders.
func (k *Kernel) sysCreateSGate(p *sim.Process, vpe *VPE, is *kif.IStream, msg *dtu.Message) {
	dstSel, rgateSel := is.Sel(), is.Sel()
	label, credits := is.U64(), int(is.I64())
	if is.Err() != nil {
		k.replyErr(p, msg, kif.ErrInvalidArgs)
		return
	}
	rcap, err := vpe.Caps.Get(rgateSel, CapRGate)
	if err != kif.OK {
		k.replyErr(p, msg, err)
		return
	}
	rg := rcap.Obj.(*RGateObj)
	if rg.Owner != vpe {
		k.replyErr(p, msg, kif.ErrNoPerm)
		return
	}
	k.compute(p, CostCreateSG)
	obj := &SGateObj{RGate: rg, Label: label, Credits: credits}
	if _, e := vpe.Caps.InstallChild(rcap, dstSel, CapSGate, obj); e != kif.OK {
		k.replyErr(p, msg, e)
		return
	}
	k.replyErr(p, msg, kif.OK)
}

// sysActivate: activate(capSel, ep, bufAddr) -> err. Configures an
// endpoint of the caller's DTU for the given gate capability. For send
// gates whose receive gate is not yet activated, the reply is deferred
// until the receiver is ready (the paper, §4.5.4).
func (k *Kernel) sysActivate(p *sim.Process, vpe *VPE, is *kif.IStream, msg *dtu.Message) {
	capSel, ep, bufAddr := is.Sel(), int(is.I64()), int(is.U64())
	if is.Err() != nil || ep < kif.FirstFreeEP || ep >= vpe.PE.DTU.NumEndpoints() {
		k.replyErr(p, msg, kif.ErrInvalidArgs)
		return
	}
	cap, err := vpe.Caps.Get(capSel, CapInvalid)
	if err != kif.OK {
		k.replyErr(p, msg, err)
		return
	}
	k.compute(p, CostActivate)
	switch obj := cap.Obj.(type) {
	case *MemObj:
		cfgErr := k.configRemote(p, vpe.PE.Node, ep, dtu.Endpoint{
			Type: dtu.EpMemory, MemTarget: obj.Node, MemAddr: obj.Addr,
			MemSize: obj.Size, MemPerms: obj.Perms,
		})
		if cfgErr == nil {
			recordActivation(vpe, ep, cap)
		}
		k.replyConfig(p, msg, cfgErr)
	case *RGateObj:
		if obj.Owner != vpe {
			k.replyErr(p, msg, kif.ErrNoPerm)
			return
		}
		cfgErr := k.configRemote(p, vpe.PE.Node, ep, dtu.Endpoint{
			Type: dtu.EpReceive, BufAddr: bufAddr,
			SlotSize: obj.SlotSize + dtu.HeaderSize, SlotCount: obj.Slots,
		})
		if cfgErr == nil {
			obj.EP = ep
			obj.BufAddr = bufAddr
			// Claim the endpoint in the kernel's bookkeeping: if a
			// multiplexed gate was evicted from this endpoint earlier, a
			// later revocation of that gate's capability must not
			// invalidate the receive gate now living here.
			recordActivation(vpe, ep, cap)
			k.actSig.Broadcast()
		}
		k.replyConfig(p, msg, cfgErr)
	case *SGateObj:
		if obj.RGate.Activated() {
			err := k.configSend(p, vpe, ep, obj)
			if err == nil {
				recordActivation(vpe, ep, cap)
			}
			k.replyConfig(p, msg, err)
			return
		}
		// Defer until the receiver is ready. The helper also wakes on
		// VPE teardown: if the requester or the gate owner dies before
		// the activation, it must not linger forever.
		k.Plat.Eng.Spawn("kernel-activate", func(hp *sim.Process) {
			for !obj.RGate.Activated() && !vpe.exited && !obj.RGate.Owner.exited {
				k.actSig.Wait(hp)
			}
			k.compute(hp, CostActivate)
			if !obj.RGate.Activated() {
				k.replyErr(hp, msg, kif.ErrVPEGone)
				return
			}
			err := k.configSend(hp, vpe, ep, obj)
			if err == nil {
				recordActivation(vpe, ep, cap)
			}
			k.replyConfig(hp, msg, err)
		})
	default:
		k.replyErr(p, msg, kif.ErrInvalidArgs)
	}
}

// recordActivation updates the kernel's endpoint bookkeeping: cap now
// owns ep at vpe; whatever was there before no longer does.
func recordActivation(vpe *VPE, ep int, cap *Capability) {
	if prev := vpe.epCaps[ep]; prev != nil && prev != cap {
		prev.actVPE, prev.actEP = nil, 0
	}
	vpe.epCaps[ep] = cap
	cap.actVPE, cap.actEP = vpe, ep
}

func (k *Kernel) configSend(p *sim.Process, vpe *VPE, ep int, sg *SGateObj) error {
	return k.configRemote(p, vpe.PE.Node, ep, dtu.Endpoint{
		Type: dtu.EpSend, Target: sg.RGate.Owner.PE.Node, TargetEP: sg.RGate.EP,
		Label: sg.Label, Credits: sg.Credits, MsgSize: sg.RGate.SlotSize,
	})
}

func (k *Kernel) replyConfig(p *sim.Process, msg *dtu.Message, cfgErr error) {
	if cfgErr != nil {
		k.replyErr(p, msg, kif.ErrInvalidArgs)
		return
	}
	k.replyErr(p, msg, kif.OK)
}

// sysRevoke: revoke(sel) -> err.
func (k *Kernel) sysRevoke(p *sim.Process, vpe *VPE, is *kif.IStream, msg *dtu.Message) {
	sel := is.Sel()
	if is.Err() != nil {
		k.replyErr(p, msg, kif.ErrInvalidArgs)
		return
	}
	cap, err := vpe.Caps.Get(sel, CapInvalid)
	if err != kif.OK {
		k.replyErr(p, msg, err)
		return
	}
	dropped := 0
	type actRec struct {
		vpe *VPE
		ep  int
	}
	var acts []actRec
	cap.Revoke(func(c *Capability) {
		dropped++
		if v := c.actVPE; v != nil && !v.exited && v.epCaps[c.actEP] == c {
			acts = append(acts, actRec{v, c.actEP})
			delete(v.epCaps, c.actEP)
		}
		k.onDrop(c)
	})
	k.compute(p, CostRevokeCap*sim.Time(dropped))
	// Invalidate every endpoint a dropped capability was activated on:
	// isolation is enforced at the NoC level, so the DTUs must stop
	// honouring the revoked rights immediately.
	for _, a := range acts {
		// A failed invalidation would leave the revoked rights live in
		// hardware — an isolation hole, not a recoverable error.
		mustConfig(k.configRemote(p, a.vpe.PE.Node, a.ep, dtu.Endpoint{Type: dtu.EpInvalid}))
	}
	k.replyErr(p, msg, kif.OK)
}

// sysExchangeVPE implements the direct VPE-to-VPE delegate and obtain
// operations, which require holding a capability for the peer VPE.
func (k *Kernel) sysExchangeVPE(p *sim.Process, vpe *VPE, is *kif.IStream, msg *dtu.Message, obtain bool) {
	vpeSel, mine, theirs, count := is.Sel(), is.Sel(), is.Sel(), is.U64()
	if is.Err() != nil || count == 0 || count > 32 {
		k.replyErr(p, msg, kif.ErrInvalidArgs)
		return
	}
	cap, err := vpe.Caps.Get(vpeSel, CapVPE)
	if err != kif.OK {
		k.replyErr(p, msg, err)
		return
	}
	peer := cap.Obj.(*VPE)
	k.compute(p, CostExchange+CostPerCap*sim.Time(count))
	var srcTab, dstTab *CapTable
	var srcStart, dstStart kif.CapSel
	if obtain {
		srcTab, dstTab, srcStart, dstStart = peer.Caps, vpe.Caps, theirs, mine
	} else {
		srcTab, dstTab, srcStart, dstStart = vpe.Caps, peer.Caps, mine, theirs
	}
	if e := exchangeCaps(srcTab, dstTab, srcStart, dstStart, count); e != kif.OK {
		k.replyErr(p, msg, e)
		return
	}
	k.replyErr(p, msg, kif.OK)
}

// exchangeCaps copies count capabilities between tables, refusing
// receive gates (they cannot be moved; the paper, §4.5.4).
func exchangeCaps(src, dst *CapTable, srcStart, dstStart kif.CapSel, count uint64) kif.Error {
	for i := uint64(0); i < count; i++ {
		c, err := src.Get(srcStart+kif.CapSel(i), CapInvalid)
		if err != kif.OK {
			return err
		}
		if c.Type == CapRGate {
			return kif.ErrNoPerm
		}
	}
	for i := uint64(0); i < count; i++ {
		c, _ := src.Get(srcStart+kif.CapSel(i), CapInvalid)
		if _, err := c.DelegateTo(dst, dstStart+kif.CapSel(i), nil); err != kif.OK {
			return err
		}
	}
	return kif.OK
}
