package core

import (
	"errors"
	"fmt"

	"repro/internal/sim"
	"repro/internal/tile"
)

// RestartPolicy tells the kernel supervisor how to handle the death of
// a supervised init VPE: how often to respawn it and how long to back
// off before each attempt. The zero value means "not supervised".
type RestartPolicy struct {
	// MaxRestarts bounds the respawns of one supervised VPE; zero
	// disables supervision entirely.
	MaxRestarts int
	// Backoff is the delay in cycles before the first respawn; it
	// doubles with every further restart of the same VPE (bounded
	// exponential backoff, all on the deterministic sim clock). Zero
	// picks DefaultRestartBackoff.
	Backoff sim.Time
}

// supervised is the kernel's restart record for one supervised init
// VPE across all of its incarnations.
type supervised struct {
	name     string
	peType   tile.CoreType
	prog     Program
	policy RestartPolicy
	//m3vet:resolve sharedstate owner restart bookkeeping is touched only by kernel reap/respawn helpers
	restarts int
	//m3vet:resolve sharedstate owner restart bookkeeping is touched only by kernel reap/respawn helpers
	vpe *VPE

	// region is the stable DRAM region pinned for this service (set on
	// its first ReqMemStable): every incarnation gets the same bytes
	// back, which is what makes the m3fs journal survive a crash.
	region struct {
		//m3vet:resolve sharedstate owner pinned-region record is written only by kernel helper processes
		addr, size int
		//m3vet:resolve sharedstate owner pinned-region record is written only by kernel helper processes
		valid bool
	}
}

// StartInitSupervised is StartInit plus a restart policy: when the
// death watchdog reaps the VPE, the supervisor respawns the same
// program under the same name on a spare PE (the pool is whatever PEs
// of the right type are still unallocated), after the policy's
// backoff. A service the program re-registers then carries a bumped
// epoch, which fences every stale request path (docs/RECOVERY.md).
//
// Without fault injection the watchdog never runs, no VPE is ever
// reaped, and supervision adds zero scheduled events — the policy is
// pure bookkeeping until a crash actually happens.
func (k *Kernel) StartInitSupervised(name string, peType tile.CoreType, prog Program, policy RestartPolicy) (*VPE, error) {
	if policy.MaxRestarts < 0 {
		return nil, errors.New("core: negative restart budget")
	}
	vpe, err := k.StartInit(name, peType, prog)
	if err != nil {
		return nil, err
	}
	if policy.MaxRestarts > 0 {
		if policy.Backoff <= 0 {
			policy.Backoff = DefaultRestartBackoff
		}
		k.supervised[vpe.ID] = &supervised{
			name: name, peType: peType, prog: prog, policy: policy, vpe: vpe,
		}
	}
	return vpe, nil
}

// SetServiceCallDeadline arms a cycle budget on every kernel→service
// control call (callService): a service that neither answers nor
// restores credits within the budget earns the caller a kif.ErrTimeout
// instead of stalling a kernel helper forever. Zero disarms. Only
// internal/fault may call this (m3vet: faultsite) — without fault
// injection services cannot die and the unbounded wait is part of the
// bit-identical baseline schedule.
func (k *Kernel) SetServiceCallDeadline(d sim.Time) { k.servDeadline = d }

// serviceCurrent reports whether svc is still the live registration of
// its name: same object, same epoch. Kernel helpers acting on stored
// service references (session records, close notifications) must check
// this before calling the service, so requests belonging to a dead
// incarnation are fenced off instead of being delivered to its
// successor (m3vet: epochfence).
func (k *Kernel) serviceCurrent(svc *ServiceObj) bool {
	cur, ok := k.services[svc.Name]
	return ok && cur == svc && cur.Epoch == svc.Epoch
}

// ServiceEpoch returns the epoch of the live registration of name, or
// zero when no such service is currently registered. Observability for
// tests and tools; the kernel's own fencing goes through serviceCurrent.
func (k *Kernel) ServiceEpoch(name string) uint64 {
	if svc, ok := k.services[name]; ok {
		return svc.Epoch
	}
	return 0
}

// maybeRespawn is the supervisor hook at the end of a reap: if the
// dead VPE was supervised and has restart budget left, schedule its
// respawn after the (exponentially growing) backoff. The respawn
// itself runs as a kernel helper activity so its costs serialize on
// the kernel CPU like every other kernel action.
func (k *Kernel) maybeRespawn(vpe *VPE) {
	sup, ok := k.supervised[vpe.ID]
	if !ok {
		return
	}
	delete(k.supervised, vpe.ID)
	if sup.restarts >= sup.policy.MaxRestarts {
		if k.Plat.Eng.Tracing() {
			k.Plat.Eng.Emit("kernel", fmt.Sprintf("supervisor: %s exhausted %d restarts", sup.name, sup.restarts))
		}
		return
	}
	sup.restarts++
	delay := sup.policy.Backoff << (sup.restarts - 1)
	if hold := k.respawnHold(sup.name); hold > 0 {
		// The service's circuit breaker is still open: clients are being
		// failed fast anyway, so restarting into the standing overload
		// would only feed the storm. Hold the respawn until the breaker's
		// open window has passed (restart-storm suppression).
		delay += hold
		k.Stats.RestartsHeld++
		if k.Plat.Eng.Tracing() {
			k.Plat.Eng.Emit("kernel", fmt.Sprintf("supervisor: holding %s respawn %d cycles for open breaker", sup.name, hold))
		}
	}
	k.Plat.Eng.Spawn("kernel-respawn", func(p *sim.Process) {
		p.Sleep(delay)
		pe := k.allocPE(sup.peType)
		if pe == nil {
			if k.Plat.Eng.Tracing() {
				k.Plat.Eng.Emit("kernel", fmt.Sprintf("supervisor: no spare PE for %s", sup.name))
			}
			return
		}
		k.compute(p, CostRespawn)
		nv := k.newVPE(sup.name, pe)
		sup.vpe = nv
		k.supervised[nv.ID] = sup
		k.installStdEPs(p, nv)
		nv.started = true
		k.Stats.ServiceRestarts++
		if tr := k.Plat.Obs; tr.On() {
			k.mSupervisorRestarts.Inc()
		}
		if k.Plat.Eng.Tracing() {
			k.Plat.Eng.Emit("kernel", fmt.Sprintf("supervisor: restarted %s as vpe %d on pe%d (restart %d/%d)",
				sup.name, nv.ID, pe.ID, sup.restarts, sup.policy.MaxRestarts))
		}
		pe.Start(nv.Name, sup.prog)
	})
}

// stableRegionFor returns the pinned region for a supervised VPE
// requesting stable memory. The first matching request allocates and
// pins; every later incarnation asking for the same size gets the
// identical region back, contents untouched. Returns ok=false when the
// VPE is not supervised (plain allocation applies).
func (k *Kernel) stableRegionFor(vpe *VPE, size int) (addr int, reuse, ok bool) {
	sup, sok := k.supervised[vpe.ID]
	if !sok {
		return 0, false, false
	}
	if sup.region.valid && sup.region.size == size {
		return sup.region.addr, true, true
	}
	if sup.region.valid {
		// Size changed across incarnations: treat as a fresh pin so the
		// caller's view stays consistent (the old region stays pinned —
		// leaked deliberately, a supervisor restart is not an allocator
		// stress path).
		sup.region.valid = false
	}
	a, aok := k.dram.alloc(size)
	if !aok {
		return 0, false, false
	}
	sup.region.addr, sup.region.size, sup.region.valid = a, size, true
	return a, false, true
}
