// Package core implements the M3 kernel: the paper's OS contribution.
//
// The kernel runs on a dedicated PE and is the only privileged entity.
// It manages virtual processing elements (VPEs), their capability
// tables, and the system's memories, and it exercises NoC-level
// isolation by remotely configuring the DTU endpoints of application
// PEs. System calls arrive as DTU messages on the kernel's syscall
// receive endpoint and are answered with DTU replies; after a channel
// is established, the kernel is no longer involved in communication.
package core

import (
	"fmt"
	"sort"

	"repro/internal/kif"
)

// CapType is the kind of kernel object behind a capability.
type CapType uint8

// Capability types.
const (
	CapInvalid CapType = iota
	CapVPE
	CapMem
	CapRGate
	CapSGate
	CapService
	CapSession
)

func (t CapType) String() string {
	switch t {
	case CapVPE:
		return "vpe"
	case CapMem:
		return "mem"
	case CapRGate:
		return "rgate"
	case CapSGate:
		return "sgate"
	case CapService:
		return "service"
	case CapSession:
		return "session"
	}
	return "invalid"
}

// Capability pairs a kernel object with permissions for it (the paper's
// definition). Delegations form a tree per object so that revoke can
// undo all grants recursively, like the mapping database of L4
// microkernels.
type Capability struct {
	Type CapType
	Obj  any

	table    *CapTable
	sel      kif.CapSel
	parent   *Capability
	children []*Capability

	// Activation state: the endpoint this capability was activated on
	// (send and memory gates). Revoking the capability invalidates the
	// endpoint, so the hardware stops honouring it immediately.
	actVPE *VPE
	actEP  int
}

// Sel returns the selector under which the capability is installed.
func (c *Capability) Sel() kif.CapSel { return c.sel }

// Table returns the owning capability table.
func (c *Capability) Table() *CapTable { return c.table }

// CapTable is the per-VPE capability table, "similar to the file
// descriptor table in UNIX systems".
type CapTable struct {
	vpe  *VPE
	caps map[kif.CapSel]*Capability
}

func newCapTable(vpe *VPE) *CapTable {
	return &CapTable{vpe: vpe, caps: make(map[kif.CapSel]*Capability)}
}

// VPE returns the table's owner.
func (t *CapTable) VPE() *VPE { return t.vpe }

// Len returns the number of installed capabilities.
func (t *CapTable) Len() int { return len(t.caps) }

// Sels returns the installed selectors in sorted order (for test
// assertions over surviving capabilities).
func (t *CapTable) Sels() []kif.CapSel {
	sels := make([]kif.CapSel, 0, len(t.caps))
	for sel := range t.caps {
		sels = append(sels, sel)
	}
	sort.Slice(sels, func(i, j int) bool { return sels[i] < sels[j] })
	return sels
}

// Get returns the capability at sel if it has the wanted type.
// CapInvalid matches any type.
func (t *CapTable) Get(sel kif.CapSel, want CapType) (*Capability, kif.Error) {
	c, ok := t.caps[sel]
	if !ok {
		return nil, kif.ErrNoSuchCap
	}
	if want != CapInvalid && c.Type != want {
		return nil, kif.ErrNoSuchCap
	}
	return c, kif.OK
}

// Install places a fresh root capability at sel. Installing over an
// occupied selector fails (the client must revoke first).
func (t *CapTable) Install(sel kif.CapSel, typ CapType, obj any) (*Capability, kif.Error) {
	if _, ok := t.caps[sel]; ok {
		return nil, kif.ErrExists
	}
	c := &Capability{Type: typ, Obj: obj, table: t, sel: sel}
	t.caps[sel] = c
	return c, kif.OK
}

// InstallChild places a fresh capability of a possibly different type
// at sel, recorded as a child of parent in the revocation tree (e.g. a
// send gate under its receive gate, a session under its service).
func (t *CapTable) InstallChild(parent *Capability, sel kif.CapSel, typ CapType, obj any) (*Capability, kif.Error) {
	c, err := t.Install(sel, typ, obj)
	if err != kif.OK {
		return nil, err
	}
	c.parent = parent
	parent.children = append(parent.children, c)
	return c, kif.OK
}

// DelegateTo copies c into dst at sel, recording the delegation in the
// object's tree so that revoking c also removes the copy. The object
// may be replaced (e.g. a derived, smaller memory object).
func (c *Capability) DelegateTo(dst *CapTable, sel kif.CapSel, obj any) (*Capability, kif.Error) {
	if obj == nil {
		obj = c.Obj
	}
	child, err := dst.Install(sel, c.Type, obj)
	if err != kif.OK {
		return nil, err
	}
	child.parent = c
	c.children = append(c.children, child)
	return child, kif.OK
}

// Revoke removes the capability and, recursively, every delegation made
// from it ("undo all grants of a capability recursively"). onDrop is
// invoked for each removed capability, root last, so the kernel can
// release the kernel objects of leaves first.
func (c *Capability) Revoke(onDrop func(*Capability)) {
	for len(c.children) > 0 {
		child := c.children[len(c.children)-1]
		c.children = c.children[:len(c.children)-1]
		child.parent = nil
		child.Revoke(onDrop)
	}
	if c.parent != nil {
		c.parent.removeChild(c)
	}
	delete(c.table.caps, c.sel)
	if onDrop != nil {
		onDrop(c)
	}
}

func (c *Capability) removeChild(child *Capability) {
	for i, ch := range c.children {
		if ch == child {
			c.children = append(c.children[:i], c.children[i+1:]...)
			return
		}
	}
}

// revokeAll drops every capability in the table (VPE teardown). The
// selectors are walked in sorted order: revocation triggers session
// closes and memory releases, so the walk order is part of the event
// schedule and must not depend on map iteration order.
func (t *CapTable) revokeAll(onDrop func(*Capability)) {
	sels := make([]kif.CapSel, 0, len(t.caps))
	for sel := range t.caps {
		sels = append(sels, sel)
	}
	sort.Slice(sels, func(i, j int) bool { return sels[i] < sels[j] })
	for _, sel := range sels {
		// Revoking one capability may already have removed children
		// that shared the table, so re-check each selector.
		if c, ok := t.caps[sel]; ok {
			c.Revoke(onDrop)
		}
	}
}

func (c *Capability) String() string {
	return fmt.Sprintf("cap(%s@%d)", c.Type, c.sel)
}
