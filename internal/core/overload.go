package core

import (
	"fmt"

	"repro/internal/dtu"
	"repro/internal/kif"
	"repro/internal/obs"
	"repro/internal/overload"
	"repro/internal/sim"
)

// OverloadConfig arms the kernel's overload-control layer
// (docs/OVERLOAD.md): a cycle budget on kernel→service calls, a
// per-service shed controller fed by the service DTU's receive queue
// depth (the same quantity the registry samples as dtu_rx_queued), and
// a per-service circuit breaker tripped by consecutive deadline
// misses. All default off; a kernel without EnableOverload schedules
// not a single extra event and keeps bit-identical traces.
type OverloadConfig struct {
	// CallDeadline bounds every kernel→service control call in cycles
	// (and is stamped into the request headers so downstream DTUs can
	// drop expired work). Zero keeps the calls unbounded unless the
	// fault layer armed its own deadline.
	CallDeadline sim.Time
	// Shed parameterizes the per-service shed controllers; the zero
	// value sheds nothing.
	Shed overload.ShedConfig
	// Breaker parameterizes the per-service circuit breakers; zero
	// fields pick the overload package defaults.
	Breaker overload.BreakerConfig
}

// kernelOverload is the armed overload state: per-service shed
// controllers and breakers, created lazily per service name.
type kernelOverload struct {
	cfg OverloadConfig
	//m3vet:resolve sharedstate owner per-service controllers are created and driven by kernel helper processes on the kernel CPU
	shedders map[string]*overload.Shedder
	//m3vet:resolve sharedstate owner per-service controllers are created and driven by kernel helper processes on the kernel CPU
	breakers map[string]*overload.Breaker
}

func (ov *kernelOverload) shedderFor(name string) *overload.Shedder {
	s := ov.shedders[name]
	if s == nil {
		s = overload.NewShedder(ov.cfg.Shed)
		ov.shedders[name] = s
	}
	return s
}

func (ov *kernelOverload) breakerFor(name string) *overload.Breaker {
	b := ov.breakers[name]
	if b == nil {
		b = overload.NewBreaker(ov.cfg.Breaker)
		ov.breakers[name] = b
	}
	return b
}

// EnableOverload arms the kernel's overload control and, so the
// deadline actually rides in message headers, the kernel DTU's
// deadline register. It is harness-level policy (bench options, not
// internal/fault): overload control is a capacity experiment, not a
// fault model.
func (k *Kernel) EnableOverload(cfg OverloadConfig) {
	k.overload = &kernelOverload{
		cfg:      cfg,
		shedders: make(map[string]*overload.Shedder),
		breakers: make(map[string]*overload.Breaker),
	}
	if cfg.CallDeadline > 0 {
		k.servDeadline = cfg.CallDeadline
	}
	if !k.PE.DTU.Overloaded() {
		k.PE.DTU.EnableOverload(&dtu.OverloadConfig{CallDeadline: cfg.CallDeadline})
	}
}

// Overload metric names (m3vet: metricname), registered lazily on
// first increment so off-or-idle runs keep identical metric snapshots.
const (
	// MCallsShed counts service calls rejected by the shed controller.
	MCallsShed = "kernel_calls_shed_total"
	// MBreakerOpens counts circuit-breaker trips.
	MBreakerOpens = "kernel_breaker_opens_total"
)

func (k *Kernel) callsShedCounter() *obs.Counter {
	if k.mCallsShed == nil && k.Plat.Obs.On() {
		k.mCallsShed = k.Plat.Obs.Metrics().Counter(MCallsShed, -1)
	}
	return k.mCallsShed
}

func (k *Kernel) breakerOpensCounter() *obs.Counter {
	if k.mBreakerOpens == nil && k.Plat.Obs.On() {
		k.mBreakerOpens = k.Plat.Obs.Metrics().Counter(MBreakerOpens, -1)
	}
	return k.mBreakerOpens
}

// admitServiceCall is the overload gate at the head of callService:
// the service's breaker first (an open breaker fails everything fast),
// then the shed controller against the service DTU's live receive
// queue depth. Returns kif.OK to admit.
func (k *Kernel) admitServiceCall(svc *ServiceObj, span obs.SpanID, pr overload.Priority) kif.Error {
	ov := k.overload
	if ov == nil {
		return kif.OK
	}
	now := k.Plat.Eng.Now()
	if !ov.breakerFor(svc.Name).Allow(now) {
		k.Stats.BreakerRejects++
		return kif.ErrOverload
	}
	depth := svc.Owner.PE.DTU.RxQueued()
	if !ov.shedderFor(svc.Name).Admit(depth, pr) {
		k.Stats.CallsShed++
		if tr := k.Plat.Obs; tr.On() {
			k.callsShedCounter().Inc()
			// The shed verdict carries the request's span so the
			// critical-path engine can attribute the fast-fail.
			tr.Emit(obs.Event{At: now, PE: int32(k.PE.Node), Layer: obs.LKernel,
				Kind: obs.EvShed, Span: span, Arg0: uint64(svc.Owner.PE.Node),
				Arg1: uint64(depth), Arg2: uint64(pr)})
		}
		if k.Plat.Eng.Tracing() {
			k.Plat.Eng.Emit("kernel", fmt.Sprintf("shed %s call to %s (depth %d, priority %s)",
				pr, svc.Name, depth, pr))
		}
		return kif.ErrOverload
	}
	return kif.OK
}

// noteServiceCallOutcome feeds a completed (or failed) service call
// into the service's breaker. A deadline miss is a Failure; an
// admission refusal by the service DTU is not — the service protected
// itself and answered promptly, which is evidence of control, not of
// collapse.
func (k *Kernel) noteServiceCallOutcome(svc *ServiceObj, outcome kif.Error) {
	ov := k.overload
	if ov == nil {
		return
	}
	now := k.Plat.Eng.Now()
	br := ov.breakerFor(svc.Name)
	switch outcome {
	case kif.OK:
		br.Success(now)
	case kif.ErrTimeout:
		before := br.Opens()
		br.Failure(now)
		if br.Opens() > before {
			if tr := k.Plat.Obs; tr.On() {
				k.breakerOpensCounter().Inc()
				tr.Emit(obs.Event{At: now, PE: int32(k.PE.Node), Layer: obs.LKernel,
					Kind: obs.EvBreaker, Arg0: uint64(svc.Owner.PE.Node), Arg1: br.Opens()})
			}
			if k.Plat.Eng.Tracing() {
				k.Plat.Eng.Emit("kernel", fmt.Sprintf("breaker open for %s (trip %d)", svc.Name, br.Opens()))
			}
		}
	}
}

// respawnHold returns the extra delay the supervisor should add before
// respawning name: while the service's breaker is open, clients are
// being failed fast anyway, and restarting into the still-standing
// overload would only feed the storm (restart-storm suppression).
func (k *Kernel) respawnHold(name string) sim.Time {
	ov := k.overload
	if ov == nil {
		return 0
	}
	br := ov.breakers[name]
	if br == nil {
		return 0
	}
	return br.OpenRemaining(k.Plat.Eng.Now())
}

// BreakerState reports the breaker state for a service name
// (observability for tests and the harness). The second return is
// false when overload control is off or the service has no breaker
// yet.
func (k *Kernel) BreakerState(name string) (overload.State, bool) {
	ov := k.overload
	if ov == nil {
		return overload.StateClosed, false
	}
	br := ov.breakers[name]
	if br == nil {
		return overload.StateClosed, false
	}
	return br.State(k.Plat.Eng.Now()), true
}
